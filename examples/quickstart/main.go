// Quickstart: the paper's whole story in one file.
//
// We describe the VME bus controller's READ cycle as a timing diagram
// (Figure 2), compile it to a Signal Transition Graph (Figure 3), inspect
// the state graph and its CSC conflict (Figure 4), and run the synthesis
// flow to speed-independent gate equations (Section 3), verified against
// the specification.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/vme"
)

func main() {
	// 1. From timing diagram to Petri net (Figures 2 -> 3).
	wave := vme.ReadWaveform()
	spec, err := stg.FromWaveform(wave)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== specification (STG compiled from the READ-cycle waveform) ==")
	if err := spec.WriteG(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 2. Token game -> state graph (Figure 4).
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== state graph ==\n%d states, %d arcs\n", sg.NumStates(), sg.NumArcs())
	fmt.Println("properties:", sg.CheckImplementability())
	fmt.Println("conflicts:")
	fmt.Println(encoding.ConflictSummary(sg))

	// Back to the engineer's view: one cycle rendered as a timing diagram
	// (regenerating Figure 2 from the token game).
	fmt.Println("\n== one READ cycle as a waveform ==")
	fmt.Print(sg.ASCIIWaveform(sg.Cycle()))

	// 3. Full flow: encoding, synthesis, verification.
	rep, err := core.Synthesize(spec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== synthesis ==")
	fmt.Print(rep.Summary())
}
