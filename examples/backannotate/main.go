// Back-annotation (Section 4, Figure 10): at any step of the design process
// a Petri net corresponding to the current transition system can be
// extracted and returned to the designer.
//
// This example closes the full loop:
//
//	spec STG ──synthesize──▶ circuit ──explore──▶ implementation SG
//	    ▲                                             │
//	    └───────conformance◀── extracted STG ◀──regions┘
//
// The extracted STG (including the internal state signal) is printed in .g
// format, its state graph is checked isomorphic to the circuit's, and trace
// conformance against the ORIGINAL interface is verified formally.
//
// Run with: go run ./examples/backannotate
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/ts"
	"repro/internal/vme"
)

func main() {
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		log.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== synthesized circuit ==")
	fmt.Println(nl.Equations())

	implSG, err := sim.StateGraph(nl, spec, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncircuit × environment: %d composed states\n", implSG.NumStates())

	back, err := regions.Synthesize(implSG)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== back-annotated STG (Figure 10a) ==")
	if err := back.WriteG(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The extracted net regenerates the implementation behaviour exactly.
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ts.Isomorphic(implSG, sg2); err != nil {
		log.Fatalf("round trip broken: %v", err)
	}
	fmt.Println("\nround trip: extracted STG's state graph is isomorphic to the circuit's")

	// ... and conforms to the original interface.
	viol, err := sim.ConformsSTG(back, g, 0)
	if err != nil {
		log.Fatal(err)
	}
	if len(viol) != 0 {
		log.Fatalf("conformance: %v", viol)
	}
	fmt.Println("conformance: extracted STG conforms to the original VME interface (safety + receptiveness)")
}
