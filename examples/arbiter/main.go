// Arbitration (Section 1.5 / 2.1): two clients competing for one resource.
//
// The specification has the grants in direct output/output conflict —
// "such behavior cannot be implemented without hazards unless special
// mutual exclusion elements (arbiters) are used". The example shows:
//
//  1. the flow correctly refusing the spec (persistency violation);
//  2. a mutex-based implementation verifying speed-independent;
//  3. the same cross-coupled functions as plain gates being rejected as
//     hazardous.
//
// Run with: go run ./examples/arbiter
package main

import (
	"fmt"
	"log"

	"repro/internal/boolmin"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/stg"
)

func main() {
	spec := buildSpec()
	fmt.Println("== specification: two clients, one resource ==")

	// 1. Plain synthesis must refuse.
	if _, err := core.Synthesize(spec, core.Options{}); err != nil {
		fmt.Println("flow refuses (as the paper requires):", err)
	} else {
		log.Fatal("flow must refuse an arbitration spec")
	}

	// 2. Mutex implementation.
	nl := netlist(logic.MutexHalf)
	fmt.Println("\n== mutex implementation ==")
	fmt.Println(nl.Equations())
	res, err := sim.Verify(nl, spec, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: OK=%v over %d composed states\n", res.OK(), res.States)

	// 3. The same functions as plain gates are hazardous.
	bad := netlist(logic.Comb)
	res2, err := sim.Verify(bad, spec, sim.Options{MaxViolations: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== same functions without the mutex element ==")
	for _, v := range res2.Violations {
		fmt.Println("violation:", v)
	}
}

func buildSpec() *stg.STG {
	g := stg.New("arbiter")
	g.AddSignal("r1", stg.Input)
	g.AddSignal("r2", stg.Input)
	g.AddSignal("g1", stg.Output)
	g.AddSignal("g2", stg.Output)
	n := g.Net
	res := n.AddPlace("res", 1)
	for _, client := range []string{"1", "2"} {
		rp := g.Rise("r" + client)
		gp := g.Rise("g" + client)
		rm := g.Fall("r" + client)
		gm := g.Fall("g" + client)
		n.Chain(rp, gp, rm, gm)
		n.Implicit(gm, rp, 1)
		n.ArcPT(res, gp)
		n.ArcTP(gm, res)
	}
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	return g
}

func netlist(kind logic.GateKind) *logic.Netlist {
	nl := &logic.Netlist{Name: "mutex-arbiter"}
	r1 := nl.AddSignal("r1", stg.Input)
	r2 := nl.AddSignal("r2", stg.Input)
	g1 := nl.AddSignal("g1", stg.Output)
	g2 := nl.AddSignal("g2", stg.Output)
	cube := func(lits map[int]bool) boolmin.Cover {
		c := boolmin.FullCube()
		for v, pos := range lits {
			c = c.WithLiteral(v, pos)
		}
		return boolmin.Cover{N: 4, Cubes: []boolmin.Cube{c}}
	}
	nl.Gates = []logic.Gate{
		{Kind: kind, Output: g1, F: cube(map[int]bool{r1: true, g2: false})},
		{Kind: kind, Output: g2, F: cube(map[int]bool{r2: true, g1: false})},
	}
	return nl
}
