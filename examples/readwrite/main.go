// Read/write VME controller (Figure 5): a specification with environment
// choice. The example walks through structural analysis (choice places,
// linear reductions, state-machine cover and invariants — Figure 6), the
// engine comparison of Section 2.2, and full synthesis of the controller
// serving both cycles.
//
// Run with: go run ./examples/readwrite
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/reach"
	"repro/internal/structural"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
	"repro/internal/vme"
)

func main() {
	g := vme.ReadWriteSTG()
	n := g.Net
	fmt.Printf("spec %s: %d transitions, %d places, choice places: %d\n",
		g.Name(), len(n.Transitions), len(n.Places), len(n.ChoicePlaces()))

	// Structural analysis (Figure 6).
	reduced, trace := structural.Reduce(n)
	fmt.Printf("\n== linear reductions ==\n%d rule applications; %d transitions, %d places remain\n",
		len(trace), len(reduced.Transitions), len(reduced.Places))
	cover, ok := structural.SMCover(reduced)
	if !ok {
		log.Fatal("no SM cover")
	}
	fmt.Printf("state-machine cover: %d components\n", len(cover))
	m0 := reduced.InitialMarking()
	for _, y := range structural.PSemiflows(reduced) {
		fmt.Println("  invariant:", structural.FormatInvariant(reduced, y, m0))
	}
	d, err := symbolic.NewDense(reduced)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense encoding: %d places -> %d variables\n", len(reduced.Places), d.Bits())

	// Engine comparison (Section 2.2).
	fmt.Println("\n== state-space engines ==")
	rg, err := reach.Explore(n, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit:  %d states\n", rg.NumStates())
	sym, err := symbolic.Reach(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symbolic:  %.0f states (%d BDD nodes)\n", sym.Count, sym.PeakNodes)
	u, err := unfold.Build(n, unfold.Options{})
	if err != nil {
		log.Fatal(err)
	}
	c, e, k := u.Stats()
	fmt.Printf("unfolding: %d conditions, %d events (%d cutoffs)\n", c, e, k)
	st, err := stubborn.Explore(n, stubborn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stubborn:  %d states\n", st.States)

	// Synthesis.
	fmt.Println("\n== synthesis ==")
	rep, err := core.Synthesize(g, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
}
