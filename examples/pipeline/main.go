// Performance analysis (Section 2.1): latency and throughput of a Muller
// pipeline controller, cross-checked three ways —
//
//  1. analytically: min/max cycle time of the specification marked graph
//     (maximum cycle ratio) and request→acknowledge latency via exact time
//     separation of events;
//  2. by timed simulation of the synthesized gate-level circuit composed
//     with its environment;
//  3. by formal verification that the circuit is speed independent (so the
//     timing numbers describe a hazard-free design).
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/timing"
)

func main() {
	const stages = 4
	g := gen.MullerPipeline(stages)
	fmt.Printf("spec: %s — %d signals, %d transitions\n",
		g.Name(), len(g.Signals), len(g.Net.Transitions))

	// Synthesize and verify.
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Verify(nl, g, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d gates, %d literals — speed independent: %v\n",
		len(nl.Gates), nl.LiteralCount(), res.OK())

	// Analytic performance: environment requests take 5..9 time units, the
	// first-stage acknowledge 1..2, the rest a fixed 2. (Keeping most
	// intervals degenerate keeps the exact separation analysis's shared
	// enumeration small; see timing.MaxSeparation.)
	delays := make([]timing.Delay, len(g.Net.Transitions))
	for t := range delays {
		l := g.Labels[t]
		switch g.Signals[l.Sig].Name {
		case "r0":
			delays[t] = timing.Delay{Min: 5, Max: 9}
		case "a0":
			delays[t] = timing.Delay{Min: 1, Max: 2}
		default:
			delays[t] = timing.Fixed(2)
		}
	}
	spec := timing.Spec{G: g, Delays: delays}
	ctMin, err := timing.CycleTime(spec, false)
	if err != nil {
		log.Fatal(err)
	}
	ctMax, err := timing.CycleTime(spec, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic cycle time: [%.1f, %.1f]\n", ctMin, ctMax)
	lat, err := timing.Latency(spec, "r0+", "a0+", 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst-case r0+ -> a0+ latency: %d\n", lat)

	// Timed simulation of the synthesized circuit under matching delays.
	delayFn := func(signal string, rise bool) (int64, int64) {
		switch signal {
		case "r0":
			return 5, 9
		case "a0":
			return 1, 2
		default:
			return 2, 2
		}
	}
	for _, seed := range []int64{1, 2, 3} {
		tr, err := sim.TimedSimulate(nl, g, delayFn, rand.New(rand.NewSource(seed)), 1200)
		if err != nil {
			log.Fatal(err)
		}
		period, err := tr.MeanPeriod("r0", true, 10)
		if err != nil {
			log.Fatal(err)
		}
		inBounds := period >= ctMin-1e-9 && period <= ctMax+1e-9
		fmt.Printf("timed simulation (seed %d): mean period %.2f (within analytic bounds: %v)\n",
			seed, period, inBounds)
	}
}
