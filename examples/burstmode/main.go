// Burst-mode design (Section 6): an alternative specification style for
// controllers whose environment respects the fundamental mode — after each
// input burst, the circuit settles before the next burst arrives.
//
// The example specifies a small DMA-grant controller: requests arrive as a
// two-signal burst (req+ dav+ -> grant+), a single abort signal cancels
// (abort+ -> grant stays low via a different path), and synthesis produces
// hazard-free two-level logic verified by exhaustive burst simulation.
//
// Run with: go run ./examples/burstmode
package main

import (
	"fmt"
	"log"

	"repro/internal/burstmode"
)

func main() {
	m := burstmode.NewMachine("dma-grant",
		[]string{"req", "dav", "abort"},
		[]string{"grant", "busy"})
	s0 := m.AddState()
	s1 := m.AddState()
	s2 := m.AddState()

	// s0: req+ dav+ / grant+ -> s1   (normal grant)
	m.AddArc(s0,
		[]burstmode.Edge{{Sig: 0, Rise: true}, {Sig: 1, Rise: true}},
		[]burstmode.Edge{{Sig: 0, Rise: true}}, s1)
	// s1: req- dav- / grant- -> s0   (release)
	m.AddArc(s1,
		[]burstmode.Edge{{Sig: 0, Rise: false}, {Sig: 1, Rise: false}},
		[]burstmode.Edge{{Sig: 0, Rise: false}}, s0)
	// s0: abort+ / busy+ -> s2       (abort path)
	m.AddArc(s0,
		[]burstmode.Edge{{Sig: 2, Rise: true}},
		[]burstmode.Edge{{Sig: 1, Rise: true}}, s2)
	// s2: abort- / busy- -> s0
	m.AddArc(s2,
		[]burstmode.Edge{{Sig: 2, Rise: false}},
		[]burstmode.Edge{{Sig: 1, Rise: false}}, s0)

	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("burst-mode machine validated: maximal-set and unique-entry hold")

	impl, err := burstmode.Synthesize(m)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range impl.Covers {
		fmt.Printf("%s = %s\n", m.Outputs[r.Output], r.Cover.Expr(impl.Vars))
	}

	// Fundamental-mode validation: every burst in every arrival order.
	checked := 0
	for s := range m.Arcs {
		for ai := range m.Arcs[s] {
			if err := impl.SimulateBurst(s, ai); err != nil {
				log.Fatalf("hazard: %v", err)
			}
			checked++
		}
	}
	fmt.Printf("simulated %d bursts in all arrival orders: no glitches, all outputs settle per spec\n", checked)
}
