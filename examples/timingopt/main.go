// Timing optimization (Section 5, Figure 11): synthesizing the READ-cycle
// controller under relative timing assumptions.
//
//	(a) sep(LDTACK-, DSr+) < 0  — the local handshake resets faster than the
//	    bus issues the next request: the CSC conflict disappears and no
//	    state signal is needed;
//	(b) sep(D-, LDS-) < 0 — LDS- may be triggered early from DSr-;
//	(c) both.
//
// Each variant is verified speed-independent under its assumptions, and the
// assumptions themselves are checked numerically with the time-separation
// engine given plausible delay budgets.
//
// Run with: go run ./examples/timingopt
package main

import (
	"fmt"
	"log"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/vme"
)

func main() {
	g := vme.ReadSTG()

	// Baseline: untimed synthesis needs a state signal.
	sol, err := encoding.SolveCSC(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	base, err := logic.Synthesize(sol.SG, logic.ComplexGate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("untimed: %s (%d literals)\n%s\n\n", sol.Description, base.LiteralCount(), indent(base.Equations()))

	// Check the (a) assumption numerically: slow bus, fast device.
	delays := make([]timing.Delay, len(g.Net.Transitions))
	for i := range delays {
		delays[i] = timing.Fixed(2)
	}
	delays[g.Net.TransitionIndex("DSr+")] = timing.Delay{Min: 40, Max: 80}
	spec := timing.Spec{G: g, Delays: delays}
	sep, err := timing.MaxSeparation(spec,
		timing.Occurrence{Transition: g.Net.TransitionIndex("LDTACK-"), Cycle: 2},
		timing.Occurrence{Transition: g.Net.TransitionIndex("DSr+"), Cycle: 3}, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSE check: max sep(LDTACK-, DSr+next) = %d (assumption %v)\n\n", sep, sep < 0)

	// (a) Encode the assumption, resynthesize.
	timed, _, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
	if err != nil {
		log.Fatal(err)
	}
	sgA, err := reach.BuildSG(timed, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nlA, err := logic.Synthesize(sgA, logic.ComplexGate)
	if err != nil {
		log.Fatal(err)
	}
	resA, err := sim.Verify(nlA, timed, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(a) sep(LDTACK-,DSr+)<0: CSC=%v, %d literals, SI=%v\n%s\n\n",
		sgA.HasCSC(), nlA.LiteralCount(), resA.OK(), indent(nlA.Equations()))

	// (b) Early enabling of LDS-.
	early, cons, err := timing.Retrigger(g, "LDS-", "D-", "DSr-")
	if err != nil {
		log.Fatal(err)
	}
	solB, err := encoding.SolveCSC(early, 0)
	if err != nil {
		log.Fatal(err)
	}
	nlB, err := logic.Synthesize(solB.SG, logic.ComplexGate)
	if err != nil {
		log.Fatal(err)
	}
	resB, err := sim.Verify(nlB, g, sim.Options{Constraints: []sim.RelativeOrder{cons}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(b) %v: %d literals, SI under constraint=%v\n%s\n\n",
		cons, nlB.LiteralCount(), resB.OK(), indent(nlB.Equations()))

	// (c) Both assumptions.
	both, _, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
	if err != nil {
		log.Fatal(err)
	}
	both, cons2, err := timing.Retrigger(both, "LDS-", "D-", "DSr-")
	if err != nil {
		log.Fatal(err)
	}
	sgC, err := reach.BuildSG(both, reach.Options{})
	if err != nil {
		log.Fatal(err)
	}
	nlC, err := logic.Synthesize(sgC, logic.ComplexGate)
	if err != nil {
		log.Fatal(err)
	}
	resC, err := sim.Verify(nlC, both, sim.Options{Constraints: []sim.RelativeOrder{cons2}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(c) both assumptions: CSC=%v, %d literals, SI=%v\n%s\n",
		sgC.HasCSC(), nlC.LiteralCount(), resC.OK(), indent(nlC.Equations()))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
