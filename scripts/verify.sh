#!/usr/bin/env bash
# Repo verification gate: formatting, vet, build, full tests, and the
# race-detector subset covering the concurrent exploration engines.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# -timeout 30s per test binary: a hang in a budget/cancellation path must
# fail the gate, not wedge it.
go test -timeout 30s ./...
go test -timeout 30s -race ./internal/reach/... ./internal/stubborn/... ./internal/shardset/...
# Fault-injection harness under the race detector: cancel/limit/panic
# faults at every named check site must produce typed errors with no
# hangs, crashes or goroutine leaks.
go test -timeout 60s -race ./internal/faultinject/
# Cross-engine differential suite under the race detector, then a short
# fuzz smoke of the BDD kernel against its truth-table oracle.
go test -timeout 60s -run Conformance -race ./internal/conformance/
go test -fuzz=FuzzBDDOps -fuzztime=5s -run '^$' ./internal/bdd/
# .g parser fuzz smoke: no panics, canonical form is a fixed point.
go test -fuzz=FuzzSTGParse -fuzztime=5s -run '^$' ./internal/stg/
# Parallel synthesis determinism under the race detector: identical
# solutions, functions and netlists at every worker count.
go test -timeout 60s -race -run 'Deterministic|MatchesSequential|TieBreak|CSCError' ./internal/encoding/ ./internal/logic/
# Benchmark trajectory harness smoke: one iteration of the suite, parsed
# through cmd/report -bench-json into a validated throwaway record.
scripts/bench.sh -smoke
echo "verify: OK"
