#!/usr/bin/env bash
# Repo verification gate: formatting, vet, build, full tests, and the
# race-detector subset covering the concurrent exploration engines.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/reach/... ./internal/stubborn/... ./internal/shardset/...
# Cross-engine differential suite under the race detector, then a short
# fuzz smoke of the BDD kernel against its truth-table oracle.
go test -run Conformance -race ./internal/conformance/
go test -fuzz=FuzzBDDOps -fuzztime=5s -run '^$' ./internal/bdd/
# Parallel synthesis determinism under the race detector: identical
# solutions, functions and netlists at every worker count.
go test -race -run 'Deterministic|MatchesSequential|TieBreak|CSCError' ./internal/encoding/ ./internal/logic/
# Benchmark trajectory harness smoke: one iteration of the suite, parsed
# through cmd/report -bench-json into a validated throwaway record.
scripts/bench.sh -smoke
echo "verify: OK"
