#!/usr/bin/env bash
# Repo verification gate: formatting, vet, build, full tests, and the
# race-detector subset covering the concurrent exploration engines.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
# -timeout 30s per test binary: a hang in a budget/cancellation path must
# fail the gate, not wedge it.
go test -timeout 30s ./...
go test -timeout 30s -race ./internal/reach/... ./internal/stubborn/... ./internal/obs/... ./internal/serve/...
# Lock-free structures under the race detector across processor counts:
# the CAS shardset (dense-id and limit invariants), the concurrent BDD
# kernel (canonicity, epoch retry) and the parallel symbolic image.
go test -timeout 60s -race -cpu 1,2,4 ./internal/shardset/
go test -timeout 120s -race ./internal/bdd/ ./internal/symbolic/
# Fault-injection harness under the race detector: cancel/limit/panic
# faults at every named check site must produce typed errors with no
# hangs, crashes or goroutine leaks.
go test -timeout 60s -race ./internal/faultinject/
# Cross-engine differential suite under the race detector, pinned to
# GOMAXPROCS=4 so the work-stealing explorer and the parallel symbolic
# image really interleave: every engine must agree bit for bit at workers
# 1/2/4. Then a short fuzz smoke of the BDD kernel against its
# truth-table oracle.
GOMAXPROCS=4 go test -timeout 120s -run Conformance -race ./internal/conformance/
go test -fuzz=FuzzBDDOps -fuzztime=5s -run '^$' ./internal/bdd/
# .g parser fuzz smoke: no panics, canonical form is a fixed point.
go test -fuzz=FuzzSTGParse -fuzztime=5s -run '^$' ./internal/stg/
# Property layer gate: unit + golden/CLI tests under the race detector,
# fault injection into its budget sites, and a parser fuzz smoke whose
# accepted inputs double as an explicit-vs-symbolic oracle. The
# cross-engine differential (TestPropConformance) rides the conformance
# line above.
go test -timeout 60s -race ./internal/prop/ ./cmd/verify/
go test -fuzz=FuzzPropParse -fuzztime=5s -run '^$' ./internal/prop/
# Parallel synthesis determinism under the race detector: identical
# solutions, functions and netlists at every worker count.
go test -timeout 60s -race -run 'Deterministic|MatchesSequential|TieBreak|CSCError' ./internal/encoding/ ./internal/logic/
# Observability gate: instrumented runs of cmd/synth and cmd/reach on the
# VME example must export a metrics snapshot with non-zero counters for the
# instrumented engines and a well-formed flow → phase → engine trace. The
# artifacts are validated by the TestExternalArtifacts hook in internal/obs.
obsdir=$(mktemp -d /tmp/obs_gate.XXXXXX)
trap 'rm -rf "$obsdir"' EXIT
go run ./cmd/synth -metrics "$obsdir/synth.metrics.json" \
    -trace-json "$obsdir/synth.trace.json" testdata/vme-read.g > /dev/null
OBS_METRICS_FILE="$obsdir/synth.metrics.json" \
OBS_TRACE_FILE="$obsdir/synth.trace.json" \
OBS_REQUIRE_HIERARCHY=1 \
OBS_REQUIRE_COUNTERS=reach.states,reach.arcs,encoding.candidates,logic.signals,logic.cover_literals \
    go test -timeout 30s -run TestExternalArtifacts -count=1 ./internal/obs/
# cmd/reach covers the engines a successful synthesis flow never runs
# (symbolic, unfolding, stubborn sets) plus the BDD kernel counters.
go run ./cmd/reach -metrics "$obsdir/reach.metrics.json" \
    -trace-json "$obsdir/reach.trace.json" testdata/vme-read-write.g > /dev/null
OBS_METRICS_FILE="$obsdir/reach.metrics.json" \
OBS_TRACE_FILE="$obsdir/reach.trace.json" \
OBS_REQUIRE_HIERARCHY=1 \
OBS_REQUIRE_COUNTERS=reach.states,symbolic.iterations,bdd.cache_lookups,unfold.events,stubborn.states \
    go test -timeout 30s -run TestExternalArtifacts -count=1 ./internal/obs/
# Daemon smoke gate under the race detector: boots cmd/serve on a free
# port, synthesizes the VME spec cold and cached (the cache hit must not
# charge an engine run), validates /metrics through obs.ParseSnapshot, and
# drains cleanly on SIGINT.
go test -timeout 120s -race -run TestDaemonSmokeAndGracefulShutdown -count=1 ./cmd/serve/
# Live-telemetry gate under the race detector: W3C traceparent propagation
# through envelope/header/journal, the retained per-job span tree in both
# trace schemas, SSE job streaming, Prometheus content negotiation on
# /metrics, JSON structured logs stamped with the trace id, and the private
# pprof listener (the public mux must 404 /debug/pprof/).
go test -timeout 120s -race -run 'TestLiveTelemetryE2E|TestBadLogFormatIsUsageError' -count=1 ./cmd/serve/
go test -timeout 60s -race -run 'Trace|SSE|Prom|Metrics' -count=1 ./internal/serve/ ./internal/obs/
# Bench regression comparator unit gate (the smoke diff below exercises the
# real records).
go test -timeout 30s -run Regress -count=1 ./cmd/report/
# Chaos gate under the race detector (goroutine-leak-checked): cmd/serve as
# a real subprocess SIGKILLed at the journal-append, mid-job and
# mid-cache-write kill sites, restarted on the same data dir. Invariants:
# no acknowledged job lost, died-mid-run jobs reported interrupted, torn
# cache writes never served, warm p50 journaling overhead within 10%.
go test -timeout 300s -race -count=1 ./internal/chaos/
# Benchmark trajectory harness smoke: one iteration of the suite, parsed
# through cmd/report -bench-json into a validated throwaway record.
scripts/bench.sh -smoke
echo "verify: OK"
