#!/usr/bin/env bash
# Benchmark trajectory harness: runs the synthesis benchmark suite and
# writes the parsed record to BENCH_synth.json via cmd/report -bench-json.
#
# Usage:
#   scripts/bench.sh            # full run, writes BENCH_synth.json
#   scripts/bench.sh -smoke     # 1-iteration run into a temp file; validates
#                               # the harness without touching the committed
#                               # record, then diffs it against the committed
#                               # trajectory via cmd/report -regress (used by
#                               # scripts/verify.sh)
#
# Environment:
#   BENCHTIME               go test -benchtime for the full run (default 1s)
#   OUT                     output path for the full run (default BENCH_synth.json)
#   SMOKE_REGRESS_THRESHOLD -regress threshold for the smoke diff (default 8.0,
#                           i.e. +800% — a blowup guard, not a timing gate)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='^(BenchmarkSolveCSC|BenchmarkEquationDerivation|BenchmarkFullFlow|BenchmarkSymbolicVsExplicit|BenchmarkParallelExplore|BenchmarkSymbolicParallel|BenchmarkServeSynthesize|BenchmarkPropCheck|BenchmarkObsDisabledOverhead|BenchmarkObsEnabledCounter)$'
# The obs overhead guards live in their own package; the root package holds
# everything else.
BENCH_PKGS='. ./internal/obs'
# Parallel families swept across GOMAXPROCS for the speedup columns: the
# work-stealing explicit engine, the parallel symbolic image and the
# lock-free shardset (the latter lives in its own package).
SWEEP='^(BenchmarkParallelExplore|BenchmarkSymbolicParallel|BenchmarkShardSetParallel)$'
SWEEP_PKGS='. ./internal/shardset'

# run_sweep OUTVAR benchtime: runs the parallel families at GOMAXPROCS
# 1, 2 and 4, capturing raw output per processor count, and sets OUTVAR to
# the "procs=file,..." spec cmd/report -scaling consumes.
run_sweep() {
    local -n _spec=$1
    local benchtime=$2
    _spec=""
    for p in 1 2 4; do
        local f="$snapdir/sweep_$p.txt"
        # shellcheck disable=SC2086
        GOMAXPROCS=$p go test -run '^$' -bench "$SWEEP" -benchtime="$benchtime" $SWEEP_PKGS > "$f"
        _spec+="${_spec:+,}$p=$f"
    done
}

# Instrumented flow run: the metrics snapshot from cmd/synth -metrics on the
# VME example is merged into the bench record so the trajectory carries the
# engine counters (states, candidates, cover literals, ...) next to timings.
snapdir=$(mktemp -d /tmp/bench_metrics.XXXXXX)
trap 'rm -rf "$snapdir"' EXIT
snap="$snapdir/vme-read.json"
go run ./cmd/synth -metrics "$snap" testdata/vme-read.g > /dev/null

if [ "${1:-}" = "-smoke" ]; then
    out=$(mktemp "$snapdir/bench_synth.XXXXXX.json")
    run_sweep sweepspec 1x
    # shellcheck disable=SC2086
    go test -run '^$' -bench "$BENCHES" -benchtime=1x $BENCH_PKGS \
        | go run ./cmd/report -bench-json -merge-metrics "$snap" -scaling "$sweepspec" > "$out"
    # The record must be well-formed JSON with a non-empty benchmark list.
    go run ./cmd/report -bench-json < /dev/null > /dev/null # exercises the empty path
    python3 - "$out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    rec = json.load(f)
assert rec["suite"] == "synth", rec
assert rec["benchmarks"], "no benchmarks parsed"
names = {b["name"] for b in rec["benchmarks"]}
for want in ("SolveCSC/cscring-3/w1", "SolveCSC/cscring-3/w4",
             "EquationDerivation/cscring-2/w1", "EquationDerivation/cscring-2/w4",
             "ServeSynthesize/cold", "ServeSynthesize/cached",
             "ServeSynthesize/cold-durable", "ServeSynthesize/cached-durable",
             "ServeSynthesize/disk-hit",
             "SymbolicParallel/toggles-16/w1", "SymbolicParallel/toggles-16/w4",
             "PropCheck/vme-read/explicit/w1", "PropCheck/vme-read/symbolic"):
    assert want in names, f"{want} missing from {sorted(names)}"
for want in ("ObsDisabledOverhead/counter", "ObsDisabledOverhead/span",
             "ObsEnabledCounter"):
    assert want in names, f"{want} missing from {sorted(names)}"
snap = rec["metrics_snapshots"]["vme-read"]
for counter in ("reach.states", "encoding.candidates", "logic.signals"):
    assert snap["counters"].get(counter, 0) > 0, f"{counter} zero in snapshot"
scaling = rec["scaling"]
assert scaling["gomaxprocs"] == [1, 2, 4], scaling["gomaxprocs"]
rows = {r["name"]: r for r in scaling["rows"]}
assert rows, "scaling sweep produced no rows"
for want in ("ParallelExplore/pipeline-8/w4", "SymbolicParallel/toggles-16/w4",
             "ShardSetParallel/insert"):
    row = rows.get(want)
    assert row, f"{want} missing from scaling rows {sorted(rows)}"
    for p in ("1", "2", "4"):
        assert row["ns_per_op"].get(p, 0) > 0, f"{want} has no ns/op at p={p}"
    for p in ("2", "4"):
        assert row.get("speedup", {}).get(p, 0) > 0, f"{want} has no speedup at p={p}"
print(f"bench smoke: {len(rec['benchmarks'])} benchmarks parsed OK, "
      f"{len(snap['counters'])} counters merged, "
      f"{len(rows)} scaling rows across GOMAXPROCS {scaling['gomaxprocs']}")
EOF
    # Regression guard against the committed trajectory. The smoke run is a
    # single iteration on whatever machine runs the gate, so the threshold is
    # deliberately loose (order-of-magnitude guard, default +800%): it
    # catches accidental algorithmic blowups, not scheduling noise.
    go run ./cmd/report -regress -threshold "${SMOKE_REGRESS_THRESHOLD:-8.0}" \
        BENCH_synth.json "$out"
    exit 0
fi

out=${OUT:-BENCH_synth.json}
run_sweep sweepspec "${BENCHTIME:-1s}"
# shellcheck disable=SC2086
go test -run '^$' -bench "$BENCHES" -benchtime="${BENCHTIME:-1s}" -benchmem $BENCH_PKGS \
    | go run ./cmd/report -bench-json -merge-metrics "$snap" -scaling "$sweepspec" > "$out"
echo "wrote $out"
