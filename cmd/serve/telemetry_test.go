package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
)

const (
	e2eTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	e2eTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  string
}

// readSSEFrames drains an SSE body to EOF (the handler returns after the
// terminal "done" event), skipping ":" heartbeat comments.
func readSSEFrames(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return frames
}

// TestLiveTelemetryE2E drives the whole telemetry plane through the real
// daemon: an async synthesize carrying a W3C traceparent, the SSE event
// stream, the retained trace in both schemas, /metrics content negotiation,
// JSON structured logs stamped with the trace id, the private pprof
// listener, and a clean drain.
func TestLiveTelemetryE2E(t *testing.T) {
	spec, err := os.ReadFile("../../testdata/vme-read.g")
	if err != nil {
		t.Fatal(err)
	}

	out := &syncBuffer{}  // stdout: banners
	logs := &syncBuffer{} // stderr: slog JSON records
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-pprof-addr", "127.0.0.1:0",
			"-log-format", "json",
			"-drain", "30s",
		}, out, logs, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v\n%s\n%s", err, out, logs)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}

	// The pprof banner is printed before the listen banner, so it is
	// complete by the time ready fires.
	var pprofBase string
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "serve: pprof on http://"); ok {
			pprofBase = "http://" + strings.TrimSpace(rest)
		}
	}
	if pprofBase == "" {
		t.Fatalf("missing pprof banner:\n%s", out)
	}

	// Async synthesize carrying an incoming traceparent: the envelope and
	// the X-Trace-Id header both echo the propagated trace id.
	body, err := json.Marshal(map[string]any{"spec": string(spec), "async": true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", e2eTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID   string `json:"job_id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || accepted.JobID == "" {
		t.Fatalf("async synthesize: %d %+v", resp.StatusCode, accepted)
	}
	if accepted.TraceID != e2eTraceID {
		t.Fatalf("envelope trace_id = %q, want propagated %q", accepted.TraceID, e2eTraceID)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != e2eTraceID {
		t.Fatalf("X-Trace-Id = %q, want %q", got, e2eTraceID)
	}

	// Poll to terminal.
	jobURL := base + "/v1/jobs/" + accepted.JobID
	deadline := time.Now().Add(30 * time.Second)
	var final map[string]any
	for {
		r, err := http.Get(jobURL)
		if err != nil {
			t.Fatal(err)
		}
		final = map[string]any{}
		if err := json.NewDecoder(r.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if s, _ := final["status"].(string); s != "queued" && s != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final["status"] != "done" || final["trace_id"] != e2eTraceID {
		t.Fatalf("final job state: %v", final)
	}

	// SSE on the finished job: a late subscriber still gets the initial
	// status snapshot plus the buffered terminal "done" event.
	r, err := http.Get(jobURL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE content type = %q", ct)
	}
	frames := readSSEFrames(t, r.Body)
	r.Body.Close()
	if len(frames) < 2 || frames[0].event != "status" || frames[len(frames)-1].event != "done" {
		t.Fatalf("SSE frames = %+v", frames)
	}
	var doneEv struct {
		Status  string `json:"status"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(frames[len(frames)-1].data), &doneEv); err != nil {
		t.Fatal(err)
	}
	if doneEv.Status != "done" || doneEv.TraceID != e2eTraceID {
		t.Fatalf("terminal SSE event: %+v", doneEv)
	}

	// Retained trace, obs snapshot schema: parseable, hierarchically valid,
	// and actually carrying the engine span tree.
	r, err = http.Get(jobURL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceJSON, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace: %d %s", r.StatusCode, traceJSON)
	}
	if got := r.Header.Get("X-Trace-Id"); got != e2eTraceID {
		t.Fatalf("trace endpoint X-Trace-Id = %q, want %q", got, e2eTraceID)
	}
	snap, err := obs.ParseSnapshot(traceJSON)
	if err != nil {
		t.Fatalf("trace does not parse as obs snapshot: %v", err)
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatalf("trace hierarchy invalid: %v", err)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("retained trace has no spans")
	}

	// Same trace, Chrome trace_event schema.
	r, err = http.Get(jobURL + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(chrome); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}

	// /metrics content negotiation: JSON by default, Prometheus text
	// exposition when asked for text/plain.
	r, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsJSON, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	msnap, err := obs.ParseSnapshot(metricsJSON)
	if err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if err := msnap.Validate(); err != nil {
		t.Fatalf("/metrics snapshot invalid: %v", err)
	}
	preq, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Accept", "text/plain")
	r, err = http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	promText, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := r.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prom content type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.ValidateProm(promText); err != nil {
		t.Fatalf("prom exposition invalid: %v\n%s", err, promText)
	}
	if !strings.Contains(string(promText), "serve_requests") {
		t.Fatalf("prom exposition missing serve_requests:\n%s", promText)
	}

	// Structured logs: JSON records on stderr stamped with the trace id,
	// including access-log and job-lifecycle records.
	logText := logs.String()
	if !strings.Contains(logText, e2eTraceID) {
		t.Fatalf("stderr logs never mention the trace id:\n%s", logText)
	}
	if !strings.Contains(logText, `"msg":"http"`) {
		t.Fatalf("stderr logs missing access-log records:\n%s", logText)
	}
	if !strings.Contains(logText, `"msg":"job finished"`) {
		t.Fatalf("stderr logs missing job lifecycle records:\n%s", logText)
	}
	for _, line := range strings.Split(strings.TrimSpace(logText), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("non-JSON log line: %q", line)
		}
	}

	// The profiling surface lives only on the private listener.
	r, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("public mux serves /debug/pprof/: %d", r.StatusCode)
	}
	r, err = http.Get(pprofBase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("pprof listener /debug/pprof/cmdline: %d", r.StatusCode)
	}

	// Clean drain.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v\n%s\n%s", err, out, logs)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained after SIGINT")
	}
	if !strings.Contains(out.String(), "serve: drained") {
		t.Fatalf("missing drain confirmation:\n%s", out)
	}
}

// TestBadLogFormatIsUsageError pins the flag contract: an unknown
// -log-format is a usage error (exit 2), not a silent fallback.
func TestBadLogFormatIsUsageError(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-log-format", "xml"}, io.Discard, &stderr, nil)
	if err == nil {
		t.Fatal("run accepted -log-format xml")
	}
	var u cli.Usage
	if !errors.As(err, &u) {
		t.Fatalf("error is %T (%v), want cli.Usage", err, err)
	}
	if !strings.Contains(stderr.String(), "unknown -log-format") {
		t.Fatalf("stderr missing diagnostic: %s", &stderr)
	}
}
