// Command serve runs the synthesis flow as an HTTP/JSON daemon: parse,
// analysis, synthesis and verification as bounded, cancellable jobs behind
// a content-addressed result cache.
//
// Usage:
//
//	serve [-addr HOST:PORT] [-workers N] [-queue N]
//	      [-cache-entries N] [-cache-bytes N] [-async-threshold N]
//	      [-job-timeout D] [-drain D] [-data-dir DIR]
//	      [-shed-cost N] [-shed-base D] [-shed-cap D]
//	      [-log-format text|json] [-pprof-addr HOST:PORT]
//	      [-trace-entries N] [-trace-bytes N]
//	      [-metrics FILE] [-trace-json FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// Endpoints (see internal/serve): POST /v1/parse, /v1/analyze,
// /v1/synthesize, /v1/verify; GET /v1/jobs/{id}, /v1/jobs/{id}/trace,
// /v1/jobs/{id}/events (SSE); DELETE /v1/jobs/{id}; GET /metrics (JSON, or
// Prometheus text via Accept: text/plain); GET /healthz; GET /readyz.
//
// The daemon logs structured records (log/slog) to stderr — text by
// default, JSON with -log-format json — each stamped with the request's
// trace id. -pprof-addr exposes net/http/pprof on a separate private
// listener; the public mux never serves /debug/pprof/.
//
// -data-dir makes the daemon durable: jobs are journaled (accepted jobs
// survive a crash and re-enqueue on restart; jobs that died mid-run are
// reported as interrupted) and cached results persist on disk across
// restarts. -shed-cost bounds the total in-flight admission cost; excess
// requests get 503 with a decorrelated-jitter Retry-After hint.
//
// The daemon prints "serve: listening on http://ADDR" once ready (use
// -addr 127.0.0.1:0 to pick a free port) and drains gracefully on SIGINT
// or SIGTERM: new requests are rejected, in-flight jobs get -drain time to
// finish, then outstanding jobs are canceled through their budgets.
//
// -metrics and -trace-json export the aggregated server registry on exit;
// usage errors exit 2, runtime errors exit 1 (shared cli conventions).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	cli.Exit("serve", run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run starts the daemon and blocks until a signal or a server error. ready,
// when non-nil, receives the bound listen address once the daemon accepts
// connections (used by the e2e tests; main passes nil and watches stdout).
func run(args []string, stdout, stderr io.Writer, ready chan<- string) (err error) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address (use :0 for a free port)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "job worker-pool size")
	queue := fs.Int("queue", 64, "job queue depth; a full queue rejects with 503")
	cacheEntries := fs.Int("cache-entries", 256, "result-cache entry bound (negative disables the cache)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result-cache byte bound")
	asyncThreshold := fs.Int("async-threshold", 256, "transition count above which requests default to async job handles")
	jobTimeout := fs.Duration("job-timeout", 0, "wall-clock ceiling per job (0 = none)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	dataDir := fs.String("data-dir", "", "durability directory: job journal + disk result cache (empty = in-memory only)")
	shedCost := fs.Int64("shed-cost", 0, "in-flight admission-cost bound; past it requests shed with 503 + Retry-After (0 = 4×queue×2^20, negative disables)")
	shedBase := fs.Duration("shed-base", time.Second, "minimum Retry-After hint on shed responses")
	shedCap := fs.Duration("shed-cap", 30*time.Second, "maximum Retry-After hint on shed responses")
	logFormat := fs.String("log-format", "text", "structured log format on stderr: text or json")
	pprofAddr := fs.String("pprof-addr", "", "listen address for net/http/pprof on a separate private listener (empty = disabled)")
	traceEntries := fs.Int("trace-entries", 64, "per-job trace ring entry bound (negative disables trace retention)")
	traceBytes := fs.Int64("trace-bytes", 16<<20, "per-job trace ring byte bound")
	var ins cli.Instrumentation
	ins.AddFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fmt.Fprintln(stderr, "serve: unexpected argument", fs.Arg(0))
		return cli.Usage{Err: errors.New("unexpected argument")}
	}
	var logHandler slog.Handler
	switch *logFormat {
	case "text":
		logHandler = slog.NewTextHandler(stderr, nil)
	case "json":
		logHandler = slog.NewJSONHandler(stderr, nil)
	default:
		fmt.Fprintf(stderr, "serve: unknown -log-format %q (want text or json)\n", *logFormat)
		return cli.Usage{Err: errors.New("unknown log format")}
	}
	if err := ins.Start(); err != nil {
		return err
	}
	// Same exit-path contract as the batch tools: artifacts export on every
	// exit, panics become typed runtime errors (status 1), see cmd/synth.
	defer cli.Recover(&err)
	defer ins.FinishTo(stdout, stderr, &err)

	srv, err := serve.New(serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		AsyncThreshold: *asyncThreshold,
		JobTimeout:     *jobTimeout,
		DataDir:        *dataDir,
		ShedCost:       *shedCost,
		ShedBase:       *shedBase,
		ShedCap:        *shedCap,
		Logger:         slog.New(logHandler),
		TraceEntries:   *traceEntries,
		TraceBytes:     *traceBytes,
		Registry:       ins.Registry, // nil without -metrics/-trace-json: serve makes its own
	})
	if err != nil {
		return err
	}

	if *pprofAddr != "" {
		// A dedicated private listener: the profiling surface never shares a
		// mux (or a port) with the public API, so it cannot leak through it.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Handler: pmux}
		defer ps.Close()
		fmt.Fprintf(stdout, "serve: pprof on http://%s\n", pln.Addr())
		go ps.Serve(pln)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serve: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		return err
	case got := <-sig:
		fmt.Fprintf(stdout, "serve: %v, draining (deadline %v)\n", got, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting and finish in-flight handlers first (they block on
		// their jobs, which the still-running worker pool completes), then
		// drain the queued async jobs.
		herr := hs.Shutdown(ctx)
		serr := srv.Shutdown(ctx)
		if herr != nil {
			return herr
		}
		if serr != nil {
			return fmt.Errorf("serve: drain deadline exceeded, outstanding jobs canceled: %w", serr)
		}
		fmt.Fprintln(stdout, "serve: drained")
		return nil
	}
}
