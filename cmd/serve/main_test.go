package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer serializes writes from the daemon goroutine against reads
// from the test.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonSmokeAndGracefulShutdown is the cmd-level gate verify.sh runs:
// boot the daemon on a free port, synthesize the VME spec cold and cached,
// validate /metrics through the obs snapshot schema, then SIGINT and
// assert a clean drain with exit status 0 (err == nil).
func TestDaemonSmokeAndGracefulShutdown(t *testing.T) {
	spec, err := os.ReadFile("../../testdata/vme-read.g")
	if err != nil {
		t.Fatal(err)
	}

	out := &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "30s"}, out, out, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, out)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never came up")
	}
	if !strings.Contains(out.String(), "serve: listening on http://") {
		t.Fatalf("missing listen banner:\n%s", out)
	}

	body, err := json.Marshal(map[string]any{"spec": string(spec)})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (int, map[string]any) {
		resp, err := http.Post(base+"/v1/synthesize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var decoded map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, decoded
	}
	code, cold := post()
	if code != http.StatusOK || cold["status"] != "done" {
		t.Fatalf("cold synthesize: %d %v", code, cold)
	}
	code, warm := post()
	if code != http.StatusOK || warm["cached"] != true {
		t.Fatalf("warm synthesize not cached: %d %v", code, warm)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatalf("/metrics does not parse as an obs snapshot: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("/metrics snapshot invalid: %v", err)
	}
	for _, c := range []string{"serve.requests", "serve.engine_runs", "serve.cache_hits", "reach.states"} {
		if snap.Counters[c] <= 0 {
			t.Fatalf("counter %q missing or zero: %v", c, snap.Counters)
		}
	}
	if snap.Counters["serve.engine_runs"] != 1 {
		t.Fatalf("engine_runs = %d, want 1 (cache hit must skip the engines)", snap.Counters["serve.engine_runs"])
	}

	// The daemon installed its own SIGINT handler, so signaling our own
	// process exercises the real drain path.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v\n%s", err, out)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never drained after SIGINT")
	}
	if !strings.Contains(out.String(), "serve: drained") {
		t.Fatalf("missing drain confirmation:\n%s", out)
	}
}
