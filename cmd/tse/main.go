// Command tse computes time separations of events (Section 5) on a
// marked-graph STG with min/max transition delays, plus its min/max cycle
// time.
//
// Usage:
//
//	tse -from 'LDTACK-@2' -to 'DSr+@3' [-cycles 4] [-delay 'DSr+=50:60'] ... file.g
//
// Unlisted transitions default to delay [1,1]. Usage and flag errors go to
// stderr and exit with status 2; runtime errors exit with status 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/stg"
	"repro/internal/timing"
)

type delayFlags map[string]timing.Delay

func (d delayFlags) String() string { return fmt.Sprint(map[string]timing.Delay(d)) }

func (d delayFlags) Set(v string) error {
	eq := strings.SplitN(v, "=", 2)
	if len(eq) != 2 {
		return fmt.Errorf("want NAME=min:max, got %q", v)
	}
	mm := strings.SplitN(eq[1], ":", 2)
	lo, err := strconv.ParseInt(mm[0], 10, 64)
	if err != nil {
		return err
	}
	hi := lo
	if len(mm) == 2 {
		hi, err = strconv.ParseInt(mm[1], 10, 64)
		if err != nil {
			return err
		}
	}
	d[eq[0]] = timing.Delay{Min: lo, Max: hi}
	return nil
}

func main() {
	cli.Exit("tse", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	delays := delayFlags{}
	from := fs.String("from", "", "occurrence NAME@CYCLE")
	to := fs.String("to", "", "occurrence NAME@CYCLE")
	cycles := fs.Int("cycles", 4, "unrolling depth")
	fs.Var(delays, "delay", "NAME=min:max (repeatable)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	ds := make([]timing.Delay, len(g.Net.Transitions))
	for i := range ds {
		ds[i] = timing.Fixed(1)
	}
	for name, d := range delays {
		t := g.Net.TransitionIndex(name)
		if t < 0 {
			return fmt.Errorf("unknown transition %q", name)
		}
		ds[t] = d
	}
	spec := timing.Spec{G: g, Delays: ds}

	ctMax, err := timing.CycleTime(spec, true)
	if err != nil {
		return err
	}
	ctMin, _ := timing.CycleTime(spec, false)
	fmt.Fprintf(stdout, "cycle time: [%.1f, %.1f]\n", ctMin, ctMax)

	if *from == "" || *to == "" {
		return nil
	}
	fo, err := parseOcc(g, *from)
	if err != nil {
		return err
	}
	too, err := parseOcc(g, *to)
	if err != nil {
		return err
	}
	sep, err := timing.MaxSeparation(spec, fo, too, *cycles, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "max sep(%s, %s) = %d", *from, *to, sep)
	if sep < 0 {
		fmt.Fprintf(stdout, "   (constraint sep<0 holds)")
	}
	fmt.Fprintln(stdout)
	return nil
}

func parseOcc(g *stg.STG, s string) (timing.Occurrence, error) {
	parts := strings.SplitN(s, "@", 2)
	t := g.Net.TransitionIndex(parts[0])
	if t < 0 {
		return timing.Occurrence{}, fmt.Errorf("unknown transition %q", parts[0])
	}
	k := 0
	if len(parts) == 2 {
		var err error
		k, err = strconv.Atoi(parts[1])
		if err != nil {
			return timing.Occurrence{}, err
		}
	}
	return timing.Occurrence{Transition: t, Cycle: k}, nil
}

func load(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
