package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

const ring = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

func TestTSECycleTimeOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-delay", "req+=3:5"}, strings.NewReader(ring), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cycle time: [6.0, 8.0]") {
		t.Fatalf("cycle time expected:\n%s", out.String())
	}
}

func TestTSESeparation(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-from", "ack+@2", "-to", "req-@2", "-delay", "req-=10:12"}
	if err := run(args, strings.NewReader(ring), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sep<0 holds") {
		t.Fatalf("negative separation expected:\n%s", out.String())
	}
}

func TestTSEErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-delay", "zz=1:2"}, strings.NewReader(ring), &out, io.Discard); err == nil {
		t.Fatal("unknown transition must error")
	}
	if err := run([]string{"-delay", "broken"}, strings.NewReader(ring), &out, io.Discard); err == nil {
		t.Fatal("malformed delay must error")
	}
	if err := run([]string{"-from", "zz@0", "-to", "ack+@0"}, strings.NewReader(ring), &out, io.Discard); err == nil {
		t.Fatal("unknown occurrence must error")
	}
}
