package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

const vmeRead = `
.model vme-read
.inputs DSr LDTACK
.outputs DTACK LDS D
.graph
DSr+ LDS+
LDS+ LDTACK+
LDTACK+ D+
D+ DTACK+
DTACK+ DSr-
DSr- D-
D- DTACK- LDS-
DTACK- DSr+
LDS- LDTACK-
LDTACK- LDS+
.marking { <DTACK-,DSr+> <LDTACK-,LDS+> }
.end
`

func TestRunReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-conflicts"}, strings.NewReader(vmeRead), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Note: the .g file declares inputs before outputs, so the conflict
	// code prints as 11010 in declaration order — the same pair of states
	// as the paper's 10110 in <DSr,DTACK,LDTACK,LDS,D> order.
	for _, want := range []string{"14 states", "csc=NO", "code 11010", "(signal LDS)", "marked-graph=true"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestRunDOT(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dot"}, strings.NewReader(vmeRead), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Fatal("DOT output expected")
	}
	out.Reset()
	if err := run([]string{"-sgdot"}, strings.NewReader(vmeRead), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "lightcoral") {
		t.Fatal("SG DOT must highlight the conflict")
	}
}

func TestRunWaveAndSG(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-wave", "-sg"}, strings.NewReader(vmeRead), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "~~") || !strings.Contains(out.String(), "--DSr+-->") {
		t.Fatalf("waveform and SG dump expected:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("garbage"), &out, io.Discard); err == nil {
		t.Fatal("parse error expected")
	}
	if err := run([]string{"nonexistent.g"}, nil, &out, io.Discard); err == nil {
		t.Fatal("missing file error expected")
	}
}
