// Command astg loads a Signal Transition Graph in .g (astg) format and
// reports the Section 2.1 implementability properties: boundedness/safeness,
// consistency, complete state coding, persistency and deadlock freedom.
//
// Usage:
//
//	astg [-sg] [-dot] [-sgdot] [-wave] [-conflicts] file.g
//
// With no file the spec is read from stdin. Usage and flag errors go to
// stderr and exit with status 2; runtime errors exit with status 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/encoding"
	"repro/internal/reach"
	"repro/internal/stg"
)

func main() {
	cli.Exit("astg", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("astg", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dumpSG := fs.Bool("sg", false, "dump the state graph")
	dumpDOT := fs.Bool("dot", false, "dump the Petri net in DOT format")
	dumpSGDOT := fs.Bool("sgdot", false, "dump the state graph in DOT format")
	wave := fs.Bool("wave", false, "render one cycle as an ASCII timing diagram")
	showConflicts := fs.Bool("conflicts", false, "list CSC conflicts")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	if *dumpDOT {
		return g.Net.WriteDOT(stdout)
	}
	fmt.Fprintf(stdout, "model %s: %d signals, %d transitions, %d places\n",
		g.Name(), len(g.Signals), len(g.Net.Transitions), len(g.Net.Places))
	fmt.Fprintf(stdout, "structure: marked-graph=%v free-choice=%v choice-places=%d\n",
		g.Net.IsMarkedGraph(), g.Net.IsFreeChoice(), len(g.Net.ChoicePlaces()))

	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		return fmt.Errorf("state graph: %w", err)
	}
	if *dumpSGDOT {
		return sg.WriteDOT(stdout)
	}
	fmt.Fprintf(stdout, "state graph: %d states, %d arcs, %d distinct codes\n",
		sg.NumStates(), sg.NumArcs(), sg.DistinctCodes())
	fmt.Fprintf(stdout, "properties: %s\n", sg.CheckImplementability())
	if *showConflicts {
		fmt.Fprintln(stdout, encoding.ConflictSummary(sg))
	}
	if *wave {
		fmt.Fprint(stdout, sg.ASCIIWaveform(sg.Cycle()))
	}
	if *dumpSG {
		fmt.Fprint(stdout, sg.Dump())
	}
	return nil
}

func load(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
