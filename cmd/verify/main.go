// Command verify performs implementation verification (Section 2.1):
//
//	verify -impl circuit.eqn spec.g          gate-level vs specification
//	verify -conform impl.g spec.g            STG vs STG trace conformance
//	verify -impl c.eqn -sep 'D-<LDS-' spec.g SI under relative timing
//
// The gate-level check composes the netlist with the specification mirror
// and reports hazards (semimodularity violations), conformance failures,
// C-element drive fights and deadlocks. The STG check verifies safety and
// receptiveness on the specification alphabet.
//
// Usage and flag errors go to stderr and exit with status 2; runtime errors
// (including failed verification) exit with status 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/logic"
	"repro/internal/sim"
	"repro/internal/stg"
)

func main() {
	cli.Exit("verify", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type sepFlags []sim.RelativeOrder

func (s *sepFlags) String() string { return fmt.Sprint([]sim.RelativeOrder(*s)) }

func (s *sepFlags) Set(v string) error {
	// "A-<B+" means sep(A-, B+) < 0: A- before B+.
	i := strings.Index(v, "<")
	if i <= 0 || i+1 >= len(v) {
		return fmt.Errorf("want EARLIER<LATER (e.g. 'D-<LDS-'), got %q", v)
	}
	earlier, err := parseEvent(v[:i])
	if err != nil {
		return err
	}
	later, err := parseEvent(v[i+1:])
	if err != nil {
		return err
	}
	*s = append(*s, sim.RelativeOrder{Earlier: earlier, Later: later})
	return nil
}

func parseEvent(s string) (sim.EventRef, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 {
		return sim.EventRef{}, fmt.Errorf("bad event %q", s)
	}
	dir := stg.Rise
	switch s[len(s)-1] {
	case '+':
	case '-':
		dir = stg.Fall
	default:
		return sim.EventRef{}, fmt.Errorf("event %q needs +/- suffix", s)
	}
	return sim.EventRef{Signal: s[:len(s)-1], Dir: dir}, nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	implEqn := fs.String("impl", "", "gate-level implementation (.eqn)")
	conform := fs.String("conform", "", "implementation STG (.g) for trace conformance")
	var seps sepFlags
	fs.Var(&seps, "sep", "relative timing assumption EARLIER<LATER (repeatable)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	spec, err := loadSTG(fs.Arg(0), stdin)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}

	switch {
	case *implEqn != "":
		f, err := os.Open(*implEqn)
		if err != nil {
			return err
		}
		defer f.Close()
		nl, err := logic.ParseEquations(f)
		if err != nil {
			return fmt.Errorf("impl: %w", err)
		}
		res, err := sim.Verify(nl, spec, sim.Options{Constraints: seps, MaxViolations: 10})
		if err != nil {
			return err
		}
		if res.OK() {
			fmt.Fprintf(stdout, "OK: speed-independent and conformant (%d composed states)\n", res.States)
			return nil
		}
		for _, v := range res.Violations {
			fmt.Fprintln(stdout, "violation:", v)
		}
		return fmt.Errorf("verification failed with %d violation(s)", len(res.Violations))
	case *conform != "":
		f, err := os.Open(*conform)
		if err != nil {
			return err
		}
		defer f.Close()
		impl, err := stg.ParseG(f)
		if err != nil {
			return fmt.Errorf("impl: %w", err)
		}
		viol, err := sim.ConformsSTG(impl, spec, 0)
		if err != nil {
			return err
		}
		if len(viol) == 0 {
			fmt.Fprintln(stdout, "OK: implementation STG conforms (safety and receptiveness)")
			return nil
		}
		for _, v := range viol {
			fmt.Fprintln(stdout, "violation:", v)
		}
		return fmt.Errorf("conformance failed with %d violation(s)", len(viol))
	default:
		return fmt.Errorf("one of -impl or -conform is required")
	}
}

func loadSTG(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
