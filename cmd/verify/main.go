// Command verify performs implementation verification (Section 2.1) and
// temporal-property checking:
//
//	verify -impl circuit.eqn spec.g          gate-level vs specification
//	verify -conform impl.g spec.g            STG vs STG trace conformance
//	verify -impl c.eqn -sep 'D-<LDS-' spec.g SI under relative timing
//	verify -prop props.pr spec.g             named properties over the spec
//
// The gate-level check composes the netlist with the specification mirror
// and reports hazards (semimodularity violations), conformance failures,
// C-element drive fights and deadlocks. The STG check verifies safety and
// receptiveness on the specification alphabet.
//
// The property check evaluates a file of `prop name : formula` lines (see
// internal/prop for the grammar) against the spec's reachable state space:
// -engine picks the explicit or symbolic (BDD) checker, -workers
// parallelizes the explicit exploration, -timeout aborts long runs, and
// violated invariants print a counterexample firing sequence with its
// waveform. -metrics/-trace-json export observability artifacts as in the
// other tools.
//
// Usage and flag errors go to stderr and exit with status 2; runtime errors
// (including failed verification and violated properties) exit with
// status 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/logic"
	"repro/internal/prop"
	"repro/internal/sim"
	"repro/internal/stg"
)

func main() {
	cli.Exit("verify", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type sepFlags []sim.RelativeOrder

func (s *sepFlags) String() string { return fmt.Sprint([]sim.RelativeOrder(*s)) }

func (s *sepFlags) Set(v string) error {
	// "A-<B+" means sep(A-, B+) < 0: A- before B+.
	i := strings.Index(v, "<")
	if i <= 0 || i+1 >= len(v) {
		return fmt.Errorf("want EARLIER<LATER (e.g. 'D-<LDS-'), got %q", v)
	}
	earlier, err := parseEvent(v[:i])
	if err != nil {
		return err
	}
	later, err := parseEvent(v[i+1:])
	if err != nil {
		return err
	}
	*s = append(*s, sim.RelativeOrder{Earlier: earlier, Later: later})
	return nil
}

func parseEvent(s string) (sim.EventRef, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 {
		return sim.EventRef{}, fmt.Errorf("bad event %q", s)
	}
	dir := stg.Rise
	switch s[len(s)-1] {
	case '+':
	case '-':
		dir = stg.Fall
	default:
		return sim.EventRef{}, fmt.Errorf("event %q needs +/- suffix", s)
	}
	return sim.EventRef{Signal: s[:len(s)-1], Dir: dir}, nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	implEqn := fs.String("impl", "", "gate-level implementation (.eqn)")
	conform := fs.String("conform", "", "implementation STG (.g) for trace conformance")
	propFile := fs.String("prop", "", "property file (prop name : formula lines) to check against the spec")
	engine := fs.String("engine", "auto", "property engine: auto, explicit, symbolic")
	workers := fs.Int("workers", 0, "parallel workers for the explicit property engine (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "abort property checking after this wall-clock duration (0 = none)")
	var seps sepFlags
	fs.Var(&seps, "sep", "relative timing assumption EARLIER<LATER (repeatable)")
	var ins cli.Instrumentation
	ins.AddFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	spec, err := loadSTG(fs.Arg(0), stdin)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if err := ins.Start(); err != nil {
		return err
	}
	defer cli.Recover(&err)
	defer ins.FinishTo(stdout, stderr, &err)

	switch {
	case *implEqn != "":
		f, err := os.Open(*implEqn)
		if err != nil {
			return err
		}
		defer f.Close()
		nl, err := logic.ParseEquations(f)
		if err != nil {
			return fmt.Errorf("impl: %w", err)
		}
		res, err := sim.Verify(nl, spec, sim.Options{Constraints: seps, MaxViolations: 10})
		if err != nil {
			return err
		}
		if res.OK() {
			fmt.Fprintf(stdout, "OK: speed-independent and conformant (%d composed states)\n", res.States)
			return nil
		}
		for _, v := range res.Violations {
			fmt.Fprintln(stdout, "violation:", v)
		}
		return fmt.Errorf("verification failed with %d violation(s)", len(res.Violations))
	case *conform != "":
		f, err := os.Open(*conform)
		if err != nil {
			return err
		}
		defer f.Close()
		impl, err := stg.ParseG(f)
		if err != nil {
			return fmt.Errorf("impl: %w", err)
		}
		viol, err := sim.ConformsSTG(impl, spec, 0)
		if err != nil {
			return err
		}
		if len(viol) == 0 {
			fmt.Fprintln(stdout, "OK: implementation STG conforms (safety and receptiveness)")
			return nil
		}
		for _, v := range viol {
			fmt.Fprintln(stdout, "violation:", v)
		}
		return fmt.Errorf("conformance failed with %d violation(s)", len(viol))
	case *propFile != "":
		return runProps(spec, *propFile, *engine, *workers, *timeout, &ins, stdout)
	default:
		return cli.Usage{Err: fmt.Errorf("one of -impl, -conform or -prop is required")}
	}
}

// runProps checks a property file against the spec and renders the
// verdicts, with counterexample/witness traces as firing sequences plus
// waveforms. Any violated property makes the command fail (exit status 1).
func runProps(spec *stg.STG, path, engine string, workers int, timeout time.Duration, ins *cli.Instrumentation, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	props, err := prop.ParseFile(f)
	if err != nil {
		return err
	}
	if len(props) == 0 {
		return fmt.Errorf("prop: %s declares no properties", path)
	}
	var eng prop.Engine
	switch engine {
	case "auto":
		eng = prop.EngineAuto
	case "explicit", "symbolic":
		eng = prop.Engine(engine)
	default:
		return cli.Usage{Err: fmt.Errorf("unknown engine %q (want auto, explicit or symbolic)", engine)}
	}
	var bgt *budget.Budget
	if timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		bgt = &budget.Budget{Ctx: ctx}
	}
	flow := ins.Registry.Root("flow:verify")
	defer flow.End()
	rep, cerr := prop.Check(spec, props, prop.Options{Engine: eng, Workers: workers, Budget: bgt, Obs: flow})
	if rep == nil {
		return cerr
	}
	for _, v := range rep.Verdicts {
		fmt.Fprintf(stdout, "prop %s: %s\n", v.Property.Name, v.Status)
		if v.Trace == nil {
			continue
		}
		label := "counterexample"
		if v.Status == prop.StatusHolds {
			label = "witness"
		}
		ev := v.Trace.Events()
		if ev == "" {
			ev = "<initial state>"
		}
		fmt.Fprintf(stdout, "  %s: %s\n", label, ev)
		for _, line := range strings.Split(strings.TrimRight(v.Trace.Waveform(), "\n"), "\n") {
			fmt.Fprintf(stdout, "    %s\n", line)
		}
	}
	fmt.Fprintf(stdout, "checked %d properties over %s states (%s engine)\n",
		len(rep.Verdicts), rep.States, rep.Engine)
	if cerr != nil {
		return cerr
	}
	if n := rep.Violations(); n > 0 {
		return fmt.Errorf("%d of %d properties violated", n, len(props))
	}
	return nil
}

func loadSTG(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
