package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const spec = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

const goodEqn = `
.inputs req
.outputs ack
ack = req
`

const badEqn = `
.inputs req
.outputs ack
ack = req'
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyGateLevelOK(t *testing.T) {
	var out bytes.Buffer
	eqn := write(t, "good.eqn", goodEqn)
	if err := run([]string{"-impl", eqn}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: speed-independent") {
		t.Fatalf("OK expected:\n%s", out.String())
	}
}

func TestVerifyGateLevelFails(t *testing.T) {
	var out bytes.Buffer
	eqn := write(t, "bad.eqn", badEqn)
	if err := run([]string{"-impl", eqn}, strings.NewReader(spec), &out, io.Discard); err == nil {
		t.Fatal("inverted circuit must fail")
	}
	if !strings.Contains(out.String(), "violation:") {
		t.Fatalf("violations expected:\n%s", out.String())
	}
}

func TestVerifyConformance(t *testing.T) {
	var out bytes.Buffer
	implG := write(t, "impl.g", spec)
	if err := run([]string{"-conform", implG}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK: implementation STG conforms") {
		t.Fatalf("conformance OK expected:\n%s", out.String())
	}
}

func TestVerifySepFlag(t *testing.T) {
	var out bytes.Buffer
	eqn := write(t, "good.eqn", goodEqn)
	if err := run([]string{"-impl", eqn, "-sep", "req+<ack+"}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Malformed separations.
	for _, bad := range []string{"nope", "a<", "a?<b+"} {
		var o bytes.Buffer
		if err := run([]string{"-impl", eqn, "-sep", bad}, strings.NewReader(spec), &o, io.Discard); err == nil {
			t.Fatalf("bad sep %q must be rejected", bad)
		}
	}
}

func TestVerifyNeedsMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(spec), &out, io.Discard); err == nil {
		t.Fatal("missing mode must error")
	}
}

var update = flag.Bool("update", false, "rewrite the golden outputs under testdata/")

// TestPropGolden pins the full -prop output — verdict lines, counterexample
// firing sequences and waveforms — for the two committed violating models,
// on both engines. Run with -update to rewrite the goldens after an
// intentional change.
func TestPropGolden(t *testing.T) {
	cases := []struct {
		golden string
		props  string
		spec   string
	}{
		{"arbiter-mutex", "testdata/arbiter-mutex.pr", "../../testdata/arbiter-race.g"},
		{"phil-deadlock", "testdata/phil-deadlock.pr", "../../testdata/phil-deadlock.g"},
	}
	for _, tc := range cases {
		for _, engine := range []string{"explicit", "symbolic"} {
			t.Run(tc.golden+"/"+engine, func(t *testing.T) {
				var out bytes.Buffer
				err := run([]string{"-prop", tc.props, "-engine", engine, tc.spec}, nil, &out, io.Discard)
				if err == nil {
					t.Fatal("violating model must make verify fail")
				}
				if strings.Contains(err.Error(), "usage") {
					t.Fatalf("violation must be a runtime error (exit 1), got usage error: %v", err)
				}
				path := filepath.Join("testdata", tc.golden+"-"+engine+".golden")
				if *update {
					if werr := os.WriteFile(path, out.Bytes(), 0o644); werr != nil {
						t.Fatal(werr)
					}
					return
				}
				want, rerr := os.ReadFile(path)
				if rerr != nil {
					t.Fatal(rerr)
				}
				if !bytes.Equal(out.Bytes(), want) {
					t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s", path, out.String(), want)
				}
			})
		}
	}
}

func TestPropFlagErrors(t *testing.T) {
	pr := write(t, "p.pr", "prop p : deadlock_free\n")
	empty := write(t, "empty.pr", "# nothing declared\n")
	badProp := write(t, "bad.pr", "prop p : nosuch_signal\n")
	for _, args := range [][]string{
		{"-prop", pr, "-engine", "nope"},
		{"-prop", empty},
		{"-prop", badProp},
		{"-prop", filepath.Join(t.TempDir(), "missing.pr")},
	} {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(spec), &out, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestPropHoldsOK(t *testing.T) {
	pr := write(t, "p.pr", "prop dlf : deadlock_free\nprop pers : persistent\n")
	var out bytes.Buffer
	if err := run([]string{"-prop", pr}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"prop dlf: holds", "prop pers: holds", "checked 2 properties"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestPropTimeout(t *testing.T) {
	pr := write(t, "p.pr", "prop dlf : deadlock_free\n")
	var out bytes.Buffer
	err := run([]string{"-prop", pr, "-timeout", "1ns"}, strings.NewReader(spec), &out, io.Discard)
	if err == nil {
		t.Fatal("1ns timeout must trip the budget")
	}
	if !strings.Contains(out.String(), "unknown") {
		t.Errorf("timed-out run should report unknown verdicts:\n%s", out.String())
	}
}
