package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const spec = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

const goodEqn = `
.inputs req
.outputs ack
ack = req
`

const badEqn = `
.inputs req
.outputs ack
ack = req'
`

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyGateLevelOK(t *testing.T) {
	var out bytes.Buffer
	eqn := write(t, "good.eqn", goodEqn)
	if err := run([]string{"-impl", eqn}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: speed-independent") {
		t.Fatalf("OK expected:\n%s", out.String())
	}
}

func TestVerifyGateLevelFails(t *testing.T) {
	var out bytes.Buffer
	eqn := write(t, "bad.eqn", badEqn)
	if err := run([]string{"-impl", eqn}, strings.NewReader(spec), &out, io.Discard); err == nil {
		t.Fatal("inverted circuit must fail")
	}
	if !strings.Contains(out.String(), "violation:") {
		t.Fatalf("violations expected:\n%s", out.String())
	}
}

func TestVerifyConformance(t *testing.T) {
	var out bytes.Buffer
	implG := write(t, "impl.g", spec)
	if err := run([]string{"-conform", implG}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK: implementation STG conforms") {
		t.Fatalf("conformance OK expected:\n%s", out.String())
	}
}

func TestVerifySepFlag(t *testing.T) {
	var out bytes.Buffer
	eqn := write(t, "good.eqn", goodEqn)
	if err := run([]string{"-impl", eqn, "-sep", "req+<ack+"}, strings.NewReader(spec), &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Malformed separations.
	for _, bad := range []string{"nope", "a<", "a?<b+"} {
		var o bytes.Buffer
		if err := run([]string{"-impl", eqn, "-sep", bad}, strings.NewReader(spec), &o, io.Discard); err == nil {
			t.Fatalf("bad sep %q must be rejected", bad)
		}
	}
}

func TestVerifyNeedsMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(spec), &out, io.Discard); err == nil {
		t.Fatal("missing mode must error")
	}
}
