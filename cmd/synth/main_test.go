package main

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/obs"
)

const vmeRead = `
.model vme-read
.inputs DSr LDTACK
.outputs DTACK LDS D
.graph
DSr+ LDS+
LDS+ LDTACK+
LDTACK+ D+
D+ DTACK+
DTACK+ DSr-
DSr- D-
D- DTACK- LDS-
DTACK- DSr+
LDS- LDTACK-
LDTACK- LDS+
.marking { <DTACK-,DSr+> <LDTACK-,LDS+> }
.end
`

func TestSynthDefault(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(nil, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"csc0", "speed-independent", "DTACK = D"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestSynthQuietStyles(t *testing.T) {
	for _, style := range []string{"complex", "gc", "rs"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-style", style, "-quiet"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
			t.Fatalf("style %s: %v", style, err)
		}
		if !strings.Contains(out.String(), "=") {
			t.Fatalf("style %s: no equations", style)
		}
	}
	var out, errOut bytes.Buffer
	if err := run([]string{"-style", "bogus"}, strings.NewReader(vmeRead), &out, &errOut); err == nil {
		t.Fatal("bogus style must error")
	}
}

func TestSynthReduceMethod(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-method", "reduce"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "delay") {
		t.Fatalf("reduction description expected:\n%s", out.String())
	}
	if strings.Contains(out.String(), "csc0") {
		t.Fatal("concurrency reduction must not add signals")
	}
}

func TestSynthSpecOut(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-quiet", "-spec", "-"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ".internal csc0") {
		t.Fatalf("final spec with csc0 expected:\n%s", out.String())
	}
}

func TestSynthEqnOut(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-quiet", "-out", "-"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ".internal csc0") || !strings.Contains(out.String(), ".inputs DSr") {
		t.Fatalf("netlist header expected:\n%s", out.String())
	}
}

func TestSynthMapped(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-maxfanin", "2"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "max fan-in 2") {
		t.Fatalf("mapped output expected:\n%s", out.String())
	}
}

func TestSynthBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-no-such-flag"}, strings.NewReader(vmeRead), &out, &errOut); err == nil {
		t.Fatal("unknown flag must error")
	}
	if out.Len() != 0 {
		t.Fatalf("flag diagnostics leaked to stdout:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "Usage") && !strings.Contains(errOut.String(), "-no-such-flag") {
		t.Fatalf("usage text expected on stderr:\n%s", errOut.String())
	}
}

// TestSynthBadFlagIsUsage pins the exit-2 mapping: flag errors surface as
// cli.Usage so main exits with status 2.
func TestSynthBadFlagIsUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-no-such-flag"}, strings.NewReader(vmeRead), &out, &errOut)
	var usage cli.Usage
	if !errors.As(err, &usage) {
		t.Fatalf("want cli.Usage, got %v", err)
	}
}

// TestSynthMaxStatesAbort pins the budget-abort contract: a state ceiling
// below the reachable space fails with a typed limit error and the partial
// analysis still prints.
func TestSynthMaxStatesAbort(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-maxstates", "4"}, strings.NewReader(vmeRead), &out, &errOut)
	var le budget.ErrLimit
	if !errors.As(err, &le) || le.Resource != budget.States {
		t.Fatalf("want states ErrLimit, got %v", err)
	}
}

// TestSynthFallbackDegrades pins the ladder: with -fallback the same ceiling
// succeeds (exit 0) and reports the degraded analysis trace instead of a
// netlist.
func TestSynthFallbackDegrades(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-maxstates", "4", "-fallback"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"degraded", "explicit", "symbolic"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in degraded report:\n%s", want, s)
		}
	}
	if strings.Contains(s, "DTACK = D") {
		t.Fatalf("degraded run must not report equations:\n%s", s)
	}
}

func TestSynthWorkersDeterministic(t *testing.T) {
	var ref, refErr bytes.Buffer
	if err := run([]string{"-workers", "1"}, strings.NewReader(vmeRead), &ref, &refErr); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"2", "4"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-workers", w}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
			t.Fatal(err)
		}
		if got, want := stripTiming(out.String()), stripTiming(ref.String()); got != want {
			t.Fatalf("workers=%s output differs:\n%s\nwant:\n%s", w, got, want)
		}
	}
}

// stripTiming drops the wall-clock line, the only run-dependent output.
func stripTiming(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "timing:") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestSynthMetricsExport runs an instrumented flow and validates the
// exported snapshot: engine counters non-zero, hierarchy well-formed, and
// the trace file loadable as trace_event JSON.
func TestSynthMetricsExport(t *testing.T) {
	dir := t.TempDir()
	mpath, tpath := dir+"/m.json", dir+"/t.json"
	var out, errOut bytes.Buffer
	err := run([]string{"-metrics", mpath, "-trace-json", tpath},
		strings.NewReader(vmeRead), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"reach.states", "encoding.candidates", "logic.signals"} {
		if snap.Counters[c] == 0 {
			t.Fatalf("counter %s is zero; counters: %v", c, snap.Counters)
		}
	}
	trace, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(trace); err != nil {
		t.Fatal(err)
	}
}

// TestSynthReduceMetricsExport pins the trace shape of the -method reduce
// path: same flow:synthesize root and phase spans as the insertion flow.
func TestSynthReduceMetricsExport(t *testing.T) {
	dir := t.TempDir()
	mpath := dir + "/m.json"
	var out, errOut bytes.Buffer
	err := run([]string{"-method", "reduce", "-metrics", mpath},
		strings.NewReader(vmeRead), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range snap.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"flow:synthesize", "phase:sg", "phase:logic", "phase:verify"} {
		if !names[want] {
			t.Fatalf("span %s missing from reduce flow; spans: %v", want, names)
		}
	}
}

// TestSynthBudgetLine pins the budget-spend satellite: runs with a ceiling
// report "budget: states used/limit" on both the degraded and abort paths,
// and the degraded symbolic attempt carries its kernel stats detail.
func TestSynthBudgetLine(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-maxstates", "4", "-fallback"}, strings.NewReader(vmeRead), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "budget:        states 4/4") {
		t.Fatalf("missing budget spend line:\n%s", s)
	}
	if !strings.Contains(s, "iters=") || !strings.Contains(s, "peak-nodes=") {
		t.Fatalf("symbolic attempt missing kernel stats detail:\n%s", s)
	}

	out.Reset()
	err := run([]string{"-maxstates", "4"}, strings.NewReader(vmeRead), &out, &errOut)
	if err == nil {
		t.Fatal("capped run without -fallback must fail")
	}
	if !strings.Contains(out.String(), "budget:        states 4/4") {
		t.Fatalf("abort path missing budget spend line:\n%s", out.String())
	}
}
