// Command synth runs the full synthesis flow on an STG specification:
// analysis, state encoding, next-state function derivation, gate synthesis,
// optional decomposition to a fan-in budget, and verification against the
// specification mirror.
//
// Usage:
//
//	synth [-style complex|gc|rs] [-maxfanin N] [-method insert|reduce]
//	      [-workers N] [-timeout D] [-maxstates N] [-maxnodes N] [-fallback]
//	      [-metrics FILE] [-trace-json FILE] [-cpuprofile FILE] [-memprofile FILE]
//	      [-quiet] [-spec out.g] file.g
//
// With -spec the final specification (including inserted state signals) is
// written in .g format to the given file ("-" for stdout).
//
// -timeout, -maxstates and -maxnodes bound the run by wall clock, explored
// states and live BDD nodes; the spend against configured ceilings is
// reported on a "budget:" line. On a budget trip the command prints whatever
// partial analysis it reached and exits 1 — unless -fallback is set, in
// which case synthesis degrades through the engine ladder (symbolic, then
// stubborn-set, then capped explicit analysis) and reports the analysis
// trace instead of a netlist.
//
// -metrics and -trace-json export the run's engine counters and span tree
// as a JSON snapshot and as Chrome trace_event JSON ("-" for stdout);
// -cpuprofile and -memprofile write pprof profiles. All artifacts are
// written even when the run aborts.
//
// Usage and flag errors go to stderr and exit with status 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
)

func main() {
	cli.Exit("synth", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	// Usage and flag errors are diagnostics: they belong on stderr, not
	// mixed into the tool's parseable output.
	fs.SetOutput(stderr)
	styleName := fs.String("style", "complex", "gate architecture: complex, gc, rs")
	maxFanIn := fs.Int("maxfanin", 0, "decompose to this gate fan-in (0 = no mapping)")
	method := fs.String("method", "insert", "CSC method: insert (state signals) or reduce (concurrency)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for encoding search and logic derivation")
	quiet := fs.Bool("quiet", false, "print only the equations")
	specOut := fs.String("spec", "", "write the final specification (.g) to this file, '-' for stdout")
	eqnOut := fs.String("out", "", "write the netlist (.eqn, verify-compatible) to this file, '-' for stdout")
	timeout := fs.Duration("timeout", 0, "abort the flow after this wall-clock duration (0 = none)")
	maxStates := fs.Int("maxstates", 0, "abort explicit analysis past this many states (0 = none)")
	maxNodes := fs.Int("maxnodes", 0, "abort symbolic analysis past this many live BDD nodes (0 = none)")
	fallback := fs.Bool("fallback", false, "degrade to cheaper analysis engines instead of failing on a budget trip")
	var ins cli.Instrumentation
	ins.AddFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	var style logic.Style
	switch *styleName {
	case "complex":
		style = logic.ComplexGate
	case "gc":
		style = logic.GeneralizedC
	case "rs":
		style = logic.StandardC
	default:
		return fmt.Errorf("unknown style %q", *styleName)
	}

	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}

	bgt := &budget.Budget{MaxStates: *maxStates, MaxNodes: *maxNodes}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		bgt.Ctx = ctx
	}
	if err := ins.Start(); err != nil {
		return err
	}
	// Export on every exit path — budget aborts AND panics: Recover runs
	// after the deferred export (defers are LIFO), so artifacts flush while
	// the panic unwinds and the panic then surfaces as a typed runtime error
	// (exit 1) instead of crashing the process. Export failures fold into
	// the exit code, or onto stderr when the run already failed.
	defer cli.Recover(&err)
	defer ins.FinishTo(stdout, stderr, &err)

	var rep *core.Report
	if *method == "reduce" {
		rep, err = synthesizeByReduction(g, style, *workers, bgt, ins.Registry)
	} else {
		rep, err = core.Synthesize(g, core.Options{
			Style: style, MaxFanIn: *maxFanIn, Workers: *workers,
			Budget: bgt, Fallback: *fallback, Obs: ins.Registry,
		})
	}
	if err != nil {
		// A budget trip still carries the partial analysis; show it so the
		// nonzero exit comes with the stats reached before the abort.
		if rep != nil {
			fmt.Fprint(stdout, rep.Summary())
			printBudget(stdout, bgt, err, rep)
		}
		return err
	}
	if rep.Netlist == nil {
		// Degraded run: analysis completed on a cheaper engine, nothing to
		// synthesize. -spec/-out have no artifact to write.
		fmt.Fprint(stdout, rep.Summary())
		printBudget(stdout, bgt, nil, rep)
		return nil
	}
	if *specOut != "" {
		w := stdout
		if *specOut != "-" {
			f, err := os.Create(*specOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rep.Spec.WriteG(w); err != nil {
			return err
		}
	}
	if *eqnOut != "" {
		w := stdout
		if *eqnOut != "-" {
			f, err := os.Create(*eqnOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rep.Netlist.WriteEquations(w); err != nil {
			return err
		}
	}
	if *quiet {
		fmt.Fprintln(stdout, rep.Equations())
		return nil
	}
	fmt.Fprint(stdout, rep.Summary())
	return nil
}

// synthesizeByReduction runs the flow with the concurrency-reduction CSC
// method instead of signal insertion. Like core.Synthesize it opens a
// flow:synthesize root span with one phase child per stage, so both CSC
// methods export the same trace shape.
func synthesizeByReduction(g *stg.STG, style logic.Style, workers int, bgt *budget.Budget, reg *obs.Registry) (rep *core.Report, err error) {
	flow := reg.Root("flow:synthesize")
	defer func() {
		if flow != nil {
			if err != nil {
				flow.Attr("error", err.Error())
			}
			flow.End()
			if rep != nil {
				rep.Metrics = reg.Snapshot()
			}
		}
	}()
	sgSpan := flow.Child("phase:sg")
	sg, err := reach.BuildSG(g, reach.Options{Budget: bgt, Obs: sgSpan})
	sgSpan.End()
	if err != nil {
		return nil, err
	}
	rep = &core.Report{Input: g, Spec: g, SG: sg, Properties: sg.CheckImplementability()}
	if !rep.Properties.Persistent {
		return nil, fmt.Errorf("specification is not persistent (arbitration needed)")
	}
	if !rep.Properties.CSC {
		encSpan := flow.Child("phase:encoding")
		sol, err := encoding.SolveByReduction(g, 0)
		encSpan.End()
		if err != nil {
			return nil, err
		}
		rep.Spec, rep.SG, rep.CSC = sol.STG, sol.SG, sol.Description
	}
	logicSpan := flow.Child("phase:logic")
	rep.Netlist, err = logic.SynthesizeOpts(rep.SG, style, logic.Options{Workers: workers, Budget: bgt, Obs: logicSpan})
	logicSpan.End()
	if err != nil {
		return nil, err
	}
	verifySpan := flow.Child("phase:verify")
	rep.Verification, err = sim.Verify(rep.Netlist, rep.Spec, sim.Options{Budget: bgt})
	verifySpan.End()
	if err != nil {
		return nil, err
	}
	if !rep.Verification.OK() {
		return rep, fmt.Errorf("implementation fails verification: %v", rep.Verification.Violations)
	}
	return rep, nil
}

// printBudget reports budget spend — states and BDD nodes used against their
// ceilings — so budget behaviour is visible without -metrics. Silent when no
// ceiling was configured.
func printBudget(w io.Writer, bgt *budget.Budget, runErr error, rep *core.Report) {
	if bgt == nil || (bgt.MaxStates <= 0 && bgt.MaxNodes <= 0) {
		return
	}
	states, nodes := 0, 0
	if rep != nil {
		if rep.SG != nil {
			states = rep.SG.NumStates()
		}
		// Only explicit-engine attempts spend the states budget; symbolic
		// attempts count reachable states without enumerating them.
		for _, a := range rep.Attempts {
			if strings.HasPrefix(a.Engine, "explicit") && a.States > states {
				states = a.States
			}
		}
	}
	var le budget.ErrLimit
	if errors.As(runErr, &le) {
		switch le.Resource {
		case budget.States:
			if le.Used > states {
				states = le.Used
			}
		case budget.Nodes:
			nodes = le.Used
		}
	}
	fmt.Fprintf(w, "budget:        states %s, nodes %s\n",
		spend(states, bgt.MaxStates), spend(nodes, bgt.MaxNodes))
}

// spend renders used/ceiling, with "unlimited" for an absent ceiling.
func spend(used, limit int) string {
	if limit <= 0 {
		return fmt.Sprintf("%d/unlimited", used)
	}
	return fmt.Sprintf("%d/%d", used, limit)
}

func load(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
