package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Regression mode: `report -regress OLD.json NEW.json` compares two
// benchmark trajectory records (the -bench-json output) and fails when any
// benchmark present in both slowed down by more than -threshold. Names in
// only one record are reported informationally — suites grow and shrink
// across PRs and that is not a perf regression.

// regression is one benchmark that crossed the threshold.
type regression struct {
	name     string
	oldNs    float64
	newNs    float64
	relative float64 // newNs/oldNs - 1
}

// loadBenchRecord reads one committed bench-json record.
func loadBenchRecord(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	var rec benchFile
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("regress: %s: record holds no benchmarks", path)
	}
	return &rec, nil
}

// runRegress prints the per-benchmark comparison table and returns an error
// listing every regression past threshold (a fraction: 0.15 means a
// benchmark may be up to 15% slower before the gate trips). Benchmarks whose
// baseline is under minNs are compared informationally but never gated:
// below that floor a low-iteration run measures timer overhead, not the
// benchmark.
func runRegress(w io.Writer, oldPath, newPath string, threshold, minNs float64) error {
	if threshold <= 0 {
		return fmt.Errorf("regress: threshold must be positive, got %v", threshold)
	}
	oldRec, err := loadBenchRecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := loadBenchRecord(newPath)
	if err != nil {
		return err
	}
	oldNs := map[string]float64{}
	for _, b := range oldRec.Benchmarks {
		oldNs[b.Name] = b.NsPerOp
	}

	var regressed []regression
	var onlyNew []string
	seen := map[string]bool{}
	fmt.Fprintf(w, "| Benchmark | %s ns/op | %s ns/op | delta |\n", oldPath, newPath)
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, b := range newRec.Benchmarks {
		seen[b.Name] = true
		base, ok := oldNs[b.Name]
		if !ok {
			onlyNew = append(onlyNew, b.Name)
			continue
		}
		if base <= 0 || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "| %s | %.0f | %.0f | (no timing) |\n", b.Name, base, b.NsPerOp)
			continue
		}
		rel := b.NsPerOp/base - 1
		mark := ""
		switch {
		case base < minNs:
			mark = " (below -min-ns, not gated)"
		case rel > threshold:
			mark = " **REGRESSION**"
			regressed = append(regressed, regression{b.Name, base, b.NsPerOp, rel})
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%%%s |\n", b.Name, base, b.NsPerOp, rel*100, mark)
	}
	var onlyOld []string
	for name := range oldNs {
		if !seen[name] {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Strings(onlyOld)
	if len(onlyOld) > 0 {
		fmt.Fprintf(w, "\nonly in %s (informational): %s\n", oldPath, strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "only in %s (informational): %s\n", newPath, strings.Join(onlyNew, ", "))
	}

	if len(regressed) == 0 {
		fmt.Fprintf(w, "\nregress: OK — no benchmark slowed past +%.0f%%\n", threshold*100)
		return nil
	}
	var names []string
	for _, r := range regressed {
		names = append(names, fmt.Sprintf("%s (%+.1f%%)", r.name, r.relative*100))
	}
	return fmt.Errorf("regress: %d benchmark(s) slowed past +%.0f%%: %s",
		len(regressed), threshold*100, strings.Join(names, ", "))
}
