package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSolveCSC/vme-read-4         	      27	  42724567 ns/op
BenchmarkSolveCSC/cscring-2/w4-4     	      31	  37000000 ns/op	       5.000 states
BenchmarkParallelExplore/phil-7/w2-4 	     100	    123456 ns/op	    1000 states	     200 B/op	       3 allocs/op
PASS
ok  	repro	12.345s
`

func TestWriteBenchJSON(t *testing.T) {
	var out bytes.Buffer
	if err := writeBenchJSON(strings.NewReader(sampleBenchOutput), &out, "", ""); err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if f.Suite != "synth" || f.GOMAXPROCS < 1 || f.GoVersion == "" {
		t.Fatalf("metadata incomplete: %+v", f)
	}
	if !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("cpu line not captured: %q", f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d", len(f.Benchmarks))
	}
	first := f.Benchmarks[0]
	if first.Name != "SolveCSC/vme-read" || first.Iterations != 27 || first.NsPerOp != 42724567 {
		t.Fatalf("first result misparsed: %+v", first)
	}
	second := f.Benchmarks[1]
	if second.Name != "SolveCSC/cscring-2/w4" || second.Metrics["states"] != 5 {
		t.Fatalf("second result misparsed: %+v", second)
	}
	third := f.Benchmarks[2]
	if third.Metrics["allocs/op"] != 3 || third.Metrics["B/op"] != 200 {
		t.Fatalf("alloc metrics misparsed: %+v", third)
	}
}

func TestWriteBenchJSONRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	err := writeBenchJSON(strings.NewReader("BenchmarkBroken notanumber ns/op\n"), &out, "", "")
	if err == nil {
		t.Fatal("malformed benchmark line must error")
	}
}

func TestWriteBenchJSONMergesMetrics(t *testing.T) {
	snap := `{
  "counters": {"reach.states": 24, "logic.signals": 5},
  "gauges": {"symbolic.peak_nodes": 37},
  "spans": [
    {"id": 0, "parent": -1, "name": "flow:synthesize", "cat": "flow", "start_us": 0, "dur_us": 100},
    {"id": 1, "parent": 0, "name": "phase:sg", "cat": "phase", "start_us": 1, "dur_us": 40}
  ]
}`
	dir := t.TempDir()
	path := dir + "/vme-read.metrics.json"
	if err := os.WriteFile(path, []byte(snap), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := writeBenchJSON(strings.NewReader(sampleBenchOutput), &out, path, ""); err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	got, ok := f.Snapshots["vme-read.metrics"]
	if !ok {
		t.Fatalf("snapshot not merged; keys: %v", f.Snapshots)
	}
	if got.Counters["reach.states"] != 24 || got.Gauges["symbolic.peak_nodes"] != 37 {
		t.Fatalf("snapshot content lost: %+v", got)
	}
}

func TestWriteBenchJSONScalingSweep(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := write("sweep1.txt", "BenchmarkParallelExplore/phil-7/w4-1 \t 10\t 4000 ns/op\nBenchmarkSymbolicParallel/toggles-16/w4-1 \t 5\t 8000 ns/op\n")
	p2 := write("sweep2.txt", "BenchmarkParallelExplore/phil-7/w4-2 \t 10\t 2500 ns/op\nBenchmarkSymbolicParallel/toggles-16/w4-2 \t 5\t 5000 ns/op\n")
	p4 := write("sweep4.txt", "BenchmarkParallelExplore/phil-7/w4-4 \t 10\t 1000 ns/op\nBenchmarkSymbolicParallel/toggles-16/w4-4 \t 5\t 4000 ns/op\n")
	var out bytes.Buffer
	spec := "1=" + p1 + ",2=" + p2 + ",4=" + p4
	if err := writeBenchJSON(strings.NewReader(sampleBenchOutput), &out, "", spec); err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if f.Scaling == nil {
		t.Fatal("scaling table missing")
	}
	if got := f.Scaling.GOMAXPROCS; len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Fatalf("gomaxprocs = %v, want [1 2 4]", got)
	}
	if len(f.Scaling.Rows) != 2 {
		t.Fatalf("want 2 rows, got %+v", f.Scaling.Rows)
	}
	row := f.Scaling.Rows[0] // sorted: ParallelExplore before SymbolicParallel
	if row.Name != "ParallelExplore/phil-7/w4" {
		t.Fatalf("row 0 is %q", row.Name)
	}
	if row.NsPerOp["1"] != 4000 || row.NsPerOp["4"] != 1000 {
		t.Fatalf("ns_per_op misparsed: %+v", row.NsPerOp)
	}
	if row.Speedup["2"] != 1.6 || row.Speedup["4"] != 4 {
		t.Fatalf("speedup wrong: %+v", row.Speedup)
	}
	if _, ok := row.Speedup["1"]; ok {
		t.Fatal("baseline must not carry a speedup column")
	}
}

func TestWriteBenchJSONScalingRejectsBadSpec(t *testing.T) {
	var out bytes.Buffer
	if err := writeBenchJSON(strings.NewReader(""), &out, "", "nope"); err == nil {
		t.Fatal("spec without procs= must error")
	}
	if err := writeBenchJSON(strings.NewReader(""), &out, "", "2=/does/not/exist"); err == nil {
		t.Fatal("missing sweep file must error")
	}
}

func TestWriteBenchJSONRejectsBadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	if err := os.WriteFile(path, []byte(`{"counters": {"x": 1}, "spans": [{"name": "no-category"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := writeBenchJSON(strings.NewReader(sampleBenchOutput), &out, path, "")
	if err == nil {
		t.Fatal("invalid snapshot must be rejected")
	}
}
