package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkSolveCSC/vme-read-4         	      27	  42724567 ns/op
BenchmarkSolveCSC/cscring-2/w4-4     	      31	  37000000 ns/op	       5.000 states
BenchmarkParallelExplore/phil-7/w2-4 	     100	    123456 ns/op	    1000 states	     200 B/op	       3 allocs/op
PASS
ok  	repro	12.345s
`

func TestWriteBenchJSON(t *testing.T) {
	var out bytes.Buffer
	if err := writeBenchJSON(strings.NewReader(sampleBenchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if f.Suite != "synth" || f.GOMAXPROCS < 1 || f.GoVersion == "" {
		t.Fatalf("metadata incomplete: %+v", f)
	}
	if !strings.Contains(f.CPU, "Xeon") {
		t.Fatalf("cpu line not captured: %q", f.CPU)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("want 3 benchmarks, got %d", len(f.Benchmarks))
	}
	first := f.Benchmarks[0]
	if first.Name != "SolveCSC/vme-read" || first.Iterations != 27 || first.NsPerOp != 42724567 {
		t.Fatalf("first result misparsed: %+v", first)
	}
	second := f.Benchmarks[1]
	if second.Name != "SolveCSC/cscring-2/w4" || second.Metrics["states"] != 5 {
		t.Fatalf("second result misparsed: %+v", second)
	}
	third := f.Benchmarks[2]
	if third.Metrics["allocs/op"] != 3 || third.Metrics["B/op"] != 200 {
		t.Fatalf("alloc metrics misparsed: %+v", third)
	}
}

func TestWriteBenchJSONRejectsGarbage(t *testing.T) {
	var out bytes.Buffer
	err := writeBenchJSON(strings.NewReader("BenchmarkBroken notanumber ns/op\n"), &out)
	if err == nil {
		t.Fatal("malformed benchmark line must error")
	}
}
