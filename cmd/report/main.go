// Command report regenerates the experiment tables of EXPERIMENTS.md: for
// every figure of the paper it runs the corresponding pipeline and prints
// the measured result next to the paper's expectation.
//
// Usage:
//
//	go run ./cmd/report                    # experiment tables
//	go test -bench ... | go run ./cmd/report -bench-json > BENCH_synth.json
//	go run ./cmd/report -regress [-threshold 0.15] OLD.json NEW.json
//
// -merge-metrics file1,file2 embeds validated metrics snapshots (from
// cmd/synth/cmd/reach -metrics runs) into the bench JSON under
// "metrics_snapshots", keyed by base filename.
//
// -regress compares two bench-json records and exits non-zero when any
// benchmark present in both slowed down by more than -threshold (a
// fraction; 0.15 allows +15%). Benchmarks in only one record are
// informational, never failures.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/structural"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/techmap"
	"repro/internal/timing"
	"repro/internal/unfold"
	"repro/internal/vme"
)

func main() {
	benchJSON := flag.Bool("bench-json", false,
		"parse 'go test -bench' output on stdin into the benchmark trajectory JSON on stdout")
	mergeMetrics := flag.String("merge-metrics", "",
		"comma-separated metrics snapshot files (from -metrics runs) to embed in the bench JSON")
	scaling := flag.String("scaling", "",
		"GOMAXPROCS sweep spec 'procs=file,procs=file,...' of raw bench outputs; adds per-worker-count speedup columns to the bench JSON")
	regress := flag.Bool("regress", false,
		"compare two bench-json records (positional args: OLD.json NEW.json); exit non-zero on ns/op regressions past -threshold")
	threshold := flag.Float64("threshold", 0.15,
		"relative ns/op growth tolerated by -regress before it fails (0.15 = +15%)")
	minNs := flag.Float64("min-ns", 1000,
		"baseline ns/op floor under which -regress reports but never gates (too fast to time reliably)")
	flag.Parse()
	if *benchJSON {
		if err := writeBenchJSON(os.Stdin, os.Stdout, *mergeMetrics, *scaling); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *regress {
		if flag.NArg() != 2 {
			log.Fatal("usage: report -regress [-threshold F] OLD.json NEW.json")
		}
		if err := runRegress(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *minNs); err != nil {
			log.Fatal(err)
		}
		return
	}
	report()
}

func report() {
	fmt.Println("| Exp | Paper expectation | Measured |")
	fmt.Println("|---|---|---|")

	row := func(id, expect, got string) {
		fmt.Printf("| %s | %s | %s |\n", id, expect, got)
	}

	// E-F2/3.
	g, err := stg.FromWaveform(vme.ReadWaveform())
	check(err)
	row("E-F2/3", "waveform compiles to a strongly connected marked graph, 10 transitions, 2 tokens",
		fmt.Sprintf("MG=%v, SCC=%v, %d transitions, %d tokens",
			g.Net.IsMarkedGraph(), g.Net.StronglyConnected(),
			len(g.Net.Transitions), g.Net.InitialMarking().Tokens()))

	// E-F4.
	sg, err := reach.BuildSG(g, reach.Options{})
	check(err)
	confl := sg.CSCConflicts()
	code := ""
	if len(confl) > 0 {
		for _, name := range vme.SignalOrder {
			if confl[0].Code.Bit(sg.SignalIndex(name)) {
				code += "1"
			} else {
				code += "0"
			}
		}
	}
	row("E-F4", "14 states; one CSC conflict pair with code 10110",
		fmt.Sprintf("%d states; %d conflict(s) at code %s", sg.NumStates(), len(confl), code))

	// E-F5.
	rw := vme.ReadWriteSTG()
	rwSG, err := reach.BuildSG(rw, reach.Options{})
	check(err)
	row("E-F5", "choice spec: 2 choice places, initial read/write choice",
		fmt.Sprintf("%d choice places, %d initial arcs, %d states",
			len(rw.Net.ChoicePlaces()), len(rwSG.Out[rwSG.Initial]), rwSG.NumStates()))

	// E-F6.
	reduced, trace := structural.Reduce(rw.Net)
	cover, ok := structural.SMCover(reduced)
	sym, err := symbolic.Reach(reduced)
	check(err)
	approx, _, err := symbolic.InvariantApprox(reduced, sym.M)
	check(err)
	dense, err := symbolic.NewDense(reduced)
	check(err)
	row("E-F6", "linear reductions shrink the net; 2 SM components cover it; invariant conjunction exact; dense encoding ≪ one-var-per-place",
		fmt.Sprintf("%d→%d transitions (%d rules); cover=%d (ok=%v); exact=%v; %d places → %d bits",
			len(rw.Net.Transitions), len(reduced.Transitions), len(trace),
			len(cover), ok, approx == sym.States, len(reduced.Places), dense.Bits()))

	// Fig 3 reduction.
	r3, _ := structural.Reduce(g.Net)
	row("E-F6b", "Fig 3 net reduces to a single self-loop transition",
		fmt.Sprintf("%d transition(s), %d place(s)", len(r3.Transitions), len(r3.Places)))

	// E-F7.
	cscSpec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	check(err)
	cscSG, err := reach.BuildSG(cscSpec, reach.Options{})
	check(err)
	row("E-F7", "csc0 inserted (+ before LDS+, - before D-): all implementability properties hold",
		fmt.Sprintf("%d states; %s", cscSG.NumStates(), cscSG.CheckImplementability()))

	// E-EQ.
	nl, err := logic.Synthesize(cscSG, logic.ComplexGate)
	check(err)
	match := true
	names := make([]string, len(cscSG.Signals))
	for i, s := range cscSG.Signals {
		names[i] = s.Name
	}
	for _, eq := range vme.PaperReadEquations() {
		idx := nl.SignalIndex(eq.Signal)
		for s := range cscSG.States {
			c := uint64(cscSG.States[s].Code)
			env := map[string]bool{}
			for i, n := range names {
				env[n] = c&(1<<uint(i)) != 0
			}
			if nl.Next(c, idx) != eq.Eval(env) {
				match = false
			}
		}
	}
	row("E-EQ", "D=LDTACK·csc0; LDS=D+csc0; DTACK=D; csc0=DSr·(csc0+LDTACK')",
		fmt.Sprintf("equal on all reachable codes: %v; equations: %s",
			match, strings.ReplaceAll(nl.Equations(), "\n", "; ")))

	// E-F8.
	for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
		n2, err := logic.Synthesize(cscSG, style)
		check(err)
		res, err := sim.Verify(n2, cscSpec, sim.Options{})
		check(err)
		row("E-F8/"+style.String(), "speed-independent",
			fmt.Sprintf("SI=%v (%d composed states, %d literals)", res.OK(), res.States, n2.LiteralCount()))
	}

	// E-F9.
	mapped, err := techmap.Map(nl, cscSpec, techmap.Options{MaxFanIn: 2})
	check(err)
	resM, err := sim.Verify(mapped, cscSpec, sim.Options{})
	check(err)
	row("E-F9", "2-input decomposition exists with multiply-acknowledged map0; single-acknowledgment variant is hazardous (see sim tests)",
		fmt.Sprintf("max fan-in %d, SI=%v; wires: %s", mapped.MaxFanIn(), resM.OK(),
			strings.Join(mapped.Signals[6:], ",")))

	// E-F10.
	implSG, err := sim.StateGraph(nl, cscSpec, sim.Options{})
	check(err)
	back, err := regions.Synthesize(implSG)
	check(err)
	backSG, err := reach.BuildSG(back, reach.Options{})
	check(err)
	row("E-F10", "back-annotated STG regenerates the implementation behaviour",
		fmt.Sprintf("impl SG %d states → PN with %d places → SG %d states",
			implSG.NumStates(), len(back.Net.Places), backSG.NumStates()))

	// E-F11.
	sol, err := encoding.SolveCSC(g, 0)
	check(err)
	base, err := logic.Synthesize(sol.SG, logic.ComplexGate)
	check(err)
	timed, _, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
	check(err)
	sgA, err := reach.BuildSG(timed, reach.Options{})
	check(err)
	nlA, err := logic.Synthesize(sgA, logic.ComplexGate)
	check(err)
	both, cons2, err := timing.Retrigger(timed, "LDS-", "D-", "DSr-")
	check(err)
	sgC, err := reach.BuildSG(both, reach.Options{})
	check(err)
	nlC, err := logic.Synthesize(sgC, logic.ComplexGate)
	check(err)
	resC, err := sim.Verify(nlC, both, sim.Options{Constraints: []sim.RelativeOrder{cons2}})
	check(err)
	row("E-F11", "timing assumptions remove csc0 and shrink logic (11a), combine to the simplest circuit (11c: LDS=DSr)",
		fmt.Sprintf("untimed %d lits; (a) CSC=%v %d lits; (c) CSC=%v %d lits SI=%v [%s]",
			base.LiteralCount(), sgA.HasCSC(), nlA.LiteralCount(),
			sgC.HasCSC(), nlC.LiteralCount(), resC.OK(),
			strings.ReplaceAll(nlC.Equations(), "\n", "; ")))

	// TSE.
	delays := make([]timing.Delay, len(g.Net.Transitions))
	for i := range delays {
		delays[i] = timing.Fixed(2)
	}
	delays[g.Net.TransitionIndex("DSr+")] = timing.Delay{Min: 40, Max: 80}
	sep, err := timing.MaxSeparation(timing.Spec{G: g, Delays: delays},
		timing.Occurrence{Transition: g.Net.TransitionIndex("LDTACK-"), Cycle: 2},
		timing.Occurrence{Transition: g.Net.TransitionIndex("DSr+"), Cycle: 3}, 4, 0)
	check(err)
	row("E-TSE", "slow bus / fast device gives sep(LDTACK-,DSr+next) < 0",
		fmt.Sprintf("max separation = %d", sep))

	// E-SYM engine table.
	fmt.Println()
	fmt.Println("| Workload | explicit states | symbolic states (BDD nodes) | unfolding (cond/events/cutoffs) | stubborn states | deadlocks |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, w := range []struct {
		name string
		net  *petri.Net
	}{
		{"vme-read", g.Net},
		{"vme-read-write", rw.Net},
		{"toggles-8", gen.IndependentToggles(8)},
		{"toggles-14", gen.IndependentToggles(14)},
		{"muller-5", gen.MullerPipeline(5).Net},
		{"phil-4", gen.Philosophers(4)},
	} {
		n := w.net
		exp, err := reach.Explore(n, reach.Options{})
		check(err)
		symR, err := symbolic.Reach(n)
		check(err)
		u, err := unfold.Build(n, unfold.Options{})
		check(err)
		c, e, k := u.Stats()
		st, err := stubborn.Explore(n, stubborn.Options{})
		check(err)
		fmt.Printf("| %s | %d | %.0f (%d) | %d/%d/%d | %d | full=%d reduced=%d |\n",
			w.name, exp.NumStates(), symR.Count, symR.PeakNodes, c, e, k,
			st.States, len(exp.Deadlocks()), len(st.Deadlocks))
	}

	// Flow summary.
	fmt.Println()
	rep, err := core.Synthesize(g, core.Options{})
	check(err)
	fmt.Println("Full flow on vme-read:")
	fmt.Println("```")
	fmt.Print(rep.Summary())
	fmt.Println("```")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
