package main

import (
	"bytes"
	"encoding/json"
	"os"
	"sort"
	"strings"
	"testing"
)

// writeRecord marshals a minimal bench-json record to a temp file.
func writeRecord(t *testing.T, name string, benches map[string]float64) string {
	t.Helper()
	rec := benchFile{Suite: "synth", GoVersion: "go1.22", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4}
	var names []string
	for bname := range benches {
		names = append(names, bname)
	}
	sort.Strings(names)
	for _, bname := range names {
		rec.Benchmarks = append(rec.Benchmarks,
			benchResult{Name: bname, Iterations: 10, NsPerOp: benches[bname]})
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + name
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegressCleanRun(t *testing.T) {
	oldP := writeRecord(t, "old.json", map[string]float64{
		"FullFlow/vme-read": 1000,
		"SolveCSC/ring":     2000,
	})
	newP := writeRecord(t, "new.json", map[string]float64{
		"FullFlow/vme-read": 1100, // +10%, under the 15% default
		"SolveCSC/ring":     1800, // faster
	})
	var out bytes.Buffer
	if err := runRegress(&out, oldP, newP, 0.15, 0); err != nil {
		t.Fatalf("clean comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "regress: OK") {
		t.Fatalf("missing OK banner:\n%s", out.String())
	}
	if strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("spurious regression mark:\n%s", out.String())
	}
}

func TestRegressTripsPastThreshold(t *testing.T) {
	oldP := writeRecord(t, "old.json", map[string]float64{
		"FullFlow/vme-read": 1000,
		"SolveCSC/ring":     2000,
	})
	newP := writeRecord(t, "new.json", map[string]float64{
		"FullFlow/vme-read": 1300, // +30%
		"SolveCSC/ring":     2000,
	})
	var out bytes.Buffer
	err := runRegress(&out, oldP, newP, 0.15, 0)
	if err == nil {
		t.Fatalf("+30%% must trip the 15%% gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "FullFlow/vme-read") {
		t.Fatalf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("table does not mark the regression:\n%s", out.String())
	}
	// The same delta passes a looser gate.
	out.Reset()
	if err := runRegress(&out, oldP, newP, 0.5, 0); err != nil {
		t.Fatalf("+30%% must pass a 50%% gate: %v", err)
	}
}

func TestRegressOneSidedNamesAreInformational(t *testing.T) {
	oldP := writeRecord(t, "old.json", map[string]float64{
		"FullFlow/vme-read": 1000,
		"Removed/bench":     500,
	})
	newP := writeRecord(t, "new.json", map[string]float64{
		"FullFlow/vme-read": 1000,
		"Added/bench":       99999,
	})
	var out bytes.Buffer
	if err := runRegress(&out, oldP, newP, 0.15, 0); err != nil {
		t.Fatalf("one-sided names must not fail the gate: %v", err)
	}
	if !strings.Contains(out.String(), "Removed/bench") || !strings.Contains(out.String(), "Added/bench") {
		t.Fatalf("one-sided names not reported:\n%s", out.String())
	}
}

func TestRegressMinNsFloorIsNotGated(t *testing.T) {
	// A sub-microsecond baseline measured at low iteration counts is timer
	// overhead, not the benchmark: it must never trip the gate.
	oldP := writeRecord(t, "old.json", map[string]float64{
		"ObsDisabledOverhead/counter": 0.5,
		"FullFlow/vme-read":           1e6,
	})
	newP := writeRecord(t, "new.json", map[string]float64{
		"ObsDisabledOverhead/counter": 120, // 240× "slower" — pure timer noise
		"FullFlow/vme-read":           1e6,
	})
	var out bytes.Buffer
	if err := runRegress(&out, oldP, newP, 0.15, 1000); err != nil {
		t.Fatalf("sub-floor baseline must not gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "below -min-ns") {
		t.Fatalf("floor not reported:\n%s", out.String())
	}
	// With the floor off, the same delta trips.
	out.Reset()
	if err := runRegress(&out, oldP, newP, 0.15, 0); err == nil {
		t.Fatal("with min-ns 0 the delta must gate")
	}
}

func TestRegressRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := runRegress(&out, "/does/not/exist.json", "/also/missing.json", 0.15, 0); err == nil {
		t.Fatal("missing files must error")
	}
	empty := t.TempDir() + "/empty.json"
	if err := os.WriteFile(empty, []byte(`{"suite":"synth","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runRegress(&out, empty, empty, 0.15, 0); err == nil {
		t.Fatal("empty record must error")
	}
	good := writeRecord(t, "good.json", map[string]float64{"A": 1})
	if err := runRegress(&out, good, good, 0, 0); err == nil {
		t.Fatal("non-positive threshold must error")
	}
}
