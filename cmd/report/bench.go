package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "SolveCSC/cscring-2/w4").
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds any additional value/unit pairs the benchmark reported
	// (allocs/op, states, events, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the committed benchmark trajectory record (BENCH_synth.json).
type benchFile struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Snapshots are metrics exports from instrumented runs (-metrics),
	// keyed by snapshot name, merged in via -merge-metrics so the committed
	// trajectory carries engine counters next to the timing numbers.
	Snapshots map[string]*obs.Snapshot `json:"metrics_snapshots,omitempty"`
}

// writeBenchJSON converts `go test -bench` plain-text output on r into the
// benchmark trajectory JSON on w. Lines that are not benchmark results (the
// goos/goarch/pkg/cpu header, PASS, ok) contribute metadata or are skipped.
// merge names metrics-snapshot JSON files (comma-separated) whose validated
// contents are embedded under "metrics_snapshots".
func writeBenchJSON(r io.Reader, w io.Writer, merge string) error {
	out := benchFile{
		Suite:      "synth",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []benchResult{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			out.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := mergeSnapshots(&out, merge); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// mergeSnapshots loads each comma-separated metrics snapshot file, validates
// it, and stores it in the bench file keyed by base name (extension
// stripped).
func mergeSnapshots(out *benchFile, merge string) error {
	if merge == "" {
		return nil
	}
	out.Snapshots = map[string]*obs.Snapshot{}
	for _, path := range strings.Split(merge, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("merge-metrics: %w", err)
		}
		snap, err := obs.ParseSnapshot(data)
		if err != nil {
			return fmt.Errorf("merge-metrics %s: %w", path, err)
		}
		key := filepath.Base(path)
		key = strings.TrimSuffix(key, filepath.Ext(key))
		out.Snapshots[key] = snap
	}
	return nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkSolveCSC/cscring-2/w4-8   100   123456 ns/op   12.00 states
func parseBenchLine(line string) (benchResult, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchResult{}, fmt.Errorf("malformed line %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	res := benchResult{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, fmt.Errorf("value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = val
			continue
		}
		if res.Metrics == nil {
			res.Metrics = map[string]float64{}
		}
		res.Metrics[unit] = val
	}
	return res, nil
}
