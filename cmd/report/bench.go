package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (e.g. "SolveCSC/cscring-2/w4").
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds any additional value/unit pairs the benchmark reported
	// (allocs/op, states, events, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchFile is the committed benchmark trajectory record (BENCH_synth.json).
type benchFile struct {
	Suite      string        `json:"suite"`
	GoVersion  string        `json:"go"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Scaling is the GOMAXPROCS sweep of the parallel benchmark families
	// (-scaling): per-worker-count ns/op and speedup columns relative to
	// the single-processor run.
	Scaling *scalingTable `json:"scaling,omitempty"`
	// Snapshots are metrics exports from instrumented runs (-metrics),
	// keyed by snapshot name, merged in via -merge-metrics so the committed
	// trajectory carries engine counters next to the timing numbers.
	Snapshots map[string]*obs.Snapshot `json:"metrics_snapshots,omitempty"`
}

// scalingTable is the parsed GOMAXPROCS sweep: the processor counts swept
// and one row per benchmark present in every run.
type scalingTable struct {
	GOMAXPROCS []int        `json:"gomaxprocs"`
	Rows       []scalingRow `json:"rows"`
}

// scalingRow carries one benchmark's wall-clock across the sweep. Keys of
// NsPerOp and Speedup are the decimal GOMAXPROCS values; Speedup is
// ns/op(1) ÷ ns/op(p), present when the single-processor run has the
// benchmark.
type scalingRow struct {
	Name    string             `json:"name"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// writeBenchJSON converts `go test -bench` plain-text output on r into the
// benchmark trajectory JSON on w. Lines that are not benchmark results (the
// goos/goarch/pkg/cpu header, PASS, ok) contribute metadata or are skipped.
// merge names metrics-snapshot JSON files (comma-separated) whose validated
// contents are embedded under "metrics_snapshots"; scaling names the
// GOMAXPROCS sweep files ("1=path,2=path,...") embedded under "scaling".
func writeBenchJSON(r io.Reader, w io.Writer, merge, scaling string) error {
	out := benchFile{
		Suite:      "synth",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []benchResult{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			out.CPU = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return fmt.Errorf("bench-json: %w", err)
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := mergeSnapshots(&out, merge); err != nil {
		return err
	}
	if err := mergeScaling(&out, scaling); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// mergeScaling parses the sweep spec "1=path,2=path,..." — each path a raw
// `go test -bench` output captured at that GOMAXPROCS — into the scaling
// table, computing per-worker-count speedups against the p=1 column.
func mergeScaling(out *benchFile, scaling string) error {
	if scaling == "" {
		return nil
	}
	perProc := map[int]map[string]float64{}
	var procs []int
	for _, part := range strings.Split(scaling, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return fmt.Errorf("scaling: %q is not procs=path", part)
		}
		p, err := strconv.Atoi(part[:eq])
		if err != nil || p < 1 {
			return fmt.Errorf("scaling: bad processor count in %q", part)
		}
		results, err := parseBenchFile(part[eq+1:])
		if err != nil {
			return fmt.Errorf("scaling: %w", err)
		}
		col := map[string]float64{}
		for _, res := range results {
			col[res.Name] = res.NsPerOp
		}
		perProc[p] = col
		procs = append(procs, p)
	}
	if len(procs) == 0 {
		return nil
	}
	sort.Ints(procs)
	// Row order follows the first (lowest-procs) run.
	var names []string
	for name := range perProc[procs[0]] {
		names = append(names, name)
	}
	sort.Strings(names)
	tbl := &scalingTable{GOMAXPROCS: procs}
	for _, name := range names {
		row := scalingRow{Name: name, NsPerOp: map[string]float64{}}
		base, haveBase := perProc[1][name]
		for _, p := range procs {
			ns, ok := perProc[p][name]
			if !ok {
				continue
			}
			key := strconv.Itoa(p)
			row.NsPerOp[key] = ns
			if haveBase && p != 1 && ns > 0 {
				if row.Speedup == nil {
					row.Speedup = map[string]float64{}
				}
				row.Speedup[key] = base / ns
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	out.Scaling = tbl
	return nil
}

// parseBenchFile reads one raw `go test -bench` output file into results.
func parseBenchFile(path string) ([]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var results []benchResult
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// mergeSnapshots loads each comma-separated metrics snapshot file, validates
// it, and stores it in the bench file keyed by base name (extension
// stripped).
func mergeSnapshots(out *benchFile, merge string) error {
	if merge == "" {
		return nil
	}
	out.Snapshots = map[string]*obs.Snapshot{}
	for _, path := range strings.Split(merge, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("merge-metrics: %w", err)
		}
		snap, err := obs.ParseSnapshot(data)
		if err != nil {
			return fmt.Errorf("merge-metrics %s: %w", path, err)
		}
		key := filepath.Base(path)
		key = strings.TrimSuffix(key, filepath.Ext(key))
		out.Snapshots[key] = snap
	}
	return nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkSolveCSC/cscring-2/w4-8   100   123456 ns/op   12.00 states
func parseBenchLine(line string) (benchResult, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchResult{}, fmt.Errorf("malformed line %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, fmt.Errorf("iterations in %q: %w", line, err)
	}
	res := benchResult{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, fmt.Errorf("value in %q: %w", line, err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = val
			continue
		}
		if res.Metrics == nil {
			res.Metrics = map[string]float64{}
		}
		res.Metrics[unit] = val
	}
	return res, nil
}
