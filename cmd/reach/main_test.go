package main

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/obs"
)

const muller2 = `
.model muller2
.inputs r0 r1
.outputs a0 a1
.graph
r0+ a0+
a0+ r0- r1+
r0- a0-
a0- r0+
r1+ a1+
a1+ r1-
r1- a1-
a1- r0+ r1+
.marking { <a0-,r0+> <a1-,r0+> <a1-,r1+> }
.end
`

func TestReachAllEngines(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader(muller2), &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"explicit", "symbolic", "unfold", "stubborn", "0 deadlocks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	// Explicit and symbolic state counts agree.
	if !strings.Contains(s, "states") {
		t.Fatal("state counts expected")
	}
}

func TestReachSymbolicSiftAndStats(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-engine", "symbolic", "-sift"}, strings.NewReader(muller2), &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"symbolic", "bdd", "cache-hit=", "gc=", "reorders="} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in symbolic report:\n%s", want, s)
		}
	}
	// Same state count with and without reordering.
	var plain bytes.Buffer
	if err := run([]string{"-engine", "symbolic"}, strings.NewReader(muller2), &plain, &errb); err != nil {
		t.Fatal(err)
	}
	wantStates := "16 states"
	if !strings.Contains(s, wantStates) || !strings.Contains(plain.String(), wantStates) {
		t.Fatalf("sifted and plain symbolic runs must both report %q:\n%s\n%s", wantStates, s, plain.String())
	}
}

func TestReachSingleEngine(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-engine", "unfold"}, strings.NewReader(muller2), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "explicit") {
		t.Fatal("engine filter broken")
	}
}

func TestReachParseError(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader("junk"), &out, &errb); err == nil {
		t.Fatal("parse error expected")
	}
}

// TestReachUsageError pins the exit-2 contract: a bad flag is reported as a
// cli.Usage error and the diagnostic lands on stderr, not stdout.
func TestReachUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-no-such-flag"}, strings.NewReader(muller2), &out, &errb)
	var usage cli.Usage
	if !errors.As(err, &usage) {
		t.Fatalf("want cli.Usage, got %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("usage diagnostics leaked to stdout:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "no-such-flag") {
		t.Fatalf("flag diagnostic missing from stderr:\n%s", errb.String())
	}
}

// TestReachTimeoutAbort pins the budget-abort contract: an already-expired
// deadline makes every engine report a wall-limit abort and the run fail
// with a budget-taxonomy error, while the abort rows still print.
func TestReachTimeoutAbort(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-timeout", "1ns"}, strings.NewReader(muller2), &out, &errb)
	if err == nil {
		t.Fatal("expired timeout must fail the run")
	}
	var le budget.ErrLimit
	if !errors.As(err, &le) || le.Resource != budget.Wall {
		t.Fatalf("want wall ErrLimit, got %v", err)
	}
	if !strings.Contains(out.String(), "aborted") && !strings.Contains(out.String(), "error") {
		t.Fatalf("abort rows expected in output:\n%s", out.String())
	}
}

// TestReachMetricsExport validates the instrumented engine comparison: one
// flow:reach → phase:analysis chain over all engine spans, with non-zero
// counters for each engine and the BDD kernel.
func TestReachMetricsExport(t *testing.T) {
	dir := t.TempDir()
	mpath, tpath := dir+"/m.json", dir+"/t.json"
	var out, errOut bytes.Buffer
	err := run([]string{"-metrics", mpath, "-trace-json", tpath},
		strings.NewReader(muller2), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{
		"reach.states", "symbolic.iterations", "bdd.cache_lookups",
		"unfold.events", "stubborn.states",
	} {
		if snap.Counters[c] == 0 {
			t.Fatalf("counter %s is zero; counters: %v", c, snap.Counters)
		}
	}
	trace, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(trace); err != nil {
		t.Fatal(err)
	}
}
