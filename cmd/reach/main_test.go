package main

import (
	"bytes"
	"strings"
	"testing"
)

const muller2 = `
.model muller2
.inputs r0 r1
.outputs a0 a1
.graph
r0+ a0+
a0+ r0- r1+
r0- a0-
a0- r0+
r1+ a1+
a1+ r1-
r1- a1-
a1- r0+ r1+
.marking { <a0-,r0+> <a1-,r0+> <a1-,r1+> }
.end
`

func TestReachAllEngines(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(muller2), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"explicit", "symbolic", "unfold", "stubborn", "0 deadlocks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q:\n%s", want, s)
		}
	}
	// Explicit and symbolic state counts agree.
	if !strings.Contains(s, "states") {
		t.Fatal("state counts expected")
	}
}

func TestReachSymbolicSiftAndStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "symbolic", "-sift"}, strings.NewReader(muller2), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"symbolic", "bdd", "cache-hit=", "gc=", "reorders="} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in symbolic report:\n%s", want, s)
		}
	}
	// Same state count with and without reordering.
	var plain bytes.Buffer
	if err := run([]string{"-engine", "symbolic"}, strings.NewReader(muller2), &plain); err != nil {
		t.Fatal(err)
	}
	wantStates := "16 states"
	if !strings.Contains(s, wantStates) || !strings.Contains(plain.String(), wantStates) {
		t.Fatalf("sifted and plain symbolic runs must both report %q:\n%s\n%s", wantStates, s, plain.String())
	}
}

func TestReachSingleEngine(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "unfold"}, strings.NewReader(muller2), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "explicit") {
		t.Fatal("engine filter broken")
	}
}

func TestReachParseError(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("junk"), &out); err == nil {
		t.Fatal("parse error expected")
	}
}
