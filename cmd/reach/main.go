// Command reach compares the state-space engines of Section 2.2 on one
// specification: explicit enumeration, BDD-based symbolic traversal,
// McMillan unfolding prefix, and stubborn-set partial-order reduction.
//
// Usage:
//
//	reach [-engine all|explicit|symbolic|unfold|stubborn] file.g
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reach:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("reach", flag.ContinueOnError)
	fs.SetOutput(stdout)
	engine := fs.String("engine", "all", "engine: all, explicit, symbolic, unfold, stubborn")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	n := g.Net

	run := func(name string, f func() (string, error)) {
		if *engine != "all" && *engine != name {
			return
		}
		start := time.Now()
		out, err := f()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(stdout, "%-9s error: %v\n", name, err)
			return
		}
		fmt.Fprintf(stdout, "%-9s %-55s %v\n", name, out, elapsed.Round(time.Microsecond))
	}

	run("explicit", func() (string, error) {
		rg, err := reach.Explore(n, reach.Options{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d states, %d arcs, %d deadlocks",
			rg.NumStates(), rg.NumArcs(), len(rg.Deadlocks())), nil
	})
	run("symbolic", func() (string, error) {
		res, err := symbolic.Reach(n)
		if err != nil {
			return "", err
		}
		_, dead := symbolic.DeadStates(n, res)
		return fmt.Sprintf("%.0f states, %d BDD nodes, %d iterations, %.0f deadlocks",
			res.Count, res.PeakNodes, res.Iterations, dead), nil
	})
	run("unfold", func() (string, error) {
		u, err := unfold.Build(n, unfold.Options{})
		if err != nil {
			return "", err
		}
		c, e, k := u.Stats()
		return fmt.Sprintf("%d conditions, %d events, %d cutoffs", c, e, k), nil
	})
	run("stubborn", func() (string, error) {
		res, err := stubborn.Explore(n, stubborn.Options{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d states, %d arcs, %d deadlocks",
			res.States, res.Arcs, len(res.Deadlocks)), nil
	})
	return nil
}

func load(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
