// Command reach compares the state-space engines of Section 2.2 on one
// specification: explicit enumeration (sequential and parallel), BDD-based
// symbolic traversal, McMillan unfolding prefix, and stubborn-set
// partial-order reduction.
//
// Usage:
//
//	reach [-engine all|explicit|symbolic|unfold|stubborn] [-workers N]
//	      [-sym-workers N] [-sift] [-timeout D] [-metrics FILE]
//	      [-trace-json FILE] [-cpuprofile FILE] [-memprofile FILE] file.g
//
// -workers N runs the explicit engine with N parallel workers in addition
// to the sequential run and reports the speedup (0, the default, uses
// GOMAXPROCS; 1 skips the parallel run). The parallel engine is
// deterministic: its state graph is bit-identical to the sequential one.
// The parallel row is followed by a work-stealing stats line: tasks
// expanded, steals, visited-table CAS retries and cooperative resizes.
//
// -sym-workers N computes each symbolic image step on N parallel workers
// (0 or 1 keeps the sequential kernel). Canonicity makes the parallel
// fixpoint bit-identical to the sequential one.
//
// -sift enables dynamic variable reordering (Rudell sifting) in the
// symbolic engine. The symbolic row is followed by a kernel stats line:
// live/peak node counts, op-cache hit rate, garbage collections, reorder
// passes, and — for parallel image runs — unique-table CAS retries,
// leaked arena slots and epoch re-runs.
//
// -timeout D aborts the analysis after the given wall-clock duration
// (e.g. 500ms, 10s). Engines report the partial statistics they reached
// before the abort, and the command exits nonzero.
//
// -metrics and -trace-json export per-engine counters and the span tree
// as a JSON snapshot and as Chrome trace_event JSON ("-" for stdout);
// -cpuprofile and -memprofile write pprof profiles.
//
// Usage and flag errors go to stderr and exit with status 2; runtime and
// budget-abort errors exit with status 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
)

func main() {
	cli.Exit("reach", run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("reach", flag.ContinueOnError)
	fs.SetOutput(stderr)
	engine := fs.String("engine", "all", "engine: all, explicit, symbolic, unfold, stubborn")
	workers := fs.Int("workers", 0, "parallel workers for the explicit engine (0 = GOMAXPROCS, 1 = sequential only)")
	symWorkers := fs.Int("sym-workers", 0, "parallel image workers for the symbolic engine (0 or 1 = sequential kernel)")
	sift := fs.Bool("sift", false, "dynamic variable reordering (Rudell sifting) in the symbolic engine")
	timeout := fs.Duration("timeout", 0, "abort the analysis after this wall-clock duration (0 = none)")
	var ins cli.Instrumentation
	ins.AddFlags(fs)
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	n := g.Net
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	var bgt *budget.Budget
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		bgt = &budget.Budget{Ctx: ctx}
	}
	if err := ins.Start(); err != nil {
		return err
	}
	// Export on every exit path — budget aborts AND panics; see cmd/synth
	// for the defer-ordering contract with cli.Recover.
	defer cli.Recover(&err)
	defer ins.FinishTo(stdout, stderr, &err)
	// Every engine parents under one flow:reach → phase:analysis chain so
	// exported traces validate against the span hierarchy.
	flow := ins.Registry.Root("flow:reach")
	phase := flow.Child("phase:analysis")
	defer func() {
		phase.End()
		flow.End()
	}()

	// Stats table: engine, result, wall time, speedup (parallel rows only).
	// A budget abort prints the partial statistics the engine reached and
	// makes the whole command fail; other engine errors are reported inline
	// without failing the comparison.
	var abort error
	run := func(name string, f func() (string, error)) time.Duration {
		if *engine != "all" && *engine != name {
			return 0
		}
		start := time.Now()
		out, err := f()
		elapsed := time.Since(start)
		if err != nil {
			if out != "" {
				fmt.Fprintf(stdout, "%-12s %-55s aborted: %v\n", name, out, err)
			} else {
				fmt.Fprintf(stdout, "%-12s error: %v\n", name, err)
			}
			if abort == nil && budgetAbort(err) {
				abort = err
			}
			return 0
		}
		fmt.Fprintf(stdout, "%-12s %-55s %v\n", name, out, elapsed.Round(time.Microsecond))
		return elapsed
	}

	seq := run("explicit", func() (string, error) {
		rg, err := reach.Explore(n, reach.Options{Budget: bgt, Obs: phase})
		if err != nil {
			return partialGraph(rg), err
		}
		return fmt.Sprintf("%d states, %d arcs, %d deadlocks",
			rg.NumStates(), rg.NumArcs(), len(rg.Deadlocks())), nil
	})
	if w > 1 && (*engine == "all" || *engine == "explicit") {
		start := time.Now()
		rg, err := reach.Explore(n, reach.Options{Workers: w, Budget: bgt, Obs: phase})
		elapsed := time.Since(start)
		name := fmt.Sprintf("explicit(w%d)", w)
		if err != nil {
			fmt.Fprintf(stdout, "%-12s error: %v\n", name, err)
			if abort == nil && budgetAbort(err) {
				abort = err
			}
		} else {
			out := fmt.Sprintf("%d states, %d arcs, %d deadlocks",
				rg.NumStates(), rg.NumArcs(), len(rg.Deadlocks()))
			speedup := "-"
			if seq > 0 && elapsed > 0 {
				speedup = fmt.Sprintf("%.2fx", seq.Seconds()/elapsed.Seconds())
			}
			fmt.Fprintf(stdout, "%-12s %-55s %-10v %s speedup\n",
				name, out, elapsed.Round(time.Microsecond), speedup)
			// Work-stealing contention stats ride the obs registry, which
			// only exists under -metrics/-trace-json.
			if snap := ins.Registry.Snapshot(); snap != nil {
				fmt.Fprintf(stdout, "%-12s expanded=%d steals=%d cas-retries=%d resizes=%d\n",
					"  ws", snap.Counters["reach.expanded"], snap.Counters["reach.steals"],
					snap.Counters["reach.cas_retries"], snap.Counters["reach.resizes"])
			}
		}
	}
	var symStats *bdd.Stats
	run("symbolic", func() (string, error) {
		res, err := symbolic.ReachOpts(n, symbolic.Options{Sift: *sift, Workers: *symWorkers, Budget: bgt, Obs: phase})
		if err != nil {
			if res != nil {
				return fmt.Sprintf("partial: %.0f states after %d iterations",
					res.Count, res.Iterations), err
			}
			return "", err
		}
		_, dead := symbolic.DeadStates(n, res)
		s := res.M.Stats() // include DeadStates work in the snapshot
		symStats = &s
		return fmt.Sprintf("%s states, %d BDD nodes, %d iterations, %.0f deadlocks",
			res.CountExact, res.PeakNodes, res.Iterations, dead), nil
	})
	if symStats != nil {
		fmt.Fprintf(stdout, "%-12s live=%d peak=%d cache-hit=%.1f%% gc=%d freed=%d reorders=%d swaps=%d cas-retries=%d leaked=%d epoch-retries=%d\n",
			"  bdd", symStats.Live, symStats.PeakLive, 100*symStats.CacheHitRate(),
			symStats.GCRuns, symStats.GCFreed, symStats.Reorders, symStats.Swaps,
			symStats.CASRetries, symStats.Leaked, symStats.EpochRetries)
	}
	run("unfold", func() (string, error) {
		u, err := unfold.Build(n, unfold.Options{Budget: bgt, Obs: phase})
		if err != nil {
			if u != nil {
				c, e, k := u.Stats()
				return fmt.Sprintf("partial: %d conditions, %d events, %d cutoffs", c, e, k), err
			}
			return "", err
		}
		c, e, k := u.Stats()
		return fmt.Sprintf("%d conditions, %d events, %d cutoffs", c, e, k), nil
	})
	run("stubborn", func() (string, error) {
		res, err := stubborn.Explore(n, stubborn.Options{Budget: bgt, Obs: phase})
		if err != nil {
			if res != nil {
				return fmt.Sprintf("partial: %d states, %d arcs", res.States, res.Arcs), err
			}
			return "", err
		}
		return fmt.Sprintf("%d states, %d arcs, %d deadlocks",
			res.States, res.Arcs, len(res.Deadlocks)), nil
	})
	if abort != nil {
		return fmt.Errorf("analysis aborted: %w", abort)
	}
	return nil
}

func partialGraph(rg *reach.Graph) string {
	if rg == nil {
		return ""
	}
	return fmt.Sprintf("partial: %d states, %d arcs", rg.NumStates(), rg.NumArcs())
}

// budgetAbort reports whether err came from the budget taxonomy (limit,
// cancellation, or recovered panic) rather than from the model itself.
func budgetAbort(err error) bool {
	var le budget.ErrLimit
	var ie *budget.ErrInternal
	return errors.Is(err, budget.ErrCanceled) || errors.As(err, &le) || errors.As(err, &ie)
}

func load(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
