// Command reach compares the state-space engines of Section 2.2 on one
// specification: explicit enumeration (sequential and parallel), BDD-based
// symbolic traversal, McMillan unfolding prefix, and stubborn-set
// partial-order reduction.
//
// Usage:
//
//	reach [-engine all|explicit|symbolic|unfold|stubborn] [-workers N] [-sift] file.g
//
// -workers N runs the explicit engine with N parallel workers in addition
// to the sequential run and reports the speedup (0, the default, uses
// GOMAXPROCS; 1 skips the parallel run). The parallel engine is
// deterministic: its state graph is bit-identical to the sequential one.
//
// -sift enables dynamic variable reordering (Rudell sifting) in the
// symbolic engine. The symbolic row is followed by a kernel stats line:
// live/peak node counts, op-cache hit rate, garbage collections and
// reorder passes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/bdd"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reach:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("reach", flag.ContinueOnError)
	fs.SetOutput(stdout)
	engine := fs.String("engine", "all", "engine: all, explicit, symbolic, unfold, stubborn")
	workers := fs.Int("workers", 0, "parallel workers for the explicit engine (0 = GOMAXPROCS, 1 = sequential only)")
	sift := fs.Bool("sift", false, "dynamic variable reordering (Rudell sifting) in the symbolic engine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := load(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	n := g.Net
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	// Stats table: engine, result, wall time, speedup (parallel rows only).
	run := func(name string, f func() (string, error)) time.Duration {
		if *engine != "all" && *engine != name {
			return 0
		}
		start := time.Now()
		out, err := f()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(stdout, "%-12s error: %v\n", name, err)
			return 0
		}
		fmt.Fprintf(stdout, "%-12s %-55s %v\n", name, out, elapsed.Round(time.Microsecond))
		return elapsed
	}

	seq := run("explicit", func() (string, error) {
		rg, err := reach.Explore(n, reach.Options{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d states, %d arcs, %d deadlocks",
			rg.NumStates(), rg.NumArcs(), len(rg.Deadlocks())), nil
	})
	if w > 1 && (*engine == "all" || *engine == "explicit") {
		start := time.Now()
		rg, err := reach.Explore(n, reach.Options{Workers: w})
		elapsed := time.Since(start)
		name := fmt.Sprintf("explicit(w%d)", w)
		if err != nil {
			fmt.Fprintf(stdout, "%-12s error: %v\n", name, err)
		} else {
			out := fmt.Sprintf("%d states, %d arcs, %d deadlocks",
				rg.NumStates(), rg.NumArcs(), len(rg.Deadlocks()))
			speedup := "-"
			if seq > 0 && elapsed > 0 {
				speedup = fmt.Sprintf("%.2fx", seq.Seconds()/elapsed.Seconds())
			}
			fmt.Fprintf(stdout, "%-12s %-55s %-10v %s speedup\n",
				name, out, elapsed.Round(time.Microsecond), speedup)
		}
	}
	var symStats *bdd.Stats
	run("symbolic", func() (string, error) {
		res, err := symbolic.ReachOpts(n, symbolic.Options{Sift: *sift})
		if err != nil {
			return "", err
		}
		_, dead := symbolic.DeadStates(n, res)
		s := res.M.Stats() // include DeadStates work in the snapshot
		symStats = &s
		return fmt.Sprintf("%s states, %d BDD nodes, %d iterations, %.0f deadlocks",
			res.CountExact, res.PeakNodes, res.Iterations, dead), nil
	})
	if symStats != nil {
		fmt.Fprintf(stdout, "%-12s live=%d peak=%d cache-hit=%.1f%% gc=%d freed=%d reorders=%d swaps=%d\n",
			"  bdd", symStats.Live, symStats.PeakLive, 100*symStats.CacheHitRate(),
			symStats.GCRuns, symStats.GCFreed, symStats.Reorders, symStats.Swaps)
	}
	run("unfold", func() (string, error) {
		u, err := unfold.Build(n, unfold.Options{})
		if err != nil {
			return "", err
		}
		c, e, k := u.Stats()
		return fmt.Sprintf("%d conditions, %d events, %d cutoffs", c, e, k), nil
	})
	run("stubborn", func() (string, error) {
		res, err := stubborn.Explore(n, stubborn.Options{})
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%d states, %d arcs, %d deadlocks",
			res.States, res.Arcs, len(res.Deadlocks)), nil
	})
	return nil
}

func load(path string, stdin io.Reader) (*stg.STG, error) {
	r := stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return stg.ParseG(r)
}
