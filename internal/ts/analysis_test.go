package ts_test

import (
	"strings"
	"testing"

	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
	"repro/internal/vme"
)

func readSG(t *testing.T) *ts.SG {
	t.Helper()
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestCodeOps(t *testing.T) {
	var c ts.Code
	c = c.Set(3, true)
	if !c.Bit(3) || c.Bit(2) {
		t.Fatal("Set/Bit broken")
	}
	c = c.Flip(3)
	if c != 0 {
		t.Fatal("Flip broken")
	}
	c = c.Set(0, true).Set(4, true)
	if c.String(5) != "10001" {
		t.Fatalf("String = %q", c.String(5))
	}
}

func TestReadCycleCSC(t *testing.T) {
	sg := readSG(t)
	usc := sg.USCConflicts()
	csc := sg.CSCConflicts()
	if len(usc) != 1 {
		t.Fatalf("USC conflicts = %d, want 1", len(usc))
	}
	if len(csc) != 1 {
		t.Fatalf("CSC conflicts = %d, want 1", len(csc))
	}
	if sg.HasCSC() || sg.HasUSC() {
		t.Fatal("read cycle must report the coding conflict")
	}
	// The witnessing signal must be a non-input (LDS or D).
	w := csc[0].Signal
	name := sg.Signals[w].Name
	if name != "LDS" && name != "D" {
		t.Fatalf("witness signal %s, want LDS or D", name)
	}
	if csc[0].String() == "" || usc[0].String() == "" {
		t.Fatal("conflicts must render")
	}
}

func TestReadCyclePersistent(t *testing.T) {
	sg := readSG(t)
	if !sg.IsPersistent() {
		t.Fatalf("read cycle is persistent; got %v", sg.PersistencyViolations())
	}
	imp := sg.CheckImplementability()
	if imp.OK() {
		t.Fatal("CSC conflict must make implementability fail")
	}
	if imp.CSC || !imp.Persistent || !imp.DeadlockFree || !imp.Consistent {
		t.Fatalf("unexpected implementability report: %v", imp)
	}
	if !strings.Contains(imp.String(), "csc=NO") {
		t.Fatalf("report rendering: %s", imp)
	}
}

// Choice between two outputs is a persistency violation (needs an arbiter,
// Section 2.1); choice between two inputs is fine.
func TestPersistencyRules(t *testing.T) {
	build := func(kind stg.Kind) *ts.SG {
		g := stg.New("arb")
		g.AddSignal("a", kind)
		g.AddSignal("b", kind)
		ap := g.Rise("a")
		bp := g.Rise("b")
		am := g.Fall("a")
		bm := g.Fall("b")
		n := g.Net
		p0 := n.AddPlace("p0", 1)
		n.ArcPT(p0, ap)
		n.ArcPT(p0, bp)
		n.Implicit(ap, am, 0)
		n.Implicit(bp, bm, 0)
		n.ArcTP(am, p0)
		n.ArcTP(bm, p0)
		sg, err := reach.BuildSG(g, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sg
	}
	if in := build(stg.Input); !in.IsPersistent() {
		t.Fatal("input-input conflict is allowed (environment choice)")
	}
	out := build(stg.Output)
	v := out.PersistencyViolations()
	if len(v) == 0 {
		t.Fatal("output-output conflict must violate persistency")
	}
	if v[0].String() == "" {
		t.Fatal("violation must render")
	}
}

// A non-input disabling an input violates condition (b).
func TestPersistencyInputDisabledByOutput(t *testing.T) {
	g := stg.New("mix")
	g.AddSignal("i", stg.Input)
	g.AddSignal("o", stg.Output)
	ip := g.Rise("i")
	op := g.Rise("o")
	im := g.Fall("i")
	om := g.Fall("o")
	n := g.Net
	p0 := n.AddPlace("p0", 1)
	n.ArcPT(p0, ip)
	n.ArcPT(p0, op)
	n.Implicit(ip, im, 0)
	n.Implicit(op, om, 0)
	n.ArcTP(im, p0)
	n.ArcTP(om, p0)
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range sg.PersistencyViolations() {
		if v.Disabled.Name == "i+" && v.Disabler.Name == "o+" {
			found = true
		}
	}
	if !found {
		t.Fatalf("output disabling input must be reported; got %v", sg.PersistencyViolations())
	}
}

func TestSGHelpers(t *testing.T) {
	sg := readSG(t)
	if sg.NumArcs() == 0 || sg.NumStates() != 14 {
		t.Fatal("basic counters broken")
	}
	if sg.SignalIndex("LDS") < 0 || sg.SignalIndex("nope") != -1 {
		t.Fatal("SignalIndex broken")
	}
	in := sg.In()
	totalIn := 0
	for _, arcs := range in {
		totalIn += len(arcs)
	}
	if totalIn != sg.NumArcs() {
		t.Fatal("In() must mirror Out()")
	}
	if len(sg.Deadlocks()) != 0 {
		t.Fatal("read SG deadlock-free")
	}
	if sg.HasDummy() {
		t.Fatal("read SG has no dummies")
	}
	if !strings.Contains(sg.String(), "14 states") {
		t.Fatalf("String: %s", sg)
	}
	if !strings.Contains(sg.Dump(), "10110") {
		t.Fatal("Dump must contain the conflict code")
	}
	// Initial state excitation: only DSr.
	dir, ok := sg.Excited(sg.Initial, sg.SignalIndex("DSr"))
	if !ok || dir != stg.Rise {
		t.Fatal("DSr+ must be excited initially")
	}
	if _, ok := sg.Excited(sg.Initial, sg.SignalIndex("LDS")); ok {
		t.Fatal("LDS must not be excited initially")
	}
}
