package ts_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/reach"
	"repro/internal/vme"
)

func TestCycleAndWaveform(t *testing.T) {
	sg := readSG(t)
	path := sg.Cycle()
	if len(path) < 2 {
		t.Fatalf("cycle too short: %v", path)
	}
	last := path[len(path)-1]
	looped := false
	for _, s := range path[:len(path)-1] {
		if s == last {
			looped = true
		}
	}
	if !looped {
		t.Fatalf("cycle must close on a repeated state, got %v", path)
	}
	wf := sg.ASCIIWaveform(path)
	lines := strings.Split(strings.TrimRight(wf, "\n"), "\n")
	if len(lines) != len(sg.Signals) {
		t.Fatalf("one waveform row per signal, got %d", len(lines))
	}
	// Every signal of the read cycle switches: each row has a rise and a
	// fall.
	for _, l := range lines {
		if !strings.Contains(l, "/") || !strings.Contains(l, "\\") {
			t.Fatalf("row without both edges: %q", l)
		}
	}
	// DSr starts low and rises first: the DSr row's first edge is '/'.
	dsrRow := lines[0]
	if strings.IndexByte(dsrRow, '/') > strings.IndexByte(dsrRow, '\\') {
		t.Fatalf("DSr must rise before it falls: %q", dsrRow)
	}
	if sg.ASCIIWaveform(nil) != "" {
		t.Fatal("empty path renders empty")
	}
}

func TestSGWriteDOT(t *testing.T) {
	sg := readSG(t)
	var buf bytes.Buffer
	if err := sg.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "10110", "lightcoral", "peripheries=2", "DSr+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
}

func TestWaveformMatchesFig2Order(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Following first arcs from the initial state walks one full READ
	// cycle; the event order must be the Figure 2 order.
	want := []string{"DSr+", "LDS+", "LDTACK+", "D+", "DTACK+", "DSr-", "D-"}
	s := sg.Initial
	for i, ev := range want {
		if len(sg.Out[s]) == 0 {
			t.Fatalf("path ends early at step %d", i)
		}
		if got := sg.Out[s][0].Event.Name; got != ev {
			t.Fatalf("step %d: %s, want %s", i, got, ev)
		}
		s = sg.Out[s][0].To
	}
}
