package ts

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stg"
)

// ASCIIWaveform renders the signal values along a state path as a textual
// timing diagram (the Figure 2 view of a trace):
//
//	DSr    __/~~~~~~~~\____
//	LDS    ____/~~~~\______
//
// Each step of the path contributes two columns; a rising edge prints '/',
// a falling edge '\'.
func (g *SG) ASCIIWaveform(path []int) string {
	codes := make([]Code, len(path))
	for i, s := range path {
		codes[i] = g.States[s].Code
	}
	return RenderWaveform(g.Signals, codes)
}

// RenderWaveform renders a sequence of signal codes as a textual timing
// diagram — the engine behind SG.ASCIIWaveform, shared with the property
// checker's counterexample traces, which carry codes but no state graph.
func RenderWaveform(signals []stg.Signal, codes []Code) string {
	if len(codes) == 0 {
		return ""
	}
	nameW := 0
	for _, s := range signals {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	for sig, s := range signals {
		fmt.Fprintf(&b, "%-*s ", nameW, s.Name)
		prev := codes[0].Bit(sig)
		for step, c := range codes {
			cur := c.Bit(sig)
			if step > 0 && cur != prev {
				if cur {
					b.WriteByte('/')
				} else {
					b.WriteByte('\\')
				}
			} else {
				b.WriteString(level(cur))
			}
			b.WriteString(level(cur))
			prev = cur
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func level(high bool) string {
	if high {
		return "~"
	}
	return "_"
}

// Cycle returns a path following arcs from the initial state until a state
// repeats — one full cycle of a (deterministic prefix of the) behaviour,
// preferring the first arc of each state. Useful for rendering waveforms of
// cyclic specifications.
func (g *SG) Cycle() []int {
	seen := map[int]bool{}
	var path []int
	s := g.Initial
	for !seen[s] {
		seen[s] = true
		path = append(path, s)
		if len(g.Out[s]) == 0 {
			break
		}
		s = g.Out[s][0].To
	}
	path = append(path, s)
	return path
}

// WriteDOT renders the state graph in Graphviz DOT format: states labeled
// with their binary codes (and markings), arcs with event names. States
// sharing a code — coding conflicts — are highlighted.
func (g *SG) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=ellipse];\n", g.Name)
	shared := map[Code]bool{}
	for code, states := range g.StatesByCode() {
		if len(states) > 1 {
			shared[code] = true
		}
	}
	n := len(g.Signals)
	for i, s := range g.States {
		style := ""
		if shared[s.Code] {
			style = ", style=filled, fillcolor=lightcoral"
		}
		peripheries := ""
		if i == g.Initial {
			peripheries = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  s%d [label=\"%s\\n%s\"%s%s];\n",
			i, s.Code.String(n), s.Label, style, peripheries)
	}
	for i, arcs := range g.Out {
		for _, a := range arcs {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", i, a.To, a.Event.Name)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
