package ts

import (
	"fmt"
	"sort"
)

// Isomorphic checks whether two deterministic state graphs are isomorphic as
// rooted edge-labeled graphs with matching codes: a bijection between states
// that maps initial to initial, preserves binary codes, and preserves every
// labeled arc. Labels compare as (signal name, direction) so the graphs may
// order their signal tables differently. An error explains the first
// mismatch; nil means isomorphic.
//
// Determinism (at most one successor per label per state) is required and
// checked — it makes the canonical BFS pairing sound and linear.
func Isomorphic(a, b *SG) error {
	if a.NumStates() != b.NumStates() {
		return fmt.Errorf("state counts differ: %d vs %d", a.NumStates(), b.NumStates())
	}
	if a.NumArcs() != b.NumArcs() {
		return fmt.Errorf("arc counts differ: %d vs %d", a.NumArcs(), b.NumArcs())
	}
	sigName := func(g *SG, e Event) string {
		if e.Sig < 0 {
			return "λ:" + e.Name
		}
		return g.Signals[e.Sig].Name + e.Dir.String()
	}
	codeStr := func(g *SG, s int) string {
		// Codes compared by signal NAME, not index.
		names := make([]string, len(g.Signals))
		for i, sg := range g.Signals {
			names[i] = sg.Name
		}
		idx := make([]int, len(names))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return names[idx[x]] < names[idx[y]] })
		out := make([]byte, len(idx))
		for k, i := range idx {
			if g.States[s].Code.Bit(i) {
				out[k] = '1'
			} else {
				out[k] = '0'
			}
		}
		return string(out)
	}
	type edgeMap map[string]int
	succs := func(g *SG, s int) (edgeMap, error) {
		m := edgeMap{}
		for _, arc := range g.Out[s] {
			l := sigName(g, arc.Event)
			if prev, dup := m[l]; dup && prev != arc.To {
				return nil, fmt.Errorf("graph is nondeterministic at state %d label %s", s, l)
			}
			m[l] = arc.To
		}
		return m, nil
	}

	pair := make([]int, a.NumStates()) // a-state -> b-state
	for i := range pair {
		pair[i] = -1
	}
	back := make([]int, b.NumStates())
	for i := range back {
		back[i] = -1
	}
	match := func(x, y int) error {
		if pair[x] == -1 && back[y] == -1 {
			pair[x], back[y] = y, x
			return nil
		}
		if pair[x] != y || back[y] != x {
			return fmt.Errorf("pairing conflict at states %d/%d", x, y)
		}
		return nil
	}
	if err := match(a.Initial, b.Initial); err != nil {
		return err
	}
	queue := []int{a.Initial}
	visited := map[int]bool{a.Initial: true}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		y := pair[x]
		if ca, cb := codeStr(a, x), codeStr(b, y); ca != cb {
			return fmt.Errorf("codes differ at paired states %d/%d: %s vs %s", x, y, ca, cb)
		}
		sa, err := succs(a, x)
		if err != nil {
			return err
		}
		sb, err := succs(b, y)
		if err != nil {
			return err
		}
		if len(sa) != len(sb) {
			return fmt.Errorf("out-degrees differ at paired states %d/%d", x, y)
		}
		for l, xt := range sa {
			yt, ok := sb[l]
			if !ok {
				return fmt.Errorf("label %s missing from state %d", l, y)
			}
			if err := match(xt, yt); err != nil {
				return err
			}
			if !visited[xt] {
				visited[xt] = true
				queue = append(queue, xt)
			}
		}
	}
	if len(visited) != a.NumStates() {
		return fmt.Errorf("graph A has %d unreachable states", a.NumStates()-len(visited))
	}
	return nil
}
