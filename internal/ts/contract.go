package ts

import (
	"fmt"
	"sort"
)

// ContractDummies eliminates λ-arcs from a state graph by collapsing each
// dummy-connected group of states into one: specifications may use dummy
// events for structuring (Section 1), but logic synthesis needs a state
// graph whose arcs are all signal edges. Contraction is valid when every
// state of a group shares one binary code — guaranteed by construction,
// since dummy transitions do not change the code — and when no signal
// event's determinism is destroyed (checked; an error names the offending
// group).
//
// The contracted group inherits the union of the member states' outgoing
// signal arcs.
func ContractDummies(g *SG) (*SG, error) {
	if !g.HasDummy() {
		return g, nil
	}
	// Union-find over dummy arcs.
	parent := make([]int, len(g.States))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for s, arcs := range g.Out {
		for _, a := range arcs {
			if a.Event.Sig < 0 {
				union(s, a.To)
			}
		}
	}
	// Verify code uniformity per group.
	codeOf := map[int]Code{}
	for s := range g.States {
		r := find(s)
		if c, ok := codeOf[r]; ok {
			if c != g.States[s].Code {
				return nil, fmt.Errorf("ts: dummy group mixes codes %s and %s",
					c.String(len(g.Signals)), g.States[s].Code.String(len(g.Signals)))
			}
		} else {
			codeOf[r] = g.States[s].Code
		}
	}
	// Build the contracted SG.
	remap := map[int]int{}
	out := &SG{Name: g.Name + "-contracted", Signals: g.Signals}
	var roots []int
	for s := range g.States {
		if find(s) == s {
			roots = append(roots, s)
		}
	}
	sort.Ints(roots)
	for _, r := range roots {
		remap[r] = len(out.States)
		out.States = append(out.States, State{
			Code:  g.States[r].Code,
			Key:   g.States[r].Key,
			Label: g.States[r].Label,
		})
		out.Out = append(out.Out, nil)
	}
	out.Initial = remap[find(g.Initial)]
	type arcKey struct {
		from int
		ev   Event
		to   int
	}
	seen := map[arcKey]bool{}
	for s, arcs := range g.Out {
		from := remap[find(s)]
		for _, a := range arcs {
			if a.Event.Sig < 0 {
				continue
			}
			to := remap[find(a.To)]
			k := arcKey{from: from, ev: Event{Sig: a.Event.Sig, Dir: a.Event.Dir}, to: to}
			if seen[k] {
				continue
			}
			seen[k] = true
			out.Out[from] = append(out.Out[from], Arc{Event: a.Event, To: to})
		}
	}
	// Determinism check: one target per (state, signal edge).
	for s, arcs := range out.Out {
		byEv := map[[2]int]int{}
		for _, a := range arcs {
			k := [2]int{a.Event.Sig, int(a.Event.Dir)}
			if prev, ok := byEv[k]; ok && prev != a.To {
				return nil, fmt.Errorf("ts: contraction makes %s nondeterministic in state %d",
					a.Event.Name, s)
			}
			byEv[k] = a.To
		}
	}
	return out, nil
}
