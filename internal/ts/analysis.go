package ts

import (
	"fmt"
	"strings"

	"repro/internal/stg"
)

// This file implements the implementability checks of Section 2.1:
// consistency is established during SG construction (package reach);
// here live complete state coding (USC/CSC) and persistency.

// CodeConflict is a pair of distinct states sharing a binary code.
type CodeConflict struct {
	Code   Code
	A, B   int
	Signal int // for CSC conflicts: a non-input signal with differing excitation; -1 for pure USC
}

func (c CodeConflict) String() string {
	return fmt.Sprintf("states %d/%d share code %b (signal %d)", c.A, c.B, uint64(c.Code), c.Signal)
}

// USCConflicts returns all pairs of distinct states with equal binary codes:
// violations of the Unique State Coding property.
func (g *SG) USCConflicts() []CodeConflict {
	var out []CodeConflict
	for _, group := range g.groupsSorted() {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				out = append(out, CodeConflict{
					Code: g.States[group[i]].Code, A: group[i], B: group[j], Signal: -1,
				})
			}
		}
	}
	return out
}

// CSCConflicts returns the USC conflict pairs in which some non-input signal
// has different excitation in the two states — the conflicts that make the
// next-state functions ill-defined ("completeness of state encoding",
// Section 2.1). Each conflict records one witnessing signal.
func (g *SG) CSCConflicts() []CodeConflict {
	var out []CodeConflict
	for _, group := range g.groupsSorted() {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if sig, ok := g.cscWitness(a, b); ok {
					out = append(out, CodeConflict{
						Code: g.States[a].Code, A: a, B: b, Signal: sig,
					})
				}
			}
		}
	}
	return out
}

// HasCSC reports whether the Complete State Coding property holds.
func (g *SG) HasCSC() bool { return len(g.CSCConflicts()) == 0 }

// HasUSC reports whether the Unique State Coding property holds.
func (g *SG) HasUSC() bool { return len(g.USCConflicts()) == 0 }

// cscWitness returns a non-input signal whose excitation differs between
// states a and b.
func (g *SG) cscWitness(a, b int) (int, bool) {
	for sig, s := range g.Signals {
		if s.Kind != stg.Output && s.Kind != stg.Internal {
			continue
		}
		_, exA := g.Excited(a, sig)
		_, exB := g.Excited(b, sig)
		if exA != exB {
			return sig, true
		}
	}
	return -1, false
}

// groupsSorted returns code-sharing groups of size >= 2 in deterministic
// order (by smallest member).
func (g *SG) groupsSorted() [][]int {
	byCode := g.StatesByCode()
	var groups [][]int
	for _, grp := range byCode {
		if len(grp) >= 2 {
			groups = append(groups, grp)
		}
	}
	// Each group is already ascending (states appended in index order);
	// order groups by first member for determinism.
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j][0] < groups[j-1][0]; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
	return groups
}

// PersistencyViolation records event e being disabled by event u firing in
// state S: after u, no arc labeled like e leaves the successor.
type PersistencyViolation struct {
	State     int
	Disabled  Event // the event that was enabled and got disabled
	Disabler  Event // the event whose firing disabled it
	Successor int
}

func (v PersistencyViolation) String() string {
	return fmt.Sprintf("state %d: %s disables %s", v.State, v.Disabler, v.Disabled)
}

// PersistencyViolations checks the two persistency conditions of Section 2.1:
// (a) no non-input signal transition may be disabled by any other signal
// transition (would cause hazards at gate outputs), and (b) no input signal
// transition may be disabled by a non-input transition (would cause hazards
// at the device inputs). Input-input conflicts are allowed: they model
// choices made by the environment.
func (g *SG) PersistencyViolations() []PersistencyViolation {
	var out []PersistencyViolation
	for s, arcs := range g.Out {
		for _, e := range arcs {
			for _, u := range arcs {
				if sameEvent(e.Event, u.Event) {
					continue
				}
				eInput := g.isInputEvent(e.Event)
				uInput := g.isInputEvent(u.Event)
				if eInput && uInput {
					continue // environment's own choice
				}
				if eInput && !uInput {
					// Condition (b): u (non-input) must not disable input e.
					if !g.stillEnabled(u.To, e.Event) {
						out = append(out, PersistencyViolation{
							State: s, Disabled: e.Event, Disabler: u.Event, Successor: u.To,
						})
					}
					continue
				}
				// e is non-input: condition (a), nothing may disable it.
				if !g.stillEnabled(u.To, e.Event) {
					out = append(out, PersistencyViolation{
						State: s, Disabled: e.Event, Disabler: u.Event, Successor: u.To,
					})
				}
			}
		}
	}
	return out
}

// IsPersistent reports whether the SG satisfies both persistency conditions.
func (g *SG) IsPersistent() bool { return len(g.PersistencyViolations()) == 0 }

func (g *SG) isInputEvent(e Event) bool {
	return e.Sig >= 0 && g.Signals[e.Sig].Kind == stg.Input
}

func (g *SG) stillEnabled(state int, e Event) bool {
	for _, a := range g.Out[state] {
		if sameEvent(a.Event, e) {
			return true
		}
	}
	return false
}

func sameEvent(a, b Event) bool {
	if a.Sig < 0 || b.Sig < 0 {
		return a.Name == b.Name
	}
	return a.Sig == b.Sig && a.Dir == b.Dir
}

// Implementability aggregates the Section 2.1 property suite.
type Implementability struct {
	Consistent   bool // established by construction (reach.BuildSG)
	USC          bool
	CSC          bool
	Persistent   bool
	DeadlockFree bool
}

// OK reports whether the SG can be implemented as a speed-independent
// circuit (with USC relaxed: only CSC is required for well-defined logic).
func (r Implementability) OK() bool {
	return r.Consistent && r.CSC && r.Persistent && r.DeadlockFree
}

func (r Implementability) String() string {
	flag := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "consistent=%s usc=%s csc=%s persistent=%s deadlock-free=%s",
		flag(r.Consistent), flag(r.USC), flag(r.CSC), flag(r.Persistent), flag(r.DeadlockFree))
	return b.String()
}

// CheckImplementability runs the full Section 2.1 property suite on a
// consistently-built SG.
func (g *SG) CheckImplementability() Implementability {
	return Implementability{
		Consistent:   true, // reach.BuildSG fails otherwise
		USC:          g.HasUSC(),
		CSC:          g.HasCSC(),
		Persistent:   g.IsPersistent(),
		DeadlockFree: len(g.Deadlocks()) == 0,
	}
}
