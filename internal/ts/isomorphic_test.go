package ts_test

import (
	"testing"

	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/ts"
	"repro/internal/vme"
)

func TestIsomorphicReflexive(t *testing.T) {
	sg := readSG(t)
	if err := ts.Isomorphic(sg, sg); err != nil {
		t.Fatal(err)
	}
}

// The strongest round-trip statement: the back-annotated PN's state graph is
// isomorphic to the original — not merely equal in counts.
func TestIsomorphicRoundTrip(t *testing.T) {
	sg := readSG(t)
	back, err := regions.Synthesize(sg)
	if err != nil {
		t.Fatal(err)
	}
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Isomorphic(sg, sg2); err != nil {
		t.Fatalf("round trip not isomorphic: %v", err)
	}
	rw, err := reach.BuildSG(vme.ReadWriteSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	backRW, err := regions.Synthesize(rw)
	if err != nil {
		t.Fatal(err)
	}
	rw2, err := reach.BuildSG(backRW, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Isomorphic(rw, rw2); err != nil {
		t.Fatalf("read/write round trip not isomorphic: %v", err)
	}
}

func TestIsomorphicDetectsDifferences(t *testing.T) {
	sg := readSG(t)
	rw, err := reach.BuildSG(vme.ReadWriteSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Isomorphic(sg, rw); err == nil {
		t.Fatal("different graphs must not be isomorphic")
	}
	// Same counts, different code: flip a bit.
	clone := *sg
	clone.States = append([]ts.State(nil), sg.States...)
	clone.States[3].Code = clone.States[3].Code.Flip(0)
	if err := ts.Isomorphic(sg, &clone); err == nil {
		t.Fatal("code mutation must be detected")
	}
}
