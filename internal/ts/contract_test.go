package ts_test

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/ts"
)

// dummySpec: a handshake with an internal λ-synchronization between the
// request and the acknowledge.
func dummySpec(t *testing.T) *stg.STG {
	t.Helper()
	g := stg.New("dummyhs")
	g.AddSignal("r", stg.Input)
	g.AddSignal("a", stg.Output)
	rp := g.Rise("r")
	eps := g.AddDummy("eps")
	ap := g.Rise("a")
	rm := g.Fall("r")
	eps2 := g.AddDummy("eps2")
	am := g.Fall("a")
	g.Net.Chain(rp, eps, ap, rm, eps2, am)
	g.Net.Implicit(am, rp, 1)
	return g
}

func TestContractDummies(t *testing.T) {
	g := dummySpec(t)
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.HasDummy() {
		t.Fatal("spec must contain dummies")
	}
	con, err := ts.ContractDummies(sg)
	if err != nil {
		t.Fatal(err)
	}
	if con.HasDummy() {
		t.Fatal("contraction must remove dummy arcs")
	}
	if con.NumStates() != 4 {
		t.Fatalf("contracted handshake has 4 states, got %d", con.NumStates())
	}
	// Synthesis from the contracted SG yields the plain handshake circuit,
	// verifiable against the dummy spec (the verifier fires dummies as
	// silent environment moves).
	nl, err := logic.Synthesize(con, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Verify(nl, g, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("contracted synthesis must verify: %v", res.Violations)
	}
}

func TestContractNoopWithoutDummies(t *testing.T) {
	sg := readSG(t)
	con, err := ts.ContractDummies(sg)
	if err != nil {
		t.Fatal(err)
	}
	if con != sg {
		t.Fatal("dummy-free SG must be returned unchanged")
	}
}

// Contraction detects nondeterminism: two dummy-separated states offering
// the same signal edge to different targets.
func TestContractNondeterminism(t *testing.T) {
	g := stg.New("ndet")
	g.AddSignal("x", stg.Output)
	g.AddSignal("y", stg.Output)
	// Choice place: either eps;x+;y+;... or x+;y+ directly with different
	// continuations — build a TS directly to control the shape.
	sg := &ts.SG{
		Name: "ndet",
		Signals: []stg.Signal{
			{Name: "x", Kind: stg.Output}, {Name: "y", Kind: stg.Output},
		},
	}
	// States 0 -eps-> 1; 0 -x+-> 2; 1 -x+-> 3; 2,3 distinct.
	sg.States = make([]ts.State, 4)
	sg.States[1].Code = sg.States[0].Code // dummy keeps code
	sg.States[2].Code = sg.States[0].Code.Set(0, true)
	sg.States[3].Code = sg.States[2].Code
	sg.Out = make([][]ts.Arc, 4)
	sg.Out[0] = []ts.Arc{
		{Event: ts.Event{Sig: -1, Name: "eps"}, To: 1},
		{Event: ts.Event{Sig: 0, Dir: stg.Rise, Name: "x+"}, To: 2},
	}
	sg.Out[1] = []ts.Arc{{Event: ts.Event{Sig: 0, Dir: stg.Rise, Name: "x+"}, To: 3}}
	if _, err := ts.ContractDummies(sg); err == nil {
		t.Fatal("nondeterministic contraction must be rejected")
	}
}
