package logic_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/encoding"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/ts"
	"repro/internal/vme"
)

var logicWorkerCounts = []int{2, 4, 8}

// solvedSG runs the CSC solver on g and returns the implementable SG.
func solvedSG(t testing.TB, k int) *ts.SG {
	t.Helper()
	sol, err := encoding.SolveCSC(gen.CSCRing(k), k)
	if err != nil {
		t.Fatal(err)
	}
	return sol.SG
}

func parityModels(t testing.TB) map[string]*ts.SG {
	muller, err := reach.BuildSG(gen.MullerPipeline(4), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*ts.SG{
		"vme-csc":   cscSG(t),
		"muller-4":  muller,
		"cscring-2": solvedSG(t, 2),
	}
}

// TestDeriveAllOptsMatchesSequential: the shared-extraction parallel deriver
// returns functions — minterm lists, covers, everything — bit-identical to
// the sequential per-signal reference at every worker count.
func TestDeriveAllOptsMatchesSequential(t *testing.T) {
	for name, sg := range parityModels(t) {
		ref, err := logic.DeriveAll(sg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range logicWorkerCounts {
			got, err := logic.DeriveAllOpts(sg, logic.Options{Workers: w})
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s w=%d: derived functions differ from sequential", name, w)
			}
		}
	}
}

// TestSynthesizeOptsMatchesSequential pins netlist identity across worker
// counts for all three architectures.
func TestSynthesizeOptsMatchesSequential(t *testing.T) {
	styles := []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC}
	for name, sg := range parityModels(t) {
		for _, style := range styles {
			ref, err := logic.Synthesize(sg, style)
			if err != nil {
				t.Fatalf("%s %v: %v", name, style, err)
			}
			for _, w := range logicWorkerCounts {
				got, err := logic.SynthesizeOpts(sg, style, logic.Options{Workers: w})
				if err != nil {
					t.Fatalf("%s %v w=%d: %v", name, style, w, err)
				}
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("%s %v w=%d: netlist differs from sequential", name, style, w)
				}
			}
		}
	}
}

// TestDeriveAllOptsCSCError: on a conflicted SG the parallel deriver
// reproduces the sequential deriver's exact witness error.
func TestDeriveAllOptsCSCError(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, refErr := logic.DeriveAll(sg)
	var ref *logic.CSCError
	if !errors.As(refErr, &ref) {
		t.Fatalf("sequential: want *CSCError, got %v", refErr)
	}
	for _, w := range logicWorkerCounts {
		_, gotErr := logic.DeriveAllOpts(sg, logic.Options{Workers: w})
		var got *logic.CSCError
		if !errors.As(gotErr, &got) {
			t.Fatalf("w=%d: want *CSCError, got %v", w, gotErr)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("w=%d: error %v, want %v", w, got, ref)
		}
		if _, err := logic.SynthesizeOpts(sg, logic.ComplexGate, logic.Options{Workers: w}); err == nil {
			t.Fatalf("w=%d: synthesis of a conflicted SG must fail", w)
		}
	}
}
