// Package logic implements logic synthesis from state graphs (Section 3):
// classification of states into excitation and quiescent regions, derivation
// of next-state functions for every non-input signal, and synthesis of gate
// netlists in three architectures — complex gates, generalized C-elements
// (monotonous covers), and set/reset latch implementations.
package logic

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/boolmin"
	"repro/internal/stg"
	"repro/internal/ts"
)

// Region classifies a state with respect to one signal (Section 3.2).
type Region int

const (
	// ERPlus: the signal is 0 and its rising transition is enabled.
	ERPlus Region = iota
	// QRPlus: the signal is stable 1.
	QRPlus
	// ERMinus: the signal is 1 and its falling transition is enabled.
	ERMinus
	// QRMinus: the signal is stable 0.
	QRMinus
)

func (r Region) String() string {
	switch r {
	case ERPlus:
		return "ER+"
	case QRPlus:
		return "QR+"
	case ERMinus:
		return "ER-"
	case QRMinus:
		return "QR-"
	}
	return "?"
}

// RegionOf classifies state s of the SG with respect to signal sig.
func RegionOf(g *ts.SG, s, sig int) Region {
	val := g.States[s].Code.Bit(sig)
	dir, excited := g.Excited(s, sig)
	switch {
	case excited && dir == stg.Rise:
		return ERPlus
	case excited && dir == stg.Fall:
		return ERMinus
	case val:
		return QRPlus
	default:
		return QRMinus
	}
}

// NextValue returns the value signal sig settles to from state s: flipped if
// excited, held otherwise. This is f_z(s) of Section 3.2.
func NextValue(g *ts.SG, s, sig int) bool {
	switch RegionOf(g, s, sig) {
	case ERPlus, QRPlus:
		return true
	default:
		return false
	}
}

// Function is the derived next-state function of one non-input signal, as
// on-set/off-set minterms over the SG's signal space plus a minimized
// two-level cover.
type Function struct {
	Signal int
	Name   string
	N      int
	Names  []string
	On     []uint64
	Off    []uint64
	Cover  boolmin.Cover
}

// Expr renders the minimized cover with signal names.
func (f Function) Expr() string { return f.Cover.Expr(f.Names) }

// CSCError reports a next-state function conflict: two states share a code
// but imply different function values (the Figure 4 situation).
type CSCError struct {
	Signal string
	Code   ts.Code
	A, B   int
	N      int
}

func (e *CSCError) Error() string {
	return fmt.Sprintf("logic: CSC conflict for signal %s: states %d and %d share code %s with conflicting next values",
		e.Signal, e.A, e.B, e.Code.String(e.N))
}

// Derive computes the next-state function of signal sig. It fails with a
// *CSCError when the SG lacks complete state coding for sig.
func Derive(g *ts.SG, sig int) (Function, error) {
	n := len(g.Signals)
	names := make([]string, n)
	for i, s := range g.Signals {
		names[i] = s.Name
	}
	f := Function{Signal: sig, Name: g.Signals[sig].Name, N: n, Names: names}
	// valueByCode remembers the implied value (and a witness state) per code.
	type implied struct {
		value bool
		state int
	}
	valueByCode := map[ts.Code]implied{}
	for s := range g.States {
		code := g.States[s].Code
		v := NextValue(g, s, sig)
		if prev, ok := valueByCode[code]; ok {
			if prev.value != v {
				return Function{}, &CSCError{Signal: f.Name, Code: code, A: prev.state, B: s, N: n}
			}
			continue
		}
		valueByCode[code] = implied{value: v, state: s}
		if v {
			f.On = append(f.On, uint64(code))
		} else {
			f.Off = append(f.Off, uint64(code))
		}
	}
	f.Cover = deriveCover(f.On, f.Off, n)
	return f, nil
}

// deriveCover picks the minimization engine by width: exact Quine–McCluskey
// for small functions, BDD-based ISOP (Minato–Morreale) for medium ones
// where the don't-care space cannot be enumerated, and espresso-style
// expansion beyond the BDD comfort zone.
func deriveCover(on, off []uint64, n int) boolmin.Cover {
	switch {
	case n <= 14:
		return boolmin.MinimizeOnOff(on, off, n)
	case n <= 28:
		m := bdd.New(n)
		l := m.FromMinterms(on)
		u := m.Not(m.FromMinterms(off))
		return m.ISOP(l, u)
	default:
		return boolmin.MinimizeOnOff(on, off, n)
	}
}

// DeriveAll derives the next-state functions of every non-input signal.
func DeriveAll(g *ts.SG) ([]Function, error) {
	var out []Function
	for sig, s := range g.Signals {
		if s.Kind != stg.Output && s.Kind != stg.Internal {
			continue
		}
		f, err := Derive(g, sig)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// ExcitationRegions returns the connected components of ER(sig,dir): the
// state sets used for signal insertion and region-based analysis.
func ExcitationRegions(g *ts.SG, sig int, dir stg.Dir) [][]int {
	want := ERPlus
	if dir == stg.Fall {
		want = ERMinus
	}
	inER := make([]bool, len(g.States))
	for s := range g.States {
		inER[s] = RegionOf(g, s, sig) == want
	}
	// Connected components in the underlying undirected graph restricted to ER.
	adj := make([][]int, len(g.States))
	for s, arcs := range g.Out {
		for _, a := range arcs {
			if inER[s] && inER[a.To] {
				adj[s] = append(adj[s], a.To)
				adj[a.To] = append(adj[a.To], s)
			}
		}
	}
	seen := make([]bool, len(g.States))
	var comps [][]int
	for s := range g.States {
		if !inER[s] || seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
