package logic

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/boolmin"
	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/stg"
	"repro/internal/ts"
)

// Options configure the derivation and synthesis entry points.
type Options struct {
	// Workers selects the shared-extraction parallel deriver when > 1: one
	// pass over the state graph computes every signal's next-state
	// information at once (per-signal scans disappear), the don't-care set —
	// identical for all signals of one SG — is enumerated once, and the
	// per-signal cover minimizations fan out across a worker pool with
	// pooled minimizer scratch. Functions and netlists are bit-identical to
	// the sequential reference path at any worker count. 0 or 1 runs the
	// sequential per-signal reference implementation.
	Workers int
	// Budget adds cancellation between per-signal minimizations; nil is
	// unlimited.
	Budget *budget.Budget
	// Obs is the parent observability span: derivation/synthesis records an
	// "engine:logic" child span, per-worker spans, and the logic.* counters
	// (signals, cover literals, minimizer calls, budget checks) into its
	// registry. nil disables observability.
	Obs *obs.Span
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// extraction is the shared one-pass next-state analysis of a state graph.
// For every state the excited rise/fall signal sets are folded into a
// successor code nextCode = (code | rise) &^ fall; aggregating those by
// unique code answers, for all signals at once, everything the per-signal
// Derive scan computes: agreement (CSC), implied next values, and region
// classification.
type extraction struct {
	n     int
	names []string
	// Unique codes in first-seen state order — the order Derive appends
	// minterms in, so shared-path on/off sets match it exactly.
	codes  []ts.Code
	andNxt []ts.Code
	orNxt  []ts.Code
	// Per-code region masks: bit s set iff some state with this code has
	// signal s in the region.
	erP, erM, qrP, qrM []ts.Code
	// dc is the shared don't-care set: the unreachable codes, in increasing
	// minterm order, as MinimizeOnOff enumerates them. Nil when n > 14.
	dc []uint64
	// minCalls counts cover minimizations (nil no-op when observability is
	// off).
	minCalls *obs.Counter
}

// extract runs the shared pass. Cost: one sweep of states and arcs plus one
// sweep of the unique codes — independent of the signal count.
func extract(g *ts.SG) *extraction {
	n := len(g.Signals)
	ex := &extraction{n: n, names: make([]string, n)}
	for i, s := range g.Signals {
		ex.names[i] = s.Name
	}
	mask := ts.Code(0)
	if n > 0 {
		mask = ts.Code((uint64(1) << uint(n)) - 1)
		if n >= 64 {
			mask = ^ts.Code(0)
		}
	}
	idx := make(map[ts.Code]int, len(g.States))
	for s := range g.States {
		code := g.States[s].Code
		var rise, fall ts.Code
		for _, a := range g.Out[s] {
			if a.Event.Sig < 0 {
				continue
			}
			bit := ts.Code(1) << uint(a.Event.Sig)
			if a.Event.Dir == stg.Rise {
				rise |= bit
			} else {
				fall |= bit
			}
		}
		next := (code | rise) &^ fall
		quiet := mask &^ (rise | fall)
		i, ok := idx[code]
		if !ok {
			i = len(ex.codes)
			idx[code] = i
			ex.codes = append(ex.codes, code)
			ex.andNxt = append(ex.andNxt, next)
			ex.orNxt = append(ex.orNxt, next)
			ex.erP = append(ex.erP, rise)
			ex.erM = append(ex.erM, fall)
			ex.qrP = append(ex.qrP, code&quiet)
			ex.qrM = append(ex.qrM, quiet&^code)
			continue
		}
		ex.andNxt[i] &= next
		ex.orNxt[i] |= next
		ex.erP[i] |= rise
		ex.erM[i] |= fall
		ex.qrP[i] |= code & quiet
		ex.qrM[i] |= quiet &^ code
	}
	if n <= 14 {
		reach := make([]uint64, len(ex.codes))
		for i, c := range ex.codes {
			reach[i] = uint64(c)
		}
		ex.dc = boolmin.DontCares(reach, nil, n)
	}
	return ex
}

// conflicted reports whether some code implies two next values for sig.
func (ex *extraction) conflicted(sig int) bool {
	bit := ts.Code(1) << uint(sig)
	for i := range ex.codes {
		if (ex.orNxt[i]^ex.andNxt[i])&bit != 0 {
			return true
		}
	}
	return false
}

// onOff splits the unique codes into sig's on and off sets, in the exact
// first-seen order Derive produces. Must not be called on a conflicted
// signal.
func (ex *extraction) onOff(sig int) (on, off []uint64) {
	bit := ts.Code(1) << uint(sig)
	for i, c := range ex.codes {
		if ex.andNxt[i]&bit != 0 {
			on = append(on, uint64(c))
		} else {
			off = append(off, uint64(c))
		}
	}
	return on, off
}

// deriveShared produces sig's Function from the shared extraction, with the
// cover minimized through the worker's pooled scratch.
func (ex *extraction) deriveShared(sig int, mz *boolmin.Minimizer) Function {
	ex.minCalls.Inc()
	on, off := ex.onOff(sig)
	f := Function{Signal: sig, Name: ex.names[sig], N: ex.n, Names: ex.names, On: on, Off: off}
	if ex.n <= 14 {
		f.Cover = mz.Minimize(on, ex.dc, ex.n)
	} else {
		f.Cover = deriveCover(on, off, ex.n)
	}
	return f
}

// nonInputs lists the signals synthesis derives functions for.
func nonInputs(signals []stg.Signal) []int {
	var out []int
	for sig, s := range signals {
		if s.Kind == stg.Output || s.Kind == stg.Internal {
			out = append(out, sig)
		}
	}
	return out
}

// DeriveAllOpts is DeriveAll with explicit options. With Workers > 1 the
// shared-extraction deriver runs: per-signal state scans collapse into one
// pass and the cover minimizations fan out across the pool. The returned
// functions — minterm order, covers, errors — are identical to DeriveAll's.
func DeriveAllOpts(g *ts.SG, opts Options) ([]Function, error) {
	sp := opts.Obs.Child("engine:logic")
	fs, err := deriveAllOpts(g, opts, sp)
	if sp != nil {
		lits := 0
		h := sp.Registry().Histogram("logic.cover_size")
		for _, f := range fs {
			l := f.Cover.Literals()
			lits += l
			h.Observe(int64(l))
		}
		recordLogic(sp, len(fs), lits, err)
	}
	return fs, err
}

// recordLogic writes the synthesis totals into the engine span's registry
// and closes the span. literals is the summed cover literal count.
func recordLogic(sp *obs.Span, signals, literals int, err error) {
	reg := sp.Registry()
	reg.Counter("logic.signals").Add(int64(signals))
	reg.Counter("logic.cover_literals").Add(int64(literals))
	sp.Attr("signals", strconv.Itoa(signals))
	sp.Attr("cover_literals", strconv.Itoa(literals))
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.End()
}

func deriveAllOpts(g *ts.SG, opts Options, sp *obs.Span) ([]Function, error) {
	w := opts.workers()
	if w <= 1 {
		return DeriveAll(g)
	}
	sigs := nonInputs(g.Signals)
	ex := extract(g)
	ex.minCalls = sp.Registry().Counter("logic.minimizer_calls")
	// Conflicts are found on the cheap aggregate first; the reference
	// deriver then reproduces the exact witness error, in signal order.
	for _, sig := range sigs {
		if ex.conflicted(sig) {
			if _, err := Derive(g, sig); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("logic: internal: aggregate found a conflict for %s the deriver did not", ex.names[sig])
		}
	}
	out := make([]Function, len(sigs))
	if err := runWorkers(w, len(sigs), opts.Budget, sp, func(mz *boolmin.Minimizer, i int) {
		out[i] = ex.deriveShared(sigs[i], mz)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SynthesizeOpts is Synthesize with explicit options; see DeriveAllOpts for
// the Workers > 1 path. Netlists are identical at any worker count.
func SynthesizeOpts(g *ts.SG, style Style, opts Options) (*Netlist, error) {
	sp := opts.Obs.Child("engine:logic")
	nl, err := synthesizeOpts(g, style, opts, sp)
	if sp != nil {
		signals, lits := 0, 0
		if nl != nil {
			signals = len(nl.Gates)
			h := sp.Registry().Histogram("logic.cover_size")
			for _, gt := range nl.Gates {
				l := gt.F.Literals() + gt.Set.Literals() + gt.Reset.Literals()
				lits += l
				h.Observe(int64(l))
			}
		}
		recordLogic(sp, signals, lits, err)
	}
	return nl, err
}

func synthesizeOpts(g *ts.SG, style Style, opts Options, sp *obs.Span) (*Netlist, error) {
	w := opts.workers()
	if w <= 1 {
		return Synthesize(g, style)
	}
	nl := &Netlist{Name: g.Name}
	for _, s := range g.Signals {
		nl.AddSignal(s.Name, s.Kind)
	}
	sigs := nonInputs(g.Signals)
	ex := extract(g)
	ex.minCalls = sp.Registry().Counter("logic.minimizer_calls")
	// CSC conflicts surface before the fan-out, in signal order, so the
	// workers run an error-free pure computation. For complex gates the
	// reference deriver reproduces the exact witness error.
	for _, sig := range sigs {
		if style == ComplexGate {
			if ex.conflicted(sig) {
				if _, err := Derive(g, sig); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("logic: internal: aggregate found a conflict for %s the deriver did not", ex.names[sig])
			}
		} else if err := ex.srConflict(sig); err != nil {
			return nil, err
		}
	}
	gates := make([]Gate, len(sigs))
	if err := runWorkers(w, len(sigs), opts.Budget, sp, func(mz *boolmin.Minimizer, i int) {
		gates[i] = ex.synthesizeShared(sigs[i], style, mz)
	}); err != nil {
		return nil, err
	}
	nl.Gates = append(nl.Gates, gates...)
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("logic: synthesized netlist invalid: %w", err)
	}
	return nl, nil
}

// srConflict checks sig's monotonous-cover consistency condition and reports
// the first conflicting code in first-seen order (the reference
// SetResetCovers reports an arbitrary one — it walks a map).
func (ex *extraction) srConflict(sig int) error {
	bit := ts.Code(1) << uint(sig)
	for i, c := range ex.codes {
		erPlus := ex.erP[i]&bit != 0
		erMinus := ex.erM[i]&bit != 0
		qrPlus := ex.qrP[i]&bit != 0
		qrMinus := ex.qrM[i]&bit != 0
		if erPlus && (erMinus || qrMinus) || erMinus && qrPlus {
			return &CSCError{Signal: ex.names[sig], Code: c, N: ex.n}
		}
	}
	return nil
}

// synthesizeShared mirrors synthesizeSignal on the shared extraction. The
// caller has already ruled out CSC conflicts for sig.
func (ex *extraction) synthesizeShared(sig int, style Style, mz *boolmin.Minimizer) Gate {
	if style == ComplexGate {
		f := ex.deriveShared(sig, mz)
		return Gate{Kind: Comb, Output: sig, F: f.Cover}
	}
	set, reset := ex.setResetCovers(sig, mz)
	kind := CElem
	if style == StandardC {
		kind = RSLatch
	}
	return Gate{Kind: kind, Output: sig, Set: set, Reset: reset}
}

// setResetCovers mirrors SetResetCovers on the shared extraction: identical
// monotonous-cover on/off assignment per unique code, in first-seen order.
func (ex *extraction) setResetCovers(sig int, mz *boolmin.Minimizer) (set, reset boolmin.Cover) {
	bit := ts.Code(1) << uint(sig)
	var setOn, setOff, resetOn, resetOff []uint64
	for i, c := range ex.codes {
		m := uint64(c)
		switch {
		case ex.erP[i]&bit != 0:
			setOn = append(setOn, m)
			resetOff = append(resetOff, m)
		case ex.erM[i]&bit != 0:
			resetOn = append(resetOn, m)
			setOff = append(setOff, m)
		default:
			if ex.qrP[i]&bit != 0 {
				resetOff = append(resetOff, m)
			}
			if ex.qrM[i]&bit != 0 {
				setOff = append(setOff, m)
			}
		}
	}
	ex.minCalls.Add(2)
	set = minimizeOnOffPooled(setOn, setOff, ex.n, mz)
	reset = minimizeOnOffPooled(resetOn, resetOff, ex.n, mz)
	return set, reset
}

// minimizeOnOffPooled is MinimizeOnOff routed through pooled scratch on the
// exact-QMC widths.
func minimizeOnOffPooled(on, off []uint64, n int, mz *boolmin.Minimizer) boolmin.Cover {
	if n <= 14 && len(on) > 0 {
		return mz.Minimize(on, boolmin.DontCares(on, off, n), n)
	}
	return boolmin.MinimizeOnOff(on, off, n)
}

// runWorkers fans f over n indexes across w goroutines, each owning a pooled
// minimizer. Results keyed by index stay deterministic however the indexes
// are claimed. A panicking worker stops the others and the panic surfaces as
// budget.ErrInternal with the captured stack; budget cancellation is polled
// once per index and aborts the same way.
func runWorkers(w, n int, bgt *budget.Budget, sp *obs.Span, f func(mz *boolmin.Minimizer, i int)) error {
	if w > n {
		w = n
	}
	checks := sp.Registry().Counter("logic.budget_checks")
	var next atomic.Int64
	var stop atomic.Bool
	errs := make([]error, w)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			wsp := sp.ChildLane("worker:"+strconv.Itoa(k+1), k+1)
			defer wsp.End()
			defer func() {
				if r := recover(); r != nil {
					errs[k] = budget.Internal(r, debug.Stack())
					stop.Store(true)
				}
			}()
			var mz boolmin.Minimizer
			for {
				if stop.Load() {
					return
				}
				checks.Inc()
				if err := bgt.Check("logic.worker"); err != nil {
					errs[k] = err
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(&mz, i)
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
