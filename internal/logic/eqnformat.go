package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/boolmin"
	"repro/internal/stg"
)

// Textual netlist interchange format — the round-trippable form of
// Equations():
//
//	# VME read controller
//	.inputs DSr LDTACK
//	.outputs DTACK LDS D
//	.internal csc0
//	D = LDTACK csc0
//	LDS = D + csc0
//	DTACK = D
//	csc0 = C(set: DSr LDTACK', reset: DSr' LDTACK)
//
// Expressions are sums of products; a trailing apostrophe negates a literal.
// Latches are written C(set: ..., reset: ...) or RS(set: ..., reset: ...);
// mutex grant halves as MUTEX(...). Constant functions are "0" and "1".

// WriteEquations emits the netlist in the textual format.
func (nl *Netlist) WriteEquations(w io.Writer) error {
	var b strings.Builder
	if nl.Name != "" {
		fmt.Fprintf(&b, "# %s\n", nl.Name)
	}
	emit := func(kw string, kind stg.Kind) {
		var names []string
		for i, s := range nl.Signals {
			if nl.Kinds[i] == kind {
				names = append(names, s)
			}
		}
		if len(names) > 0 {
			fmt.Fprintf(&b, "%s %s\n", kw, strings.Join(names, " "))
		}
	}
	emit(".inputs", stg.Input)
	emit(".outputs", stg.Output)
	emit(".internal", stg.Internal)
	b.WriteString(nl.Equations())
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// ParseEquations reads a netlist in the textual format.
func ParseEquations(r io.Reader) (*Netlist, error) {
	nl := &Netlist{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawGate struct {
		output string
		rhs    string
		line   int
	}
	var gates []rawGate
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".inputs":
			for _, n := range fields[1:] {
				nl.AddSignal(n, stg.Input)
			}
		case ".outputs":
			for _, n := range fields[1:] {
				nl.AddSignal(n, stg.Output)
			}
		case ".internal":
			for _, n := range fields[1:] {
				nl.AddSignal(n, stg.Internal)
			}
		default:
			eq := strings.SplitN(line, "=", 2)
			if len(eq) != 2 {
				return nil, fmt.Errorf("logic: line %d: expected NAME = EXPR", lineNo)
			}
			gates = append(gates, rawGate{
				output: strings.TrimSpace(eq[0]),
				rhs:    strings.TrimSpace(eq[1]),
				line:   lineNo,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := len(nl.Signals)
	for _, rg := range gates {
		out := nl.SignalIndex(rg.output)
		if out < 0 {
			return nil, fmt.Errorf("logic: line %d: undeclared signal %q", rg.line, rg.output)
		}
		gate, err := parseRHS(nl, rg.rhs, out, n)
		if err != nil {
			return nil, fmt.Errorf("logic: line %d: %w", rg.line, err)
		}
		nl.Gates = append(nl.Gates, gate)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func parseRHS(nl *Netlist, rhs string, out, n int) (Gate, error) {
	latch := func(kind GateKind, body string) (Gate, error) {
		// body: "set: EXPR, reset: EXPR"
		parts := splitTop(body, ',')
		if len(parts) != 2 {
			return Gate{}, fmt.Errorf("latch needs set and reset parts")
		}
		var set, reset boolmin.Cover
		for _, p := range parts {
			kv := strings.SplitN(p, ":", 2)
			if len(kv) != 2 {
				return Gate{}, fmt.Errorf("latch part %q needs a label", p)
			}
			cv, err := parseSOP(nl, strings.TrimSpace(kv[1]), n)
			if err != nil {
				return Gate{}, err
			}
			switch strings.TrimSpace(kv[0]) {
			case "set":
				set = cv
			case "reset":
				reset = cv
			default:
				return Gate{}, fmt.Errorf("unknown latch part %q", kv[0])
			}
		}
		return Gate{Kind: kind, Output: out, Set: set, Reset: reset}, nil
	}
	switch {
	case strings.HasPrefix(rhs, "C(") && strings.HasSuffix(rhs, ")"):
		return latch(CElem, rhs[2:len(rhs)-1])
	case strings.HasPrefix(rhs, "RS(") && strings.HasSuffix(rhs, ")"):
		return latch(RSLatch, rhs[3:len(rhs)-1])
	case strings.HasPrefix(rhs, "MUTEX(") && strings.HasSuffix(rhs, ")"):
		cv, err := parseSOP(nl, rhs[6:len(rhs)-1], n)
		if err != nil {
			return Gate{}, err
		}
		return Gate{Kind: MutexHalf, Output: out, F: cv}, nil
	default:
		cv, err := parseSOP(nl, rhs, n)
		if err != nil {
			return Gate{}, err
		}
		return Gate{Kind: Comb, Output: out, F: cv}, nil
	}
}

// splitTop splits on sep outside parentheses.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// parseSOP parses "a b' + c" into a cover; "0" and "1" are constants.
func parseSOP(nl *Netlist, s string, n int) (boolmin.Cover, error) {
	s = strings.TrimSpace(s)
	cv := boolmin.Cover{N: n}
	if s == "0" {
		return cv, nil
	}
	if s == "1" {
		cv.Cubes = []boolmin.Cube{boolmin.FullCube()}
		return cv, nil
	}
	for _, term := range strings.Split(s, "+") {
		cube := boolmin.FullCube()
		lits := strings.Fields(strings.TrimSpace(term))
		if len(lits) == 0 {
			return cv, fmt.Errorf("empty product term in %q", s)
		}
		for _, lit := range lits {
			pos := true
			name := lit
			if strings.HasSuffix(name, "'") {
				pos = false
				name = name[:len(name)-1]
			}
			v := nl.SignalIndex(name)
			if v < 0 {
				return cv, fmt.Errorf("undeclared signal %q", name)
			}
			cube = cube.WithLiteral(v, pos)
		}
		cv.Cubes = append(cv.Cubes, cube)
	}
	return cv, nil
}
