package logic

import (
	"fmt"

	"repro/internal/boolmin"
	"repro/internal/stg"
	"repro/internal/ts"
)

// Style selects the target architecture of synthesis (Section 3.2/3.4 and
// Figure 8).
type Style int

const (
	// ComplexGate implements each next-state function as one atomic complex
	// gate with feedback ("any circuit implementing the next-state function
	// of each signal with only one atomic complex gate is speed
	// independent").
	ComplexGate Style = iota
	// GeneralizedC implements each signal as a generalized C-element with
	// separate set and reset networks (monotonous cover architecture,
	// Figure 8a).
	GeneralizedC
	// StandardC implements each signal with a reset-dominant RS latch plus
	// set/reset networks (Figure 8b).
	StandardC
)

func (s Style) String() string {
	switch s {
	case ComplexGate:
		return "complex-gate"
	case GeneralizedC:
		return "gC"
	case StandardC:
		return "rs-latch"
	}
	return "?"
}

// Synthesize derives a netlist implementing every non-input signal of the
// state graph in the chosen architecture. The SG must satisfy CSC; a
// *CSCError is returned otherwise.
func Synthesize(g *ts.SG, style Style) (*Netlist, error) {
	nl := &Netlist{Name: g.Name}
	for _, s := range g.Signals {
		nl.AddSignal(s.Name, s.Kind)
	}
	for sig, s := range g.Signals {
		if s.Kind != stg.Output && s.Kind != stg.Internal {
			continue
		}
		gate, err := synthesizeSignal(g, sig, style)
		if err != nil {
			return nil, err
		}
		nl.Gates = append(nl.Gates, gate)
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("logic: synthesized netlist invalid: %w", err)
	}
	return nl, nil
}

func synthesizeSignal(g *ts.SG, sig int, style Style) (Gate, error) {
	if style == ComplexGate {
		f, err := Derive(g, sig)
		if err != nil {
			return Gate{}, err
		}
		return Gate{Kind: Comb, Output: sig, F: f.Cover}, nil
	}
	set, reset, err := SetResetCovers(g, sig)
	if err != nil {
		return Gate{}, err
	}
	kind := CElem
	if style == StandardC {
		kind = RSLatch
	}
	return Gate{Kind: kind, Output: sig, Set: set, Reset: reset}, nil
}

// SetResetCovers derives the set and reset networks of signal sig:
//
//	set:   on = ER(z+) codes, off = ER(z-) ∪ QR(z-) codes, dc = QR(z+) ∪ unreachable
//	reset: on = ER(z-) codes, off = ER(z+) ∪ QR(z+) codes, dc = QR(z-) ∪ unreachable
//
// This is the monotonous-cover discipline: the set network may stay asserted
// through the quiescent-high region but must be off wherever the signal is
// low or falling.
func SetResetCovers(g *ts.SG, sig int) (set, reset boolmin.Cover, err error) {
	n := len(g.Signals)
	// Classify codes by the strongest region among their states. Codes are
	// kept in first-seen state order so the minimizer sees a deterministic
	// minterm order (and the same order the shared-extraction path emits).
	type codeInfo struct {
		code                             ts.Code
		erPlus, erMinus, qrPlus, qrMinus bool
	}
	byCode := map[ts.Code]int{}
	var infos []codeInfo
	for s := range g.States {
		c := g.States[s].Code
		i, ok := byCode[c]
		if !ok {
			i = len(infos)
			byCode[c] = i
			infos = append(infos, codeInfo{code: c})
		}
		ci := &infos[i]
		switch RegionOf(g, s, sig) {
		case ERPlus:
			ci.erPlus = true
		case ERMinus:
			ci.erMinus = true
		case QRPlus:
			ci.qrPlus = true
		case QRMinus:
			ci.qrMinus = true
		}
	}
	var setOn, setOff, resetOn, resetOff []uint64
	for _, ci := range infos {
		c := ci.code
		m := uint64(c)
		if ci.erPlus && (ci.erMinus || ci.qrMinus) || ci.erMinus && ci.qrPlus {
			return set, reset, &CSCError{Signal: g.Signals[sig].Name, Code: c, N: n}
		}
		switch {
		case ci.erPlus:
			setOn = append(setOn, m)
			resetOff = append(resetOff, m)
		case ci.erMinus:
			resetOn = append(resetOn, m)
			setOff = append(setOff, m)
		case ci.qrPlus:
			resetOff = append(resetOff, m)
			// set is don't-care in QR+.
		case ci.qrMinus:
			setOff = append(setOff, m)
			// reset is don't-care in QR-.
		}
	}
	set = boolmin.MinimizeOnOff(setOn, setOff, n)
	reset = boolmin.MinimizeOnOff(resetOn, resetOff, n)
	return set, reset, nil
}

// EquationsFor is a convenience: full complex-gate synthesis returning the
// printable equations (the Section 3.2 result format).
func EquationsFor(g *ts.SG) (string, error) {
	nl, err := Synthesize(g, ComplexGate)
	if err != nil {
		return "", err
	}
	return nl.Equations(), nil
}
