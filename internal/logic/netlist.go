package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/boolmin"
	"repro/internal/stg"
)

// GateKind selects the evaluation semantics of a gate.
type GateKind int

const (
	// Comb is a combinational (atomic complex) gate: out = F(v).
	Comb GateKind = iota
	// CElem is a generalized C-element: out rises when Set(v), falls when
	// Reset(v), holds otherwise. Set and Reset must never be true together
	// in reachable states (checked by the verifier).
	CElem
	// RSLatch is a reset-dominant set/reset latch: Reset wins when both
	// networks are active (the Figure 8b architecture).
	RSLatch
	// MutexHalf is one grant output of a mutual-exclusion element
	// (Section 1.5: non-persistent choices "cannot be implemented without
	// hazards unless special mutual exclusion elements (arbiters) are
	// used"). It evaluates like a combinational gate — typically
	// g1 = r1 ∧ ¬g2 — but the speed-independence verifier exempts it from
	// the semimodularity check: losing an arbitration race is legal for a
	// mutex, and metastability is resolved internally by the element.
	MutexHalf
)

func (k GateKind) String() string {
	switch k {
	case Comb:
		return "comb"
	case CElem:
		return "C"
	case RSLatch:
		return "RS"
	case MutexHalf:
		return "mutex"
	}
	return "?"
}

// Gate drives one signal of a netlist. Functions are covers over the
// netlist's signal space.
type Gate struct {
	Kind   GateKind
	Output int           // signal index
	F      boolmin.Cover // Comb only
	Set    boolmin.Cover // CElem/RSLatch
	Reset  boolmin.Cover // CElem/RSLatch
}

// Netlist is a gate-level circuit. Signals lists every wire; the first
// signals typically mirror the specification's signals (inputs driven by the
// environment, outputs/internals driven by gates), and decomposition may add
// wires that exist only in the implementation (e.g. map0 in Figure 9).
type Netlist struct {
	Name    string
	Signals []string
	Kinds   []stg.Kind // Input signals have no gate; all others need one
	Gates   []Gate
}

// SignalIndex returns the index of the named signal, or -1.
func (nl *Netlist) SignalIndex(name string) int {
	for i, s := range nl.Signals {
		if s == name {
			return i
		}
	}
	return -1
}

// AddSignal appends a wire and returns its index. Duplicate names panic:
// netlists are built from validated state graphs whose signal names are
// unique, so a collision is a construction bug.
func (nl *Netlist) AddSignal(name string, kind stg.Kind) int {
	if nl.SignalIndex(name) >= 0 {
		panic(fmt.Sprintf("logic: duplicate netlist signal %q", name))
	}
	nl.Signals = append(nl.Signals, name)
	nl.Kinds = append(nl.Kinds, kind)
	return len(nl.Signals) - 1
}

// GateFor returns the gate driving signal idx, or nil.
func (nl *Netlist) GateFor(idx int) *Gate {
	for i := range nl.Gates {
		if nl.Gates[i].Output == idx {
			return &nl.Gates[i]
		}
	}
	return nil
}

// Next computes the value signal idx is driven towards under input vector v
// (bit i of v = value of signal i). For input signals it returns the current
// value (the environment drives them).
func (nl *Netlist) Next(v uint64, idx int) bool {
	g := nl.GateFor(idx)
	if g == nil {
		return v&(1<<uint(idx)) != 0
	}
	cur := v&(1<<uint(idx)) != 0
	switch g.Kind {
	case Comb, MutexHalf:
		return g.F.Eval(v)
	case CElem:
		set, reset := g.Set.Eval(v), g.Reset.Eval(v)
		switch {
		case set && !reset:
			return true
		case reset && !set:
			return false
		default:
			return cur
		}
	case RSLatch:
		if g.Reset.Eval(v) {
			return false
		}
		if g.Set.Eval(v) {
			return true
		}
		return cur
	}
	return cur
}

// Excited reports whether the gate driving idx wants to switch under v.
func (nl *Netlist) Excited(v uint64, idx int) bool {
	cur := v&(1<<uint(idx)) != 0
	return nl.Next(v, idx) != cur
}

// Validate checks every non-input signal has exactly one driver and every
// gate function stays within the signal space.
func (nl *Netlist) Validate() error {
	drivers := make([]int, len(nl.Signals))
	for _, g := range nl.Gates {
		if g.Output < 0 || g.Output >= len(nl.Signals) {
			return fmt.Errorf("logic: gate drives out-of-range signal %d", g.Output)
		}
		drivers[g.Output]++
		for _, cv := range []boolmin.Cover{g.F, g.Set, g.Reset} {
			if cv.N != 0 && cv.N != len(nl.Signals) {
				return fmt.Errorf("logic: gate for %s has cover over %d variables, want %d",
					nl.Signals[g.Output], cv.N, len(nl.Signals))
			}
		}
	}
	for i, k := range nl.Kinds {
		switch {
		case k == stg.Input && drivers[i] != 0:
			return fmt.Errorf("logic: input %s must not have a driver", nl.Signals[i])
		case k != stg.Input && drivers[i] != 1:
			return fmt.Errorf("logic: signal %s has %d drivers, want 1", nl.Signals[i], drivers[i])
		}
	}
	return nil
}

// MaxFanIn returns the largest gate fan-in. For combinational gates this is
// the support of F; for latch gates the set and reset networks are separate
// stacks, so each counts on its own.
func (nl *Netlist) MaxFanIn() int {
	m := 0
	for _, g := range nl.Gates {
		for _, cv := range []boolmin.Cover{g.F, g.Set, g.Reset} {
			if n := len(cv.Support()); n > m {
				m = n
			}
		}
	}
	return m
}

// LiteralCount is the area estimate: total literals over all gate networks.
func (nl *Netlist) LiteralCount() int {
	n := 0
	for _, g := range nl.Gates {
		n += g.F.Literals() + g.Set.Literals() + g.Reset.Literals()
	}
	return n
}

// Equations renders every gate as a named equation, sorted by output name —
// the printable result of synthesis (Section 3.2).
func (nl *Netlist) Equations() string {
	var lines []string
	for _, g := range nl.Gates {
		name := nl.Signals[g.Output]
		switch g.Kind {
		case Comb:
			lines = append(lines, fmt.Sprintf("%s = %s", name, g.F.Expr(nl.Signals)))
		case CElem:
			lines = append(lines, fmt.Sprintf("%s = C(set: %s, reset: %s)",
				name, g.Set.Expr(nl.Signals), g.Reset.Expr(nl.Signals)))
		case RSLatch:
			lines = append(lines, fmt.Sprintf("%s = RS(set: %s, reset: %s)",
				name, g.Set.Expr(nl.Signals), g.Reset.Expr(nl.Signals)))
		case MutexHalf:
			lines = append(lines, fmt.Sprintf("%s = MUTEX(%s)", name, g.F.Expr(nl.Signals)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// StableVector searches for initial values of gate-driven signals that make
// every gate stable given the fixed values of the base signals in init
// (typically the spec SG's initial code extended with zeros). It tries
// settling by iterated evaluation, then exhaustive search over the extra
// signals beyond nBase. Returns an error when no stable vector exists.
func (nl *Netlist) StableVector(init uint64, nBase int) (uint64, error) {
	stable := func(v uint64) bool {
		for i := range nl.Signals {
			if nl.GateFor(i) != nil && nl.Excited(v, i) {
				return false
			}
		}
		return true
	}
	extra := len(nl.Signals) - nBase
	if extra < 0 {
		return 0, fmt.Errorf("logic: netlist has fewer signals than base")
	}
	for combo := uint64(0); combo < uint64(1)<<uint(extra); combo++ {
		v := init | combo<<uint(nBase)
		// Let extra-only instabilities settle a few rounds before judging:
		// decomposition wires may need to follow their inputs.
		for round := 0; round < len(nl.Signals)+1; round++ {
			changed := false
			for i := nBase; i < len(nl.Signals); i++ {
				if nl.GateFor(i) != nil && nl.Excited(v, i) {
					v ^= 1 << uint(i)
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		if v&((uint64(1)<<uint(nBase))-1) != init&((uint64(1)<<uint(nBase))-1) {
			continue
		}
		if stable(v) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("logic: no stable initial vector extends %b", init)
}
