package logic_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
)

// TestWideDerivationISOP exercises the BDD-ISOP minimization path: a Muller
// pipeline deep enough that the signal count exceeds the Quine–McCluskey
// window. Every derived cover must separate on-set from off-set exactly.
func TestWideDerivationISOP(t *testing.T) {
	g := gen.MullerPipeline(8) // 16 signals -> ISOP path
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := logic.DeriveAll(sg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 8 {
		t.Fatalf("8 output functions, got %d", len(fs))
	}
	for _, f := range fs {
		for _, m := range f.On {
			if !f.Cover.Eval(m) {
				t.Fatalf("%s: on-set minterm uncovered", f.Name)
			}
		}
		for _, m := range f.Off {
			if f.Cover.Eval(m) {
				t.Fatalf("%s: off-set minterm covered", f.Name)
			}
		}
	}
}

// The wide pipeline also synthesizes and verifies end to end (a stress test
// for the composition engine: 2^8 × markings composed states).
func TestWidePipelineSynthesis(t *testing.T) {
	g := gen.MullerPipeline(6)
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.HasCSC() {
		t.Skip("pipeline spec unexpectedly lacks CSC")
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Verify(nl, g, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("pipeline circuit must be SI: %v", res.Violations)
	}
}
