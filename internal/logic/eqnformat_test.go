package logic_test

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/stg"
)

func TestEquationsRoundTrip(t *testing.T) {
	sg := cscSG(t)
	for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
		nl, err := logic.Synthesize(sg, style)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := nl.WriteEquations(&buf); err != nil {
			t.Fatal(err)
		}
		nl2, err := logic.ParseEquations(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("style %v: parse back: %v\n%s", style, err, buf.String())
		}
		// Same behaviour on every vector.
		if len(nl2.Signals) != len(nl.Signals) {
			t.Fatal("signal count changed")
		}
		for v := uint64(0); v < 1<<uint(len(nl.Signals)); v++ {
			for i := range nl.Signals {
				idx2 := nl2.SignalIndex(nl.Signals[i])
				if nl2.GateFor(idx2) == nil {
					continue
				}
				if nl.Next(v, i) != nl2.Next(remap(v, nl, nl2), idx2) {
					t.Fatalf("style %v: behaviour differs at %b for %s", style, v, nl.Signals[i])
				}
			}
		}
	}
}

// remap converts a vector from nl's signal order to nl2's.
func remap(v uint64, nl, nl2 *logic.Netlist) uint64 {
	var out uint64
	for i, name := range nl.Signals {
		if v&(1<<uint(i)) != 0 {
			out |= 1 << uint(nl2.SignalIndex(name))
		}
	}
	return out
}

func TestParseEquationsMutexAndConstants(t *testing.T) {
	src := `
# arbiter
.inputs r1 r2
.outputs g1 g2
.internal aux
g1 = MUTEX(r1 g2')
g2 = MUTEX(r2 g1')
aux = 0
`
	nl, err := logic.ParseEquations(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g1 := nl.GateFor(nl.SignalIndex("g1"))
	if g1 == nil || g1.Kind != logic.MutexHalf {
		t.Fatal("mutex kind lost")
	}
	aux := nl.GateFor(nl.SignalIndex("aux"))
	if aux == nil || len(aux.F.Cubes) != 0 {
		t.Fatal("constant 0 must parse to empty cover")
	}
	one := `
.outputs x
x = 1
`
	nl2, err := logic.ParseEquations(strings.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	if !nl2.Next(0, 0) {
		t.Fatal("constant 1 broken")
	}
}

func TestParseEquationsErrors(t *testing.T) {
	cases := []string{
		".outputs x\nx = y\n",                     // undeclared literal
		".outputs x\ny = x\n",                     // undeclared output
		".outputs x\nx\n",                         // missing '='
		".outputs x\nx = C(set: x)\n",             // latch missing reset
		".outputs x\nx = C(bogus: x, reset: x)\n", // bad label
		".outputs x\n",                            // undriven output
		".outputs x\nx = + \n",                    // empty term
	}
	for i, src := range cases {
		if _, err := logic.ParseEquations(strings.NewReader(src)); err == nil {
			t.Errorf("case %d must fail:\n%s", i, src)
		}
	}
	// An inputs-only netlist is valid: no outputs means no gates needed.
	if _, err := logic.ParseEquations(strings.NewReader(".inputs x\n")); err != nil {
		t.Fatalf("inputs-only netlist must parse: %v", err)
	}
}

func TestParseEquationsKinds(t *testing.T) {
	src := `
.inputs a
.outputs q
q = RS(set: a, reset: a')
`
	nl, err := logic.ParseEquations(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.GateFor(1).Kind != logic.RSLatch {
		t.Fatal("RS kind lost")
	}
	if nl.Kinds[0] != stg.Input {
		t.Fatal("input kind lost")
	}
}
