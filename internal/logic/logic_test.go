package logic_test

import (
	"strings"
	"testing"

	"repro/internal/boolmin"
	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
	"repro/internal/vme"
)

// cscSG builds the Figure 7 state graph: READ cycle with csc0 inserted
// (+ before LDS+, - before D-).
func cscSG(t testing.TB) *ts.SG {
	t.Helper()
	g := vme.ReadSTG()
	g2, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(g2, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestRegionsOfReadCycle(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dsr := sg.SignalIndex("DSr")
	// Initial state: DSr is 0 and excited to rise.
	if r := logic.RegionOf(sg, sg.Initial, dsr); r != logic.ERPlus {
		t.Fatalf("initial region of DSr = %v, want ER+", r)
	}
	if !logic.NextValue(sg, sg.Initial, dsr) {
		t.Fatal("f_DSr(initial) must be 1")
	}
	// Region strings.
	for r, want := range map[logic.Region]string{
		logic.ERPlus: "ER+", logic.QRPlus: "QR+", logic.ERMinus: "ER-", logic.QRMinus: "QR-",
	} {
		if r.String() != want {
			t.Fatalf("region string %v", r)
		}
	}
}

func TestDeriveFailsWithoutCSC(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = logic.DeriveAll(sg)
	if err == nil {
		t.Fatal("derivation must fail on the CSC-conflicting read cycle")
	}
	var cscErr *logic.CSCError
	if !asCSC(err, &cscErr) {
		t.Fatalf("want *CSCError, got %T: %v", err, err)
	}
	if cscErr.Signal != "LDS" && cscErr.Signal != "D" {
		t.Fatalf("conflict signal = %s", cscErr.Signal)
	}
}

func asCSC(err error, target **logic.CSCError) bool {
	if e, ok := err.(*logic.CSCError); ok {
		*target = e
		return true
	}
	return false
}

// TestNextStateTable reproduces the Section 3.2 table: sample values of
// f_LDS on states of the Figure 7 SG.
func TestNextStateTable(t *testing.T) {
	sg := cscSG(t)
	lds := sg.SignalIndex("LDS")
	// Find states by code <DSr,DTACK,LDTACK,LDS,D,csc0> and check f_LDS.
	codeOf := func(s string) ts.Code {
		var c ts.Code
		for i, ch := range s {
			if ch == '1' {
				c = c.Set(i, true)
			}
		}
		return c
	}
	cases := []struct {
		code string
		want bool
	}{
		{"100001", true},  // ER(LDS+): csc0 up, LDS about to rise
		{"101101", true},  // QR(LDS+): LDS high and stable (D rising region)
		{"101100", false}, // ER(LDS-): the second 10110 state, csc0=0
		{"000000", false}, // QR(LDS-): initial state
	}
	for _, tc := range cases {
		found := false
		for s := range sg.States {
			if sg.States[s].Code == codeOf(tc.code) {
				found = true
				if got := logic.NextValue(sg, s, lds); got != tc.want {
					t.Errorf("f_LDS(%s) = %v, want %v", tc.code, got, tc.want)
				}
			}
		}
		if !found {
			t.Errorf("state with code %s not found in Fig 7 SG:\n%s", tc.code, sg.Dump())
		}
	}
}

// TestFig8Equations is the E-EQ acceptance test: the synthesized complex-gate
// functions equal the paper's equations on every reachable code.
func TestFig8Equations(t *testing.T) {
	sg := cscSG(t)
	fs, err := logic.DeriveAll(sg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]logic.Function{}
	for _, f := range fs {
		byName[f.Name] = f
	}
	if len(byName) != 4 {
		t.Fatalf("expected 4 non-input functions, got %d", len(byName))
	}
	names := make([]string, len(sg.Signals))
	for i, s := range sg.Signals {
		names[i] = s.Name
	}
	for _, eq := range vme.PaperReadEquations() {
		f, ok := byName[eq.Signal]
		if !ok {
			t.Fatalf("no derived function for %s", eq.Signal)
		}
		for s := range sg.States {
			code := uint64(sg.States[s].Code)
			env := map[string]bool{}
			for i, n := range names {
				env[n] = code&(1<<uint(i)) != 0
			}
			want := eq.Eval(env)
			if got := f.Cover.Eval(code); got != want {
				t.Fatalf("signal %s differs from paper at code %s: got %v want %v (cover %s)",
					eq.Signal, sg.States[s].Code.String(len(names)), got, want, f.Expr())
			}
		}
	}
	// The flagship equation shapes: DTACK is just D; D is a 2-literal AND.
	if got := byName["DTACK"].Expr(); got != "D" {
		t.Errorf("DTACK = %q, want \"D\"", got)
	}
	if got := byName["D"].Expr(); got != "LDTACK csc0" {
		t.Errorf("D = %q, want \"LDTACK csc0\"", got)
	}
	if got := byName["LDS"].Expr(); got != "D + csc0" {
		t.Errorf("LDS = %q, want \"D + csc0\"", got)
	}
}

func TestSynthesizeComplexGate(t *testing.T) {
	sg := cscSG(t)
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(nl.Gates) != 4 {
		t.Fatalf("gates = %d, want 4", len(nl.Gates))
	}
	eqs := nl.Equations()
	for _, want := range []string{"DTACK = D", "D = LDTACK csc0"} {
		if !strings.Contains(eqs, want) {
			t.Fatalf("equations missing %q:\n%s", want, eqs)
		}
	}
	// The netlist must be stable in the SG's initial state.
	v, err := nl.StableVector(uint64(sg.States[sg.Initial].Code), len(sg.Signals))
	if err != nil {
		t.Fatal(err)
	}
	if v != uint64(sg.States[sg.Initial].Code) {
		t.Fatal("initial code itself must be stable")
	}
}

func TestSynthesizeGC(t *testing.T) {
	sg := cscSG(t)
	nl, err := logic.Synthesize(sg, logic.GeneralizedC)
	if err != nil {
		t.Fatal(err)
	}
	// The csc0 element must be a C-element with set DSr·LDTACK' and reset
	// DSr'·LDTACK (Figure 8a), modulo don't-care choices: check behaviour on
	// reachable codes against the complex-gate function.
	cg, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	for s := range sg.States {
		v := uint64(sg.States[s].Code)
		for i := range sg.Signals {
			if sg.Signals[i].Kind == stg.Input {
				continue
			}
			if nl.Next(v, i) != cg.Next(v, i) {
				t.Fatalf("gC and complex gate disagree on %s at %s",
					sg.Signals[i].Name, sg.States[s].Code.String(len(sg.Signals)))
			}
		}
	}
	eqs := nl.Equations()
	if !strings.Contains(eqs, "C(set:") {
		t.Fatalf("gC equations must use C-elements:\n%s", eqs)
	}
}

func TestSynthesizeRSLatch(t *testing.T) {
	sg := cscSG(t)
	nl, err := logic.Synthesize(sg, logic.StandardC)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nl.Equations(), "RS(set:") {
		t.Fatal("RS style must emit RS latches")
	}
	// Reset dominance: when both networks are active the output resets.
	g := logic.Gate{
		Kind:   logic.RSLatch,
		Output: 0,
		Set:    boolmin.Cover{N: 1, Cubes: []boolmin.Cube{boolmin.FullCube()}},
		Reset:  boolmin.Cover{N: 1, Cubes: []boolmin.Cube{boolmin.FullCube()}},
	}
	nl2 := &logic.Netlist{Signals: []string{"q"}, Kinds: []stg.Kind{stg.Output}, Gates: []logic.Gate{g}}
	if nl2.Next(1, 0) {
		t.Fatal("reset-dominant latch must reset when both active")
	}
}

func TestCElementSemantics(t *testing.T) {
	// Classic 2-input C element: q follows when a==b.
	set := boolmin.Cover{N: 3, Cubes: []boolmin.Cube{
		boolmin.FullCube().WithLiteral(0, true).WithLiteral(1, true)}}
	reset := boolmin.Cover{N: 3, Cubes: []boolmin.Cube{
		boolmin.FullCube().WithLiteral(0, false).WithLiteral(1, false)}}
	nl := &logic.Netlist{
		Signals: []string{"a", "b", "q"},
		Kinds:   []stg.Kind{stg.Input, stg.Input, stg.Output},
		Gates:   []logic.Gate{{Kind: logic.CElem, Output: 2, Set: set, Reset: reset}},
	}
	cases := []struct {
		v    uint64
		next bool
	}{
		{0b000, false}, // a=b=0, q=0: hold 0
		{0b011, true},  // a=b=1: rise
		{0b001, false}, // a=1,b=0,q=0: hold
		{0b101, true},  // a=1,b=0,q=1: hold 1
		{0b100, false}, // a=b=0,q=1: fall
		{0b111, true},  // all 1: hold 1
	}
	for _, tc := range cases {
		if got := nl.Next(tc.v, 2); got != tc.next {
			t.Fatalf("C-element at %03b: next=%v want %v", tc.v, got, tc.next)
		}
	}
}

func TestNetlistValidate(t *testing.T) {
	nl := &logic.Netlist{
		Signals: []string{"a", "q"},
		Kinds:   []stg.Kind{stg.Input, stg.Output},
	}
	if err := nl.Validate(); err == nil {
		t.Fatal("undriven output must fail validation")
	}
	nl.Gates = append(nl.Gates, logic.Gate{Kind: logic.Comb, Output: 1,
		F: boolmin.Cover{N: 2, Cubes: []boolmin.Cube{boolmin.FullCube().WithLiteral(0, true)}}})
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	nl.Gates = append(nl.Gates, logic.Gate{Kind: logic.Comb, Output: 0})
	if err := nl.Validate(); err == nil {
		t.Fatal("driven input must fail validation")
	}
}

func TestExcitationRegions(t *testing.T) {
	sg := cscSG(t)
	d := sg.SignalIndex("D")
	plus := logic.ExcitationRegions(sg, d, stg.Rise)
	minus := logic.ExcitationRegions(sg, d, stg.Fall)
	if len(plus) != 1 || len(minus) != 1 {
		t.Fatalf("D has one ER per direction, got +%d -%d", len(plus), len(minus))
	}
	if len(plus[0]) == 0 {
		t.Fatal("empty ER")
	}
}

func TestEquationsFor(t *testing.T) {
	sg := cscSG(t)
	eqs, err := logic.EquationsFor(sg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eqs, "csc0 = ") {
		t.Fatalf("missing csc0 equation:\n%s", eqs)
	}
}

func TestMaxFanInAndLiterals(t *testing.T) {
	sg := cscSG(t)
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	if nl.MaxFanIn() < 2 || nl.MaxFanIn() > 4 {
		t.Fatalf("read-cycle complex gates have small fan-in, got %d", nl.MaxFanIn())
	}
	if nl.LiteralCount() == 0 {
		t.Fatal("literal count must be positive")
	}
}
