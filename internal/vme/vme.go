// Package vme holds the paper's running example: the VME bus controller
// (Figure 1) serving reads from a device to a bus and writes from the bus
// into the device. It provides the READ-cycle waveform (Figure 2), the
// READ-cycle STG (Figure 3), the READ+WRITE STG with choice (Figure 5), and
// the reference synthesis results of Section 3 used as ground truth by tests
// and benchmarks.
package vme

import "repro/internal/stg"

// SignalOrder is the code order used throughout the paper's figures:
// <DSr, DTACK, LDTACK, LDS, D>.
var SignalOrder = []string{"DSr", "DTACK", "LDTACK", "LDS", "D"}

// ReadWaveform returns the Figure 2 timing diagram of the READ cycle: the
// event sequence and the causality arrows that Figure 3 draws as places.
func ReadWaveform() stg.Waveform {
	return stg.Waveform{
		Name: "vme-read",
		Signals: []stg.Signal{
			{Name: "DSr", Kind: stg.Input},
			{Name: "DTACK", Kind: stg.Output},
			{Name: "LDTACK", Kind: stg.Input},
			{Name: "LDS", Kind: stg.Output},
			{Name: "D", Kind: stg.Output},
		},
		Events: []stg.WaveEvent{
			{Signal: "DSr", Dir: stg.Rise},    // 0
			{Signal: "LDS", Dir: stg.Rise},    // 1
			{Signal: "LDTACK", Dir: stg.Rise}, // 2
			{Signal: "D", Dir: stg.Rise},      // 3
			{Signal: "DTACK", Dir: stg.Rise},  // 4
			{Signal: "DSr", Dir: stg.Fall},    // 5
			{Signal: "D", Dir: stg.Fall},      // 6
			{Signal: "DTACK", Dir: stg.Fall},  // 7
			{Signal: "LDS", Dir: stg.Fall},    // 8
			{Signal: "LDTACK", Dir: stg.Fall}, // 9
		},
		Causality: [][2]int{
			{0, 1}, // DSr+  -> LDS+
			{1, 2}, // LDS+  -> LDTACK+
			{2, 3}, // LDTACK+ -> D+
			{3, 4}, // D+    -> DTACK+
			{4, 5}, // DTACK+ -> DSr-
			{5, 6}, // DSr-  -> D-
			{6, 7}, // D-    -> DTACK-
			{6, 8}, // D-    -> LDS-
			{8, 9}, // LDS-  -> LDTACK-
			{7, 0}, // DTACK- -> DSr+   (token: closes the cycle)
			{9, 1}, // LDTACK- -> LDS+  (token: closes the cycle)
		},
	}
}

// ReadSTG builds the Figure 3 STG for the READ cycle directly (it equals the
// compilation of ReadWaveform; both paths are tested against each other).
func ReadSTG() *stg.STG {
	g, err := stg.FromWaveform(ReadWaveform())
	if err != nil {
		// The waveform is a static fixture from the paper; failing to
		// compile it is a bug in this package, hence the panic.
		panic("vme: ReadSTG construction failed: " + err.Error())
	}
	return g
}

// ReadWriteSTG builds the Figure 5 STG for the READ and WRITE cycles with
// the two choice places (request choice and local-strobe choice) and the two
// merge places joining the return-to-zero phase.
//
// READ branch:  DSr+ -> LDS+/r -> LDTACK+/r -> D+/r -> DTACK+/r -> DSr- -> D-/r
// WRITE branch: DSw+ -> D+/w -> LDS+/w -> LDTACK+/w -> D-/w -> DTACK+/w -> DSw-
// Shared: {D-/r | DSw-} -> LDS- -> LDTACK- -> (choice of next LDS+), and
//
//	{D-/r | DSw-} -> DTACK- -> (choice of next request).
func ReadWriteSTG() *stg.STG {
	g := stg.New("vme-read-write")
	for _, s := range []struct {
		name string
		kind stg.Kind
	}{
		{"DSr", stg.Input}, {"DSw", stg.Input}, {"DTACK", stg.Output},
		{"LDTACK", stg.Input}, {"LDS", stg.Output}, {"D", stg.Output},
	} {
		g.AddSignal(s.name, s.kind)
	}
	n := g.Net

	// Transitions. Suffix /1 instances are created automatically by the
	// duplicate-label machinery.
	dsrP := g.Rise("DSr")
	dswP := g.Rise("DSw")
	ldsPr := g.Rise("LDS")
	ldtPr := g.Rise("LDTACK")
	dPr := g.Rise("D")
	dtkPr := g.Rise("DTACK")
	dsrM := g.Fall("DSr")
	dMr := g.Fall("D")
	dPw := g.Rise("D")
	ldsPw := g.Rise("LDS")
	ldtPw := g.Rise("LDTACK")
	dMw := g.Fall("D")
	dtkPw := g.Rise("DTACK")
	dswM := g.Fall("DSw")
	ldsM := g.Fall("LDS")
	ldtM := g.Fall("LDTACK")
	dtkM := g.Fall("DTACK")

	// Choice place p0: the environment chooses read or write.
	p0 := n.AddPlace("p0", 1)
	n.ArcPT(p0, dsrP)
	n.ArcPT(p0, dswP)
	n.ArcTP(dtkM, p0)

	// Choice place p2: which LDS+ instance fires next (consistent with p0's
	// choice because the branch also needs the request token).
	p2 := n.AddPlace("p2", 1)
	n.ArcPT(p2, ldsPr)
	n.ArcPT(p2, ldsPw)
	n.ArcTP(ldtM, p2)

	// READ branch chain.
	n.Chain(dsrP, ldsPr, ldtPr, dPr, dtkPr, dsrM, dMr)
	// WRITE branch chain.
	n.Chain(dswP, dPw, ldsPw, ldtPw, dMw, dtkPw, dswM)

	// Merge place p1 into LDS-, merge place p3 into DTACK-.
	p1 := n.AddPlace("p1", 0)
	n.ArcTP(dMr, p1)
	n.ArcTP(dswM, p1)
	n.ArcPT(p1, ldsM)
	p3 := n.AddPlace("p3", 0)
	n.ArcTP(dMr, p3)
	n.ArcTP(dswM, p3)
	n.ArcPT(p3, dtkM)

	// Shared return-to-zero.
	n.Chain(ldsM, ldtM)

	if err := g.Validate(); err != nil {
		// Static paper fixture, same contract as ReadSTG: invalid means
		// this package is broken.
		panic("vme: ReadWriteSTG construction failed: " + err.Error())
	}
	return g
}

// PaperEquations are the Section 3.2 reference next-state equations for the
// READ cycle after csc0 insertion, as Boolean formulas over
// (DSr, DTACK, LDTACK, LDS, D, csc0):
//
//	D     = LDTACK * csc0
//	LDS   = D + csc0
//	DTACK = D
//	csc0  = DSr * (csc0 + !LDTACK)
//
// Tests compare synthesized functions against these on the reachable
// care-set (don't-cares are free).
type PaperEquation struct {
	Signal string
	Eval   func(v map[string]bool) bool
}

// PaperReadEquations returns the reference equations keyed by signal name.
func PaperReadEquations() []PaperEquation {
	return []PaperEquation{
		{"D", func(v map[string]bool) bool { return v["LDTACK"] && v["csc0"] }},
		{"LDS", func(v map[string]bool) bool { return v["D"] || v["csc0"] }},
		{"DTACK", func(v map[string]bool) bool { return v["D"] }},
		{"csc0", func(v map[string]bool) bool { return v["DSr"] && (v["csc0"] || !v["LDTACK"]) }},
	}
}
