package vme_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stg"
	"repro/internal/vme"
)

func TestReadSTGMatchesWaveform(t *testing.T) {
	g, err := stg.FromWaveform(vme.ReadWaveform())
	if err != nil {
		t.Fatal(err)
	}
	direct := vme.ReadSTG()
	var a, b bytes.Buffer
	if err := g.WriteG(&a); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteG(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("waveform compilation and direct construction diverge:\n%s\nvs\n%s",
			a.String(), b.String())
	}
}

func TestSignalOrderMatchesPaper(t *testing.T) {
	g := vme.ReadSTG()
	for i, name := range vme.SignalOrder {
		if g.Signals[i].Name != name {
			t.Fatalf("signal %d is %s, want %s (paper code order)", i, g.Signals[i].Name, name)
		}
	}
	// Kinds: DSr and LDTACK are environment-driven.
	for _, in := range []string{"DSr", "LDTACK"} {
		if g.Signals[g.SignalIndex(in)].Kind != stg.Input {
			t.Fatalf("%s must be an input", in)
		}
	}
	for _, out := range []string{"DTACK", "LDS", "D"} {
		if g.Signals[g.SignalIndex(out)].Kind != stg.Output {
			t.Fatalf("%s must be an output", out)
		}
	}
}

func TestReadWriteValid(t *testing.T) {
	g := vme.ReadWriteSTG()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Two instances of the shared handshake transitions.
	for _, name := range []string{"LDS+", "D+", "LDTACK+", "DTACK+", "D-"} {
		if g.Net.TransitionIndex(name) < 0 || g.Net.TransitionIndex(name+"/1") < 0 {
			t.Fatalf("expected two instances of %s", name)
		}
	}
	if !strings.Contains(g.String(), "vme-read-write") {
		t.Fatal("name lost")
	}
}

func TestPaperEquationsSelfConsistent(t *testing.T) {
	// The reference equations must at least be stable in the all-zero state
	// and drive csc0 after DSr rises.
	eqs := vme.PaperReadEquations()
	zero := map[string]bool{}
	for _, e := range eqs {
		if e.Eval(zero) {
			t.Fatalf("%s must be low in the all-zero state", e.Signal)
		}
	}
	afterDSr := map[string]bool{"DSr": true}
	for _, e := range eqs {
		if e.Signal == "csc0" && !e.Eval(afterDSr) {
			t.Fatal("csc0 must be excited after DSr+")
		}
	}
}
