package encoding

import (
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
)

// Options configure the CSC solvers.
type Options struct {
	// Workers selects the memoized parallel candidate evaluator when > 1:
	// the (rise, fall) insertion pairs of every ranking round are fanned out
	// across a worker pool, and a canonical-signature memo lets symmetric
	// insertion points (isomorphic candidate STGs) share one evaluation. The
	// ranking key stays (conflicts, literals, enumeration order), so the
	// solution list is bit-identical to the sequential evaluator's at any
	// worker count. 0 or 1 runs the sequential reference evaluator.
	Workers int
	// Budget adds cancellation between candidate evaluations; nil is
	// unlimited. Each candidate builds a full state graph, so the check runs
	// once per candidate rather than amortized.
	Budget *budget.Budget
	// Obs is the parent observability span: the solve records an
	// "engine:encoding" child span, per-worker spans, and the encoding.*
	// counters (candidates, memo hits/misses, budget checks) into its
	// registry. Per-candidate state-graph builds stay uninstrumented — a
	// solve evaluates thousands of them. nil disables observability.
	Obs *obs.Span
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// evalCtx carries the per-solve evaluation state: the worker count, the
// sequential path's reusable reachability arena, the solve budget and the
// observability handles (engine span plus the encoding.* counters, all nil
// no-ops when observability is off).
type evalCtx struct {
	workers int
	arena   *reach.Arena
	bgt     *budget.Budget

	sp         *obs.Span
	candidates *obs.Counter
	memoHits   *obs.Counter
	memoMisses *obs.Counter
	checks     *obs.Counter
}

func newEvalCtx(opts Options) *evalCtx {
	sp := opts.Obs.Child("engine:encoding")
	reg := sp.Registry()
	return &evalCtx{
		workers:    opts.workers(),
		arena:      reach.NewArena(),
		bgt:        opts.Budget,
		sp:         sp,
		candidates: reg.Counter("encoding.candidates"),
		memoHits:   reg.Counter("encoding.memo_hits"),
		memoMisses: reg.Counter("encoding.memo_misses"),
		checks:     reg.Counter("encoding.budget_checks"),
	}
}

// finish closes the engine span with the registry's evaluation totals.
func (c *evalCtx) finish(err error) {
	if c.sp == nil {
		return
	}
	c.sp.Attr("candidates", strconv.FormatInt(c.candidates.Value(), 10))
	c.sp.Attr("memo_hits", strconv.FormatInt(c.memoHits.Value(), 10))
	if err != nil {
		c.sp.Attr("error", err.Error())
	}
	c.sp.End()
}

func (c *evalCtx) buildSG(g *stg.STG) (*ts.SG, error) {
	sg, err := reach.BuildSG(g, reach.Options{Arena: c.arena, Budget: c.bgt})
	if err != nil {
		return nil, err
	}
	return ts.ContractDummies(sg)
}

// candMetrics is the memoizable outcome of evaluating one candidate STG.
// Isomorphic candidates have identical metrics: conflict counts, the
// implementability verdict and literal costs are all graph-level properties.
type candMetrics struct {
	ok        bool // property-preserving and reduces the conflict count
	conflicts int
	lits      int
}

// evaluateCandidate scores one inserted-signal candidate exactly as the
// historical sequential loop did: build the SG (candidates violating
// consistency or safety fail here), require persistency and deadlock
// freedom, require conflict-count progress, and cost the solved candidates
// by complex-gate literals. Unsolved survivors carry unsolvedLiteralCost.
func evaluateCandidate(cand *stg.STG, baseConflicts int, ar *reach.Arena) (*ts.SG, candMetrics) {
	sg, err := reach.BuildSG(cand, reach.Options{Arena: ar})
	if err != nil {
		return nil, candMetrics{}
	}
	if sg, err = ts.ContractDummies(sg); err != nil {
		return nil, candMetrics{}
	}
	imp := sg.CheckImplementability()
	if !imp.Persistent || !imp.DeadlockFree {
		return nil, candMetrics{}
	}
	conflicts := len(sg.CSCConflicts())
	if conflicts >= baseConflicts {
		return nil, candMetrics{}
	}
	lits := unsolvedLiteralCost
	if conflicts == 0 {
		l, err := complexLiterals(sg)
		if err != nil {
			return nil, candMetrics{}
		}
		lits = l
	}
	return sg, candMetrics{ok: true, conflicts: conflicts, lits: lits}
}

// insPair is one enumerated (rise, fall) candidate with its deterministic
// enumeration index — the ranking tie-breaker that makes the chosen solution
// independent of evaluation order.
type insPair struct {
	r, f  Point
	order int
}

type scored struct {
	sol *Solution
	key [3]int
}

// memoEntry is a singleflight slot: the first worker to claim a canonical
// signature computes the metrics and closes done; later workers with an
// isomorphic candidate wait and reuse them.
type memoEntry struct {
	done chan struct{}
	m    candMetrics
}

// evalPairsParallel fans the candidate evaluations across workers goroutines,
// each with its own reachability arena. Results land in a slot per pair, so
// assembly order — and with it the ranking — is the enumeration order, not
// the completion order. Memo-hit survivors come back without an SG; the
// caller rebuilds the few that survive the ranked cut.
//
// The pool is panic-safe: a panicking worker closes any memo entry it owns
// (so no sibling blocks forever on a singleflight slot), stops the others,
// and surfaces as budget.ErrInternal with the captured stack. Budget
// cancellation is polled once per candidate and aborts the same way.
func evalPairsParallel(g *stg.STG, name string, pairs []insPair, baseConflicts int, ctx *evalCtx) ([]scored, error) {
	workers, bgt := ctx.workers, ctx.bgt
	type result struct {
		cand *stg.STG
		sg   *ts.SG
		m    candMetrics
	}
	results := make([]result, len(pairs))
	memo := make(map[string]*memoEntry)
	var mu sync.Mutex
	var next atomic.Int64
	var stop atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsp := ctx.sp.ChildLane("worker:"+strconv.Itoa(w+1), w+1)
			defer wsp.End()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = budget.Internal(r, debug.Stack())
					stop.Store(true)
				}
			}()
			ar := reach.NewArena()
			for {
				if stop.Load() {
					return
				}
				ctx.checks.Inc()
				if err := bgt.Check("encoding.eval"); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				p := pairs[i]
				cand, err := InsertSignalAt(g, name, p.r, p.f)
				if err != nil {
					continue
				}
				sig := canonicalSignature(cand)
				mu.Lock()
				e, hit := memo[sig]
				if !hit {
					e = &memoEntry{done: make(chan struct{})}
					memo[sig] = e
				}
				mu.Unlock()
				if hit {
					ctx.memoHits.Inc()
					<-e.done
					if e.m.ok {
						results[i] = result{cand: cand, m: e.m}
					}
					continue
				}
				ctx.memoMisses.Inc()
				ctx.candidates.Inc()
				// The deferred close keeps the singleflight slot from
				// wedging siblings if the evaluation panics; the zero
				// metrics they then read mark the candidate failed.
				func() {
					defer close(e.done)
					sg, m := evaluateCandidate(cand, baseConflicts, ar)
					e.m = m
					if m.ok {
						results[i] = result{cand: cand, sg: sg, m: m}
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []scored
	for i, res := range results {
		if !res.m.ok {
			continue
		}
		p := pairs[i]
		all = append(all, scored{
			sol: &Solution{
				STG:         res.cand,
				SG:          res.sg, // nil on memo hits; rebuilt after ranking
				Description: describeInsertion(g, name, p.r, p.f),
				Literals:    res.m.lits,
			},
			key: [3]int{res.m.conflicts, res.m.lits, p.order},
		})
	}
	return all, nil
}

// canonicalSignature renders a name-independent structural signature of an
// STG: transitions are identified by their (unique) names and every place by
// "sorted preset > sorted postset > tokens", with the place descriptors
// themselves sorted. Generated place names are deliberately excluded —
// symmetric insertion points ("after t" vs "before u" across an unmarked
// chain t -> p -> u) build isomorphic nets differing only in those names,
// and the memo must identify exactly such pairs. Two STGs over the same
// signal set with equal signatures are isomorphic: transition names fix the
// transition bijection and the descriptor multiset fixes the places.
func canonicalSignature(g *stg.STG) string {
	net := g.Net
	descs := make([]string, len(net.Places))
	var sb strings.Builder
	var names []string
	appendNames := func(ts []int) {
		names = names[:0]
		for _, t := range ts {
			names = append(names, net.Transitions[t].Name)
		}
		sort.Strings(names)
		for _, nm := range names {
			sb.WriteString(nm)
			sb.WriteByte(',')
		}
	}
	for i := range net.Places {
		p := &net.Places[i]
		sb.Reset()
		appendNames(p.Pre)
		sb.WriteByte('>')
		appendNames(p.Post)
		sb.WriteByte('>')
		sb.WriteString(strconv.Itoa(p.Initial))
		descs[i] = sb.String()
	}
	sort.Strings(descs)
	return strings.Join(descs, ";")
}
