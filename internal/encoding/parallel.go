package encoding

import (
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/budget"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
)

// Options configure the CSC solvers.
type Options struct {
	// Workers selects the memoized parallel candidate evaluator when > 1:
	// the (rise, fall) insertion pairs of every ranking round are fanned out
	// across a worker pool, and a canonical-signature memo lets symmetric
	// insertion points (isomorphic candidate STGs) share one evaluation. The
	// ranking key stays (conflicts, literals, enumeration order), so the
	// solution list is bit-identical to the sequential evaluator's at any
	// worker count. 0 or 1 runs the sequential reference evaluator.
	Workers int
	// Budget adds cancellation between candidate evaluations; nil is
	// unlimited. Each candidate builds a full state graph, so the check runs
	// once per candidate rather than amortized.
	Budget *budget.Budget
}

func (o Options) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	return 1
}

// evalCtx carries the per-solve evaluation state: the worker count, the
// sequential path's reusable reachability arena, and the solve budget.
type evalCtx struct {
	workers int
	arena   *reach.Arena
	bgt     *budget.Budget
}

func newEvalCtx(opts Options) *evalCtx {
	return &evalCtx{workers: opts.workers(), arena: reach.NewArena(), bgt: opts.Budget}
}

func (c *evalCtx) buildSG(g *stg.STG) (*ts.SG, error) {
	sg, err := reach.BuildSG(g, reach.Options{Arena: c.arena, Budget: c.bgt})
	if err != nil {
		return nil, err
	}
	return ts.ContractDummies(sg)
}

// candMetrics is the memoizable outcome of evaluating one candidate STG.
// Isomorphic candidates have identical metrics: conflict counts, the
// implementability verdict and literal costs are all graph-level properties.
type candMetrics struct {
	ok        bool // property-preserving and reduces the conflict count
	conflicts int
	lits      int
}

// evaluateCandidate scores one inserted-signal candidate exactly as the
// historical sequential loop did: build the SG (candidates violating
// consistency or safety fail here), require persistency and deadlock
// freedom, require conflict-count progress, and cost the solved candidates
// by complex-gate literals. Unsolved survivors carry unsolvedLiteralCost.
func evaluateCandidate(cand *stg.STG, baseConflicts int, ar *reach.Arena) (*ts.SG, candMetrics) {
	sg, err := reach.BuildSG(cand, reach.Options{Arena: ar})
	if err != nil {
		return nil, candMetrics{}
	}
	if sg, err = ts.ContractDummies(sg); err != nil {
		return nil, candMetrics{}
	}
	imp := sg.CheckImplementability()
	if !imp.Persistent || !imp.DeadlockFree {
		return nil, candMetrics{}
	}
	conflicts := len(sg.CSCConflicts())
	if conflicts >= baseConflicts {
		return nil, candMetrics{}
	}
	lits := unsolvedLiteralCost
	if conflicts == 0 {
		l, err := complexLiterals(sg)
		if err != nil {
			return nil, candMetrics{}
		}
		lits = l
	}
	return sg, candMetrics{ok: true, conflicts: conflicts, lits: lits}
}

// insPair is one enumerated (rise, fall) candidate with its deterministic
// enumeration index — the ranking tie-breaker that makes the chosen solution
// independent of evaluation order.
type insPair struct {
	r, f  Point
	order int
}

type scored struct {
	sol *Solution
	key [3]int
}

// memoEntry is a singleflight slot: the first worker to claim a canonical
// signature computes the metrics and closes done; later workers with an
// isomorphic candidate wait and reuse them.
type memoEntry struct {
	done chan struct{}
	m    candMetrics
}

// evalPairsParallel fans the candidate evaluations across workers goroutines,
// each with its own reachability arena. Results land in a slot per pair, so
// assembly order — and with it the ranking — is the enumeration order, not
// the completion order. Memo-hit survivors come back without an SG; the
// caller rebuilds the few that survive the ranked cut.
//
// The pool is panic-safe: a panicking worker closes any memo entry it owns
// (so no sibling blocks forever on a singleflight slot), stops the others,
// and surfaces as budget.ErrInternal with the captured stack. Budget
// cancellation is polled once per candidate and aborts the same way.
func evalPairsParallel(g *stg.STG, name string, pairs []insPair, baseConflicts, workers int, bgt *budget.Budget) ([]scored, error) {
	type result struct {
		cand *stg.STG
		sg   *ts.SG
		m    candMetrics
	}
	results := make([]result, len(pairs))
	memo := make(map[string]*memoEntry)
	var mu sync.Mutex
	var next atomic.Int64
	var stop atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = budget.Internal(r, debug.Stack())
					stop.Store(true)
				}
			}()
			ar := reach.NewArena()
			for {
				if stop.Load() {
					return
				}
				if err := bgt.Check("encoding.eval"); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				p := pairs[i]
				cand, err := InsertSignalAt(g, name, p.r, p.f)
				if err != nil {
					continue
				}
				sig := canonicalSignature(cand)
				mu.Lock()
				e, hit := memo[sig]
				if !hit {
					e = &memoEntry{done: make(chan struct{})}
					memo[sig] = e
				}
				mu.Unlock()
				if hit {
					<-e.done
					if e.m.ok {
						results[i] = result{cand: cand, m: e.m}
					}
					continue
				}
				// The deferred close keeps the singleflight slot from
				// wedging siblings if the evaluation panics; the zero
				// metrics they then read mark the candidate failed.
				func() {
					defer close(e.done)
					sg, m := evaluateCandidate(cand, baseConflicts, ar)
					e.m = m
					if m.ok {
						results[i] = result{cand: cand, sg: sg, m: m}
					}
				}()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []scored
	for i, res := range results {
		if !res.m.ok {
			continue
		}
		p := pairs[i]
		all = append(all, scored{
			sol: &Solution{
				STG:         res.cand,
				SG:          res.sg, // nil on memo hits; rebuilt after ranking
				Description: describeInsertion(g, name, p.r, p.f),
				Literals:    res.m.lits,
			},
			key: [3]int{res.m.conflicts, res.m.lits, p.order},
		})
	}
	return all, nil
}

// canonicalSignature renders a name-independent structural signature of an
// STG: transitions are identified by their (unique) names and every place by
// "sorted preset > sorted postset > tokens", with the place descriptors
// themselves sorted. Generated place names are deliberately excluded —
// symmetric insertion points ("after t" vs "before u" across an unmarked
// chain t -> p -> u) build isomorphic nets differing only in those names,
// and the memo must identify exactly such pairs. Two STGs over the same
// signal set with equal signatures are isomorphic: transition names fix the
// transition bijection and the descriptor multiset fixes the places.
func canonicalSignature(g *stg.STG) string {
	net := g.Net
	descs := make([]string, len(net.Places))
	var sb strings.Builder
	var names []string
	appendNames := func(ts []int) {
		names = names[:0]
		for _, t := range ts {
			names = append(names, net.Transitions[t].Name)
		}
		sort.Strings(names)
		for _, nm := range names {
			sb.WriteString(nm)
			sb.WriteByte(',')
		}
	}
	for i := range net.Places {
		p := &net.Places[i]
		sb.Reset()
		appendNames(p.Pre)
		sb.WriteByte('>')
		appendNames(p.Post)
		sb.WriteByte('>')
		sb.WriteString(strconv.Itoa(p.Initial))
		descs[i] = sb.String()
	}
	sort.Strings(descs)
	return strings.Join(descs, ";")
}
