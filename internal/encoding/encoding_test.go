package encoding

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/ts"
	"repro/internal/vme"
)

func mustSG(t *testing.T, g *stg.STG) *ts.SG {
	t.Helper()
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

// TestFig7CscInsertion reproduces the paper's manual solution: csc0+ right
// before LDS+ and csc0- right before D-. The resulting SG must satisfy all
// implementability properties (Figure 7).
func TestFig7CscInsertion(t *testing.T) {
	g := vme.ReadSTG()
	ldsP := g.Net.TransitionIndex("LDS+")
	dM := g.Net.TransitionIndex("D-")
	if ldsP < 0 || dM < 0 {
		t.Fatal("missing transitions in read STG")
	}
	g2, err := InsertSignal(g, "csc0", ldsP, dM)
	if err != nil {
		t.Fatal(err)
	}
	if g2.SignalIndex("csc0") != 5 {
		t.Fatal("csc0 must be signal index 5 (paper code order)")
	}
	sg := mustSG(t, g2)
	imp := sg.CheckImplementability()
	if !imp.OK() {
		t.Fatalf("Fig 7 SG must be implementable: %v\n%s", imp, ConflictSummary(sg))
	}
	if !imp.USC {
		t.Fatal("Fig 7 SG has unique state coding")
	}
	// Two new events lengthen the cycle: more states than the original 14.
	if sg.NumStates() <= 14 {
		t.Fatalf("inserted SG has %d states, want > 14", sg.NumStates())
	}
	// The original STG is untouched.
	if len(g.Signals) != 5 {
		t.Fatal("InsertSignal must not mutate its input")
	}
}

func TestInsertSignalValidation(t *testing.T) {
	g := vme.ReadSTG()
	if _, err := InsertSignal(g, "x", 1, 1); err == nil {
		t.Fatal("rise==fall must be rejected")
	}
	if _, err := InsertSignal(g, "x", -1, 2); err == nil {
		t.Fatal("out of range must be rejected")
	}
}

// TestConcurrencyReduction reproduces the paper's alternative: delaying
// DTACK- until LDS- fires removes the conflicting state.
func TestConcurrencyReduction(t *testing.T) {
	g := vme.ReadSTG()
	dtackM := g.Net.TransitionIndex("DTACK-")
	ldsM := g.Net.TransitionIndex("LDS-")
	g2, err := DelayTransition(g, dtackM, ldsM)
	if err != nil {
		t.Fatal(err)
	}
	sg := mustSG(t, g2)
	if !sg.HasCSC() {
		t.Fatalf("concurrency reduction must resolve CSC:\n%s", ConflictSummary(sg))
	}
	imp := sg.CheckImplementability()
	if !imp.OK() {
		t.Fatalf("reduced spec must remain implementable: %v", imp)
	}
	// Fewer states than the original 14 (one interleaving removed).
	if sg.NumStates() >= 14 {
		t.Fatalf("reduction must shrink the SG, got %d states", sg.NumStates())
	}
}

func TestDelayInputRejected(t *testing.T) {
	g := vme.ReadSTG()
	dsrP := g.Net.TransitionIndex("DSr+")
	ldsM := g.Net.TransitionIndex("LDS-")
	if _, err := DelayTransition(g, dsrP, ldsM); err == nil {
		t.Fatal("delaying an input transition must be rejected")
	}
}

// TestSolveCSC checks the automatic solver: it must find a one-signal
// solution for the READ cycle with all properties preserved.
func TestSolveCSC(t *testing.T) {
	sol, err := SolveCSC(vme.ReadSTG(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.SG.HasCSC() {
		t.Fatal("solver result lacks CSC")
	}
	if !sol.SG.CheckImplementability().OK() {
		t.Fatal("solver result not implementable")
	}
	if !strings.Contains(sol.Description, "csc0") {
		t.Fatalf("description = %q", sol.Description)
	}
	if sol.Literals <= 0 {
		t.Fatal("literal cost must be positive")
	}
	if sol.STG.SignalIndex("csc0") < 0 {
		t.Fatal("solution must contain csc0")
	}
}

// The read/write spec needs two state signals: the greedy continuation path.
func TestSolveCSCTwoSignals(t *testing.T) {
	sol, err := SolveCSC(vme.ReadWriteSTG(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.SG.HasCSC() || !sol.SG.CheckImplementability().OK() {
		t.Fatal("read/write solution must be implementable")
	}
	if sol.STG.SignalIndex("csc0") < 0 || sol.STG.SignalIndex("csc1") < 0 {
		t.Fatalf("two signals expected: %s", sol.Description)
	}
	if !strings.Contains(sol.Description, ";") {
		t.Fatalf("two-step description expected: %q", sol.Description)
	}
	// Ranked solutions: all returned candidates are complete and sorted by
	// literal cost.
	sols, err := Solutions(vme.ReadWriteSTG(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sols {
		if !s.SG.HasCSC() {
			t.Fatalf("solution %d incomplete", i)
		}
		if i > 0 && sols[i-1].Literals > s.Literals {
			t.Fatal("solutions must be sorted by cost")
		}
	}
}

// A spec that already has CSC is returned unchanged.
func TestSolveCSCNoop(t *testing.T) {
	g := stg.New("hs")
	g.AddSignal("r", stg.Input)
	g.AddSignal("a", stg.Output)
	rp := g.Rise("r")
	ap := g.Rise("a")
	rm := g.Fall("r")
	am := g.Fall("a")
	g.Net.Chain(rp, ap, rm, am)
	g.Net.Implicit(am, rp, 1)
	sol, err := SolveCSC(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Description != "" || sol.STG.SignalIndex("csc0") >= 0 {
		t.Fatal("CSC-clean spec must need no insertion")
	}
}

// TestSolveByReduction: the automatic concurrency-reduction solver finds the
// paper's solution shape (delaying DTACK- class transitions) for the READ
// cycle, shrinking the state space instead of adding a signal.
func TestSolveByReduction(t *testing.T) {
	g := vme.ReadSTG()
	sol, err := SolveByReduction(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.SG.HasCSC() || !sol.SG.CheckImplementability().OK() {
		t.Fatal("reduction solution must be implementable")
	}
	if len(sol.STG.Signals) != len(g.Signals) {
		t.Fatal("concurrency reduction must not add signals")
	}
	if sol.SG.NumStates() >= 14 {
		t.Fatalf("reduction must shrink the SG, got %d states", sol.SG.NumStates())
	}
	if !strings.Contains(sol.Description, "delay") {
		t.Fatalf("description = %q", sol.Description)
	}
	// The reduced spec synthesizes and verifies end to end.
	nl, err := logic.Synthesize(sol.SG, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Verify(nl, sol.STG, sim.Options{})
	if err != nil || !res.OK() {
		t.Fatalf("reduced-spec circuit must verify: %v %v", err, res)
	}
}

// Reduction is honest about failure: a spec whose conflict is sequential (no
// concurrency to reduce) cannot be solved this way.
func TestSolveByReductionFails(t *testing.T) {
	// x+ ; y+ ; x- ; y- ; x+ ... has CSC conflicts that no ordering fixes
	// (there is no concurrency at all).
	g := stg.New("seq")
	g.AddSignal("x", stg.Output)
	g.AddSignal("y", stg.Output)
	xp := g.Rise("x")
	yp := g.Rise("y")
	xm := g.Fall("x")
	ym := g.Fall("y")
	xp2 := g.AddTransition(0, stg.Rise)
	yp2 := g.AddTransition(1, stg.Rise)
	xm2 := g.Fall("x")
	ym2 := g.Fall("y")
	g.Net.Chain(xp, yp, xm, ym, xp2, yp2, xm2, ym2)
	g.Net.Implicit(ym2, xp, 1)
	sg := mustSG(t, g)
	if sg.HasCSC() {
		t.Skip("spec unexpectedly has CSC")
	}
	if _, err := SolveByReduction(g, 2); err == nil {
		t.Fatal("sequential conflict must defeat concurrency reduction")
	}
}

func TestConflictSummary(t *testing.T) {
	sg := mustSG(t, vme.ReadSTG())
	s := ConflictSummary(sg)
	if !strings.Contains(s, "10110") {
		t.Fatalf("summary must mention the conflict code: %s", s)
	}
	sol, err := SolveCSC(vme.ReadSTG(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ConflictSummary(sol.SG) != "CSC satisfied" {
		t.Fatal("clean SG summary")
	}
}
