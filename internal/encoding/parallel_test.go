package encoding

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/stg"
	"repro/internal/vme"
)

var solverWorkerCounts = []int{2, 4, 8}

// doublePulseSeq builds a purely sequential two-signal spec whose cycle
// x+ y+ x- y- x+/1 y+/1 x-/1 y-/1 revisits every code twice: maximally
// conflict-rich for its size (8 states), so the solver needs two inserted
// signals. A cheap second generated model for the determinism suite.
func doublePulseSeq() *stg.STG {
	g := stg.New("dpseq")
	g.AddSignal("x", stg.Output)
	g.AddSignal("y", stg.Output)
	xp := g.Rise("x")
	yp := g.Rise("y")
	xm := g.Fall("x")
	ym := g.Fall("y")
	xp2 := g.AddTransition(0, stg.Rise)
	yp2 := g.AddTransition(1, stg.Rise)
	xm2 := g.Fall("x")
	ym2 := g.Fall("y")
	g.Net.Chain(xp, yp, xm, ym, xp2, yp2, xm2, ym2)
	g.Net.Implicit(ym2, xp, 1)
	return g
}

// TestSolutionsDeterministicAcrossWorkers is the tentpole guarantee: the
// solution list — descriptions, literal costs, order, and the solved state
// graphs themselves — is bit-identical at every worker count. Run under
// -race this also exercises the memo and result slots concurrently.
func TestSolutionsDeterministicAcrossWorkers(t *testing.T) {
	models := []struct {
		name  string
		g     *stg.STG
		limit int
	}{
		{"vme-read", vme.ReadSTG(), 3},
		{"vme-read-write", vme.ReadWriteSTG(), 2}, // greedy multi-signal path
		{"cscring-2", gen.CSCRing(2), 2},
		{"dpseq", doublePulseSeq(), 3},
	}
	for _, mdl := range models {
		ref, err := SolutionsOpts(mdl.g, 0, mdl.limit, Options{})
		if err != nil {
			t.Fatalf("%s: sequential: %v", mdl.name, err)
		}
		for _, w := range solverWorkerCounts {
			got, err := SolutionsOpts(mdl.g, 0, mdl.limit, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s w=%d: %v", mdl.name, w, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%s w=%d: %d solutions, sequential found %d",
					mdl.name, w, len(got), len(ref))
			}
			for i := range ref {
				if got[i].Description != ref[i].Description {
					t.Fatalf("%s w=%d sol %d: description %q, want %q",
						mdl.name, w, i, got[i].Description, ref[i].Description)
				}
				if got[i].Literals != ref[i].Literals {
					t.Fatalf("%s w=%d sol %d: literals %d, want %d",
						mdl.name, w, i, got[i].Literals, ref[i].Literals)
				}
				if !reflect.DeepEqual(got[i].SG.States, ref[i].SG.States) ||
					!reflect.DeepEqual(got[i].SG.Out, ref[i].SG.Out) {
					t.Fatalf("%s w=%d sol %d: state graphs differ", mdl.name, w, i)
				}
				if canonicalSignature(got[i].STG) != canonicalSignature(ref[i].STG) {
					t.Fatalf("%s w=%d sol %d: solved STGs differ structurally", mdl.name, w, i)
				}
			}
		}
	}
}

// TestVMETieBreakPinned pins the ranking on Figure 7's VME READ spec: the
// (conflicts, literals, enumeration order) key picks the polarity-flipped
// variant of the paper's manual solution (8 literals), with the paper's own
// "+ before LDS+, - before D-" as the 9-literal runner-up. Any change to the
// enumeration order, the sentinel cost or the tie-break shows up here.
func TestVMETieBreakPinned(t *testing.T) {
	sols, err := Solutions(vme.ReadSTG(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("want 2 ranked solutions, got %d", len(sols))
	}
	if sols[0].Description != "insert csc0: + before D-, - before LDS+" || sols[0].Literals != 8 {
		t.Fatalf("winner = %q (%d literals)", sols[0].Description, sols[0].Literals)
	}
	if sols[1].Description != "insert csc0: + before LDS+, - before D-" || sols[1].Literals != 9 {
		t.Fatalf("runner-up = %q (%d literals)", sols[1].Description, sols[1].Literals)
	}
}

// TestCanonicalSignature pins the memo key's isomorphism contract on the
// symmetric-insertion case it exists for: across an unmarked chain t -> u,
// "after t" and "before u" build the same net up to generated place names —
// equal signatures. Across a marked chain the token ends up on opposite
// sides of the new transition — different signatures.
func TestCanonicalSignature(t *testing.T) {
	chain := func(tokens int) *stg.STG {
		g := stg.New("chain")
		g.AddSignal("p", stg.Output)
		g.AddSignal("q", stg.Output)
		pp := g.Rise("p")
		qp := g.Rise("q")
		pm := g.Fall("p")
		qm := g.Fall("q")
		g.Net.Chain(pp, qp, pm, qm)
		g.Net.Implicit(qm, pp, 1)
		// Extra token position under test sits on the qp -> pm edge: Chain
		// made it unmarked; re-mark by adding tokens via a parallel place.
		if tokens > 0 {
			g.Net.Implicit(qp, pm, tokens)
		}
		return g
	}
	fall := Point{Before: true, Trans: 3} // before q-

	g := chain(0)
	after, err := InsertSignalAt(g, "x", Point{Before: false, Trans: 1}, fall) // after q+
	if err != nil {
		t.Fatal(err)
	}
	before, err := InsertSignalAt(g, "x", Point{Before: true, Trans: 2}, fall) // before p-
	if err != nil {
		t.Fatal(err)
	}
	if canonicalSignature(after) != canonicalSignature(before) {
		t.Fatal("symmetric insertions across an unmarked chain must share a signature")
	}

	gm := chain(1)
	afterM, err := InsertSignalAt(gm, "x", Point{Before: false, Trans: 1}, fall)
	if err != nil {
		t.Fatal(err)
	}
	beforeM, err := InsertSignalAt(gm, "x", Point{Before: true, Trans: 2}, fall)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalSignature(afterM) == canonicalSignature(beforeM) {
		t.Fatal("a marked chain place makes the two insertions semantically different")
	}
	if canonicalSignature(after) == canonicalSignature(afterM) {
		t.Fatal("initial marking must be part of the signature")
	}
}
