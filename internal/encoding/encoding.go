// Package encoding solves the state encoding problem (Sections 2.1 and 3.1):
// when two reachable states share a binary code but imply different values of
// some non-input signal, the next-state functions are ill-defined. The two
// methods presented in the paper are implemented:
//
//  1. inserting an additional internal state signal whose value
//     distinguishes the conflicting states (Figure 7), and
//  2. concurrency reduction: delaying a non-input transition so that the
//     conflicting state disappears from the specification.
package encoding

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
)

// InsertSignal clones g and inserts a new internal signal whose rising
// transition fires immediately before transition riseBefore and whose
// falling transition fires immediately before fallBefore (both indexes into
// g.Net.Transitions). The new transition takes over all input places of the
// target transition and a fresh place sequences it before the target — the
// "insert right before" construction of Section 2.1.
func InsertSignal(g *stg.STG, name string, riseBefore, fallBefore int) (*stg.STG, error) {
	if riseBefore == fallBefore {
		return nil, fmt.Errorf("encoding: rise and fall insertion points must differ")
	}
	nT := len(g.Net.Transitions)
	if riseBefore < 0 || riseBefore >= nT || fallBefore < 0 || fallBefore >= nT {
		return nil, fmt.Errorf("encoding: insertion point out of range")
	}
	c := g.Clone()
	sig := c.AddSignal(name, stg.Internal)
	insertBefore(c, sig, stg.Rise, riseBefore)
	insertBefore(c, sig, stg.Fall, fallBefore)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("encoding: insertion produced invalid STG: %w", err)
	}
	return c, nil
}

// insertBefore splices a new transition of (sig,dir) in front of target.
func insertBefore(c *stg.STG, sig int, dir stg.Dir, target int) {
	tNew := c.AddTransition(sig, dir)
	net := c.Net
	// The new transition inherits the target's preset.
	net.Transitions[tNew].Pre = append([]int(nil), net.Transitions[target].Pre...)
	for _, p := range net.Transitions[target].Pre {
		for i, t := range net.Places[p].Post {
			if t == target {
				net.Places[p].Post[i] = tNew
			}
		}
	}
	net.Transitions[target].Pre = nil
	net.Implicit(tNew, target, 0)
}

// insertAfter splices a new transition of (sig,dir) right after target: the
// new transition takes over the target's postset and a fresh place sequences
// target before it.
func insertAfter(c *stg.STG, sig int, dir stg.Dir, target int) {
	tNew := c.AddTransition(sig, dir)
	net := c.Net
	net.Transitions[tNew].Post = append([]int(nil), net.Transitions[target].Post...)
	for _, p := range net.Transitions[target].Post {
		for i, t := range net.Places[p].Pre {
			if t == target {
				net.Places[p].Pre[i] = tNew
			}
		}
	}
	net.Transitions[target].Post = nil
	net.Implicit(target, tNew, 0)
}

// Point is an insertion point for a new signal transition.
type Point struct {
	// Before selects insertion in front of (true) or after (false) Trans.
	Before bool
	Trans  int
}

func (p Point) describe(g *stg.STG) string {
	side := "after"
	if p.Before {
		side = "before"
	}
	return side + " " + g.Net.Transitions[p.Trans].Name
}

// InsertSignalAt clones g and inserts a new internal signal with its rising
// transition at rise and falling transition at fall.
func InsertSignalAt(g *stg.STG, name string, rise, fall Point) (*stg.STG, error) {
	nT := len(g.Net.Transitions)
	if rise.Trans < 0 || rise.Trans >= nT || fall.Trans < 0 || fall.Trans >= nT {
		return nil, fmt.Errorf("encoding: insertion point out of range")
	}
	if rise == fall {
		return nil, fmt.Errorf("encoding: rise and fall insertion points must differ")
	}
	c := g.Clone()
	sig := c.AddSignal(name, stg.Internal)
	apply := func(pt Point, dir stg.Dir) {
		if pt.Before {
			insertBefore(c, sig, dir, pt.Trans)
		} else {
			insertAfter(c, sig, dir, pt.Trans)
		}
	}
	apply(rise, stg.Rise)
	apply(fall, stg.Fall)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("encoding: insertion produced invalid STG: %w", err)
	}
	return c, nil
}

// DelayTransition clones g and adds an ordering constraint: transition
// `delayed` cannot fire until transition `until` has fired (a fresh unmarked
// place from `until` to `delayed`). This is the concurrency-reduction method;
// it must only be applied to non-input transitions ("delaying input signals
// is not allowed" for compositional reasons), which is enforced here.
func DelayTransition(g *stg.STG, delayed, until int) (*stg.STG, error) {
	if g.IsInput(delayed) {
		return nil, fmt.Errorf("encoding: cannot delay input transition %s",
			g.Net.Transitions[delayed].Name)
	}
	c := g.Clone()
	c.Net.Implicit(until, delayed, 0)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Solution is one successful CSC resolution.
type Solution struct {
	STG *stg.STG
	SG  *ts.SG
	// Description says what was done, e.g. "insert csc0: + before LDS+, - before D-".
	Description string
	// Literals is the complex-gate literal cost, the selection metric.
	Literals int
}

// unsolvedLiteralCost is the literal cost carried by candidates that reduce
// but do not eliminate the CSC conflicts. The ranking key is (conflicts,
// literals, enumeration order), so this sentinel only breaks ties among
// still-unsolved candidates against solved ones at the same conflict count —
// a situation that cannot arise (solved means zero conflicts) — while
// keeping the cost field a plain int. It merely has to dwarf every real
// cover cost without overflowing additions.
const unsolvedLiteralCost = 1 << 29

// SolveCSC resolves all CSC conflicts of g by inserting internal state
// signals. It searches insertion-point pairs around non-input transitions
// (inputs must stay untouched), validates every candidate against the full
// implementability suite (consistency, CSC, persistency, deadlock freedom),
// and returns the valid solution with minimal complex-gate literal cost.
// Up to maxSignals signals are inserted (each named csc0, csc1, ...).
func SolveCSC(g *stg.STG, maxSignals int) (*Solution, error) {
	return SolveCSCOpts(g, maxSignals, Options{})
}

// SolveCSCOpts is SolveCSC with explicit solver options.
func SolveCSCOpts(g *stg.STG, maxSignals int, opts Options) (*Solution, error) {
	sols, err := SolutionsOpts(g, maxSignals, 1, opts)
	if err != nil {
		return nil, err
	}
	return sols[0], nil
}

func describeInsertion(g *stg.STG, name string, r, f Point) string {
	return fmt.Sprintf("insert %s: + %s, - %s", name, r.describe(g), f.describe(g))
}

// rankedInsertions tries every (rise, fall) pair of insertion points around
// non-input transitions and returns the property-preserving candidates that
// reduce the conflict count, ranked by (conflicts, literal cost, order).
// With ctx.workers > 1 the pairs are evaluated by the memoized parallel
// evaluator; the ranking — and thus the returned list — is identical.
func rankedInsertions(g *stg.STG, name string, limit int, ctx *evalCtx) ([]*Solution, error) {
	baseSG, err := ctx.buildSG(g)
	if err != nil {
		return nil, err
	}
	baseConflicts := len(baseSG.CSCConflicts())

	var points []Point
	for t := range g.Net.Transitions {
		if !g.IsInput(t) && g.Labels[t].Sig >= 0 {
			points = append(points, Point{Before: true, Trans: t}, Point{Before: false, Trans: t})
		}
	}
	var pairs []insPair
	order := 0
	for _, r := range points {
		for _, f := range points {
			if r == f {
				continue
			}
			order++
			pairs = append(pairs, insPair{r: r, f: f, order: order})
		}
	}
	var all []scored
	if ctx.workers > 1 {
		all, err = evalPairsParallel(g, name, pairs, baseConflicts, ctx)
	} else {
		all, err = evalPairsSequential(g, name, pairs, baseConflicts, ctx)
	}
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("no property-preserving insertion found for %s", name)
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i].key, all[j].key) })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	out := make([]*Solution, len(all))
	for i, s := range all {
		out[i] = s.sol
		if out[i].SG == nil {
			// Memo-hit survivor of the ranked cut: build its own SG now.
			// Its isomorphic twin built fine, so this cannot fail.
			sg, err := ctx.buildSG(out[i].STG)
			if err != nil {
				return nil, fmt.Errorf("encoding: rebuilding memoized candidate: %w", err)
			}
			out[i].SG = sg
		}
	}
	return out, nil
}

// evalPairsSequential is the reference evaluator: one candidate at a time on
// the solve-wide scratch arena. Budget cancellation is polled once per
// candidate, matching the parallel evaluator's abort points.
func evalPairsSequential(g *stg.STG, name string, pairs []insPair, baseConflicts int, ctx *evalCtx) ([]scored, error) {
	var all []scored
	for _, p := range pairs {
		ctx.checks.Inc()
		if err := ctx.bgt.Check("encoding.eval"); err != nil {
			return nil, err
		}
		cand, err := InsertSignalAt(g, name, p.r, p.f)
		if err != nil {
			continue
		}
		ctx.candidates.Inc()
		sg, m := evaluateCandidate(cand, baseConflicts, ctx.arena)
		if !m.ok {
			continue
		}
		all = append(all, scored{
			sol: &Solution{
				STG:         cand,
				SG:          sg,
				Description: describeInsertion(g, name, p.r, p.f),
				Literals:    m.lits,
			},
			key: [3]int{m.conflicts, m.lits, p.order},
		})
	}
	return all, nil
}

func less(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// Solutions returns up to limit complete CSC solutions (single greedy path
// per ranked first insertion), cheapest first by final complex-gate literal
// cost. Callers that need to iterate (e.g. technology mapping retries) use
// this instead of SolveCSC.
func Solutions(g *stg.STG, maxSignals, limit int) ([]*Solution, error) {
	return SolutionsOpts(g, maxSignals, limit, Options{})
}

// SolutionsOpts is Solutions with explicit solver options. The returned
// solution list — descriptions, literal costs and order — is identical at
// every Options.Workers value.
func SolutionsOpts(g *stg.STG, maxSignals, limit int, opts Options) ([]*Solution, error) {
	if limit <= 0 {
		limit = 5
	}
	ctx := newEvalCtx(opts)
	out, err := firstRound(g, maxSignals, limit, ctx)
	ctx.finish(err)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Literals < out[j].Literals })
	return out, nil
}

func firstRound(g *stg.STG, maxSignals, limit int, ctx *evalCtx) ([]*Solution, error) {
	sg, err := ctx.buildSG(g)
	if err != nil {
		return nil, err
	}
	if sg.HasCSC() {
		lits, err := complexLiterals(sg)
		if err != nil {
			return nil, err
		}
		return []*Solution{{STG: g, SG: sg, Literals: lits}}, nil
	}
	if maxSignals <= 0 {
		maxSignals = 3
	}
	ranked, err := rankedInsertions(g, "csc0", limit*2, ctx)
	if err != nil {
		return nil, err
	}
	var out []*Solution
	for _, cand := range ranked {
		if len(out) >= limit {
			break
		}
		if cand.SG.HasCSC() {
			out = append(out, cand)
			continue
		}
		// Greedy continuation for multi-signal cases.
		sol, err := continueGreedy(cand, maxSignals-1, ctx)
		if err == nil {
			out = append(out, sol)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("encoding: CSC not solved within %d signal insertions", maxSignals)
	}
	return out, nil
}

func continueGreedy(start *Solution, rounds int, ctx *evalCtx) (*Solution, error) {
	cur := start
	for i := 0; i < rounds; i++ {
		if cur.SG.HasCSC() {
			return cur, nil
		}
		ranked, err := rankedInsertions(cur.STG, fmt.Sprintf("csc%d", i+1), 1, ctx)
		if err != nil {
			return nil, err
		}
		next := ranked[0]
		next.Description = cur.Description + "; " + next.Description
		cur = next
	}
	if !cur.SG.HasCSC() {
		return nil, fmt.Errorf("encoding: CSC not solved")
	}
	return cur, nil
}

// SolveByReduction resolves CSC conflicts with the paper's second method:
// concurrency reduction — delaying a non-input transition until another
// transition has fired, so that the conflicting states disappear from the
// specification. It searches (delayed, until) pairs of transitions, keeps
// property-preserving candidates that reduce the conflict count, and greedily
// iterates up to maxOrders added orderings. Unlike signal insertion this can
// fail on specs whose conflicts are not caused by concurrency.
func SolveByReduction(g *stg.STG, maxOrders int) (*Solution, error) {
	if maxOrders <= 0 {
		maxOrders = 3
	}
	cur := g
	desc := ""
	for round := 0; round < maxOrders+1; round++ {
		sg, err := buildSG(cur)
		if err != nil {
			return nil, err
		}
		if sg.HasCSC() {
			lits, err := complexLiterals(sg)
			if err != nil {
				return nil, err
			}
			return &Solution{STG: cur, SG: sg, Description: desc, Literals: lits}, nil
		}
		if round == maxOrders {
			break
		}
		best, bestDesc, err := bestReduction(cur, len(sg.CSCConflicts()))
		if err != nil {
			return nil, fmt.Errorf("encoding: reduction round %d: %w", round, err)
		}
		cur = best
		if desc != "" {
			desc += "; "
		}
		desc += bestDesc
	}
	return nil, fmt.Errorf("encoding: CSC not solved within %d concurrency reductions", maxOrders)
}

func bestReduction(g *stg.STG, baseConflicts int) (*stg.STG, string, error) {
	type cand struct {
		g    *stg.STG
		desc string
		key  [3]int
	}
	var best *cand
	order := 0
	for delayed := range g.Net.Transitions {
		if g.IsInput(delayed) || g.Labels[delayed].Sig < 0 {
			continue
		}
		for until := range g.Net.Transitions {
			if until == delayed {
				continue
			}
			order++
			c, err := DelayTransition(g, delayed, until)
			if err != nil {
				continue
			}
			sg, err := buildSG(c)
			if err != nil {
				continue
			}
			imp := sg.CheckImplementability()
			if !imp.Persistent || !imp.DeadlockFree {
				continue
			}
			conflicts := len(sg.CSCConflicts())
			if conflicts >= baseConflicts {
				continue
			}
			lits := unsolvedLiteralCost
			if conflicts == 0 {
				if l, err := complexLiterals(sg); err == nil {
					lits = l
				} else {
					continue
				}
			}
			key := [3]int{conflicts, lits, order}
			if best == nil || less(key, best.key) {
				best = &cand{
					g: c,
					desc: fmt.Sprintf("delay %s until %s",
						g.Net.Transitions[delayed].Name, g.Net.Transitions[until].Name),
					key: key,
				}
			}
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("no property-preserving reduction found")
	}
	return best.g, best.desc, nil
}

func complexLiterals(sg *ts.SG) (int, error) {
	fs, err := logic.DeriveAll(sg)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, f := range fs {
		n += f.Cover.Literals()
	}
	return n, nil
}

// buildSG builds the state graph for analysis/synthesis, contracting dummy
// events: synthesis regions are defined on signal-edge arcs only.
func buildSG(g *stg.STG) (*ts.SG, error) {
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		return nil, err
	}
	return ts.ContractDummies(sg)
}

// ConflictSummary renders the CSC conflicts of an SG for diagnostics.
func ConflictSummary(sg *ts.SG) string {
	confl := sg.CSCConflicts()
	if len(confl) == 0 {
		return "CSC satisfied"
	}
	var lines []string
	for _, c := range confl {
		lines = append(lines, fmt.Sprintf("code %s: states %s and %s (signal %s)",
			c.Code.String(len(sg.Signals)),
			sg.States[c.A].Label, sg.States[c.B].Label,
			sg.Signals[c.Signal].Name))
	}
	sort.Strings(lines)
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}
