package timing_test

import (
	"math"
	"testing"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/timing"
	"repro/internal/vme"
)

// mgRing builds the 3-stage marked-graph ring a -> b -> c -> a (token on
// c -> a).
func mgRing(t *testing.T) *stg.STG {
	t.Helper()
	g := stg.New("ring")
	g.AddSignal("a", stg.Output)
	g.AddSignal("b", stg.Output)
	g.AddSignal("c", stg.Output)
	at := g.AddTransition(0, stg.Toggle)
	bt := g.AddTransition(1, stg.Toggle)
	ct := g.AddTransition(2, stg.Toggle)
	g.Net.Chain(at, bt, ct)
	g.Net.Implicit(ct, at, 1)
	return g
}

func TestMaxSeparationSharedPrefixCancels(t *testing.T) {
	g := mgRing(t)
	s := timing.Spec{G: g, Delays: []timing.Delay{
		{Min: 1, Max: 2}, timing.Fixed(3), timing.Fixed(5),
	}}
	// x(b,0) - x(a,0) = 3 exactly: the shared δa cancels. A naive interval
	// bound would report 4.
	sep, err := timing.MaxSeparation(s,
		timing.Occurrence{Transition: 1, Cycle: 0},
		timing.Occurrence{Transition: 0, Cycle: 0}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sep != 3 {
		t.Fatalf("sep(b0,a0) = %d, want exactly 3", sep)
	}
	// And the reverse is -3.
	sep2, err := timing.MinSeparation(s,
		timing.Occurrence{Transition: 0, Cycle: 0},
		timing.Occurrence{Transition: 1, Cycle: 0}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sep2 != -3 {
		t.Fatalf("minsep(a0,b0) = %d, want -3", sep2)
	}
}

// diamond: a forks to b and c, which join at d; d closes the cycle to a.
func diamond(t *testing.T) *stg.STG {
	t.Helper()
	g := stg.New("diamond")
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddSignal(n, stg.Output)
	}
	at := g.AddTransition(0, stg.Toggle)
	bt := g.AddTransition(1, stg.Toggle)
	ct := g.AddTransition(2, stg.Toggle)
	dt := g.AddTransition(3, stg.Toggle)
	n := g.Net
	n.Implicit(at, bt, 0)
	n.Implicit(at, ct, 0)
	n.Implicit(bt, dt, 0)
	n.Implicit(ct, dt, 0)
	n.Implicit(dt, at, 1)
	return g
}

func TestMaxSeparationDiamond(t *testing.T) {
	g := diamond(t)
	s := timing.Spec{G: g, Delays: []timing.Delay{
		timing.Fixed(0), {Min: 1, Max: 4}, {Min: 2, Max: 3}, timing.Fixed(0),
	}}
	occ := func(tr, k int) timing.Occurrence { return timing.Occurrence{Transition: tr, Cycle: k} }
	// Independent branches: sep(b,c) = 4-2 = 2.
	sep, err := timing.MaxSeparation(s, occ(1, 0), occ(2, 0), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sep != 2 {
		t.Fatalf("sep(b,c) = %d, want 2", sep)
	}
	// Correlated: sep(d,b) = max over δb of (max(δb,δc) - δb) = 2 at δb=1,δc=3.
	sep, err = timing.MaxSeparation(s, occ(3, 0), occ(1, 0), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sep != 2 {
		t.Fatalf("sep(d,b) = %d, want 2", sep)
	}
	// sep(b,d): b fires before d always: max(x_b - x_d) = -min(δc ... )
	// x_d - x_b = max(δb,δc)-δb >= 0, so sep(b,d) = -0? At δb=4, δc=2:
	// x_d = 4, x_b = 4 -> 0.
	sep, err = timing.MaxSeparation(s, occ(1, 0), occ(3, 0), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sep != 0 {
		t.Fatalf("sep(b,d) = %d, want 0", sep)
	}
}

func TestMaxSeparationLimits(t *testing.T) {
	g := mgRing(t)
	s := timing.Spec{G: g, Delays: []timing.Delay{
		{Min: 1, Max: 2}, {Min: 1, Max: 2}, {Min: 1, Max: 2},
	}}
	// Out-of-window occurrence.
	if _, err := timing.MaxSeparation(s,
		timing.Occurrence{Transition: 0, Cycle: 9},
		timing.Occurrence{Transition: 1, Cycle: 0}, 2, 0); err == nil {
		t.Fatal("occurrence outside unrolling must error")
	}
	// Shared-variable limit.
	if _, err := timing.MaxSeparation(s,
		timing.Occurrence{Transition: 2, Cycle: 3},
		timing.Occurrence{Transition: 1, Cycle: 3}, 4, 1); err == nil {
		t.Fatal("exceeding maxShared must error")
	}
	// Non-marked-graph rejection.
	rw := vme.ReadWriteSTG()
	bad := timing.Spec{G: rw, Delays: make([]timing.Delay, len(rw.Net.Transitions))}
	if err := bad.Validate(); err == nil {
		t.Fatal("choice net must be rejected for TSE")
	}
}

// The upper bound always dominates the exact separation, and scales past the
// shared-variable limit.
func TestSeparationUpperBound(t *testing.T) {
	g := mgRing(t)
	s := timing.Spec{G: g, Delays: []timing.Delay{
		{Min: 1, Max: 2}, timing.Fixed(3), timing.Fixed(5),
	}}
	occ := func(tr, k int) timing.Occurrence { return timing.Occurrence{Transition: tr, Cycle: k} }
	exact, err := timing.MaxSeparation(s, occ(1, 1), occ(0, 1), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := timing.SeparationUpperBound(s, occ(1, 1), occ(0, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if bound < exact {
		t.Fatalf("bound %d below exact %d", bound, exact)
	}
	// A case the exact engine refuses (all delays ranged, deep unroll):
	wide := timing.Spec{G: vme.ReadSTG(), Delays: make([]timing.Delay, len(vme.ReadSTG().Net.Transitions))}
	for i := range wide.Delays {
		wide.Delays[i] = timing.Delay{Min: 1, Max: 3}
	}
	gg := wide.G
	from := timing.Occurrence{Transition: gg.Net.TransitionIndex("LDTACK-"), Cycle: 3}
	to := timing.Occurrence{Transition: gg.Net.TransitionIndex("DSr+"), Cycle: 4}
	if _, err := timing.MaxSeparation(wide, from, to, 5, 5); err == nil {
		t.Fatal("exact engine should refuse this instance at maxShared=5")
	}
	if _, err := timing.SeparationUpperBound(wide, from, to, 5); err != nil {
		t.Fatalf("bound must always be computable: %v", err)
	}
	if _, err := timing.SeparationUpperBound(wide, timing.Occurrence{Transition: 0, Cycle: 99}, to, 5); err == nil {
		t.Fatal("out-of-window occurrence must error")
	}
}

func TestLatency(t *testing.T) {
	g := mgRing(t)
	s := timing.Spec{G: g, Delays: []timing.Delay{
		{Min: 1, Max: 2}, timing.Fixed(3), timing.Fixed(5),
	}}
	// b fires δb after a: latency(a→b) = 3 exactly.
	lat, err := timing.Latency(s, "a~", "b~", 4)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 3 {
		t.Fatalf("latency(a,b) = %d, want 3", lat)
	}
	// c after a: 3 + 5.
	lat, err = timing.Latency(s, "a~", "c~", 4)
	if err != nil {
		t.Fatal(err)
	}
	if lat != 8 {
		t.Fatalf("latency(a,c) = %d, want 8", lat)
	}
	if _, err := timing.Latency(s, "zz", "b~", 4); err == nil {
		t.Fatal("unknown transition must error")
	}
}

func TestCycleTime(t *testing.T) {
	g := mgRing(t)
	s := timing.Spec{G: g, Delays: []timing.Delay{
		{Min: 1, Max: 2}, timing.Fixed(3), timing.Fixed(5),
	}}
	ct, err := timing.CycleTime(s, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ct-10) > 1e-6 {
		t.Fatalf("max cycle time = %v, want 10", ct)
	}
	ct, err = timing.CycleTime(s, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ct-9) > 1e-6 {
		t.Fatalf("min cycle time = %v, want 9", ct)
	}
}

// TestVMESeparationVerified checks the paper's Fig 11a assumption
// numerically: with a slow bus (DSr+ re-request) and a fast local handshake,
// sep(LDTACK-, DSr+next) < 0.
func TestVMESeparationVerified(t *testing.T) {
	g := vme.ReadSTG()
	delays := make([]timing.Delay, len(g.Net.Transitions))
	for i := range delays {
		delays[i] = timing.Fixed(1)
	}
	delays[g.Net.TransitionIndex("DSr+")] = timing.Delay{Min: 50, Max: 60}
	delays[g.Net.TransitionIndex("LDS-")] = timing.Delay{Min: 1, Max: 3}
	s := timing.Spec{G: g, Delays: delays}
	sep, err := timing.MaxSeparation(s,
		timing.Occurrence{Transition: g.Net.TransitionIndex("LDTACK-"), Cycle: 2},
		timing.Occurrence{Transition: g.Net.TransitionIndex("DSr+"), Cycle: 3}, 4, 22)
	if err != nil {
		t.Fatal(err)
	}
	if sep >= 0 {
		t.Fatalf("sep(LDTACK-, DSr+) = %d, want < 0", sep)
	}
}

// TestFig11aTimedSynthesis: with sep(LDTACK-,DSr+)<0 the CSC conflict
// disappears and the circuit simplifies — no state signal needed.
func TestFig11aTimedSynthesis(t *testing.T) {
	g := vme.ReadSTG()
	timed, cons, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(timed, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.HasCSC() {
		t.Fatal("Fig 11a: timing assumption must remove the CSC conflict")
	}
	if sg.NumStates() >= 14 {
		t.Fatalf("timed SG must be smaller than 14 states, got %d", sg.NumStates())
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	// The timed circuit verifies against the timed spec.
	res, err := sim.Verify(nl, timed, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("timed circuit must be SI under the assumption: %v", res.Violations)
	}
	// ... and fails against the untimed environment (the assumption is load
	// bearing).
	res2, err := sim.Verify(nl, g, sim.Options{MaxViolations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.OK() {
		t.Fatal("untimed environment must break the timed circuit")
	}
	// Cheaper than the csc0 solution.
	sol, err := encoding.SolveCSC(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nl.LiteralCount() >= sol.Literals {
		t.Fatalf("timed circuit (%d literals) must beat csc0 circuit (%d)",
			nl.LiteralCount(), sol.Literals)
	}
	_ = cons
}

// TestFig11bRetrigger: early enabling of LDS- from DSr- under
// sep(D-,LDS-)<0.
func TestFig11bRetrigger(t *testing.T) {
	g := vme.ReadSTG()
	early, cons, err := timing.Retrigger(g, "LDS-", "D-", "DSr-")
	if err != nil {
		t.Fatal(err)
	}
	if cons.Earlier.Signal != "D" || cons.Later.Signal != "LDS" {
		t.Fatalf("constraint = %v", cons)
	}
	// The transformed spec still needs CSC resolution; solve and synthesize.
	sol, err := encoding.SolveCSC(early, 0)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sol.SG, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	// Against the ORIGINAL spec (csc0 is an implementation-only wire) with
	// the separation enforced, the circuit is SI and conformant: the early
	// enabling is invisible because D- always wins the race.
	res, err := sim.Verify(nl, g, sim.Options{Constraints: []sim.RelativeOrder{cons}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("Fig 11b circuit must be SI under sep(D-,LDS-)<0: %v", res.Violations)
	}
	// Without the constraint the race is real: LDS- may beat D-, which the
	// original specification forbids.
	res2, err := sim.Verify(nl, g, sim.Options{MaxViolations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.OK() {
		t.Fatal("dropping the separation must expose the race")
	}
}

// TestFig11cCombined: both assumptions together give the simplest circuit.
func TestFig11cCombined(t *testing.T) {
	g := vme.ReadSTG()
	timed, _, err := timing.AddTimingOrder(g, "LDTACK-", "DSr+")
	if err != nil {
		t.Fatal(err)
	}
	early, cons2, err := timing.Retrigger(timed, "LDS-", "D-", "DSr-")
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(early, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sg.HasCSC() {
		t.Fatal("Fig 11c spec must have CSC without insertion")
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Verify(nl, early, sim.Options{Constraints: []sim.RelativeOrder{cons2}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("Fig 11c circuit must verify: %v", res.Violations)
	}
	// Simplest of all variants.
	solUntimed, err := encoding.SolveCSC(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nl.LiteralCount() >= solUntimed.Literals {
		t.Fatalf("Fig 11c (%d literals) must beat the untimed csc0 circuit (%d)",
			nl.LiteralCount(), solUntimed.Literals)
	}
}

func TestPruneSGCoEnabled(t *testing.T) {
	// Two concurrent outputs x,y after input r; constraint x+ before y+
	// halves the diamond.
	g := stg.New("conc")
	g.AddSignal("r", stg.Input)
	g.AddSignal("x", stg.Output)
	g.AddSignal("y", stg.Output)
	rp := g.Rise("r")
	xp := g.Rise("x")
	yp := g.Rise("y")
	rm := g.Fall("r")
	xm := g.Fall("x")
	ym := g.Fall("y")
	n := g.Net
	n.Implicit(rp, xp, 0)
	n.Implicit(rp, yp, 0)
	n.Implicit(xp, rm, 0)
	n.Implicit(yp, rm, 0)
	n.Implicit(rm, xm, 0)
	n.Implicit(rm, ym, 0)
	n.Implicit(xm, rp, 1)
	n.Implicit(ym, rp, 1)
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned := timing.PruneSG(sg, []sim.RelativeOrder{{
		Earlier: sim.EventRef{Signal: "x", Dir: stg.Rise},
		Later:   sim.EventRef{Signal: "y", Dir: stg.Rise},
	}})
	if pruned.NumStates() >= sg.NumStates() {
		t.Fatalf("pruning must shrink: %d -> %d", sg.NumStates(), pruned.NumStates())
	}
	// In the pruned graph no state offers y+ while x+ is also enabled.
	for s := range pruned.States {
		hasX, hasY := false, false
		for _, a := range pruned.Out[s] {
			if a.Event.Name == "x+" {
				hasX = true
			}
			if a.Event.Name == "y+" {
				hasY = true
			}
		}
		if hasX && hasY {
			t.Fatal("constraint violated in pruned SG")
		}
	}
}

func TestRetriggerErrors(t *testing.T) {
	g := vme.ReadSTG()
	if _, _, err := timing.Retrigger(g, "nope", "D-", "DSr-"); err == nil {
		t.Fatal("unknown transition must error")
	}
	if _, _, err := timing.Retrigger(g, "LDS-", "DSr+", "DSr-"); err == nil {
		t.Fatal("non-existent trigger arc must error")
	}
}

func TestAddTimingOrderErrors(t *testing.T) {
	g := vme.ReadSTG()
	if _, _, err := timing.AddTimingOrder(g, "zzz", "DSr+"); err == nil {
		t.Fatal("unknown transition must error")
	}
}
