package timing

import (
	"fmt"

	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
)

// AddTimingOrder encodes a separation assumption sep(earlier, later) < 0 into
// the specification as a causal place earlier→later. Unlike logical
// concurrency reduction (encoding.DelayTransition) this expresses a *timing
// assumption* — it may be applied to input transitions, because it does not
// ask the circuit to delay anything; it informs synthesis that the
// environment/physical design guarantees the ordering, shrinking the
// reachable state space (Section 5, first bullet).
//
// The initial token count of the new place (0 or 1) is inferred: the variant
// whose state graph is consistent, live and safe is chosen.
func AddTimingOrder(g *stg.STG, earlier, later string) (*stg.STG, sim.RelativeOrder, error) {
	var zero sim.RelativeOrder
	et := g.Net.TransitionIndex(earlier)
	lt := g.Net.TransitionIndex(later)
	if et < 0 || lt < 0 {
		return nil, zero, fmt.Errorf("timing: unknown transition %q or %q", earlier, later)
	}
	var lastErr error
	for _, tokens := range []int{0, 1} {
		c := g.Clone()
		c.Net.Implicit(c.Net.TransitionIndex(earlier), c.Net.TransitionIndex(later), tokens)
		sg, err := reach.BuildSG(c, reach.Options{})
		if err != nil {
			lastErr = err
			continue
		}
		if len(sg.Deadlocks()) > 0 {
			lastErr = fmt.Errorf("timing: ordering with %d tokens deadlocks", tokens)
			continue
		}
		cons := sim.RelativeOrder{Earlier: eventRefOf(g, et), Later: eventRefOf(g, lt)}
		return c, cons, nil
	}
	return nil, zero, fmt.Errorf("timing: cannot add order %s -> %s: %v", earlier, later, lastErr)
}
