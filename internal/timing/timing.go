// Package timing implements the timing extensions and timing-driven
// optimization of Sections 1.6 and 5:
//
//   - relative timing constraints sep(a,b) < 0 ("a always fires before b"),
//     used to prune the state graph before synthesis — timing-based
//     concurrency reduction that adds no logical dependencies;
//   - early enabling (lazy transitions): re-triggering an event from an
//     earlier cause, valid when a separation constraint guarantees the
//     original trigger still wins the race;
//   - time separation of events (TSE) for marked graphs with min/max delay
//     intervals, computed exactly on a finite unrolling (the Hulgaard et al.
//     problem of reference [12]);
//   - min/max cycle time of a marked graph (performance analysis).
package timing

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/ts"
)

// PruneSG applies relative timing constraints to a state graph: in any state
// where both the Earlier and the Later event of a constraint are enabled,
// the Later arc is removed (physical design guarantees Earlier wins). States
// made unreachable are dropped and the graph is renumbered. The result has a
// subset of the original behaviour and typically many more don't-care codes
// (Section 5, first bullet).
func PruneSG(g *ts.SG, cons []sim.RelativeOrder) *ts.SG {
	keepArc := func(s int, a ts.Arc) bool {
		for _, c := range cons {
			if a.Event.Sig < 0 {
				continue
			}
			if g.Signals[a.Event.Sig].Name != c.Later.Signal || a.Event.Dir != c.Later.Dir {
				continue
			}
			// Is Earlier enabled in s?
			for _, e := range g.Out[s] {
				if e.Event.Sig >= 0 && g.Signals[e.Event.Sig].Name == c.Earlier.Signal &&
					e.Event.Dir == c.Earlier.Dir {
					return false
				}
			}
		}
		return true
	}
	// BFS from initial over kept arcs.
	remap := make([]int, len(g.States))
	for i := range remap {
		remap[i] = -1
	}
	out := &ts.SG{Name: g.Name + "+rt", Signals: append([]stg.Signal(nil), g.Signals...)}
	queue := []int{g.Initial}
	remap[g.Initial] = 0
	out.States = append(out.States, g.States[g.Initial])
	out.Out = append(out.Out, nil)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, a := range g.Out[s] {
			if !keepArc(s, a) {
				continue
			}
			if remap[a.To] < 0 {
				remap[a.To] = len(out.States)
				out.States = append(out.States, g.States[a.To])
				out.Out = append(out.Out, nil)
				queue = append(queue, a.To)
			}
			out.Out[remap[s]] = append(out.Out[remap[s]], ts.Arc{Event: a.Event, To: remap[a.To]})
		}
	}
	out.Initial = 0
	return out
}

// Retrigger rewires the STG so that transition target is caused by
// newTrigger instead of oldTrigger (the "start enabling LDS- right after
// DSr- instead of D-" transformation of Section 5). It replaces the implicit
// place oldTrigger→target with newTrigger→target and returns the separation
// constraint that physical design must then guarantee:
// sep(oldTrigger, target) < 0.
func Retrigger(g *stg.STG, target, oldTrigger, newTrigger string) (*stg.STG, sim.RelativeOrder, error) {
	var zero sim.RelativeOrder
	tt := g.Net.TransitionIndex(target)
	ot := g.Net.TransitionIndex(oldTrigger)
	nt := g.Net.TransitionIndex(newTrigger)
	if tt < 0 || ot < 0 || nt < 0 {
		return nil, zero, fmt.Errorf("timing: unknown transition among %q, %q, %q", target, oldTrigger, newTrigger)
	}
	c := g.Clone()
	net := c.Net
	found := -1
	for _, p := range net.Transitions[tt].Pre {
		pl := net.Places[p]
		if len(pl.Pre) == 1 && pl.Pre[0] == ot && len(pl.Post) == 1 {
			found = p
			break
		}
	}
	if found < 0 {
		return nil, zero, fmt.Errorf("timing: no implicit place %s -> %s to retrigger", oldTrigger, target)
	}
	// Re-source the place at newTrigger.
	pl := &net.Places[found]
	for i, t := range net.Transitions[ot].Post {
		if t == found {
			net.Transitions[ot].Post = append(net.Transitions[ot].Post[:i], net.Transitions[ot].Post[i+1:]...)
			break
		}
	}
	pl.Pre = []int{nt}
	net.Transitions[nt].Post = append(net.Transitions[nt].Post, found)
	if err := c.Validate(); err != nil {
		return nil, zero, err
	}
	cons := sim.RelativeOrder{
		Earlier: eventRefOf(g, ot),
		Later:   eventRefOf(g, tt),
	}
	return c, cons, nil
}

func eventRefOf(g *stg.STG, t int) sim.EventRef {
	l := g.Labels[t]
	return sim.EventRef{Signal: g.Signals[l.Sig].Name, Dir: l.Dir}
}

// Delay is a min/max delay interval attached to a transition: the time from
// enabling to firing.
type Delay struct {
	Min, Max int64
}

// Fixed returns a zero-width interval.
func Fixed(d int64) Delay { return Delay{Min: d, Max: d} }

// Spec couples a marked-graph STG with per-transition delay intervals.
type Spec struct {
	G      *stg.STG
	Delays []Delay // indexed by transition
}

// Validate checks the spec is a marked graph with sane intervals.
func (s Spec) Validate() error {
	if !s.G.Net.IsMarkedGraph() {
		return fmt.Errorf("timing: TSE analysis requires a marked graph")
	}
	if len(s.Delays) != len(s.G.Net.Transitions) {
		return fmt.Errorf("timing: %d delays for %d transitions", len(s.Delays), len(s.G.Net.Transitions))
	}
	for i, d := range s.Delays {
		if d.Min < 0 || d.Max < d.Min {
			return fmt.Errorf("timing: bad delay interval for %s", s.G.Net.Transitions[i].Name)
		}
	}
	return nil
}

// Occurrence identifies the k-th firing of a transition in the unrolling.
type Occurrence struct {
	Transition int
	Cycle      int
}

// MaxSeparation computes the exact maximum of t(from) - t(to) over all delay
// assignments within the intervals, on an unrolling of `cycles` iterations.
// The timing semantics is the standard max-plus one: an instance fires at
// (max over its predecessor instances' firing times) + its own delay;
// instances whose predecessors fall before the unrolling window start at
// time 0 + delay.
//
// The computation is exact: delays only on paths to `from` are set to Max,
// delays only on paths to `to` are set to Min, and the delays shared by both
// cones are enumerated exhaustively. It fails when more than maxShared
// (default 22) shared variables would need enumeration.
func MaxSeparation(s Spec, from, to Occurrence, cycles int, maxShared int) (int64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if maxShared <= 0 {
		maxShared = 22
	}
	u := unroll(s, cycles)
	fi, ok := u.index(from)
	if !ok {
		return 0, fmt.Errorf("timing: occurrence %v outside unrolling", from)
	}
	ti, ok := u.index(to)
	if !ok {
		return 0, fmt.Errorf("timing: occurrence %v outside unrolling", to)
	}
	ancF := u.ancestors(fi)
	ancT := u.ancestors(ti)

	delays := make([]int64, len(u.nodes))
	var shared []int
	for v := range u.nodes {
		inF, inT := ancF[v], ancT[v]
		d := s.Delays[u.nodes[v].Transition]
		switch {
		case inF && inT && d.Min != d.Max:
			shared = append(shared, v)
			delays[v] = d.Min
		case inF:
			delays[v] = d.Max
		default:
			delays[v] = d.Min
		}
	}
	if len(shared) > maxShared {
		return 0, fmt.Errorf("timing: %d shared delay variables exceed enumeration limit %d",
			len(shared), maxShared)
	}
	best := int64(math.MinInt64)
	for combo := uint64(0); combo < uint64(1)<<uint(len(shared)); combo++ {
		for bi, v := range shared {
			d := s.Delays[u.nodes[v].Transition]
			if combo&(1<<uint(bi)) != 0 {
				delays[v] = d.Max
			} else {
				delays[v] = d.Min
			}
		}
		times := u.evaluate(delays)
		if sep := times[fi] - times[ti]; sep > best {
			best = sep
		}
	}
	return best, nil
}

// SeparationUpperBound computes a sound but loose bound on the maximum of
// t(from) - t(to): the latest possible `from` (all delays at Max) minus the
// earliest possible `to` (all delays at Min). Unlike MaxSeparation it never
// enumerates shared delays, so it works at any scale — use it when the exact
// engine reports too many shared variables, accepting that correlated
// common-prefix delays no longer cancel.
func SeparationUpperBound(s Spec, from, to Occurrence, cycles int) (int64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	u := unroll(s, cycles)
	fi, ok := u.index(from)
	if !ok {
		return 0, fmt.Errorf("timing: occurrence %v outside unrolling", from)
	}
	ti, ok := u.index(to)
	if !ok {
		return 0, fmt.Errorf("timing: occurrence %v outside unrolling", to)
	}
	maxD := make([]int64, len(u.nodes))
	minD := make([]int64, len(u.nodes))
	for v := range u.nodes {
		d := s.Delays[u.nodes[v].Transition]
		maxD[v] = d.Max
		minD[v] = d.Min
	}
	late := u.evaluate(maxD)
	early := u.evaluate(minD)
	return late[fi] - early[ti], nil
}

// MinSeparation is min over delays of t(from) - t(to); by symmetry it equals
// -MaxSeparation(to, from).
func MinSeparation(s Spec, from, to Occurrence, cycles int, maxShared int) (int64, error) {
	v, err := MaxSeparation(s, to, from, cycles, maxShared)
	return -v, err
}

// unrolled is the acyclic occurrence graph of a marked graph.
type unrolled struct {
	spec  Spec
	nodes []Occurrence
	// preds[i] lists predecessor node indexes (empty-window preds omitted:
	// they contribute enabling time 0).
	preds  [][]int
	byOcc  map[Occurrence]int
	cycles int
}

func unroll(s Spec, cycles int) *unrolled {
	u := &unrolled{spec: s, byOcc: map[Occurrence]int{}, cycles: cycles}
	nT := len(s.G.Net.Transitions)
	for k := 0; k < cycles; k++ {
		for t := 0; t < nT; t++ {
			occ := Occurrence{Transition: t, Cycle: k}
			u.byOcc[occ] = len(u.nodes)
			u.nodes = append(u.nodes, occ)
			u.preds = append(u.preds, nil)
		}
	}
	for pi := range s.G.Net.Places {
		pl := s.G.Net.Places[pi]
		if len(pl.Pre) != 1 || len(pl.Post) != 1 {
			continue // Validate already rejects non-MG
		}
		src, dst := pl.Pre[0], pl.Post[0]
		m := pl.Initial
		for k := 0; k < cycles; k++ {
			if k-m < 0 {
				continue
			}
			di := u.byOcc[Occurrence{Transition: dst, Cycle: k}]
			si := u.byOcc[Occurrence{Transition: src, Cycle: k - m}]
			u.preds[di] = append(u.preds[di], si)
		}
	}
	return u
}

func (u *unrolled) index(o Occurrence) (int, bool) {
	i, ok := u.byOcc[o]
	return i, ok
}

// ancestors returns the closed ancestor set (including v itself).
func (u *unrolled) ancestors(v int) []bool {
	anc := make([]bool, len(u.nodes))
	var stack []int
	anc[v] = true
	stack = append(stack, v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range u.preds[x] {
			if !anc[p] {
				anc[p] = true
				stack = append(stack, p)
			}
		}
	}
	return anc
}

// evaluate computes firing times in topological (creation) order: nodes are
// created cycle-major so predecessors always precede successors except
// within a cycle; a relaxation loop handles intra-cycle chains.
func (u *unrolled) evaluate(delays []int64) []int64 {
	times := make([]int64, len(u.nodes))
	for i := range times {
		times[i] = -1
	}
	var eval func(v int) int64
	eval = func(v int) int64 {
		if times[v] >= 0 {
			return times[v]
		}
		times[v] = 0 // break would-be cycles defensively; MG unrolling is acyclic
		var enable int64
		for _, p := range u.preds[v] {
			if tp := eval(p); tp > enable {
				enable = tp
			}
		}
		times[v] = enable + delays[v]
		return times[v]
	}
	for v := range u.nodes {
		eval(v)
	}
	return times
}

// Latency computes the worst-case response time from a cause transition to
// an effect transition within the same cycle: the maximum over delays of
// t(effect) - t(cause), evaluated at a steady-state occurrence. It is the
// "separation between events … for determining latency" of Section 2.1.
func Latency(s Spec, cause, effect string, cycles int) (int64, error) {
	ct := s.G.Net.TransitionIndex(cause)
	et := s.G.Net.TransitionIndex(effect)
	if ct < 0 || et < 0 {
		return 0, fmt.Errorf("timing: unknown transition %q or %q", cause, effect)
	}
	if cycles < 3 {
		cycles = 3
	}
	k := cycles - 1
	return MaxSeparation(s,
		Occurrence{Transition: et, Cycle: k},
		Occurrence{Transition: ct, Cycle: k}, cycles, 0)
}

// CycleTime computes the asymptotic mean cycle time of the marked graph: the
// maximum over directed cycles of (sum of delays / sum of tokens), using
// binary search with Bellman–Ford feasibility. useMax selects Max or Min
// delays. The net must be strongly connected.
func CycleTime(s Spec, useMax bool) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if !s.G.Net.StronglyConnected() {
		return 0, fmt.Errorf("timing: cycle time needs a strongly connected marked graph")
	}
	type edge struct {
		from, to int
		d        int64
		tokens   int
	}
	var edges []edge
	var maxD int64 = 1
	for pi := range s.G.Net.Places {
		pl := s.G.Net.Places[pi]
		src, dst := pl.Pre[0], pl.Post[0]
		d := s.Delays[dst].Min
		if useMax {
			d = s.Delays[dst].Max
		}
		edges = append(edges, edge{from: src, to: dst, d: d, tokens: pl.Initial})
		if d > maxD {
			maxD = d
		}
	}
	n := len(s.G.Net.Transitions)
	// A cycle with zero tokens would mean deadlock; detect it (infinite cycle
	// time) via feasibility at a huge lambda.
	hasPositiveCycle := func(lambda float64) bool {
		dist := make([]float64, n)
		for iter := 0; iter < n; iter++ {
			changed := false
			for _, e := range edges {
				w := float64(e.d) - lambda*float64(e.tokens)
				if dist[e.from]+w > dist[e.to]+1e-12 {
					dist[e.to] = dist[e.from] + w
					changed = true
				}
			}
			if !changed {
				return false
			}
		}
		return true
	}
	hi := float64(maxD) * float64(n+1)
	if hasPositiveCycle(hi) {
		return math.Inf(1), nil
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if hasPositiveCycle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
