// Package boolmin implements two-level Boolean minimization: cubes and
// covers, exact Quine–McCluskey prime generation with don't-cares, covering
// via essential primes plus Petrick's method (small instances) or a greedy
// heuristic, and the algebraic factoring primitives (kernels, division) used
// by logic decomposition. It is the stand-in for espresso/SIS in the flow
// (see DESIGN.md substitutions).
package boolmin

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Cube is a product term over up to 64 variables. Bit i of Care selects
// whether variable i appears; bit i of Val gives its polarity. Bits of Val
// outside Care must be zero (maintained by all constructors).
type Cube struct {
	Val, Care uint64
}

// FullCube returns the universal cube (no literals, covers everything).
func FullCube() Cube { return Cube{} }

// MintermCube returns the cube of a single minterm over n variables.
func MintermCube(m uint64, n int) Cube {
	mask := maskN(n)
	return Cube{Val: m & mask, Care: mask}
}

func maskN(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// WithLiteral returns c extended with variable v at polarity pos.
func (c Cube) WithLiteral(v int, pos bool) Cube {
	c.Care |= 1 << uint(v)
	if pos {
		c.Val |= 1 << uint(v)
	} else {
		c.Val &^= 1 << uint(v)
	}
	return c
}

// Literals returns the number of literals in the cube.
func (c Cube) Literals() int { return bits.OnesCount64(c.Care) }

// Contains reports whether the minterm lies inside the cube.
func (c Cube) Contains(m uint64) bool { return m&c.Care == c.Val }

// Covers reports whether c covers d (every minterm of d is in c).
func (c Cube) Covers(d Cube) bool {
	return c.Care&^d.Care == 0 && (c.Val^d.Val)&c.Care == 0
}

// Intersects reports whether the two cubes share a minterm.
func (c Cube) Intersects(d Cube) bool {
	shared := c.Care & d.Care
	return (c.Val^d.Val)&shared == 0
}

// Merge combines two cubes differing in exactly one literal polarity with
// identical care sets (the Quine–McCluskey adjacency step).
func Merge(a, b Cube) (Cube, bool) {
	if a.Care != b.Care {
		return Cube{}, false
	}
	diff := a.Val ^ b.Val
	if bits.OnesCount64(diff) != 1 {
		return Cube{}, false
	}
	return Cube{Val: a.Val &^ diff, Care: a.Care &^ diff}, true
}

// String renders the cube as a positional pattern over n variables:
// '1', '0' or '-' per variable, variable 0 first.
func (c Cube) String(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		switch {
		case c.Care&(1<<uint(i)) == 0:
			b[i] = '-'
		case c.Val&(1<<uint(i)) != 0:
			b[i] = '1'
		default:
			b[i] = '0'
		}
	}
	return string(b)
}

// Expr renders the cube as a product of named literals, e.g. "a b' c".
func (c Cube) Expr(names []string) string {
	if c.Care == 0 {
		return "1"
	}
	var parts []string
	for i, name := range names {
		if c.Care&(1<<uint(i)) == 0 {
			continue
		}
		if c.Val&(1<<uint(i)) != 0 {
			parts = append(parts, name)
		} else {
			parts = append(parts, name+"'")
		}
	}
	return strings.Join(parts, " ")
}

// Cover is a sum of cubes over N variables.
type Cover struct {
	N     int
	Cubes []Cube
}

// Eval evaluates the cover on a minterm.
func (cv Cover) Eval(m uint64) bool {
	for _, c := range cv.Cubes {
		if c.Contains(m) {
			return true
		}
	}
	return false
}

// Literals returns the total literal count — the standard area estimate.
func (cv Cover) Literals() int {
	n := 0
	for _, c := range cv.Cubes {
		n += c.Literals()
	}
	return n
}

// IsConstant reports whether the cover is constant 0 or constant 1.
func (cv Cover) IsConstant() (value, ok bool) {
	if len(cv.Cubes) == 0 {
		return false, true
	}
	for _, c := range cv.Cubes {
		if c.Care == 0 {
			return true, true
		}
	}
	return false, false
}

// Expr renders the cover as a sum of products with named variables.
func (cv Cover) Expr(names []string) string {
	if len(cv.Cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(cv.Cubes))
	for i, c := range cv.Cubes {
		parts[i] = c.Expr(names)
	}
	sort.Strings(parts)
	return strings.Join(parts, " + ")
}

// String renders the cover positionally.
func (cv Cover) String() string {
	if len(cv.Cubes) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(cv.Cubes))
	for i, c := range cv.Cubes {
		parts[i] = c.String(cv.N)
	}
	sort.Strings(parts)
	return strings.Join(parts, " + ")
}

// Support returns the variables appearing in the cover, ascending.
func (cv Cover) Support() []int {
	var mask uint64
	for _, c := range cv.Cubes {
		mask |= c.Care
	}
	var out []int
	for i := 0; i < cv.N; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns an independent copy.
func (cv Cover) Clone() Cover {
	return Cover{N: cv.N, Cubes: append([]Cube(nil), cv.Cubes...)}
}

// CheckEqualOn verifies two covers agree on every minterm of the care set
// (enumerated; intended for tests and small n).
func CheckEqualOn(a, b Cover, care []uint64) error {
	for _, m := range care {
		if a.Eval(m) != b.Eval(m) {
			return fmt.Errorf("covers differ on minterm %b", m)
		}
	}
	return nil
}
