package boolmin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeBasics(t *testing.T) {
	c := MintermCube(0b101, 3)
	if !c.Contains(0b101) || c.Contains(0b100) {
		t.Fatal("minterm cube containment broken")
	}
	if c.String(3) != "101" {
		t.Fatalf("String = %q", c.String(3))
	}
	full := FullCube()
	if !full.Covers(c) || c.Covers(full) {
		t.Fatal("full cube covering broken")
	}
	d := Cube{}.WithLiteral(0, true)
	if d.String(3) != "1--" || d.Literals() != 1 {
		t.Fatalf("WithLiteral: %q", d.String(3))
	}
	if !d.Intersects(c) {
		t.Fatal("1-- intersects 101")
	}
	e := Cube{}.WithLiteral(0, false)
	if e.Intersects(c) {
		t.Fatal("0-- does not intersect 101")
	}
	if got := c.Expr([]string{"a", "b", "c"}); got != "a b' c" {
		t.Fatalf("Expr = %q", got)
	}
	if got := full.Expr([]string{"a"}); got != "1" {
		t.Fatalf("full Expr = %q", got)
	}
}

func TestMerge(t *testing.T) {
	a := MintermCube(0b000, 3)
	b := MintermCube(0b001, 3)
	m, ok := Merge(a, b)
	if !ok || m.String(3) != "-00" {
		t.Fatalf("merge: %v %q", ok, m.String(3))
	}
	c := MintermCube(0b011, 3)
	if _, ok := Merge(a, c); ok {
		t.Fatal("two-bit difference must not merge")
	}
	d := Cube{Val: 0, Care: 0b011}
	if _, ok := Merge(a, d); ok {
		t.Fatal("different care sets must not merge")
	}
}

// Classic QMC example: f = Σm(0,1,2,5,6,7) over 3 vars minimizes to
// a'c' + bc' ... let's use the canonical f = Σm(4,8,10,11,12,15) d(9,14)
// over 4 vars: minimal cover has 4 cubes / known literal count.
func TestMinimizeCanonical(t *testing.T) {
	on := []uint64{4, 8, 10, 11, 12, 15}
	dc := []uint64{9, 14}
	cv := Minimize(on, dc, 4)
	checkCover(t, cv, on, dc, 4)
	if len(cv.Cubes) > 3 {
		t.Fatalf("canonical example needs <= 3 cubes, got %d: %s", len(cv.Cubes), cv.String())
	}
}

func TestMinimizeXor(t *testing.T) {
	// XOR has no mergeable adjacent minterms: cover = the minterms.
	on := []uint64{0b01, 0b10}
	cv := Minimize(on, nil, 2)
	checkCover(t, cv, on, nil, 2)
	if len(cv.Cubes) != 2 || cv.Literals() != 4 {
		t.Fatalf("xor cover: %s", cv.String())
	}
}

func TestMinimizeTautology(t *testing.T) {
	var on []uint64
	for m := uint64(0); m < 8; m++ {
		on = append(on, m)
	}
	cv := Minimize(on, nil, 3)
	if v, ok := cv.IsConstant(); !ok || !v {
		t.Fatalf("tautology must reduce to constant 1, got %s", cv.String())
	}
}

func TestMinimizeEmpty(t *testing.T) {
	cv := Minimize(nil, []uint64{1, 2}, 3)
	if v, ok := cv.IsConstant(); !ok || v {
		t.Fatalf("empty on-set must yield constant 0, got %s", cv.String())
	}
}

func TestMinimizeAllDontCareNeighbors(t *testing.T) {
	// on={0}, dc = everything else: minimal cover is the full cube.
	on := []uint64{0}
	var dc []uint64
	for m := uint64(1); m < 16; m++ {
		dc = append(dc, m)
	}
	cv := Minimize(on, dc, 4)
	if len(cv.Cubes) != 1 || cv.Cubes[0].Care != 0 {
		t.Fatalf("want full cube, got %s", cv.String())
	}
}

func TestComplement(t *testing.T) {
	on := []uint64{0, 1}
	cv := Complement(on, nil, 2)
	for m := uint64(0); m < 4; m++ {
		want := m >= 2
		if cv.Eval(m) != want {
			t.Fatalf("complement wrong at %d", m)
		}
	}
}

// checkCover asserts correctness: every on-minterm covered, no off-minterm
// covered, every cube is prime w.r.t. on ∪ dc.
func checkCover(t *testing.T, cv Cover, on, dc []uint64, n int) {
	t.Helper()
	inOn := map[uint64]bool{}
	for _, m := range on {
		inOn[m] = true
	}
	inDC := map[uint64]bool{}
	for _, m := range dc {
		inDC[m] = true
	}
	for _, m := range on {
		if !cv.Eval(m) {
			t.Fatalf("on-set minterm %b not covered by %s", m, cv.String())
		}
	}
	for m := uint64(0); m < uint64(1)<<uint(n); m++ {
		if !inOn[m] && !inDC[m] && cv.Eval(m) {
			t.Fatalf("off-set minterm %b covered by %s", m, cv.String())
		}
	}
	// Primality: expanding any cube by dropping a literal must hit the off-set.
	for _, c := range cv.Cubes {
		for v := 0; v < n; v++ {
			bit := uint64(1) << uint(v)
			if c.Care&bit == 0 {
				continue
			}
			bigger := Cube{Val: c.Val &^ bit, Care: c.Care &^ bit}
			hitsOff := false
			for m := uint64(0); m < uint64(1)<<uint(n); m++ {
				if bigger.Contains(m) && !inOn[m] && !inDC[m] {
					hitsOff = true
					break
				}
			}
			if !hitsOff {
				t.Fatalf("cube %s is not prime in %s", c.String(n), cv.String())
			}
		}
	}
}

// Property: Minimize is correct on random functions of 4..6 variables.
func TestQuickMinimizeCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		var on, dc []uint64
		for m := uint64(0); m < uint64(1)<<uint(n); m++ {
			switch rng.Intn(3) {
			case 0:
				on = append(on, m)
			case 1:
				dc = append(dc, m)
			}
		}
		cv := Minimize(on, dc, n)
		inDC := map[uint64]bool{}
		for _, m := range dc {
			inDC[m] = true
		}
		inOn := map[uint64]bool{}
		for _, m := range on {
			inOn[m] = true
		}
		for m := uint64(0); m < uint64(1)<<uint(n); m++ {
			got := cv.Eval(m)
			switch {
			case inOn[m] && !got:
				return false
			case !inOn[m] && !inDC[m] && got:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the minimized cover never has more cubes than the on-set.
func TestQuickMinimizeNoWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		var on []uint64
		for m := uint64(0); m < 16; m++ {
			if rng.Intn(2) == 0 {
				on = append(on, m)
			}
		}
		cv := Minimize(on, nil, n)
		return len(cv.Cubes) <= len(on)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverHelpers(t *testing.T) {
	cv := Cover{N: 3, Cubes: []Cube{
		Cube{}.WithLiteral(0, true).WithLiteral(1, false),
		Cube{}.WithLiteral(2, true),
	}}
	if cv.Literals() != 3 {
		t.Fatalf("literals = %d", cv.Literals())
	}
	if got := cv.Support(); len(got) != 3 {
		t.Fatalf("support = %v", got)
	}
	if cv.MaxLiteralsPerCube() != 2 {
		t.Fatal("max literals per cube")
	}
	if got := cv.Expr([]string{"a", "b", "c"}); got != "a b' + c" {
		t.Fatalf("Expr = %q", got)
	}
	c2 := cv.Clone()
	c2.Cubes[0] = FullCube()
	if cv.Cubes[0].Care == 0 {
		t.Fatal("clone shares storage")
	}
	if err := CheckEqualOn(cv, cv, []uint64{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	other := Cover{N: 3}
	if err := CheckEqualOn(cv, other, []uint64{4}); err == nil {
		t.Fatal("differing covers must be detected")
	}
}
