package boolmin

import (
	"math/bits"
	"sort"
)

// Algebraic factoring primitives (Section 3.4: "candidates for decomposition
// extracted by algebraic factorization"). Covers are treated as algebraic
// expressions: cubes are products of literals, no Boolean simplification.

// CubeFree reports whether the cover has no literal common to all cubes.
func (cv Cover) CubeFree() bool {
	if len(cv.Cubes) == 0 {
		return true
	}
	common := cv.commonLiterals()
	return common.Care == 0
}

func (cv Cover) commonLiterals() Cube {
	if len(cv.Cubes) == 0 {
		return Cube{}
	}
	care := cv.Cubes[0].Care
	val := cv.Cubes[0].Val
	for _, c := range cv.Cubes[1:] {
		agree := care & c.Care &^ (val ^ c.Val)
		care = agree
		val &= agree
	}
	return Cube{Val: val, Care: care}
}

// DivideByLiteral computes the algebraic quotient and remainder of the cover
// by a single literal (variable v at polarity pos).
func (cv Cover) DivideByLiteral(v int, pos bool) (quot, rem Cover) {
	lit := Cube{}.WithLiteral(v, pos)
	quot = Cover{N: cv.N}
	rem = Cover{N: cv.N}
	for _, c := range cv.Cubes {
		if c.Care&lit.Care == lit.Care && (c.Val^lit.Val)&lit.Care == 0 {
			quot.Cubes = append(quot.Cubes, Cube{Val: c.Val &^ lit.Care, Care: c.Care &^ lit.Care})
		} else {
			rem.Cubes = append(rem.Cubes, c)
		}
	}
	return quot, rem
}

// Divide computes the algebraic (weak) division cv / d: the largest q with
// cv = q*d + r algebraically. d must be cube-free for kernel theory but any
// cover is accepted.
func (cv Cover) Divide(d Cover) (quot, rem Cover) {
	if len(d.Cubes) == 0 {
		return Cover{N: cv.N}, cv.Clone()
	}
	// For each cube of d, the set of quotient cubes it admits; intersect.
	var qset map[Cube]bool
	for _, dc := range d.Cubes {
		cur := map[Cube]bool{}
		for _, c := range cv.Cubes {
			// c must contain dc's literals; quotient cube is c minus them.
			if c.Care&dc.Care == dc.Care && (c.Val^dc.Val)&dc.Care == 0 {
				q := Cube{Val: c.Val &^ dc.Care, Care: c.Care &^ dc.Care}
				cur[q] = true
			}
		}
		if qset == nil {
			qset = cur
		} else {
			for q := range qset {
				if !cur[q] {
					delete(qset, q)
				}
			}
		}
		if len(qset) == 0 {
			break
		}
	}
	quot = Cover{N: cv.N}
	for q := range qset {
		quot.Cubes = append(quot.Cubes, q)
	}
	sortCubes(quot.Cubes)
	// Remainder: cubes of cv not expressible as q*dc.
	used := map[Cube]bool{}
	for _, q := range quot.Cubes {
		for _, dc := range d.Cubes {
			prod := Cube{Val: q.Val | dc.Val, Care: q.Care | dc.Care}
			used[prod] = true
		}
	}
	rem = Cover{N: cv.N}
	for _, c := range cv.Cubes {
		if !used[c] {
			rem.Cubes = append(rem.Cubes, c)
		}
	}
	return quot, rem
}

// Kernel is a cube-free quotient of the cover by a cube (its co-kernel).
type Kernel struct {
	CoKernel Cube
	Kernel   Cover
}

// Kernels enumerates all kernels of the cover (including the cover itself if
// cube-free), via the classic recursive literal-division algorithm.
func (cv Cover) Kernels() []Kernel {
	seen := map[string]bool{}
	var out []Kernel
	var rec func(c Cover, co Cube, minVar int)
	rec = func(c Cover, co Cube, minVar int) {
		for v := minVar; v < cv.N; v++ {
			for _, pos := range []bool{true, false} {
				cnt := 0
				lit := Cube{}.WithLiteral(v, pos)
				for _, cb := range c.Cubes {
					if cb.Care&lit.Care == lit.Care && (cb.Val^lit.Val)&lit.Care == 0 {
						cnt++
					}
				}
				if cnt < 2 {
					continue
				}
				q, _ := c.DivideByLiteral(v, pos)
				// Make cube-free.
				common := q.commonLiterals()
				q2 := Cover{N: q.N}
				for _, cb := range q.Cubes {
					q2.Cubes = append(q2.Cubes, Cube{Val: cb.Val &^ common.Care, Care: cb.Care &^ common.Care})
				}
				newCo := Cube{
					Val:  co.Val | lit.Val | common.Val,
					Care: co.Care | lit.Care | common.Care,
				}
				key := q2.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, Kernel{CoKernel: newCo, Kernel: q2})
				}
				rec(q2, newCo, v+1)
			}
		}
	}
	if cv.CubeFree() && len(cv.Cubes) > 1 {
		out = append(out, Kernel{CoKernel: FullCube(), Kernel: cv.Clone()})
		seen[cv.String()] = true
	}
	rec(cv, FullCube(), 0)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Kernel.String() < out[j].Kernel.String()
	})
	return out
}

// BestDivisor returns the kernel (of size >= 2 cubes) whose extraction saves
// the most literals, or ok=false when no useful divisor exists. This drives
// decomposition candidate generation in technology mapping.
func (cv Cover) BestDivisor() (Cover, bool) {
	best := Cover{}
	bestGain := 0
	for _, k := range cv.Kernels() {
		if len(k.Kernel.Cubes) < 2 {
			continue
		}
		q, r := cv.Divide(k.Kernel)
		if len(q.Cubes) == 0 {
			continue
		}
		// Literal cost before vs after extraction (new variable costs 1 per
		// use plus the divisor's own literals).
		before := cv.Literals()
		after := k.Kernel.Literals() + q.Literals() + len(q.Cubes) + r.Literals()
		gain := before - after
		if gain > bestGain {
			bestGain = gain
			best = k.Kernel
		}
	}
	return best, bestGain > 0
}

func sortCubes(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Care != cs[j].Care {
			return cs[i].Care < cs[j].Care
		}
		return cs[i].Val < cs[j].Val
	})
}

// MaxLiteralsPerCube returns the largest cube size — the fan-in the AND
// plane needs.
func (cv Cover) MaxLiteralsPerCube() int {
	m := 0
	for _, c := range cv.Cubes {
		if l := bits.OnesCount64(c.Care); l > m {
			m = l
		}
	}
	return m
}
