package boolmin

import (
	"math/bits"
	"slices"
)

// Minimizer is a reusable scratch context for repeated Minimize calls. The
// package-level Minimize allocates fresh hash maps for every merge level of
// the Quine–McCluskey table; on synthesis workloads — one cover per signal
// per candidate state graph — that allocation churn dominates the actual
// merging. A Minimizer keeps the cube tables as plain sorted slices and
// reuses their backing arrays call to call.
//
// The produced cover is identical to Minimize's for every input: the prime
// set is the same (only its construction differs) and the covering step is
// shared. A Minimizer is not safe for concurrent use — give each worker its
// own.
type Minimizer struct {
	cur, next []Cube
	merged    []bool
	primesBuf []Cube
}

// Minimize is the pooled equivalent of the package-level Minimize: same
// cover, no per-level table allocations.
func (mz *Minimizer) Minimize(on, dc []uint64, n int) Cover {
	if len(on) == 0 {
		return Cover{N: n}
	}
	primes := mz.primes(on, dc, n)
	chosen := selectCover(primes, on, n)
	return Cover{N: n, Cubes: chosen}
}

// cubeCmp orders cubes by (Care, popcount(Val), Val): equal cubes become
// adjacent, cubes of one care mask form a run, and inside a run the
// popcount-adjacent sub-runs that Quine–McCluskey merges are contiguous.
func cubeCmp(a, b Cube) int {
	if a.Care != b.Care {
		if a.Care < b.Care {
			return -1
		}
		return 1
	}
	pa, pb := bits.OnesCount64(a.Val), bits.OnesCount64(b.Val)
	if pa != pb {
		return pa - pb
	}
	switch {
	case a.Val < b.Val:
		return -1
	case a.Val > b.Val:
		return 1
	}
	return 0
}

// sortDedup sorts cubes with cubeCmp and compacts duplicates in place.
func sortDedup(cubes []Cube) []Cube {
	slices.SortFunc(cubes, cubeCmp)
	w := 0
	for i, c := range cubes {
		if i > 0 && c == cubes[i-1] {
			continue
		}
		cubes[w] = c
		w++
	}
	return cubes[:w]
}

// primes computes the same prime-implicant set as the package-level Primes,
// replacing its per-level group/merge/dedup hash maps with runs over one
// sorted slice: cubes sharing a care mask are adjacent, and within such a
// run the popcount-p and popcount-p+1 sub-runs pair up for merging.
func (mz *Minimizer) primes(on, dc []uint64, n int) []Cube {
	mask := maskN(n)
	cur := mz.cur[:0]
	for _, m := range on {
		cur = append(cur, Cube{Val: m & mask, Care: mask})
	}
	for _, m := range dc {
		cur = append(cur, Cube{Val: m & mask, Care: mask})
	}
	primes := mz.primesBuf[:0]
	next := mz.next[:0]
	for len(cur) > 0 {
		cur = sortDedup(cur)
		if cap(mz.merged) < len(cur) {
			mz.merged = make([]bool, len(cur))
		}
		merged := mz.merged[:len(cur)]
		for i := range merged {
			merged[i] = false
		}
		next = next[:0]
		for lo := 0; lo < len(cur); {
			// One care-mask run: cur[lo:hi).
			hi := lo + 1
			for hi < len(cur) && cur[hi].Care == cur[lo].Care {
				hi++
			}
			// Popcount sub-runs inside it; adjacent sub-runs merge.
			for a := lo; a < hi; {
				b := a + 1
				popA := bits.OnesCount64(cur[a].Val)
				for b < hi && bits.OnesCount64(cur[b].Val) == popA {
					b++
				}
				c := b
				if b < hi && bits.OnesCount64(cur[b].Val) == popA+1 {
					for c < hi && bits.OnesCount64(cur[c].Val) == popA+1 {
						c++
					}
					for i := a; i < b; i++ {
						for j := b; j < c; j++ {
							if m, ok := Merge(cur[i], cur[j]); ok {
								next = append(next, m)
								merged[i] = true
								merged[j] = true
							}
						}
					}
				}
				a = b
			}
			lo = hi
		}
		for i, c := range cur {
			if !merged[i] {
				primes = append(primes, c)
			}
		}
		cur, next = next, cur[:0]
	}
	mz.cur, mz.next = cur[:0], next[:0]

	// Same final ordering and dominance dedup as the package-level Primes.
	slices.SortFunc(primes, func(a, b Cube) int {
		if la, lb := a.Literals(), b.Literals(); la != lb {
			return la - lb
		}
		if a.Care != b.Care {
			if a.Care < b.Care {
				return -1
			}
			return 1
		}
		switch {
		case a.Val < b.Val:
			return -1
		case a.Val > b.Val:
			return 1
		}
		return 0
	})
	mz.primesBuf = primes
	w := 0
	for _, c := range primes {
		dominated := false
		for _, d := range primes[:w] {
			if d.Covers(c) {
				dominated = true
				break
			}
		}
		if !dominated {
			primes[w] = c
			w++
		}
	}
	return primes[:w]
}
