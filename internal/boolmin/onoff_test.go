package boolmin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizeOnOffSmallUsesQMC(t *testing.T) {
	on := []uint64{0b0000, 0b0001, 0b0011}
	off := []uint64{0b1111, 0b1110}
	cv := MinimizeOnOff(on, off, 4)
	for _, m := range on {
		if !cv.Eval(m) {
			t.Fatalf("on minterm %b uncovered", m)
		}
	}
	for _, m := range off {
		if cv.Eval(m) {
			t.Fatalf("off minterm %b covered", m)
		}
	}
}

func TestMinimizeOnOffEmpty(t *testing.T) {
	cv := MinimizeOnOff(nil, []uint64{1}, 4)
	if len(cv.Cubes) != 0 {
		t.Fatal("empty on-set yields empty cover")
	}
	cvBig := MinimizeOnOff(nil, nil, 20)
	if len(cvBig.Cubes) != 0 {
		t.Fatal("empty on-set yields empty cover (wide)")
	}
}

// The expansion path (n > 14) must produce correct covers.
func TestMinimizeOnOffWide(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(5))
	var on, off []uint64
	seen := map[uint64]bool{}
	for len(on) < 40 {
		m := rng.Uint64() & (1<<n - 1)
		if !seen[m] {
			seen[m] = true
			on = append(on, m)
		}
	}
	for len(off) < 40 {
		m := rng.Uint64() & (1<<n - 1)
		if !seen[m] {
			seen[m] = true
			off = append(off, m)
		}
	}
	cv := MinimizeOnOff(on, off, n)
	for _, m := range on {
		if !cv.Eval(m) {
			t.Fatalf("on minterm %b uncovered", m)
		}
	}
	for _, m := range off {
		if cv.Eval(m) {
			t.Fatalf("off minterm %b covered", m)
		}
	}
	// Duplicated on-set minterms are deduplicated, not double-covered.
	cv2 := MinimizeOnOff(append(on, on...), off, n)
	if len(cv2.Cubes) > len(on) {
		t.Fatal("duplicates must not inflate the cover")
	}
}

func TestExpand(t *testing.T) {
	// Expanding 0000 against off {1111} can drop three literals but not all
	// four.
	c := Expand(0b0000, []uint64{0b1111}, 4, 0)
	if c.Care == 0 {
		t.Fatal("expansion must stop before covering the off-set")
	}
	if c.Contains(0b1111) {
		t.Fatal("expanded cube covers the off minterm")
	}
	if !c.Contains(0b0000) {
		t.Fatal("expanded cube must keep its seed")
	}
	// The keep mask pins a literal.
	k := Expand(0b0101, nil, 4, 1<<2)
	if k.Care&(1<<2) == 0 {
		t.Fatal("kept literal must remain")
	}
	if k.Care != 1<<2 {
		t.Fatalf("all other literals should drop with empty off-set: %s", k.String(4))
	}
}

// Property: wide-path covers are always correct separations.
func TestQuickMinimizeOnOffWide(t *testing.T) {
	const n = 15
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assign := map[uint64]bool{}
		var on, off []uint64
		for i := 0; i < 60; i++ {
			m := rng.Uint64() & (1<<n - 1)
			if _, dup := assign[m]; dup {
				continue
			}
			v := rng.Intn(2) == 0
			assign[m] = v
			if v {
				on = append(on, m)
			} else {
				off = append(off, m)
			}
		}
		cv := MinimizeOnOff(on, off, n)
		for _, m := range on {
			if !cv.Eval(m) {
				return false
			}
		}
		for _, m := range off {
			if cv.Eval(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskN64(t *testing.T) {
	if maskN(64) != ^uint64(0) {
		t.Fatal("64-variable mask must be all ones")
	}
	c := MintermCube(^uint64(0), 64)
	if !c.Contains(^uint64(0)) || c.Contains(0) {
		t.Fatal("64-var minterm cube broken")
	}
}
