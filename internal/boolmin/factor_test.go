package boolmin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// cover builds a cover from positional patterns like "1-0".
func cover(t *testing.T, pats ...string) Cover {
	t.Helper()
	n := len(pats[0])
	cv := Cover{N: n}
	for _, p := range pats {
		c := FullCube()
		for i, ch := range p {
			switch ch {
			case '1':
				c = c.WithLiteral(i, true)
			case '0':
				c = c.WithLiteral(i, false)
			}
		}
		cv.Cubes = append(cv.Cubes, c)
	}
	return cv
}

func TestDivideByLiteral(t *testing.T) {
	// f = ab + ac + d  (vars a,b,c,d)
	f := cover(t, "11--", "1-1-", "---1")
	q, r := f.DivideByLiteral(0, true)
	if len(q.Cubes) != 2 || len(r.Cubes) != 1 {
		t.Fatalf("q=%s r=%s", q.String(), r.String())
	}
	// q = b + c
	if got := q.Expr([]string{"a", "b", "c", "d"}); got != "b + c" {
		t.Fatalf("quotient = %q", got)
	}
}

func TestDivide(t *testing.T) {
	// f = ab + ac + db + dc + e = (a+d)(b+c) + e
	names := []string{"a", "b", "c", "d", "e"}
	f := cover(t, "11---", "1-1--", "-1-1-", "--11-", "----1")
	d := cover(t, "-1---", "--1--") // b + c
	q, r := f.Divide(d)
	if got := q.Expr(names); got != "a + d" {
		t.Fatalf("quotient = %q", got)
	}
	if got := r.Expr(names); got != "e" {
		t.Fatalf("remainder = %q", got)
	}
	// Dividing by an empty cover returns everything as remainder.
	q2, r2 := f.Divide(Cover{N: 5})
	if len(q2.Cubes) != 0 || len(r2.Cubes) != len(f.Cubes) {
		t.Fatal("division by empty cover broken")
	}
}

func TestKernels(t *testing.T) {
	// f = adf + aef + bdf + bef + cdf + cef + g
	//   = ((a+b+c)(d+e))f + g ; kernels include a+b+c and d+e.
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	f := cover(t,
		"1--1-1-", "1---11-", "-1-1-1-", "-1--11-", "--11-1-", "--1-11-", "------1")
	ks := f.Kernels()
	want := map[string]bool{"a + b + c": false, "d + e": false}
	for _, k := range ks {
		e := k.Kernel.Expr(names)
		if _, ok := want[e]; ok {
			want[e] = true
		}
	}
	for e, found := range want {
		if !found {
			t.Fatalf("kernel %q not found; got %d kernels", e, len(ks))
		}
	}
}

func TestCubeFree(t *testing.T) {
	if !cover(t, "1--", "-1-").CubeFree() {
		t.Fatal("a + b is cube-free")
	}
	if cover(t, "11-", "1-1").CubeFree() {
		t.Fatal("ab + ac is not cube-free (common a)")
	}
	if !(Cover{N: 3}).CubeFree() {
		t.Fatal("empty cover is cube-free")
	}
}

func TestBestDivisor(t *testing.T) {
	// f = ab + ac + db + dc: extracting (b+c) saves literals.
	f := cover(t, "11--", "1-1-", "-11-", "-1-1")
	// Note: "-11-" is b c? careful: positions a,b,c,d. Build explicitly:
	f = cover(t, "11--", "1-1-", "-1-1", "--11") // ab + ac + bd + cd
	d, ok := f.BestDivisor()
	if !ok {
		t.Fatal("expected a useful divisor")
	}
	got := d.Expr([]string{"a", "b", "c", "d"})
	if got != "b + c" && got != "a + d" {
		t.Fatalf("divisor = %q", got)
	}
}

func TestBestDivisorNoneForFlat(t *testing.T) {
	f := cover(t, "1---", "-1--", "--1-")
	if _, ok := f.BestDivisor(); ok {
		t.Fatal("a + b + c has no useful divisor")
	}
}

// Property: algebraic division invariant f == q*d + r as Boolean functions,
// on random covers.
func TestQuickDivisionInvariant(t *testing.T) {
	names := 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cv := randCover(rng, names, 1+rng.Intn(6))
		d := randCover(rng, names, 1+rng.Intn(3))
		q, r := cv.Divide(d)
		for m := uint64(0); m < uint64(1)<<uint(names); m++ {
			qd := false
			if q.Eval(m) && d.Eval(m) {
				qd = true
			}
			lhs := cv.Eval(m)
			rhs := qd || r.Eval(m)
			// Algebraic identity gives f ⊇ q*d + r is exact equality.
			if lhs != rhs && (qd || r.Eval(m)) != lhs {
				// q*d+r may under-approximate only if division dropped
				// cubes, which the algorithm never does: require equality.
				return false
			}
			if lhs != rhs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randCover(rng *rand.Rand, n, cubes int) Cover {
	cv := Cover{N: n}
	for i := 0; i < cubes; i++ {
		c := FullCube()
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				c = c.WithLiteral(v, true)
			case 1:
				c = c.WithLiteral(v, false)
			}
		}
		cv.Cubes = append(cv.Cubes, c)
	}
	return cv
}
