package boolmin

import (
	"math/bits"
	"sort"
)

// MinimizeOnOff minimizes a function given by explicit on-set and off-set
// minterms; everything else is don't-care. For small variable counts it
// enumerates the don't-care set and runs exact Quine–McCluskey; for larger
// ones it uses espresso-style expand/irredundant-cover against the off-set,
// which never enumerates the 2^n space.
func MinimizeOnOff(on, off []uint64, n int) Cover {
	if len(on) == 0 {
		return Cover{N: n}
	}
	if n <= 14 {
		return Minimize(on, DontCares(on, off, n), n)
	}
	return expandCover(on, off, n)
}

// DontCares enumerates, in increasing minterm order, the 2^n \ (on ∪ off)
// don't-care set of an incompletely specified function. A specified-minterm
// bitset replaces the hash-set membership tests this hot path used to pay
// for: at the n <= 14 widths it serves, the bitset is at most 2 KiB. For a
// state graph every signal shares one reachable-code set, so callers
// deriving many covers over the same graph compute this once and feed
// Minimize directly.
func DontCares(on, off []uint64, n int) []uint64 {
	size := uint64(1) << uint(n)
	mask := maskN(n)
	spec := make([]uint64, (size+63)/64)
	for _, m := range on {
		m &= mask
		spec[m/64] |= 1 << (m % 64)
	}
	for _, m := range off {
		m &= mask
		spec[m/64] |= 1 << (m % 64)
	}
	dcN := int(size) - len(on) - len(off)
	if dcN < 0 {
		dcN = 0 // duplicate minterms in on/off; the append below still works
	}
	dc := make([]uint64, 0, dcN)
	for w, bitsw := range spec {
		free := ^bitsw
		if uint64(w+1)*64 > size {
			free &= (1 << (size % 64)) - 1
		}
		for free != 0 {
			b := free & -free
			dc = append(dc, uint64(w)*64+uint64(bits.TrailingZeros64(b)))
			free &^= b
		}
	}
	return dc
}

// Expand returns a maximal implicant containing minterm m that avoids every
// off-set minterm, dropping literals in ascending variable order. Literals
// whose variable bit is set in keep are never dropped — used to force a
// specific wire into the cube (resubstitution with acknowledgment).
func Expand(m uint64, off []uint64, n int, keep uint64) Cube {
	mask := maskN(n)
	c := Cube{Val: m & mask, Care: mask}
	for v := 0; v < n; v++ {
		bit := uint64(1) << uint(v)
		if keep&bit != 0 || c.Care&bit == 0 {
			continue
		}
		try := Cube{Val: c.Val &^ bit, Care: c.Care &^ bit}
		clash := false
		for _, o := range off {
			if try.Contains(o & mask) {
				clash = true
				break
			}
		}
		if !clash {
			c = try
		}
	}
	return c
}

// expandCover generates maximally expanded implicants from each on-set
// minterm (two literal orders for diversity), removes dominated cubes, and
// greedily covers the on-set.
func expandCover(on, off []uint64, n int) Cover {
	mask := maskN(n)
	seen := map[uint64]bool{}
	var uniq []uint64
	for _, m := range on {
		m &= mask
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })

	clashesOff := func(c Cube) bool {
		for _, m := range off {
			if c.Contains(m & mask) {
				return true
			}
		}
		return false
	}
	expand := func(m uint64, ascending bool) Cube {
		c := Cube{Val: m, Care: mask}
		for k := 0; k < n; k++ {
			v := k
			if !ascending {
				v = n - 1 - k
			}
			bit := uint64(1) << uint(v)
			if c.Care&bit == 0 {
				continue
			}
			try := Cube{Val: c.Val &^ bit, Care: c.Care &^ bit}
			if !clashesOff(try) {
				c = try
			}
		}
		return c
	}

	cubeSet := map[Cube]bool{}
	var cubes []Cube
	for _, m := range uniq {
		for _, asc := range []bool{true, false} {
			c := expand(m, asc)
			if !cubeSet[c] {
				cubeSet[c] = true
				cubes = append(cubes, c)
			}
		}
	}
	// Drop dominated cubes.
	sort.Slice(cubes, func(i, j int) bool { return cubes[i].Literals() < cubes[j].Literals() })
	var cands []Cube
	for _, c := range cubes {
		dominated := false
		for _, d := range cands {
			if d.Covers(c) {
				dominated = true
				break
			}
		}
		if !dominated {
			cands = append(cands, c)
		}
	}
	// Greedy cover of the on-set.
	remaining := map[uint64]bool{}
	for _, m := range uniq {
		remaining[m] = true
	}
	var pick []Cube
	for len(remaining) > 0 {
		best, bestGain := -1, 0
		for i, c := range cands {
			gain := 0
			for m := range remaining {
				if c.Contains(m) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		pick = append(pick, cands[best])
		for m := range remaining {
			if cands[best].Contains(m) {
				delete(remaining, m)
			}
		}
	}
	sortCubes(pick)
	return Cover{N: n, Cubes: pick}
}
