package boolmin

import (
	"math/rand"
	"reflect"
	"testing"
)

// randFunc draws a random incompletely specified function: each of the 2^n
// minterms goes to on/off/dc with the given on and off probabilities.
func randFunc(rng *rand.Rand, n int, pOn, pOff float64) (on, off []uint64) {
	for m := uint64(0); m < uint64(1)<<uint(n); m++ {
		switch r := rng.Float64(); {
		case r < pOn:
			on = append(on, m)
		case r < pOn+pOff:
			off = append(off, m)
		}
	}
	return on, off
}

// TestMinimizerMatchesMinimize pins the Minimizer contract: for any input,
// one reused Minimizer produces exactly the cover of the allocating
// package-level pipeline — same primes, same selection.
func TestMinimizerMatchesMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var mz Minimizer
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7) // 2..8 variables
		on, off := randFunc(rng, n, 0.3, 0.4)
		dc := DontCares(on, off, n)
		want := Minimize(on, dc, n)
		got := mz.Minimize(on, dc, n)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (n=%d): pooled cover %v, want %v\non=%v dc=%v",
				trial, n, got.Cubes, want.Cubes, on, dc)
		}
	}
}

// TestDontCares pins the bitset enumeration against the definition.
func TestDontCares(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		on, off := randFunc(rng, n, 0.25, 0.25)
		inOn := map[uint64]bool{}
		for _, m := range on {
			inOn[m] = true
		}
		inOff := map[uint64]bool{}
		for _, m := range off {
			inOff[m] = true
		}
		var want []uint64
		for m := uint64(0); m < uint64(1)<<uint(n); m++ {
			if !inOn[m] && !inOff[m] {
				want = append(want, m)
			}
		}
		got := DontCares(on, off, n)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d (n=%d): dc %v, want %v", trial, n, got, want)
		}
	}
}

func BenchmarkMinimize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	on, off := randFunc(rng, 9, 0.3, 0.3)
	dc := DontCares(on, off, 9)
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Minimize(on, dc, 9)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		var mz Minimizer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mz.Minimize(on, dc, 9)
		}
	})
}
