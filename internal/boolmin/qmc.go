package boolmin

import (
	"math/bits"
	"sort"
)

// Minimize computes a minimal (exact for small instances, near-minimal
// otherwise) sum-of-products cover of the incompletely specified function
// with the given on-set and don't-care minterms over n variables, using
// Quine–McCluskey prime generation and Petrick/greedy covering.
//
// The result covers every on-set minterm, covers no off-set minterm, and
// consists of prime implicants of on ∪ dc.
func Minimize(on, dc []uint64, n int) Cover {
	if len(on) == 0 {
		return Cover{N: n}
	}
	primes := Primes(on, dc, n)
	chosen := selectCover(primes, on, n)
	return Cover{N: n, Cubes: chosen}
}

// Primes generates all prime implicants of the function whose on-set is
// on ∪ dc (don't-cares participate in merging, as usual).
func Primes(on, dc []uint64, n int) []Cube {
	mask := maskN(n)
	current := map[Cube]bool{} // cube -> "was merged" flag comes later
	for _, m := range on {
		current[Cube{Val: m & mask, Care: mask}] = true
	}
	for _, m := range dc {
		current[Cube{Val: m & mask, Care: mask}] = true
	}

	var primes []Cube
	for len(current) > 0 {
		// Group cubes by care mask and popcount for the adjacency scan.
		merged := map[Cube]bool{}
		next := map[Cube]bool{}
		groups := map[uint64][]Cube{}
		for c := range current {
			groups[c.Care] = append(groups[c.Care], c)
		}
		for _, cubes := range groups {
			sort.Slice(cubes, func(i, j int) bool {
				pi, pj := bits.OnesCount64(cubes[i].Val), bits.OnesCount64(cubes[j].Val)
				if pi != pj {
					return pi < pj
				}
				return cubes[i].Val < cubes[j].Val
			})
			// Only cubes whose popcounts differ by one can merge.
			byPop := map[int][]Cube{}
			for _, c := range cubes {
				p := bits.OnesCount64(c.Val)
				byPop[p] = append(byPop[p], c)
			}
			for p, lo := range byPop {
				hi := byPop[p+1]
				for _, a := range lo {
					for _, b := range hi {
						if m, ok := Merge(a, b); ok {
							next[m] = true
							merged[a] = true
							merged[b] = true
						}
					}
				}
			}
		}
		for c := range current {
			if !merged[c] {
				primes = append(primes, c)
			}
		}
		current = next
	}
	// Deduplicate and drop primes covered by other primes (can happen when
	// don't-cares create containment between different-order merges).
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].Literals() != primes[j].Literals() {
			return primes[i].Literals() < primes[j].Literals()
		}
		if primes[i].Care != primes[j].Care {
			return primes[i].Care < primes[j].Care
		}
		return primes[i].Val < primes[j].Val
	})
	var out []Cube
	for _, c := range primes {
		dominated := false
		for _, d := range out {
			if d.Covers(c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

// selectCover picks a subset of primes covering every on-set minterm:
// essential primes first, then Petrick's method when the residual problem is
// small, else greedy set cover.
func selectCover(primes []Cube, on []uint64, n int) []Cube {
	mask := maskN(n)
	// coverers[i] = indexes of primes covering on[i].
	coverers := make([][]int, len(on))
	for i, m := range on {
		for pi, p := range primes {
			if p.Contains(m & mask) {
				coverers[i] = append(coverers[i], pi)
			}
		}
	}
	chosen := map[int]bool{}
	covered := make([]bool, len(on))
	// Essential primes.
	for _, cs := range coverers {
		if len(cs) == 1 {
			chosen[cs[0]] = true
		}
	}
	markCovered := func() {
		for i, m := range on {
			if covered[i] {
				continue
			}
			for pi := range chosen {
				if primes[pi].Contains(m & mask) {
					covered[i] = true
					break
				}
			}
		}
	}
	markCovered()

	var residual []int
	for i := range on {
		if !covered[i] {
			residual = append(residual, i)
		}
	}
	if len(residual) > 0 {
		// Candidate primes for the residual.
		candSet := map[int]bool{}
		for _, i := range residual {
			for _, pi := range coverers[i] {
				candSet[pi] = true
			}
		}
		var cands []int
		for pi := range candSet {
			cands = append(cands, pi)
		}
		sort.Ints(cands)
		var pick []int
		if len(cands) <= 16 && len(residual) <= 24 {
			pick = petrick(primes, cands, residual, coverers)
		} else {
			pick = greedyCover(primes, cands, residual, coverers)
		}
		for _, pi := range pick {
			chosen[pi] = true
		}
	}

	var out []Cube
	var idx []int
	for pi := range chosen {
		idx = append(idx, pi)
	}
	sort.Ints(idx)
	for _, pi := range idx {
		out = append(out, primes[pi])
	}
	return out
}

// petrick finds a minimum-cost subset of cands covering all residual
// minterms by exhaustive search over subsets ordered by cost (branch and
// bound on total literal count, then cube count).
func petrick(primes []Cube, cands, residual []int, coverers [][]int) []int {
	best := append([]int(nil), cands...) // worst case: all
	bestCost := coverCost(primes, best)
	var cur []int
	var rec func(ri int)
	covered := map[int]int{} // residual index -> count of chosen coverers
	rec = func(ri int) {
		if coverCost(primes, cur) >= bestCost {
			return
		}
		// Find first uncovered residual minterm.
		for ; ri < len(residual); ri++ {
			if covered[ri] == 0 {
				break
			}
		}
		if ri == len(residual) {
			best = append([]int(nil), cur...)
			bestCost = coverCost(primes, cur)
			return
		}
		for _, pi := range coverers[residual[ri]] {
			cur = append(cur, pi)
			var bumped []int
			for rj := range residual {
				for _, c := range coverers[residual[rj]] {
					if c == pi {
						covered[rj]++
						bumped = append(bumped, rj)
						break
					}
				}
			}
			rec(ri + 1)
			for _, rj := range bumped {
				covered[rj]--
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	sort.Ints(best)
	return best
}

func coverCost(primes []Cube, pick []int) int {
	cost := 0
	for _, pi := range pick {
		cost += primes[pi].Literals() + 1
	}
	return cost
}

func greedyCover(primes []Cube, cands, residual []int, coverers [][]int) []int {
	remaining := map[int]bool{}
	for _, r := range residual {
		remaining[r] = true
	}
	coversOf := map[int][]int{} // prime -> residual minterm list
	for _, r := range residual {
		for _, pi := range coverers[r] {
			coversOf[pi] = append(coversOf[pi], r)
		}
	}
	var pick []int
	for len(remaining) > 0 {
		bestPi, bestGain := -1, -1
		for _, pi := range cands {
			gain := 0
			for _, r := range coversOf[pi] {
				if remaining[r] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && bestPi >= 0 && pi < bestPi) {
				bestPi, bestGain = pi, gain
			}
		}
		if bestPi < 0 || bestGain == 0 {
			break // unreachable if coverers complete
		}
		pick = append(pick, bestPi)
		for _, r := range coversOf[bestPi] {
			delete(remaining, r)
		}
	}
	sort.Ints(pick)
	return pick
}

// Complement computes a cover of the complement of the function given by
// on-set/dc minterms (the dc minterms remain free): it simply minimizes the
// off-set. Intended for deriving reset networks of latches.
func Complement(on, dc []uint64, n int) Cover {
	inOn := map[uint64]bool{}
	for _, m := range on {
		inOn[m&maskN(n)] = true
	}
	inDC := map[uint64]bool{}
	for _, m := range dc {
		inDC[m&maskN(n)] = true
	}
	var off []uint64
	for m := uint64(0); m < uint64(1)<<uint(n); m++ {
		if !inOn[m] && !inDC[m] {
			off = append(off, m)
		}
	}
	return Minimize(off, dc, n)
}
