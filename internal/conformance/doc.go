// Package conformance is the cross-engine differential test layer: every
// state-space engine of Section 2.2 — explicit enumeration (sequential and
// parallel at several worker counts), BDD-based symbolic traversal (with
// and without garbage collection and dynamic reordering), and stubborn-set
// partial-order reduction — is checked against every other on a shared
// corpus of testdata specifications and generated families.
//
// The agreed-on observables are the reachable state count, the set of
// deadlocked markings (which stubborn sets preserve exactly), and, for STG
// models, the Complete State Coding verdict. The suite is table-driven and
// runs under plain `go test ./...`; scripts/verify.sh additionally runs it
// under the race detector.
package conformance
