package conformance

import (
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
)

// model is one corpus entry. STG-backed models additionally get the CSC
// verdict cross-check.
type model struct {
	name   string
	net    *petri.Net
	g      *stg.STG // nil for plain Petri net families
	unsafe bool     // net is not 1-safe: symbolic (1-safe semantics) is skipped
}

// corpus loads every .g specification from testdata plus capped instances
// of the generated families of internal/gen.
func corpus(t *testing.T) []model {
	t.Helper()
	var models []model
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatal("no testdata specifications found")
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := stg.ParseG(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := filepath.Base(path)
		models = append(models, model{name: name, net: g.Net, g: g})
	}
	// Generated families, capped so the suite stays fast under -race.
	models = append(models,
		model{name: "gen/toggles-6", net: gen.IndependentToggles(6)},
		model{name: "gen/muller-4", net: gen.MullerPipeline(4).Net, g: gen.MullerPipeline(4)},
		model{name: "gen/ring-8-1", net: gen.MarkedGraphRing(8, 1)},
		// Tokens can bunch in one place, so this ring is not 1-safe and the
		// symbolic engine (1-safe no-contact semantics) is skipped for it.
		model{name: "gen/ring-8-4", net: gen.MarkedGraphRing(8, 4), unsafe: true},
		model{name: "gen/phil-4", net: gen.Philosophers(4)},
	)
	return models
}

// deadlockKeys canonicalizes a deadlock marking set for comparison.
func deadlockKeys(markings []petri.Marking) []string {
	keys := make([]string, len(markings))
	for i, m := range markings {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConformanceEngines runs every engine on every corpus model and
// asserts pairwise agreement on state counts and deadlock sets.
func TestConformanceEngines(t *testing.T) {
	for _, mdl := range corpus(t) {
		mdl := mdl
		t.Run(mdl.name, func(t *testing.T) {
			t.Parallel()
			// Reference: sequential explicit enumeration.
			ref, err := reach.Explore(mdl.net, reach.Options{})
			if err != nil {
				t.Fatalf("explicit: %v", err)
			}
			refDead := make([]petri.Marking, 0, 4)
			for _, s := range ref.Deadlocks() {
				refDead = append(refDead, ref.Markings[s])
			}
			refKeys := deadlockKeys(refDead)

			// Parallel explicit at several worker counts: bit-identical
			// graphs, so counts, arcs and deadlock states must all agree.
			for _, w := range []int{1, 2, 4} {
				rg, err := reach.Explore(mdl.net, reach.Options{Workers: w})
				if err != nil {
					t.Fatalf("explicit w=%d: %v", w, err)
				}
				if rg.NumStates() != ref.NumStates() || rg.NumArcs() != ref.NumArcs() {
					t.Fatalf("explicit w=%d: %d states/%d arcs, want %d/%d",
						w, rg.NumStates(), rg.NumArcs(), ref.NumStates(), ref.NumArcs())
				}
				var dead []petri.Marking
				for _, s := range rg.Deadlocks() {
					dead = append(dead, rg.Markings[s])
				}
				if !stringsEqual(deadlockKeys(dead), refKeys) {
					t.Fatalf("explicit w=%d: deadlock set differs", w)
				}
			}

			// Symbolic traversal, plain and with a deliberately tiny GC
			// threshold plus sifting, so collection and reordering run on
			// real workloads inside the differential check.
			symVariants := []struct {
				tag  string
				opts symbolic.Options
			}{
				{"plain", symbolic.Options{}},
				{"gc+sift", symbolic.Options{GCThreshold: 256, Sift: true}},
				// Parallel image computation: canonicity makes the fixpoint
				// bit-identical to the sequential kernel's at any worker
				// count, so the same exact counts must come back.
				{"par-2", symbolic.Options{Workers: 2}},
				{"par-4", symbolic.Options{Workers: 4}},
				{"par-4+gc", symbolic.Options{Workers: 4, GCThreshold: 256}},
			}
			if mdl.unsafe {
				symVariants = nil
			}
			for _, sym := range symVariants {
				res, err := symbolic.ReachOpts(mdl.net, sym.opts)
				if err != nil {
					t.Fatalf("symbolic/%s: %v", sym.tag, err)
				}
				want := big.NewInt(int64(ref.NumStates()))
				if res.CountExact.Cmp(want) != 0 {
					t.Fatalf("symbolic/%s: %s states, explicit found %s",
						sym.tag, res.CountExact, want)
				}
				deadRef, _ := symbolic.DeadStates(mdl.net, res)
				deadCount := res.M.SatCountBig(deadRef)
				if deadCount.Cmp(big.NewInt(int64(len(refKeys)))) != 0 {
					t.Fatalf("symbolic/%s: %s deadlocks, explicit found %d",
						sym.tag, deadCount, len(refKeys))
				}
			}

			// Stubborn-set reduction preserves the exact deadlock marking
			// set while visiting at most as many states.
			red, err := stubborn.Explore(mdl.net, stubborn.Options{})
			if err != nil {
				t.Fatalf("stubborn: %v", err)
			}
			if !stringsEqual(deadlockKeys(red.Deadlocks), refKeys) {
				t.Fatalf("stubborn: deadlock set %v, explicit %v",
					deadlockKeys(red.Deadlocks), refKeys)
			}
			if red.States > ref.NumStates() {
				t.Fatalf("stubborn explored %d states, full space has %d",
					red.States, ref.NumStates())
			}
		})
	}
}

// TestConformanceCSC checks the Complete State Coding verdict agrees
// between the sequential and parallel state-graph builders on every
// STG-backed model.
func TestConformanceCSC(t *testing.T) {
	for _, mdl := range corpus(t) {
		if mdl.g == nil {
			continue
		}
		mdl := mdl
		t.Run(mdl.name, func(t *testing.T) {
			t.Parallel()
			ref, err := reach.BuildSG(mdl.g, reach.Options{})
			if err != nil {
				t.Fatalf("BuildSG: %v", err)
			}
			wantCSC := ref.HasCSC()
			wantConf := len(ref.CSCConflicts())
			for _, w := range []int{2, 4} {
				sg, err := reach.BuildSG(mdl.g, reach.Options{Workers: w})
				if err != nil {
					t.Fatalf("BuildSG w=%d: %v", w, err)
				}
				if sg.HasCSC() != wantCSC || len(sg.CSCConflicts()) != wantConf {
					t.Fatalf("BuildSG w=%d: CSC=%v (%d conflicts), sequential CSC=%v (%d conflicts)",
						w, sg.HasCSC(), len(sg.CSCConflicts()), wantCSC, wantConf)
				}
			}
		})
	}
}

// TestConformanceCorpusSize pins the acceptance floor: at least 4 engines
// on at least 6 models.
func TestConformanceCorpusSize(t *testing.T) {
	models := corpus(t)
	if len(models) < 6 {
		t.Fatalf("conformance corpus has %d models, want >= 6", len(models))
	}
	// Engines exercised above: explicit, parallel explicit, symbolic
	// (plain and gc+sift kernels), stubborn.
	fmt.Fprintf(os.Stderr, "conformance: %d models x {explicit, parallel(1/2/4), symbolic(plain, gc+sift), stubborn}\n",
		len(models))
}
