package conformance

import (
	"testing"

	"repro/internal/prop"
	"repro/internal/reach"
	"repro/internal/stg"
)

func hasToggle(g *stg.STG) bool {
	for _, l := range g.Labels {
		if l.Sig >= 0 && l.Dir == stg.Toggle {
			return true
		}
	}
	return false
}

// TestPropConformance is the differential for the property layer: on every
// STG-backed corpus model the general checker's Standard() verdicts must
// match the dedicated implementability analyses, the explicit engine must
// be bit-identical at every worker count, the symbolic engine must agree
// with the explicit one, and every emitted trace must replay as a genuine
// run of the token game.
func TestPropConformance(t *testing.T) {
	for _, mdl := range corpus(t) {
		if mdl.g == nil {
			continue
		}
		mdl := mdl
		t.Run(mdl.name, func(t *testing.T) {
			t.Parallel()
			sg, serr := reach.BuildSG(mdl.g, reach.Options{})
			if serr != nil {
				// Dedicated analysis rejects the model (e.g. inconsistent):
				// the property checker must reject it too, on both engines.
				for _, eng := range []prop.Engine{prop.EngineExplicit, prop.EngineSymbolic} {
					if _, err := prop.Check(mdl.g, prop.Standard(), prop.Options{Engine: eng}); err == nil {
						t.Errorf("%s accepts a model BuildSG rejects (%v)", eng, serr)
					}
				}
				return
			}
			imp := sg.CheckImplementability()
			want := map[string]bool{
				"deadlock_free": imp.DeadlockFree,
				"usc":           imp.USC,
				"csc":           imp.CSC,
				"persistent":    imp.Persistent,
			}

			check := func(rep *prop.Report) {
				t.Helper()
				for _, v := range rep.Verdicts {
					if v.Status == prop.StatusUnknown {
						t.Errorf("%s/%s: unknown verdict without a budget", rep.Engine, v.Property.Name)
						continue
					}
					if got := v.Status == prop.StatusHolds; got != want[v.Property.Name] {
						t.Errorf("%s/%s: checker says %v, dedicated analysis says %v",
							rep.Engine, v.Property.Name, v.Status, want[v.Property.Name])
					}
					if v.Status == prop.StatusViolated && v.Trace == nil {
						t.Errorf("%s/%s: violated without a counterexample", rep.Engine, v.Property.Name)
					}
					if v.Trace != nil {
						if err := prop.ReplayTrace(mdl.g, v.Trace); err != nil {
							t.Errorf("%s/%s: trace does not replay: %v", rep.Engine, v.Property.Name, err)
						}
					}
				}
			}

			var first *prop.Report
			for _, workers := range []int{1, 2, 4} {
				rep, err := prop.Check(mdl.g, prop.Standard(), prop.Options{
					Engine: prop.EngineExplicit, Workers: workers,
				})
				if err != nil {
					t.Fatalf("explicit workers=%d: %v", workers, err)
				}
				check(rep)
				if first == nil {
					first = rep
					continue
				}
				// Parallel exploration is bit-identical by construction:
				// verdicts AND traces must match the sequential run.
				for i, v := range rep.Verdicts {
					fv := first.Verdicts[i]
					if v.Status != fv.Status {
						t.Errorf("workers=%d/%s: status %v vs sequential %v",
							workers, v.Property.Name, v.Status, fv.Status)
					}
					got, wantEv := "", ""
					if v.Trace != nil {
						got = v.Trace.Events()
					}
					if fv.Trace != nil {
						wantEv = fv.Trace.Events()
					}
					if got != wantEv {
						t.Errorf("workers=%d/%s: trace %q vs sequential %q",
							workers, v.Property.Name, got, wantEv)
					}
				}
			}

			if mdl.unsafe || hasToggle(mdl.g) {
				return // outside the symbolic engine's 1-safe rise/fall domain
			}
			sym, err := prop.Check(mdl.g, prop.Standard(), prop.Options{Engine: prop.EngineSymbolic})
			if err != nil {
				t.Fatalf("symbolic: %v", err)
			}
			check(sym)
			for i, v := range sym.Verdicts {
				if v.Status != first.Verdicts[i].Status {
					t.Errorf("symbolic/%s: %v, explicit says %v",
						v.Property.Name, v.Status, first.Verdicts[i].Status)
				}
			}
			if sym.States.Cmp(first.States) != 0 {
				t.Errorf("state counts differ: symbolic %s, explicit %s", sym.States, first.States)
			}
		})
	}
}
