// Package prop implements a small temporal-property language over the
// state space of a signal transition graph, in the spirit of the TLA+
// AsyncInterface invariants (Spec => []TypeInvariant): named boolean
// formulas over signal values, place markings and event enabledness,
// closed under the CTL operators AG and EF.
//
// A property file is a sequence of lines
//
//	prop <name> : <formula>        # comment
//
// where formulas are built from atoms
//
//	<signal>          value of a signal (1 = high)
//	marked(<place>)   the place holds a token
//	excited(<sig>)    some edge of the signal is enabled
//	enabled(<edge>)   a specific edge (a+, a-, a~) is enabled
//	deadlock          no transition is enabled
//	persistent        no enabled non-input event can be disabled
//	persistent(<sig>) persistency restricted to edges of one signal
//	usc_conflict      another reachable state shares this state's code
//	csc_conflict      a USC conflict with differing non-input excitation
//	true, false
//
// with connectives !, &, |, ->, <-> and the temporal operators AG
// ("always globally") and EF ("possibly eventually"). The templates
// deadlock_free and live(<sig>) expand to AG !deadlock and
// AG EF excited(<sig>). A formula containing no temporal operator is an
// implicit invariant: it is checked as AG <formula>.
//
// Two engines evaluate properties — an explicit one over the enumerated
// state graph (reach.BuildSG) and a symbolic one running BDD fixpoints on
// the net-level encoding of internal/symbolic — and both extract
// counterexample/witness traces replayable as waveforms. The classic
// implementability suite of Section 2.1 (deadlock-freedom, USC, CSC,
// persistency) is exposed as the library instances in Standard.
package prop

import (
	"fmt"
	"strings"

	"repro/internal/stg"
)

// Op enumerates formula node kinds.
type Op int

const (
	// Atoms.
	OpTrue Op = iota
	OpFalse
	OpSignal     // Name: value of a signal
	OpMarked     // Name: a place holds a token
	OpExcited    // Name: some edge of the signal is enabled
	OpEnabled    // Name+Dir: a specific edge is enabled
	OpDeadlock   // no transition enabled
	OpPersistent // Name ("" = every non-input event) is never disabled
	OpUSC        // the state shares its code with another reachable state
	OpCSC        // a USC conflict with differing non-input excitation
	// Connectives.
	OpNot
	OpAnd
	OpOr
	OpImplies
	OpIff
	// Temporal operators.
	OpAG
	OpEF
)

// Formula is a node of the property AST. Connectives use L (and R for the
// binary ones); atoms use Name (and Dir for OpEnabled).
type Formula struct {
	Op   Op
	Name string
	Dir  stg.Dir
	L, R *Formula
}

// Property is a named formula.
type Property struct {
	Name string
	F    *Formula
}

// Temporal reports whether the formula contains a temporal operator. A
// formula without one is checked as an implicit AG invariant.
func (f *Formula) Temporal() bool {
	if f == nil {
		return false
	}
	return f.Op == OpAG || f.Op == OpEF || f.L.Temporal() || f.R.Temporal()
}

// Operator precedence, loosest to tightest: <-> (1), -> (2), | (3), & (4),
// unary !/AG/EF (5), atoms (6). -> associates to the right, <->, | and & to
// the left.
func (f *Formula) prec() int {
	switch f.Op {
	case OpIff:
		return 1
	case OpImplies:
		return 2
	case OpOr:
		return 3
	case OpAnd:
		return 4
	case OpNot, OpAG, OpEF:
		return 5
	default:
		return 6
	}
}

// String renders the formula in the canonical concrete syntax: minimal
// parentheses, single spaces around binary connectives. Parsing the result
// yields the identical AST (the parse→print→reparse fixed point that
// FuzzPropParse enforces).
func (f *Formula) String() string {
	var b strings.Builder
	f.render(&b, 0)
	return b.String()
}

func (f *Formula) render(b *strings.Builder, prec int) {
	if f.prec() < prec {
		b.WriteByte('(')
		f.render(b, 0)
		b.WriteByte(')')
		return
	}
	switch f.Op {
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpSignal:
		b.WriteString(f.Name)
	case OpMarked:
		fmt.Fprintf(b, "marked(%s)", f.Name)
	case OpExcited:
		fmt.Fprintf(b, "excited(%s)", f.Name)
	case OpEnabled:
		fmt.Fprintf(b, "enabled(%s%s)", f.Name, f.Dir)
	case OpDeadlock:
		b.WriteString("deadlock")
	case OpPersistent:
		if f.Name == "" {
			b.WriteString("persistent")
		} else {
			fmt.Fprintf(b, "persistent(%s)", f.Name)
		}
	case OpUSC:
		b.WriteString("usc_conflict")
	case OpCSC:
		b.WriteString("csc_conflict")
	case OpNot:
		b.WriteByte('!')
		f.L.render(b, 5)
	case OpAG:
		b.WriteString("AG ")
		f.L.render(b, 5)
	case OpEF:
		b.WriteString("EF ")
		f.L.render(b, 5)
	case OpAnd:
		f.L.render(b, 4)
		b.WriteString(" & ")
		f.R.render(b, 5)
	case OpOr:
		f.L.render(b, 3)
		b.WriteString(" | ")
		f.R.render(b, 4)
	case OpImplies:
		f.L.render(b, 3)
		b.WriteString(" -> ")
		f.R.render(b, 2)
	case OpIff:
		f.L.render(b, 1)
		b.WriteString(" <-> ")
		f.R.render(b, 2)
	default:
		panic(fmt.Sprintf("prop: unknown op %d", f.Op))
	}
}

// Print renders a property list in the concrete file syntax, one property
// per line.
func Print(props []Property) string {
	var b strings.Builder
	for _, p := range props {
		fmt.Fprintf(&b, "prop %s : %s\n", p.Name, p.F)
	}
	return b.String()
}

// Convenience constructors.

func ag(f *Formula) *Formula  { return &Formula{Op: OpAG, L: f} }
func not(f *Formula) *Formula { return &Formula{Op: OpNot, L: f} }

// Standard returns the Section 2.1 implementability suite as property
// instances of the general checker: the dedicated USC/CSC/deadlock/
// persistency analyses re-derived in the property language. Consistency is
// not listed — both engines establish it while deriving signal values and
// fail on inconsistent specifications.
func Standard() []Property {
	return []Property{
		{Name: "deadlock_free", F: ag(not(&Formula{Op: OpDeadlock}))},
		{Name: "usc", F: ag(not(&Formula{Op: OpUSC}))},
		{Name: "csc", F: ag(not(&Formula{Op: OpCSC}))},
		{Name: "persistent", F: ag(&Formula{Op: OpPersistent})},
	}
}
