package prop

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stg"
)

// maxDepth bounds formula nesting so hostile inputs (deeply nested
// parentheses or negation chains from the fuzzer or the service API)
// cannot exhaust the parser's stack.
const maxDepth = 200

// ParseFile reads a property file: one `prop <name> : <formula>` per line,
// '#' starts a comment, blank lines are skipped. Property names must be
// unique.
func ParseFile(r io.Reader) ([]Property, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Parse(string(src))
}

// Parse parses property-file source text.
func Parse(src string) ([]Property, error) {
	var props []Property
	seen := map[string]bool{}
	for i, line := range strings.Split(src, "\n") {
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		p, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("prop: line %d: %w", i+1, err)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("prop: line %d: duplicate property %q", i+1, p.Name)
		}
		seen[p.Name] = true
		props = append(props, p)
	}
	return props, nil
}

func parseLine(line string) (Property, error) {
	lx := &lexer{src: line}
	if err := lx.next(); err != nil {
		return Property{}, err
	}
	if lx.tok != tokIdent || lx.lit != "prop" {
		return Property{}, fmt.Errorf("expected 'prop', got %s", lx.describe())
	}
	if err := lx.next(); err != nil {
		return Property{}, err
	}
	if lx.tok != tokIdent {
		return Property{}, fmt.Errorf("expected property name, got %s", lx.describe())
	}
	name := lx.lit
	if keywords[name] {
		return Property{}, fmt.Errorf("property name %q is a reserved word", name)
	}
	if err := lx.next(); err != nil {
		return Property{}, err
	}
	if lx.tok != tokColon {
		return Property{}, fmt.Errorf("expected ':', got %s", lx.describe())
	}
	if err := lx.next(); err != nil {
		return Property{}, err
	}
	p := &parser{lx: lx}
	f, err := p.formula(0)
	if err != nil {
		return Property{}, err
	}
	if lx.tok != tokEOF {
		return Property{}, fmt.Errorf("trailing input at %s", lx.describe())
	}
	return Property{Name: name, F: f}, nil
}

// keywords are identifiers with fixed meaning; they cannot name properties
// or signals in formulas.
var keywords = map[string]bool{
	"prop": true, "true": true, "false": true, "AG": true, "EF": true,
	"deadlock": true, "persistent": true, "usc_conflict": true,
	"csc_conflict": true, "marked": true, "excited": true, "enabled": true,
	"deadlock_free": true, "live": true,
}

type token int

const (
	tokEOF token = iota
	tokIdent
	tokLParen
	tokRParen
	tokColon
	tokNot     // !
	tokAnd     // & or &&
	tokOr      // | or ||
	tokImplies // ->
	tokIff     // <->
	tokPlus
	tokMinus
	tokTilde
)

type lexer struct {
	src string
	pos int
	tok token
	lit string
}

func (lx *lexer) describe() string {
	switch lx.tok {
	case tokEOF:
		return "end of line"
	case tokIdent:
		return fmt.Sprintf("%q", lx.lit)
	default:
		return fmt.Sprintf("%q", lx.lit)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool {
	return isIdentStart(c) || c == '.' || (c >= '0' && c <= '9')
}

func (lx *lexer) next() error {
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == ' ' || lx.src[lx.pos] == '\t' || lx.src[lx.pos] == '\r') {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		lx.tok, lx.lit = tokEOF, ""
		return nil
	}
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdent(lx.src[lx.pos]) {
			lx.pos++
		}
		lx.tok, lx.lit = tokIdent, lx.src[start:lx.pos]
		return nil
	case c == '(':
		lx.tok, lx.lit = tokLParen, "("
	case c == ')':
		lx.tok, lx.lit = tokRParen, ")"
	case c == ':':
		lx.tok, lx.lit = tokColon, ":"
	case c == '!':
		lx.tok, lx.lit = tokNot, "!"
	case c == '&':
		lx.tok, lx.lit = tokAnd, "&"
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '&' {
			lx.pos++
		}
	case c == '|':
		lx.tok, lx.lit = tokOr, "|"
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '|' {
			lx.pos++
		}
	case c == '-':
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '>' {
			lx.tok, lx.lit = tokImplies, "->"
			lx.pos++
		} else {
			lx.tok, lx.lit = tokMinus, "-"
		}
	case c == '<':
		if lx.pos+2 < len(lx.src) && lx.src[lx.pos+1] == '-' && lx.src[lx.pos+2] == '>' {
			lx.tok, lx.lit = tokIff, "<->"
			lx.pos += 2
			break
		}
		// Implicit-place name, e.g. <ack-,req+>: lexed as one identifier so
		// marked() can reference places the parser synthesized from
		// transition→transition arcs.
		end := strings.IndexByte(lx.src[lx.pos:], '>')
		if end < 0 {
			return fmt.Errorf("unterminated place name starting at %q", lx.src[lx.pos:])
		}
		lx.tok, lx.lit = tokIdent, lx.src[lx.pos:lx.pos+end+1]
		lx.pos += end // +1 below

	case c == '+':
		lx.tok, lx.lit = tokPlus, "+"
	case c == '~':
		lx.tok, lx.lit = tokTilde, "~"
	default:
		return fmt.Errorf("unexpected character %q", c)
	}
	lx.pos++
	return nil
}

type parser struct {
	lx *lexer
}

// formula parses with precedence climbing: <-> (1, left), -> (2, right),
// | (3, left), & (4, left), then unary.
func (p *parser) formula(depth int) (*Formula, error) {
	return p.iff(depth)
}

func (p *parser) iff(depth int) (*Formula, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("formula nests deeper than %d", maxDepth)
	}
	l, err := p.implies(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.lx.tok == tokIff {
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		r, err := p.implies(depth + 1)
		if err != nil {
			return nil, err
		}
		l = &Formula{Op: OpIff, L: l, R: r}
	}
	return l, nil
}

func (p *parser) implies(depth int) (*Formula, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("formula nests deeper than %d", maxDepth)
	}
	l, err := p.or(depth + 1)
	if err != nil {
		return nil, err
	}
	if p.lx.tok != tokImplies {
		return l, nil
	}
	if err := p.lx.next(); err != nil {
		return nil, err
	}
	r, err := p.implies(depth + 1) // right-associative
	if err != nil {
		return nil, err
	}
	return &Formula{Op: OpImplies, L: l, R: r}, nil
}

func (p *parser) or(depth int) (*Formula, error) {
	l, err := p.and(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.lx.tok == tokOr {
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		r, err := p.and(depth + 1)
		if err != nil {
			return nil, err
		}
		l = &Formula{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) and(depth int) (*Formula, error) {
	l, err := p.unary(depth + 1)
	if err != nil {
		return nil, err
	}
	for p.lx.tok == tokAnd {
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		r, err := p.unary(depth + 1)
		if err != nil {
			return nil, err
		}
		l = &Formula{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary(depth int) (*Formula, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("formula nests deeper than %d", maxDepth)
	}
	switch {
	case p.lx.tok == tokNot:
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		f, err := p.unary(depth + 1)
		if err != nil {
			return nil, err
		}
		return &Formula{Op: OpNot, L: f}, nil
	case p.lx.tok == tokIdent && (p.lx.lit == "AG" || p.lx.lit == "EF"):
		op := OpAG
		if p.lx.lit == "EF" {
			op = OpEF
		}
		if err := p.lx.next(); err != nil {
			return nil, err
		}
		f, err := p.unary(depth + 1)
		if err != nil {
			return nil, err
		}
		return &Formula{Op: op, L: f}, nil
	}
	return p.primary(depth)
}

func (p *parser) primary(depth int) (*Formula, error) {
	lx := p.lx
	switch lx.tok {
	case tokLParen:
		if err := lx.next(); err != nil {
			return nil, err
		}
		f, err := p.formula(depth + 1)
		if err != nil {
			return nil, err
		}
		if lx.tok != tokRParen {
			return nil, fmt.Errorf("expected ')', got %s", lx.describe())
		}
		return f, lx.next()
	case tokIdent:
		name := lx.lit
		if err := lx.next(); err != nil {
			return nil, err
		}
		switch name {
		case "true":
			return &Formula{Op: OpTrue}, nil
		case "false":
			return &Formula{Op: OpFalse}, nil
		case "deadlock":
			return &Formula{Op: OpDeadlock}, nil
		case "usc_conflict":
			return &Formula{Op: OpUSC}, nil
		case "csc_conflict":
			return &Formula{Op: OpCSC}, nil
		case "deadlock_free":
			// Template: the system never reaches a stuck state.
			return ag(not(&Formula{Op: OpDeadlock})), nil
		case "persistent":
			if lx.tok != tokLParen {
				return &Formula{Op: OpPersistent}, nil
			}
			sig, err := p.argIdent()
			if err != nil {
				return nil, err
			}
			return &Formula{Op: OpPersistent, Name: sig}, nil
		case "marked", "excited", "live":
			arg, err := p.argIdent()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			switch name {
			case "marked":
				return &Formula{Op: OpMarked, Name: arg}, nil
			case "excited":
				return &Formula{Op: OpExcited, Name: arg}, nil
			default:
				// Template: from every reachable state an edge of the
				// signal can still eventually fire.
				return ag(&Formula{Op: OpEF, L: &Formula{Op: OpExcited, Name: arg}}), nil
			}
		case "enabled":
			if lx.tok != tokLParen {
				return nil, fmt.Errorf("enabled: expected '(', got %s", lx.describe())
			}
			if err := lx.next(); err != nil {
				return nil, err
			}
			if lx.tok != tokIdent {
				return nil, fmt.Errorf("enabled: expected signal, got %s", lx.describe())
			}
			sig := lx.lit
			if keywords[sig] {
				return nil, fmt.Errorf("enabled: %q is a reserved word", sig)
			}
			if err := lx.next(); err != nil {
				return nil, err
			}
			var dir stg.Dir
			switch lx.tok {
			case tokPlus:
				dir = stg.Rise
			case tokMinus:
				dir = stg.Fall
			case tokTilde:
				dir = stg.Toggle
			default:
				return nil, fmt.Errorf("enabled: expected '+', '-' or '~', got %s", lx.describe())
			}
			if err := lx.next(); err != nil {
				return nil, err
			}
			if lx.tok != tokRParen {
				return nil, fmt.Errorf("enabled: expected ')', got %s", lx.describe())
			}
			return &Formula{Op: OpEnabled, Name: sig, Dir: dir}, lx.next()
		default:
			if keywords[name] {
				return nil, fmt.Errorf("unexpected keyword %q", name)
			}
			return &Formula{Op: OpSignal, Name: name}, nil
		}
	default:
		return nil, fmt.Errorf("expected formula, got %s", lx.describe())
	}
}

// argIdent parses a parenthesized identifier argument: "(" ident ")". The
// caller has consumed the head keyword; the current token must be '('.
func (p *parser) argIdent() (string, error) {
	lx := p.lx
	if lx.tok != tokLParen {
		return "", fmt.Errorf("expected '(', got %s", lx.describe())
	}
	if err := lx.next(); err != nil {
		return "", err
	}
	if lx.tok != tokIdent {
		return "", fmt.Errorf("expected name, got %s", lx.describe())
	}
	name := lx.lit
	if keywords[name] {
		return "", fmt.Errorf("%q is a reserved word", name)
	}
	if err := lx.next(); err != nil {
		return "", err
	}
	if lx.tok != tokRParen {
		return "", fmt.Errorf("expected ')', got %s", lx.describe())
	}
	return name, lx.next()
}
