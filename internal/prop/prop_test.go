package prop

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/reach"
	"repro/internal/stg"
)

func loadSTG(t *testing.T, name string) *stg.STG {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := stg.ParseG(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return g
}

func parseOne(t *testing.T, src string) Property {
	t.Helper()
	props, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	if len(props) != 1 {
		t.Fatalf("parse %q: %d properties", src, len(props))
	}
	return props[0]
}

func TestParseCanonical(t *testing.T) {
	// input → canonical rendering. Reparsing the canonical form must be a
	// fixed point (checked for all cases at the end).
	cases := []struct{ in, want string }{
		{"prop p : a", "a"},
		{"prop p : !a", "!a"},
		{"prop p : a & b & c", "a & b & c"},
		{"prop p : a & (b & c)", "a & (b & c)"},
		{"prop p : a | b & c", "a | b & c"},
		{"prop p : (a | b) & c", "(a | b) & c"},
		{"prop p : a -> b -> c", "a -> b -> c"},
		{"prop p : (a -> b) -> c", "(a -> b) -> c"},
		{"prop p : a <-> b | c", "a <-> b | c"},
		{"prop p : a && b || c", "a & b | c"},
		{"prop p : AG !deadlock", "AG !deadlock"},
		{"prop p : AG EF excited(a)", "AG EF excited(a)"},
		{"prop p : deadlock_free", "AG !deadlock"},
		{"prop p : live(a)", "AG EF excited(a)"},
		{"prop p : EF (a & marked(p0))", "EF (a & marked(p0))"},
		{"prop p : enabled(a+) -> !enabled(b-)", "enabled(a+) -> !enabled(b-)"},
		{"prop p : persistent", "persistent"},
		{"prop p : persistent(a)", "persistent(a)"},
		{"prop p : usc_conflict | csc_conflict", "usc_conflict | csc_conflict"},
		{"prop p : true -> false", "true -> false"},
		{"prop p : AG (a -> EF b)", "AG (a -> EF b)"},
	}
	for _, tc := range cases {
		p := parseOne(t, tc.in)
		if got := p.F.String(); got != tc.want {
			t.Errorf("parse(%q) renders %q, want %q", tc.in, got, tc.want)
		}
		again := parseOne(t, "prop p : "+p.F.String())
		if got := again.F.String(); got != p.F.String() {
			t.Errorf("reparse(%q) renders %q: not a fixed point", p.F.String(), got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p : a",                  // missing prop keyword
		"prop : a",               // missing name
		"prop p a",               // missing colon
		"prop p :",               // missing formula
		"prop p : a &",           // dangling operator
		"prop p : (a",            // unclosed paren
		"prop p : marked()",      // empty argument
		"prop p : marked",        // missing argument
		"prop p : enabled(a)",    // missing edge direction
		"prop p : enabled(a*)",   // bad direction
		"prop p : a $ b",         // bad character
		"prop p : prop",          // reserved word as atom
		"prop true : a",          // reserved word as name
		"prop p : a\nprop p : b", // duplicate name
		"prop p : " + strings.Repeat("(", 300) + "a" + strings.Repeat(")", 300), // too deep
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseFileCommentsAndBlank(t *testing.T) {
	src := "# header\n\nprop a : deadlock_free # trailing\n\nprop b : EF deadlock\n"
	props, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 2 || props[0].Name != "a" || props[1].Name != "b" {
		t.Fatalf("parsed %+v", props)
	}
	// Print → Parse is the identity on the canonical form.
	printed := Print(props)
	again, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse printed form: %v", err)
	}
	if Print(again) != printed {
		t.Fatalf("print/parse not a fixed point:\n%s\nvs\n%s", printed, Print(again))
	}
}

func TestBindErrors(t *testing.T) {
	g := loadSTG(t, "handshake.g")
	for _, src := range []string{
		"prop p : nosuch",
		"prop p : marked(nosuch)",
		"prop p : excited(nosuch)",
		"prop p : enabled(nosuch+)",
		"prop p : persistent(nosuch)",
	} {
		props, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := Bind(g, props); err == nil {
			t.Errorf("Bind(%q) succeeded, want error", src)
		}
		if _, err := Check(g, props, Options{}); err == nil {
			t.Errorf("Check(%q) succeeded, want error", src)
		}
	}
	props, err := Parse("prop p : req & marked(<ack-,req+>) & excited(ack) & persistent(req)")
	if err != nil {
		t.Fatal(err)
	}
	if err := Bind(g, props); err != nil {
		t.Errorf("Bind on valid atoms: %v", err)
	}
}

// engines runs both engines on the same inputs and requires identical
// statuses.
func engines(t *testing.T, g *stg.STG, props []Property) (*Report, *Report) {
	t.Helper()
	exp, err := Check(g, props, Options{Engine: EngineExplicit})
	if err != nil {
		t.Fatalf("explicit: %v", err)
	}
	sym, err := Check(g, props, Options{Engine: EngineSymbolic})
	if err != nil {
		t.Fatalf("symbolic: %v", err)
	}
	for i := range props {
		if exp.Verdicts[i].Status != sym.Verdicts[i].Status {
			t.Fatalf("property %s: explicit=%v symbolic=%v",
				props[i].Name, exp.Verdicts[i].Status, sym.Verdicts[i].Status)
		}
	}
	if exp.States.Cmp(sym.States) != 0 {
		t.Fatalf("state counts differ: explicit=%s symbolic=%s", exp.States, sym.States)
	}
	return exp, sym
}

func TestStandardMatchesDedicated(t *testing.T) {
	for _, name := range []string{"handshake.g", "vme-read.g", "muller4.g", "dummy-hs.g", "arbiter-race.g", "phil-deadlock.g"} {
		t.Run(name, func(t *testing.T) {
			g := loadSTG(t, name)
			sg, err := reach.BuildSG(g, reach.Options{})
			if err != nil {
				t.Fatal(err)
			}
			imp := sg.CheckImplementability()
			exp, _ := engines(t, g, Standard())
			want := map[string]bool{
				"deadlock_free": imp.DeadlockFree,
				"usc":           imp.USC,
				"csc":           imp.CSC,
				"persistent":    imp.Persistent,
			}
			for _, v := range exp.Verdicts {
				wantHolds, ok := want[v.Property.Name]
				if !ok {
					t.Fatalf("unexpected property %s", v.Property.Name)
				}
				if (v.Status == StatusHolds) != wantHolds {
					t.Errorf("%s: general checker says %v, dedicated analysis says %v",
						v.Property.Name, v.Status, wantHolds)
				}
				if v.Status == StatusViolated && v.Trace == nil {
					t.Errorf("%s: violated without a counterexample", v.Property.Name)
				}
			}
		})
	}
}

func TestMutexCounterexample(t *testing.T) {
	g := loadSTG(t, "arbiter-race.g")
	// <r1+,g1+> marked means g1+ has not fired yet, so g1 is still low:
	// the third property's target is unreachable.
	props, err := Parse("prop mutex : AG !(g1 & g2)\nprop both : EF (g1 & g2)\nprop never : EF (g1 & marked(<r1+,g1+>))")
	if err != nil {
		t.Fatal(err)
	}
	exp, sym := engines(t, g, props)
	for _, rep := range []*Report{exp, sym} {
		if rep.Verdicts[0].Status != StatusViolated {
			t.Fatalf("%s: mutex = %v, want violated", rep.Engine, rep.Verdicts[0].Status)
		}
		tr := rep.Verdicts[0].Trace
		if tr == nil {
			t.Fatalf("%s: no counterexample", rep.Engine)
		}
		last := tr.Steps[len(tr.Steps)-1]
		g1 := g.SignalIndex("g1")
		g2 := g.SignalIndex("g2")
		if !last.Code.Bit(g1) || !last.Code.Bit(g2) {
			t.Fatalf("%s: counterexample ends in code %s, want g1&g2 high",
				rep.Engine, last.Code.String(len(g.Signals)))
		}
		// Shortest violating run: both handshakes complete the first half.
		if len(tr.Steps) != 5 {
			t.Errorf("%s: counterexample has %d steps, want 5 (%s)",
				rep.Engine, len(tr.Steps), tr.Events())
		}
		if wf := tr.Waveform(); !strings.Contains(wf, "g1") || !strings.Contains(wf, "/") {
			t.Errorf("%s: waveform rendering looks wrong:\n%s", rep.Engine, wf)
		}
		if rep.Verdicts[1].Status != StatusHolds {
			t.Fatalf("%s: EF (g1 & g2) = %v, want holds", rep.Engine, rep.Verdicts[1].Status)
		}
		if rep.Verdicts[1].Trace == nil {
			t.Fatalf("%s: holding EF without witness", rep.Engine)
		}
		if rep.Verdicts[2].Status != StatusViolated {
			t.Fatalf("%s: unreachable EF = %v, want violated", rep.Engine, rep.Verdicts[2].Status)
		}
		if rep.Verdicts[2].Trace != nil {
			t.Fatalf("%s: violated EF must not carry a trace", rep.Engine)
		}
	}
}

func TestPhilosophersDeadlock(t *testing.T) {
	g := loadSTG(t, "phil-deadlock.g")
	props, err := Parse(strings.Join([]string{
		"prop no_deadlock : deadlock_free",
		"prop can_stick : EF deadlock",
		"prop live_a : live(a)",
		"prop forks : AG (marked(p_ha) -> !marked(p_f1))",
		"prop pers : persistent(a)",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	exp, _ := engines(t, g, props)
	wants := []Status{StatusViolated, StatusHolds, StatusViolated, StatusHolds, StatusViolated}
	for i, w := range wants {
		if exp.Verdicts[i].Status != w {
			t.Errorf("%s = %v, want %v", props[i].Name, exp.Verdicts[i].Status, w)
		}
	}
	tr := exp.Verdicts[0].Trace
	if tr == nil {
		t.Fatal("deadlock_free violated without counterexample")
	}
	if got := tr.Events(); got != "a+ b+" && got != "b+ a+" {
		t.Errorf("deadlock counterexample events = %q", got)
	}
}

func TestImplicitInvariantVsTemporal(t *testing.T) {
	g := loadSTG(t, "handshake.g")
	// req is 0 initially and 1 later: the implicit invariant "!req" is
	// violated, but the CTL formula "EF req" holds and "!EF req" fails.
	props, err := Parse("prop inv : !req\nprop ef : EF req\nprop nef : !EF req")
	if err != nil {
		t.Fatal(err)
	}
	exp, _ := engines(t, g, props)
	if exp.Verdicts[0].Status != StatusViolated {
		t.Errorf("invariant !req = %v, want violated", exp.Verdicts[0].Status)
	}
	if exp.Verdicts[1].Status != StatusHolds {
		t.Errorf("EF req = %v, want holds", exp.Verdicts[1].Status)
	}
	if exp.Verdicts[2].Status != StatusViolated {
		t.Errorf("!EF req = %v, want violated", exp.Verdicts[2].Status)
	}
}

// TestTraceReplay fires the counterexample's events on the net and checks
// every step's marking and code, so traces from both engines are genuine
// runs of the token game.
func TestTraceReplay(t *testing.T) {
	for _, name := range []string{"arbiter-race.g", "phil-deadlock.g"} {
		g := loadSTG(t, name)
		props, err := Parse("prop dl : deadlock_free\nprop mx : AG !(excited(a) & deadlock)")
		if err != nil {
			t.Fatal(err)
		}
		if g.SignalIndex("a") < 0 {
			props = props[:1]
		}
		for _, eng := range []Engine{EngineExplicit, EngineSymbolic} {
			rep, err := Check(g, props, Options{Engine: eng})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, eng, err)
			}
			for _, v := range rep.Verdicts {
				if v.Trace == nil {
					continue
				}
				if err := ReplayTrace(g, v.Trace); err != nil {
					t.Errorf("%s/%s/%s: %v", name, eng, v.Property.Name, err)
				}
			}
		}
	}
}
