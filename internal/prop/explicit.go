package prop

import (
	"errors"
	"math/big"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
)

// checkExplicit evaluates properties over the enumerated state graph:
// every subformula denotes a bit vector over the states, EF is a backward
// breadth-first reachability pass. The graph itself is built by
// reach.BuildSG, so Workers parallelizes the exploration and consistency
// is established (or refuted) before any property runs.
func checkExplicit(g *stg.STG, props []Property, opts Options, sp *obs.Span) (*Report, error) {
	sg, err := reach.BuildSG(g, reach.Options{Workers: opts.Workers, Budget: opts.Budget, Obs: sp})
	if err != nil {
		if isBudget(err) {
			return unknownReport(string(EngineExplicit), props), err
		}
		return nil, err
	}
	c := &expChecker{
		g:      g,
		sg:     sg,
		bgt:    opts.Budget,
		hooked: opts.Budget.Hooked(),
		memo:   map[*Formula][]bool{},
	}
	rep := unknownReport(string(EngineExplicit), props)
	rep.States = big.NewInt(int64(len(sg.States)))
	for i, p := range props {
		v, err := c.verdict(p)
		if err != nil {
			return rep, err
		}
		rep.Verdicts[i] = v
	}
	return rep, nil
}

// isBudget reports whether err belongs to the budget taxonomy — the cases
// where a partial all-unknown report is still meaningful.
func isBudget(err error) bool {
	var le budget.ErrLimit
	var ie *budget.ErrInternal
	return errors.Is(err, budget.ErrCanceled) || errors.As(err, &le) || errors.As(err, &ie)
}

type expChecker struct {
	g      *stg.STG
	sg     *ts.SG
	bgt    *budget.Budget
	hooked bool
	memo   map[*Formula][]bool

	in     [][]ts.Arc // reverse adjacency, built on first EF
	placeI map[string]int
	viols  []ts.PersistencyViolation
	haveV  bool
}

// check amortizes budget polling over state loops.
func (c *expChecker) check(i int) error {
	if c.hooked || i%budget.CheckEvery == 0 {
		return c.bgt.Check("prop.explicit")
	}
	return nil
}

func (c *expChecker) verdict(p Property) (Verdict, error) {
	sat, err := c.sat(p.F)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{Property: p}
	if p.F.Temporal() {
		if sat[c.sg.Initial] {
			v.Status = StatusHolds
		} else {
			v.Status = StatusViolated
		}
	} else {
		// Implicit invariant: AG f.
		v.Status = StatusHolds
		for i := range sat {
			if !sat[i] {
				v.Status = StatusViolated
				break
			}
		}
	}
	if err := c.attachTrace(&v); err != nil {
		return Verdict{}, err
	}
	return v, nil
}

// attachTrace adds a counterexample for violated invariants/AGs (shortest
// path to an offending state) or a witness for holding top-level EFs
// (shortest path to a satisfying state).
func (c *expChecker) attachTrace(v *Verdict) error {
	f := v.Property.F
	var target []bool
	switch {
	case v.Status == StatusViolated && !f.Temporal():
		sat, err := c.sat(f)
		if err != nil {
			return err
		}
		target = negate(sat)
	case v.Status == StatusViolated && f.Op == OpAG:
		sat, err := c.sat(f.L)
		if err != nil {
			return err
		}
		target = negate(sat)
	case v.Status == StatusHolds && f.Op == OpEF:
		sat, err := c.sat(f.L)
		if err != nil {
			return err
		}
		target = sat
	default:
		return nil
	}
	tr, err := c.trace(target)
	if err != nil {
		return err
	}
	v.Trace = tr
	return nil
}

func negate(v []bool) []bool {
	out := make([]bool, len(v))
	for i, b := range v {
		out[i] = !b
	}
	return out
}

// sat computes the set of states satisfying f as a bit vector. Results are
// memoized per AST node: trace extraction revisits subformulas.
func (c *expChecker) sat(f *Formula) ([]bool, error) {
	if v, ok := c.memo[f]; ok {
		return v, nil
	}
	v, err := c.eval(f)
	if err != nil {
		return nil, err
	}
	c.memo[f] = v
	return v, nil
}

func (c *expChecker) eval(f *Formula) ([]bool, error) {
	n := len(c.sg.States)
	out := make([]bool, n)
	switch f.Op {
	case OpTrue:
		for i := range out {
			out[i] = true
		}
	case OpFalse:
		// all false
	case OpSignal:
		sig := c.g.SignalIndex(f.Name)
		for i, st := range c.sg.States {
			if err := c.check(i); err != nil {
				return nil, err
			}
			out[i] = st.Code.Bit(sig)
		}
	case OpMarked:
		p := c.placeIndex(f.Name)
		for i, st := range c.sg.States {
			if err := c.check(i); err != nil {
				return nil, err
			}
			out[i] = p < len(st.Key) && st.Key[p] > 0
		}
	case OpExcited:
		sig := c.g.SignalIndex(f.Name)
		for i := range c.sg.States {
			if err := c.check(i); err != nil {
				return nil, err
			}
			_, out[i] = c.sg.Excited(i, sig)
		}
	case OpEnabled:
		sig := c.g.SignalIndex(f.Name)
		for i, arcs := range c.sg.Out {
			if err := c.check(i); err != nil {
				return nil, err
			}
			for _, a := range arcs {
				if a.Event.Sig == sig && a.Event.Dir == f.Dir {
					out[i] = true
					break
				}
			}
		}
	case OpDeadlock:
		for i, arcs := range c.sg.Out {
			out[i] = len(arcs) == 0
		}
	case OpPersistent:
		sig := -1
		if f.Name != "" {
			sig = c.g.SignalIndex(f.Name)
		}
		for i := range out {
			out[i] = true
		}
		for _, viol := range c.violations() {
			if sig < 0 || viol.Disabled.Sig == sig {
				out[viol.State] = false
			}
		}
	case OpUSC:
		for _, grp := range c.sg.StatesByCode() {
			if len(grp) < 2 {
				continue
			}
			for _, s := range grp {
				out[s] = true
			}
		}
	case OpCSC:
		for _, cf := range c.sg.CSCConflicts() {
			out[cf.A] = true
			out[cf.B] = true
		}
	case OpNot:
		l, err := c.sat(f.L)
		if err != nil {
			return nil, err
		}
		return negate(l), nil
	case OpAnd, OpOr, OpImplies, OpIff:
		l, err := c.sat(f.L)
		if err != nil {
			return nil, err
		}
		r, err := c.sat(f.R)
		if err != nil {
			return nil, err
		}
		for i := range out {
			switch f.Op {
			case OpAnd:
				out[i] = l[i] && r[i]
			case OpOr:
				out[i] = l[i] || r[i]
			case OpImplies:
				out[i] = !l[i] || r[i]
			default:
				out[i] = l[i] == r[i]
			}
		}
	case OpEF:
		l, err := c.sat(f.L)
		if err != nil {
			return nil, err
		}
		return c.ef(l)
	case OpAG:
		// AG g = ¬EF ¬g.
		l, err := c.sat(f.L)
		if err != nil {
			return nil, err
		}
		bad, err := c.ef(negate(l))
		if err != nil {
			return nil, err
		}
		return negate(bad), nil
	}
	return out, nil
}

// ef computes backward reachability: states with a path into the target
// set (including the target states themselves).
func (c *expChecker) ef(target []bool) ([]bool, error) {
	if c.in == nil {
		c.in = c.sg.In()
	}
	out := make([]bool, len(target))
	var queue []int
	for s, t := range target {
		if t {
			out[s] = true
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		if c.hooked || head%budget.CheckEvery == 0 {
			if err := c.bgt.Check("prop.fix"); err != nil {
				return nil, err
			}
		}
		for _, a := range c.in[queue[head]] {
			if !out[a.To] { // In() stores the source state in To
				out[a.To] = true
				queue = append(queue, a.To)
			}
		}
	}
	return out, nil
}

// trace finds the shortest firing sequence from the initial state to a
// target state (breadth-first, arcs in declaration order, so the result is
// deterministic).
func (c *expChecker) trace(target []bool) (*Trace, error) {
	n := len(c.sg.States)
	prevState := make([]int, n)
	prevArc := make([]ts.Arc, n)
	seen := make([]bool, n)
	init := c.sg.Initial
	seen[init] = true
	queue := []int{init}
	goal := -1
	if target[init] {
		goal = init
	}
	for head := 0; head < len(queue) && goal < 0; head++ {
		if c.hooked || head%budget.CheckEvery == 0 {
			if err := c.bgt.Check("prop.explicit"); err != nil {
				return nil, err
			}
		}
		s := queue[head]
		for _, a := range c.sg.Out[s] {
			if seen[a.To] {
				continue
			}
			seen[a.To] = true
			prevState[a.To] = s
			prevArc[a.To] = ts.Arc{Event: a.Event, To: a.To}
			if target[a.To] {
				goal = a.To
				break
			}
			queue = append(queue, a.To)
		}
	}
	if goal < 0 {
		return nil, nil // target unreachable — no trace
	}
	var rev []int
	for s := goal; ; s = prevState[s] {
		rev = append(rev, s)
		if s == init {
			break
		}
	}
	tr := &Trace{Signals: c.sg.Signals, Places: c.placeNames()}
	numP := len(c.g.Net.Places)
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		step := Step{Code: c.sg.States[s].Code, Marking: make([]bool, numP)}
		for p := 0; p < numP && p < len(c.sg.States[s].Key); p++ {
			step.Marking[p] = c.sg.States[s].Key[p] > 0
		}
		if s != init {
			step.Event = prevArc[s].Event.Name
		}
		tr.Steps = append(tr.Steps, step)
	}
	return tr, nil
}

func (c *expChecker) placeNames() []string {
	names := make([]string, len(c.g.Net.Places))
	for i, p := range c.g.Net.Places {
		names[i] = p.Name
	}
	return names
}

func (c *expChecker) placeIndex(name string) int {
	if c.placeI == nil {
		c.placeI = map[string]int{}
		for i, p := range c.g.Net.Places {
			c.placeI[p.Name] = i
		}
	}
	return c.placeI[name]
}

func (c *expChecker) violations() []ts.PersistencyViolation {
	if !c.haveV {
		c.viols = c.sg.PersistencyViolations()
		c.haveV = true
	}
	return c.viols
}
