package prop

import (
	"fmt"
	"math/big"

	"repro/internal/bdd"
	"repro/internal/obs"
	"repro/internal/stg"
	"repro/internal/symbolic"
	"repro/internal/ts"
)

// checkSymbolic evaluates properties with BDD fixpoints over the
// place-level encoding of internal/symbolic — the state graph is never
// enumerated. Signal values are derived per signal as the least
// One/Zero partition consistent with the edge labels (the symbolic
// counterpart of reach.BuildSG's code inference); USC/CSC atoms use a
// doubled variable space holding two copies of the state so that
// code-sharing pairs are a conjunction, not an enumeration.
//
// Traces are extracted from the onion rings of the reachability fixpoint:
// the first ring meeting the target yields a concrete state, and a
// deterministic backward walk through the rings replays a minimal firing
// sequence from the initial marking.
func checkSymbolic(g *stg.STG, props []Property, opts Options, sp *obs.Span) (*Report, error) {
	for t, l := range g.Labels {
		if l.Sig >= 0 && l.Dir == stg.Toggle {
			return nil, fmt.Errorf("prop: symbolic engine cannot check toggle transition %s (normalize the spec first)",
				g.Net.Transitions[t].Name)
		}
	}
	P := len(g.Net.Places)
	if P > 2048 {
		return nil, fmt.Errorf("prop: %d places is unreasonable", P)
	}
	needPair := false
	for _, p := range props {
		if usesPair(p.F) {
			needPair = true
			break
		}
	}
	// With pair atoms the two state copies interleave (place p at 2p and
	// 2p+1): relating corresponding places across separated variable
	// blocks makes the conflict-pair BDDs explode.
	vars, stride := P, 1
	if needPair {
		vars, stride = 2*P, 2
	}
	c := &symChecker{
		g:      g,
		P:      P,
		stride: stride,
		m:      bdd.New(vars),
		opts:   opts,
		iters:  sp.Registry().Counter("prop.iterations"),
		memo:   map[*Formula]bdd.Ref{},
	}
	if err := c.prepare(needPair); err != nil {
		if isBudget(err) {
			return unknownReport(string(EngineSymbolic), props), err
		}
		return nil, err
	}
	rep := unknownReport(string(EngineSymbolic), props)
	rep.States = c.stateCount()
	for i, p := range props {
		v, err := c.verdict(p)
		if err != nil {
			return rep, err
		}
		rep.Verdicts[i] = v
	}
	return rep, nil
}

// usesPair reports whether the formula needs the doubled state encoding.
func usesPair(f *Formula) bool {
	if f == nil {
		return false
	}
	return f.Op == OpUSC || f.Op == OpCSC || usesPair(f.L) || usesPair(f.R)
}

// symChecker never runs garbage collection or reordering, so every Ref it
// produces stays valid without reference counting; the node ceiling is
// still enforced through Budget.CheckNodes.
type symChecker struct {
	g      *stg.STG
	P      int
	stride int // 1, or 2 when the pair copies are interleaved
	m      *bdd.Manager
	opts   Options
	iters  *obs.Counter
	memo   map[*Formula]bdd.Ref

	ts      []symbolic.Trans // copy A: place p at variable varA(p)
	reach   bdd.Ref          // reachable markings (copy A)
	rings   []bdd.Ref        // frontier of each fixpoint step; rings[0] = init
	one     []bdd.Ref        // per-signal value-1 states within reach
	initVec []bool

	tsB    []symbolic.Trans // copy B: place p at variable varB(p) (pair atoms only)
	reachB bdd.Ref
	oneB   []bdd.Ref
}

// varA and varB map a place to its variable in each state copy.
func (c *symChecker) varA(p int) int { return c.stride * p }
func (c *symChecker) varB(p int) int { return c.stride*p + 1 }

func (c *symChecker) prepare(needPair bool) error {
	n := c.g.Net
	c.ts = symbolic.BuildTransStride(n, c.m, 0, c.stride)
	c.initVec = make([]bool, c.m.NumVars())
	for p, pl := range n.Places {
		c.initVec[c.varA(p)] = pl.Initial > 0
	}
	var err error
	c.reach, c.rings, err = c.explore(0, c.ts, true)
	if err != nil {
		return err
	}
	c.one, err = c.values(0, c.ts, c.reach)
	if err != nil {
		return err
	}
	if !needPair {
		return nil
	}
	c.tsB = symbolic.BuildTransStride(n, c.m, 1, c.stride)
	c.reachB, _, err = c.explore(1, c.tsB, false)
	if err != nil {
		return err
	}
	c.oneB, err = c.values(1, c.tsB, c.reachB)
	return err
}

// explore runs the frontier fixpoint for one variable block, optionally
// keeping the per-step frontiers ("onion rings") for trace extraction.
func (c *symChecker) explore(offset int, trs []symbolic.Trans, wantRings bool) (bdd.Ref, []bdd.Ref, error) {
	m := c.m
	init, err := symbolic.InitCubeStride(c.g.Net, m, offset, c.stride)
	if err != nil {
		return bdd.False, nil, err
	}
	reached, frontier := init, init
	var rings []bdd.Ref
	if wantRings {
		rings = append(rings, frontier)
	}
	for frontier != bdd.False {
		if err := c.opts.Budget.Check("prop.reach"); err != nil {
			return reached, rings, err
		}
		c.iters.Inc()
		next := bdd.False
		for _, tr := range trs {
			img := m.AndExists(frontier, tr.Enable, tr.Touched)
			if img == bdd.False {
				continue
			}
			next = m.Or(next, m.And(img, tr.Result))
		}
		frontier = m.Diff(next, reached)
		reached = m.Or(reached, next)
		if wantRings && frontier != bdd.False {
			rings = append(rings, frontier)
		}
		if err := c.opts.Budget.CheckNodes(m.Size()); err != nil {
			return reached, rings, err
		}
	}
	return reached, rings, nil
}

// values derives, for every signal, the set of reachable markings where
// the signal is 1. Seeds come from the edge labels (a marking enabling a+
// has a=0, the marking after firing it has a=1); the closure propagates
// values forward and backward through transitions of other signals. A
// signal whose value the edges never determine at the initial state
// defaults to 0 there, matching reach.BuildSG. A marking required to hold
// both values makes the STG inconsistent.
func (c *symChecker) values(offset int, trs []symbolic.Trans, reach bdd.Ref) ([]bdd.Ref, error) {
	m := c.m
	S := len(c.g.Signals)
	one := make([]bdd.Ref, S)
	zero := make([]bdd.Ref, S)
	for s := 0; s < S; s++ {
		one[s], zero[s] = bdd.False, bdd.False
	}
	for t, l := range c.g.Labels {
		if l.Sig < 0 {
			continue
		}
		tr := trs[t]
		en := m.And(reach, tr.Enable)
		img := m.And(m.AndExists(reach, tr.Enable, tr.Touched), tr.Result)
		switch l.Dir {
		case stg.Rise:
			zero[l.Sig] = m.Or(zero[l.Sig], en)
			one[l.Sig] = m.Or(one[l.Sig], img)
		case stg.Fall:
			one[l.Sig] = m.Or(one[l.Sig], en)
			zero[l.Sig] = m.Or(zero[l.Sig], img)
		}
	}
	init, err := symbolic.InitCubeStride(c.g.Net, m, offset, c.stride)
	if err != nil {
		return nil, err
	}
	initVec := make([]bool, c.m.NumVars())
	for p, pl := range c.g.Net.Places {
		initVec[offset+c.stride*p] = pl.Initial > 0
	}
	for s := 0; s < S; s++ {
		if one[s], zero[s], err = c.closeValues(s, trs, reach, one[s], zero[s]); err != nil {
			return nil, err
		}
		if !m.EvalVec(m.Or(one[s], zero[s]), initVec) {
			// No edge pinned the initial value: default to 0.
			zero[s] = m.Or(zero[s], init)
			if one[s], zero[s], err = c.closeValues(s, trs, reach, one[s], zero[s]); err != nil {
				return nil, err
			}
		}
		if m.And(one[s], zero[s]) != bdd.False {
			return nil, fmt.Errorf("prop: STG %s is not consistent: signal %s needs both values in one marking",
				c.g.Name(), c.g.Signals[s].Name)
		}
		if m.Diff(reach, m.Or(one[s], zero[s])) != bdd.False {
			return nil, fmt.Errorf("prop: internal: signal %s value underdetermined", c.g.Signals[s].Name)
		}
	}
	return one, nil
}

// closeValues propagates a signal's One/Zero sets to their fixpoint
// through every transition not labeled with the signal (its own edges are
// fully covered by the seeds).
func (c *symChecker) closeValues(sig int, trs []symbolic.Trans, reach bdd.Ref, one, zero bdd.Ref) (bdd.Ref, bdd.Ref, error) {
	m := c.m
	for {
		if err := c.opts.Budget.Check("prop.fix"); err != nil {
			return one, zero, err
		}
		c.iters.Inc()
		prevOne, prevZero := one, zero
		for t, l := range c.g.Labels {
			if l.Sig == sig {
				continue
			}
			tr := trs[t]
			// Forward: the value survives firing t (images of reachable
			// states stay reachable, no clamp needed).
			one = m.Or(one, m.And(m.AndExists(one, tr.Enable, tr.Touched), tr.Result))
			zero = m.Or(zero, m.And(m.AndExists(zero, tr.Enable, tr.Touched), tr.Result))
			// Backward: the predecessor held the same value. Pre-images
			// can leave the reachable set, so clamp.
			one = m.Or(one, m.And(reach, m.And(tr.Enable, m.AndExists(one, tr.Result, tr.Touched))))
			zero = m.Or(zero, m.And(reach, m.And(tr.Enable, m.AndExists(zero, tr.Result, tr.Touched))))
		}
		if one == prevOne && zero == prevZero {
			return one, zero, nil
		}
		if err := c.opts.Budget.CheckNodes(m.Size()); err != nil {
			return one, zero, err
		}
	}
}

func (c *symChecker) stateCount() *big.Int {
	cnt := c.m.SatCountBig(c.reach)
	return cnt.Rsh(cnt, uint(c.m.NumVars()-c.P))
}

func (c *symChecker) verdict(p Property) (Verdict, error) {
	sat, err := c.sat(p.F)
	if err != nil {
		return Verdict{}, err
	}
	m := c.m
	v := Verdict{Property: p}
	if p.F.Temporal() {
		if m.EvalVec(sat, c.initVec) {
			v.Status = StatusHolds
		} else {
			v.Status = StatusViolated
		}
	} else {
		if m.Diff(c.reach, sat) == bdd.False {
			v.Status = StatusHolds
		} else {
			v.Status = StatusViolated
		}
	}
	var target bdd.Ref = bdd.False
	switch {
	case v.Status == StatusViolated && !p.F.Temporal():
		target = m.Diff(c.reach, sat)
	case v.Status == StatusViolated && p.F.Op == OpAG:
		inner, err := c.sat(p.F.L)
		if err != nil {
			return Verdict{}, err
		}
		target = m.Diff(c.reach, inner)
	case v.Status == StatusHolds && p.F.Op == OpEF:
		inner, err := c.sat(p.F.L)
		if err != nil {
			return Verdict{}, err
		}
		target = inner
	}
	if target != bdd.False {
		tr, err := c.trace(target)
		if err != nil {
			return Verdict{}, err
		}
		v.Trace = tr
	}
	return v, nil
}

// sat computes the characteristic function of the states satisfying f,
// always a subset of the reachable set. Results are memoized per AST node.
func (c *symChecker) sat(f *Formula) (bdd.Ref, error) {
	if r, ok := c.memo[f]; ok {
		return r, nil
	}
	r, err := c.eval(f)
	if err != nil {
		return bdd.False, err
	}
	c.memo[f] = r
	return r, nil
}

func (c *symChecker) eval(f *Formula) (bdd.Ref, error) {
	m := c.m
	switch f.Op {
	case OpTrue:
		return c.reach, nil
	case OpFalse:
		return bdd.False, nil
	case OpSignal:
		return c.one[c.g.SignalIndex(f.Name)], nil
	case OpMarked:
		return m.And(c.reach, m.Var(c.varA(c.placeIndex(f.Name)))), nil
	case OpExcited:
		return m.And(c.reach, c.signalEnabled(c.g.SignalIndex(f.Name), nil, c.ts)), nil
	case OpEnabled:
		dir := f.Dir
		return m.And(c.reach, c.signalEnabled(c.g.SignalIndex(f.Name), &dir, c.ts)), nil
	case OpDeadlock:
		return m.Diff(c.reach, symbolic.SomeEnabled(m, c.ts)), nil
	case OpPersistent:
		sig := -1
		if f.Name != "" {
			sig = c.g.SignalIndex(f.Name)
		}
		return c.persistent(sig), nil
	case OpUSC:
		return c.pairConflicts(false), nil
	case OpCSC:
		return c.pairConflicts(true), nil
	case OpNot:
		l, err := c.sat(f.L)
		if err != nil {
			return bdd.False, err
		}
		return m.Diff(c.reach, l), nil
	case OpAnd, OpOr, OpImplies, OpIff:
		l, err := c.sat(f.L)
		if err != nil {
			return bdd.False, err
		}
		r, err := c.sat(f.R)
		if err != nil {
			return bdd.False, err
		}
		switch f.Op {
		case OpAnd:
			return m.And(l, r), nil
		case OpOr:
			return m.Or(l, r), nil
		case OpImplies:
			return m.Or(m.Diff(c.reach, l), r), nil
		default: // Iff
			return m.Or(m.And(l, r), m.Diff(c.reach, m.Or(l, r))), nil
		}
	case OpEF:
		l, err := c.sat(f.L)
		if err != nil {
			return bdd.False, err
		}
		return c.ef(l)
	case OpAG:
		l, err := c.sat(f.L)
		if err != nil {
			return bdd.False, err
		}
		bad, err := c.ef(m.Diff(c.reach, l))
		if err != nil {
			return bdd.False, err
		}
		return m.Diff(c.reach, bad), nil
	default:
		return bdd.False, fmt.Errorf("prop: internal: unknown op %d", f.Op)
	}
}

// ef is the backward least fixpoint: states with a reachable path into the
// target set.
func (c *symChecker) ef(target bdd.Ref) (bdd.Ref, error) {
	m := c.m
	z := target
	for {
		if err := c.opts.Budget.Check("prop.fix"); err != nil {
			return z, err
		}
		c.iters.Inc()
		pre := bdd.False
		for _, tr := range c.ts {
			pre = m.Or(pre, m.And(tr.Enable, m.AndExists(z, tr.Result, tr.Touched)))
		}
		nz := m.Or(z, m.And(c.reach, pre))
		if nz == z {
			return z, nil
		}
		z = nz
		if err := c.opts.Budget.CheckNodes(m.Size()); err != nil {
			return z, err
		}
	}
}

// signalEnabled builds the enabling condition of a signal's edges (all of
// them, or only those with direction *dir).
func (c *symChecker) signalEnabled(sig int, dir *stg.Dir, trs []symbolic.Trans) bdd.Ref {
	m := c.m
	some := bdd.False
	for _, t := range c.g.TransitionsOf(sig) {
		if dir != nil && c.g.Labels[t].Dir != *dir {
			continue
		}
		some = m.Or(some, trs[t].Enable)
	}
	return some
}

// eventEnabled builds the enabling condition of transition t's event: the
// disjunction over every transition carrying the same label.
func (c *symChecker) eventEnabled(t int, trs []symbolic.Trans) bdd.Ref {
	m := c.m
	some := bdd.False
	for u := range c.g.Labels {
		if c.sameEvent(t, u) {
			some = m.Or(some, trs[u].Enable)
		}
	}
	return some
}

// sameEvent mirrors ts.sameEvent at the net level: signal edges compare by
// (signal, direction), dummies by transition name.
func (c *symChecker) sameEvent(a, b int) bool {
	la, lb := c.g.Labels[a], c.g.Labels[b]
	if la.Sig < 0 || lb.Sig < 0 {
		return c.g.Net.Transitions[a].Name == c.g.Net.Transitions[b].Name
	}
	return la.Sig == lb.Sig && la.Dir == lb.Dir
}

func (c *symChecker) isInput(t int) bool {
	l := c.g.Labels[t]
	return l.Sig >= 0 && c.g.Signals[l.Sig].Kind == stg.Input
}

// persistent computes the states where no enabled event (of the given
// signal, or of any when sig < 0) can be disabled by a different event
// firing, under the Section 2.1 rules: input-input conflicts are the
// environment's choice and allowed; everything else is a violation.
func (c *symChecker) persistent(sig int) bdd.Ref {
	m := c.m
	viol := bdd.False
	for te, le := range c.g.Labels {
		if sig >= 0 && le.Sig != sig {
			continue
		}
		evE := c.eventEnabled(te, c.ts)
		for tu := range c.g.Labels {
			if te == tu || c.sameEvent(te, tu) {
				continue
			}
			if c.isInput(te) && c.isInput(tu) {
				continue
			}
			tr := c.ts[tu]
			// Event e's enabledness in the successor of firing u: the
			// touched places take their post-firing values, the rest are
			// unchanged.
			after := evE
			for i, v := range tr.Touched {
				after = m.Restrict(after, v, tr.PostVal[i])
			}
			viol = m.Or(viol, m.AndN(c.ts[te].Enable, tr.Enable, m.Not(after)))
		}
	}
	return m.Diff(c.reach, viol)
}

// pairConflicts computes the USC (or CSC) conflict states via the doubled
// encoding: block B ranges over a second copy of the reachable markings,
// and a conflict is a pair with equal signal codes but different markings
// (for CSC, additionally differing excitation of some non-input signal).
// Quantifying block B away leaves the conflict states in block A.
func (c *symChecker) pairConflicts(csc bool) bdd.Ref {
	m := c.m
	same := bdd.True
	for s := range c.g.Signals {
		same = m.And(same, m.Not(m.Xor(c.one[s], c.oneB[s])))
	}
	diff := bdd.False
	for p := 0; p < c.P; p++ {
		diff = m.Or(diff, m.Xor(m.Var(c.varA(p)), m.Var(c.varB(p))))
	}
	pair := m.AndN(c.reach, c.reachB, same, diff)
	if csc {
		wit := bdd.False
		for s, sg := range c.g.Signals {
			if sg.Kind != stg.Output && sg.Kind != stg.Internal {
				continue
			}
			wit = m.Or(wit, m.Xor(c.signalEnabled(s, nil, c.ts), c.signalEnabled(s, nil, c.tsB)))
		}
		pair = m.And(pair, wit)
	}
	varsB := make([]int, c.P)
	for p := range varsB {
		varsB[p] = c.varB(p)
	}
	return m.Exists(pair, varsB)
}

func (c *symChecker) placeIndex(name string) int {
	for i, p := range c.g.Net.Places {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// trace replays a minimal firing sequence from the initial marking to a
// target state, using the reachability onion rings: the first ring meeting
// the target fixes the endpoint and its distance, and each backward step
// picks the first transition (in declaration order) with a predecessor in
// the previous ring — fully deterministic for a fixed spec.
func (c *symChecker) trace(target bdd.Ref) (*Trace, error) {
	m := c.m
	ringIdx := -1
	var goal []bool
	for i, ring := range c.rings {
		if x := m.And(ring, target); x != bdd.False {
			goal, _ = m.AnySatVec(x)
			ringIdx = i
			break
		}
	}
	if ringIdx < 0 {
		return nil, nil // target not reachable: no trace
	}
	type bstep struct {
		vec   []bool
		event string
	}
	steps := []bstep{{vec: goal}}
	cur := goal
	for i := ringIdx; i > 0; i-- {
		if err := c.opts.Budget.Check("prop.fix"); err != nil {
			return nil, err
		}
		curCube := c.stateCube(cur)
		found := false
		for t, tr := range c.ts {
			cand := m.AndN(tr.Enable, m.AndExists(curCube, tr.Result, tr.Touched), c.rings[i-1])
			if cand == bdd.False {
				continue
			}
			prev, _ := m.AnySatVec(cand)
			steps[len(steps)-1].event = c.g.Net.Transitions[t].Name
			steps = append(steps, bstep{vec: prev})
			cur = prev
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("prop: internal: trace reconstruction lost the path at ring %d", i)
		}
	}
	tr := &Trace{Signals: append([]stg.Signal(nil), c.g.Signals...), Places: c.placeNames()}
	for i := len(steps) - 1; i >= 0; i-- {
		st := steps[i]
		marking := make([]bool, c.P)
		for p := 0; p < c.P; p++ {
			marking[p] = st.vec[c.varA(p)]
		}
		step := Step{Event: st.event, Marking: marking}
		var code ts.Code
		for s := range c.g.Signals {
			if m.EvalVec(c.one[s], st.vec) {
				code = code.Set(s, true)
			}
		}
		step.Code = code
		tr.Steps = append(tr.Steps, step)
	}
	return tr, nil
}

// stateCube pins every block-A variable to the given state's value.
func (c *symChecker) stateCube(vec []bool) bdd.Ref {
	vars := make([]int, c.P)
	pols := make([]bool, c.P)
	for p := 0; p < c.P; p++ {
		vars[p] = c.varA(p)
		pols[p] = vec[c.varA(p)]
	}
	return c.m.Cube(vars, pols)
}

func (c *symChecker) placeNames() []string {
	names := make([]string, len(c.g.Net.Places))
	for i, p := range c.g.Net.Places {
		names[i] = p.Name
	}
	return names
}
