package prop

import (
	"fmt"
	"math/big"
	"strconv"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/stg"
)

// Status is a per-property verdict.
type Status int

const (
	// StatusUnknown marks a property the checker did not finish — the
	// verdict after a budget trip (cancellation, state/node ceiling).
	StatusUnknown Status = iota
	StatusHolds
	StatusViolated
)

func (s Status) String() string {
	switch s {
	case StatusHolds:
		return "holds"
	case StatusViolated:
		return "VIOLATED"
	default:
		return "unknown"
	}
}

// Verdict is the outcome for one property.
type Verdict struct {
	Property Property
	Status   Status
	// Trace is a counterexample (a violated invariant/AG: path to an
	// offending state) or a witness (a holding top-level EF: path to a
	// satisfying state). Nil when neither applies — e.g. a holding
	// invariant, or a violated EF, which has no finite witness.
	Trace *Trace
}

// Report is the outcome of a Check run.
type Report struct {
	// Engine is the engine that produced the verdicts: "explicit" or
	// "symbolic".
	Engine string
	// States is the number of reachable states examined.
	States *big.Int
	// Verdicts are per-property outcomes, in property order.
	Verdicts []Verdict
}

// Violations counts violated properties.
func (r *Report) Violations() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.Status == StatusViolated {
			n++
		}
	}
	return n
}

// Holds reports whether every property holds.
func (r *Report) Holds() bool {
	for _, v := range r.Verdicts {
		if v.Status != StatusHolds {
			return false
		}
	}
	return true
}

// Engine selects the evaluation strategy.
type Engine string

const (
	// EngineAuto picks explicit for specs within the 64-signal code
	// limit, symbolic beyond it.
	EngineAuto Engine = ""
	// EngineExplicit enumerates the state graph (reach.BuildSG) and
	// evaluates formulas as bit vectors over its states.
	EngineExplicit Engine = "explicit"
	// EngineSymbolic runs BDD fixpoints on the place-level encoding of
	// internal/symbolic; the state graph is never enumerated.
	EngineSymbolic Engine = "symbolic"
)

// Options tune a Check run.
type Options struct {
	// Engine selects explicit or symbolic evaluation; EngineAuto decides
	// from the spec size.
	Engine Engine
	// Workers parallelizes the explicit engine's state-space exploration
	// (reach.Options.Workers). The symbolic engine ignores it.
	Workers int
	// Budget adds cancellation and state/node ceilings. On a trip the
	// partial Report (finished verdicts kept, the rest StatusUnknown) is
	// returned alongside the typed budget error.
	Budget *budget.Budget
	// Obs is the parent observability span: the run records an
	// engine:prop-explicit or engine:prop-symbolic child span with the
	// prop.* counters. nil disables observability.
	Obs *obs.Span
}

// Check evaluates the properties against the STG's reachable state space.
// Formulas without temporal operators are implicit invariants (AG f);
// formulas with them are CTL, evaluated at the initial state. Violated
// invariants carry a counterexample trace, holding top-level EFs a witness
// trace.
//
// On a budget trip Check returns the partial Report together with the
// typed error from the budget taxonomy, so callers can distinguish "holds"
// from "ran out of budget".
func Check(g *stg.STG, props []Property, opts Options) (*Report, error) {
	if err := Bind(g, props); err != nil {
		return nil, err
	}
	eng := opts.Engine
	if eng == EngineAuto {
		if len(g.Signals) <= 64 {
			eng = EngineExplicit
		} else {
			eng = EngineSymbolic
		}
	}
	switch eng {
	case EngineExplicit:
		sp := opts.Obs.Child("engine:prop-explicit")
		rep, err := checkExplicit(g, props, opts, sp)
		record(sp, rep, err)
		return rep, err
	case EngineSymbolic:
		sp := opts.Obs.Child("engine:prop-symbolic")
		rep, err := checkSymbolic(g, props, opts, sp)
		record(sp, rep, err)
		return rep, err
	default:
		return nil, fmt.Errorf("prop: unknown engine %q", opts.Engine)
	}
}

// record writes run totals into the engine span and closes it.
func record(sp *obs.Span, rep *Report, err error) {
	if sp == nil {
		return
	}
	if rep != nil {
		reg := sp.Registry()
		reg.Counter("prop.properties").Add(int64(len(rep.Verdicts)))
		reg.Counter("prop.violations").Add(int64(rep.Violations()))
		if rep.States != nil {
			sp.Attr("states", rep.States.String())
		}
		sp.Attr("violations", strconv.Itoa(rep.Violations()))
	}
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.End()
}

// Bind validates every atom against the STG: signal atoms must name
// signals, marked() atoms places. Check runs it implicitly; cmd/verify and
// the service call it early for fail-fast diagnostics.
func Bind(g *stg.STG, props []Property) error {
	places := map[string]bool{}
	for _, p := range g.Net.Places {
		places[p.Name] = true
	}
	for _, pr := range props {
		if err := bindFormula(g, places, pr.F); err != nil {
			return fmt.Errorf("prop: property %q: %w", pr.Name, err)
		}
	}
	return nil
}

func bindFormula(g *stg.STG, places map[string]bool, f *Formula) error {
	if f == nil {
		return nil
	}
	switch f.Op {
	case OpSignal, OpExcited, OpEnabled:
		if g.SignalIndex(f.Name) < 0 {
			return fmt.Errorf("unknown signal %q", f.Name)
		}
	case OpPersistent:
		if f.Name != "" && g.SignalIndex(f.Name) < 0 {
			return fmt.Errorf("unknown signal %q", f.Name)
		}
	case OpMarked:
		if !places[f.Name] {
			return fmt.Errorf("unknown place %q", f.Name)
		}
	}
	if err := bindFormula(g, places, f.L); err != nil {
		return err
	}
	return bindFormula(g, places, f.R)
}

// unknownReport builds an all-unknown Report for budget trips that hit
// before any property was evaluated.
func unknownReport(engine string, props []Property) *Report {
	rep := &Report{Engine: engine, Verdicts: make([]Verdict, len(props))}
	for i, p := range props {
		rep.Verdicts[i] = Verdict{Property: p, Status: StatusUnknown}
	}
	return rep
}
