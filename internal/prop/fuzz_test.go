package prop

import (
	"strings"
	"testing"

	"repro/internal/stg"
)

// fuzzSTG is the tiny fixed model the fuzzer checks accepted properties
// against: a 4-state handshake with signals a/b so corpus formulas can bind.
const fuzzSTG = `
.model fz
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
`

// FuzzPropParse drives the property parser with arbitrary text. The parser
// must never panic; whenever it accepts an input, the canonical printing
// must be a parse fixed point. Properties that additionally bind against
// the small handshake model become a differential oracle: the explicit and
// symbolic engines must return identical verdicts, and every trace must
// replay on the net.
func FuzzPropParse(f *testing.F) {
	seeds := []string{
		"prop p : a\n",
		"prop p : !a & b | true -> false <-> a\n",
		"prop p : AG !(a & b)\nprop q : EF deadlock\n",
		"prop p : deadlock_free\nprop q : live(a)\n",
		"prop p : persistent\nprop q : persistent(b)\n",
		"prop p : usc_conflict | csc_conflict\n",
		"prop p : marked(<b-,a+>) & enabled(a+) & excited(b)\n",
		"prop p : AG (enabled(a+) -> EF enabled(b-))\n",
		"# comment\n\nprop p : a # tail\n",
		"prop p : ((((a))))\n",
		"prop p : !!!!a\n",
		"prop p : a &&& b\n",
		"prop p : enabled(a~)\n",
		"prop p : marked(nosuch)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g, err := stg.ParseG(strings.NewReader(fuzzSTG))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		props, err := Parse(src)
		if err != nil {
			return // rejected input: only the no-panic guarantee applies
		}
		printed := Print(props)
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("own output rejected: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if p2 := Print(again); p2 != printed {
			t.Fatalf("canonical form is not a fixed point:\n--- first\n%s--- second\n%s", printed, p2)
		}
		if len(props) == 0 || Bind(g, props) != nil {
			return
		}
		exp, err := Check(g, props, Options{Engine: EngineExplicit})
		if err != nil {
			t.Fatalf("explicit on bound properties: %v\ninput: %q", err, src)
		}
		sym, err := Check(g, props, Options{Engine: EngineSymbolic})
		if err != nil {
			t.Fatalf("symbolic on bound properties: %v\ninput: %q", err, src)
		}
		for i := range props {
			if exp.Verdicts[i].Status != sym.Verdicts[i].Status {
				t.Fatalf("engines disagree on %s: explicit %v, symbolic %v\ninput: %q",
					props[i].Name, exp.Verdicts[i].Status, sym.Verdicts[i].Status, src)
			}
		}
		for _, rep := range []*Report{exp, sym} {
			for _, v := range rep.Verdicts {
				if v.Trace == nil {
					continue
				}
				if err := ReplayTrace(g, v.Trace); err != nil {
					t.Fatalf("%s/%s: trace does not replay: %v\ninput: %q",
						rep.Engine, v.Property.Name, err, src)
				}
			}
		}
	})
}
