package prop

import (
	"fmt"
	"strings"

	"repro/internal/stg"
	"repro/internal/ts"
)

// Step is one state along a trace: the event fired to enter it (empty for
// the initial step), the binary signal code, and the marking.
type Step struct {
	Event   string
	Code    ts.Code
	Marking []bool
}

// Trace is a firing sequence from the initial state, used as a
// counterexample (path to a state violating an invariant) or witness
// (path to a state proving an EF). Both engines produce the same shape, so
// traces can be replayed against the net regardless of which engine found
// them.
type Trace struct {
	// Signals are the STG's signals, parallel to the code bits.
	Signals []stg.Signal
	// Places are the net's place names, parallel to Step.Marking.
	Places []string
	Steps  []Step
}

// Events returns the fired event names, space-separated.
func (t *Trace) Events() string {
	var names []string
	for _, s := range t.Steps {
		if s.Event != "" {
			names = append(names, s.Event)
		}
	}
	return strings.Join(names, " ")
}

// Waveform renders the trace as the ASCII timing diagram shared with
// SG.ASCIIWaveform: one row per signal, two columns per step, '/' and '\'
// marking edges.
func (t *Trace) Waveform() string {
	codes := make([]ts.Code, len(t.Steps))
	for i, s := range t.Steps {
		codes[i] = s.Code
	}
	return ts.RenderWaveform(t.Signals, codes)
}

// ReplayTrace fires the trace's event sequence on g's net from the
// initial marking and checks that every step's marking and code match
// what actually results from the token game. It returns nil only for
// genuine runs, making it the validity oracle for counterexamples and
// witnesses from either engine.
func ReplayTrace(g *stg.STG, t *Trace) error {
	if t == nil || len(t.Steps) == 0 {
		return fmt.Errorf("prop: empty trace")
	}
	n := g.Net
	m := n.InitialMarking()
	var code ts.Code
	for i, step := range t.Steps {
		if i == 0 {
			if step.Event != "" {
				return fmt.Errorf("prop: initial step carries event %q", step.Event)
			}
			code = step.Code
		} else {
			tr := n.TransitionIndex(step.Event)
			if tr < 0 {
				return fmt.Errorf("prop: step %d fires unknown transition %q", i, step.Event)
			}
			if !n.Enabled(m, tr) {
				return fmt.Errorf("prop: step %d fires disabled transition %q", i, step.Event)
			}
			m = n.Fire(m, tr)
			if l := g.Labels[tr]; l.Sig >= 0 {
				switch l.Dir {
				case stg.Rise:
					if code.Bit(l.Sig) {
						return fmt.Errorf("prop: step %d rises %s from 1", i, g.Signals[l.Sig].Name)
					}
					code = code.Set(l.Sig, true)
				case stg.Fall:
					if !code.Bit(l.Sig) {
						return fmt.Errorf("prop: step %d falls %s from 0", i, g.Signals[l.Sig].Name)
					}
					code = code.Set(l.Sig, false)
				default:
					code = code.Flip(l.Sig)
				}
			}
		}
		if step.Code != code {
			return fmt.Errorf("prop: step %d code %s, replay gives %s",
				i, step.Code.String(len(g.Signals)), code.String(len(g.Signals)))
		}
		if len(step.Marking) != len(n.Places) {
			return fmt.Errorf("prop: step %d marking has %d places, net has %d",
				i, len(step.Marking), len(n.Places))
		}
		for p, want := range step.Marking {
			if got := m[p] > 0; got != want {
				return fmt.Errorf("prop: step %d place %s marked=%v, replay gives %v",
					i, n.Places[p].Name, want, got)
			}
		}
	}
	return nil
}

// String renders the event sequence and the final marking.
func (t *Trace) String() string {
	if len(t.Steps) == 0 {
		return "<empty trace>"
	}
	last := t.Steps[len(t.Steps)-1]
	var marked []string
	for p, m := range last.Marking {
		if m && p < len(t.Places) {
			marked = append(marked, t.Places[p])
		}
	}
	ev := t.Events()
	if ev == "" {
		ev = "<initial state>"
	}
	return fmt.Sprintf("%s -> {%s}", ev, strings.Join(marked, ","))
}
