package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// The chaos scenarios below follow one script: start an armed generation,
// drive it onto the kill site, watch it SIGKILL itself, restart unarmed on
// the same data dir, and assert the recovery invariants over HTTP.

const tinySpec = `.model tiny
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
`

var serveBin string

func TestMain(m *testing.M) {
	tmp, err := os.MkdirTemp("", "chaos-serve-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
	serveBin = filepath.Join(tmp, "serve")
	if out, err := exec.Command("go", "build", "-o", serveBin, "repro/cmd/serve").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos: building cmd/serve: %v\n%s", err, out)
		os.RemoveAll(tmp)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}

// leakCheck snapshots the goroutine count and returns a function that fails
// the test if the count has not settled back by the deadline — the harness
// must not leak watchers across daemon generations.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// wireResp is the subset of the serve wire Response the invariants read.
type wireResp struct {
	JobID     string          `json:"job_id"`
	Status    string          `json:"status"`
	TraceID   string          `json:"trace_id"`
	Cached    bool            `json:"cached"`
	Error     string          `json:"error"`
	ErrorKind string          `json:"error_kind"`
	Attempts  []string        `json:"attempts"`
	Result    json.RawMessage `json:"result"`
}

// chaosTraceparent is the fixed W3C trace context every postSynth carries;
// the trace id is journaled with the accept record, so it must survive a
// crash and restart along with the job.
const (
	chaosTraceparent = "00-c4a05c75a11b44e59c2255a4a0e5f7d1-00f067aa0ba902b7-01"
	chaosTraceID     = "c4a05c75a11b44e59c2255a4a0e5f7d1"
)

// postSynth submits the tiny spec. async jobs come back 202 with a job id;
// lostOK tolerates a connection torn by the daemon dying mid-response (the
// whole point of some scenarios).
func postSynth(t *testing.T, addr string, async, lostOK bool) *wireResp {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"spec": tinySpec, "async": async})
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", chaosTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if lostOK {
			return nil
		}
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wireResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		if lostOK {
			return nil
		}
		t.Fatalf("decoding response: %v", err)
	}
	return &out
}

func getJob(t *testing.T, addr, id string) *wireResp {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out wireResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func pollJob(t *testing.T, addr, id string, until func(*wireResp) bool) *wireResp {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		out := getJob(t, addr, id)
		if until(out) {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %q (%s)", id, out.Status, out.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func counters(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

func getStatus(t *testing.T, addr, path string) int {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestCrashJournalAppend kills the daemon halfway through an fsync'd journal
// append (a genuinely torn record on disk). The job whose accept record
// landed before the torn write must survive the crash: the restarted daemon
// replays the journal, tolerates the torn tail, re-enqueues the job and
// completes it. Zero acknowledged jobs lost.
func TestCrashJournalAppend(t *testing.T) {
	defer leakCheck(t)()
	dir := t.TempDir()

	// Append #1 is j1's accept record (completes); append #2 is the start
	// record the single worker writes when it picks j1 up — armed, it tears.
	p, err := Start(serveBin, dir, "serve.journal.append:2", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	postSynth(t, p.Addr, true, true) // ack may race the death; the journal is the contract
	if err := p.WaitSIGKILL(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	p2, err := Start(serveBin, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	out := pollJob(t, p2.Addr, "j1", func(r *wireResp) bool { return r.Status == "done" })
	if len(out.Result) == 0 {
		t.Fatalf("recovered job finished without a result: %+v", out)
	}
	// The trace id rode the journaled accept record across the crash: the
	// recovered job still answers with the trace the original request carried.
	if out.TraceID != chaosTraceID {
		t.Fatalf("recovered job trace_id = %q, want journaled %q", out.TraceID, chaosTraceID)
	}
	if c := counters(t, p2.Addr); c["serve.jobs_recovered"] != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", c["serve.jobs_recovered"])
	}
	if !strings.Contains(p2.Log(), "truncated final record") {
		t.Fatalf("torn journal tail not logged:\n%s", p2.Log())
	}
	if err := p2.Stop(15 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidJob kills the daemon while a job is running (after its start
// record). The restarted daemon must report the job as interrupted — not
// silently re-run it, not forget it — and keep serving new work.
func TestCrashMidJob(t *testing.T) {
	defer leakCheck(t)()
	dir := t.TempDir()

	p, err := Start(serveBin, dir, "serve.job.run:1", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	postSynth(t, p.Addr, true, true)
	if err := p.WaitSIGKILL(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	p2, err := Start(serveBin, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	out := pollJob(t, p2.Addr, "j1", func(r *wireResp) bool { return r.Status != "queued" && r.Status != "running" })
	if out.Status != "interrupted" || out.ErrorKind != "interrupted" {
		t.Fatalf("died-mid-run job: status=%q kind=%q, want interrupted", out.Status, out.ErrorKind)
	}
	if c := counters(t, p2.Addr); c["serve.jobs_interrupted"] != 1 {
		t.Fatalf("jobs_interrupted = %d, want 1", c["serve.jobs_interrupted"])
	}
	// The daemon is healthy after recovery: fresh work completes.
	if out := postSynth(t, p2.Addr, false, false); out.Status != "done" {
		t.Fatalf("fresh job after recovery: %q (%s)", out.Status, out.Error)
	}
	if err := p2.Stop(15 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidCacheWrite kills the daemon halfway through writing a result
// to the disk cache. The torn temp file must never become visible: the
// restart sweeps it, the entry is a miss, and re-running the request
// produces and then replays a byte-identical cached result.
func TestCrashMidCacheWrite(t *testing.T) {
	defer leakCheck(t)()
	dir := t.TempDir()

	p, err := Start(serveBin, dir, "serve.cache.write:1", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	postSynth(t, p.Addr, true, true)
	if err := p.WaitSIGKILL(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The death left at most a torn .tmp, never a committed entry.
	if res, _ := filepath.Glob(filepath.Join(dir, "cache", "*.res")); len(res) != 0 {
		t.Fatalf("torn cache write committed an entry: %v", res)
	}

	p2, err := Start(serveBin, dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "cache", "*.tmp")); len(tmps) != 0 {
		t.Fatalf("restart did not sweep torn temp files: %v", tmps)
	}
	// The interrupted writer's job is reported, and the same request now
	// runs fresh (no torn read), caches, and replays byte-identically.
	pollJob(t, p2.Addr, "j1", func(r *wireResp) bool { return r.Status == "interrupted" })
	first := postSynth(t, p2.Addr, false, false)
	if first.Status != "done" || first.Cached {
		t.Fatalf("first re-run: status=%q cached=%v (%s)", first.Status, first.Cached, first.Error)
	}
	second := postSynth(t, p2.Addr, false, false)
	if !second.Cached || !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached replay mismatch: cached=%v, byte-identical=%v",
			second.Cached, bytes.Equal(first.Result, second.Result))
	}
	if err := p2.Stop(15 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestHealthEndpoints checks liveness and readiness over a real daemon
// lifecycle: both 200 while serving, and the process drains cleanly on
// SIGTERM (readiness flipping during Shutdown is covered in-process by the
// serve package tests; a drained process can no longer answer).
func TestHealthEndpoints(t *testing.T) {
	defer leakCheck(t)()
	p, err := Start(serveBin, t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	if code := getStatus(t, p.Addr, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code := getStatus(t, p.Addr, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	if err := p.Stop(15 * time.Second); err != nil {
		t.Fatal(err)
	}
}
