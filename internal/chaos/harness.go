// Package chaos is the crash-recovery harness for cmd/serve: it runs the
// daemon as a real subprocess, arms faultinject kill sites through the
// environment so the process SIGKILLs itself at named points — journal
// append, mid-job, mid-cache-write — then restarts it on the same data
// directory and asserts the recovery invariants: no acknowledged job is
// lost, a job that died mid-run is reported as interrupted, and a torn
// cache write is never served.
//
// The harness is deliberately out-of-process: in-process fault injection
// cannot model a SIGKILL (deferred cleanups still run), and the whole point
// of the durability layer is surviving deaths where nothing gets to clean
// up.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/faultinject"
)

// Proc is one daemon generation under harness control.
type Proc struct {
	// Addr is the bound host:port once Start returns.
	Addr string

	cmd  *exec.Cmd
	exit chan error // receives cmd.Wait() exactly once

	mu   sync.Mutex
	logb bytes.Buffer
}

// Start launches bin on a fresh port over dataDir and blocks until the
// daemon reports its listen address. crashSpec, when non-empty, arms a
// faultinject kill site ("site:N") in the child's environment.
func Start(bin, dataDir, crashSpec string, extra ...string) (*Proc, error) {
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Env = os.Environ()
	if crashSpec != "" {
		cmd.Env = append(cmd.Env, faultinject.CrashEnv+"="+crashSpec)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	p := &Proc{cmd: cmd, exit: make(chan error, 1)}
	cmd.Stderr = procWriter{p}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		// Read stdout to EOF before Wait (Wait closes the pipe): the
		// goroutine ends exactly when the child dies, so the harness leaks
		// nothing across generations.
		buf := make([]byte, 4096)
		var line strings.Builder
		for {
			n, rerr := stdout.Read(buf)
			if n > 0 {
				p.log(string(buf[:n]))
				line.WriteString(string(buf[:n]))
				if txt := line.String(); strings.Contains(txt, "\n") {
					for _, l := range strings.Split(txt, "\n") {
						if a, ok := strings.CutPrefix(l, "serve: listening on http://"); ok {
							select {
							case addrc <- a:
							default:
							}
						}
					}
					line.Reset()
				}
			}
			if rerr != nil {
				break
			}
		}
		p.exit <- cmd.Wait()
	}()
	select {
	case a := <-addrc:
		p.Addr = a
		return p, nil
	case err := <-p.exit:
		return nil, fmt.Errorf("serve exited before listening: %v\n%s", err, p.Log())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-p.exit
		return nil, fmt.Errorf("serve did not report a listen address within 30s\n%s", p.Log())
	}
}

// WaitSIGKILL blocks until the armed child dies and verifies it died by its
// own SIGKILL — the faultinject crash — not a clean exit or another signal.
func (p *Proc) WaitSIGKILL(timeout time.Duration) error {
	select {
	case err := <-p.exit:
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			return fmt.Errorf("serve exited cleanly (%v), want SIGKILL\n%s", err, p.Log())
		}
		ws, ok := ee.Sys().(syscall.WaitStatus)
		if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			return fmt.Errorf("serve died with %v, want SIGKILL\n%s", err, p.Log())
		}
		return nil
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-p.exit
		return fmt.Errorf("serve still alive after %v — the kill site never fired\n%s", timeout, p.Log())
	}
}

// Stop drains the daemon with SIGTERM and waits for a clean exit.
func (p *Proc) Stop(timeout time.Duration) error {
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-p.exit:
		return err
	case <-time.After(timeout):
		p.cmd.Process.Kill()
		<-p.exit
		return fmt.Errorf("serve did not drain within %v\n%s", timeout, p.Log())
	}
}

// Log returns everything the child wrote to stdout and stderr so far.
func (p *Proc) Log() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.logb.String()
}

func (p *Proc) log(s string) {
	p.mu.Lock()
	p.logb.WriteString(s)
	p.mu.Unlock()
}

// procWriter funnels the child's stderr into the shared log buffer.
type procWriter struct{ p *Proc }

func (w procWriter) Write(b []byte) (int, error) {
	w.p.log(string(b))
	return len(b), nil
}
