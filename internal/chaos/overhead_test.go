package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestWarmJournalOverhead pins the acceptance bound on the durability tax:
// the p50 latency of a warm (cache-hit) /v1/synthesize on a durable server
// must be within 10% of the in-memory server. Warm hits are served from the
// memory tier before any journal involvement, so the true overhead is ~0;
// the bound catches a regression that drags the journal or disk tier into
// the hot path. Best-of-three to damp scheduler noise on loaded CI.
func TestWarmJournalOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement; skipped in -short")
	}
	body, err := json.Marshal(map[string]any{"spec": tinySpec})
	if err != nil {
		t.Fatal(err)
	}
	warmP50 := func(cfg serve.Config) time.Duration {
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		defer func() {
			hs.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		post := func() {
			resp, err := http.Post(hs.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var out struct {
				Status string `json:"status"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Status != "done" {
				t.Fatalf("warm request: %q (%v)", out.Status, err)
			}
			resp.Body.Close()
		}
		post() // cold run primes the cache
		const samples = 150
		durs := make([]time.Duration, samples)
		for i := range durs {
			start := time.Now()
			post()
			durs[i] = time.Since(start)
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return durs[samples/2]
	}

	var best float64 = 1 << 30
	for round := 0; round < 3; round++ {
		plain := warmP50(serve.Config{Workers: 2})
		durable := warmP50(serve.Config{Workers: 2, DataDir: t.TempDir()})
		ratio := float64(durable) / float64(plain)
		t.Logf("round %d: plain p50 %v, durable p50 %v, ratio %.3f", round, plain, durable, ratio)
		if ratio < best {
			best = ratio
		}
		if best <= 1.10 {
			return
		}
	}
	t.Fatalf("warm p50 journaling overhead %.1f%% > 10%%", (best-1)*100)
}
