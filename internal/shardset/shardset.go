// Package shardset provides a concurrency-safe string-keyed set sharded
// across independent lock-free hash tables. It is the visited table of the
// parallel explicit reachability engine (Section 2.2 state-space taming):
// markings hash to a shard by FNV-1a of their byte key, and within a shard
// keys live in an open-addressed table whose slots are claimed by
// compare-and-swap — no mutex is held on any insert or lookup path. Every
// key is assigned a unique dense id at insertion time by an atomic
// reservation on a shared counter.
//
// Memory model. A slot moves empty → busy (CAS claim) → full (release
// store); the key and id are plain-written between the claim and the
// release. Readers that atomically observe state full therefore see the
// fully initialized key/id (the atomic store/load pair is the
// happens-before edge). Probes never pass a busy slot, so a probe chain
// can never skip a key that is being published. Growth is cooperative:
// the inserter that trips the load factor drains in-flight writers
// (tracked by a per-shard atomic count), copies the published slots into a
// double-size table, and swaps the table pointer atomically; readers keep
// probing their snapshot lock-free throughout.
package shardset

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Set is a sharded set of string keys. Each first insertion of a key
// receives a unique id in [0, Len()); the ids are dense but their
// assignment order is scheduling-dependent under concurrency (callers that
// need a canonical order renumber in a deterministic post-pass).
type Set struct {
	shards []shard
	mask   uint32
	n      atomic.Int64
	limit  int64 // 0 = unlimited

	casRetries atomic.Int64
	resizes    atomic.Int64
}

// Stats is a snapshot of the set's contention counters.
type Stats struct {
	// CASRetries counts failed claim attempts on empty slots — two
	// inserters raced for the same slot and one re-probed.
	CASRetries int64
	// Resizes counts cooperative table doublings across all shards.
	Resizes int64
}

// Stats returns a snapshot of the contention counters. It may be called
// concurrently with insertions.
func (s *Set) Stats() Stats {
	return Stats{CASRetries: s.casRetries.Load(), Resizes: s.resizes.Load()}
}

// Slot states. A slot is claimed empty → busy by CAS and published
// busy → full by a release store; busy → empty rolls back a claim that the
// insertion limit refused.
const (
	slotEmpty int32 = iota
	slotBusy
	slotFull
)

// slot is one open-addressed table entry. hash caches the key's full
// 32-bit hash so probes compare one word before the string and resizes
// never rehash the keys.
type slot struct {
	state atomic.Int32
	hash  uint32
	id    int32
	key   string
}

// table is one shard's open-addressed slot array (power-of-two sized).
type table struct {
	mask  uint32
	slots []slot
}

// shardCore holds one shard's mutable state. The padding applied by shard
// is derived from this struct's size, so layout changes cannot silently
// reintroduce false sharing (the fix for the fixed-size padding that
// assumed a map header).
type shardCore struct {
	tab      atomic.Pointer[table]
	writers  atomic.Int32 // inserters inside the current table epoch
	resizing atomic.Bool  // a resize is draining writers / copying
	used     atomic.Int32 // claimed + published slots in the current table
	mu       sync.Mutex   // serializes resizes only
}

// cacheLine is the padding unit: shards are padded to a multiple of it so
// neighbouring shards' hot atomics do not false-share.
const cacheLine = 64

// shardPad rounds shardCore up to the next cache-line multiple, computed
// from the actual layout rather than assumed.
const shardPad = (cacheLine - unsafe.Sizeof(shardCore{})%cacheLine) % cacheLine

type shard struct {
	shardCore
	_ [shardPad]byte
}

// initialShardSlots is the starting table size of each shard.
const initialShardSlots = 16

// New returns a set with the given shard count, rounded up to a power of
// two (minimum 1).
func New(shards int) *Set {
	return NewLimited(shards, 0)
}

// NewLimited returns a set that refuses insertions beyond limit keys
// (0 = unlimited). The limit is exact: Len never exceeds it, and a refused
// Add implies the total number of distinct keys offered exceeds the limit.
func NewLimited(shards, limit int) *Set {
	n := 1
	for n < shards && n < 1<<10 {
		n <<= 1
	}
	s := &Set{shards: make([]shard, n), mask: uint32(n - 1), limit: int64(limit)}
	for i := range s.shards {
		s.shards[i].tab.Store(&table{
			mask:  initialShardSlots - 1,
			slots: make([]slot, initialShardSlots),
		})
	}
	return s
}

// Add inserts key if absent. It returns the key's id and whether this call
// inserted it. When the set is at its limit and key is new, Add returns
// (-1, false).
func (s *Set) Add(key string) (id int, added bool) {
	h := fnv32a(key)
	sh := &s.shards[h&s.mask]
	for {
		if sh.resizing.Load() {
			// A resize is in flight: wait for it on its mutex rather than
			// spinning against the drain.
			sh.mu.Lock()
			sh.mu.Unlock() //nolint:staticcheck // gate, not a critical section
			continue
		}
		sh.writers.Add(1)
		if sh.resizing.Load() {
			// The resize began between the check and the registration;
			// deregister so the drain can finish, then wait.
			sh.writers.Add(-1)
			continue
		}
		tab := sh.tab.Load()
		id, added, grow, ok := s.insert(sh, tab, h, key)
		sh.writers.Add(-1)
		if grow || !ok {
			// Either this insert tripped the eager load-factor threshold,
			// or the hard half-full reservation cap refused the claim (the
			// key is still uninserted). Grow, then return or retry.
			s.grow(sh, tab)
		}
		if ok {
			return id, added
		}
	}
}

// insert probes the shard's table for key, claiming the first empty slot
// if absent. It runs inside the writers guard, so the table cannot be
// swapped underneath it. Slot claims reserve capacity on sh.used first and
// the reservation cap keeps every table at most half full, so a probe
// always terminates at an empty slot. grow reports that this insert
// tripped the eager growth threshold (3/8 full); ok=false reports a claim
// refused by the hard cap — the caller grows and retries.
func (s *Set) insert(sh *shard, tab *table, h uint32, key string) (id int, added, grow, ok bool) {
	i := probeStart(h) & tab.mask
	for {
		sl := &tab.slots[i]
		switch sl.state.Load() {
		case slotFull:
			if sl.hash == h && sl.key == key {
				return int(sl.id), false, false, true
			}
		case slotEmpty:
			u := int(sh.used.Add(1))
			if u*2 > len(tab.slots) {
				sh.used.Add(-1)
				return 0, false, false, false
			}
			if !sl.state.CompareAndSwap(slotEmpty, slotBusy) {
				// Lost the claim race; re-examine the slot (the winner may
				// be publishing this very key).
				sh.used.Add(-1)
				s.casRetries.Add(1)
				continue
			}
			n := s.n.Add(1)
			if s.limit > 0 && n > s.limit {
				// Roll back both reservations and release the slot. The
				// transient over-count cannot admit an extra key elsewhere:
				// any concurrently rejected Add also held a genuinely new
				// key, so the true total exceeds the limit anyway.
				s.n.Add(-1)
				sh.used.Add(-1)
				sl.state.Store(slotEmpty)
				return -1, false, false, true
			}
			sl.hash = h
			sl.id = int32(n - 1)
			sl.key = key
			sl.state.Store(slotFull) // release: publishes hash/id/key
			return int(n - 1), true, u*8 >= len(tab.slots)*3, true
		case slotBusy:
			// Another inserter is publishing this slot; its work between
			// claim and release is a handful of stores, so spin briefly.
			runtime.Gosched()
			continue
		}
		i = (i + 1) & tab.mask
	}
}

// grow cooperatively doubles sh's table: it drains in-flight writers,
// copies the published slots (no busy slot can exist once writers are
// drained), and swaps the table pointer. Readers keep probing their
// snapshot; every key in the old table is also in the new one. old is the
// table the caller observed — if it has already been replaced, the growth
// it wanted has happened.
func (s *Set) grow(sh *shard, old *table) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tab := sh.tab.Load()
	if tab != old {
		return // another grower already ran
	}
	sh.resizing.Store(true)
	for sh.writers.Load() != 0 {
		runtime.Gosched()
	}
	nt := &table{
		mask:  uint32(len(tab.slots)*2 - 1),
		slots: make([]slot, len(tab.slots)*2),
	}
	moved := int32(0)
	for i := range tab.slots {
		sl := &tab.slots[i]
		if sl.state.Load() != slotFull {
			continue
		}
		j := probeStart(sl.hash) & nt.mask
		for nt.slots[j].state.Load() == slotFull {
			j = (j + 1) & nt.mask
		}
		ns := &nt.slots[j]
		ns.hash, ns.id, ns.key = sl.hash, sl.id, sl.key
		ns.state.Store(slotFull)
		moved++
	}
	sh.used.Store(moved)
	sh.tab.Store(nt)
	sh.resizing.Store(false)
	s.resizes.Add(1)
}

// Get returns the id of key, if present. It is lock-free: a concurrent
// resize never blocks it, and any key whose insertion happened before the
// Get is found.
func (s *Set) Get(key string) (int, bool) {
	h := fnv32a(key)
	sh := &s.shards[h&s.mask]
	tab := sh.tab.Load()
	i := probeStart(h) & tab.mask
	for {
		sl := &tab.slots[i]
		switch sl.state.Load() {
		case slotFull:
			if sl.hash == h && sl.key == key {
				return int(sl.id), true
			}
		case slotEmpty:
			return 0, false
		case slotBusy:
			// A concurrent insert is publishing here; it may be this key.
			runtime.Gosched()
			continue
		}
		i = (i + 1) & tab.mask
	}
}

// Len returns the number of keys in the set.
func (s *Set) Len() int { return int(s.n.Load()) }

// probeStart remixes a key hash into its in-shard probe origin. The shard
// index consumes the low bits of the hash, so the probe origin uses an
// independent mix of all 32.
func probeStart(h uint32) uint32 {
	x := h * 0x9e3779b9
	return x ^ x>>16
}

// fnv32a is the 32-bit FNV-1a hash.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
