// Package shardset provides a concurrency-safe string-keyed set sharded
// across independently locked hash buckets. It is the visited table of the
// parallel explicit reachability engine (Section 2.2 state-space taming):
// markings hash to a shard by FNV-1a of their byte key, so concurrent
// workers rarely contend on the same mutex, and every key is assigned a
// unique dense id at insertion time.
package shardset

import (
	"sync"
	"sync/atomic"
)

// Set is a sharded set of string keys. Each first insertion of a key
// receives a unique id in [0, Len()); the ids are dense but their
// assignment order is scheduling-dependent under concurrency (callers that
// need a canonical order renumber in a deterministic post-pass).
type Set struct {
	shards []shard
	mask   uint32
	n      atomic.Int64
	limit  int64 // 0 = unlimited
}

type shard struct {
	mu sync.Mutex
	m  map[string]int
	// Pad each shard to its own cache line so neighbouring mutexes do not
	// false-share under contention.
	_ [40]byte
}

// New returns a set with the given shard count, rounded up to a power of
// two (minimum 1).
func New(shards int) *Set {
	return NewLimited(shards, 0)
}

// NewLimited returns a set that refuses insertions beyond limit keys
// (0 = unlimited). The limit is exact: Len never exceeds it, and a refused
// Add implies the total number of distinct keys offered exceeds the limit.
func NewLimited(shards, limit int) *Set {
	n := 1
	for n < shards && n < 1<<10 {
		n <<= 1
	}
	s := &Set{shards: make([]shard, n), mask: uint32(n - 1), limit: int64(limit)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]int)
	}
	return s
}

// Add inserts key if absent. It returns the key's id and whether this call
// inserted it. When the set is at its limit and key is new, Add returns
// (-1, false).
func (s *Set) Add(key string) (id int, added bool) {
	sh := &s.shards[fnv32a(key)&s.mask]
	sh.mu.Lock()
	if id, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		return id, false
	}
	n := s.n.Add(1)
	if s.limit > 0 && n > s.limit {
		// Roll back the reservation. The transient over-count cannot admit
		// an extra key elsewhere: any concurrently rejected Add also held a
		// genuinely new key, so the true total exceeds the limit anyway.
		s.n.Add(-1)
		sh.mu.Unlock()
		return -1, false
	}
	id = int(n - 1)
	sh.m[key] = id
	sh.mu.Unlock()
	return id, true
}

// Get returns the id of key, if present.
func (s *Set) Get(key string) (int, bool) {
	sh := &s.shards[fnv32a(key)&s.mask]
	sh.mu.Lock()
	id, ok := sh.m[key]
	sh.mu.Unlock()
	return id, ok
}

// Len returns the number of keys in the set.
func (s *Set) Len() int { return int(s.n.Load()) }

// fnv32a is the 32-bit FNV-1a hash.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
