package shardset

import (
	"fmt"
	"sync"
	"testing"
)

func TestAddGet(t *testing.T) {
	s := New(4)
	id, added := s.Add("a")
	if !added || id != 0 {
		t.Fatalf("first add: id=%d added=%v", id, added)
	}
	id, added = s.Add("a")
	if added || id != 0 {
		t.Fatalf("re-add: id=%d added=%v", id, added)
	}
	id, added = s.Add("b")
	if !added || id != 1 {
		t.Fatalf("second key: id=%d added=%v", id, added)
	}
	if got, ok := s.Get("a"); !ok || got != 0 {
		t.Fatalf("Get(a) = %d,%v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) must miss")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestConcurrentAddsAssignDenseUniqueIDs(t *testing.T) {
	const workers, keys = 8, 500
	s := New(workers)
	var wg sync.WaitGroup
	ids := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker offers every key: exactly one insertion wins per
			// key, and all workers must observe the same id for it.
			for k := 0; k < keys; k++ {
				id, _ := s.Add(fmt.Sprintf("key-%d", k))
				ids[w] = append(ids[w], id)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	seen := make([]bool, keys)
	for k, id := range ids[0] {
		if id < 0 || id >= keys || seen[id] {
			t.Fatalf("key %d: id %d out of range or duplicated", k, id)
		}
		seen[id] = true
		for w := 1; w < workers; w++ {
			if ids[w][k] != id {
				t.Fatalf("key %d: worker %d saw id %d, worker 0 saw %d", k, w, ids[w][k], id)
			}
		}
	}
}

func TestLimit(t *testing.T) {
	s := NewLimited(2, 3)
	for _, k := range []string{"a", "b", "c"} {
		if id, added := s.Add(k); !added || id < 0 {
			t.Fatalf("Add(%s) under limit: id=%d added=%v", k, id, added)
		}
	}
	if id, added := s.Add("d"); added || id != -1 {
		t.Fatalf("Add over limit: id=%d added=%v", id, added)
	}
	// Existing keys still resolve at the limit.
	if id, added := s.Add("b"); added || id != 1 {
		t.Fatalf("re-add at limit: id=%d added=%v", id, added)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
