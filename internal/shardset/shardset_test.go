package shardset

import (
	"fmt"
	"sync"
	"testing"
	"unsafe"
)

func TestAddGet(t *testing.T) {
	s := New(4)
	id, added := s.Add("a")
	if !added || id != 0 {
		t.Fatalf("first add: id=%d added=%v", id, added)
	}
	id, added = s.Add("a")
	if added || id != 0 {
		t.Fatalf("re-add: id=%d added=%v", id, added)
	}
	id, added = s.Add("b")
	if !added || id != 1 {
		t.Fatalf("second key: id=%d added=%v", id, added)
	}
	if got, ok := s.Get("a"); !ok || got != 0 {
		t.Fatalf("Get(a) = %d,%v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) must miss")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestConcurrentAddsAssignDenseUniqueIDs(t *testing.T) {
	const workers, keys = 8, 500
	s := New(workers)
	var wg sync.WaitGroup
	ids := make([][]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker offers every key: exactly one insertion wins per
			// key, and all workers must observe the same id for it.
			for k := 0; k < keys; k++ {
				id, _ := s.Add(fmt.Sprintf("key-%d", k))
				ids[w] = append(ids[w], id)
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	seen := make([]bool, keys)
	for k, id := range ids[0] {
		if id < 0 || id >= keys || seen[id] {
			t.Fatalf("key %d: id %d out of range or duplicated", k, id)
		}
		seen[id] = true
		for w := 1; w < workers; w++ {
			if ids[w][k] != id {
				t.Fatalf("key %d: worker %d saw id %d, worker 0 saw %d", k, w, ids[w][k], id)
			}
		}
	}
}

// TestDenseIDsUnderConcurrentInsertion pins the dense-ids invariant under
// -race: after disjoint concurrent insertions, every id in [0, Len())
// appears exactly once, with growth forced through tiny initial tables.
func TestDenseIDsUnderConcurrentInsertion(t *testing.T) {
	const workers, perWorker = 8, 2000
	s := New(4) // few shards: forces cooperative resizes under contention
	ids := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				id, added := s.Add(fmt.Sprintf("w%d-key-%d", w, k))
				if !added {
					t.Errorf("disjoint key not added (w=%d k=%d)", w, k)
					return
				}
				ids[w] = append(ids[w], id)
			}
		}(w)
	}
	wg.Wait()
	total := workers * perWorker
	if s.Len() != total {
		t.Fatalf("Len = %d, want %d", s.Len(), total)
	}
	seen := make([]bool, total)
	for w := range ids {
		for _, id := range ids[w] {
			if id < 0 || id >= total || seen[id] {
				t.Fatalf("id %d out of range or duplicated", id)
			}
			seen[id] = true
		}
	}
	// Every key must still resolve to the id its inserter observed.
	for w := range ids {
		for k, want := range ids[w] {
			if got, ok := s.Get(fmt.Sprintf("w%d-key-%d", w, k)); !ok || got != want {
				t.Fatalf("Get(w%d-key-%d) = %d,%v want %d", w, k, got, ok, want)
			}
		}
	}
	if s.Stats().Resizes == 0 {
		t.Fatal("16-slot initial tables must have resized under 16000 keys")
	}
}

// TestShardAlignment pins the padding derivation: shards must tile cache
// lines exactly, whatever fields shardCore grows, so neighbouring shards'
// atomics never share a line.
func TestShardAlignment(t *testing.T) {
	if sz := unsafe.Sizeof(shard{}); sz%cacheLine != 0 {
		t.Fatalf("shard size %d is not a multiple of the %d-byte cache line", sz, cacheLine)
	}
	if unsafe.Sizeof(shard{}) < unsafe.Sizeof(shardCore{}) {
		t.Fatal("padding must extend, not truncate, the shard")
	}
}

// TestGrowthKeepsAllKeys drives one shard through several doublings and
// checks no key or id is lost across table swaps.
func TestGrowthKeepsAllKeys(t *testing.T) {
	s := New(1)
	const n = 5000
	for k := 0; k < n; k++ {
		id, added := s.Add(fmt.Sprintf("key-%d", k))
		if !added || id != k {
			t.Fatalf("Add(key-%d) = %d,%v", k, id, added)
		}
	}
	for k := 0; k < n; k++ {
		if id, ok := s.Get(fmt.Sprintf("key-%d", k)); !ok || id != k {
			t.Fatalf("Get(key-%d) = %d,%v after growth", k, id, ok)
		}
	}
	if got := s.Stats().Resizes; got < 8 {
		t.Fatalf("expected >= 8 doublings from 16 slots to %d keys, got %d", n, got)
	}
}

// TestLimitConcurrent hammers a limited set from many goroutines offering
// overlapping keys: Len must never exceed the limit, admitted keys must
// have dense unique ids, and refused keys must be exactly the overflow.
func TestLimitConcurrent(t *testing.T) {
	const workers, keys, limit = 8, 300, 100
	s := NewLimited(4, limit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				s.Add(fmt.Sprintf("key-%d", k))
			}
		}()
	}
	wg.Wait()
	if s.Len() != limit {
		t.Fatalf("Len = %d, want exactly the limit %d", s.Len(), limit)
	}
	admitted := 0
	seen := make([]bool, limit)
	for k := 0; k < keys; k++ {
		if id, ok := s.Get(fmt.Sprintf("key-%d", k)); ok {
			if id < 0 || id >= limit || seen[id] {
				t.Fatalf("key-%d: id %d out of range or duplicated", k, id)
			}
			seen[id] = true
			admitted++
		}
	}
	if admitted != limit {
		t.Fatalf("%d keys admitted, want %d", admitted, limit)
	}
}

func TestLimit(t *testing.T) {
	s := NewLimited(2, 3)
	for _, k := range []string{"a", "b", "c"} {
		if id, added := s.Add(k); !added || id < 0 {
			t.Fatalf("Add(%s) under limit: id=%d added=%v", k, id, added)
		}
	}
	if id, added := s.Add("d"); added || id != -1 {
		t.Fatalf("Add over limit: id=%d added=%v", id, added)
	}
	// Existing keys still resolve at the limit.
	if id, added := s.Add("b"); added || id != 1 {
		t.Fatalf("re-add at limit: id=%d added=%v", id, added)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}
