package shardset

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkShardSetParallel is the contention microbenchmark of the
// lock-free visited table: every parallel worker inserts from a
// pre-generated key stream with a reachability-like duplicate ratio (each
// key offered by several workers, as markings are rediscovered along
// different firing orders). Run with -cpu 1,2,4,8 for the scaling axis:
//
//	go test -bench ShardSetParallel -cpu 1,2,4,8 ./internal/shardset/
func BenchmarkShardSetParallel(b *testing.B) {
	const distinct = 1 << 14
	keys := make([]string, distinct)
	for i := range keys {
		keys[i] = fmt.Sprintf("marking-%08x", i*2654435761)
	}
	b.Run("insert", func(b *testing.B) {
		var cursor atomic.Int64
		s := New(64)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := cursor.Add(1)
				s.Add(keys[int(i)%distinct])
			}
		})
		st := s.Stats()
		b.ReportMetric(float64(st.CASRetries), "cas_retries")
		b.ReportMetric(float64(st.Resizes), "resizes")
	})
	b.Run("lookup", func(b *testing.B) {
		s := New(64)
		for _, k := range keys {
			s.Add(k)
		}
		var cursor atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := cursor.Add(1)
				if _, ok := s.Get(keys[int(i)%distinct]); !ok {
					b.Fatal("present key missed")
				}
			}
		})
	})
}
