package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// The write-ahead job journal is the durability half of the service layer:
// an append-only JSONL file (<data-dir>/journal.jsonl) recording every job
// state transition, fsync'd before the transition takes effect. The record
// order is the recovery contract:
//
//	accept  — written (and synced) before the job enters the queue and
//	          before any response reaches the client, so every acknowledged
//	          job is on disk;
//	start   — a worker picked the job up; a crash after start and before
//	          finish means the job died mid-run and is reported as
//	          "interrupted" after restart (engines are not idempotent
//	          enough to silently re-run: the client may have observed the
//	          first attempt's side effects via /v1/jobs);
//	retry   — the crash-retry policy re-ran the job after a recovered
//	          panic, carrying the failed attempt trace;
//	cancel  — DELETE /v1/jobs landed; replay treats an unfinished canceled
//	          job as terminal instead of re-enqueueing it;
//	finish  — terminal status written after the result is cached.
//
// Replay tolerates a truncated final record — the torn tail of the write
// the crash interrupted — by stopping at the first undecodable line and
// reporting it, never by failing recovery. On startup the journal is
// compacted: finished jobs are dropped and a fresh journal holding only the
// recovered state is atomically swapped in, bounding growth across restarts.

// journalName is the journal file name under Config.DataDir.
const journalName = "journal.jsonl"

// journalRecord is one JSONL line. T selects the record type; only accept
// records carry the request payload (canonical spec text plus the
// result-shaping and budget options), which is exactly what replay needs to
// re-enqueue the job on a fresh process.
type journalRecord struct {
	T        string      `json:"t"` // accept | start | retry | cancel | finish
	Job      string      `json:"job"`
	Kind     string      `json:"kind,omitempty"`
	Key      string      `json:"key,omitempty"`
	Trace    string      `json:"trace,omitempty"` // request trace id (accept)
	Spec     string      `json:"spec,omitempty"`  // canonical .g rendering
	Impl     string      `json:"impl,omitempty"`  // verify: .eqn text
	Props    string      `json:"props,omitempty"` // verify: property file text
	Opts     *ReqOptions `json:"opts,omitempty"`
	Status   string      `json:"status,omitempty"`   // finish: done/failed/canceled/interrupted
	Error    string      `json:"error,omitempty"`    // finish (failed) and retry
	Attempts []string    `json:"attempts,omitempty"` // retry and finish: ladder trace
}

// journal is the append side. A nil *journal (no -data-dir) is a valid
// no-op sink, so call sites never branch on durability.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	records *obs.Counter
}

// openJournal opens (creating if absent) the journal for appending.
func openJournal(path string, records *obs.Counter) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{f: f, path: path, records: records}, nil
}

// append writes one record and fsyncs before returning, so a record the
// caller acts on is on disk first. The serve.journal.append kill site
// models the worst crash: when armed, the record is written in two synced
// halves with the death between them, leaving a genuinely torn tail for
// replay to tolerate.
func (j *journal) append(rec *journalRecord) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if faultinject.CrashArmed("serve.journal.append") {
		half := len(line) / 2
		if _, err := j.f.Write(line[:half]); err != nil {
			return fmt.Errorf("serve: journal: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("serve: journal: %w", err)
		}
		faultinject.Crash("serve.journal.append")
		line = line[half:]
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	j.records.Inc()
	return nil
}

// Close syncs and closes the journal file.
func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// replay is the journal's recovered state: which accepted jobs never
// reached a terminal record, and how far each one got.
type replay struct {
	accepts  map[string]*journalRecord
	order    []string // accept order
	started  map[string]bool
	attempts map[string][]string // accumulated retry traces
	terminal map[string]bool     // finish or cancel seen
	maxSeq   int
	// Truncated counts undecodable trailing bytes events (0 or 1): the torn
	// tail of the record a crash interrupted. Replay stops there; everything
	// before it is intact (records are fsync'd in order).
	Truncated bool
	// TruncatedLine is the byte-limited prefix of the bad line, for the log.
	TruncatedLine string
}

// replayJournal reads the journal back. A missing file is a clean cold
// start (empty replay, nil error). A torn final record is tolerated and
// flagged; an unreadable file is an error — recovery must not silently
// drop an intact journal.
func replayJournal(path string) (*replay, error) {
	rp := &replay{
		accepts:  map[string]*journalRecord{},
		started:  map[string]bool{},
		attempts: map[string][]string{},
		terminal: map[string]bool{},
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return rp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: journal replay: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20) // accept records carry whole specs
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			rp.markTruncated(line)
			break
		}
		rp.apply(&rec)
	}
	if err := sc.Err(); err != nil {
		// A final line over the buffer limit or a read error mid-tail: treat
		// like a torn tail — everything scanned so far is intact.
		rp.markTruncated([]byte(err.Error()))
	}
	return rp, nil
}

func (rp *replay) markTruncated(line []byte) {
	rp.Truncated = true
	if len(line) > 120 {
		line = line[:120]
	}
	rp.TruncatedLine = string(line)
}

func (rp *replay) apply(rec *journalRecord) {
	switch rec.T {
	case "accept":
		if _, dup := rp.accepts[rec.Job]; !dup {
			rp.accepts[rec.Job] = rec
			rp.order = append(rp.order, rec.Job)
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.Job, "j")); err == nil && n > rp.maxSeq {
			rp.maxSeq = n
		}
	case "start":
		rp.started[rec.Job] = true
	case "retry":
		rp.attempts[rec.Job] = append(rp.attempts[rec.Job], rec.Attempts...)
		if rec.Error != "" {
			rp.attempts[rec.Job] = append(rp.attempts[rec.Job], "retried after: "+rec.Error)
		}
	case "cancel", "finish":
		rp.terminal[rec.Job] = true
	}
}

// open returns the accept records of jobs with no terminal record, in
// accept order — the jobs recovery must account for.
func (rp *replay) open() []*journalRecord {
	var out []*journalRecord
	for _, id := range rp.order {
		if !rp.terminal[id] {
			out = append(out, rp.accepts[id])
		}
	}
	return out
}

// compact atomically replaces the journal with only the given records
// (the recovered state), dropping everything terminal. Called on startup
// before the journal is opened for appending.
func compactJournal(path string, recs []*journalRecord) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("serve: journal compact: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash of the
// directory entry itself. Best effort: some filesystems reject directory
// fsync, and the rename alone is already atomic.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
