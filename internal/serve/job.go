package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/prop"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/ts"
)

// Request is the JSON body of the POST /v1/parse, /v1/analyze,
// /v1/synthesize and /v1/verify endpoints.
type Request struct {
	// Spec is the specification in astg .g format.
	Spec string `json:"spec"`
	// Impl is the implementation in .eqn format (verify only). Optional
	// when Properties is given.
	Impl string `json:"impl,omitempty"`
	// Properties is a property file (`prop name : formula` lines, see
	// internal/prop) checked against the spec (verify only).
	Properties string `json:"properties,omitempty"`
	// Options tune the run; the zero value is a full default run.
	Options ReqOptions `json:"options"`
	// Async forces job-handle (true) or inline (false) execution.
	// Absent, the server decides by specification size (Config.AsyncThreshold).
	Async *bool `json:"async,omitempty"`
}

// ReqOptions is the wire form of the engine options. Only Style, MaxFanIn
// and SkipVerify shape the result; the rest bound or parallelize the run
// and are therefore excluded from the cache key (results are bit-identical
// at any worker count, and only complete results are cached).
type ReqOptions struct {
	Style      string `json:"style,omitempty"`       // complex (default), gc, rs
	PropEngine string `json:"prop_engine,omitempty"` // auto (default), explicit, symbolic
	MaxFanIn   int    `json:"max_fanin,omitempty"`
	SkipVerify bool   `json:"skip_verify,omitempty"`
	Fallback   bool   `json:"fallback,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	TimeoutMS  int    `json:"timeout_ms,omitempty"`
	MaxStates  int    `json:"max_states,omitempty"`
	MaxNodes   int    `json:"max_nodes,omitempty"`
	MaxEvents  int    `json:"max_events,omitempty"`
}

func (o ReqOptions) propEngine() (prop.Engine, error) {
	switch o.PropEngine {
	case "", "auto":
		return prop.EngineAuto, nil
	case "explicit", "symbolic":
		return prop.Engine(o.PropEngine), nil
	}
	return "", fmt.Errorf("unknown prop_engine %q", o.PropEngine)
}

func (o ReqOptions) style() (logic.Style, error) {
	switch o.Style {
	case "", "complex":
		return logic.ComplexGate, nil
	case "gc":
		return logic.GeneralizedC, nil
	case "rs":
		return logic.StandardC, nil
	}
	return 0, fmt.Errorf("unknown style %q", o.Style)
}

// budget builds the per-job budget; ctx carries cancellation (DELETE
// /v1/jobs/{id}, job timeout, shutdown past the drain deadline).
func (o ReqOptions) budget(ctx context.Context) *budget.Budget {
	return &budget.Budget{
		Ctx:       ctx,
		MaxStates: o.MaxStates,
		MaxNodes:  o.MaxNodes,
		MaxEvents: o.MaxEvents,
	}
}

// Response is the JSON body every endpoint returns. Result is the
// cacheable payload: on a cache hit it is replayed byte-identically from
// the store, so anything run-dependent (timings, job ids, metrics) lives
// outside it — per-request metrics fold into the server registry exposed
// at /metrics instead.
type Response struct {
	JobID  string `json:"job_id,omitempty"`
	Status string `json:"status"` // queued, running, done, failed, canceled, interrupted
	// TraceID is the 128-bit request trace id (hex): the incoming W3C
	// traceparent trace id when one was supplied, minted otherwise. Job
	// responses carry the trace of the request that created the job —
	// singleflight-attached and replayed-after-recovery requests included.
	TraceID string `json:"trace_id,omitempty"`
	Cached  bool   `json:"cached,omitempty"`
	// Key is the content address: SHA-256 over the canonical .g form plus
	// the canonical options encoding.
	Key       string          `json:"key,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"` // budget, canceled, internal, spec, overload, interrupted
	Attempts  []string        `json:"attempts,omitempty"`   // degradation-ladder trace on budget exits
	Result    json.RawMessage `json:"result,omitempty"`
	// RetryAfterMS mirrors the Retry-After header on overload (503)
	// rejections, unquantized.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`

	code int // HTTP status, not serialized
}

// Result payloads per kind. All fields are deterministic functions of the
// canonical spec + result-shaping options, which is what makes them safe
// to cache under the content address.

// ParseResult is the /v1/parse payload.
type ParseResult struct {
	Kind        string         `json:"kind"`
	Name        string         `json:"name"`
	Hash        string         `json:"hash"`
	Signals     map[string]int `json:"signals"` // count per kind: input, output, internal, dummy
	Transitions int            `json:"transitions"`
	Places      int            `json:"places"`
	Canonical   string         `json:"canonical"` // canonical .g rendering
}

// Properties is the wire form of ts.Implementability.
type Properties struct {
	Consistent   bool `json:"consistent"`
	USC          bool `json:"usc"`
	CSC          bool `json:"csc"`
	Persistent   bool `json:"persistent"`
	DeadlockFree bool `json:"deadlock_free"`
	OK           bool `json:"ok"`
}

func wireProps(p ts.Implementability) Properties {
	return Properties{
		Consistent: p.Consistent, USC: p.USC, CSC: p.CSC,
		Persistent: p.Persistent, DeadlockFree: p.DeadlockFree, OK: p.OK(),
	}
}

// AnalyzeResult is the /v1/analyze payload (implementability suite on the
// dummy-contracted state graph, mirroring the synthesis front end).
type AnalyzeResult struct {
	Kind       string     `json:"kind"`
	Name       string     `json:"name"`
	Hash       string     `json:"hash"`
	States     int        `json:"states"`
	Arcs       int        `json:"arcs"`
	Deadlocks  int        `json:"deadlocks"`
	Properties Properties `json:"properties"`
}

// Verification is the wire form of sim.Result.
type Verification struct {
	OK         bool     `json:"ok"`
	States     int      `json:"states"`
	Violations []string `json:"violations,omitempty"`
}

func wireVerification(r *sim.Result) *Verification {
	if r == nil {
		return nil
	}
	v := &Verification{OK: r.OK(), States: r.States}
	for _, viol := range r.Violations {
		v.Violations = append(v.Violations, viol.String())
	}
	return v
}

// SynthesizeResult is the /v1/synthesize payload.
type SynthesizeResult struct {
	Kind         string        `json:"kind"`
	Name         string        `json:"name"`
	Hash         string        `json:"hash"`
	States       int           `json:"states"`
	Properties   Properties    `json:"properties"`
	CSC          string        `json:"csc,omitempty"`
	Equations    string        `json:"equations,omitempty"`
	Gates        int           `json:"gates"`
	Literals     int           `json:"literals"`
	Spec         string        `json:"spec,omitempty"` // final .g after state-signal insertion
	Verification *Verification `json:"verification,omitempty"`
	Degraded     bool          `json:"degraded,omitempty"`
	Attempts     []string      `json:"attempts,omitempty"` // degraded runs only (timings are run-dependent)
}

// PropertyVerdict is the wire form of one prop.Verdict.
type PropertyVerdict struct {
	Name    string `json:"name"`
	Formula string `json:"formula"` // canonical rendering
	Status  string `json:"status"`  // holds, VIOLATED, unknown
	// Trace is the counterexample/witness firing sequence; Waveform its
	// ASCII timing diagram. Both empty when no trace applies.
	Trace    string `json:"trace,omitempty"`
	Waveform string `json:"waveform,omitempty"`
}

// VerifyResult is the /v1/verify payload. Verification is present when the
// request carried an impl netlist, Properties when it carried a property
// file; a request may ask for both.
type VerifyResult struct {
	Kind         string            `json:"kind"`
	Name         string            `json:"name"`
	Hash         string            `json:"hash"`
	ImplHash     string            `json:"impl_hash,omitempty"`
	Verification *Verification     `json:"verification,omitempty"`
	Properties   []PropertyVerdict `json:"properties,omitempty"`
	PropEngine   string            `json:"prop_engine,omitempty"`
	PropStates   string            `json:"prop_states,omitempty"`
}

// job is one queued engine run. The final Response is written exactly once
// under mu before done is closed; sync waiters block on done, pollers read
// snapshot() while it runs.
type job struct {
	id    string
	kind  string
	key   string // content address; "" = not cacheable
	cost  int64  // admission weight held until finish
	trace string // request trace id, stable across journal replay
	req   *Request
	g     *stg.STG
	nl    *logic.Netlist  // verify only
	props []prop.Property // verify only

	events *broadcaster // SSE fan-out; always non-nil on a served job

	retried bool // the crash-retry policy fired (one retry max)

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	status string
	resp   *Response
	runReg *obs.Registry // current attempt's registry while running
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// setRegistry publishes the running attempt's registry so the trace endpoint
// can snapshot a live job; registry reads it back (nil once finished).
func (j *job) setRegistry(reg *obs.Registry) {
	j.mu.Lock()
	j.runReg = reg
	j.mu.Unlock()
}

func (j *job) registry() *obs.Registry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.runReg
}

// finish publishes the final response and wakes every waiter.
func (j *job) finish(resp *Response) {
	resp.JobID = j.id
	resp.Key = j.key
	resp.TraceID = j.trace
	j.mu.Lock()
	j.status = resp.Status
	j.resp = resp
	j.runReg = nil // the retained snapshot (trace ring) owns the tree now
	j.mu.Unlock()
	j.cancel() // release the context's timer; the run is over
	close(j.done)
}

// snapshot returns the job's current wire state: the final response once
// finished, a bare status report while queued or running.
func (j *job) snapshot() *Response {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return j.resp
	}
	return &Response{
		JobID: j.id, Status: j.status, Key: j.key, TraceID: j.trace,
		code: http.StatusOK,
	}
}

// worker drains the job queue until it is closed by Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
		s.queueDepth.Set(s.depth.Add(-1))
	}
}

// runJob executes one job under its budget with panic containment: a
// panicking engine fails the job — surfaced as a typed *budget.ErrInternal
// with the recovered stack — never the daemon. An internal error gets one
// retry with the degradation ladder forced (symbolic → stubborn-reduced →
// capped explicit), so a single bad engine path doesn't fail work a cheaper
// rung could finish. The start record hits the journal first: a crash
// between start and finish is reported as "interrupted" after restart.
func (s *Server) runJob(j *job) {
	start := time.Now()
	j.setStatus("running")
	j.events.publish("status", j.snapshot())
	if j.ctx.Err() != nil {
		// Canceled while queued: don't charge an engine run.
		err := fmt.Errorf("serve: canceled while queued: %w", budget.ErrCanceled)
		s.finishJob(j, s.classify(j, nil, nil, err), start)
		return
	}
	if err := s.journal.append(&journalRecord{T: "start", Job: j.id}); err != nil {
		s.jobLog(j, slog.LevelError, "journal start failed", err)
	}
	faultinject.Crash("serve.job.run") // chaos kill site: die mid-job

	raw, rep, err := s.attempt(j, false)
	var retryTrace []string
	var ie *budget.ErrInternal
	if err != nil && errors.As(err, &ie) && j.ctx.Err() == nil && !j.retried {
		// Crash-retry policy: one retry per job, ladder forced.
		j.retried = true
		s.jobsRetried.Inc()
		retryTrace = append(attemptStrings(rep),
			"retried with fallback ladder after: "+err.Error())
		if jerr := s.journal.append(&journalRecord{
			T: "retry", Job: j.id, Error: err.Error(), Attempts: attemptStrings(rep),
		}); jerr != nil {
			s.jobLog(j, slog.LevelError, "journal retry failed", jerr)
		}
		raw, rep, err = s.attempt(j, true)
	}

	resp := s.classify(j, raw, rep, err)
	if len(retryTrace) > 0 {
		resp.Attempts = append(retryTrace, resp.Attempts...)
	}
	s.finishJob(j, resp, start)
}

// attempt is one panic-contained engine run. Each attempt records into its
// own registry (flow → phase → engine spans plus engine counters); scalar
// instruments are folded into the long-running server registry afterwards
// (keeping the /metrics aggregate span-free per the obs aggregation
// contract), while the span tree is retained in the trace ring behind
// GET /v1/jobs/{id}/trace and streamed live to SSE subscribers.
func (s *Server) attempt(j *job, forceFallback bool) (raw json.RawMessage, rep *core.Report, err error) {
	reg := obs.NewRegistry()
	reg.SetStream(func(ev obs.StreamEvent) { j.events.publish("span", ev) })
	j.setRegistry(reg)
	s.engineRuns.Inc()
	func() {
		defer cli.Recover(&err)
		raw, rep, err = s.execute(j, reg, forceFallback)
	}()
	s.reg.MergeRetain(reg.Snapshot(), func(snap *obs.Snapshot) {
		s.traces.Put(j.id, j.trace, snap)
	})
	return raw, rep, err
}

// attemptStrings renders a report's attempt trace for the wire and journal.
func attemptStrings(rep *core.Report) []string {
	if rep == nil {
		return nil
	}
	out := make([]string, 0, len(rep.Attempts))
	for _, a := range rep.Attempts {
		out = append(out, a.String())
	}
	return out
}

// finishJob stores a successful result in both cache tiers, journals the
// terminal record, returns the job's admission cost and publishes the
// response. Order matters: the disk write and the finish record land before
// any waiter observes the terminal status, so a crash after publication can
// neither lose the cached bytes nor resurrect the job.
func (s *Server) finishJob(j *job, resp *Response, start time.Time) {
	if resp.Status == "done" && !resp.Degraded() && j.key != "" {
		s.cache.put(j.key, resp.Result)
		s.disk.put(j.key, resp.Result)
		s.syncCacheGauges()
	}
	if err := s.journal.append(&journalRecord{
		T: "finish", Job: j.id, Status: resp.Status,
		Error: resp.Error, Attempts: resp.Attempts,
	}); err != nil {
		s.jobLog(j, slog.LevelError, "journal finish failed", err)
	}
	s.gate.release(j.cost)
	switch resp.Status {
	case "done":
		s.jobsDone.Inc()
	case "canceled":
		s.jobsCanceled.Inc()
	default:
		s.jobsFailed.Inc()
	}
	s.latency.Observe(time.Since(start).Microseconds())
	s.mu.Lock()
	if j.key != "" && s.flight[j.key] == j {
		delete(s.flight, j.key)
	}
	s.mu.Unlock()
	j.finish(resp)
	// Terminal SSE event after finish: the response snapshot subscribers see
	// is the one pollers see, and every engine goroutine has already joined,
	// so span records strictly precede the "done" record.
	j.events.finish("done", resp)
	s.jobLog(j, slog.LevelInfo, "job finished", nil,
		slog.String("status", resp.Status),
		slog.Duration("dur", time.Since(start)))
}

// jobLog emits one structured record about a job, stamped with the job id,
// kind and trace id (plus an error attr when err is non-nil).
func (s *Server) jobLog(j *job, level slog.Level, msg string, err error, attrs ...slog.Attr) {
	base := []slog.Attr{
		slog.String("job_id", j.id),
		slog.String("kind", j.kind),
		slog.String("trace_id", j.trace),
	}
	if err != nil {
		base = append(base, slog.String("err", err.Error()))
	}
	s.log.LogAttrs(context.Background(), level, msg, append(base, attrs...)...)
}

// Degraded reports whether the response is a fallback-analysis result
// (complete, but budget-shaped — not cacheable under the content address).
func (r *Response) Degraded() bool {
	if len(r.Result) == 0 {
		return false
	}
	var probe struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(r.Result, &probe); err != nil {
		return false
	}
	return probe.Degraded
}

// classify maps an engine outcome onto the wire taxonomy and HTTP status:
// done → 200, budget limit → 422 with the partial attempts, cancellation →
// 409, recovered panic → 500, spec-semantic failure → 422.
func (s *Server) classify(j *job, raw json.RawMessage, rep *core.Report, err error) *Response {
	if err == nil {
		return &Response{Status: "done", Result: raw, code: http.StatusOK}
	}
	resp := &Response{Status: "failed", Error: err.Error()}
	if rep != nil {
		for _, a := range rep.Attempts {
			resp.Attempts = append(resp.Attempts, a.String())
		}
	}
	var le budget.ErrLimit
	var ie *budget.ErrInternal
	switch {
	case errors.Is(err, budget.ErrCanceled):
		resp.Status = "canceled"
		resp.ErrorKind = "canceled"
		resp.code = http.StatusConflict
	case errors.As(err, &le):
		resp.ErrorKind = "budget"
		resp.code = http.StatusUnprocessableEntity
	case errors.As(err, &ie):
		resp.ErrorKind = "internal"
		resp.code = http.StatusInternalServerError
	default:
		resp.ErrorKind = "spec"
		resp.code = http.StatusUnprocessableEntity
	}
	return resp
}

// execute runs the job's engine under its budget and renders the result
// payload. The returned *core.Report carries partial attempts on budget
// exits (synthesize only). forceFallback — set by the crash-retry policy —
// overrides the request's fallback switch so the retry walks the ladder.
func (s *Server) execute(j *job, reg *obs.Registry, forceFallback bool) (json.RawMessage, *core.Report, error) {
	bgt := j.req.Options.budget(j.ctx)
	bgt.Hook = s.testBudgetHook
	hash, err := j.g.CanonicalHash()
	if err != nil {
		return nil, nil, err
	}
	switch j.kind {
	case "analyze":
		res, err := s.analyze(j.g, hash, bgt, reg)
		if err != nil {
			return nil, nil, err
		}
		return marshalResult(res)
	case "synthesize":
		style, err := j.req.Options.style()
		if err != nil {
			return nil, nil, err
		}
		rep, err := core.Synthesize(j.g, core.Options{
			Style:      style,
			MaxFanIn:   j.req.Options.MaxFanIn,
			SkipVerify: j.req.Options.SkipVerify,
			Workers:    j.req.Options.Workers,
			Budget:     bgt,
			Fallback:   j.req.Options.Fallback || forceFallback,
			Obs:        reg,
		})
		if err != nil {
			return nil, rep, err
		}
		res := &SynthesizeResult{
			Kind:       "synthesize",
			Name:       j.g.Name(),
			Hash:       hash,
			Properties: wireProps(rep.Properties),
			CSC:        rep.CSC,
		}
		if rep.SG != nil {
			res.States = rep.SG.NumStates()
		}
		if rep.Netlist == nil {
			// Degraded run: analysis completed on a cheaper engine under
			// the budget; report the ladder instead of a netlist.
			res.Degraded = true
			for _, a := range rep.Attempts {
				res.Attempts = append(res.Attempts, a.String())
			}
		} else {
			// The verify-compatible .eqn rendering (with declarations), so
			// the payload round-trips straight into /v1/verify.
			var eqn strings.Builder
			if err := rep.Netlist.WriteEquations(&eqn); err != nil {
				return nil, rep, err
			}
			res.Equations = eqn.String()
			res.Gates = len(rep.Netlist.Gates)
			res.Literals = rep.Netlist.LiteralCount()
			res.Verification = wireVerification(rep.Verification)
			var spec strings.Builder
			if err := rep.Spec.WriteG(&spec); err != nil {
				return nil, rep, err
			}
			res.Spec = spec.String()
		}
		raw, _, err := marshalResult(res)
		return raw, rep, err
	case "verify":
		res, err := s.verify(j, hash, bgt, reg)
		if err != nil {
			return nil, nil, err
		}
		return marshalResult(res)
	}
	return nil, nil, fmt.Errorf("serve: unknown kind %q", j.kind)
}

// analyze mirrors the synthesis front end: build the state graph, contract
// dummy events, run the Section 2.1 implementability suite.
func (s *Server) analyze(g *stg.STG, hash string, bgt *budget.Budget, reg *obs.Registry) (*AnalyzeResult, error) {
	flow := reg.Root("flow:analyze")
	defer flow.End()
	span := flow.Child("phase:sg")
	sg, err := reach.BuildSG(g, reach.Options{Budget: bgt, Obs: span})
	span.End()
	if err != nil {
		return nil, err
	}
	if sg, err = ts.ContractDummies(sg); err != nil {
		return nil, err
	}
	return &AnalyzeResult{
		Kind:       "analyze",
		Name:       g.Name(),
		Hash:       hash,
		States:     sg.NumStates(),
		Arcs:       sg.NumArcs(),
		Deadlocks:  len(sg.Deadlocks()),
		Properties: wireProps(sg.CheckImplementability()),
	}, nil
}

// verify composes the parsed .eqn netlist with the specification mirror
// and/or checks the request's properties against the spec. A conformance
// failure or a violated property is a successful verification run whose
// result says "no" — violations are data, not an error; budget trips are
// errors and surface through the usual taxonomy.
func (s *Server) verify(j *job, hash string, bgt *budget.Budget, reg *obs.Registry) (*VerifyResult, error) {
	flow := reg.Root("flow:verify")
	defer flow.End()
	res := &VerifyResult{Kind: "verify", Name: j.g.Name(), Hash: hash}
	if j.nl != nil {
		span := flow.Child("phase:verify")
		vres, err := sim.Verify(j.nl, j.g, sim.Options{Budget: bgt, MaxViolations: 16})
		span.End()
		if err != nil {
			return nil, err
		}
		res.ImplHash = implHash(j.nl)
		res.Verification = wireVerification(vres)
	}
	if len(j.props) > 0 {
		eng, err := j.req.Options.propEngine()
		if err != nil {
			return nil, err
		}
		rep, err := prop.Check(j.g, j.props, prop.Options{
			Engine:  eng,
			Workers: j.req.Options.Workers,
			Budget:  bgt,
			Obs:     flow,
		})
		if err != nil {
			return nil, err
		}
		res.PropEngine = rep.Engine
		res.PropStates = rep.States.String()
		for _, v := range rep.Verdicts {
			pv := PropertyVerdict{
				Name:    v.Property.Name,
				Formula: v.Property.F.String(),
				Status:  v.Status.String(),
			}
			if v.Trace != nil {
				pv.Trace = v.Trace.Events()
				pv.Waveform = v.Trace.Waveform()
			}
			res.Properties = append(res.Properties, pv)
		}
	}
	return res, nil
}

func marshalResult(v any) (json.RawMessage, *core.Report, error) {
	raw, err := json.Marshal(v)
	return raw, nil, err
}
