package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/logic"
	"repro/internal/prop"
	"repro/internal/stg"
)

// Crash recovery: New replays the journal before the first worker starts,
// so the recovery state machine runs on a quiescent server. Per accepted
// job without a terminal record:
//
//	never started       → re-enqueued exactly as accepted (same id, same
//	                      content address, same options); counted in
//	                      serve.jobs_recovered
//	started, unfinished → terminal "interrupted", pollable with the partial
//	                      attempt trace the journal captured; counted in
//	                      serve.jobs_interrupted
//	journal unreadable
//	beyond a torn tail  → the torn tail is logged and everything before it
//	                      recovered; records are fsync'd in order, so the
//	                      tail is the only record a crash can tear
//
// The journal is then compacted to exactly the recovered state and
// reopened for appending.

// openDurable wires the durability layer under Config.DataDir: the disk
// result cache, then journal replay, recovery and compaction.
func (s *Server) openDurable() error {
	if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return fmt.Errorf("serve: data dir: %w", err)
	}
	if s.cache.enabled() {
		disk, err := openDiskCache(filepath.Join(s.cfg.DataDir, "cache"),
			s.cfg.CacheEntries, s.cfg.CacheBytes,
			s.diskHits, s.diskEvictions, s.diskCorrupt)
		if err != nil {
			return err
		}
		s.disk = disk
	}
	path := filepath.Join(s.cfg.DataDir, journalName)
	rp, err := replayJournal(path)
	if err != nil {
		return err
	}
	if rp.Truncated {
		s.log.LogAttrs(context.Background(), slog.LevelWarn,
			"serve: journal: tolerating truncated final record (torn crash write)",
			slog.String("tail", rp.TruncatedLine))
	}
	s.seq = rp.maxSeq
	keep := s.recoverJobs(rp)
	if err := compactJournal(path, keep); err != nil {
		return err
	}
	j, err := openJournal(path, s.reg.Counter("serve.journal_records"))
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

// recoverJobs applies the recovery state machine and returns the records
// the compacted journal must keep: accept records for re-enqueued jobs
// (they are open again), and accept+start+finish(interrupted) for
// interrupted ones (terminal — the next compaction drops them, but until
// then their ids stay reserved).
func (s *Server) recoverJobs(rp *replay) []*journalRecord {
	var keep []*journalRecord
	for _, rec := range rp.open() {
		if rp.started[rec.Job] {
			s.interruptJob(rec, rp.attempts[rec.Job],
				"job was running when the server died")
			keep = append(keep, rec,
				&journalRecord{T: "start", Job: rec.Job},
				&journalRecord{T: "finish", Job: rec.Job, Status: "interrupted",
					Attempts: rp.attempts[rec.Job]})
			continue
		}
		j, err := s.rebuildJob(rec)
		if err != nil {
			// The accept record was journaled by this server, so this is
			// corruption or a version skew — report, don't re-run garbage.
			s.interruptJob(rec, nil, fmt.Sprintf("recovery could not rebuild the job: %v", err))
			keep = append(keep, rec,
				&journalRecord{T: "start", Job: rec.Job},
				&journalRecord{T: "finish", Job: rec.Job, Status: "interrupted"})
			continue
		}
		if len(s.queue) == cap(s.queue) {
			s.interruptJob(rec, nil, "recovery overflowed the job queue")
			keep = append(keep, rec,
				&journalRecord{T: "start", Job: rec.Job},
				&journalRecord{T: "finish", Job: rec.Job, Status: "interrupted"})
			continue
		}
		s.queue <- j // workers not started yet; capacity checked above
		s.queueDepth.Set(s.depth.Add(1))
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.key != "" {
			s.flight[j.key] = j
		}
		s.jobsRecovered.Inc()
		keep = append(keep, rec)
	}
	return keep
}

// interruptJob registers a terminal "interrupted" job: pollable via
// GET /v1/jobs/{id} with whatever partial attempt trace the journal holds.
func (s *Server) interruptJob(rec *journalRecord, attempts []string, why string) {
	j := &job{
		id:     rec.Job,
		kind:   rec.Kind,
		key:    rec.Key,
		trace:  recoveredTrace(rec),
		events: newBroadcaster(s.cfg.StreamQueue, s.sseDropped.Add),
		ctx:    context.Background(),
		cancel: func() {},
		done:   make(chan struct{}),
	}
	j.resp = &Response{
		JobID:     j.id,
		Status:    "interrupted",
		TraceID:   j.trace,
		ErrorKind: "interrupted",
		Error:     why + "; resubmit to re-run",
		Attempts:  attempts,
		Key:       rec.Key,
		code:      http.StatusOK,
	}
	j.status = "interrupted"
	close(j.done)
	j.events.finish("done", j.resp)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.jobsInterrupted.Inc()
}

// rebuildJob reconstructs a queued job from its accept record — the inverse
// of journalAccept plus the decode-time parsing the handler did on the
// original request.
func (s *Server) rebuildJob(rec *journalRecord) (*job, error) {
	g, err := stg.ParseG(strings.NewReader(rec.Spec))
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var nl *logic.Netlist
	var props []prop.Property
	if rec.Kind == "verify" {
		if strings.TrimSpace(rec.Impl) != "" {
			if nl, err = logic.ParseEquations(strings.NewReader(rec.Impl)); err != nil {
				return nil, fmt.Errorf("impl: %w", err)
			}
		}
		if strings.TrimSpace(rec.Props) != "" {
			if props, err = prop.Parse(rec.Props); err != nil {
				return nil, fmt.Errorf("properties: %w", err)
			}
			if err := prop.Bind(g, props); err != nil {
				return nil, fmt.Errorf("properties: %w", err)
			}
		}
	}
	var opts ReqOptions
	if rec.Opts != nil {
		opts = *rec.Opts
	}
	req := &Request{Spec: rec.Spec, Impl: rec.Impl, Properties: rec.Props, Options: opts}
	var ctx context.Context
	var cancel context.CancelFunc
	if t := s.jobTimeout(opts); t > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), t)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	cost := jobCost(opts)
	s.gate.force(cost)
	return &job{
		id:     rec.Job,
		kind:   rec.Kind,
		key:    rec.Key,
		cost:   cost,
		trace:  recoveredTrace(rec),
		req:    req,
		g:      g,
		nl:     nl,
		props:  props,
		events: newBroadcaster(s.cfg.StreamQueue, s.sseDropped.Add),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: "queued",
	}, nil
}

// recoveredTrace is the job's original trace id from its accept record; a
// journal written before trace ids existed gets a fresh one.
func recoveredTrace(rec *journalRecord) string {
	if rec.Trace != "" {
		return rec.Trace
	}
	return mintTraceID()
}
