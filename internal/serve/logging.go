package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// Structured logging: the daemon logs through log/slog, every record stamped
// with the request's trace id (and the job id / kind where one applies), so
// one grep by trace_id follows a request across the access log, the journal
// warnings and the job lifecycle. The library default is silence — a nil
// Config.Logger installs a disabled handler, keeping serve free of global
// log state and the hot paths free of formatting work (slog checks Enabled
// before building the record). cmd/serve wires a real text or JSON handler
// behind -log-format.

// nopHandler is the disabled slog handler (slog.DiscardHandler needs a newer
// stdlib than the module targets).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// statusWriter records the committed status and body size for the access
// log, and forwards Flush so the SSE endpoint streams through it.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

// telemetry is the outermost middleware: resolve the request's trace id
// (incoming traceparent or minted), expose it via context and the X-Trace-Id
// header, and emit one access-log record per request with method, path,
// status, size and latency.
func (s *Server) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace, ok := parseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			trace = mintTraceID()
		}
		r = r.WithContext(withTrace(r.Context(), trace))
		w.Header().Set("X-Trace-Id", trace)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "http",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status()),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("dur", time.Since(start)),
			slog.String("trace_id", trace),
		)
	})
}
