package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func vmeSpec(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/vme-read.g")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// bigSpec builds n independent output toggles: 2^n reachable states, so a
// job on it stays running long enough to cancel deterministically.
func bigSpec(n int) string {
	var b strings.Builder
	b.WriteString(".model big\n.outputs")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " s%d", i)
	}
	b.WriteString("\n.graph\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "s%d+ s%d-\ns%d- s%d+\n", i, i, i, i)
	}
	b.WriteString(".marking {")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, " <s%d-,s%d+>", i, i)
	}
	b.WriteString(" }\n.end\n")
	return b.String()
}

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (int, *serve.Response) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, &out
}

func getJSON(t *testing.T, url string) (int, *serve.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out
}

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func metrics(t *testing.T, base string) *obs.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	// The server registry is span-free by design (Registry.Merge folds only
	// scalar instruments), so Validate — not ValidateHierarchy — applies.
	if err := snap.Validate(); err != nil {
		t.Fatalf("/metrics snapshot invalid: %v", err)
	}
	if len(snap.Spans) != 0 {
		t.Fatalf("server registry grew %d spans; per-job spans must not accumulate", len(snap.Spans))
	}
	return snap
}

// pollJob polls GET /v1/jobs/{id} until the job leaves queued/running.
func pollJob(t *testing.T, base, id string) (int, *serve.Response) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, resp := getJSON(t, base+"/v1/jobs/"+id)
		if resp.Status != "queued" && resp.Status != "running" {
			return code, resp
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return 0, nil
}

type synthResult struct {
	Kind         string `json:"kind"`
	Hash         string `json:"hash"`
	States       int    `json:"states"`
	Equations    string `json:"equations"`
	Gates        int    `json:"gates"`
	Degraded     bool   `json:"degraded"`
	Verification *struct {
		OK bool `json:"ok"`
	} `json:"verification"`
}

func decodeSynth(t *testing.T, resp *serve.Response) *synthResult {
	t.Helper()
	var res synthResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	return &res
}

// TestSynthesizeSyncAndCacheHit is the core service round trip: a cold VME
// synthesize runs the engines once; the identical request replays the
// byte-identical result from the content-addressed cache without charging
// another engine run.
func TestSynthesizeSyncAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := map[string]any{"spec": vmeSpec(t)}

	code, cold := postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusOK || cold.Status != "done" {
		t.Fatalf("cold: code %d status %q error %q", code, cold.Status, cold.Error)
	}
	if cold.Cached {
		t.Fatal("cold run reported cached")
	}
	res := decodeSynth(t, cold)
	if res.Equations == "" || res.Gates == 0 {
		t.Fatalf("no netlist in result: %+v", res)
	}
	if res.Verification == nil || !res.Verification.OK {
		t.Fatalf("verification missing or failed: %+v", res.Verification)
	}
	before := metrics(t, ts.URL)
	if got := before.Counters["serve.engine_runs"]; got != 1 {
		t.Fatalf("engine_runs after cold = %d, want 1", got)
	}
	// reach engine counters folded from the per-job registry prove the obs
	// plumbing reaches /metrics.
	if before.Counters["reach.states"] <= 0 {
		t.Fatalf("per-job engine counters not merged: %v", before.Counters)
	}

	code, warm := postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusOK || warm.Status != "done" || !warm.Cached {
		t.Fatalf("warm: code %d status %q cached %v", code, warm.Status, warm.Cached)
	}
	if warm.Key != cold.Key {
		t.Fatalf("content address changed: %q vs %q", warm.Key, cold.Key)
	}
	if !bytes.Equal(warm.Result, cold.Result) {
		t.Fatalf("cache replay not byte-identical:\n%s\nvs\n%s", warm.Result, cold.Result)
	}
	after := metrics(t, ts.URL)
	if got := after.Counters["serve.engine_runs"]; got != 1 {
		t.Fatalf("cache hit charged an engine run: %d", got)
	}
	if after.Counters["reach.states"] != before.Counters["reach.states"] {
		t.Fatal("cache hit advanced engine counters")
	}
	if after.Counters["serve.cache_hits"] != 1 || after.Counters["serve.cache_misses"] != 1 {
		t.Fatalf("cache counters: %v", after.Counters)
	}
}

// TestAsyncJobLifecycle drives the job-handle path: 202 with an id, polling
// to completion, and a result identical to what the sync path returns.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := map[string]any{"spec": vmeSpec(t), "async": true}
	code, acc := postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusAccepted {
		t.Fatalf("async accept code = %d, want 202", code)
	}
	if acc.JobID == "" || (acc.Status != "queued" && acc.Status != "running") {
		t.Fatalf("bad handle: %+v", acc)
	}
	code, final := pollJob(t, ts.URL, acc.JobID)
	if code != http.StatusOK || final.Status != "done" {
		t.Fatalf("final: code %d status %q error %q", code, final.Status, final.Error)
	}
	if res := decodeSynth(t, final); res.Equations == "" {
		t.Fatal("async result has no equations")
	}

	if code, _ := getJSON(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job code = %d, want 404", code)
	}
}

// TestBudgetExceeded: a sync run whose state budget trips fails with HTTP
// 422 and carries the partial degradation-ladder attempts.
func TestBudgetExceeded(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	body := map[string]any{"spec": vmeSpec(t), "options": map[string]any{"max_states": 4}}
	code, resp := postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("code = %d, want 422 (resp %+v)", code, resp)
	}
	if resp.Status != "failed" || resp.ErrorKind != "budget" {
		t.Fatalf("status %q kind %q", resp.Status, resp.ErrorKind)
	}
	if len(resp.Attempts) == 0 || !strings.Contains(resp.Attempts[0], "explicit") {
		t.Fatalf("partial attempts missing: %v", resp.Attempts)
	}

	// With the fallback ladder the same budget yields a degraded-but-done
	// analysis — which must NOT enter the content-addressed cache.
	body["options"] = map[string]any{"max_states": 4, "fallback": true}
	code, resp = postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("fallback: code %d status %q error %q", code, resp.Status, resp.Error)
	}
	if res := decodeSynth(t, resp); !res.Degraded {
		t.Fatalf("expected degraded result: %s", resp.Result)
	}
	code, again := postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusOK || again.Cached {
		t.Fatalf("degraded result was cached: code %d cached %v", code, again.Cached)
	}
}

// TestCancellation covers both cancel paths: a queued job canceled before a
// worker picks it up, and a running job canceled mid-analysis through its
// budget context.
func TestCancellation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, Queue: 8})

	// Occupy the single worker, then cancel a job that is still queued.
	code, blocker := postJSON(t, ts.URL+"/v1/analyze",
		map[string]any{"spec": bigSpec(20), "async": true})
	if code != http.StatusAccepted {
		t.Fatalf("blocker accept = %d", code)
	}
	code, queued := postJSON(t, ts.URL+"/v1/synthesize",
		map[string]any{"spec": vmeSpec(t), "async": true})
	if code != http.StatusAccepted {
		t.Fatalf("queued accept = %d", code)
	}
	if code := doDelete(t, ts.URL+"/v1/jobs/"+queued.JobID); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	// Cancel the running blocker mid-exploration (2^20 states is far more
	// than it can reach before the DELETE lands).
	if code := doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID); code != http.StatusOK {
		t.Fatalf("cancel blocker = %d", code)
	}
	for _, id := range []string{queued.JobID, blocker.JobID} {
		code, final := pollJob(t, ts.URL, id)
		if final.Status != "canceled" || code != http.StatusConflict {
			t.Fatalf("job %s: status %q code %d (error %q)", id, final.Status, code, final.Error)
		}
	}
	snap := metrics(t, ts.URL)
	if snap.Counters["serve.jobs_canceled"] != 2 {
		t.Fatalf("jobs_canceled = %d, want 2", snap.Counters["serve.jobs_canceled"])
	}
}

// TestSingleflight: concurrent identical requests share one engine run and
// one job id.
func TestSingleflight(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, Queue: 8})

	// Hold the only worker so the shared job stays queued while both
	// requests attach to it.
	code, blocker := postJSON(t, ts.URL+"/v1/analyze",
		map[string]any{"spec": bigSpec(20), "async": true})
	if code != http.StatusAccepted {
		t.Fatal("blocker not accepted")
	}
	body := map[string]any{"spec": vmeSpec(t), "async": true}
	code, first := postJSON(t, ts.URL+"/v1/synthesize", body)
	if code != http.StatusAccepted {
		t.Fatalf("first = %d", code)
	}
	var wg sync.WaitGroup
	var second *serve.Response
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, second = postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": vmeSpec(t)})
	}()
	time.Sleep(100 * time.Millisecond) // let the sync request attach
	doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	wg.Wait()
	if second.Status != "done" || second.JobID != first.JobID {
		t.Fatalf("concurrent request did not share the flight: first %q second %q (%s)",
			first.JobID, second.JobID, second.Status)
	}
	snap := metrics(t, ts.URL)
	if snap.Counters["serve.singleflight_shared"] < 1 {
		t.Fatalf("singleflight never shared: %v", snap.Counters)
	}
	// blocker (1 run, canceled mid-flight) + shared vme job (1 run).
	if got := snap.Counters["serve.engine_runs"]; got != 2 {
		t.Fatalf("engine_runs = %d, want 2 (one shared run)", got)
	}
}

// TestParseAnalyzeVerify covers the remaining endpoints end to end:
// parse structure, analyze properties, and verify of a synthesized netlist
// against its own spec.
func TestParseAnalyzeVerify(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	spec := vmeSpec(t)

	code, parsed := postJSON(t, ts.URL+"/v1/parse", map[string]any{"spec": spec})
	if code != http.StatusOK || parsed.Status != "done" {
		t.Fatalf("parse: %d %q", code, parsed.Status)
	}
	var pres struct {
		Hash        string `json:"hash"`
		Transitions int    `json:"transitions"`
		Canonical   string `json:"canonical"`
	}
	if err := json.Unmarshal(parsed.Result, &pres); err != nil {
		t.Fatal(err)
	}
	if len(pres.Hash) != 64 || pres.Transitions == 0 || pres.Canonical == "" {
		t.Fatalf("parse result: %+v", pres)
	}

	code, analyzed := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"spec": spec})
	if code != http.StatusOK || analyzed.Status != "done" {
		t.Fatalf("analyze: %d %q %q", code, analyzed.Status, analyzed.Error)
	}
	var ares struct {
		States     int `json:"states"`
		Properties struct {
			Consistent bool `json:"consistent"`
			CSC        bool `json:"csc"`
		} `json:"properties"`
	}
	if err := json.Unmarshal(analyzed.Result, &ares); err != nil {
		t.Fatal(err)
	}
	if ares.States == 0 || !ares.Properties.Consistent {
		t.Fatalf("analyze result: %+v", ares)
	}

	code, synth := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": spec})
	if code != http.StatusOK {
		t.Fatalf("synthesize: %d", code)
	}
	eqs := decodeSynth(t, synth).Equations
	code, verified := postJSON(t, ts.URL+"/v1/verify",
		map[string]any{"spec": spec, "impl": eqs})
	if code != http.StatusOK || verified.Status != "done" {
		t.Fatalf("verify: %d %q %q", code, verified.Status, verified.Error)
	}
	var vres struct {
		Verification struct {
			OK     bool `json:"ok"`
			States int  `json:"states"`
		} `json:"verification"`
	}
	if err := json.Unmarshal(verified.Result, &vres); err != nil {
		t.Fatal(err)
	}
	if !vres.Verification.OK || vres.Verification.States == 0 {
		t.Fatalf("verify result: %+v", vres)
	}

	// Bad inputs are 400s, not jobs.
	if code, _ := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": "not a spec"}); code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/verify", map[string]any{"spec": spec}); code != http.StatusBadRequest {
		t.Fatalf("verify without impl = %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/synthesize",
		map[string]any{"spec": spec, "options": map[string]any{"style": "bogus"}}); code != http.StatusBadRequest {
		t.Fatalf("bad style = %d, want 400", code)
	}
}

// TestQueueFullAndShutdown: a saturated queue rejects with 503; Shutdown
// drains queued jobs and then rejects new work with 503.
func TestQueueFullAndShutdown(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Workers: 1, Queue: 1})

	code, blocker := postJSON(t, ts.URL+"/v1/analyze",
		map[string]any{"spec": bigSpec(20), "async": true})
	if code != http.StatusAccepted {
		t.Fatal("blocker not accepted")
	}
	// Worker busy; one slot in the queue, then 503. Distinct specs dodge
	// the singleflight table.
	code, queued := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": vmeSpec(t), "async": true})
	if code != http.StatusAccepted {
		t.Fatalf("queued = %d", code)
	}
	code, full := postJSON(t, ts.URL+"/v1/analyze", map[string]any{"spec": bigSpec(3), "async": true})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("full queue = %d (%+v), want 503", code, full)
	}

	doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(t.Context()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown never drained")
	}
	// The queued job was drained, not dropped.
	if _, final := pollJob(t, ts.URL, queued.JobID); final.Status != "done" {
		t.Fatalf("queued job after drain: %q (%q)", final.Status, final.Error)
	}
	// An uncached request after shutdown must be rejected (a cached one may
	// still replay — the store stays valid while the HTTP server drains).
	code, _ = postJSON(t, ts.URL+"/v1/analyze", map[string]any{"spec": bigSpec(5)})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown admit = %d, want 503", code)
	}
}

// TestVerifyProperties covers the temporal-property path of /v1/verify:
// properties without an impl, verdicts with counterexample traces, caching
// under spec+properties+engine, and fail-fast validation.
func TestVerifyProperties(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	spec, err := os.ReadFile("../../testdata/arbiter-race.g")
	if err != nil {
		t.Fatal(err)
	}
	props := "prop mutex : AG !(g1 & g2)\nprop dlf : deadlock_free\n"

	code, resp := postJSON(t, ts.URL+"/v1/verify",
		map[string]any{"spec": string(spec), "properties": props})
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("verify: %d %q %q", code, resp.Status, resp.Error)
	}
	var vres struct {
		ImplHash   string `json:"impl_hash"`
		PropEngine string `json:"prop_engine"`
		PropStates string `json:"prop_states"`
		Properties []struct {
			Name     string `json:"name"`
			Formula  string `json:"formula"`
			Status   string `json:"status"`
			Trace    string `json:"trace"`
			Waveform string `json:"waveform"`
		} `json:"properties"`
	}
	if err := json.Unmarshal(resp.Result, &vres); err != nil {
		t.Fatal(err)
	}
	if vres.ImplHash != "" {
		t.Errorf("impl_hash without impl: %q", vres.ImplHash)
	}
	if vres.PropEngine != "explicit" || vres.PropStates != "16" {
		t.Errorf("engine/states = %q/%q", vres.PropEngine, vres.PropStates)
	}
	if len(vres.Properties) != 2 {
		t.Fatalf("got %d verdicts", len(vres.Properties))
	}
	mutex, dlf := vres.Properties[0], vres.Properties[1]
	if mutex.Status != "VIOLATED" || mutex.Trace == "" || !strings.Contains(mutex.Waveform, "/") {
		t.Errorf("mutex verdict: %+v", mutex)
	}
	if mutex.Formula != "AG !(g1 & g2)" {
		t.Errorf("formula not canonical: %q", mutex.Formula)
	}
	if dlf.Status != "holds" || dlf.Trace != "" {
		t.Errorf("dlf verdict: %+v", dlf)
	}

	// Same request replays from the cache; a different engine is a
	// different content address (its counterexample may differ).
	code, again := postJSON(t, ts.URL+"/v1/verify",
		map[string]any{"spec": string(spec), "properties": props})
	if code != http.StatusOK || !again.Cached || again.Key != resp.Key {
		t.Fatalf("repeat not cached: %d cached=%v", code, again.Cached)
	}
	code, sym := postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"spec": string(spec), "properties": props,
		"options": map[string]any{"prop_engine": "symbolic"},
	})
	if code != http.StatusOK || sym.Cached || sym.Key == resp.Key {
		t.Fatalf("symbolic run must be a distinct cache entry: %d cached=%v", code, sym.Cached)
	}

	// Validation failures are 400s, not jobs.
	for name, body := range map[string]map[string]any{
		"syntax":     {"spec": string(spec), "properties": "prop broken : ("},
		"bad signal": {"spec": string(spec), "properties": "prop p : nosuch"},
		"empty":      {"spec": string(spec), "properties": "# nothing\n"},
		"bad engine": {"spec": string(spec), "properties": props,
			"options": map[string]any{"prop_engine": "quantum"}},
	} {
		if code, _ := postJSON(t, ts.URL+"/v1/verify", body); code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", name, code)
		}
	}
}

// TestVerifyPropertiesAndImpl runs both halves of /v1/verify in one
// request: netlist conformance and property checking.
func TestVerifyPropertiesAndImpl(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	spec := vmeSpec(t)
	code, synth := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": spec})
	if code != http.StatusOK {
		t.Fatalf("synthesize: %d", code)
	}
	code, resp := postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"spec": spec, "impl": decodeSynth(t, synth).Equations,
		"properties": "prop dlf : deadlock_free\nprop csc : !csc_conflict\n",
	})
	if code != http.StatusOK || resp.Status != "done" {
		t.Fatalf("verify: %d %q %q", code, resp.Status, resp.Error)
	}
	var vres struct {
		ImplHash     string `json:"impl_hash"`
		Verification *struct {
			OK bool `json:"ok"`
		} `json:"verification"`
		Properties []struct {
			Status string `json:"status"`
		} `json:"properties"`
	}
	if err := json.Unmarshal(resp.Result, &vres); err != nil {
		t.Fatal(err)
	}
	if vres.ImplHash == "" || vres.Verification == nil || !vres.Verification.OK {
		t.Fatalf("verification half missing: %+v", vres)
	}
	// The raw VME read cycle is deadlock-free but has the paper's CSC
	// conflict (resolved during synthesis by a state signal), so the two
	// verdicts differ.
	if len(vres.Properties) != 2 || vres.Properties[0].Status != "holds" || vres.Properties[1].Status != "VIOLATED" {
		t.Fatalf("property half wrong: %+v", vres.Properties)
	}
}

// TestVerifyPropertiesBudget trips the job timeout mid-check and expects
// the typed budget taxonomy on the wire, not a hang or a panic.
func TestVerifyPropertiesBudget(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	code, resp := postJSON(t, ts.URL+"/v1/verify", map[string]any{
		"spec":       bigSpec(18),
		"properties": "prop dlf : deadlock_free\n",
		"options":    map[string]any{"max_states": 64},
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("budget trip = %d %q %q, want 422", code, resp.Status, resp.Error)
	}
	if resp.ErrorKind != "budget" {
		t.Fatalf("error_kind = %q, want budget", resp.ErrorKind)
	}
}

// TestHealthReadyFlip: /healthz stays 200 for the process lifetime while
// /readyz flips to 503 the instant Shutdown begins — before the drain
// finishes — so a load balancer stops routing while in-flight jobs complete.
func TestHealthReadyFlip(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		if code, resp := getJSON(t, ts.URL+path); code != http.StatusOK {
			t.Fatalf("%s = %d %q, want 200", path, code, resp.Status)
		}
	}

	// A long job keeps the drain in progress while we probe readiness.
	code, blocker := postJSON(t, ts.URL+"/v1/analyze",
		map[string]any{"spec": bigSpec(20), "async": true})
	if code != http.StatusAccepted {
		t.Fatal("blocker not accepted")
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(t.Context()) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, _ := getJSON(t, ts.URL+"/readyz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Liveness is about the process, not routability: still 200 mid-drain.
	if code, _ := getJSON(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d, want 200", code)
	}

	doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown never drained")
	}
}

// TestAdmissionShedding: past the in-flight cost bound the daemon sheds with
// 503, an overload error kind, and Retry-After hints in both the header
// (whole seconds) and the body (milliseconds); capacity returns once the
// held job finishes.
func TestAdmissionShedding(t *testing.T) {
	// ShedCost of one default job: the first unbounded job fills the gate.
	srv, ts := newTestServer(t, serve.Config{Workers: 1, Queue: 8, ShedCost: 1 << 20})
	_ = srv
	code, blocker := postJSON(t, ts.URL+"/v1/analyze",
		map[string]any{"spec": bigSpec(20), "async": true})
	if code != http.StatusAccepted {
		t.Fatalf("blocker = %d, want 202", code)
	}

	body, err := json.Marshal(map[string]any{"spec": vmeSpec(t), "async": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var shed serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || shed.ErrorKind != "overload" {
		t.Fatalf("shed = %d kind=%q (%s), want 503/overload", resp.StatusCode, shed.ErrorKind, shed.Error)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After header = %q, want >= 1 second", ra)
	}
	if shed.RetryAfterMS <= 0 {
		t.Fatalf("retry_after_ms = %d, want > 0", shed.RetryAfterMS)
	}
	if snap := metrics(t, ts.URL); snap.Counters["serve.shed_total"] != 1 {
		t.Fatalf("shed_total = %d, want 1", snap.Counters["serve.shed_total"])
	}

	// Cancel the holder; its cost releases at finish and admission recovers.
	doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, out := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": vmeSpec(t), "async": true})
		if code == http.StatusAccepted {
			if _, final := pollJob(t, ts.URL, out.JobID); final.Status != "done" {
				t.Fatalf("post-shed job: %q (%s)", final.Status, final.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never recovered after release: %d (%s)", code, out.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRetryCounterExported pins the /metrics contract for the durability
// counters. The crash-retry behaviour itself (panic → one retry with the
// fallback ladder forced) is exercised end-to-end in internal/faultinject,
// where engine panics can be injected.
func TestRetryCounterExported(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	snap := metrics(t, ts.URL)
	if _, ok := snap.Counters["serve.jobs_retried"]; !ok {
		t.Fatalf("serve.jobs_retried missing from /metrics: %v", snap.Counters)
	}
	for _, name := range []string{"serve.jobs_recovered", "serve.jobs_interrupted", "serve.shed_total"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("%s missing from /metrics", name)
		}
	}
}
