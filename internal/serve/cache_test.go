package serve

import (
	"fmt"
	"sync"
	"testing"
)

// TestCachePutOverwrite is the regression test for overwrite accounting: a
// put of an existing key must replace the bytes and charge only the size
// delta, never double-charge the byte gauge or keep stale data.
func TestCachePutOverwrite(t *testing.T) {
	c := newCache(16, 1<<20)
	c.put("k", []byte("aaaa"))
	if _, bytes, _ := c.stats(); bytes != 4 {
		t.Fatalf("after first put: bytes = %d, want 4", bytes)
	}

	// Same size: the account must not grow.
	c.put("k", []byte("bbbb"))
	if got, ok := c.get("k"); !ok || string(got) != "bbbb" {
		t.Fatalf("after overwrite: get = %q, %v; want \"bbbb\", true", got, ok)
	}
	if entries, bytes, _ := c.stats(); entries != 1 || bytes != 4 {
		t.Fatalf("after same-size overwrite: entries=%d bytes=%d, want 1, 4", entries, bytes)
	}

	// Larger: charge exactly the delta.
	c.put("k", []byte("cccccccc"))
	if _, bytes, _ := c.stats(); bytes != 8 {
		t.Fatalf("after growing overwrite: bytes = %d, want 8", bytes)
	}
	// Smaller: release exactly the delta.
	c.put("k", []byte("dd"))
	if _, bytes, _ := c.stats(); bytes != 2 {
		t.Fatalf("after shrinking overwrite: bytes = %d, want 2", bytes)
	}
}

// TestCacheOverwriteEviction checks a growing overwrite still enforces the
// byte bound through the shared eviction loop.
func TestCacheOverwriteEviction(t *testing.T) {
	c := newCache(16, 10)
	c.put("a", []byte("xxxx"))
	c.put("b", []byte("yyyy"))
	c.put("b", []byte("yyyyyyyy")) // 4+8 = 12 > 10: must evict "a" (LRU)
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived an over-budget overwrite")
	}
	if got, ok := c.get("b"); !ok || string(got) != "yyyyyyyy" {
		t.Fatalf("overwritten entry: get = %q, %v", got, ok)
	}
	if entries, bytes, evictions := c.stats(); entries != 1 || bytes != 8 || evictions != 1 {
		t.Fatalf("entries=%d bytes=%d evictions=%d, want 1, 8, 1", entries, bytes, evictions)
	}
}

// TestCacheConcurrentOverwrite hammers one hot key plus a rotating key set
// from many goroutines; run under -race. The invariant checked afterwards is
// the one the accounting bug broke: the byte gauge equals the sum of the
// live entries.
func TestCacheConcurrentOverwrite(t *testing.T) {
	c := newCache(32, 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.put("hot", make([]byte, 1+(i+w)%64))
				c.put(fmt.Sprintf("k%d", i%40), make([]byte, 16))
				c.get("hot")
			}
		}(w)
	}
	wg.Wait()

	c.mu.Lock()
	var sum int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		sum += int64(len(el.Value.(*cacheEntry).data))
	}
	bytes, entries := c.bytes, c.ll.Len()
	indexed := len(c.index)
	c.mu.Unlock()
	if bytes != sum {
		t.Fatalf("byte gauge %d != live-entry sum %d", bytes, sum)
	}
	if entries != indexed {
		t.Fatalf("list has %d entries, index has %d", entries, indexed)
	}
	if entries > 32 {
		t.Fatalf("entry bound violated: %d > 32", entries)
	}
}
