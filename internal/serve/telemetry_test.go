package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// postTraced posts a JSON body with a traceparent header and returns the
// decoded envelope plus the X-Trace-Id response header.
func postTraced(t *testing.T, url, traceparent string, body any) (*serve.Response, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.Header.Get("X-Trace-Id")
}

func isHex32(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func TestTraceparentHonored(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	resp, header := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": vmeSpec(t)})
	if resp.Status != "done" {
		t.Fatalf("status = %q (%s)", resp.Status, resp.Error)
	}
	if resp.TraceID != testTraceID {
		t.Fatalf("trace_id = %q, want the traceparent trace id %q", resp.TraceID, testTraceID)
	}
	if header != testTraceID {
		t.Fatalf("X-Trace-Id = %q, want %q", header, testTraceID)
	}
}

func TestMalformedTraceparentMinted(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	malformed := []string{
		"",
		"garbage",
		"00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
		"00-4bf92f3577b34da6-00f067aa0ba902b7-01",                 // short trace id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace id
	}
	seen := map[string]bool{}
	for _, tp := range malformed {
		resp, header := postTraced(t, ts.URL+"/v1/parse", tp,
			map[string]any{"spec": vmeSpec(t)})
		if !isHex32(resp.TraceID) {
			t.Fatalf("traceparent %q: trace_id %q is not 32 hex digits", tp, resp.TraceID)
		}
		if resp.TraceID != header {
			t.Fatalf("traceparent %q: envelope %q != header %q", tp, resp.TraceID, header)
		}
		if seen[resp.TraceID] {
			t.Fatalf("minted trace id %q repeated", resp.TraceID)
		}
		seen[resp.TraceID] = true
	}
}

func TestTraceIDOnErrorsAndCacheHits(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	// Error envelope carries the honored trace id.
	resp, _ := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": "not a .g file"})
	if resp.Status != "failed" || resp.TraceID != testTraceID {
		t.Fatalf("error envelope: status %q trace %q", resp.Status, resp.TraceID)
	}
	// A cache hit is a new request: it carries its own trace id, not the
	// trace of the run that populated the cache.
	cold, _ := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": vmeSpec(t)})
	if cold.Status != "done" {
		t.Fatalf("cold run failed: %s", cold.Error)
	}
	warm, _ := postTraced(t, ts.URL+"/v1/synthesize", "",
		map[string]any{"spec": vmeSpec(t)})
	if !warm.Cached {
		t.Fatal("second identical request was not a cache hit")
	}
	if warm.TraceID == testTraceID || !isHex32(warm.TraceID) {
		t.Fatalf("cache-hit trace_id = %q, want a fresh mint", warm.TraceID)
	}
}

func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	async := true
	resp, _ := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": vmeSpec(t), "async": &async})
	if resp.JobID == "" {
		t.Fatalf("no job handle: %+v", resp)
	}
	_, final := pollJob(t, ts.URL, resp.JobID)
	if final.Status != "done" {
		t.Fatalf("job failed: %s", final.Error)
	}
	if final.TraceID != testTraceID {
		t.Fatalf("job trace_id = %q, want %q", final.TraceID, testTraceID)
	}

	// Default rendering: obs JSON snapshot, ParseSnapshot-compatible, with a
	// full flow → phase span hierarchy.
	hr, err := http.Get(ts.URL + "/v1/jobs/" + resp.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d: %s", hr.StatusCode, data)
	}
	if got := hr.Header.Get("X-Trace-Id"); got != testTraceID {
		t.Fatalf("/trace X-Trace-Id = %q, want %q", got, testTraceID)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatalf("/trace does not parse as a snapshot: %v", err)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("/trace snapshot has no spans")
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatalf("/trace span hierarchy invalid: %v", err)
	}

	// Chrome rendering: trace_event JSON.
	hr, err = http.Get(ts.URL + "/v1/jobs/" + resp.JobID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	data, err = io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(data); err != nil {
		t.Fatalf("/trace?format=chrome invalid: %v", err)
	}

	// Unknown job: 404 with a traced error envelope.
	code, errResp := getJSON(t, ts.URL+"/v1/jobs/nope/trace")
	if code != http.StatusNotFound || !isHex32(errResp.TraceID) {
		t.Fatalf("unknown-job trace: code %d trace %q", code, errResp.TraceID)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE consumes the stream until the "done" event or EOF.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != nil {
				out = append(out, cur)
				if cur.event == "done" {
					return out
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, ":"): // heartbeat comment
		}
	}
	return out
}

func TestSSEStreamMatchesFinalTrace(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{
		Workers: 1, Queue: 8, StreamHeartbeat: 50 * time.Millisecond,
	})
	// Hold the only worker so the subscriber attaches while the target job
	// is still queued — the stream then carries the complete span record
	// sequence, not a mid-run suffix.
	blocker, _ := postTraced(t, ts.URL+"/v1/analyze", "",
		map[string]any{"spec": bigSpec(20), "async": true})
	async := true
	resp, _ := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": vmeSpec(t), "async": &async})
	if resp.JobID == "" {
		t.Fatalf("no job handle: %+v", resp)
	}
	hr, err := http.Get(ts.URL + "/v1/jobs/" + resp.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	if ct := hr.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got := hr.Header.Get("X-Trace-Id"); got != testTraceID {
		t.Fatalf("SSE X-Trace-Id = %q, want %q", got, testTraceID)
	}
	events := readSSE(t, hr.Body)
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("stream did not end with a done event: %d events", len(events))
	}
	if events[0].event != "status" {
		t.Fatalf("stream did not open with a status event: %q", events[0].event)
	}

	// Span records must be monotone — every close preceded by its open, no
	// record after done — and cover flow and phase levels.
	open := map[int]bool{}
	closed := map[int]bool{}
	cats := map[string]bool{}
	var spanIDs []int
	for _, ev := range events {
		if ev.event != "span" {
			continue
		}
		var rec obs.StreamEvent
		if err := json.Unmarshal(ev.data, &rec); err != nil {
			t.Fatalf("bad span record %s: %v", ev.data, err)
		}
		switch rec.Type {
		case "open":
			if open[rec.Span] {
				t.Fatalf("span %d opened twice", rec.Span)
			}
			open[rec.Span] = true
			cats[rec.Cat] = true
			spanIDs = append(spanIDs, rec.Span)
		case "close":
			if !open[rec.Span] {
				t.Fatalf("span %d closed before open", rec.Span)
			}
			if closed[rec.Span] {
				t.Fatalf("span %d closed twice", rec.Span)
			}
			closed[rec.Span] = true
		case "event":
			if !open[rec.Span] {
				t.Fatalf("event on unopened span %d", rec.Span)
			}
		default:
			t.Fatalf("unknown span record type %q", rec.Type)
		}
	}
	if !cats["flow"] || !cats["phase"] {
		t.Fatalf("stream lacked flow/phase records: cats %v", cats)
	}

	// The final done envelope matches the poll result, and the streamed span
	// set matches the retained trace.
	var done serve.Response
	if err := json.Unmarshal(events[len(events)-1].data, &done); err != nil {
		t.Fatal(err)
	}
	if done.Status != "done" || done.TraceID != testTraceID {
		t.Fatalf("done event: status %q trace %q", done.Status, done.TraceID)
	}
	hr2, err := http.Get(ts.URL + "/v1/jobs/" + resp.JobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(hr2.Body)
	hr2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != len(spanIDs) {
		t.Fatalf("streamed %d span opens, final trace has %d spans", len(spanIDs), len(snap.Spans))
	}
	finalIDs := map[int]bool{}
	for _, sp := range snap.Spans {
		finalIDs[sp.ID] = true
	}
	for _, id := range spanIDs {
		if !finalIDs[id] {
			t.Fatalf("streamed span %d missing from the final trace", id)
		}
	}
}

func TestSSELateSubscriberGetsTerminal(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	async := true
	resp, _ := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": vmeSpec(t), "async": &async})
	_, final := pollJob(t, ts.URL, resp.JobID)
	if final.Status != "done" {
		t.Fatalf("job failed: %s", final.Error)
	}
	hr, err := http.Get(ts.URL + "/v1/jobs/" + resp.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	events := readSSE(t, hr.Body)
	// Initial status snapshot (already terminal) then the retained done event.
	if len(events) < 2 || events[len(events)-1].event != "done" {
		t.Fatalf("late subscriber got %d events, last %q",
			len(events), events[len(events)-1].event)
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 2})
	if _, r := postJSON(t, ts.URL+"/v1/synthesize", map[string]any{"spec": vmeSpec(t)}); r.Status != "done" {
		t.Fatalf("synthesize failed: %s", r.Error)
	}

	// Default: the JSON snapshot, ParseSnapshot-compatible (the metrics
	// helper also re-asserts the span-free aggregate invariant).
	snap := metrics(t, ts.URL)
	if snap.Counters["serve.engine_runs"] == 0 {
		t.Fatal("JSON snapshot missing engine runs")
	}

	// Accept: text/plain selects the Prometheus text exposition.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := hr.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("prom Content-Type = %q", ct)
	}
	if err := obs.ValidateProm(data); err != nil {
		t.Fatalf("prom exposition invalid: %v\n%s", err, data)
	}
	for _, want := range []string{
		"# TYPE serve_engine_runs counter",
		"# TYPE serve_latency_us histogram",
		"serve_latency_us_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, data)
		}
	}

	// An Accept header that doesn't ask for text keeps the JSON default.
	req.Header.Set("Accept", "application/json")
	hr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err = io.ReadAll(hr.Body)
	hr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ParseSnapshot(data); err != nil {
		t.Fatalf("JSON negotiation broke ParseSnapshot compatibility: %v", err)
	}
}

func TestSingleflightSharesTrace(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{Workers: 1, Queue: 8})
	// Hold the only worker so the shared job stays queued while the second
	// request attaches to it (same pattern as TestSingleflight).
	blocker, _ := postTraced(t, ts.URL+"/v1/analyze", "",
		map[string]any{"spec": bigSpec(20), "async": true})
	defer doDelete(t, ts.URL+"/v1/jobs/"+blocker.JobID)
	async := true
	first, _ := postTraced(t, ts.URL+"/v1/synthesize", testTraceparent,
		map[string]any{"spec": vmeSpec(t), "async": &async})
	second, _ := postTraced(t, ts.URL+"/v1/synthesize",
		"00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaab-00f067aa0ba902b7-01",
		map[string]any{"spec": vmeSpec(t), "async": &async})
	if first.JobID == "" || first.JobID != second.JobID {
		t.Fatalf("no singleflight share: %q vs %q", first.JobID, second.JobID)
	}
	// The shared job keeps the creating request's trace.
	if second.TraceID != testTraceID {
		t.Fatalf("attached request trace_id = %q, want the creator's %q",
			second.TraceID, testTraceID)
	}
}
