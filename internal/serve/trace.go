package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Request-scoped tracing: every request gets a 128-bit trace id — honored
// from an incoming W3C traceparent header when it is well formed, minted
// otherwise — threaded through the request context, echoed in the X-Trace-Id
// response header and the trace_id field of every response envelope, stamped
// on the job's journal accept record (so it survives crash recovery), and
// attached to the job's retained span tree in the trace ring.

type traceCtxKey struct{}

// withTrace stores the trace id on the context.
func withTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// traceID returns the context's trace id ("" outside the middleware).
func traceID(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// mintTraceID returns a fresh random 128-bit trace id as 32 lowercase hex
// digits. crypto/rand failure is unrecoverable process state; the fallback
// constant keeps the daemon serving (ids then collide, traces still work).
func mintTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// parseTraceparent extracts the trace id from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). It returns
// ok=false — caller mints instead — for anything malformed: wrong field
// count or width, non-hex bytes, the forbidden version ff, or the all-zero
// trace id the spec reserves as invalid.
func parseTraceparent(header string) (string, bool) {
	header = strings.TrimSpace(header)
	if header == "" {
		return "", false
	}
	parts := strings.Split(header, "-")
	if len(parts) != 4 {
		return "", false
	}
	version, trace, parent, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || len(trace) != 32 || len(parent) != 16 || len(flags) != 2 {
		return "", false
	}
	if !isLowerHex(version) || !isLowerHex(trace) || !isLowerHex(parent) || !isLowerHex(flags) {
		return "", false
	}
	if version == "ff" {
		return "", false
	}
	if trace == strings.Repeat("0", 32) {
		return "", false
	}
	return trace, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}
