package serve

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Admission control sheds load before the queue melts: every job carries a
// cost — its requested state budget, or a default weight when the request
// asks for an unbounded run — and the gate bounds the total cost in flight
// (queued + running). Past the bound, requests are rejected with 503 and a
// decorrelated-jitter Retry-After hint, so a retrying client fleet spreads
// out instead of thundering back in lockstep. The plain queue-depth bound
// still applies underneath; the gate is the cost-aware layer above it.

// defaultJobCost weighs a job with no explicit MaxStates budget: an
// unbounded request is the most expensive kind, so it is charged a full
// 2^20-state weight.
const defaultJobCost = 1 << 20

// jobCost is a request's admission weight: its requested state budget.
func jobCost(o ReqOptions) int64 {
	if o.MaxStates > 0 {
		return int64(o.MaxStates)
	}
	return defaultJobCost
}

// errOverload is the typed rejection of the admission layer (shed gate or
// full queue); it carries the backoff hint the handler turns into a
// Retry-After header.
type errOverload struct {
	retryAfter time.Duration
	msg        string
}

func (e *errOverload) Error() string { return e.msg }

// shedGate tracks in-flight cost and computes backoff hints. limit <= 0
// disables shedding (the gate admits everything).
type shedGate struct {
	limit    int64
	base     time.Duration
	cap      time.Duration
	inflight atomic.Int64
	prev     atomic.Int64 // previous hint, for the decorrelated walk
	shed     *obs.Counter
	gauge    *obs.Gauge
}

func newShedGate(limit int64, base, cap time.Duration, shed *obs.Counter, gauge *obs.Gauge) *shedGate {
	return &shedGate{limit: limit, base: base, cap: cap, shed: shed, gauge: gauge}
}

// admit reserves cost against the limit, or sheds. A single job larger than
// the whole limit is still admitted when the gate is idle — otherwise it
// could never run at all.
func (g *shedGate) admit(cost int64) bool {
	if g.limit <= 0 {
		return true
	}
	for {
		cur := g.inflight.Load()
		if cur > 0 && cur+cost > g.limit {
			g.shed.Inc()
			return false
		}
		if g.inflight.CompareAndSwap(cur, cur+cost) {
			g.gauge.Set(cur + cost)
			return true
		}
	}
}

// force reserves cost unconditionally: recovery re-admits journaled jobs
// even past the limit — they were acknowledged before the crash, and the
// durability contract outranks the shed bound.
func (g *shedGate) force(cost int64) {
	if g.limit <= 0 {
		return
	}
	g.gauge.Set(g.inflight.Add(cost))
}

// release returns a finished job's cost to the gate.
func (g *shedGate) release(cost int64) {
	if g.limit <= 0 {
		return
	}
	g.gauge.Set(g.inflight.Add(-cost))
}

// retryAfter is the decorrelated-jitter backoff hint (AWS architecture
// blog): next = min(cap, random in [base, 3×previous]). Successive shed
// responses hand out an expanding, jittered spread of retry times; the walk
// decays back to base once admissions succeed again.
func (g *shedGate) retryAfter() time.Duration {
	prev := time.Duration(g.prev.Load())
	if prev < g.base {
		prev = g.base
	}
	next := g.base
	if span := int64(3*prev - g.base); span > 0 {
		next += time.Duration(rand.Int63n(span + 1))
	}
	if next > g.cap {
		next = g.cap
	}
	g.prev.Store(int64(next))
	return next
}

// settle resets the backoff walk after a successful admission, so hints
// reflect current pressure rather than a past overload episode.
func (g *shedGate) settle() {
	g.prev.Store(int64(g.base))
}

// overload builds the typed rejection for the current pressure.
func (g *shedGate) overload(format string, args ...any) *errOverload {
	return &errOverload{
		retryAfter: g.retryAfter(),
		msg:        fmt.Sprintf(format, args...),
	}
}
