package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Live job progress: GET /v1/jobs/{id}/events is a Server-Sent-Events
// stream. Each job owns a broadcaster; the per-attempt obs registry's
// stream hook publishes one "span" event per span open/close/event record
// (obs.StreamEvent as data), the lifecycle publishes "status" records, and
// the terminal response is delivered as a final "done" event before every
// subscriber channel closes. Subscribers attaching after the job finished
// get the terminal event immediately.
//
// Backpressure is drop-oldest: each subscriber has a bounded queue
// (Config.StreamQueue) and a slow reader loses its oldest undelivered
// records — counted in serve.sse_dropped — never stalls the engine
// goroutines publishing. The terminal "done" event is always delivered:
// close displaces queued records to make room for it if it must.

// streamMsg is one SSE frame: the event name and its JSON data line.
type streamMsg struct {
	event string
	data  []byte
}

// broadcaster fans one job's event stream out to its SSE subscribers.
type broadcaster struct {
	queueCap int
	dropped  func(int64) // records lost to slow subscribers

	mu       sync.Mutex
	subs     map[chan streamMsg]struct{}
	closed   bool
	terminal *streamMsg // retained for post-finish subscribers
}

func newBroadcaster(queueCap int, dropped func(int64)) *broadcaster {
	if queueCap < 1 {
		queueCap = 1
	}
	if dropped == nil {
		dropped = func(int64) {}
	}
	return &broadcaster{
		queueCap: queueCap,
		dropped:  dropped,
		subs:     map[chan streamMsg]struct{}{},
	}
}

// publish encodes v and offers it to every subscriber, dropping each slow
// subscriber's oldest queued record to make room. Publishes from parallel
// engine goroutines are serialized by the mutex, so each subscriber sees
// one total order.
func (b *broadcaster) publish(event string, v any) {
	if b == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	msg := streamMsg{event: event, data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for ch := range b.subs {
		b.offerLocked(ch, msg)
	}
}

// offerLocked enqueues msg on ch, evicting the oldest queued record when the
// queue is full. The queue has capacity ≥ 1 and this is the only sender (the
// mutex is held), so the second send always lands.
func (b *broadcaster) offerLocked(ch chan streamMsg, msg streamMsg) {
	select {
	case ch <- msg:
		return
	default:
	}
	select {
	case <-ch:
		b.dropped(1)
	default:
	}
	select {
	case ch <- msg:
	default:
		b.dropped(1) // capacity drained concurrently; count the loss
	}
}

// finish publishes the terminal event, closes every subscriber channel and
// marks the broadcaster closed. Later subscribers receive the terminal event
// from a pre-closed channel; later publishes are no-ops.
func (b *broadcaster) finish(event string, v any) {
	if b == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{}`)
	}
	msg := streamMsg{event: event, data: data}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.terminal = &msg
	for ch := range b.subs {
		b.offerLocked(ch, msg)
		close(ch)
	}
	b.subs = nil
}

// subscribe returns a channel of the job's remaining events. The channel is
// closed when the job finishes; a subscription after the finish yields just
// the terminal event. Callers must unsubscribe when done reading.
func (b *broadcaster) subscribe() chan streamMsg {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		ch := make(chan streamMsg, 1)
		if b.terminal != nil {
			ch <- *b.terminal
		}
		close(ch)
		return ch
	}
	ch := make(chan streamMsg, b.queueCap)
	b.subs[ch] = struct{}{}
	return ch
}

// unsubscribe detaches a live subscription; harmless after finish.
func (b *broadcaster) unsubscribe(ch chan streamMsg) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.subs != nil {
		delete(b.subs, ch)
	}
}

// handleJobEvents is GET /v1/jobs/{id}/events: the SSE progress stream.
// The connection opens with a "status" event (the job's current snapshot),
// streams "span" and "status" records as the job runs, keeps the connection
// alive with comment heartbeats, and ends after the "done" event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	// Subscribe before the initial snapshot: anything the job publishes after
	// the snapshot is queued, so the stream can lag but never miss records.
	ch := j.events.subscribe()
	defer j.events.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Trace-Id", j.trace)
	w.WriteHeader(http.StatusOK)
	writeSSE(w, streamMsg{event: "status", data: mustJSON(j.snapshot())})
	fl.Flush()

	hb := time.NewTicker(s.cfg.StreamHeartbeat)
	defer hb.Stop()
	for {
		select {
		case msg, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, msg)
			fl.Flush()
			if msg.event == "done" {
				return
			}
		case <-hb.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one frame in text/event-stream framing. The data is a
// single JSON line (json.Marshal emits no raw newlines), so one data: field
// suffices.
func writeSSE(w http.ResponseWriter, msg streamMsg) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", msg.event, msg.data)
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(`{}`)
	}
	return data
}
