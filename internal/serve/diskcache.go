package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// The disk-backed result cache persists the content-addressed store across
// restarts: one file per SHA-256 key under <data-dir>/cache/, each carrying
// a checksummed header so a torn or bit-rotted file is detected on read and
// quarantined — a corrupt entry is never served. Writes are crash-safe by
// construction (temp file, fsync, atomic rename), and the in-memory LRU
// index — rebuilt lazily from file sizes and mtimes on startup, without
// reading any payload — evicts on disk by the same entry/byte bounds as the
// memory cache.
//
// File layout: 8-byte magic, 8-byte big-endian payload length, 32-byte
// SHA-256 of the payload, payload. The key itself is the content address of
// the request; the embedded hash covers the stored response, so both halves
// of the mapping are integrity-checked.

const (
	diskMagic   = "SRVRES1\n"
	diskEntExt  = ".res"
	diskTmpExt  = ".tmp"
	diskBadExt  = ".corrupt"
	diskHdrSize = 8 + 8 + sha256.Size
)

type diskCache struct {
	dir        string
	maxEntries int
	maxBytes   int64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	index map[string]*list.Element
	bytes int64

	hits, evictions, corrupt *obs.Counter
}

type diskEntry struct {
	key  string
	size int64 // payload bytes (header excluded, matching the memory gauge)
}

// openDiskCache creates dir if needed and indexes the existing entries by
// name, size and mtime — payloads are validated lazily, on first get.
// Leftover temp files from a crashed write are removed; quarantined
// (.corrupt) files are left for inspection. Entries beyond the bounds are
// evicted oldest-first immediately, so a shrunk config takes effect on
// startup.
func openDiskCache(dir string, maxEntries int, maxBytes int64, hits, evictions, corrupt *obs.Counter) (*diskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: disk cache: %w", err)
	}
	c := &diskCache{
		dir: dir, maxEntries: maxEntries, maxBytes: maxBytes,
		ll: list.New(), index: map[string]*list.Element{},
		hits: hits, evictions: evictions, corrupt: corrupt,
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: disk cache: %w", err)
	}
	type aged struct {
		key   string
		size  int64
		mtime int64
	}
	var found []aged
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, diskTmpExt):
			os.Remove(filepath.Join(dir, name)) // torn write; never completed
		case strings.HasSuffix(name, diskEntExt):
			key := strings.TrimSuffix(name, diskEntExt)
			if !validKey(key) {
				continue
			}
			info, err := ent.Info()
			if err != nil {
				continue
			}
			size := info.Size() - diskHdrSize
			if size < 0 {
				// Too short to even hold a header: quarantine now.
				c.quarantineFile(key)
				continue
			}
			found = append(found, aged{key, size, info.ModTime().UnixNano()})
		}
	}
	// Oldest first: they land at the LRU end and are evicted first.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, a := range found {
		c.index[a.key] = c.ll.PushFront(&diskEntry{key: a.key, size: a.size})
		c.bytes += a.size
	}
	c.mu.Lock()
	c.evictLocked()
	c.mu.Unlock()
	return c, nil
}

// validKey accepts exactly the 64-hex SHA-256 content addresses the server
// issues; anything else in the directory is not ours to touch.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (c *diskCache) path(key string) string {
	return filepath.Join(c.dir, key+diskEntExt)
}

// get reads and verifies the entry. Any mismatch — bad magic, short file,
// length or checksum disagreement — quarantines the file (renamed to
// .corrupt) and reports a miss: a torn cache file is never served.
func (c *diskCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.dropLocked(el, false)
		return nil, false
	}
	data, ok := decodeEntry(raw)
	if !ok {
		c.quarantineFile(key)
		c.dropLocked(el, false)
		c.corrupt.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return data, true
}

// decodeEntry validates the header and returns the payload.
func decodeEntry(raw []byte) ([]byte, bool) {
	if len(raw) < diskHdrSize || string(raw[:8]) != diskMagic {
		return nil, false
	}
	n := binary.BigEndian.Uint64(raw[8:16])
	payload := raw[diskHdrSize:]
	if uint64(len(payload)) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(raw[16:16+sha256.Size]) {
		return nil, false
	}
	return payload, true
}

// put stores data under key crash-safely: header+payload into a temp file,
// fsync, rename. The serve.cache.write kill site splits the payload write
// around the death, so a chaos kill mid-write leaves only a temp file —
// cleaned on the next startup, invisible to readers.
func (c *diskCache) put(key string, data []byte) {
	if c == nil || int64(len(data)) > c.maxBytes || !validKey(key) {
		return
	}
	hdr := make([]byte, diskHdrSize)
	copy(hdr, diskMagic)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(len(data)))
	sum := sha256.Sum256(data)
	copy(hdr[16:], sum[:])

	c.mu.Lock()
	defer c.mu.Unlock()
	tmp := filepath.Join(c.dir, key+diskTmpExt)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	write := func() error {
		if _, err := f.Write(hdr); err != nil {
			return err
		}
		if faultinject.CrashArmed("serve.cache.write") {
			half := len(data) / 2
			if _, err := f.Write(data[:half]); err != nil {
				return err
			}
			f.Sync()
			faultinject.Crash("serve.cache.write")
			_, err := f.Write(data[half:])
			return err
		}
		_, err := f.Write(data)
		return err
	}
	if err := write(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return
	}
	syncDir(c.dir)

	if el, ok := c.index[key]; ok {
		// Overwrite: adjust the byte account by the size delta.
		e := el.Value.(*diskEntry)
		c.bytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&diskEntry{key: key, size: int64(len(data))})
		c.bytes += int64(len(data))
	}
	c.evictLocked()
}

// evictLocked deletes least-recently-used entry files until both bounds
// hold.
func (c *diskCache) evictLocked() {
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		last := c.ll.Back()
		if last == nil {
			return
		}
		c.dropLocked(last, true)
		c.evictions.Inc()
	}
}

// dropLocked removes an entry from the index and, when remove is set, its
// file from disk.
func (c *diskCache) dropLocked(el *list.Element, remove bool) {
	e := el.Value.(*diskEntry)
	c.ll.Remove(el)
	delete(c.index, e.key)
	c.bytes -= e.size
	if remove {
		os.Remove(c.path(e.key))
	}
}

// quarantineFile renames a failed-validation entry to .corrupt so it is
// preserved for inspection but never reconsidered.
func (c *diskCache) quarantineFile(key string) {
	os.Rename(c.path(key), filepath.Join(c.dir, key+diskBadExt))
}

// stats reports the indexed entry count and payload byte total.
func (c *diskCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
