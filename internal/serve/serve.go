// Package serve is the synthesis-as-a-service layer behind cmd/serve: an
// HTTP/JSON daemon that runs the paper's flow (parse → analysis → encoding
// → logic → verification) as bounded, cancellable, panic-contained jobs.
//
// Endpoints:
//
//	POST   /v1/parse       parse a .g spec, report structure + content hash
//	POST   /v1/analyze     state graph + implementability suite
//	POST   /v1/synthesize  full synthesis flow (core.Synthesize)
//	POST   /v1/verify      compose an .eqn netlist against the spec mirror
//	                       and/or check temporal properties (internal/prop)
//	GET    /v1/jobs/{id}          poll an async job
//	GET    /v1/jobs/{id}/trace    the job's span tree (obs JSON snapshot;
//	                              ?format=chrome for trace_event JSON)
//	GET    /v1/jobs/{id}/events   live progress (Server-Sent Events)
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /metrics               aggregated obs snapshot (JSON by default;
//	                              Accept: text/plain for Prometheus text)
//
// Every request carries a 128-bit trace id — honored from an incoming W3C
// traceparent header, minted otherwise — echoed in the X-Trace-Id response
// header and the trace_id envelope field, threaded through the journal (so
// it survives crash recovery) and stamped on the job's retained span tree.
//
// Requests are deduplicated by content address — SHA-256 over the
// canonical .g form (stg.CanonicalHash) plus a canonical encoding of the
// result-shaping options — through an LRU result cache and a singleflight
// table: concurrent identical requests share one engine run, repeated ones
// replay the stored bytes without touching the engines at all.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/prop"
	"repro/internal/stg"
)

// Config sizes the daemon. Zero values select the documented defaults.
type Config struct {
	// Workers is the job worker-pool size (default GOMAXPROCS).
	Workers int
	// Queue is the job queue depth; a full queue rejects with 503
	// (default 64).
	Queue int
	// CacheEntries and CacheBytes bound the result cache (defaults 256
	// entries, 64 MiB). Setting either negative disables caching.
	CacheEntries int
	CacheBytes   int64
	// AsyncThreshold is the transition count above which a request with no
	// explicit "async" field returns a job handle instead of blocking
	// (default 256).
	AsyncThreshold int
	// JobTimeout is a wall-clock ceiling applied to every job on top of
	// the per-request timeout_ms (default none).
	JobTimeout time.Duration
	// JobHistory bounds how many finished jobs stay pollable (default 1024).
	JobHistory int
	// DataDir enables durability: a write-ahead job journal
	// (<DataDir>/journal.jsonl, replayed on startup — accepted jobs are
	// re-enqueued, jobs that died mid-run are reported as interrupted) and
	// a disk-backed result cache (<DataDir>/cache/, LRU-bounded by
	// CacheEntries/CacheBytes) that survives restarts byte-identically.
	// Empty runs fully in memory.
	DataDir string
	// ShedCost bounds the total admission cost in flight (each job costs
	// its requested max_states, or 2^20 when unbounded); past it, requests
	// are shed with 503 + Retry-After. 0 selects 4 × Queue × 2^20 — a
	// generous ceiling the plain queue bound normally beats, unless jobs
	// carry large explicit budgets. Negative disables shedding.
	ShedCost int64
	// ShedBase and ShedCap bound the decorrelated-jitter Retry-After hints
	// (defaults 1s and 30s).
	ShedBase, ShedCap time.Duration
	// Registry receives the aggregated server metrics; a fresh registry is
	// created when nil.
	Registry *obs.Registry
	// Logger receives structured daemon logs (access log, journal warnings,
	// job lifecycle), every record stamped with the request's trace id. Nil
	// keeps the library silent (a disabled handler is installed).
	Logger *slog.Logger
	// TraceEntries and TraceBytes bound the per-job trace ring — the
	// newest-N, size-capped store of finished jobs' span trees behind
	// GET /v1/jobs/{id}/trace (defaults 64 entries, 16 MiB). Setting
	// TraceEntries negative disables retention.
	TraceEntries int
	TraceBytes   int64
	// StreamQueue bounds each SSE subscriber's event queue; a slow reader
	// drops its oldest undelivered records (default 256).
	StreamQueue int
	// StreamHeartbeat is the SSE comment-heartbeat interval (default 15s).
	StreamHeartbeat time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.AsyncThreshold <= 0 {
		c.AsyncThreshold = 256
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 1024
	}
	if c.ShedCost == 0 {
		c.ShedCost = 4 * int64(c.Queue) * defaultJobCost
	}
	if c.ShedBase <= 0 {
		c.ShedBase = time.Second
	}
	if c.ShedCap <= 0 {
		c.ShedCap = 30 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(nopHandler{})
	}
	if c.TraceEntries == 0 {
		c.TraceEntries = 64
	}
	if c.TraceBytes == 0 {
		c.TraceBytes = 16 << 20
	}
	if c.StreamQueue <= 0 {
		c.StreamQueue = 256
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	return c
}

// Server is the daemon state: worker pool, job table, result cache and
// metrics registry. Create with New, serve via Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	log     *slog.Logger
	traces  *obs.TraceRing // nil when Config.TraceEntries < 0
	cache   *cache
	disk    *diskCache // nil without Config.DataDir
	journal *journal   // nil without Config.DataDir
	gate    *shedGate
	mux     *http.ServeMux
	root    http.Handler // mux wrapped in the telemetry middleware

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job creation order, for history eviction
	flight map[string]*job
	queue  chan *job
	closed bool
	seq    int

	wg       sync.WaitGroup
	depth    atomic.Int64
	draining atomic.Bool // set the instant Shutdown begins; flips /readyz

	requests, cacheHits, cacheMisses, cacheEvictions *obs.Counter
	engineRuns, sharedFlights                        *obs.Counter
	jobsDone, jobsFailed, jobsCanceled               *obs.Counter
	jobsRecovered, jobsInterrupted, jobsRetried      *obs.Counter
	diskHits, diskEvictions, diskCorrupt             *obs.Counter
	traceEvictions, sseDropped                       *obs.Counter
	queueDepth, cacheEntries, cacheBytes             *obs.Gauge
	diskEntries, diskBytes                           *obs.Gauge
	traceEntries, traceBytes                         *obs.Gauge
	latency                                          *obs.Histogram

	// testBudgetHook, when set by a test, is installed as the fault-injection
	// hook on every job budget (see budget.Budget.Hook). Nil in production.
	testBudgetHook func(site string) error
}

// New builds a Server, replays the journal under Config.DataDir (if any)
// and starts the worker pool. Recovery happens before the first worker
// runs: jobs accepted-but-unstarted at the crash are back in the queue and
// jobs that died mid-run are pollable as "interrupted" by the time New
// returns.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		log:    cfg.Logger,
		cache:  newCache(cfg.CacheEntries, cfg.CacheBytes),
		jobs:   make(map[string]*job),
		flight: make(map[string]*job),
		queue:  make(chan *job, cfg.Queue),
	}
	if cfg.TraceEntries > 0 {
		s.traces = obs.NewTraceRing(cfg.TraceEntries, cfg.TraceBytes)
	}
	s.requests = s.reg.Counter("serve.requests")
	s.cacheHits = s.reg.Counter("serve.cache_hits")
	s.cacheMisses = s.reg.Counter("serve.cache_misses")
	s.cacheEvictions = s.reg.Counter("serve.cache_evictions")
	s.engineRuns = s.reg.Counter("serve.engine_runs")
	s.sharedFlights = s.reg.Counter("serve.singleflight_shared")
	s.jobsDone = s.reg.Counter("serve.jobs_done")
	s.jobsFailed = s.reg.Counter("serve.jobs_failed")
	s.jobsCanceled = s.reg.Counter("serve.jobs_canceled")
	s.jobsRecovered = s.reg.Counter("serve.jobs_recovered")
	s.jobsInterrupted = s.reg.Counter("serve.jobs_interrupted")
	s.jobsRetried = s.reg.Counter("serve.jobs_retried")
	s.diskHits = s.reg.Counter("serve.cache_disk_hits")
	s.diskEvictions = s.reg.Counter("serve.cache_disk_evictions")
	s.diskCorrupt = s.reg.Counter("serve.cache_disk_corrupt")
	s.traceEvictions = s.reg.Counter("serve.trace_evictions")
	s.sseDropped = s.reg.Counter("serve.sse_dropped")
	s.queueDepth = s.reg.Gauge("serve.queue_depth")
	s.cacheEntries = s.reg.Gauge("serve.cache_entries")
	s.cacheBytes = s.reg.Gauge("serve.cache_bytes")
	s.diskEntries = s.reg.Gauge("serve.cache_disk_entries")
	s.diskBytes = s.reg.Gauge("serve.cache_disk_bytes")
	s.traceEntries = s.reg.Gauge("serve.trace_entries")
	s.traceBytes = s.reg.Gauge("serve.trace_bytes")
	s.latency = s.reg.Histogram("serve.latency_us", obs.Pow2Buckets(30)...)
	s.gate = newShedGate(cfg.ShedCost, cfg.ShedBase, cfg.ShedCap,
		s.reg.Counter("serve.shed_total"), s.reg.Gauge("serve.inflight_cost"))
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/parse", s.handleParse)
	s.mux.HandleFunc("POST /v1/analyze", s.handleRun("analyze"))
	s.mux.HandleFunc("POST /v1/synthesize", s.handleRun("synthesize"))
	s.mux.HandleFunc("POST /v1/verify", s.handleRun("verify"))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.root = s.telemetry(s.mux)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler: the route mux wrapped in the
// tracing/access-log middleware.
func (s *Server) Handler() http.Handler { return s.root }

// Shutdown drains the daemon: /readyz flips to 503 immediately (load
// balancers stop routing before the drain deadline), new jobs are rejected
// with 503, queued and running jobs finish normally. When ctx expires
// first, every live job is canceled (it finishes through the normal
// budget-cancellation path) and Shutdown still waits for the workers before
// returning ctx's error. The journal is closed once the workers are done —
// every drained job has its finish record on disk.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		err = ctx.Err()
	}
	s.journal.Close()
	return err
}

// handleHealthz is liveness: the process is up and serving HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 from the instant Shutdown begins, so load
// balancers drain routes before the deadline; 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// cacheKey is the content address of a request: the kind, the canonical
// spec hash, and only the options that shape the result. Budget bounds,
// timeouts, worker counts and the fallback switch are excluded — parallel
// runs are bit-identical by construction, and only complete (non-degraded)
// results are ever stored, so any budget that produces a cacheable result
// produces this one. propsHash addresses the canonical property text, and
// the engine choice is keyed because the engines find different (equally
// valid) counterexample traces.
func cacheKey(kind, specHash, implHash, propsHash string, o ReqOptions) string {
	style := o.Style
	if style == "" {
		style = "complex"
	}
	engine := o.PropEngine
	if engine == "" {
		engine = "auto"
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|v1|%s|%s|style=%s|fanin=%d|verify=%t|props=%s|eng=%s",
		kind, specHash, implHash, style, o.MaxFanIn, !o.SkipVerify, propsHash, engine)
	return hex.EncodeToString(h.Sum(nil))
}

// propsHash is the content address of a property list: its canonical
// rendering, so formatting-equivalent property files share cache entries.
func propsHash(props []prop.Property) string {
	if len(props) == 0 {
		return ""
	}
	sum := sha256.Sum256([]byte(prop.Print(props)))
	return hex.EncodeToString(sum[:])
}

// implHash is the content address of a parsed .eqn netlist: its canonical
// equations rendering.
func implHash(nl *logic.Netlist) string {
	sum := sha256.Sum256([]byte(nl.Equations()))
	return hex.EncodeToString(sum[:])
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // the response is already committed; nothing to do on error
}

func writeError(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	writeJSON(w, code, &Response{
		Status: "failed", TraceID: traceID(r.Context()),
		Error: fmt.Sprintf(format, args...),
	})
}

// writeOverload is the admission-layer rejection: 503 with a Retry-After
// header (whole seconds, rounded up) and the same hint in milliseconds in
// the body, for clients that want the jittered value unquantized.
func writeOverload(w http.ResponseWriter, r *http.Request, ov *errOverload) {
	secs := int64((ov.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, http.StatusServiceUnavailable, &Response{
		Status: "failed", TraceID: traceID(r.Context()),
		Error: ov.msg, ErrorKind: "overload",
		RetryAfterMS: ov.retryAfter.Milliseconds(),
	})
}

// decode parses and validates the request body far enough to reject
// malformed input with 400 before any job is created.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, kind string) (*Request, *stg.STG, *logic.Netlist, []prop.Property, bool) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad request: %v", err)
		return nil, nil, nil, nil, false
	}
	if strings.TrimSpace(req.Spec) == "" {
		writeError(w, r, http.StatusBadRequest, "bad request: empty spec")
		return nil, nil, nil, nil, false
	}
	if _, err := req.Options.style(); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad request: %v", err)
		return nil, nil, nil, nil, false
	}
	if _, err := req.Options.propEngine(); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad request: %v", err)
		return nil, nil, nil, nil, false
	}
	g, err := stg.ParseG(strings.NewReader(req.Spec))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad spec: %v", err)
		return nil, nil, nil, nil, false
	}
	var nl *logic.Netlist
	var props []prop.Property
	if kind == "verify" {
		if strings.TrimSpace(req.Impl) == "" && strings.TrimSpace(req.Properties) == "" {
			writeError(w, r, http.StatusBadRequest, "bad request: verify needs an impl (.eqn) or a properties field")
			return nil, nil, nil, nil, false
		}
		if strings.TrimSpace(req.Impl) != "" {
			if nl, err = logic.ParseEquations(strings.NewReader(req.Impl)); err != nil {
				writeError(w, r, http.StatusBadRequest, "bad impl: %v", err)
				return nil, nil, nil, nil, false
			}
		}
		if strings.TrimSpace(req.Properties) != "" {
			if props, err = prop.Parse(req.Properties); err != nil {
				writeError(w, r, http.StatusBadRequest, "bad properties: %v", err)
				return nil, nil, nil, nil, false
			}
			if len(props) == 0 {
				writeError(w, r, http.StatusBadRequest, "bad properties: no properties declared")
				return nil, nil, nil, nil, false
			}
			if err := prop.Bind(g, props); err != nil {
				writeError(w, r, http.StatusBadRequest, "bad properties: %v", err)
				return nil, nil, nil, nil, false
			}
		}
	}
	return &req, g, nl, props, true
}

// handleParse answers inline — parsing is too cheap to queue.
func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	_, g, _, _, ok := s.decode(w, r, "parse")
	if !ok {
		return
	}
	hash, err := g.CanonicalHash()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	var canon strings.Builder
	if err := g.WriteG(&canon); err != nil {
		writeError(w, r, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	counts := map[string]int{}
	for _, sig := range g.Signals {
		counts[strings.ToLower(sig.Kind.String())]++
	}
	raw, err := json.Marshal(&ParseResult{
		Kind:        "parse",
		Name:        g.Name(),
		Hash:        hash,
		Signals:     counts,
		Transitions: len(g.Net.Transitions),
		Places:      len(g.Net.Places),
		Canonical:   canon.String(),
	})
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &Response{
		Status: "done", Result: raw, TraceID: traceID(r.Context()),
	})
}

// handleRun is the shared front end of /v1/analyze, /v1/synthesize and
// /v1/verify: decode, cache lookup, singleflight attach, enqueue, then
// either block (sync) or hand back a job handle (async).
func (s *Server) handleRun(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		s.reg.Counter("serve.requests_" + kind).Inc()
		req, g, nl, props, ok := s.decode(w, r, kind)
		if !ok {
			return
		}
		specHash, err := g.CanonicalHash()
		if err != nil {
			writeError(w, r, http.StatusBadRequest, "bad spec: %v", err)
			return
		}
		ih := ""
		if nl != nil {
			ih = implHash(nl)
		}
		key := cacheKey(kind, specHash, ih, propsHash(props), req.Options)
		if data, ok := s.cache.get(key); ok {
			s.cacheHits.Inc()
			writeJSON(w, http.StatusOK, &Response{
				Status: "done", Cached: true, Key: key, Result: data,
				TraceID: traceID(r.Context()),
			})
			return
		}
		// Disk hits survive restarts: promote into the memory tier and
		// replay the stored bytes exactly like a warm hit.
		if data, ok := s.disk.get(key); ok {
			s.cache.put(key, data)
			writeJSON(w, http.StatusOK, &Response{
				Status: "done", Cached: true, Key: key, Result: data,
				TraceID: traceID(r.Context()),
			})
			return
		}
		s.cacheMisses.Inc()

		async := len(g.Net.Transitions) > s.cfg.AsyncThreshold
		if req.Async != nil {
			async = *req.Async
		}

		j, shared, err := s.admit(kind, key, traceID(r.Context()), req, g, nl, props)
		if err != nil {
			var ov *errOverload
			if errors.As(err, &ov) {
				writeOverload(w, r, ov)
				return
			}
			writeError(w, r, http.StatusServiceUnavailable, "%v", err)
			return
		}
		if shared {
			s.sharedFlights.Inc()
		}
		if async {
			writeJSON(w, http.StatusAccepted, j.snapshot())
			return
		}
		select {
		case <-j.done:
			resp := j.snapshot()
			writeJSON(w, resp.code, resp)
		case <-r.Context().Done():
			// Client gone; the job keeps running (other requests may share
			// it, and its result is still cacheable).
		}
	}
}

// admit finds a running job with the same content address or creates and
// enqueues a new one. It fails when the daemon is draining, the shed gate
// is over its in-flight cost bound, or the queue is full. The journal
// accept record is written — and fsync'd — before the job enters the queue,
// so no acknowledged job can be lost to a crash. A singleflight-attached
// request shares the existing job, including its trace id — the trace
// belongs to the request that created the job.
func (s *Server) admit(kind, key, trace string, req *Request, g *stg.STG, nl *logic.Netlist, props []prop.Property) (*job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("serve: shutting down")
	}
	if f := s.flight[key]; f != nil {
		return f, true, nil
	}
	// Only admit (serialized by s.mu) ever fills the queue, so a free slot
	// observed here stays free until the send below.
	if len(s.queue) == cap(s.queue) {
		return nil, false, s.gate.overload("serve: queue full (%d jobs)", s.cfg.Queue)
	}
	cost := jobCost(req.Options)
	if !s.gate.admit(cost) {
		return nil, false, s.gate.overload(
			"serve: overloaded (in-flight cost %d over %d)", s.gate.inflight.Load(), s.gate.limit)
	}
	s.gate.settle()
	s.seq++
	var ctx context.Context
	var cancel context.CancelFunc
	if t := s.jobTimeout(req.Options); t > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), t)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	if trace == "" {
		trace = mintTraceID() // admitted outside the middleware (tests)
	}
	j := &job{
		id:     fmt.Sprintf("j%d", s.seq),
		kind:   kind,
		key:    key,
		cost:   cost,
		trace:  trace,
		req:    req,
		g:      g,
		nl:     nl,
		props:  props,
		events: newBroadcaster(s.cfg.StreamQueue, s.sseDropped.Add),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: "queued",
	}
	if err := s.journalAccept(j); err != nil {
		// Durability is the contract when a data dir is configured: refuse
		// work the journal cannot record rather than accept it silently
		// volatile.
		cancel()
		s.gate.release(cost)
		return nil, false, fmt.Errorf("serve: journal unavailable: %w", err)
	}
	s.queue <- j // cannot block: slot reserved above under s.mu
	s.queueDepth.Set(s.depth.Add(1))
	s.jobs[j.id] = j
	s.flight[key] = j
	s.order = append(s.order, j.id)
	s.evictHistoryLocked()
	return j, false, nil
}

// journalAccept renders the job's accept record — the canonical spec plus
// everything needed to re-run it on a fresh process — and appends it.
func (s *Server) journalAccept(j *job) error {
	if s.journal == nil {
		return nil
	}
	var spec strings.Builder
	if err := j.g.WriteG(&spec); err != nil {
		return err
	}
	opts := j.req.Options
	return s.journal.append(&journalRecord{
		T:     "accept",
		Job:   j.id,
		Kind:  j.kind,
		Key:   j.key,
		Trace: j.trace,
		Spec:  spec.String(),
		Impl:  j.req.Impl,
		Props: j.req.Properties,
		Opts:  &opts,
	})
}

// jobTimeout combines the per-request timeout with the server ceiling.
func (s *Server) jobTimeout(o ReqOptions) time.Duration {
	t := time.Duration(o.TimeoutMS) * time.Millisecond
	if s.cfg.JobTimeout > 0 && (t == 0 || s.cfg.JobTimeout < t) {
		t = s.cfg.JobTimeout
	}
	return t
}

// evictHistoryLocked drops the oldest finished jobs beyond the history
// bound. Live jobs are never dropped.
func (s *Server) evictHistoryLocked() {
	finished := func(j *job) bool {
		select {
		case <-j.done:
			return true
		default:
			return false
		}
	}
	for len(s.order) > s.cfg.JobHistory {
		idx := -1
		for i, id := range s.order {
			if j := s.jobs[id]; j == nil || finished(j) {
				delete(s.jobs, id)
				idx = i
				break
			}
		}
		if idx < 0 {
			return // everything is still live; the queue bound caps this
		}
		s.order = append(s.order[:idx], s.order[idx+1:]...)
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	resp := j.snapshot()
	code := http.StatusOK
	if resp.Status == "failed" || resp.Status == "canceled" {
		code = resp.code
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	// Journal the cancellation before acting on it: if the process dies
	// before the job finishes unwinding, replay must not resurrect a job
	// the client was told is being canceled.
	if err := s.journal.append(&journalRecord{T: "cancel", Job: j.id}); err != nil {
		s.jobLog(j, slog.LevelError, "journal cancel failed", err)
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) syncCacheGauges() {
	entries, bytes, evictions := s.cache.stats()
	s.cacheEntries.Set(int64(entries))
	s.cacheBytes.Set(bytes)
	if d := evictions - s.cacheEvictions.Value(); d > 0 {
		s.cacheEvictions.Add(d)
	}
	if s.disk != nil {
		dEntries, dBytes := s.disk.stats()
		s.diskEntries.Set(int64(dEntries))
		s.diskBytes.Set(dBytes)
	}
}
