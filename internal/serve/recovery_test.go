package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

const tinySpec = `.model tiny
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
`

func writeJournal(t *testing.T, dir string, lines ...string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data := strings.Join(lines, "\n")
	if len(lines) > 0 {
		data += "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func acceptLine(t *testing.T, id, kind string) string {
	t.Helper()
	rec := journalRecord{T: "accept", Job: id, Kind: kind, Spec: tinySpec, Opts: &ReqOptions{}}
	raw, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func newDurableServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{Workers: 2, Queue: 8, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, hs
}

func pollJob(t *testing.T, base, id string, want func(*Response) bool) *Response {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var out Response
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if want(&out) {
			return &out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: stuck at %q (%s)", id, out.Status, out.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoveryReenqueue: a job accepted but never started before the crash
// is re-enqueued on restart, runs, and completes normally with its id.
func TestRecoveryReenqueue(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir, acceptLine(t, "j7", "analyze"))
	srv, hs := newDurableServer(t, dir)
	if got := srv.jobsRecovered.Value(); got != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", got)
	}
	out := pollJob(t, hs.URL, "j7", func(r *Response) bool { return r.Status == "done" })
	if out.JobID != "j7" {
		t.Fatalf("job id = %q, want j7", out.JobID)
	}
	// The recovered id reserves the sequence: a new job must not collide.
	code, body := post(t, hs.URL+"/v1/analyze", map[string]any{"spec": tinySpec, "async": true,
		"options": map[string]any{"style": "gc"}})
	if code != http.StatusAccepted {
		t.Fatalf("new job after recovery: %d %s", code, body.Error)
	}
	if body.JobID <= "j7" {
		t.Fatalf("new job id %q does not continue past recovered j7", body.JobID)
	}
}

// TestRecoveryInterrupted: a job with a start record but no finish died
// mid-run; restart reports it as terminal "interrupted" and does not re-run
// it.
func TestRecoveryInterrupted(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		acceptLine(t, "j2", "synthesize"),
		`{"t":"start","job":"j2"}`,
	)
	srv, hs := newDurableServer(t, dir)
	if got := srv.jobsInterrupted.Value(); got != 1 {
		t.Fatalf("jobs_interrupted = %d, want 1", got)
	}
	if got := srv.jobsRecovered.Value(); got != 0 {
		t.Fatalf("jobs_recovered = %d, want 0", got)
	}
	out := pollJob(t, hs.URL, "j2", func(r *Response) bool { return r.Status != "queued" })
	if out.Status != "interrupted" || out.ErrorKind != "interrupted" {
		t.Fatalf("status=%q kind=%q, want interrupted/interrupted", out.Status, out.ErrorKind)
	}
	// Terminal: a second restart drops it from the compacted journal.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	srv2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	if got := srv2.jobsInterrupted.Value() + srv2.jobsRecovered.Value(); got != 0 {
		t.Fatalf("second restart resurrected %d jobs", got)
	}
}

// TestRecoveryCanceledNotResurrected: a cancel record is terminal — replay
// must not re-enqueue the job the client was told is being canceled.
func TestRecoveryCanceledNotResurrected(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		acceptLine(t, "j1", "analyze"),
		`{"t":"cancel","job":"j1"}`,
	)
	srv, _ := newDurableServer(t, dir)
	if got := srv.jobsRecovered.Value() + srv.jobsInterrupted.Value(); got != 0 {
		t.Fatalf("canceled job resurrected (%d recovered/interrupted)", got)
	}
}

// TestRecoveryTruncatedTail: the torn tail of the record a crash
// interrupted is tolerated — replay stops there, keeps everything before it,
// and flags the truncation for the log.
func TestRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		acceptLine(t, "j1", "analyze"),
		`{"t":"accept","job":"j2","kind":"ana`, // torn mid-record
	)
	rp, err := replayJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatalf("replay failed on torn tail: %v", err)
	}
	if !rp.Truncated {
		t.Fatal("truncation not flagged")
	}
	if !strings.Contains(rp.TruncatedLine, `"j2"`) {
		t.Fatalf("truncated line = %q, want the torn record", rp.TruncatedLine)
	}
	open := rp.open()
	if len(open) != 1 || open[0].Job != "j1" {
		t.Fatalf("open jobs = %+v, want exactly j1", open)
	}

	// End to end: the server still starts and recovers j1.
	srv, hs := newDurableServer(t, dir)
	if got := srv.jobsRecovered.Value(); got != 1 {
		t.Fatalf("jobs_recovered = %d, want 1", got)
	}
	pollJob(t, hs.URL, "j1", func(r *Response) bool { return r.Status == "done" })
}

// TestRecoveryCompaction: startup rewrites the journal to exactly the
// recovered state — terminal jobs dropped, open jobs kept.
func TestRecoveryCompaction(t *testing.T) {
	dir := t.TempDir()
	writeJournal(t, dir,
		acceptLine(t, "j1", "analyze"),
		`{"t":"start","job":"j1"}`,
		`{"t":"finish","job":"j1","status":"done"}`,
		acceptLine(t, "j2", "analyze"),
	)
	rp, err := replayJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if open := rp.open(); len(open) != 1 || open[0].Job != "j2" {
		t.Fatalf("open = %+v, want exactly j2", open)
	}
	if err := compactJournal(filepath.Join(dir, journalName), rp.open()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 1 {
		t.Fatalf("compacted journal has %d records, want 1:\n%s", n, data)
	}
	if !bytes.Contains(data, []byte(`"j2"`)) || bytes.Contains(data, []byte(`"j1"`)) {
		t.Fatalf("compacted journal kept the wrong records:\n%s", data)
	}
}

// TestColdStart: an empty or missing data dir is a clean cold start — no
// recovered jobs, and the durable pipeline works from the first request.
func TestColdStart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not", "created", "yet")
	srv, hs := newDurableServer(t, dir)
	if got := srv.jobsRecovered.Value() + srv.jobsInterrupted.Value(); got != 0 {
		t.Fatalf("cold start recovered %d jobs from nothing", got)
	}
	code, body := post(t, hs.URL+"/v1/analyze", map[string]any{"spec": tinySpec})
	if code != http.StatusOK || body.Status != "done" {
		t.Fatalf("first durable request: %d %q %s", code, body.Status, body.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
}

// TestDiskCacheCorruptQuarantined: a bit-flipped cache file fails header
// validation on read, is quarantined as .corrupt, and is reported as a miss
// — a torn or rotted entry is never served.
func TestDiskCacheCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c, err := openDiskCache(dir, 16, 1<<20,
		reg.Counter("hits"), reg.Counter("evictions"), reg.Counter("corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	payload := []byte(`{"result":"payload"}`)
	c.put(key, payload)
	if got, ok := c.get(key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("pre-corruption get = %q, %v", got, ok)
	}

	// Flip one payload byte on disk.
	path := filepath.Join(dir, key+diskEntExt)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[diskHdrSize] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if got, ok := c.get(key); ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	if v := reg.Counter("corrupt").Value(); v != 1 {
		t.Fatalf("corrupt counter = %d, want 1", v)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still live: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+diskBadExt)); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The quarantined entry stays a miss on a fresh index too.
	c2, err := openDiskCache(dir, 16, 1<<20,
		reg.Counter("hits2"), reg.Counter("evictions2"), reg.Counter("corrupt2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.get(key); ok {
		t.Fatal("quarantined entry reindexed after restart")
	}
}

// TestDiskCacheSurvivesRestart is the byte-identical persistence check: a
// result cached by one server generation is replayed exactly by the next.
func TestDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, hs := newDurableServer(t, dir)
	body := map[string]any{"spec": tinySpec}
	code, first := post(t, hs.URL+"/v1/synthesize", body)
	if code != http.StatusOK || first.Status != "done" || first.Cached {
		t.Fatalf("cold run: %d %q cached=%v %s", code, first.Status, first.Cached, first.Error)
	}
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	defer srv2.Shutdown(context.Background())
	code, second := post(t, hs2.URL+"/v1/synthesize", body)
	if code != http.StatusOK || !second.Cached {
		t.Fatalf("restarted run: %d cached=%v %s", code, second.Cached, second.Error)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result not byte-identical across restart:\n%s\nvs\n%s",
			first.Result, second.Result)
	}
	if srv2.diskHits.Value() != 1 {
		t.Fatalf("cache_disk_hits = %d, want 1", srv2.diskHits.Value())
	}
}

func post(t *testing.T, url string, body any) (int, *Response) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, &out
}

// TestCrashRetryPolicy: a recovered engine panic (budget.ErrInternal) gets
// exactly one retry with the degradation ladder forced, and the final
// response carries the failed first attempt in its trace. The panic is
// injected through the budget hook seam at a worker-pool site, so it
// surfaces as a typed internal error — the same shape a real engine crash
// produces.
func TestCrashRetryPolicy(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	var fired atomic.Bool
	srv.testBudgetHook = func(site string) error {
		if site == "reach.explore" && fired.CompareAndSwap(false, true) {
			panic("chaos: injected engine panic")
		}
		return nil
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	code, out := post(t, hs.URL+"/v1/synthesize",
		map[string]any{"spec": tinySpec})
	if code != http.StatusOK || out.Status != "done" {
		t.Fatalf("retried job: %d %q (%s)", code, out.Status, out.Error)
	}
	if got := srv.jobsRetried.Value(); got != 1 {
		t.Fatalf("jobs_retried = %d, want 1", got)
	}
	found := false
	for _, a := range out.Attempts {
		if strings.Contains(a, "retried with fallback ladder") {
			found = true
		}
	}
	if !found {
		t.Fatalf("attempt trace missing the retry marker: %v", out.Attempts)
	}

	// One retry max: a hook that always panics fails the job as internal.
	srv2, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	srv2.testBudgetHook = func(site string) error {
		if site == "reach.explore" {
			panic("chaos: persistent engine panic")
		}
		return nil
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	code, out = post(t, hs2.URL+"/v1/synthesize",
		map[string]any{"spec": tinySpec})
	if code != http.StatusInternalServerError || out.ErrorKind != "internal" {
		t.Fatalf("persistent panic: %d kind=%q (%s), want 500/internal", code, out.ErrorKind, out.Error)
	}
	if got := srv2.jobsRetried.Value(); got != 1 {
		t.Fatalf("persistent panic retried %d times, want exactly 1", got)
	}
}
