package serve

import (
	"container/list"
	"sync"
)

// cache is the content-addressed result store: key → serialized result
// bytes, evicted least-recently-used when either the entry count or the
// total byte size exceeds its bounds. Values are immutable once inserted
// (callers must not mutate the returned slice), which is what makes cache
// hits byte-identical replays of the cold result.
type cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	index      map[string]*list.Element
	evictions  int64
}

type cacheEntry struct {
	key  string
	data []byte
}

// newCache returns a cache bounded by maxEntries and maxBytes. Either
// bound ≤ 0 disables the cache entirely (every get misses, puts drop).
func newCache(maxEntries int, maxBytes int64) *cache {
	return &cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		index:      make(map[string]*list.Element),
	}
}

func (c *cache) enabled() bool { return c.maxEntries > 0 && c.maxBytes > 0 }

// get returns the stored bytes for key and marks the entry most recently
// used.
func (c *cache) get(key string) ([]byte, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// put inserts data under key, evicting from the LRU end until both bounds
// hold. An entry larger than maxBytes on its own is not stored.
func (c *cache) put(key string, data []byte) {
	if !c.enabled() || int64(len(data)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// Overwrite: replace the bytes and charge only the size delta —
		// the entry was already accounted once. (Same content address
		// normally means same bytes, but a promotion from the disk tier
		// after a version skew may differ; the account must stay exact
		// either way.)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		c.ll.MoveToFront(el)
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.bytes += int64(len(data))
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		last := c.ll.Back()
		if last == nil {
			break
		}
		e := last.Value.(*cacheEntry)
		c.ll.Remove(last)
		delete(c.index, e.key)
		c.bytes -= int64(len(e.data))
		c.evictions++
	}
}

// stats reports the current entry count, byte size and lifetime evictions.
func (c *cache) stats() (entries int, bytes, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.evictions
}
