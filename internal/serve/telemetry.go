package serve

import (
	"net/http"
	"strings"

	"repro/internal/obs"
)

// Per-job traces and metrics exposition.
//
// GET /v1/jobs/{id}/trace serves the job's span tree: from the trace ring
// for finished jobs (each attempt's registry snapshot is retained there by
// MergeRetain, newest-N / size-capped), or a live snapshot of the running
// attempt's registry. Default rendering is the obs JSON-snapshot schema
// (obs.ParseSnapshot-compatible); ?format=chrome renders Chrome trace_event
// JSON for about://tracing (obs.ValidateTraceJSON-compatible).
//
// GET /metrics content-negotiates: the default JSON snapshot is unchanged
// (byte-compatible with obs.ParseSnapshot), while an Accept header asking
// for text/plain (or OpenMetrics) gets the Prometheus text exposition
// rendered by obs.WriteProm.

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	id := r.PathValue("id")
	trace, snap, ok := s.traces.Get(id)
	if !ok {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil {
			writeError(w, r, http.StatusNotFound, "unknown job %q", id)
			return
		}
		reg := j.registry()
		if reg == nil {
			writeError(w, r, http.StatusNotFound,
				"no trace recorded for job %q (not yet started, or evicted from the trace ring)", id)
			return
		}
		trace, snap = j.trace, reg.Snapshot()
	}
	w.Header().Set("X-Trace-Id", trace)
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		snap.WriteTrace(w)
		return
	}
	snap.WriteJSON(w)
}

// wantsProm reports whether the Accept header asks for the text exposition
// format: any text/plain or OpenMetrics media type selects it, everything
// else (including no header) keeps the JSON default.
func wantsProm(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncCacheGauges()
	s.syncTelemetryGauges()
	if wantsProm(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", obs.PromContentType)
		s.reg.Snapshot().WriteProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

// syncTelemetryGauges mirrors the trace ring's occupancy into the registry.
func (s *Server) syncTelemetryGauges() {
	entries, bytes, evictions := s.traces.Stats()
	s.traceEntries.Set(int64(entries))
	s.traceBytes.Set(bytes)
	if d := evictions - s.traceEvictions.Value(); d > 0 {
		s.traceEvictions.Add(d)
	}
}
