// Package symbolic implements BDD-based analysis of safe Petri nets
// (Section 2.2): implicit reachability-set computation with one variable per
// place, the invariant-based upper approximation of the reachability space,
// and the dense state encoding derived from a state-machine cover (the
// paper's v1..v4 table).
package symbolic

import (
	"fmt"
	"math"
	"math/big"
	"strconv"

	"repro/internal/bdd"
	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/structural"
)

// Result is the outcome of a symbolic traversal.
type Result struct {
	M *bdd.Manager
	// States is the characteristic function of the reachability set.
	States bdd.Ref
	// Count is the number of reachable markings as a float64 — kept for
	// display, but exact only below 2^53.
	Count float64
	// CountExact is the exact number of reachable markings, which deep
	// generated families can push past float64 precision.
	CountExact *big.Int
	// Iterations is the number of image steps until the fixed point.
	Iterations int
	// PeakNodes is the peak number of simultaneously live BDD nodes.
	PeakNodes int
	// Stats is the BDD kernel counter snapshot after traversal: cache hit
	// rates, GC collections, reorder passes (see bdd.Stats).
	Stats bdd.Stats
}

// Options tune the BDD kernel during a symbolic traversal.
type Options struct {
	// Sift enables dynamic variable reordering (Rudell sifting): the
	// manager reorders whenever the live node count quadruples since the
	// last pass.
	Sift bool
	// GCThreshold is the live-node count that arms mark-and-sweep garbage
	// collection between image steps; after each collection the threshold
	// doubles from the surviving size. 0 uses a default of 1<<15 live
	// nodes; a negative value disables GC.
	GCThreshold int
	// Budget adds cancellation and a live-BDD-node ceiling
	// (Budget.MaxNodes), both checked between fixpoint iterations — the
	// natural blow-up boundary of the symbolic engine. The node ceiling is
	// enforced after the iteration's garbage collection, so only genuinely
	// live nodes count against it.
	Budget *budget.Budget
	// Obs is the parent observability span: the traversal records an
	// "engine:symbolic" child span, the symbolic.* counters and the bdd.*
	// kernel-stat counters into its registry. nil disables observability.
	Obs *obs.Span
	// Workers > 1 computes each image step in parallel: the transition
	// relation is partitioned across that many goroutines inside a BDD
	// concurrent section (see bdd.BeginConcurrent), each computes a
	// partial image, and the partials are Or-merged. Canonicity makes the
	// result bit-identical to the sequential step for every worker count.
	// 0 or 1 keeps the sequential kernel.
	Workers int
}

func (o Options) gcThreshold() int {
	if o.GCThreshold > 0 {
		return o.GCThreshold
	}
	if o.GCThreshold < 0 {
		return math.MaxInt
	}
	return 1 << 15
}

// Reach computes the reachable markings of a safe net with the naive
// one-variable-per-place encoding: starting from the initial marking, the
// image of the transition function is applied iteratively until the
// characteristic function reaches a fixed point. Enabledness uses 1-safe
// semantics: input places marked and fresh output places empty.
func Reach(n *petri.Net) (*Result, error) { return ReachOpts(n, Options{}) }

// ReachOpts is Reach with explicit kernel options: bounded-memory garbage
// collection of dead intermediate nodes and optional dynamic reordering.
// On a budget trip (cancellation, deadline, node ceiling) the partial
// Result — the under-approximate reachability set computed so far — is
// returned alongside the typed budget error.
func ReachOpts(n *petri.Net, opts Options) (*Result, error) {
	sp := opts.Obs.Child("engine:symbolic")
	res, err := reachOpts(n, opts, sp)
	recordSymbolic(sp, res, err)
	return res, err
}

// recordSymbolic writes the traversal totals and the BDD kernel counter
// snapshot into the engine span's registry and closes the span. Partial
// results from budget trips still report what was computed.
func recordSymbolic(sp *obs.Span, res *Result, err error) {
	if sp == nil {
		return
	}
	reg := sp.Registry()
	if res != nil {
		reg.Counter("symbolic.iterations").Add(int64(res.Iterations))
		reg.Gauge("symbolic.peak_nodes").Max(int64(res.PeakNodes))
		st := res.Stats
		reg.Counter("bdd.cache_lookups").Add(int64(st.CacheLookups))
		reg.Counter("bdd.cache_hits").Add(int64(st.CacheHits))
		reg.Counter("bdd.unique_lookups").Add(int64(st.UniqueLookups))
		reg.Counter("bdd.unique_hits").Add(int64(st.UniqueHits))
		reg.Counter("bdd.gc_runs").Add(int64(st.GCRuns))
		reg.Counter("bdd.gc_freed").Add(int64(st.GCFreed))
		reg.Counter("bdd.reorders").Add(int64(st.Reorders))
		reg.Counter("bdd.swaps").Add(int64(st.Swaps))
		reg.Counter("bdd.cas_retries").Add(int64(st.CASRetries))
		reg.Counter("bdd.leaked").Add(int64(st.Leaked))
		reg.Counter("bdd.epoch_retries").Add(int64(st.EpochRetries))
		sp.Attr("iterations", strconv.Itoa(res.Iterations))
		sp.Attr("peak_nodes", strconv.Itoa(res.PeakNodes))
		sp.Attr("cache_hit_rate", strconv.FormatFloat(st.CacheHitRate(), 'f', 3, 64))
	}
	if err != nil {
		sp.Attr("error", err.Error())
	}
	sp.End()
}

func reachOpts(n *petri.Net, opts Options, sp *obs.Span) (*Result, error) {
	if len(n.Places) > 4096 {
		return nil, fmt.Errorf("symbolic: %d places is unreasonable", len(n.Places))
	}
	m := bdd.New(len(n.Places))

	// Initial marking cube and per-transition precomputed pieces, pinned
	// against the traversal's garbage collections.
	init, err := InitCube(n, m, 0)
	if err != nil {
		return nil, err
	}
	ts := BuildTrans(n, m, 0)
	for _, tr := range ts {
		m.IncRef(tr.Enable)
		m.IncRef(tr.Result)
	}

	// Parallel image steps need the quantification masks interned up
	// front: interning mutates the manager, which concurrent sections
	// forbid.
	workers := opts.Workers
	var masks []bdd.VarMask
	if workers > 1 {
		masks = make([]bdd.VarMask, len(ts))
		for i, tr := range ts {
			masks[i] = m.InternVarMask(tr.Touched)
		}
		sp.Registry().Gauge("symbolic.workers").Max(int64(workers))
	}
	epochHint := 1 << 14

	// Frontier-set traversal with reference-counted roots: only the
	// transition relation, the reached set and the current frontier are
	// protected, so periodic mark-and-sweep collections reclaim every
	// intermediate image and keep memory bounded on long traversals.
	reached := m.IncRef(init)
	frontier := m.IncRef(init)
	gcAt := opts.gcThreshold()
	siftAt := 1 << 12
	iters := 0
	checks := sp.Registry().Counter("symbolic.budget_checks")
	for frontier != bdd.False {
		checks.Inc()
		if err := opts.Budget.Check("symbolic.iter"); err != nil {
			m.DecRef(frontier)
			return result(m, reached, iters), err
		}
		iters++
		var next bdd.Ref
		if workers > 1 {
			before := m.Size()
			next = parallelImage(m, ts, masks, frontier, workers, epochHint)
			// Adapt the epoch to the observed growth so later iterations
			// do not pay retry re-runs.
			if g := (m.Size() - before) * 2; g > epochHint {
				epochHint = g
			}
		} else {
			next = bdd.False
			for _, tr := range ts {
				// states of the frontier where tr is enabled, with the touched
				// places quantified away and re-imposed per the firing rule.
				img := m.AndExists(frontier, tr.Enable, tr.Touched)
				if img == bdd.False {
					continue
				}
				img = m.And(img, tr.Result)
				next = m.Or(next, img)
			}
		}
		m.DecRef(frontier)
		frontier = m.IncRef(m.Diff(next, reached))
		m.DecRef(reached)
		reached = m.IncRef(m.Or(reached, next))
		if live := m.Size(); live > gcAt {
			m.GC()
			if sp != nil {
				sp.Event("gc", "live", strconv.Itoa(m.Size()))
			}
			if s := m.Size() * 2; s > gcAt {
				gcAt = s
			}
		}
		if opts.Sift {
			if live := m.Size(); live > siftAt {
				m.Sift()
				if sp != nil {
					sp.Event("sift", "live", strconv.Itoa(m.Size()))
				}
				siftAt = m.Size() * 4
			}
		}
		// Node ceiling, after collection so only live nodes count. A trip
		// returns the partial reachability set computed so far alongside the
		// typed error.
		checks.Inc()
		if err := opts.Budget.CheckNodes(m.Size()); err != nil {
			m.DecRef(frontier)
			return result(m, reached, iters), err
		}
	}
	m.DecRef(frontier)
	return result(m, reached, iters), nil
}

// result snapshots a (possibly partial) traversal into a Result.
func result(m *bdd.Manager, reached bdd.Ref, iters int) *Result {
	return &Result{
		M: m, States: reached,
		Count:      m.SatCount(reached),
		CountExact: m.SatCountBig(reached),
		Iterations: iters,
		PeakNodes:  m.Stats().PeakLive,
		Stats:      m.Stats(),
	}
}

// DeadStates computes the characteristic function of reachable deadlocked
// markings fully symbolically: Reach ∧ ¬(∨_t enabled_t). This is the
// BDD-based property verification of Section 2.2 ("absence of deadlocks")
// — no marking is ever enumerated.
func DeadStates(n *petri.Net, res *Result) (bdd.Ref, float64) {
	m := res.M
	dead := m.Diff(res.States, SomeEnabled(m, BuildTrans(n, m, 0)))
	return dead, m.SatCount(dead)
}

// InvariantApprox builds the conjunction of the characteristic functions of
// the SM-cover invariants ("exactly one place of each component is marked")
// in the same manager/encoding as a Reach result. It is an upper
// approximation of the reachability set — exact for some nets, including the
// paper's reduced read/write example.
func InvariantApprox(n *petri.Net, m *bdd.Manager) (bdd.Ref, []structural.SM, error) {
	cover, ok := structural.SMCover(n)
	if !ok {
		return bdd.False, nil, fmt.Errorf("symbolic: net has no SM cover")
	}
	chi := bdd.True
	for _, sm := range cover {
		if sm.TokenCount(n) != 1 {
			return bdd.False, nil, fmt.Errorf("symbolic: SM component carries %d tokens, want 1",
				sm.TokenCount(n))
		}
		one := bdd.False
		for _, p := range sm.Places {
			cube := m.Var(p)
			for _, q := range sm.Places {
				if q != p {
					cube = m.And(cube, m.NVar(q))
				}
			}
			one = m.Or(one, cube)
		}
		chi = m.And(chi, one)
	}
	return chi, cover, nil
}

// Dense is the dense state encoding of Section 2.2: each state-machine
// component of a cover contributes ceil(log2 |places|) variables holding the
// index of its marked place.
type Dense struct {
	Net   *petri.Net
	Cover []structural.SM
	M     *bdd.Manager
	// BitsOf[i] lists the variable indexes of component i.
	BitsOf [][]int
	// posIn[i][place] = index of place within component i, or -1.
	posIn [][]int
}

// NewDense derives the dense encoding from the net's SM cover.
func NewDense(n *petri.Net) (*Dense, error) {
	cover, ok := structural.SMCover(n)
	if !ok {
		return nil, fmt.Errorf("symbolic: net has no SM cover")
	}
	d := &Dense{Net: n, Cover: cover}
	total := 0
	for _, sm := range cover {
		if sm.TokenCount(n) != 1 {
			return nil, fmt.Errorf("symbolic: dense encoding needs 1 token per component")
		}
		total += bitsFor(len(sm.Places))
	}
	d.M = bdd.New(total)
	next := 0
	for i, sm := range cover {
		k := bitsFor(len(sm.Places))
		var bits []int
		for b := 0; b < k; b++ {
			bits = append(bits, next)
			next++
		}
		d.BitsOf = append(d.BitsOf, bits)
		pos := make([]int, len(n.Places))
		for p := range pos {
			pos[p] = -1
		}
		for j, p := range sm.Places {
			pos[p] = j
		}
		d.posIn = append(d.posIn, pos)
		_ = i
	}
	return d, nil
}

// Bits returns the total number of encoding variables — the paper's point:
// typically far fewer than one per place.
func (d *Dense) Bits() int { return d.M.NumVars() }

// EncodeMarking maps a marking to its dense code; it fails when the marking
// does not mark exactly one place per component.
func (d *Dense) EncodeMarking(m petri.Marking) (uint64, error) {
	var code uint64
	for i, sm := range d.Cover {
		marked := -1
		for _, p := range sm.Places {
			if m[p] > 0 {
				if marked >= 0 {
					return 0, fmt.Errorf("symbolic: two marked places in component %d", i)
				}
				marked = d.posIn[i][p]
			}
		}
		if marked < 0 {
			return 0, fmt.Errorf("symbolic: no marked place in component %d", i)
		}
		for b, v := range d.BitsOf[i] {
			if marked&(1<<uint(b)) != 0 {
				code |= 1 << uint(v)
			}
		}
	}
	return code, nil
}

// stateCube returns the cube fixing component i to place-position pos.
func (d *Dense) stateCube(i, pos int) bdd.Ref {
	cube := bdd.True
	for b, v := range d.BitsOf[i] {
		if pos&(1<<uint(b)) != 0 {
			cube = d.M.And(cube, d.M.Var(v))
		} else {
			cube = d.M.And(cube, d.M.NVar(v))
		}
	}
	return cube
}

// Reach computes the reachability set in the dense encoding and returns its
// characteristic function and the state count.
func (d *Dense) Reach() (bdd.Ref, float64, error) {
	m := d.M
	initCode, err := d.EncodeMarking(d.Net.InitialMarking())
	if err != nil {
		return bdd.False, 0, err
	}
	init := bdd.True
	for v := 0; v < m.NumVars(); v++ {
		if initCode&(1<<uint(v)) != 0 {
			init = m.And(init, m.Var(v))
		} else {
			init = m.And(init, m.NVar(v))
		}
	}

	// Per transition: the components it touches, its pre-cube and
	// post-cube in dense variables. A transition outside every component
	// cannot exist for a covered net (its places are covered), but a
	// transition whose places span a component exactly once each is the
	// normal case.
	type trans struct {
		enable  bdd.Ref
		result  bdd.Ref
		touched []int
	}
	var ts []trans
	for t, tr := range d.Net.Transitions {
		enable := bdd.True
		result := bdd.True
		var touched []int
		involved := false
		for i := range d.Cover {
			preP, postP := -1, -1
			for _, p := range tr.Pre {
				if d.posIn[i][p] >= 0 {
					preP = d.posIn[i][p]
				}
			}
			for _, p := range tr.Post {
				if d.posIn[i][p] >= 0 {
					postP = d.posIn[i][p]
				}
			}
			if preP < 0 && postP < 0 {
				continue
			}
			if preP < 0 || postP < 0 {
				return bdd.False, 0, fmt.Errorf(
					"symbolic: transition %s enters/leaves component %d asymmetrically",
					d.Net.Transitions[t].Name, i)
			}
			involved = true
			enable = d.M.And(enable, d.stateCube(i, preP))
			result = d.M.And(result, d.stateCube(i, postP))
			touched = append(touched, d.BitsOf[i]...)
		}
		if involved {
			ts = append(ts, trans{enable: enable, result: result, touched: touched})
		}
	}

	reached := init
	frontier := init
	for frontier != bdd.False {
		next := bdd.False
		for _, tr := range ts {
			img := m.AndExists(frontier, tr.enable, tr.touched)
			if img == bdd.False {
				continue
			}
			img = m.And(img, tr.result)
			next = m.Or(next, img)
		}
		frontier = m.Diff(next, reached)
		reached = m.Or(reached, next)
	}
	return reached, m.SatCount(reached), nil
}

func bitsFor(n int) int {
	b := 0
	for (1 << uint(b)) < n {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// ExactCount is a helper for tests: 2^bits.
func ExactCount(bits int) float64 { return math.Exp2(float64(bits)) }
