package symbolic

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/petri"
)

// Trans is the precomputed symbolic firing data of one transition under the
// one-variable-per-place encoding: the enabling condition (input places
// marked, fresh output places empty — 1-safe no-contact semantics), the
// values the touched places take after firing, and the touched variable
// list. Forward image of a set X through t is
//
//	AndExists(X, Enable, Touched) ∧ Result
//
// and the backward pre-image of Y is the mirror
//
//	AndExists(Y, Result, Touched) ∧ Enable.
type Trans struct {
	// Enable is the characteristic function of the markings where the
	// transition may fire.
	Enable bdd.Ref
	// Result is the cube of post-firing values of the touched places.
	Result bdd.Ref
	// Touched lists the variables read or written by the transition, in
	// declaration order (Pre before fresh Post places).
	Touched []int
	// PostVal[i] is the value variable Touched[i] holds after firing.
	PostVal []bool
}

// BuildTrans precomputes the per-transition enable/result functions of a
// safe net in manager m, mapping place p to variable offset+p.
// Construction is deterministic: touched lists follow the net's Pre/Post
// declaration order, so downstream fixpoints are reproducible.
//
// The returned functions are not reference-counted; callers that run
// garbage collection must IncRef them first.
func BuildTrans(n *petri.Net, m *bdd.Manager, offset int) []Trans {
	return BuildTransStride(n, m, offset, 1)
}

// BuildTransStride is BuildTrans with place p mapped to variable
// offset+stride*p. Callers laying several copies of the state space in one
// manager (e.g. the doubled encoding for state-coding conflicts) should
// interleave the copies — stride 2, offsets 0 and 1 — because relating
// corresponding places across widely separated variable blocks makes BDD
// sizes explode.
func BuildTransStride(n *petri.Net, m *bdd.Manager, offset, stride int) []Trans {
	ts := make([]Trans, len(n.Transitions))
	for t, tr := range n.Transitions {
		pre := map[int]bool{}
		post := map[int]bool{}
		for _, p := range tr.Pre {
			pre[p] = true
		}
		for _, p := range tr.Post {
			post[p] = true
		}
		enable := bdd.True
		result := bdd.True
		var touched []int
		var postVal []bool
		seen := map[int]bool{}
		for _, p := range tr.Pre {
			if seen[p] {
				continue
			}
			seen[p] = true
			enable = m.And(enable, m.Var(offset+stride*p))
			touched = append(touched, offset+stride*p)
			if post[p] {
				result = m.And(result, m.Var(offset+stride*p))
				postVal = append(postVal, true)
			} else {
				result = m.And(result, m.NVar(offset+stride*p))
				postVal = append(postVal, false)
			}
		}
		for _, p := range tr.Post {
			if seen[p] || pre[p] {
				continue
			}
			seen[p] = true
			enable = m.And(enable, m.NVar(offset+stride*p)) // 1-safe: no contact
			touched = append(touched, offset+stride*p)
			result = m.And(result, m.Var(offset+stride*p))
			postVal = append(postVal, true)
		}
		ts[t] = Trans{Enable: enable, Result: result, Touched: touched, PostVal: postVal}
	}
	return ts
}

// InitCube returns the cube of the net's initial marking with place p at
// variable offset+p. It fails on an initially unsafe place.
func InitCube(n *petri.Net, m *bdd.Manager, offset int) (bdd.Ref, error) {
	return InitCubeStride(n, m, offset, 1)
}

// InitCubeStride is InitCube with place p at variable offset+stride*p.
func InitCubeStride(n *petri.Net, m *bdd.Manager, offset, stride int) (bdd.Ref, error) {
	init := bdd.True
	for p, pl := range n.Places {
		if pl.Initial > 1 {
			return bdd.False, fmt.Errorf("symbolic: place %s initially unsafe", pl.Name)
		}
		if pl.Initial == 1 {
			init = m.And(init, m.Var(offset+stride*p))
		} else {
			init = m.And(init, m.NVar(offset+stride*p))
		}
	}
	return init, nil
}

// SomeEnabled returns the characteristic function of the markings where at
// least one of the given transitions may fire.
func SomeEnabled(m *bdd.Manager, ts []Trans) bdd.Ref {
	some := bdd.False
	for _, tr := range ts {
		some = m.Or(some, tr.Enable)
	}
	return some
}
