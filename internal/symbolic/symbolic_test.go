package symbolic

import (
	"testing"

	"repro/internal/bdd"
	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/structural"
	"repro/internal/vme"
)

func TestReachMatchesExplicitToggles(t *testing.T) {
	for _, n := range []int{2, 4, 8, 12} {
		net := gen.IndependentToggles(n)
		sym, err := Reach(net)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(int(1) << uint(n)); sym.Count != want {
			t.Fatalf("toggles-%d: symbolic count %v, want %v", n, sym.Count, want)
		}
		if n <= 8 {
			exp, err := reach.Explore(net, reach.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if float64(exp.NumStates()) != sym.Count {
				t.Fatalf("toggles-%d: explicit %d vs symbolic %v", n, exp.NumStates(), sym.Count)
			}
		}
	}
}

func TestReachMatchesExplicitVME(t *testing.T) {
	read := vme.ReadSTG()
	sym, err := Reach(read.Net)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Count != 14 {
		t.Fatalf("read cycle: symbolic count %v, want 14", sym.Count)
	}
	rw := vme.ReadWriteSTG()
	symRW, err := Reach(rw.Net)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := reach.Explore(rw.Net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(exp.NumStates()) != symRW.Count {
		t.Fatalf("read/write: explicit %d vs symbolic %v", exp.NumStates(), symRW.Count)
	}
}

func TestReachMuller(t *testing.T) {
	g := gen.MullerPipeline(5)
	sym, err := Reach(g.Net)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := reach.Explore(g.Net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(exp.NumStates()) != sym.Count {
		t.Fatalf("muller-5: explicit %d vs symbolic %v", exp.NumStates(), sym.Count)
	}
}

// TestFig6InvariantApproxExact: on the reduced read/write net, the
// conjunction of the SM-cover invariant characteristic functions equals the
// exact reachability set ("the AND operation on these two functions will
// give us for this example an exact characteristic function").
func TestFig6InvariantApproxExact(t *testing.T) {
	g := vme.ReadWriteSTG()
	reduced, _ := structural.Reduce(g.Net)
	sym, err := Reach(reduced)
	if err != nil {
		t.Fatal(err)
	}
	approx, cover, err := InvariantApprox(reduced, sym.M)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != 2 {
		t.Fatalf("expected 2-component cover, got %d", len(cover))
	}
	// Always an upper approximation...
	if sym.M.Diff(sym.States, approx) != bdd.False {
		t.Fatal("invariant conjunction must contain the reachability set")
	}
	// ...and exact on this example.
	if approx != sym.States {
		t.Fatalf("invariant conjunction must be exact here: approx %v states vs exact %v",
			sym.M.SatCount(approx), sym.Count)
	}
}

// The approximation is generally strict: the dining philosophers have
// invariant-consistent but unreachable markings... actually fork/eat
// exclusion makes it strict on a simpler example: two toggles coupled by a
// shared resource.
func TestInvariantApproxStrict(t *testing.T) {
	net := gen.Philosophers(3)
	sym, err := Reach(net)
	if err != nil {
		t.Fatal(err)
	}
	approx, _, err := InvariantApprox(net, sym.M)
	if err != nil {
		t.Skipf("no SM cover: %v", err)
	}
	if sym.M.Diff(sym.States, approx) != bdd.False {
		t.Fatal("approximation must contain the reachability set")
	}
	if approx == sym.States {
		t.Skip("approximation happens to be exact on this instance")
	}
}

// TestFig6DenseEncoding: the dense encoding of the reduced read/write net
// needs far fewer variables than places, and dense symbolic reachability
// counts exactly the explicit markings.
func TestFig6DenseEncoding(t *testing.T) {
	g := vme.ReadWriteSTG()
	reduced, _ := structural.Reduce(g.Net)
	d, err := NewDense(reduced)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bits() >= len(reduced.Places) {
		t.Fatalf("dense encoding must beat one-var-per-place: %d bits vs %d places",
			d.Bits(), len(reduced.Places))
	}
	chi, count, err := d.Reach()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := reach.Explore(reduced, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(exp.NumStates()) != count {
		t.Fatalf("dense count %v vs explicit %d", count, exp.NumStates())
	}
	// Encoding is injective on reachable markings.
	seen := map[uint64]bool{}
	for _, m := range exp.Markings {
		code, err := d.EncodeMarking(m)
		if err != nil {
			t.Fatalf("reachable marking %s not encodable: %v", m.Format(reduced), err)
		}
		if seen[code] {
			t.Fatal("dense encoding must be injective")
		}
		seen[code] = true
		if !d.M.Eval(chi, code) {
			t.Fatal("dense characteristic function must accept every reachable code")
		}
	}
	t.Logf("dense encoding: %d places -> %d bits, RV constant-1: %v",
		len(reduced.Places), d.Bits(), chi == bdd.True)
}

func TestDenseErrors(t *testing.T) {
	// A net without SM cover (free-running transition chain, unmarked ring
	// pieces) must be rejected.
	net := gen.MarkedGraphRing(3, 1)
	d, err := NewDense(net)
	if err != nil {
		t.Fatal(err) // a ring has a trivial cover; use it positively instead
	}
	if d.Bits() < 1 {
		t.Fatal("ring encoding needs at least one bit")
	}
	// EncodeMarking rejects empty component.
	bad := net.InitialMarking()
	for i := range bad {
		bad[i] = 0
	}
	if _, err := d.EncodeMarking(bad); err == nil {
		t.Fatal("empty marking must not encode")
	}
}

// Symbolic deadlock detection agrees with explicit enumeration.
func TestDeadStates(t *testing.T) {
	phil := gen.Philosophers(3)
	res, err := Reach(phil)
	if err != nil {
		t.Fatal(err)
	}
	dead, count := DeadStates(phil, res)
	exp, err := reach.Explore(phil, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(exp.Deadlocks())) != count {
		t.Fatalf("symbolic deadlocks %v vs explicit %d", count, len(exp.Deadlocks()))
	}
	// The witness assignment matches a genuine deadlock marking.
	env, ok := res.M.AnySat(dead)
	if !ok {
		t.Fatal("philosophers deadlock must be found")
	}
	m := phil.InitialMarking()
	for p := range m {
		m[p] = 0
		if env&(1<<uint(p)) != 0 {
			m[p] = 1
		}
	}
	if len(phil.EnabledList(m)) != 0 {
		t.Fatal("symbolic witness is not a deadlock")
	}
	// Live net: no dead states.
	read := vme.ReadSTG().Net
	res2, err := Reach(read)
	if err != nil {
		t.Fatal(err)
	}
	if _, count := DeadStates(read, res2); count != 0 {
		t.Fatalf("read cycle reported %v dead states", count)
	}
}

func TestReachRejectsUnsafeInitial(t *testing.T) {
	net := gen.MarkedGraphRing(3, 1)
	net.Places[0].Initial = 2
	if _, err := Reach(net); err == nil {
		t.Fatal("unsafe initial marking must be rejected")
	}
}

// TestCountExactMatchesExplicit cross-checks the big-integer count against
// the explicit engine everywhere both run, and against the float count.
func TestCountExactMatchesExplicit(t *testing.T) {
	nets := map[string]*petri.Net{
		"toggles-10": gen.IndependentToggles(10),
		"muller-6":   gen.MullerPipeline(6).Net,
		"ring-8-1":   gen.MarkedGraphRing(8, 1),
		"phil-4":     gen.Philosophers(4),
		"vme-rw":     vme.ReadWriteSTG().Net,
	}
	for name, net := range nets {
		sym, err := Reach(net)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sym.CountExact == nil || !sym.CountExact.IsInt64() ||
			sym.CountExact.Int64() != int64(exp.NumStates()) {
			t.Fatalf("%s: exact count %v vs explicit %d", name, sym.CountExact, exp.NumStates())
		}
		if sym.Count != float64(exp.NumStates()) {
			t.Fatalf("%s: float count %v vs explicit %d", name, sym.Count, exp.NumStates())
		}
	}
}
