package symbolic

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/vme"
)

// TestParallelImageDeterministic runs the same traversals with the
// sequential kernel and with 2 and 4 image workers: iteration counts,
// exact state counts and deadlock counts must be identical — canonicity
// makes the parallel image bit-identical, not just equivalent.
func TestParallelImageDeterministic(t *testing.T) {
	nets := map[string]*petri.Net{
		"toggles-10": gen.IndependentToggles(10),
		"muller-5":   gen.MullerPipeline(5).Net,
		"vme-rw":     vme.ReadWriteSTG().Net,
	}
	for name, net := range nets {
		seq, err := ReachOpts(net, Options{})
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		_, seqDead := DeadStates(net, seq)
		for _, workers := range []int{2, 4} {
			par, err := ReachOpts(net, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if par.CountExact.Cmp(seq.CountExact) != 0 {
				t.Fatalf("%s workers=%d: CountExact %v, sequential %v",
					name, workers, par.CountExact, seq.CountExact)
			}
			if par.Iterations != seq.Iterations {
				t.Fatalf("%s workers=%d: %d iterations, sequential %d",
					name, workers, par.Iterations, seq.Iterations)
			}
			if _, dead := DeadStates(net, par); dead != seqDead {
				t.Fatalf("%s workers=%d: %v deadlocks, sequential %v",
					name, workers, dead, seqDead)
			}
		}
	}
}
