package symbolic

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestObsCounters checks that an instrumented symbolic traversal exports its
// iteration count, peak-node gauge and the BDD kernel counters.
func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	root := reg.Root("flow:test")
	res, err := ReachOpts(gen.IndependentToggles(8), Options{Obs: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["symbolic.iterations"]; got != int64(res.Iterations) {
		t.Fatalf("symbolic.iterations = %d, want %d", got, res.Iterations)
	}
	if snap.Counters["symbolic.budget_checks"] == 0 {
		t.Fatal("symbolic.budget_checks must be non-zero")
	}
	if got := snap.Gauges["symbolic.peak_nodes"]; got != int64(res.PeakNodes) {
		t.Fatalf("symbolic.peak_nodes = %d, want %d", got, res.PeakNodes)
	}
	for _, name := range []string{"bdd.cache_lookups", "bdd.unique_lookups"} {
		if snap.Counters[name] == 0 {
			t.Fatalf("%s must be non-zero; counters: %v", name, snap.Counters)
		}
	}
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == "engine:symbolic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no engine:symbolic span in %+v", snap.Spans)
	}
}
