package symbolic

import (
	"sync"
	"sync/atomic"

	"repro/internal/bdd"
)

// parallelImage computes one forward-image step of the fixpoint in
// parallel: the transition relation is partitioned into contiguous blocks,
// one goroutine per block computes its partial image inside a BDD
// concurrent section, and the partials are Or-merged on the calling
// goroutine before the section closes.
//
// Determinism. Hash-consing gives every Boolean function exactly one node
// id per manager, whatever the interleaving, and ∨ is associative and
// commutative — so the merged image is the same Ref the sequential loop
// would produce, at every worker count. The parallel engine therefore
// yields bit-identical Results (CountExact, DeadStates, Iterations).
//
// A goroutine that exhausts the arena epoch recovers the bdd.EpochFull
// panic on its own stack (panics cannot cross goroutines) and reports it;
// RunConcurrent then re-runs the whole step with a doubled epoch. Nodes
// published by the failed round stay canonical, so the re-run mostly hits
// the unique table. Any other worker panic is re-raised on the calling
// goroutine after the join.
func parallelImage(m *bdd.Manager, ts []Trans, masks []bdd.VarMask, frontier bdd.Ref, workers, epochHint int) bdd.Ref {
	if workers > len(ts) {
		workers = len(ts)
	}
	if workers < 1 {
		workers = 1
	}
	next := bdd.False
	m.RunConcurrent(epochHint, func() bool {
		next = bdd.False // a retried round starts over
		partials := make([]bdd.Ref, workers)
		var full atomic.Bool
		var panicMu sync.Mutex
		var panicked any
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(bdd.EpochFull); ok {
							full.Store(true)
							return
						}
						panicMu.Lock()
						if panicked == nil {
							panicked = r
						}
						panicMu.Unlock()
					}
				}()
				part := bdd.False
				for i := w * len(ts) / workers; i < (w+1)*len(ts)/workers; i++ {
					img := m.AndExistsMask(frontier, ts[i].Enable, masks[i])
					if img == bdd.False {
						continue
					}
					part = m.Or(part, m.And(img, ts[i].Result))
				}
				partials[w] = part
			}(w)
		}
		wg.Wait()
		if panicked != nil {
			panic(panicked)
		}
		if full.Load() {
			return false
		}
		for _, p := range partials {
			next = m.Or(next, p)
		}
		return true
	})
	return next
}
