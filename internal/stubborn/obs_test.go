package stubborn

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// TestObsCounters checks that an instrumented stubborn-set exploration
// exports its state, arc and deadlock totals.
func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	root := reg.Root("flow:test")
	res, err := Explore(gen.Philosophers(3), Options{Obs: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	snap := reg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["stubborn.states"]; got != int64(res.States) {
		t.Fatalf("stubborn.states = %d, want %d", got, res.States)
	}
	if got := snap.Counters["stubborn.arcs"]; got != int64(res.Arcs) {
		t.Fatalf("stubborn.arcs = %d, want %d", got, res.Arcs)
	}
	if got := snap.Counters["stubborn.deadlocks"]; got != int64(len(res.Deadlocks)) {
		t.Fatalf("stubborn.deadlocks = %d, want %d", got, len(res.Deadlocks))
	}
}
