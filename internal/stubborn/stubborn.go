// Package stubborn implements stubborn-set partial-order reduction (Valmari,
// Section 2.2): deadlock-preserving reachability exploration that fires only
// a "stubborn" subset of enabled transitions in each marking, ignoring most
// interleavings of concurrent transitions.
package stubborn

import (
	"strconv"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/shardset"
)

// Result summarizes a reduced exploration.
type Result struct {
	// States is the number of markings visited.
	States int
	// Arcs is the number of firings explored.
	Arcs int
	// Deadlocks lists the deadlocked markings found.
	Deadlocks []petri.Marking
}

// Options bound the exploration.
type Options struct {
	MaxStates int // default 1<<22
	// Budget adds cancellation and tightens MaxStates; nil is unlimited.
	Budget *budget.Budget
	// Obs is the parent observability span: the exploration records an
	// "engine:stubborn" child span and the stubborn.* counters (states,
	// arcs, deadlocks, budget checks) into its registry. nil disables
	// observability.
	Obs *obs.Span
}

func (o Options) maxStates() int {
	cap := o.MaxStates
	if cap <= 0 {
		cap = 1 << 22
	}
	return o.Budget.StateLimit(cap)
}

// ErrStateLimit is the errors.Is anchor for state-limit aborts — an alias of
// budget.Sentinel(budget.States), shared with reach.ErrStateLimit, so the
// engines' limit errors are mutually errors.Is-compatible.
var ErrStateLimit = budget.Sentinel(budget.States)

// Explore runs deadlock-preserving reduced reachability: every deadlock of
// the full state space is reached, typically visiting far fewer states.
//
// On a state-limit trip or cancellation the partial Result — states and arcs
// visited, deadlocks found so far — is returned alongside the typed budget
// error.
func Explore(n *petri.Net, opts Options) (*Result, error) {
	sp := opts.Obs.Child("engine:stubborn")
	res, err := explore(n, opts, sp)
	if sp != nil {
		if res != nil {
			reg := sp.Registry()
			reg.Counter("stubborn.states").Add(int64(res.States))
			reg.Counter("stubborn.arcs").Add(int64(res.Arcs))
			reg.Counter("stubborn.deadlocks").Add(int64(len(res.Deadlocks)))
			sp.Attr("states", strconv.Itoa(res.States))
			sp.Attr("arcs", strconv.Itoa(res.Arcs))
			sp.Attr("deadlocks", strconv.Itoa(len(res.Deadlocks)))
		}
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End()
	}
	return res, err
}

func explore(n *petri.Net, opts Options, sp *obs.Span) (*Result, error) {
	res := &Result{}
	seen := shardset.New(1)
	init := n.InitialMarking()
	seen.Add(init.Key())
	stack := []petri.Marking{init}
	maxStates := opts.maxStates()
	hooked := opts.Budget.Hooked()
	checks := sp.Registry().Counter("stubborn.budget_checks")
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.States++
		if res.States > maxStates {
			res.States--
			return res, budget.LimitStates(maxStates, res.States)
		}
		if hooked || res.States%budget.CheckEvery == 0 {
			checks.Inc()
			if err := opts.Budget.Check("stubborn.explore"); err != nil {
				return res, err
			}
		}
		fire := stubbornEnabled(n, m)
		if len(fire) == 0 {
			res.Deadlocks = append(res.Deadlocks, m)
			continue
		}
		for _, t := range fire {
			next := n.Fire(m, t)
			res.Arcs++
			if _, added := seen.Add(next.Key()); added {
				stack = append(stack, next)
			}
		}
	}
	return res, nil
}

// stubbornEnabled computes the enabled part of a stubborn set at m using the
// classic closure rules for place/transition nets:
//
//	D1: for an enabled t in the set, every transition sharing an input place
//	    with t (a potential disabler) is in the set;
//	D2: for a disabled t in the set, all producers of one chosen unmarked
//	    input place are in the set.
//
// Seeded with the first enabled transition; returns all enabled members.
func stubbornEnabled(n *petri.Net, m petri.Marking) []int {
	seed := -1
	for t := range n.Transitions {
		if n.Enabled(m, t) {
			seed = t
			break
		}
	}
	if seed < 0 {
		return nil
	}
	inSet := map[int]bool{seed: true}
	work := []int{seed}
	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		if n.Enabled(m, t) {
			// D1: conflicting transitions.
			for _, p := range n.Transitions[t].Pre {
				for _, u := range n.Places[p].Post {
					if !inSet[u] {
						inSet[u] = true
						work = append(work, u)
					}
				}
			}
		} else {
			// D2: pick the first unmarked input place deterministically.
			var chosen = -1
			for _, p := range n.Transitions[t].Pre {
				if m[p] == 0 {
					chosen = p
					break
				}
			}
			if chosen < 0 {
				continue
			}
			for _, u := range n.Places[chosen].Pre {
				if !inSet[u] {
					inSet[u] = true
					work = append(work, u)
				}
			}
		}
	}
	var out []int
	for t := range n.Transitions {
		if inSet[t] && n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}
