package stubborn

import (
	"errors"
	"testing"

	"repro/internal/budget"
	"repro/internal/gen"
	"repro/internal/petri"
	"repro/internal/reach"
)

func TestTogglesMassiveReduction(t *testing.T) {
	net := gen.IndependentToggles(10)
	full, err := reach.Explore(net, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Explore(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Deadlocks) != 0 || len(full.Deadlocks()) != 0 {
		t.Fatal("toggles never deadlock")
	}
	if full.NumStates() != 1024 {
		t.Fatalf("full = %d", full.NumStates())
	}
	if red.States >= full.NumStates()/10 {
		t.Fatalf("stubborn must reduce drastically: %d vs %d", red.States, full.NumStates())
	}
}

func TestDeadlockPreservedPhilosophers(t *testing.T) {
	for _, n := range []int{3, 4} {
		net := gen.Philosophers(n)
		full, err := reach.Explore(net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		red, err := Explore(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fullDead := len(full.Deadlocks()) > 0
		redDead := len(red.Deadlocks) > 0
		if fullDead != redDead {
			t.Fatalf("phil-%d: deadlock presence differs (full %v, reduced %v)", n, fullDead, redDead)
		}
		if !redDead {
			t.Fatalf("phil-%d must deadlock (all left forks taken)", n)
		}
		if red.States > full.NumStates() {
			t.Fatalf("phil-%d: reduction explored more states than full?!", n)
		}
		// Every deadlock marking found by the reduction is a true deadlock.
		for _, m := range red.Deadlocks {
			if len(net.EnabledList(m)) != 0 {
				t.Fatalf("phil-%d: false deadlock %s", n, m.Format(net))
			}
		}
	}
}

func TestDeadlockFoundInChain(t *testing.T) {
	// a -> p -> b, no cycle: deadlocks after b fires.
	net := petri.New("chain")
	a := net.AddTransition("a")
	b := net.AddTransition("b")
	p0 := net.AddPlace("p0", 1)
	p1 := net.AddPlace("p1", 0)
	p2 := net.AddPlace("p2", 0)
	net.ArcPT(p0, a)
	net.ArcTP(a, p1)
	net.ArcPT(p1, b)
	net.ArcTP(b, p2)
	red, err := Explore(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Deadlocks) != 1 {
		t.Fatalf("chain must deadlock exactly once, got %v", red.Deadlocks)
	}
	if red.Deadlocks[0][p2] != 1 {
		t.Fatal("deadlock must be the final marking")
	}
}

func TestStateLimit(t *testing.T) {
	net := gen.Philosophers(5)
	res, err := Explore(net, Options{MaxStates: 3})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
	var le budget.ErrLimit
	if !errors.As(err, &le) || le.Resource != budget.States || le.Limit != 3 {
		t.Fatalf("want budget.ErrLimit{States,3}, got %#v", err)
	}
	if res == nil || res.States != 3 {
		t.Fatalf("want partial result with exactly 3 states, got %+v", res)
	}
}

// No false deadlocks on live nets with choice.
func TestLiveChoiceNet(t *testing.T) {
	net := petri.New("choice")
	p0 := net.AddPlace("p0", 1)
	a := net.AddTransition("a")
	b := net.AddTransition("b")
	c := net.AddTransition("c")
	p1 := net.AddPlace("p1", 0)
	net.ArcPT(p0, a)
	net.ArcPT(p0, b)
	net.ArcTP(a, p1)
	net.ArcTP(b, p1)
	net.ArcPT(p1, c)
	net.ArcTP(c, p0)
	red, err := Explore(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Deadlocks) != 0 {
		t.Fatal("live net reported deadlocked")
	}
	if red.Arcs == 0 {
		t.Fatal("no exploration happened")
	}
}

// TestExploreDeterministic pins that the sharded-set-backed exploration is
// reproducible: repeated runs visit identical state/arc counts and the same
// deadlock markings.
func TestExploreDeterministic(t *testing.T) {
	net := gen.Philosophers(5)
	first, err := Explore(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Explore(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.States != first.States || again.Arcs != first.Arcs {
			t.Fatalf("run %d: %d states/%d arcs, first run %d/%d",
				i, again.States, again.Arcs, first.States, first.Arcs)
		}
		if len(again.Deadlocks) != len(first.Deadlocks) {
			t.Fatalf("run %d: %d deadlocks vs %d", i, len(again.Deadlocks), len(first.Deadlocks))
		}
		for j := range again.Deadlocks {
			if !again.Deadlocks[j].Equal(first.Deadlocks[j]) {
				t.Fatalf("run %d: deadlock %d differs", i, j)
			}
		}
	}
}
