// Package structural implements structural analysis of Petri nets (Section
// 2.2): the incidence matrix, place invariants (P-semiflows) via the Farkas
// algorithm, state-machine components and covers (Figure 6), linear
// reductions, and the dense state encoding derived from an SM cover.
package structural

import (
	"fmt"
	"sort"

	"repro/internal/petri"
)

// Incidence returns the P×T incidence matrix: C[p][t] = tokens produced into
// p by t minus tokens consumed.
func Incidence(n *petri.Net) [][]int {
	c := make([][]int, len(n.Places))
	for p := range c {
		c[p] = make([]int, len(n.Transitions))
	}
	for t, tr := range n.Transitions {
		for _, p := range tr.Pre {
			c[p][t]--
		}
		for _, p := range tr.Post {
			c[p][t]++
		}
	}
	return c
}

// PSemiflows computes a generating set of minimal-support non-negative
// integer place invariants y (y·C = 0, y ≥ 0, y ≠ 0) using the Farkas
// algorithm. For every invariant, the weighted token count Σ y[p]·M(p) is
// constant over all reachable markings.
func PSemiflows(n *petri.Net) [][]int {
	nP, nT := len(n.Places), len(n.Transitions)
	c := Incidence(n)
	// Rows: [C-part | identity-part].
	type row struct {
		c []int
		y []int
	}
	rows := make([]row, 0, nP)
	for p := 0; p < nP; p++ {
		y := make([]int, nP)
		y[p] = 1
		rows = append(rows, row{c: append([]int(nil), c[p]...), y: y})
	}
	for t := 0; t < nT; t++ {
		var zero, pos, neg []row
		for _, r := range rows {
			switch {
			case r.c[t] == 0:
				zero = append(zero, r)
			case r.c[t] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := -rn.c[t], rp.c[t] // rp*a + rn*b cancels column t
				nc := make([]int, nT)
				ny := make([]int, nP)
				g := 0
				for i := 0; i < nT; i++ {
					nc[i] = a*rp.c[i] + b*rn.c[i]
					g = gcd(g, abs(nc[i]))
				}
				for i := 0; i < nP; i++ {
					ny[i] = a*rp.y[i] + b*rn.y[i]
					g = gcd(g, abs(ny[i]))
				}
				if g > 1 {
					for i := range nc {
						nc[i] /= g
					}
					for i := range ny {
						ny[i] /= g
					}
				}
				zero = append(zero, row{c: nc, y: ny})
			}
		}
		rows = zero
	}
	// Collect supports, keep minimal, dedup.
	var out [][]int
	for _, r := range rows {
		if isZero(r.y) {
			continue
		}
		out = append(out, r.y)
	}
	out = minimalSupport(out)
	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// TSemiflows computes a generating set of minimal-support non-negative
// transition invariants x (C·x = 0, x ≥ 0, x ≠ 0): firing every transition
// t exactly x[t] times reproduces the starting marking. For a live cyclic
// controller the all-cycle semiflow describes one complete operation cycle
// (e.g. one READ transaction).
func TSemiflows(n *petri.Net) [][]int {
	// Farkas on the transpose: swap roles of places and transitions.
	transposed := petri.New(n.Name + "-T")
	for _, t := range n.Transitions {
		transposed.AddPlace(t.Name, 0)
	}
	for _, p := range n.Places {
		transposed.AddTransition(p.Name)
	}
	for ti, t := range n.Transitions {
		for _, p := range t.Pre {
			// C[p][t] -= 1 corresponds to C^T[t][p] -= 1: transition p
			// consumes from place t.
			transposed.ArcPT(ti, p)
		}
		for _, p := range t.Post {
			transposed.ArcTP(p, ti)
		}
	}
	return PSemiflows(transposed)
}

// CheckTInvariant verifies C·x = 0.
func CheckTInvariant(n *petri.Net, x []int) bool {
	c := Incidence(n)
	for p := range n.Places {
		s := 0
		for t := range n.Transitions {
			s += c[p][t] * x[t]
		}
		if s != 0 {
			return false
		}
	}
	return true
}

// CheckInvariant verifies y·C = 0.
func CheckInvariant(n *petri.Net, y []int) bool {
	c := Incidence(n)
	for t := range n.Transitions {
		s := 0
		for p := range n.Places {
			s += y[p] * c[p][t]
		}
		if s != 0 {
			return false
		}
	}
	return true
}

// InvariantValue returns Σ y[p]·M(p).
func InvariantValue(y []int, m petri.Marking) int {
	s := 0
	for p, w := range y {
		s += w * int(m[p])
	}
	return s
}

// SM is a state-machine component: a place-set/transition-set pair such that
// within the component every transition has exactly one input and one output
// place (Figure 6 shows two of them for the reduced read/write net).
type SM struct {
	Places      []int
	Transitions []int
}

// SMComponents derives state-machine components from the 0/1-weighted
// P-semiflows: a semiflow with unit weights whose places see every connected
// transition with exactly one input and one output inside the set.
func SMComponents(n *petri.Net) []SM {
	var out []SM
	for _, y := range PSemiflows(n) {
		ok := true
		inSet := make([]bool, len(n.Places))
		var places []int
		for p, w := range y {
			if w == 0 {
				continue
			}
			if w != 1 {
				ok = false
				break
			}
			inSet[p] = true
			places = append(places, p)
		}
		if !ok {
			continue
		}
		// Transitions touching the set must have exactly one input and one
		// output place inside it.
		transSet := map[int]bool{}
		for _, p := range places {
			for _, t := range n.Places[p].Pre {
				transSet[t] = true
			}
			for _, t := range n.Places[p].Post {
				transSet[t] = true
			}
		}
		valid := true
		var trans []int
		for t := range transSet {
			in, outCnt := 0, 0
			for _, p := range n.Transitions[t].Pre {
				if inSet[p] {
					in++
				}
			}
			for _, p := range n.Transitions[t].Post {
				if inSet[p] {
					outCnt++
				}
			}
			if in != 1 || outCnt != 1 {
				valid = false
				break
			}
			trans = append(trans, t)
		}
		if !valid {
			continue
		}
		sort.Ints(trans)
		out = append(out, SM{Places: places, Transitions: trans})
	}
	return out
}

// SMCover greedily selects SM components covering every place; ok reports
// whether a full cover exists among the discovered components.
func SMCover(n *petri.Net) ([]SM, bool) {
	comps := SMComponents(n)
	covered := make([]bool, len(n.Places))
	var cover []SM
	for {
		remaining := 0
		for _, c := range covered {
			if !c {
				remaining++
			}
		}
		if remaining == 0 {
			return cover, true
		}
		best, bestGain := -1, 0
		for i, sm := range comps {
			gain := 0
			for _, p := range sm.Places {
				if !covered[p] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return cover, false
		}
		cover = append(cover, comps[best])
		for _, p := range comps[best].Places {
			covered[p] = true
		}
	}
}

// TokenCount returns the initial token count of the component — 1 for the
// safe live case, making the component a one-hot state machine.
func (sm SM) TokenCount(n *petri.Net) int {
	s := 0
	for _, p := range sm.Places {
		s += n.Places[p].Initial
	}
	return s
}

// FormatInvariant renders a semiflow as "p0 + p1 + 2·p2 = k".
func FormatInvariant(n *petri.Net, y []int, m0 petri.Marking) string {
	var terms []string
	for p, w := range y {
		switch {
		case w == 1:
			terms = append(terms, n.Places[p].Name)
		case w > 1:
			terms = append(terms, fmt.Sprintf("%d·%s", w, n.Places[p].Name))
		}
	}
	return fmt.Sprintf("%s = %d", join(terms, " + "), InvariantValue(y, m0))
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

func minimalSupport(rows [][]int) [][]int {
	// Deduplicate by support, keep rows whose support is not a strict
	// superset of another's.
	type entry struct {
		y       []int
		support map[int]bool
	}
	var entries []entry
	seen := map[string]bool{}
	for _, y := range rows {
		sup := map[int]bool{}
		key := ""
		for p, w := range y {
			if w != 0 {
				sup[p] = true
				key += fmt.Sprintf("%d:%d;", p, w)
			}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		entries = append(entries, entry{y: y, support: sup})
	}
	var out [][]int
	for i, e := range entries {
		minimal := true
		for j, f := range entries {
			if i == j {
				continue
			}
			if strictSubset(f.support, e.support) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, e.y)
		}
	}
	return out
}

func strictSubset(a, b map[int]bool) bool {
	if len(a) >= len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func isZero(y []int) bool {
	for _, v := range y {
		if v != 0 {
			return false
		}
	}
	return true
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
