package structural

import (
	"fmt"

	"repro/internal/petri"
)

// Linear reductions (Section 2.2, Figure 6): transformations that shrink the
// net while preserving liveness, safeness and boundedness, used as a
// preprocessing step before traversal. Using them "it is possible to reduce
// the whole PN from Figure 3 to a single self-loop transition".
//
// The implemented rule set is Murata's classic collection:
//
//	FSP — fusion of series places (drop a 1-in/1-out transition)
//	FST — fusion of series transitions (drop an unmarked 1-in/1-out place)
//	FPP — fusion of parallel places
//	FPT — fusion of parallel transitions
//	ESP — elimination of marked self-loop places
//	EST — elimination of self-loop transitions

// Reduce applies the rules to a fixpoint on a copy of the net, returning the
// reduced net and a human-readable trace of rule applications.
func Reduce(n *petri.Net) (*petri.Net, []string) {
	w := newWork(n)
	var trace []string
	for {
		applied := false
		for _, rule := range []func(*work) (string, bool){fsp, fst, fpp, fpt, esp, est} {
			if msg, ok := rule(w); ok {
				trace = append(trace, msg)
				applied = true
				break
			}
		}
		if !applied {
			break
		}
	}
	return w.build(n.Name + "-reduced"), trace
}

// work is a mutable multiset-free view of the net with deletion flags.
type work struct {
	pName []string
	pInit []int
	pPre  [][]int // transitions producing into place
	pPost [][]int
	pDead []bool
	tName []string
	tPre  [][]int // places consumed
	tPost [][]int
	tDead []bool
}

func newWork(n *petri.Net) *work {
	w := &work{}
	for _, p := range n.Places {
		w.pName = append(w.pName, p.Name)
		w.pInit = append(w.pInit, p.Initial)
		w.pPre = append(w.pPre, append([]int(nil), p.Pre...))
		w.pPost = append(w.pPost, append([]int(nil), p.Post...))
		w.pDead = append(w.pDead, false)
	}
	for _, t := range n.Transitions {
		w.tName = append(w.tName, t.Name)
		w.tPre = append(w.tPre, append([]int(nil), t.Pre...))
		w.tPost = append(w.tPost, append([]int(nil), t.Post...))
		w.tDead = append(w.tDead, false)
	}
	return w
}

func (w *work) build(name string) *petri.Net {
	n := petri.New(name)
	pMap := map[int]int{}
	for p := range w.pName {
		if w.pDead[p] {
			continue
		}
		pMap[p] = n.AddPlace(w.pName[p], w.pInit[p])
	}
	tMap := map[int]int{}
	for t := range w.tName {
		if w.tDead[t] {
			continue
		}
		tMap[t] = n.AddTransition(w.tName[t])
	}
	for t := range w.tName {
		if w.tDead[t] {
			continue
		}
		for _, p := range w.tPre[t] {
			n.ArcPT(pMap[p], tMap[t])
		}
		for _, p := range w.tPost[t] {
			n.ArcTP(tMap[t], pMap[p])
		}
	}
	return n
}

// fsp: transition t with single input p1 and single output p2 (p1≠p2),
// where p1 feeds only t and p2 is fed only by t: drop t, merge p2 into p1.
func fsp(w *work) (string, bool) {
	for t := range w.tName {
		if w.tDead[t] || len(w.tPre[t]) != 1 || len(w.tPost[t]) != 1 {
			continue
		}
		p1, p2 := w.tPre[t][0], w.tPost[t][0]
		if p1 == p2 || len(w.pPost[p1]) != 1 || len(w.pPre[p2]) != 1 {
			continue
		}
		if countIf(w.pPost[p2], func(x int) bool { return x == t }) > 0 {
			continue // p2 feeds t back: not a series chain
		}
		// Merge: p1 absorbs p2's marking and successors.
		w.tDead[t] = true
		w.pDead[p2] = true
		w.pInit[p1] += w.pInit[p2]
		w.pPost[p1] = nil
		for _, t2 := range w.pPost[p2] {
			w.pPost[p1] = append(w.pPost[p1], t2)
			replaceAll(w.tPre[t2], p2, p1)
		}
		return fmt.Sprintf("FSP: fused %s into %s, dropped %s", w.pName[p2], w.pName[p1], w.tName[t]), true
	}
	return "", false
}

// fst: unmarked place p with single producer t1 and single consumer t2,
// where p is t2's only input: drop p and t2, t1 absorbs t2's outputs.
func fst(w *work) (string, bool) {
	for p := range w.pName {
		if w.pDead[p] || w.pInit[p] != 0 || len(w.pPre[p]) != 1 || len(w.pPost[p]) != 1 {
			continue
		}
		t1, t2 := w.pPre[p][0], w.pPost[p][0]
		if t1 == t2 || len(w.tPre[t2]) != 1 {
			continue
		}
		w.pDead[p] = true
		w.tDead[t2] = true
		removeFrom(&w.tPost[t1], func(x int) bool { return x == p })
		for _, p2 := range w.tPost[t2] {
			w.tPost[t1] = append(w.tPost[t1], p2)
			replaceAll(w.pPre[p2], t2, t1)
		}
		return fmt.Sprintf("FST: fused %s into %s, dropped %s", w.tName[t2], w.tName[t1], w.pName[p]), true
	}
	return "", false
}

// fpp: two places with identical pre/post sets and equal marking.
func fpp(w *work) (string, bool) {
	for p := range w.pName {
		if w.pDead[p] {
			continue
		}
		for q := p + 1; q < len(w.pName); q++ {
			if w.pDead[q] || w.pInit[p] != w.pInit[q] {
				continue
			}
			if !sameSet(w.pPre[p], w.pPre[q]) || !sameSet(w.pPost[p], w.pPost[q]) {
				continue
			}
			w.pDead[q] = true
			for _, t := range w.pPre[q] {
				removeFrom(&w.tPost[t], func(x int) bool { return x == q })
			}
			for _, t := range w.pPost[q] {
				removeFrom(&w.tPre[t], func(x int) bool { return x == q })
			}
			return fmt.Sprintf("FPP: removed parallel place %s (dup of %s)", w.pName[q], w.pName[p]), true
		}
	}
	return "", false
}

// fpt: two transitions with identical pre/post sets.
func fpt(w *work) (string, bool) {
	for t := range w.tName {
		if w.tDead[t] {
			continue
		}
		for u := t + 1; u < len(w.tName); u++ {
			if w.tDead[u] {
				continue
			}
			if !sameSet(w.tPre[t], w.tPre[u]) || !sameSet(w.tPost[t], w.tPost[u]) {
				continue
			}
			w.tDead[u] = true
			for _, p := range w.tPre[u] {
				removeFrom(&w.pPost[p], func(x int) bool { return x == u })
			}
			for _, p := range w.tPost[u] {
				removeFrom(&w.pPre[p], func(x int) bool { return x == u })
			}
			return fmt.Sprintf("FPT: removed parallel transition %s (dup of %s)", w.tName[u], w.tName[t]), true
		}
	}
	return "", false
}

// esp: marked place whose only arcs are a self-loop on one transition, and
// the transition has other inputs (so it does not become source-free).
func esp(w *work) (string, bool) {
	for p := range w.pName {
		if w.pDead[p] || w.pInit[p] < 1 {
			continue
		}
		if len(w.pPre[p]) != 1 || len(w.pPost[p]) != 1 || w.pPre[p][0] != w.pPost[p][0] {
			continue
		}
		t := w.pPre[p][0]
		if countIf(w.tPre[t], func(x int) bool { return x != p }) == 0 {
			continue // keep the last pre-place: the net stays well-formed
		}
		w.pDead[p] = true
		removeFrom(&w.tPre[t], func(x int) bool { return x == p })
		removeFrom(&w.tPost[t], func(x int) bool { return x == p })
		return fmt.Sprintf("ESP: removed self-loop place %s on %s", w.pName[p], w.tName[t]), true
	}
	return "", false
}

// est: transition whose pre-set equals its post-set (pure self-loop) and
// which is not the only producer/consumer of those places... conservative:
// only removed when every place involved has other producers and consumers.
func est(w *work) (string, bool) {
	for t := range w.tName {
		if w.tDead[t] || len(w.tPre[t]) == 0 {
			continue
		}
		if !sameSet(w.tPre[t], w.tPost[t]) {
			continue
		}
		ok := true
		for _, p := range w.tPre[t] {
			if countIf(w.pPost[p], func(x int) bool { return x != t }) == 0 ||
				countIf(w.pPre[p], func(x int) bool { return x != t }) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		w.tDead[t] = true
		for _, p := range w.tPre[t] {
			removeFrom(&w.pPost[p], func(x int) bool { return x == t })
			removeFrom(&w.pPre[p], func(x int) bool { return x == t })
		}
		return fmt.Sprintf("EST: removed self-loop transition %s", w.tName[t]), true
	}
	return "", false
}

func replaceAll(s []int, old, new int) {
	for i, v := range s {
		if v == old {
			s[i] = new
		}
	}
}

func removeFrom(s *[]int, pred func(int) bool) {
	out := (*s)[:0]
	for _, v := range *s {
		if !pred(v) {
			out = append(out, v)
		}
	}
	*s = out
}

func countIf(s []int, pred func(int) bool) int {
	n := 0
	for _, v := range s {
		if pred(v) {
			n++
		}
	}
	return n
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := map[int]int{}
	for _, v := range a {
		in[v]++
	}
	for _, v := range b {
		in[v]--
		if in[v] < 0 {
			return false
		}
	}
	return true
}
