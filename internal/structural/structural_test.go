package structural

import (
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/vme"
)

func ring(k, tokens int) *petri.Net {
	n := petri.New("ring")
	ts := make([]int, k)
	for i := range ts {
		ts[i] = n.AddTransition("t" + string(rune('0'+i)))
	}
	for i := 0; i < k; i++ {
		init := 0
		if i < tokens {
			init = 1
		}
		p := n.AddPlace("p"+string(rune('0'+i)), init)
		n.ArcTP(ts[i], p)
		n.ArcPT(p, ts[(i+1)%k])
	}
	return n
}

func TestIncidence(t *testing.T) {
	n := ring(2, 1)
	c := Incidence(n)
	// t0 produces p0, consumes p1.
	if c[0][0] != 1 || c[1][0] != -1 || c[0][1] != -1 || c[1][1] != 1 {
		t.Fatalf("incidence = %v", c)
	}
}

func TestPSemiflowsRing(t *testing.T) {
	n := ring(3, 1)
	flows := PSemiflows(n)
	if len(flows) != 1 {
		t.Fatalf("ring has one minimal semiflow, got %d: %v", len(flows), flows)
	}
	y := flows[0]
	for p := range n.Places {
		if y[p] != 1 {
			t.Fatalf("ring semiflow must be all ones, got %v", y)
		}
	}
	if !CheckInvariant(n, y) {
		t.Fatal("semiflow must satisfy y·C = 0")
	}
	if InvariantValue(y, n.InitialMarking()) != 1 {
		t.Fatal("ring conserves one token")
	}
	if !strings.Contains(FormatInvariant(n, y, n.InitialMarking()), "= 1") {
		t.Fatal("invariant rendering")
	}
}

func TestTSemiflowsRing(t *testing.T) {
	n := ring(3, 1)
	flows := TSemiflows(n)
	if len(flows) != 1 {
		t.Fatalf("ring has one minimal T-semiflow, got %v", flows)
	}
	for _, v := range flows[0] {
		if v != 1 {
			t.Fatalf("ring cycle fires every transition once: %v", flows[0])
		}
	}
	if !CheckTInvariant(n, flows[0]) {
		t.Fatal("T-semiflow must satisfy C·x = 0")
	}
}

// The READ cycle's T-semiflow is one full transaction: every transition
// fires once; the read/write net has two (one per cycle type).
func TestTSemiflowsVME(t *testing.T) {
	read := vme.ReadSTG().Net
	flows := TSemiflows(read)
	if len(flows) != 1 {
		t.Fatalf("read cycle: %d T-semiflows, want 1", len(flows))
	}
	for _, v := range flows[0] {
		if v != 1 {
			t.Fatalf("one transaction fires each transition once: %v", flows[0])
		}
	}
	rw := vme.ReadWriteSTG().Net
	flowsRW := TSemiflows(rw)
	if len(flowsRW) != 2 {
		t.Fatalf("read/write: %d T-semiflows, want 2 (read cycle and write cycle)", len(flowsRW))
	}
	for _, x := range flowsRW {
		if !CheckTInvariant(rw, x) {
			t.Fatal("invalid T-semiflow")
		}
		// Each cycle uses exactly one of the two request transitions.
		reqs := x[rw.TransitionIndex("DSr+")] + x[rw.TransitionIndex("DSw+")]
		if reqs != 1 {
			t.Fatalf("each cycle serves one request, got %d", reqs)
		}
	}
}

// Invariants hold dynamically: along any firing sequence the weighted token
// count is constant.
func TestInvariantsDynamic(t *testing.T) {
	g := vme.ReadWriteSTG()
	n := g.Net
	flows := PSemiflows(n)
	if len(flows) == 0 {
		t.Fatal("read/write net must have semiflows")
	}
	rg, err := reach.Explore(n, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m0 := n.InitialMarking()
	for _, y := range flows {
		if !CheckInvariant(n, y) {
			t.Fatalf("bogus semiflow %v", y)
		}
		want := InvariantValue(y, m0)
		for _, m := range rg.Markings {
			if InvariantValue(y, m) != want {
				t.Fatalf("invariant %v violated at %s", y, m.Format(n))
			}
		}
	}
}

// TestFig6SMCover: the reduced read/write net is covered by two state
// machine components, each carrying exactly one token.
func TestFig6SMCover(t *testing.T) {
	g := vme.ReadWriteSTG()
	reduced, trace := Reduce(g.Net)
	if len(trace) == 0 {
		t.Fatal("reduction must fire at least one rule")
	}
	if len(reduced.Transitions) >= len(g.Net.Transitions) {
		t.Fatalf("reduction must shrink: %d -> %d transitions",
			len(g.Net.Transitions), len(reduced.Transitions))
	}
	cover, ok := SMCover(reduced)
	if !ok {
		t.Fatalf("reduced net must be covered by SM components; components: %v",
			SMComponents(reduced))
	}
	if len(cover) != 2 {
		t.Fatalf("Fig 6: expected a 2-component SM cover, got %d", len(cover))
	}
	for _, sm := range cover {
		if sm.TokenCount(reduced) != 1 {
			t.Fatalf("each SM component carries one token, got %d", sm.TokenCount(reduced))
		}
	}
}

// TestFig3ReducesToSelfLoop: the READ-cycle marked graph collapses to a
// single transition with a self-loop place.
func TestFig3ReducesToSelfLoop(t *testing.T) {
	g := vme.ReadSTG()
	reduced, trace := Reduce(g.Net)
	if len(reduced.Transitions) != 1 {
		t.Fatalf("Fig 3 must reduce to a single transition, got %d (trace: %v)\n%s",
			len(reduced.Transitions), trace, reduced)
	}
	if len(reduced.Places) != 1 {
		t.Fatalf("expected one self-loop place, got %d", len(reduced.Places))
	}
	p := reduced.Places[0]
	if p.Initial < 1 {
		t.Fatal("the self-loop place must be marked (liveness preserved)")
	}
	// The reduced net is live: its single transition can fire forever.
	m := reduced.InitialMarking()
	if !reduced.Enabled(m, 0) {
		t.Fatal("self-loop transition must be enabled")
	}
	if !reduced.Fire(m, 0).Equal(m) {
		t.Fatal("self-loop firing must preserve the marking")
	}
}

// Reduction preserves liveness, boundedness and the total token count on
// rings (safeness may be traded for compactness when marked places fuse,
// which is how Fig 3 collapses to one self-loop).
func TestReducePreservesRingBehaviour(t *testing.T) {
	n := ring(5, 2)
	reduced, _ := Reduce(n)
	rg, err := reach.Explore(reduced, reach.Options{})
	if err != nil {
		t.Fatalf("reduced ring must stay bounded: %v", err)
	}
	if len(rg.Deadlocks()) != 0 {
		t.Fatal("reduced ring must stay live")
	}
	for _, m := range rg.Markings {
		if m.Tokens() != 2 {
			t.Fatalf("token count must be conserved, got %d in %v", m.Tokens(), m)
		}
	}
}

func TestParallelRules(t *testing.T) {
	// Two parallel places between a and b, and two parallel transitions
	// between p and q.
	n := petri.New("par")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	p1 := n.AddPlace("p1", 0)
	p2 := n.AddPlace("p2", 0)
	n.ArcTP(a, p1)
	n.ArcTP(a, p2)
	n.ArcPT(p1, b)
	n.ArcPT(p2, b)
	q := n.AddPlace("q", 1)
	n.ArcTP(b, q)
	n.ArcPT(q, a)
	reduced, trace := Reduce(n)
	joined := strings.Join(trace, "\n")
	if !strings.Contains(joined, "FPP") {
		t.Fatalf("expected a parallel-place fusion in trace:\n%s", joined)
	}
	if len(reduced.Places) >= len(n.Places) {
		t.Fatal("parallel place must be removed")
	}
}

func TestSelfLoopRules(t *testing.T) {
	n := petri.New("self")
	a := n.AddTransition("a")
	b := n.AddTransition("b")
	p := n.AddPlace("p", 1)
	n.ArcTP(a, p)
	n.ArcPT(p, b)
	q := n.AddPlace("q", 1)
	n.ArcTP(b, q)
	n.ArcPT(q, a)
	// Self-loop place on a.
	s := n.AddPlace("s", 1)
	n.ArcPT(s, a)
	n.ArcTP(a, s)
	reduced, trace := Reduce(n)
	joined := strings.Join(trace, "\n")
	if !strings.Contains(joined, "ESP") {
		t.Fatalf("expected self-loop place elimination:\n%s", joined)
	}
	// Redundant self-loop places collapse; exactly one marked place must
	// survive so the net stays live and well-formed.
	if len(reduced.Places) != 1 || reduced.Places[0].Initial < 1 {
		t.Fatalf("expected a single marked place, got:\n%s", reduced)
	}
}

func TestSMComponentsDiamond(t *testing.T) {
	// Fork/join: t1 splits p into q1 and q2; t2 rejoins. The minimal unit
	// semiflows are p+q1 and p+q2, each inducing a valid SM component, and
	// together they cover the net.
	n := petri.New("w")
	t1 := n.AddTransition("t1")
	t2 := n.AddTransition("t2")
	p := n.AddPlace("p", 1)
	q1 := n.AddPlace("q1", 0)
	q2 := n.AddPlace("q2", 0)
	n.ArcPT(p, t1)
	n.ArcTP(t1, q1)
	n.ArcTP(t1, q2)
	n.ArcPT(q1, t2)
	n.ArcPT(q2, t2)
	n.ArcTP(t2, p)
	comps := SMComponents(n)
	if len(comps) != 2 {
		t.Fatalf("expected 2 SM components, got %v", comps)
	}
	cover, ok := SMCover(n)
	if !ok || len(cover) != 2 {
		t.Fatalf("diamond needs both components to cover: %v ok=%v", cover, ok)
	}
	for _, sm := range comps {
		if len(sm.Places) != 2 || len(sm.Transitions) != 2 {
			t.Fatalf("component shape: %v", sm)
		}
		if sm.Places[0] != p && sm.Places[1] != p {
			t.Fatalf("every component passes through p: %v", sm)
		}
	}
	_ = q1
	_ = q2
}
