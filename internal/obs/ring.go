package obs

import (
	"encoding/json"
	"sync"
)

// TraceRing is a bounded newest-N store of per-request span-tree snapshots,
// keyed by an opaque id (the service layer uses job ids). It is the sink
// side of the aggregation contract: Registry.Merge folds scalars into a
// long-running aggregate and a TraceRing — fed through MergeRetain — keeps
// the most recent span trees so "what did job X do" stays answerable after
// the request finished, without unbounded growth.
//
// Both bounds are enforced on Put: the entry count and the total byte size
// (measured as the JSON encoding of each snapshot, the same bytes the trace
// endpoint serves). Eviction is strictly oldest-first. A single snapshot
// larger than the byte bound is still retained while it is the newest entry
// — the ring always answers for the most recent request — and is evicted as
// soon as anything newer lands. Re-putting an existing id replaces the
// snapshot and refreshes its position (a retried job keeps one entry, the
// last attempt's tree).
//
// The nil *TraceRing is a valid disabled sink: Put and Get are no-ops.
type TraceRing struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	entries    map[string]*ringEntry
	order      []string // insertion order, oldest first
	bytes      int64
	evictions  int64
}

type ringEntry struct {
	trace string
	snap  *Snapshot
	size  int64
}

// NewTraceRing builds a ring bounded to maxEntries snapshots and maxBytes of
// encoded snapshot data. Non-positive bounds select 64 entries / 16 MiB.
func NewTraceRing(maxEntries int, maxBytes int64) *TraceRing {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	return &TraceRing{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[string]*ringEntry{},
	}
}

// Put stores (or replaces) the snapshot under id, tagged with its trace id,
// and evicts oldest entries until the bounds hold again.
func (tr *TraceRing) Put(id, traceID string, snap *Snapshot) {
	if tr == nil || snap == nil {
		return
	}
	size := int64(len(snap.Spans)+1) * 64 // floor if the encode ever fails
	if data, err := json.Marshal(snap); err == nil {
		size = int64(len(data))
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if old, ok := tr.entries[id]; ok {
		tr.bytes -= old.size
		for i, oid := range tr.order {
			if oid == id {
				tr.order = append(tr.order[:i], tr.order[i+1:]...)
				break
			}
		}
	}
	tr.entries[id] = &ringEntry{trace: traceID, snap: snap, size: size}
	tr.order = append(tr.order, id)
	tr.bytes += size
	for len(tr.order) > 1 && (len(tr.order) > tr.maxEntries || tr.bytes > tr.maxBytes) {
		oldest := tr.order[0]
		tr.order = tr.order[1:]
		tr.bytes -= tr.entries[oldest].size
		delete(tr.entries, oldest)
		tr.evictions++
	}
}

// Get returns the stored snapshot and its trace id, or ok=false when the id
// was never stored or has been evicted.
func (tr *TraceRing) Get(id string) (traceID string, snap *Snapshot, ok bool) {
	if tr == nil {
		return "", nil, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	e, ok := tr.entries[id]
	if !ok {
		return "", nil, false
	}
	return e.trace, e.snap, true
}

// Stats reports the current entry count, retained byte size and cumulative
// eviction count (all zero on the nil ring).
func (tr *TraceRing) Stats() (entries int, bytes int64, evictions int64) {
	if tr == nil {
		return 0, 0, 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.order), tr.bytes, tr.evictions
}
