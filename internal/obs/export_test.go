package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// buildSample constructs a registry shaped like a real synthesis run:
// flow → phase → engine → worker spans plus a few instruments.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("reach.states").Add(14)
	r.Gauge("symbolic.peak_nodes").Max(512)
	r.Histogram("reach.frontier", 1, 2, 4).Observe(3)
	flow := r.Root("flow:synthesize")
	sg := flow.Child("phase:sg")
	eng := sg.Child("engine:explicit")
	w := eng.ChildLane("worker:1", 1)
	w.Event("level", "frontier", "3")
	w.End()
	eng.Attr("states", "14")
	eng.End()
	sg.End()
	flow.End()
	return r
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := buildSample()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["reach.states"] != 14 {
		t.Fatalf("counter lost in round trip: %+v", snap.Counters)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(snap.Spans))
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceEventExport(t *testing.T) {
	r := buildSample()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	// 4 spans + 1 instant event.
	if len(tf.TraceEvents) != 5 {
		t.Fatalf("traceEvents = %d, want 5", len(tf.TraceEvents))
	}
	cats := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		cats[ev.Cat] = true
		if ev.Name == "worker:1" && ev.TID != 2 {
			t.Fatalf("worker lane not mapped to tid: %+v", ev)
		}
		if ev.Name == "engine:explicit" && ev.Args["states"] != "14" {
			t.Fatalf("span attrs not exported: %+v", ev)
		}
	}
	for _, want := range []string{"flow", "phase", "engine", "worker"} {
		if !cats[want] {
			t.Fatalf("category %q missing from trace (got %v)", want, cats)
		}
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	if err := ValidateTraceJSON([]byte(`{"not":"a trace"}`)); err == nil {
		t.Fatal("trace without traceEvents validated")
	}
	if err := ValidateTraceJSON([]byte(`{"traceEvents":[{"ph":"X"}]}`)); err == nil {
		t.Fatal("event without name/ts validated")
	}
	if err := ValidateTraceJSON([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON validated")
	}
	if _, err := ParseSnapshot([]byte(`{"spans":[{"id":0,"parent":5,"name":"engine:x","cat":"engine"}]}`)); err == nil {
		t.Fatal("snapshot without counters maps / with dangling parent validated")
	}

	// Orphan engine span: structurally fine, hierarchy-invalid.
	r := NewRegistry()
	r.Root("engine:orphan").End()
	snap := r.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := snap.ValidateHierarchy(); err == nil {
		t.Fatal("engine span without flow ancestor passed hierarchy validation")
	}
}

// TestExternalArtifacts is the verify.sh observability gate: when the
// OBS_METRICS_FILE / OBS_TRACE_FILE environment variables point at files
// produced by a -metrics / -trace-json CLI run, they are validated against
// the snapshot schema and the trace_event format. OBS_REQUIRE_COUNTERS
// (comma-separated names) additionally asserts those counters are non-zero,
// and OBS_REQUIRE_HIERARCHY=1 enforces the flow → phase → engine span tree.
// Without the environment variables the test is a no-op, so the gate costs
// nothing in plain `go test` runs.
func TestExternalArtifacts(t *testing.T) {
	metricsFile := os.Getenv("OBS_METRICS_FILE")
	traceFile := os.Getenv("OBS_TRACE_FILE")
	if metricsFile == "" && traceFile == "" {
		t.Skip("OBS_METRICS_FILE / OBS_TRACE_FILE not set")
	}
	if metricsFile != "" {
		data, err := os.ReadFile(metricsFile)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := ParseSnapshot(data)
		if err != nil {
			t.Fatalf("metrics snapshot %s: %v", metricsFile, err)
		}
		if os.Getenv("OBS_REQUIRE_HIERARCHY") == "1" {
			if err := snap.ValidateHierarchy(); err != nil {
				t.Fatalf("metrics snapshot %s: %v", metricsFile, err)
			}
		}
		if req := os.Getenv("OBS_REQUIRE_COUNTERS"); req != "" {
			for _, name := range strings.Split(req, ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if snap.Counters[name] <= 0 {
					t.Errorf("counter %q is zero in %s (counters: %v)", name, metricsFile, snap.Counters)
				}
			}
		}
	}
	if traceFile != "" {
		data, err := os.ReadFile(traceFile)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateTraceJSON(data); err != nil {
			t.Fatalf("trace file %s: %v", traceFile, err)
		}
	}
}
