package obs

import (
	"sync"
	"testing"
)

// TestHistogramSnapshotConsistentUnderLoad is the regression test for the
// torn-snapshot bug: Observe bumps the bucket and the total count as
// independent atomics, so a snapshot racing with writers used to export
// count != sum(buckets) and fail Validate on an otherwise-healthy registry.
// Snapshots now derive the count from the loaded buckets, so every snapshot
// taken mid-load must validate. Run under -race (verify.sh covers it).
func TestHistogramSnapshotConsistentUnderLoad(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", Pow2Buckets(10)...)

	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(seed + int64(i%1500))
			}
		}(int64(w))
	}
	go func() {
		wg.Wait()
		close(stop)
	}()

	snapshots := 0
	for {
		select {
		case <-stop:
			goto drained
		default:
		}
		snap := r.Snapshot()
		if err := snap.Validate(); err != nil {
			t.Fatalf("snapshot %d under concurrent Observe: %v", snapshots, err)
		}
		hs := snap.Histograms["latency"]
		var total int64
		for _, c := range hs.Counts {
			total += c
		}
		if hs.Count != total {
			t.Fatalf("snapshot %d: count %d != bucket sum %d", snapshots, hs.Count, total)
		}
		snapshots++
	}
drained:
	// The quiescent snapshot must account for every sample exactly.
	snap := r.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Histograms["latency"].Count; got != writers*perWriter {
		t.Fatalf("final count = %d, want %d", got, writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("live Count() = %d, want %d", h.Count(), writers*perWriter)
	}
}

// TestRegistryMerge covers the aggregation path the synthesis daemon uses:
// per-request registries fold into a server-level registry without spans.
func TestRegistryMerge(t *testing.T) {
	job := NewRegistry()
	job.Counter("reach.states").Add(10)
	job.Gauge("symbolic.peak_nodes").Max(100)
	job.Histogram("logic.cover_size", 1, 2, 4).Observe(3)
	job.Root("flow:synthesize").End()

	agg := NewRegistry()
	agg.Counter("reach.states").Add(5)
	agg.Gauge("symbolic.peak_nodes").Max(400)
	agg.Merge(job.Snapshot())
	agg.Merge(job.Snapshot())

	snap := agg.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["reach.states"]; got != 25 {
		t.Fatalf("merged counter = %d, want 25", got)
	}
	if got := snap.Gauges["symbolic.peak_nodes"]; got != 400 {
		t.Fatalf("merged gauge = %d, want 400 (Max semantics)", got)
	}
	hs, ok := snap.Histograms["logic.cover_size"]
	if !ok || hs.Count != 2 || hs.Sum != 6 {
		t.Fatalf("merged histogram = %+v, want count 2 sum 6", hs)
	}
	if len(snap.Spans) != 0 {
		t.Fatalf("merge must not import spans, got %d", len(snap.Spans))
	}

	// Bound-mismatched histograms are skipped, not corrupted.
	other := NewRegistry()
	other.Histogram("logic.cover_size", 7, 9).Observe(8)
	agg.Merge(other.Snapshot())
	if got := agg.Snapshot().Histograms["logic.cover_size"]; got.Count != 2 {
		t.Fatalf("mismatched-bounds merge changed histogram: %+v", got)
	}

	// Nil receiver and nil snapshot are no-ops.
	var nilReg *Registry
	nilReg.Merge(job.Snapshot())
	agg.Merge(nil)
}
