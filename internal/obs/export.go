package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Snapshot is the structured metrics state of a registry: every counter,
// gauge and histogram value plus the full span tree. It is the JSON summary
// format (-metrics), the payload embedded in core.Report.Metrics, and the
// record cmd/report merges into the benchmark trajectory JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans"`
}

// HistogramSnapshot is one histogram's exported state.
type HistogramSnapshot struct {
	// Buckets are the ascending upper bounds; Counts has one extra final
	// entry for overflow samples.
	Buckets []int64 `json:"buckets"`
	Counts  []int64 `json:"counts"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// SpanSnapshot is one span of the exported tree.
type SpanSnapshot struct {
	ID      int             `json:"id"`
	Parent  int             `json:"parent"` // -1 for roots
	Name    string          `json:"name"`
	Cat     string          `json:"cat"`
	Lane    int             `json:"lane"`
	StartUS float64         `json:"start_us"`
	DurUS   float64         `json:"dur_us"`
	Attrs   []KV            `json:"attrs,omitempty"`
	Events  []EventSnapshot `json:"events,omitempty"`
}

// EventSnapshot is one span event.
type EventSnapshot struct {
	Name string  `json:"name"`
	TSUS float64 `json:"ts_us"`
	KV   []KV    `json:"kv,omitempty"`
}

// Snapshot captures the registry's current state. Open spans are exported
// with the capture time as their end. Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	now := r.since()
	snap := &Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
	}
	r.mu.Lock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	if len(r.histograms) > 0 {
		snap.Histograms = map[string]HistogramSnapshot{}
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Buckets: append([]int64(nil), h.bounds...),
				Counts:  make([]int64, len(h.counts)),
				Sum:     h.sum.Load(),
			}
			// Observe bumps each bucket and the total as independent atomics,
			// so a snapshot racing with writers could load a total that
			// disagrees with the buckets. Deriving Count from the loaded
			// buckets keeps every snapshot internally consistent
			// (count == sum of bucket counts) by construction.
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
				hs.Count += hs.Counts[i]
			}
			snap.Histograms[name] = hs
		}
	}
	spans := append([]*Span(nil), r.spans...)
	r.mu.Unlock()

	snap.Spans = make([]SpanSnapshot, len(spans))
	for i, s := range spans {
		s.mu.Lock()
		end := s.end
		if end == 0 {
			end = now
		}
		ss := SpanSnapshot{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			Cat:     Category(s.name),
			Lane:    s.lane,
			StartUS: float64(s.start) / 1e3,
			DurUS:   float64(end-s.start) / 1e3,
			Attrs:   append([]KV(nil), s.attrs...),
		}
		for _, ev := range s.events {
			ss.Events = append(ss.Events, EventSnapshot{
				Name: ev.name, TSUS: float64(ev.ts) / 1e3, KV: append([]KV(nil), ev.kv...),
			})
		}
		s.mu.Unlock()
		snap.Spans[i] = ss
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and writes the JSON summary. A nil
// registry writes nothing and returns nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WriteJSON(w)
}

// Merge folds a snapshot's instruments into the registry: counters are
// added, gauges raised to the snapshot value when larger, and histograms
// merged bucket-for-bucket when the bounds agree (shape mismatches skip that
// histogram rather than corrupt the aggregate). Spans are not merged, so
// short-lived per-request registries can fold into a long-running aggregate
// registry without unbounded span growth — see the package-doc aggregation
// contract. Callers that must not lose the span tree use MergeRetain (with a
// TraceRing as the usual sink). Nil receiver or snapshot is a no-op.
func (r *Registry) Merge(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Max(v)
	}
	for name, hs := range s.Histograms {
		if len(hs.Counts) != len(hs.Buckets)+1 {
			continue
		}
		h := r.Histogram(name, hs.Buckets...)
		if !sameBounds(h.bounds, hs.Buckets) {
			continue
		}
		for i, c := range hs.Counts {
			h.counts[i].Add(c)
		}
		h.sum.Add(hs.Sum)
		h.n.Add(hs.Count)
	}
}

// MergeRetain folds the snapshot's scalar instruments into the registry
// exactly like Merge, and — instead of silently discarding the span tree —
// hands the snapshot to retain when it carries spans. This is the span
// retention hook of the aggregation contract: a server folds every
// per-request registry into its aggregate while keeping the request's trace
// in a bounded store (TraceRing.Put is the canonical retain callback). A nil
// retain degrades to plain Merge.
func (r *Registry) MergeRetain(s *Snapshot, retain func(*Snapshot)) {
	r.Merge(s)
	if s != nil && retain != nil && len(s.Spans) > 0 {
		retain(s)
	}
}

func sameBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// traceEvent is one Chrome trace_event entry.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   float64           `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace writes the span tree in Chrome trace_event format (the
// about://tracing / Perfetto JSON object form): one complete "X" event per
// span on tid = lane+1, one instant "i" event per span event.
func (s *Snapshot) WriteTrace(w io.Writer) error {
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, sp := range s.Spans {
		ev := traceEvent{
			Name: sp.Name, Cat: sp.Cat, Phase: "X",
			TS: sp.StartUS, Dur: sp.DurUS, PID: 1, TID: sp.Lane + 1,
		}
		if len(sp.Attrs) > 0 {
			ev.Args = map[string]string{}
			for _, kv := range sp.Attrs {
				ev.Args[kv.Key] = kv.Value
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
		for _, e := range sp.Events {
			ie := traceEvent{
				Name: e.Name, Cat: sp.Cat, Phase: "i",
				TS: e.TSUS, PID: 1, TID: sp.Lane + 1, Scope: "t",
			}
			if len(e.KV) > 0 {
				ie.Args = map[string]string{}
				for _, kv := range e.KV {
					ie.Args[kv.Key] = kv.Value
				}
			}
			tf.TraceEvents = append(tf.TraceEvents, ie)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// WriteTrace snapshots the registry and writes the trace_event file. A nil
// registry writes nothing and returns nil.
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Snapshot().WriteTrace(w)
}

// Validate checks the snapshot's structural invariants: every span's parent
// exists and opened no later than the child, span ids are unique, categories
// match the name prefixes, and histograms have consistent bucket/count
// shapes. It is the schema check behind the verify.sh observability gate.
func (s *Snapshot) Validate() error {
	if s.Counters == nil || s.Gauges == nil {
		return fmt.Errorf("obs: snapshot missing counters/gauges maps")
	}
	byID := map[int]*SpanSnapshot{}
	for i := range s.Spans {
		sp := &s.Spans[i]
		if _, dup := byID[sp.ID]; dup {
			return fmt.Errorf("obs: duplicate span id %d", sp.ID)
		}
		byID[sp.ID] = sp
		if sp.Cat != Category(sp.Name) {
			return fmt.Errorf("obs: span %q category %q does not match name", sp.Name, sp.Cat)
		}
		if sp.DurUS < 0 {
			return fmt.Errorf("obs: span %q has negative duration", sp.Name)
		}
	}
	for i := range s.Spans {
		sp := &s.Spans[i]
		if sp.Parent < 0 {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			return fmt.Errorf("obs: span %q references missing parent %d", sp.Name, sp.Parent)
		}
		// A microsecond of slack absorbs float rounding in the export.
		if parent.StartUS > sp.StartUS+1 {
			return fmt.Errorf("obs: span %q starts before its parent %q", sp.Name, parent.Name)
		}
	}
	for name, h := range s.Histograms {
		if len(h.Counts) != len(h.Buckets)+1 {
			return fmt.Errorf("obs: histogram %q has %d counts for %d buckets",
				name, len(h.Counts), len(h.Buckets))
		}
		if !sort.SliceIsSorted(h.Buckets, func(i, j int) bool { return h.Buckets[i] < h.Buckets[j] }) {
			return fmt.Errorf("obs: histogram %q buckets not ascending", name)
		}
		var total int64
		for _, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("obs: histogram %q has a negative bucket count", name)
			}
			total += c
		}
		// Registry.Snapshot derives Count from the bucket counts it loaded,
		// so a healthy export satisfies this exactly, even when the snapshot
		// raced with concurrent Observe calls.
		if h.Count != total {
			return fmt.Errorf("obs: histogram %q count %d != bucket sum %d", name, h.Count, total)
		}
	}
	return nil
}

// ValidateHierarchy additionally enforces the flow → phase → engine span
// discipline on a full synthesis snapshot: at least one "flow" root exists,
// every "phase" span hangs off a flow, and every "engine" span has a phase
// or flow ancestor. Worker spans must hang off an engine span.
func (s *Snapshot) ValidateHierarchy() error {
	if err := s.Validate(); err != nil {
		return err
	}
	byID := map[int]*SpanSnapshot{}
	for i := range s.Spans {
		byID[s.Spans[i].ID] = &s.Spans[i]
	}
	ancestorCat := func(sp *SpanSnapshot, cats ...string) bool {
		for p := sp.Parent; p >= 0; {
			a, ok := byID[p]
			if !ok {
				return false
			}
			for _, c := range cats {
				if a.Cat == c {
					return true
				}
			}
			p = a.Parent
		}
		return false
	}
	flows := 0
	for i := range s.Spans {
		sp := &s.Spans[i]
		switch sp.Cat {
		case "flow":
			if sp.Parent != -1 {
				return fmt.Errorf("obs: flow span %q is not a root", sp.Name)
			}
			flows++
		case "phase":
			if !ancestorCat(sp, "flow") {
				return fmt.Errorf("obs: phase span %q has no flow ancestor", sp.Name)
			}
		case "engine":
			if !ancestorCat(sp, "phase", "flow") {
				return fmt.Errorf("obs: engine span %q has no phase/flow ancestor", sp.Name)
			}
		case "worker":
			if !ancestorCat(sp, "engine") {
				return fmt.Errorf("obs: worker span %q has no engine ancestor", sp.Name)
			}
		}
	}
	if flows == 0 {
		return fmt.Errorf("obs: no flow root span")
	}
	return nil
}

// ParseSnapshot decodes and validates a JSON summary produced by WriteJSON.
func ParseSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: snapshot JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ValidateTraceJSON checks that data is a well-formed trace_event file: a
// JSON object with a traceEvents array whose entries all carry name/ph/pid/
// tid, with non-negative timestamps and durations.
func ValidateTraceJSON(data []byte) error {
	var tf struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("obs: trace JSON: %w", err)
	}
	if tf.TraceEvents == nil {
		return fmt.Errorf("obs: trace JSON has no traceEvents array")
	}
	for i, ev := range tf.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				return fmt.Errorf("obs: traceEvents[%d] missing %q", i, key)
			}
		}
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil || (ph != "X" && ph != "i") {
			return fmt.Errorf("obs: traceEvents[%d] has unsupported phase %s", i, ev["ph"])
		}
		var ts float64
		if err := json.Unmarshal(ev["ts"], &ts); err != nil || ts < 0 {
			return fmt.Errorf("obs: traceEvents[%d] has bad ts %s", i, ev["ts"])
		}
		if ph == "X" {
			var dur float64
			if raw, ok := ev["dur"]; ok {
				if err := json.Unmarshal(raw, &dur); err != nil || dur < 0 {
					return fmt.Errorf("obs: traceEvents[%d] has bad dur %s", i, raw)
				}
			}
		}
	}
	return nil
}
