package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over a Snapshot, plus a
// strict validator for the produced format — the text-format sibling of
// ValidateTraceJSON. WriteProm renders counters, gauges and histograms;
// spans are per-request data and have no exposition-format equivalent, so
// they are deliberately omitted (retrieve them from the trace endpoint or
// the JSON snapshot instead).

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes an instrument name into a legal Prometheus metric name:
// every byte outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a
// '_' prefix. "serve.cache_hits" renders as "serve_cache_hits".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFamilies maps every instrument to its sanitized family name, resolving
// sanitization collisions deterministically by suffixing _2, _3, ... in the
// sorted order of the original names.
func promFamilies(names []string) map[string]string {
	sort.Strings(names)
	out := make(map[string]string, len(names))
	taken := make(map[string]bool, len(names))
	for _, name := range names {
		fam := promName(name)
		if taken[fam] {
			for n := 2; ; n++ {
				cand := fam + "_" + strconv.Itoa(n)
				if !taken[cand] {
					fam = cand
					break
				}
			}
		}
		taken[fam] = true
		out[name] = fam
	}
	return out
}

// WriteProm renders the snapshot's scalar instruments in the Prometheus text
// exposition format: one "# TYPE" line per family followed by its samples,
// families sorted by name for deterministic output. Histograms render the
// conventional cumulative series — name_bucket{le="..."} per bound plus
// le="+Inf", then name_sum and name_count. A nil snapshot writes nothing.
func (s *Snapshot) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	for name := range s.Histograms {
		names = append(names, name)
	}
	fam := promFamilies(names)

	type row struct {
		name string
		fam  string
	}
	sortedRows := func(m map[string]string, keys []string) []row {
		rows := make([]row, 0, len(keys))
		for _, k := range keys {
			rows = append(rows, row{name: k, fam: m[k]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].fam < rows[j].fam })
		return rows
	}

	counterNames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		counterNames = append(counterNames, name)
	}
	for _, r := range sortedRows(fam, counterNames) {
		fmt.Fprintf(bw, "# TYPE %s counter\n", r.fam)
		fmt.Fprintf(bw, "%s %d\n", r.fam, s.Counters[r.name])
	}

	gaugeNames := make([]string, 0, len(s.Gauges))
	for name := range s.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	for _, r := range sortedRows(fam, gaugeNames) {
		fmt.Fprintf(bw, "# TYPE %s gauge\n", r.fam)
		fmt.Fprintf(bw, "%s %d\n", r.fam, s.Gauges[r.name])
	}

	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	for _, r := range sortedRows(fam, histNames) {
		h := s.Histograms[r.name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", r.fam)
		var cum int64
		for i, bound := range h.Buckets {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", r.fam, bound, cum)
		}
		// The overflow bucket closes the cumulative series at +Inf; rendering
		// the total (not h.Count) keeps bucket/count consistency even for
		// snapshots that did not come from Registry.Snapshot.
		if len(h.Counts) == len(h.Buckets)+1 {
			cum += h.Counts[len(h.Buckets)]
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", r.fam, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", r.fam, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", r.fam, cum)
	}

	return bw.Flush()
}

// promSample is one parsed sample line.
type promSample struct {
	family string // base family (histogram suffixes stripped)
	suffix string // "", "_bucket", "_sum" or "_count"
	le     string // le label value for _bucket samples
	value  float64
	line   int
}

// ValidateProm is the strict checker for the text exposition format that
// WriteProm produces — the Prometheus sibling of ValidateTraceJSON, used by
// the verify.sh live-telemetry gate to hold the /metrics endpoint to its
// contract. It enforces:
//
//   - every sample's family is declared by a preceding # TYPE line, and no
//     family is declared twice;
//   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label syntax is well
//     formed, and sample values parse as floats;
//   - histogram families expose _sum, _count and a cumulative _bucket series
//     with ascending le bounds, non-decreasing counts, and an le="+Inf"
//     bucket equal to _count;
//   - counter and gauge samples are bare (no _bucket/_sum/_count suffixes
//     leaking from a histogram without a TYPE line);
//   - the payload is newline-terminated.
func ValidateProm(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("obs: prom: empty payload")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("obs: prom: payload not newline-terminated")
	}

	types := map[string]string{} // family -> counter|gauge|histogram
	var samples []promSample

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("obs: prom line %d: malformed TYPE line %q", lineNo, line)
				}
				fam, typ := fields[2], fields[3]
				if !validPromName(fam) {
					return fmt.Errorf("obs: prom line %d: invalid metric name %q", lineNo, fam)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("obs: prom line %d: unknown type %q", lineNo, typ)
				}
				if _, dup := types[fam]; dup {
					return fmt.Errorf("obs: prom line %d: duplicate TYPE for %q", lineNo, fam)
				}
				types[fam] = typ
			}
			continue // HELP and other comments pass through
		}

		name, labels, valueStr, err := splitPromSample(line)
		if err != nil {
			return fmt.Errorf("obs: prom line %d: %v", lineNo, err)
		}
		if !validPromName(name) {
			return fmt.Errorf("obs: prom line %d: invalid metric name %q", lineNo, name)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			return fmt.Errorf("obs: prom line %d: bad value %q", lineNo, valueStr)
		}

		family, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("obs: prom line %d: sample %q has no preceding TYPE line", lineNo, name)
		}
		le := ""
		if suffix == "_bucket" {
			le, ok = labels["le"]
			if !ok {
				return fmt.Errorf("obs: prom line %d: %s_bucket sample missing le label", lineNo, family)
			}
		} else if typ == "histogram" && suffix == "" {
			return fmt.Errorf("obs: prom line %d: bare sample %q for histogram family", lineNo, name)
		}
		samples = append(samples, promSample{
			family: family, suffix: suffix, le: le, value: value, line: lineNo,
		})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: prom: scan: %v", err)
	}

	// Cross-sample histogram checks.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		var buckets []promSample
		var sum, count *promSample
		for i := range samples {
			smp := &samples[i]
			if smp.family != fam {
				continue
			}
			switch smp.suffix {
			case "_bucket":
				buckets = append(buckets, *smp)
			case "_sum":
				sum = smp
			case "_count":
				count = smp
			}
		}
		if len(buckets) == 0 {
			return fmt.Errorf("obs: prom: histogram %q has no _bucket samples", fam)
		}
		if sum == nil {
			return fmt.Errorf("obs: prom: histogram %q has no _sum sample", fam)
		}
		if count == nil {
			return fmt.Errorf("obs: prom: histogram %q has no _count sample", fam)
		}
		prevBound := float64(0)
		prevSet := false
		prevCum := float64(0)
		sawInf := false
		for i, b := range buckets {
			var bound float64
			if b.le == "+Inf" {
				if i != len(buckets)-1 {
					return fmt.Errorf("obs: prom: histogram %q has le=\"+Inf\" before the final bucket", fam)
				}
				sawInf = true
			} else {
				var err error
				bound, err = strconv.ParseFloat(b.le, 64)
				if err != nil {
					return fmt.Errorf("obs: prom line %d: histogram %q has bad le %q", b.line, fam, b.le)
				}
				if prevSet && bound <= prevBound {
					return fmt.Errorf("obs: prom: histogram %q le bounds not ascending", fam)
				}
				prevBound, prevSet = bound, true
			}
			if b.value < prevCum {
				return fmt.Errorf("obs: prom: histogram %q bucket counts not cumulative", fam)
			}
			prevCum = b.value
		}
		if !sawInf {
			return fmt.Errorf("obs: prom: histogram %q missing le=\"+Inf\" bucket", fam)
		}
		if buckets[len(buckets)-1].value != count.value {
			return fmt.Errorf("obs: prom: histogram %q +Inf bucket %g != count %g",
				fam, buckets[len(buckets)-1].value, count.value)
		}
	}
	return nil
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// splitPromSample splits a sample line into name, labels and value string.
func splitPromSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabelPairs(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 1 {
				return "", nil, "", fmt.Errorf("malformed label pair %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, "", fmt.Errorf("label %q value not quoted", k)
			}
			uq, uerr := strconv.Unquote(v)
			if uerr != nil {
				return "", nil, "", fmt.Errorf("label %q value %q: %v", k, v, uerr)
			}
			if !validPromName(k) || strings.Contains(k, ":") {
				return "", nil, "", fmt.Errorf("invalid label name %q", k)
			}
			labels[k] = uq
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("sample %q has no value", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	}
	// An optional trailing timestamp (integer ms) is tolerated.
	if len(fields) > 2 {
		return "", nil, "", fmt.Errorf("sample %q has trailing garbage", line)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, "", fmt.Errorf("sample %q has bad timestamp %q", line, fields[1])
		}
	}
	return name, labels, fields[0], nil
}

// splitLabelPairs splits "a=\"x\",b=\"y\"" on commas outside quotes.
func splitLabelPairs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
