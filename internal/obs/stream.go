package obs

// Live span streaming: a registry may carry a StreamFunc that receives one
// StreamEvent per span open, span close and span event, in real time, as the
// instrumented code runs. This is the feed behind the service layer's
// Server-Sent-Events job-progress endpoint: the snapshot exporters show what
// a run did, the stream shows what it is doing.
//
// The hook must be installed with SetStream before any span is created —
// typically right after NewRegistry — because span creation reads the field
// without synchronization (the install happens-before the run that
// instruments). A nil registry ignores SetStream like every other operation,
// and a registry without a hook pays one nil check per span operation;
// counters, gauges and histograms are never streamed (they are hot-loop
// instruments, sampled via Snapshot instead).
//
// Ordering: events for one span are emitted in open → events → close order,
// and a parent's open always precedes its children's opens (a child is
// created from the parent's handle). Sibling spans on different goroutines
// may interleave arbitrarily; consumers that need one total order must
// serialize in the StreamFunc, which is called concurrently from every
// instrumented goroutine.

// StreamEvent is one live record of the span stream.
type StreamEvent struct {
	// Type is "open", "close" or "event".
	Type string `json:"type"`
	// Span is the span id (matching SpanSnapshot.ID in the final snapshot);
	// Parent its parent span id, -1 for roots.
	Span   int `json:"span"`
	Parent int `json:"parent"`
	// Name is the span name for open/close records, the event name for
	// event records. Cat is always the span's category.
	Name string `json:"name"`
	Cat  string `json:"cat"`
	// TSUS is the registry-relative timestamp in microseconds; DurUS the
	// span duration, set on close records only.
	TSUS  float64 `json:"ts_us"`
	DurUS float64 `json:"dur_us,omitempty"`
	// KV carries an event record's key/value pairs.
	KV []KV `json:"kv,omitempty"`
}

// StreamFunc receives live span records. It is called synchronously on the
// instrumented goroutine and concurrently from parallel workers: keep it
// fast and do your own serialization.
type StreamFunc func(StreamEvent)

// SetStream installs fn as the registry's live span feed. Install before the
// first span is created; installing on a nil registry is a no-op.
func (r *Registry) SetStream(fn StreamFunc) {
	if r == nil {
		return
	}
	r.stream = fn
}
