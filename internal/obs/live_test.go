package obs

import (
	"bytes"
	"strings"
	"testing"
)

// --- stream hook ---

func TestStreamEmitsOpenEventClose(t *testing.T) {
	reg := NewRegistry()
	var got []StreamEvent
	reg.SetStream(func(ev StreamEvent) { got = append(got, ev) })

	flow := reg.Root("flow:test")
	phase := flow.Child("phase:work")
	phase.Event("tick", "k", "v")
	phase.End()
	phase.End() // double End must not emit a second close
	flow.End()

	want := []struct{ typ, name string }{
		{"open", "flow:test"},
		{"open", "phase:work"},
		{"event", "tick"},
		{"close", "phase:work"},
		{"close", "flow:test"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d stream events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Type != w.typ || got[i].Name != w.name {
			t.Fatalf("event %d = %q/%q, want %q/%q", i, got[i].Type, got[i].Name, w.typ, w.name)
		}
	}
	if got[1].Parent != got[0].Span {
		t.Fatalf("child open parent %d != root span %d", got[1].Parent, got[0].Span)
	}
	if got[3].DurUS < 0 {
		t.Fatalf("close record has negative duration %v", got[3].DurUS)
	}
	if len(got[2].KV) != 1 || got[2].KV[0].Key != "k" || got[2].KV[0].Value != "v" {
		t.Fatalf("event record kv = %+v", got[2].KV)
	}
	if got[2].Cat != "phase" {
		t.Fatalf("event record cat = %q, want phase", got[2].Cat)
	}

	// Stream ids must match the exported snapshot ids.
	snap := reg.Snapshot()
	if snap.Spans[0].ID != got[0].Span || snap.Spans[1].ID != got[1].Span {
		t.Fatalf("stream ids %d/%d do not match snapshot ids %d/%d",
			got[0].Span, got[1].Span, snap.Spans[0].ID, snap.Spans[1].ID)
	}
}

func TestStreamNilSafety(t *testing.T) {
	var reg *Registry
	reg.SetStream(func(StreamEvent) { t.Fatal("stream on nil registry") })
	sp := reg.Root("flow:x")
	sp.Event("e")
	sp.End()

	// Enabled registry without a hook must work as before.
	reg2 := NewRegistry()
	flow := reg2.Root("flow:x")
	flow.End()
	if n := len(reg2.Snapshot().Spans); n != 1 {
		t.Fatalf("hookless registry exported %d spans, want 1", n)
	}
}

// --- MergeRetain ---

func TestMergeRetain(t *testing.T) {
	src := NewRegistry()
	src.Counter("c").Add(3)
	flow := src.Root("flow:r")
	flow.End()
	snap := src.Snapshot()

	agg := NewRegistry()
	var retained *Snapshot
	agg.MergeRetain(snap, func(s *Snapshot) { retained = s })

	if got := agg.Counter("c").Value(); got != 3 {
		t.Fatalf("merged counter = %d, want 3", got)
	}
	if len(agg.Snapshot().Spans) != 0 {
		t.Fatal("MergeRetain leaked spans into the aggregate registry")
	}
	if retained == nil || len(retained.Spans) != 1 {
		t.Fatalf("retain callback got %+v, want the 1-span snapshot", retained)
	}

	// A span-free snapshot must not invoke retain.
	retained = nil
	spanless := NewRegistry()
	spanless.Counter("c").Inc()
	agg.MergeRetain(spanless.Snapshot(), func(s *Snapshot) { retained = s })
	if retained != nil {
		t.Fatal("retain invoked for a span-free snapshot")
	}
	// Nil retain degrades to Merge.
	agg.MergeRetain(snap, nil)
	if got := agg.Counter("c").Value(); got != 7 {
		t.Fatalf("counter after nil-retain merge = %d, want 7", got)
	}
}

// --- TraceRing ---

func ringSnap(spans int) *Snapshot {
	reg := NewRegistry()
	root := reg.Root("flow:ring")
	for i := 1; i < spans; i++ {
		root.Child("phase:p").End()
	}
	root.End()
	return reg.Snapshot()
}

func TestTraceRingBasics(t *testing.T) {
	tr := NewTraceRing(2, 1<<20)
	tr.Put("a", "trace-a", ringSnap(1))
	tr.Put("b", "trace-b", ringSnap(1))

	trace, snap, ok := tr.Get("a")
	if !ok || trace != "trace-a" || len(snap.Spans) != 1 {
		t.Fatalf("Get(a) = %q/%v/%v", trace, snap, ok)
	}

	tr.Put("c", "trace-c", ringSnap(1)) // evicts oldest ("a")
	if _, _, ok := tr.Get("a"); ok {
		t.Fatal("oldest entry survived entry-count eviction")
	}
	if _, _, ok := tr.Get("b"); !ok {
		t.Fatal("entry b evicted prematurely")
	}
	entries, bytes, evictions := tr.Stats()
	if entries != 2 || evictions != 1 || bytes <= 0 {
		t.Fatalf("Stats = %d/%d/%d, want 2 entries, 1 eviction, >0 bytes", entries, bytes, evictions)
	}
}

func TestTraceRingByteBoundKeepsNewest(t *testing.T) {
	tr := NewTraceRing(100, 1) // absurdly small byte bound
	tr.Put("big1", "t1", ringSnap(5))
	if entries, _, _ := tr.Stats(); entries != 1 {
		t.Fatalf("newest oversized entry evicted: %d entries", entries)
	}
	tr.Put("big2", "t2", ringSnap(5))
	if _, _, ok := tr.Get("big1"); ok {
		t.Fatal("over-budget older entry survived")
	}
	if _, _, ok := tr.Get("big2"); !ok {
		t.Fatal("newest entry must always be retained")
	}
}

func TestTraceRingReplaceSameID(t *testing.T) {
	tr := NewTraceRing(2, 1<<20)
	tr.Put("a", "t1", ringSnap(1))
	tr.Put("b", "tb", ringSnap(1))
	tr.Put("a", "t2", ringSnap(3)) // replace refreshes position: "b" is now oldest
	entries, _, _ := tr.Stats()
	if entries != 2 {
		t.Fatalf("replace grew the ring to %d entries", entries)
	}
	trace, snap, ok := tr.Get("a")
	if !ok || trace != "t2" || len(snap.Spans) != 3 {
		t.Fatalf("replaced entry = %q, %d spans, %v", trace, len(snap.Spans), ok)
	}
	tr.Put("c", "tc", ringSnap(1))
	if _, _, ok := tr.Get("b"); ok {
		t.Fatal("refresh did not move replaced entry to newest (b should be evicted)")
	}
	if _, _, ok := tr.Get("a"); !ok {
		t.Fatal("refreshed entry evicted")
	}
}

func TestTraceRingNil(t *testing.T) {
	var tr *TraceRing
	tr.Put("a", "t", ringSnap(1))
	if _, _, ok := tr.Get("a"); ok {
		t.Fatal("nil ring returned an entry")
	}
	if e, b, ev := tr.Stats(); e != 0 || b != 0 || ev != 0 {
		t.Fatal("nil ring has non-zero stats")
	}
}

// --- Prometheus exposition ---

func promSnapshot() *Snapshot {
	reg := NewRegistry()
	reg.Counter("serve.requests").Add(12)
	reg.Counter("serve.cache_hits").Add(3)
	reg.Gauge("serve.queue_depth").Set(2)
	h := reg.Histogram("serve.latency_us", 10, 100, 1000)
	for _, v := range []int64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	return reg.Snapshot()
}

func TestWritePromRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := promSnapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateProm(buf.Bytes()); err != nil {
		t.Fatalf("ValidateProm rejected WriteProm output: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE serve_requests counter\nserve_requests 12\n",
		"# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n",
		"# TYPE serve_latency_us histogram\n",
		"serve_latency_us_bucket{le=\"10\"} 1\n",
		"serve_latency_us_bucket{le=\"100\"} 2\n",
		"serve_latency_us_bucket{le=\"1000\"} 3\n",
		"serve_latency_us_bucket{le=\"+Inf\"} 4\n",
		"serve_latency_us_sum 5555\n",
		"serve_latency_us_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := promSnapshot().WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Fatal("WriteProm output is not deterministic")
	}
}

func TestPromNameSanitization(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("engine.bdd-nodes").Inc()
	reg.Counter("1weird").Inc()
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "engine_bdd_nodes 1\n") {
		t.Fatalf("dots/dashes not sanitized:\n%s", out)
	}
	if !strings.Contains(out, "_1weird 1\n") {
		t.Fatalf("leading digit not sanitized:\n%s", out)
	}
	if err := ValidateProm(buf.Bytes()); err != nil {
		t.Fatalf("sanitized output rejected: %v", err)
	}
}

func TestPromCollisionDisambiguation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Add(1)
	reg.Counter("a_b").Add(2)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a_b 1\n") || !strings.Contains(out, "a_b_2 2\n") {
		t.Fatalf("collision not disambiguated deterministically:\n%s", out)
	}
	if err := ValidateProm(buf.Bytes()); err != nil {
		t.Fatalf("disambiguated output rejected: %v", err)
	}
}

func TestValidatePromRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no-newline", "# TYPE a counter\na 1"},
		{"sample-without-type", "a 1\n"},
		{"duplicate-type", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"bad-name", "# TYPE a-b counter\na-b 1\n"},
		{"bad-value", "# TYPE a counter\na xyz\n"},
		{"unknown-type", "# TYPE a widget\na 1\n"},
		{"bare-histogram-sample", "# TYPE h histogram\nh 1\n"},
		{"histogram-no-inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram-no-sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"histogram-no-count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n"},
		{"histogram-not-cumulative",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n"},
		{"histogram-descending-le",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"},
		{"histogram-inf-count-mismatch",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 5\n"},
		{"bucket-without-le", "# TYPE h histogram\nh_bucket{x=\"1\"} 1\n"},
		{"unterminated-labels", "# TYPE a counter\na{x=\"1\" 1\n"},
		{"unquoted-label", "# TYPE a counter\na{x=1} 1\n"},
		{"malformed-type-line", "# TYPE a\na 1\n"},
	}
	for _, tc := range cases {
		if err := ValidateProm([]byte(tc.in)); err == nil {
			t.Errorf("%s: ValidateProm accepted bad input:\n%s", tc.name, tc.in)
		}
	}
}

func TestValidatePromAcceptsTolerated(t *testing.T) {
	good := []string{
		"# TYPE a counter\n# HELP a something\na 1\n",
		"# TYPE a gauge\na 1.5\n",
		"# TYPE a counter\na 1 1712345678000\n", // trailing timestamp
		"# TYPE a counter\na{shard=\"3\"} 1\n",  // labeled counter
	}
	for _, in := range good {
		if err := ValidateProm([]byte(in)); err != nil {
			t.Errorf("ValidateProm rejected tolerable input %q: %v", in, err)
		}
	}
}
