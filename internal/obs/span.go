package obs

import (
	"strings"
	"sync"
)

// Span is one node of the hierarchical trace: flow → phase → engine → worker.
// A span's category is the prefix of its name before the first ':' ("flow",
// "phase", "engine", "worker"); the exporters group and validate on it.
// Spans are created by Registry.Root and Span.Child, closed with End, and
// may record timestamped key/value events and span-level attributes.
//
// The nil *Span is the disabled sink: Child returns nil, every other method
// is a no-op, and Registry returns nil — so a whole instrumented call tree
// collapses to nil-checks when observability is off.
type Span struct {
	reg    *Registry
	id     int
	parent int // span id, -1 for roots
	name   string
	lane   int // trace_event tid; workers get their own lanes
	start  int64

	mu     sync.Mutex
	end    int64 // 0 = still open
	attrs  []KV
	events []spanEvent
}

// KV is one key/value pair of a span attribute or event.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type spanEvent struct {
	name string
	ts   int64
	kv   []KV
}

// Root opens a top-level span. Returns nil on a nil registry.
func (r *Registry) Root(name string) *Span {
	if r == nil {
		return nil
	}
	return r.newSpan(name, -1, 0)
}

func (r *Registry) newSpan(name string, parent, lane int) *Span {
	s := &Span{reg: r, parent: parent, name: name, lane: lane, start: r.since()}
	r.mu.Lock()
	s.id = len(r.spans)
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	if r.stream != nil {
		r.stream(StreamEvent{
			Type: "open", Span: s.id, Parent: parent,
			Name: name, Cat: Category(name), TSUS: float64(s.start) / 1e3,
		})
	}
	return s
}

// Child opens a sub-span on the same lane. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.reg.newSpan(name, s.id, s.lane)
}

// ChildLane opens a sub-span on its own lane (trace_event tid) — used for
// worker spans so parallel work renders as parallel tracks. Lane 0 is the
// main flow; workers conventionally use 1-based worker indexes.
func (s *Span) ChildLane(name string, lane int) *Span {
	if s == nil {
		return nil
	}
	return s.reg.newSpan(name, s.id, lane)
}

// End closes the span. Ending twice keeps the first end time (and streams a
// single close record); exporting an unended span uses the export time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.reg.since()
	s.mu.Lock()
	first := s.end == 0
	if first {
		s.end = now
	}
	s.mu.Unlock()
	if first && s.reg.stream != nil {
		s.reg.stream(StreamEvent{
			Type: "close", Span: s.id, Parent: s.parent,
			Name: s.name, Cat: Category(s.name),
			TSUS: float64(now) / 1e3, DurUS: float64(now-s.start) / 1e3,
		})
	}
}

// Attr records a span-level key/value attribute (exported under trace_event
// "args").
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, KV{Key: key, Value: value})
	s.mu.Unlock()
}

// Event records a timestamped instant event with optional key/value pairs
// (kv is consumed as key1, value1, key2, value2, ...).
func (s *Span) Event(name string, kv ...string) {
	if s == nil {
		return
	}
	ev := spanEvent{name: name, ts: s.reg.since()}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.kv = append(ev.kv, KV{Key: kv[i], Value: kv[i+1]})
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	if s.reg.stream != nil {
		s.reg.stream(StreamEvent{
			Type: "event", Span: s.id, Parent: s.parent,
			Name: name, Cat: Category(s.name),
			TSUS: float64(ev.ts) / 1e3, KV: append([]KV(nil), ev.kv...),
		})
	}
}

// Registry returns the registry the span records into (nil on a nil span) —
// the handle engines use to look up their counters.
func (s *Span) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Category returns the span-name prefix before the first ':' ("flow",
// "phase", "engine", "worker"), or the whole name when there is no colon.
func Category(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}
