package obs

import "testing"

// BenchmarkObsDisabledOverhead is the regression guard for the nil-sink fast
// path: the per-call cost of disabled instruments must stay at a nil check
// (sub-nanosecond, zero allocations), because engines call these on per-state
// hot loops. Run with -benchmem; allocs/op must be 0.
func BenchmarkObsDisabledOverhead(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var sp *Span

	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			c.Add(3)
		}
	})
	b.Run("gauge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
			g.Max(int64(i))
		}
	})
	b.Run("histogram", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i))
		}
	})
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			child := sp.Child("engine:x")
			child.Event("e")
			child.End()
		}
	})
	b.Run("registry-lookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.Counter("reach.states")
		}
	})
}

// BenchmarkObsEnabledCounter calibrates the enabled path: one atomic add plus
// the nil check. The delta against the disabled run is the true cost of
// turning metrics on.
func BenchmarkObsEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
