package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("counter lookup is not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Max(3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after Max(3) = %d, want 7", got)
	}
	g.Max(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after Max(10) = %d, want 10", got)
	}
	h := r.Histogram("h", 1, 2, 4, 8)
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("histogram count = %d, want 4", got)
	}
	hs := r.Snapshot().Histograms["h"]
	want := []int64{1, 1, 1, 0, 1} // bucket ≤1, ≤2, ≤4, ≤8, overflow
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("histogram counts = %v, want %v", hs.Counts, want)
		}
	}
	if hs.Sum != 106 {
		t.Fatalf("histogram sum = %d, want 106", hs.Sum)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("g")
	g.Set(1)
	g.Max(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("h", 1, 2)
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram has samples")
	}
	sp := r.Root("flow:x")
	if sp != nil {
		t.Fatal("nil registry produced a span")
	}
	child := sp.Child("engine:y")
	child.Attr("k", "v")
	child.Event("e", "k", "v")
	child.End()
	if child.Registry() != nil {
		t.Fatal("nil span has a registry")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if err := r.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTrace(nil); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPathAllocs is the zero-alloc guarantee of the nil sink: the
// exact calls engines make on hot paths — counter updates, span creation and
// events, registry lookups — must not allocate when observability is off.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry
	var sp *Span
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		g.Set(3)
		g.Max(9)
		h.Observe(5)
	}); n != 0 {
		t.Fatalf("disabled instrument calls allocate %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		child := sp.Child("engine:x")
		child.Attr("k", "v")
		child.Event("step")
		child.End()
		_ = child.Registry()
	}); n != 0 {
		t.Fatalf("disabled span calls allocate %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = r.Counter("reach.states")
		_ = r.Gauge("reach.workers")
		_ = r.Root("flow:x")
	}); n != 0 {
		t.Fatalf("disabled registry lookups allocate %.1f/op, want 0", n)
	}
}

// TestConcurrentRegistry exercises concurrent instrument and span writes from
// a worker pool; run under -race by the verification gate.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	root := r.Root("flow:test")
	eng := root.Child("engine:pool")
	const workers, n = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("work.items")
			g := r.Gauge("work.depth")
			h := r.Histogram("work.sizes", 1, 10, 100)
			sp := eng.ChildLane(fmt.Sprintf("worker:%d", w), w+1)
			for i := 0; i < n; i++ {
				c.Inc()
				g.Max(int64(i))
				h.Observe(int64(i % 200))
				if i%100 == 0 {
					sp.Event("checkpoint", "i", fmt.Sprint(i))
				}
			}
			sp.End()
		}(w)
	}
	wg.Wait()
	eng.End()
	root.End()
	snap := r.Snapshot()
	if got := snap.Counters["work.items"]; got != workers*n {
		t.Fatalf("work.items = %d, want %d", got, workers*n)
	}
	if got := snap.Gauges["work.depth"]; got != n-1 {
		t.Fatalf("work.depth = %d, want %d", got, n-1)
	}
	if len(snap.Spans) != 2+workers {
		t.Fatalf("span count = %d, want %d", len(snap.Spans), 2+workers)
	}
	if err := snap.ValidateHierarchy(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.Root("flow:x")
	sp.End()
	first := r.Snapshot().Spans[0].DurUS
	sp.End()
	if again := r.Snapshot().Spans[0].DurUS; again != first {
		t.Fatalf("second End changed the duration: %v != %v", again, first)
	}
}
