// Package obs is the unified observability layer of the synthesis flow:
// a zero-dependency metrics registry (atomic counters, gauges, fixed-bucket
// histograms) plus hierarchical spans (flow → phase → engine → worker) with
// key/value events, exported as a JSON summary and as Chrome trace_event
// JSON for about://tracing.
//
// Disabled observability is free: a nil *Registry, and every instrument or
// span derived from one, is a valid no-op sink — every method nil-checks its
// receiver and returns immediately, with zero allocations. Engines therefore
// thread *obs.Span / *obs.Registry through their Options unconditionally and
// instrument hot loops without guarding call sites.
//
// Instruments are looked up by name once per engine invocation (a mutex-map
// lookup) and then updated lock-free with atomics, so worker pools may hammer
// the same counter concurrently. Span event/attribute recording takes a
// per-span mutex; spans themselves are cheap but not meant for per-state
// granularity — counters are.
//
// # Aggregation contract
//
// Long-running processes fold many short-lived per-request registries into
// one aggregate via Merge, which combines scalar instruments only: counters
// add, gauges raise to the larger value, histograms merge bucket-for-bucket.
// Span trees are deliberately NOT merged — spans are per-request data, and an
// aggregate registry that accumulated every request's tree would grow without
// bound. A caller that wants to keep them has two supported paths: MergeRetain
// hands the snapshot (spans intact) to a retention callback in the same call
// that folds the scalars, and TraceRing is the bounded newest-N store built
// for exactly that callback. Live consumers subscribe with SetStream instead
// and receive span open/close/event records as they happen.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns the instruments and the span tree of one run. The zero value
// is not usable; construct with NewRegistry. A nil *Registry is the disabled
// sink: every derived instrument and span is nil and every operation on them
// is a no-op.
type Registry struct {
	epoch time.Time

	// stream, when set (SetStream, before the first span), receives live
	// span open/close/event records. Read without synchronization on the
	// span paths: the install must happen-before the instrumented run.
	stream StreamFunc

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	spans      []*Span
}

// NewRegistry returns an enabled registry; its epoch (span timestamp zero) is
// the call time.
func NewRegistry() *Registry {
	return &Registry{
		epoch:      time.Now(),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil —
// the no-op counter — on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given ascending
// bucket upper bounds on first use (later calls reuse the existing buckets).
// With no buckets given, Pow2Buckets(20) is used. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, buckets ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(buckets) == 0 {
			buckets = Pow2Buckets(20)
		}
		h = &Histogram{bounds: append([]int64(nil), buckets...)}
		h.counts = make([]atomic.Int64, len(h.bounds)+1)
		r.histograms[name] = h
	}
	return h
}

// Pow2Buckets returns the power-of-two bucket bounds 1, 2, 4, ..., 2^maxExp.
func Pow2Buckets(maxExp int) []int64 {
	out := make([]int64, maxExp+1)
	for i := range out {
		out[i] = int64(1) << uint(i)
	}
	return out
}

// Counter is a monotonically increasing atomic counter. The nil *Counter is
// the no-op sink.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value/max instrument. The nil *Gauge is the no-op
// sink.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v is larger (CAS loop, safe under
// concurrency).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram: Observe(v) increments the count of
// the first bucket whose upper bound is ≥ v, or the overflow bucket. The nil
// *Histogram is the no-op sink.
type Histogram struct {
	bounds []int64        // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of samples (0 on the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// since returns the registry-relative timestamp in nanoseconds.
func (r *Registry) since() int64 { return int64(time.Since(r.epoch)) }
