// Package gen generates scalable specification families: the workloads for
// the Section 2.2 engine comparisons (explicit vs symbolic vs unfolding vs
// partial-order reachability), where concurrency makes explicit state spaces
// explode exponentially while the structure stays linear.
package gen

import (
	"fmt"

	"repro/internal/petri"
	"repro/internal/stg"
)

// MullerPipeline builds an n-stage Muller pipeline control STG: request/
// acknowledge handshakes r_i/a_i chained through C-element-like causality.
// Stage i's acknowledge a_i rises after r_i rises and falls after r_i falls;
// r_{i+1} follows a_i. The state space grows exponentially with n while the
// net grows linearly.
func MullerPipeline(n int) *stg.STG {
	g := stg.New(fmt.Sprintf("muller-%d", n))
	rp := make([]int, n)
	rm := make([]int, n)
	ap := make([]int, n)
	am := make([]int, n)
	for i := 0; i < n; i++ {
		r := g.AddSignal(fmt.Sprintf("r%d", i), stg.Input)
		a := g.AddSignal(fmt.Sprintf("a%d", i), stg.Output)
		rp[i] = g.AddTransition(r, stg.Rise)
		rm[i] = g.AddTransition(r, stg.Fall)
		ap[i] = g.AddTransition(a, stg.Rise)
		am[i] = g.AddTransition(a, stg.Fall)
	}
	net := g.Net
	for i := 0; i < n; i++ {
		// Local handshake: r+ -> a+ -> r- -> a- -> r+ (token closes loop).
		net.Implicit(rp[i], ap[i], 0)
		net.Implicit(ap[i], rm[i], 0)
		net.Implicit(rm[i], am[i], 0)
		net.Implicit(am[i], rp[i], 1)
		if i+1 < n {
			// Pipeline coupling: the next request follows this stage's ack,
			// and this stage cannot re-request until the next acked.
			net.Implicit(ap[i], rp[i+1], 0)
			net.Implicit(am[i+1], rp[i], 1)
		}
	}
	return g
}

// IndependentToggles builds n completely independent two-phase toggles:
// 2^n reachable markings from 2n transitions — the worst case for explicit
// enumeration and the best case for symbolic/unfolding methods.
func IndependentToggles(n int) *petri.Net {
	net := petri.New(fmt.Sprintf("toggles-%d", n))
	for i := 0; i < n; i++ {
		up := net.AddTransition(fmt.Sprintf("u%d", i))
		dn := net.AddTransition(fmt.Sprintf("d%d", i))
		p0 := net.AddPlace(fmt.Sprintf("lo%d", i), 1)
		p1 := net.AddPlace(fmt.Sprintf("hi%d", i), 0)
		net.ArcPT(p0, up)
		net.ArcTP(up, p1)
		net.ArcPT(p1, dn)
		net.ArcTP(dn, p0)
	}
	return net
}

// CSCRing builds a k-stage ring of "double-pulse" cells, the scalable
// CSC-conflict-rich family used to benchmark the state-encoding solver.
// Stage i drives two output signals a_i and b_i through the cycle
//
//	a_i+ ; a_i- ; b_i+ ; b_{i-1}- ; a_i+/1 ; a_i-/1 ; (advance to stage i+1)
//
// chained into one global cycle (a live safe marked graph, hence persistent
// and deadlock-free). The double pulse of a_i revisits the stage's entry
// code twice, producing exactly two CSC conflict pairs per stage; the
// overlapped handoff of the b signals (b_i rises before b_{i-1} falls) keeps
// a distinct b-bit high at every stage boundary, so conflicts never cross
// stages and the spec is solvable by inserting exactly one state signal per
// stage (csc_i+ after a_i+, csc_i- after a_i+/1 splits both pairs).
// The state graph has 6k states and the net 6k transitions, so the solver's
// candidate space grows quadratically with k while every candidate rebuild
// stays linear — the worst case for the serial search and the best target
// for the memoized parallel one. k is clamped to at least 2: the k=1 ring
// degenerates (its b pulse separates the two a pulses, which needs two
// inserted signals instead of one).
func CSCRing(k int) *stg.STG {
	if k < 2 {
		k = 2
	}
	g := stg.New(fmt.Sprintf("cscring-%d", k))
	a1 := make([]int, k) // a_i+
	a2 := make([]int, k) // a_i-
	b1 := make([]int, k) // b_i+
	b2 := make([]int, k) // b_i-
	a3 := make([]int, k) // a_i+/1
	a4 := make([]int, k) // a_i-/1
	for i := 0; i < k; i++ {
		a := g.AddSignal(fmt.Sprintf("a%d", i), stg.Output)
		b := g.AddSignal(fmt.Sprintf("b%d", i), stg.Output)
		a1[i] = g.AddTransition(a, stg.Rise)
		a2[i] = g.AddTransition(a, stg.Fall)
		b1[i] = g.AddTransition(b, stg.Rise)
		b2[i] = g.AddTransition(b, stg.Fall)
		a3[i] = g.AddTransition(a, stg.Rise)
		a4[i] = g.AddTransition(a, stg.Fall)
	}
	net := g.Net
	for i := 0; i < k; i++ {
		prev := (i + k - 1) % k
		net.Chain(a1[i], a2[i], b1[i])
		// Handoff: b_{i-1} falls only after b_i has risen, so some b bit is
		// high at every stage boundary (b_{k-1} is initially high).
		net.Chain(b1[i], b2[prev], a3[i], a4[i])
		// Advance to the next stage; the single global token starts in front
		// of stage 0.
		tokens := 0
		if i == k-1 {
			tokens = 1
		}
		net.Implicit(a4[i], a1[(i+1)%k], tokens)
	}
	return g
}

// MarkedGraphRing builds a k-stage ring with the given number of tokens —
// a linear-size net with a polynomial state space, used for calibration.
func MarkedGraphRing(k, tokens int) *petri.Net {
	net := petri.New(fmt.Sprintf("ring-%d-%d", k, tokens))
	ts := make([]int, k)
	for i := range ts {
		ts[i] = net.AddTransition(fmt.Sprintf("t%d", i))
	}
	for i := 0; i < k; i++ {
		init := 0
		if i < tokens {
			init = 1
		}
		p := net.AddPlace(fmt.Sprintf("p%d", i), init)
		net.ArcTP(ts[i], p)
		net.ArcPT(p, ts[(i+1)%k])
	}
	return net
}

// Philosophers builds the n dining philosophers as a safe net (thinking /
// has-left / eating cycle per philosopher, one fork place between
// neighbours). Deadlockable when every philosopher holds the left fork —
// the classic target for deadlock detection engines.
func Philosophers(n int) *petri.Net {
	net := petri.New(fmt.Sprintf("phil-%d", n))
	fork := make([]int, n)
	for i := 0; i < n; i++ {
		fork[i] = net.AddPlace(fmt.Sprintf("fork%d", i), 1)
	}
	for i := 0; i < n; i++ {
		think := net.AddPlace(fmt.Sprintf("think%d", i), 1)
		hasL := net.AddPlace(fmt.Sprintf("hasL%d", i), 0)
		eat := net.AddPlace(fmt.Sprintf("eat%d", i), 0)
		takeL := net.AddTransition(fmt.Sprintf("takeL%d", i))
		takeR := net.AddTransition(fmt.Sprintf("takeR%d", i))
		release := net.AddTransition(fmt.Sprintf("rel%d", i))
		left := fork[i]
		right := fork[(i+1)%n]
		net.ArcPT(think, takeL)
		net.ArcPT(left, takeL)
		net.ArcTP(takeL, hasL)
		net.ArcPT(hasL, takeR)
		net.ArcPT(right, takeR)
		net.ArcTP(takeR, eat)
		net.ArcPT(eat, release)
		net.ArcTP(release, think)
		net.ArcTP(release, left)
		net.ArcTP(release, right)
	}
	return net
}

// PipelineSTGDepth reports the explicit state count expected for
// MullerPipeline(n) — exponential in n — useful for sizing benchmarks.
func PipelineSTGDepth(n int) int {
	if n > 30 {
		return 1 << 30
	}
	return 1 << uint(n)
}
