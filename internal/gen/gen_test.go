package gen

import (
	"testing"

	"repro/internal/reach"
)

func TestMullerPipelineShape(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		g := MullerPipeline(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("muller-%d: %v", n, err)
		}
		if len(g.Signals) != 2*n || len(g.Net.Transitions) != 4*n {
			t.Fatalf("muller-%d: %d signals, %d transitions", n, len(g.Signals), len(g.Net.Transitions))
		}
		sg, err := reach.BuildSG(g, reach.Options{})
		if err != nil {
			t.Fatalf("muller-%d: %v", n, err)
		}
		if len(sg.Deadlocks()) != 0 {
			t.Fatalf("muller-%d deadlocks", n)
		}
		if !sg.CheckImplementability().Consistent {
			t.Fatalf("muller-%d inconsistent", n)
		}
	}
}

func TestMullerPipelineGrowth(t *testing.T) {
	prev := 0
	for _, n := range []int{2, 3, 4} {
		g := MullerPipeline(n)
		rg, err := reach.Explore(g.Net, reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rg.NumStates() <= prev {
			t.Fatalf("state count must grow with depth: %d then %d", prev, rg.NumStates())
		}
		prev = rg.NumStates()
	}
}

func TestIndependentToggles(t *testing.T) {
	net := IndependentToggles(6)
	rg, err := reach.Explore(net, reach.Options{RequireSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumStates() != 64 {
		t.Fatalf("toggles-6: %d states, want 64", rg.NumStates())
	}
	if len(rg.Deadlocks()) != 0 {
		t.Fatal("toggles never deadlock")
	}
}

func TestMarkedGraphRing(t *testing.T) {
	net := MarkedGraphRing(5, 1)
	if !net.IsMarkedGraph() || !net.StronglyConnected() {
		t.Fatal("ring must be a strongly connected MG")
	}
	rg, err := reach.Explore(net, reach.Options{RequireSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	if rg.NumStates() != 5 {
		t.Fatalf("single-token ring of 5: %d states", rg.NumStates())
	}
}

func TestPhilosophers(t *testing.T) {
	net := Philosophers(3)
	rg, err := reach.Explore(net, reach.Options{RequireSafe: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rg.Deadlocks()) == 0 {
		t.Fatal("philosophers must be able to deadlock")
	}
	// The deadlock is the all-left-forks marking: every hasL marked.
	dead := rg.Markings[rg.Deadlocks()[0]]
	for i := 0; i < 3; i++ {
		if dead[net.PlaceIndex("hasL"+string(rune('0'+i)))] != 1 {
			t.Fatal("deadlock must be the circular-wait marking")
		}
	}
}

// TestCSCRing pins the family's contract: a live safe marked graph with
// 6k transitions and 6k states, conflict-rich (at least 2 CSC conflict pairs
// per stage) but persistent and deadlock-free, so the only missing
// implementability property is state coding.
func TestCSCRing(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		g := CSCRing(k)
		if err := g.Validate(); err != nil {
			t.Fatalf("cscring-%d: %v", k, err)
		}
		if !g.Net.IsMarkedGraph() || !g.Net.StronglyConnected() {
			t.Fatalf("cscring-%d must be a strongly connected marked graph", k)
		}
		if len(g.Net.Transitions) != 6*k || len(g.Signals) != 2*k {
			t.Fatalf("cscring-%d: %d transitions, %d signals",
				k, len(g.Net.Transitions), len(g.Signals))
		}
		sg, err := reach.BuildSG(g, reach.Options{})
		if err != nil {
			t.Fatalf("cscring-%d: %v", k, err)
		}
		if sg.NumStates() != 6*k {
			t.Fatalf("cscring-%d: %d states, want %d", k, sg.NumStates(), 6*k)
		}
		imp := sg.CheckImplementability()
		if !imp.Consistent || !imp.Persistent || !imp.DeadlockFree {
			t.Fatalf("cscring-%d: %v", k, imp)
		}
		if imp.CSC {
			t.Fatalf("cscring-%d must have CSC conflicts", k)
		}
		if got := len(sg.CSCConflicts()); got < 2*k {
			t.Fatalf("cscring-%d: %d conflicts, want >= %d", k, got, 2*k)
		}
	}
	if CSCRing(0).Name() != "cscring-2" {
		t.Fatal("k < 2 must clamp to 2")
	}
}

func TestPipelineSTGDepth(t *testing.T) {
	if PipelineSTGDepth(4) != 16 || PipelineSTGDepth(40) != 1<<30 {
		t.Fatal("depth estimate broken")
	}
}
