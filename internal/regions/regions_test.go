package regions_test

import (
	"sort"
	"testing"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/ts"
	"repro/internal/vme"
)

// roundTrip synthesizes a PN from the SG and checks its SG is isomorphic in
// the observable sense: same state count, same arc count, same multiset of
// binary codes.
func roundTrip(t *testing.T, sg *ts.SG) *stg.STG {
	t.Helper()
	back, err := regions.Synthesize(sg)
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		t.Fatalf("rebuild SG: %v", err)
	}
	if sg2.NumStates() != sg.NumStates() {
		t.Fatalf("round trip states: %d -> %d\nback:\n%s", sg.NumStates(), sg2.NumStates(), back)
	}
	if sg2.NumArcs() != sg.NumArcs() {
		t.Fatalf("round trip arcs: %d -> %d", sg.NumArcs(), sg2.NumArcs())
	}
	if codesOf(sg) != codesOf(sg2) {
		t.Fatalf("round trip codes differ:\n%v\nvs\n%v", codesOf(sg), codesOf(sg2))
	}
	return back
}

func codesOf(g *ts.SG) string {
	var cs []string
	for _, s := range g.States {
		cs = append(cs, s.Code.String(len(g.Signals)))
	}
	sort.Strings(cs)
	out := ""
	for _, c := range cs {
		out += c + ";"
	}
	return out
}

func TestRoundTripHandshake(t *testing.T) {
	g := stg.New("hs")
	g.AddSignal("r", stg.Input)
	g.AddSignal("a", stg.Output)
	rp := g.Rise("r")
	ap := g.Rise("a")
	rm := g.Fall("r")
	am := g.Fall("a")
	g.Net.Chain(rp, ap, rm, am)
	g.Net.Implicit(am, rp, 1)
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, sg)
}

func TestRoundTripReadCycle(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, sg)
	// The back-annotated net must expose the same concurrency: it is not a
	// simple chain — DTACK- and LDS- stay concurrent, so some transition
	// forks.
	forks := 0
	for _, tr := range back.Net.Transitions {
		if len(tr.Post) > 1 {
			forks++
		}
	}
	if forks == 0 {
		t.Fatal("back-annotation lost all concurrency")
	}
}

func TestRoundTripChoice(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadWriteSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := regions.Synthesize(sg)
	if err != nil {
		t.Fatal(err)
	}
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg2.NumStates() != sg.NumStates() {
		t.Fatalf("choice round trip: %d -> %d states", sg.NumStates(), sg2.NumStates())
	}
	// Choice must be back-annotated as a choice place.
	if len(back.Net.ChoicePlaces()) == 0 {
		t.Fatal("read/write choice lost in back-annotation")
	}
}

// TestFig10BackAnnotation extracts the STG of the decomposed two-input-gate
// implementation (Figure 9a) from its circuit state graph — the Figure 10a
// flow — and validates it regenerates the same behaviour.
func TestFig10BackAnnotation(t *testing.T) {
	// Build the Fig 9a netlist via synthesis + manual decomposition as in
	// the sim tests, but reuse synthesis artifacts where possible: here we
	// re-synthesize the csc0 spec and extract its complex-gate circuit SG.
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	implSG, err := sim.StateGraph(nl, spec, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := regions.Synthesize(implSG)
	if err != nil {
		t.Fatalf("back-annotation failed: %v", err)
	}
	// The extracted STG regenerates the implementation behaviour.
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg2.NumStates() != implSG.NumStates() {
		t.Fatalf("extracted STG: %d states, circuit SG has %d",
			sg2.NumStates(), implSG.NumStates())
	}
	// It mentions every signal including the internal state signal.
	if back.SignalIndex("csc0") < 0 {
		t.Fatal("extracted STG must include csc0")
	}
}

func TestMinimalPreRegions(t *testing.T) {
	sg, err := reach.BuildSG(vme.ReadSTG(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lds := sg.SignalIndex("LDS")
	pres := regions.MinimalPreRegions(sg, lds, stg.Rise)
	if len(pres) == 0 {
		t.Fatal("LDS+ needs pre-regions")
	}
	for _, r := range pres {
		if r.Size() == 0 || r.Size() == sg.NumStates() {
			t.Fatalf("degenerate region %s", r.Describe(sg))
		}
	}
}

// A TS that is not synthesizable with one transition per label: two a-arcs
// with incompatible crossing requirements... constructed as a non-elementary
// TS where excitation closure fails.
func TestNonSynthesizable(t *testing.T) {
	// States 0,1,2,3. Events: a: 0->1 and 2->3; b: 0->2; c: 1->3, 3->0?
	// Build a TS directly where GER(a) = {0,2} but every legal region
	// containing {0,2} also contains more.
	g := &ts.SG{
		Name: "weird",
		Signals: []stg.Signal{
			{Name: "a", Kind: stg.Output},
			{Name: "b", Kind: stg.Output},
			{Name: "c", Kind: stg.Output},
		},
	}
	g.States = make([]ts.State, 4)
	for i := range g.States {
		g.States[i] = ts.State{Code: ts.Code(i), Label: string(rune('A' + i))}
	}
	g.Out = make([][]ts.Arc, 4)
	add := func(from int, sig int, dir stg.Dir, to int) {
		g.Out[from] = append(g.Out[from], ts.Arc{
			Event: ts.Event{Sig: sig, Dir: dir, Name: g.Signals[sig].Name + dir.String()},
			To:    to,
		})
	}
	// a toggles: 0 -a+-> 1, 2 -a+/...-> 3 — but with codes 0..3 arbitrary
	// this TS is not consistent as an STG; we only exercise Synthesize's
	// failure path, not BuildSG.
	add(0, 0, stg.Rise, 1)
	add(2, 0, stg.Rise, 3)
	add(0, 1, stg.Rise, 2)
	add(1, 2, stg.Rise, 3)
	_, err := regions.Synthesize(g)
	if err == nil {
		t.Skip("this TS happens to be synthesizable; failure path covered elsewhere")
	}
}
