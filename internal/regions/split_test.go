package regions_test

import (
	"strings"
	"testing"

	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/stg"
	"repro/internal/ts"
)

// twoContextSpec drives the same output edge from two unrelated contexts: a
// choice between b-triggered and c-triggered handshakes that both pulse a.
// The SG merges the two a+ (and a-) occurrences into one label each; region
// synthesis needs label splitting when a single transition cannot cover both
// excitation regions.
func twoContextSpec(t *testing.T) *ts.SG {
	t.Helper()
	g := stg.New("twoctx")
	g.AddSignal("b", stg.Input)
	g.AddSignal("c", stg.Input)
	g.AddSignal("a", stg.Output)
	n := g.Net
	p0 := n.AddPlace("p0", 1)
	bp := g.Rise("b")
	ap1 := g.Rise("a")
	am1 := g.Fall("a")
	bm := g.Fall("b")
	cp := g.Rise("c")
	ap2 := g.AddTransition(2, stg.Rise)
	am2 := g.AddTransition(2, stg.Fall)
	cm := g.Fall("c")
	n.ArcPT(p0, bp)
	n.ArcPT(p0, cp)
	n.Chain(bp, ap1, am1, bm)
	n.Chain(cp, ap2, am2, cm)
	n.ArcTP(bm, p0)
	n.ArcTP(cm, p0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return mustSG(t, g)
}

func mustSG(t *testing.T, g *stg.STG) *ts.SG {
	t.Helper()
	sg, err := reach.BuildSG(g, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestLabelSplittingRoundTrip(t *testing.T) {
	sg := twoContextSpec(t)
	back, err := regions.Synthesize(sg)
	if err != nil {
		t.Fatalf("synthesis with label splitting failed: %v", err)
	}
	sg2, err := reach.BuildSG(back, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Isomorphic(sg, sg2); err != nil {
		t.Fatalf("split-label round trip not isomorphic: %v", err)
	}
	// Region synthesis may cover both contexts with one merged transition
	// (a single legal pre-region) or split the label into two instances —
	// both are valid as long as the behaviour is preserved (checked by the
	// isomorphism above).
	aPlus := 0
	for _, l := range back.Labels {
		if l.Sig == back.SignalIndex("a") && l.Dir == stg.Rise {
			aPlus++
		}
	}
	if aPlus != 1 && aPlus != 2 {
		t.Fatalf("a+ instances = %d, want 1 or 2\n%s", aPlus, back)
	}
}

// The handmade non-synthesizable TS from the base tests now either splits
// successfully or errors gracefully — never panics, never loops.
func TestSplittingGracefulOnHardTS(t *testing.T) {
	g := &ts.SG{
		Name: "weird",
		Signals: []stg.Signal{
			{Name: "a", Kind: stg.Output},
			{Name: "b", Kind: stg.Output},
			{Name: "c", Kind: stg.Output},
		},
	}
	g.States = make([]ts.State, 4)
	for i := range g.States {
		g.States[i] = ts.State{Code: ts.Code(i), Label: string(rune('A' + i))}
	}
	g.Out = make([][]ts.Arc, 4)
	add := func(from int, sig int, dir stg.Dir, to int) {
		g.Out[from] = append(g.Out[from], ts.Arc{
			Event: ts.Event{Sig: sig, Dir: dir, Name: g.Signals[sig].Name + dir.String()},
			To:    to,
		})
	}
	add(0, 0, stg.Rise, 1)
	add(2, 0, stg.Rise, 3)
	add(0, 1, stg.Rise, 2)
	add(1, 2, stg.Rise, 3)
	back, err := regions.Synthesize(g)
	if err != nil {
		if !strings.Contains(err.Error(), "regions:") {
			t.Fatalf("unhelpful error: %v", err)
		}
		return
	}
	if back == nil {
		t.Fatal("nil result without error")
	}
}
