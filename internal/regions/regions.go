// Package regions implements region theory (Section 4): deriving a Petri
// net from a transition system. Regions — sets of states uniformly entered
// or exited by each event — correspond to places; at any step of the design
// process a PN corresponding to the current TS can be extracted and
// back-annotated to the designer (Figure 10).
package regions

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stg"
	"repro/internal/ts"
)

// Region is a set of states of the TS.
type Region struct {
	In []bool
}

func (r Region) key() string {
	b := make([]byte, len(r.In))
	for i, v := range r.In {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// Size returns the number of states inside.
func (r Region) Size() int {
	n := 0
	for _, v := range r.In {
		if v {
			n++
		}
	}
	return n
}

// subsetOf reports r ⊆ o.
func (r Region) subsetOf(o Region) bool {
	for i, v := range r.In {
		if v && !o.In[i] {
			return false
		}
	}
	return true
}

// label identifies an event class: all SG arcs carrying the same signal edge
// (or the same dummy name) are occurrences of one PN transition.
type label struct {
	sig  int
	dir  stg.Dir
	name string
	// inst distinguishes split instances of the same signal edge (label
	// splitting, the petrify fallback when excitation closure fails).
	inst int
}

func labelOf(e ts.Event) label {
	if e.Sig < 0 {
		return label{sig: -1, name: e.Name}
	}
	// Strip instance suffixes: x+/1 and x+ are the same label only if they
	// are the same signal edge, which sig+dir already captures.
	return label{sig: e.Sig, dir: e.Dir}
}

func (l label) String() string {
	if l.sig < 0 {
		return fmt.Sprintf("%s#%d", l.name, l.inst)
	}
	return fmt.Sprintf("sig%d%s#%d", l.sig, l.dir, l.inst)
}

type arc struct {
	from, to int
}

// analyzer caches the arcs per label.
type analyzer struct {
	g      *ts.SG
	labels []label
	arcs   map[label][]arc
}

func newAnalyzer(g *ts.SG) *analyzer {
	arcs := map[label][]arc{}
	for s, out := range g.Out {
		for _, e := range out {
			l := labelOf(e.Event)
			arcs[l] = append(arcs[l], arc{from: s, to: e.To})
		}
	}
	return newAnalyzerFromGroups(g, arcs)
}

func newAnalyzerFromGroups(g *ts.SG, arcs map[label][]arc) *analyzer {
	a := &analyzer{g: g, arcs: arcs}
	for l := range arcs {
		a.labels = append(a.labels, l)
	}
	sort.Slice(a.labels, func(i, j int) bool { return a.labels[i].String() < a.labels[j].String() })
	return a
}

// crossing classifies event l against region r.
type crossing struct {
	enter, exit, inside, outside int
}

func (a *analyzer) classify(l label, r Region) crossing {
	var c crossing
	for _, ar := range a.arcs[l] {
		from, to := r.In[ar.from], r.In[ar.to]
		switch {
		case !from && to:
			c.enter++
		case from && !to:
			c.exit++
		case from && to:
			c.inside++
		default:
			c.outside++
		}
	}
	return c
}

// legal reports whether every event crosses r uniformly.
func (a *analyzer) legal(r Region) bool {
	for _, l := range a.labels {
		c := a.classify(l, r)
		total := c.enter + c.exit + c.inside + c.outside
		if c.enter == 0 && c.exit == 0 {
			continue
		}
		if c.enter == total || c.exit == total {
			continue
		}
		return false
	}
	return true
}

// expansions returns the candidate minimal fixes for the first violating
// event: each is a grown copy of r.
func (a *analyzer) expansions(r Region) []Region {
	for _, l := range a.labels {
		c := a.classify(l, r)
		total := c.enter + c.exit + c.inside + c.outside
		if (c.enter == 0 && c.exit == 0) || c.enter == total || c.exit == total {
			continue
		}
		var out []Region
		// Absorb entering arcs: add their sources (event becomes
		// non-crossing w.r.t. those arcs).
		if c.enter > 0 {
			g := clone(r)
			for _, ar := range a.arcs[l] {
				if !r.In[ar.from] && r.In[ar.to] {
					g.In[ar.from] = true
				}
			}
			out = append(out, g)
		}
		// Absorb exiting arcs: add their targets.
		if c.exit > 0 {
			g := clone(r)
			for _, ar := range a.arcs[l] {
				if r.In[ar.from] && !r.In[ar.to] {
					g.In[ar.to] = true
				}
			}
			out = append(out, g)
		}
		// Complete to all-entering: possible when nothing is inside/exiting.
		if c.enter > 0 && c.exit == 0 && c.inside == 0 {
			g := clone(r)
			for _, ar := range a.arcs[l] {
				if !r.In[ar.from] && !r.In[ar.to] {
					g.In[ar.to] = true
				}
			}
			out = append(out, g)
		}
		// Complete to all-exiting: possible when nothing is inside/entering.
		if c.exit > 0 && c.enter == 0 && c.inside == 0 {
			g := clone(r)
			for _, ar := range a.arcs[l] {
				if !r.In[ar.from] && !r.In[ar.to] {
					g.In[ar.from] = true
				}
			}
			out = append(out, g)
		}
		return out
	}
	return nil
}

func clone(r Region) Region {
	return Region{In: append([]bool(nil), r.In...)}
}

// legalize grows seed into legal regions (BFS over expansion choices),
// returning the minimal ones found. The search is capped to keep pathological
// TSs from exploding.
func (a *analyzer) legalize(seed Region, cap int) []Region {
	if cap <= 0 {
		cap = 4096
	}
	seen := map[string]bool{seed.key(): true}
	queue := []Region{seed}
	var legal []Region
	for len(queue) > 0 && len(seen) < cap {
		r := queue[0]
		queue = queue[1:]
		if a.legal(r) {
			legal = append(legal, r)
			continue // growing a legal region cannot yield a *minimal* one
		}
		for _, g := range a.expansions(r) {
			if !seen[g.key()] {
				seen[g.key()] = true
				queue = append(queue, g)
			}
		}
	}
	// Keep minimal.
	var minimal []Region
	for i, r := range legal {
		isMin := true
		for j, o := range legal {
			if i != j && o.subsetOf(r) && o.Size() < r.Size() {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, r)
		}
	}
	return minimal
}

// ger returns the generalized excitation region of label l: the states with
// an outgoing l-arc.
func (a *analyzer) ger(l label) Region {
	r := Region{In: make([]bool, len(a.g.States))}
	for _, ar := range a.arcs[l] {
		r.In[ar.from] = true
	}
	return r
}

// Synthesize derives an STG whose underlying Petri net generates the given
// state graph: the back-annotation step. When excitation closure fails for
// an event, its label is split by the connected components of its excitation
// region (label splitting, the petrify fallback) and synthesis is retried;
// an error is returned when splitting cannot help.
func Synthesize(g *ts.SG) (*stg.STG, error) {
	arcs := map[label][]arc{}
	for st, out := range g.Out {
		for _, e := range out {
			l := labelOf(e.Event)
			arcs[l] = append(arcs[l], arc{from: st, to: e.To})
		}
	}
	for attempt := 0; attempt < 6; attempt++ {
		out, failing, err := synthesizeWith(g, arcs)
		if err == nil {
			return out, nil
		}
		if failing == nil {
			return nil, err
		}
		split, ok := splitByComponents(g, arcs, *failing)
		if !ok {
			return nil, err
		}
		arcs = split
	}
	return nil, fmt.Errorf("regions: label splitting budget exhausted")
}

// splitByComponents partitions the arcs of label l by the connected
// components of its excitation region (GER states connected by any arc).
func splitByComponents(g *ts.SG, arcs map[label][]arc, l label) (map[label][]arc, bool) {
	las := arcs[l]
	inGER := map[int]bool{}
	for _, ar := range las {
		inGER[ar.from] = true
	}
	// Undirected adjacency within GER via any arc of the TS.
	adj := map[int][]int{}
	for st, out := range g.Out {
		for _, e := range out {
			if inGER[st] && inGER[e.To] {
				adj[st] = append(adj[st], e.To)
				adj[e.To] = append(adj[e.To], st)
			}
		}
	}
	comp := map[int]int{}
	next := 0
	var states []int
	for st := range inGER {
		states = append(states, st)
	}
	sort.Ints(states)
	for _, st := range states {
		if _, done := comp[st]; done {
			continue
		}
		queue := []int{st}
		comp[st] = next
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range adj[x] {
				if _, done := comp[y]; !done {
					comp[y] = next
					queue = append(queue, y)
				}
			}
		}
		next++
	}
	if next < 2 {
		return nil, false
	}
	out := map[label][]arc{}
	for k, v := range arcs {
		if k != l {
			out[k] = v
		}
	}
	for _, ar := range las {
		nl := l
		nl.inst = l.inst*16 + comp[ar.from] + 1
		out[nl] = append(out[nl], ar)
	}
	return out, true
}

// synthesizeWith runs one synthesis attempt over the given label groups.
// On excitation-closure failure it returns the failing label for splitting.
func synthesizeWith(g *ts.SG, arcGroups map[label][]arc) (*stg.STG, *label, error) {
	a := newAnalyzerFromGroups(g, arcGroups)
	out := stg.New(g.Name + "-synth")
	for _, s := range g.Signals {
		out.AddSignal(s.Name, s.Kind)
	}

	// Pre-regions per label.
	regionIdx := map[string]int{} // region key -> place index in out
	var regionList []Region
	preOf := map[string][]int{}
	addRegion := func(r Region) int {
		k := r.key()
		if i, ok := regionIdx[k]; ok {
			return i
		}
		i := len(regionList)
		regionIdx[k] = i
		regionList = append(regionList, r)
		return i
	}

	for _, l := range a.labels {
		ger := a.ger(l)
		minimal := a.legalize(ger, 0)
		// Pre-regions: minimal legal regions containing GER(l) from which l
		// exits (or, for self-loop-free nets, any superset region whose
		// crossing for l is all-exit).
		var pres []Region
		for _, r := range minimal {
			c := a.classify(l, r)
			if c.exit == len(a.arcs[l]) {
				pres = append(pres, r)
			}
		}
		if len(pres) == 0 {
			lc := l
			return nil, &lc, fmt.Errorf("regions: no pre-region for %s (TS not synthesizable)", a.describe(l))
		}
		// Excitation closure: the intersection of pre-regions must equal GER.
		inter := clone(pres[0])
		for _, r := range pres[1:] {
			for i := range inter.In {
				inter.In[i] = inter.In[i] && r.In[i]
			}
		}
		if inter.key() != ger.key() {
			lc := l
			return nil, &lc, fmt.Errorf("regions: excitation closure fails for %s", a.describe(l))
		}
		var idxs []int
		for _, r := range pres {
			idxs = append(idxs, addRegion(r))
		}
		preOf[l.String()] = idxs
	}

	// Build the net: one transition per label, one place per used region.
	placeOf := make([]int, len(regionList))
	for i, r := range regionList {
		name := fmt.Sprintf("r%d", i)
		tokens := 0
		if r.In[g.Initial] {
			tokens = 1
		}
		placeOf[i] = out.Net.AddPlace(name, tokens)
	}
	for _, l := range a.labels {
		var t int
		if l.sig < 0 {
			t = out.AddDummy(l.name)
		} else {
			t = out.AddTransition(l.sig, l.dir)
		}
		for _, ri := range preOf[l.String()] {
			out.Net.ArcPT(placeOf[ri], t)
		}
		// Post places: any used region entered by l.
		for ri, r := range regionList {
			c := a.classify(l, r)
			if c.enter > 0 && c.enter == len(a.arcs[l]) {
				out.Net.ArcTP(t, placeOf[ri])
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("regions: synthesized STG invalid: %w", err)
	}
	return out, nil, nil
}

func (a *analyzer) describe(l label) string {
	if l.sig < 0 {
		return l.name
	}
	return a.g.Signals[l.sig].Name + l.dir.String()
}

// MinimalPreRegions exposes the minimal pre-regions of an event for
// diagnostics and tests.
func MinimalPreRegions(g *ts.SG, sig int, dir stg.Dir) []Region {
	a := newAnalyzer(g)
	l := label{sig: sig, dir: dir}
	ger := a.ger(l)
	var out []Region
	for _, r := range a.legalize(ger, 0) {
		c := a.classify(l, r)
		if c.exit == len(a.arcs[l]) {
			out = append(out, r)
		}
	}
	return out
}

// Describe renders a region as a state list for debugging.
func (r Region) Describe(g *ts.SG) string {
	var parts []string
	for i, in := range r.In {
		if in {
			parts = append(parts, g.States[i].Label)
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}
