package bdd

import (
	"sync"
	"testing"
)

// buildParity returns the parity function of vars [lo, hi) — a worst-case
// BDD shape for sharing (every level doubles the node count is false for
// parity; it is linear, but every goroutine building it must hash-cons the
// exact same chain, maximizing publication races).
func buildParity(m *Manager, lo, hi int) Ref {
	r := False
	for v := lo; v < hi; v++ {
		r = m.Xor(r, m.Var(v))
	}
	return r
}

// TestConcurrentCanonicity races eight goroutines building overlapping
// functions inside one concurrent section: hash-consing must hand every
// goroutine the same Ref for the same function, and the merged manager
// must still evaluate correctly afterwards. Run with -race this is the
// publication-safety test for mkC and the seqlock cache.
func TestConcurrentCanonicity(t *testing.T) {
	const vars = 12
	const workers = 8
	m := New(vars)
	for v := 0; v < vars; v++ {
		m.Var(v) // pre-build projections: Var mutates the manager
	}
	results := make([]Ref, workers)
	m.RunConcurrent(1<<14, func() bool {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Same function from every goroutine, built in a
				// worker-dependent association order: canonicity must
				// erase the difference.
				r := buildParity(m, 0, vars)
				if w%2 == 1 {
					r = m.Xor(buildParity(m, 0, vars/2), buildParity(m, vars/2, vars))
				}
				results[w] = r
			}(w)
		}
		wg.Wait()
		return true
	})
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d got Ref %d, worker 0 got %d — canonicity broken", w, results[w], results[0])
		}
	}
	// Semantic check after the section: parity of all variables.
	for env := uint64(0); env < 1<<vars; env += 37 {
		want := popcount(env)%2 == 1
		if got := m.Eval(results[0], env); got != want {
			t.Fatalf("Eval(%b) = %v, want %v", env, got, want)
		}
	}
	// The section must fold its accounting back: live nodes and the
	// rebuilt unique table have to agree.
	if m.tableUsed != m.live {
		t.Fatalf("tableUsed %d != live %d after EndConcurrent", m.tableUsed, m.live)
	}
	if st := m.Stats(); st.Live != m.live {
		t.Fatalf("Stats().Live %d != live %d", st.Live, m.live)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// TestConcurrentMatchesSequential builds the same function concurrently and
// sequentially in two managers and compares them pointwise.
func TestConcurrentMatchesSequential(t *testing.T) {
	const vars = 10
	seq := New(vars)
	want := m3Majority(seq, vars)

	conc := New(vars)
	for v := 0; v < vars; v++ {
		conc.Var(v)
	}
	var got Ref
	conc.RunConcurrent(1<<12, func() bool {
		var wg sync.WaitGroup
		parts := make([]Ref, 4)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				parts[w] = m3Majority(conc, vars)
			}(w)
		}
		wg.Wait()
		got = parts[0]
		return true
	})
	for env := uint64(0); env < 1<<vars; env++ {
		if seq.Eval(want, env) != conc.Eval(got, env) {
			t.Fatalf("mismatch at env %b", env)
		}
	}
}

// m3Majority builds "at least half the variables are true" via the
// full ITE recursion — cache- and mk-heavy.
func m3Majority(m *Manager, vars int) Ref {
	var build func(v, need int) Ref
	build = func(v, need int) Ref {
		if need <= 0 {
			return True
		}
		if vars-v < need {
			return False
		}
		return m.ITE(m.Var(v), build(v+1, need-1), build(v+1, need))
	}
	return build(0, (vars+1)/2)
}

// buildMinterms returns the union of k fixed distinct minterms over the
// given variables — mostly unshared chains, so the node count scales with
// k*vars and reliably overflows a small epoch.
func buildMinterms(m *Manager, vars, k int) Ref {
	r := False
	for i := 0; i < k; i++ {
		x := uint64(i*2621+7) & (1<<vars - 1)
		c := True
		for v := 0; v < vars; v++ {
			if x&(1<<uint(v)) != 0 {
				c = m.And(c, m.Var(v))
			} else {
				c = m.And(c, m.NVar(v))
			}
		}
		r = m.Or(r, c)
	}
	return r
}

// TestEpochRetry forces arena exhaustion with a deliberately tiny epoch:
// RunConcurrent must re-run the section with doubled epochs until it fits,
// count the retries, and still produce a correct diagram.
func TestEpochRetry(t *testing.T) {
	const vars, k = 16, 64
	m := New(vars)
	for v := 0; v < vars; v++ {
		m.Var(v)
		m.NVar(v)
	}
	var r Ref
	m.RunConcurrent(1, func() bool { // clamped to the 256 floor — still far too small
		r = buildMinterms(m, vars, k)
		return true
	})
	if m.Stats().EpochRetries == 0 {
		t.Fatal("expected at least one epoch retry with a 256-slot epoch")
	}
	// k distinct minterms means exactly k satisfying assignments.
	if got := m.SatCountBig(r); got.Int64() != k {
		t.Fatalf("SatCountBig = %v, want %d", got, k)
	}
}

// TestEpochFullCrossGoroutine pins the worker-side contract: an EpochFull
// panic inside a spawned goroutine cannot cross stacks, so fn recovers it
// and returns false; RunConcurrent then retries.
func TestEpochFullCrossGoroutine(t *testing.T) {
	const vars, k = 16, 64
	m := New(vars)
	for v := 0; v < vars; v++ {
		m.Var(v)
		m.NVar(v)
	}
	var r Ref
	m.RunConcurrent(1, func() bool {
		full := false
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(EpochFull); !ok {
						panic(rec)
					}
					full = true
				}
			}()
			r = buildMinterms(m, vars, k)
		}()
		wg.Wait()
		return !full
	})
	if m.Stats().EpochRetries == 0 {
		t.Fatal("expected epoch retries via the cross-goroutine path")
	}
	if got := m.SatCountBig(r); got.Int64() != k {
		t.Fatalf("SatCountBig = %v, want %d", got, k)
	}
}

// TestConcurrentGuards checks that the operations that would corrupt a
// section panic instead of racing.
func TestConcurrentGuards(t *testing.T) {
	m := New(4)
	m.Var(0)
	m.RunConcurrent(1, func() bool {
		for _, tc := range []struct {
			name string
			fn   func()
		}{
			{"GC", func() { m.GC() }},
			{"Sift", func() { m.Sift() }},
			{"BeginConcurrent", func() { m.BeginConcurrent(1) }},
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s inside a concurrent section must panic", tc.name)
					}
				}()
				tc.fn()
			}()
		}
		return true
	})
	defer func() {
		if recover() == nil {
			t.Error("EndConcurrent outside a section must panic")
		}
	}()
	m.EndConcurrent()
}

// TestConcurrentThenGC makes sure leaked slots reclaimed at EndConcurrent
// are genuinely reusable: a GC right after a contended section must leave a
// consistent manager.
func TestConcurrentThenGC(t *testing.T) {
	const vars = 12
	m := New(vars)
	for v := 0; v < vars; v++ {
		m.Var(v)
	}
	var r Ref
	m.RunConcurrent(1<<12, func() bool {
		var wg sync.WaitGroup
		parts := make([]Ref, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				parts[w] = buildParity(m, 0, vars)
			}(w)
		}
		wg.Wait()
		r = parts[0]
		return true
	})
	m.IncRef(r)
	m.GC()
	for env := uint64(0); env < 1<<vars; env += 11 {
		want := popcount(env)%2 == 1
		if got := m.Eval(r, env); got != want {
			t.Fatalf("Eval(%b) after GC = %v, want %v", env, got, want)
		}
	}
}
