package bdd

import (
	"math/rand"
	"testing"
)

// interleavedAdder builds the function (x0∧y0) ∨ (x1∧y1) ∨ ... with the x
// block ordered before the y block: the classic order for which sifting
// must interleave the pairs and shrink the BDD exponentially.
func interleavedAdder(m *Manager, pairs int) Ref {
	f := False
	for i := 0; i < pairs; i++ {
		f = m.Or(f, m.And(m.Var(i), m.Var(pairs+i)))
	}
	return f
}

func TestSiftShrinksBadOrder(t *testing.T) {
	const pairs = 6
	m := New(2 * pairs)
	f := m.IncRef(interleavedAdder(m, pairs))
	tt := truthTable(m, f, 2*pairs)
	m.GC()
	before := m.Size()
	m.Sift()
	after := m.Size()
	if after >= before {
		t.Fatalf("sifting did not shrink the blocked adder: %d -> %d", before, after)
	}
	// The optimal interleaved order is linear (3 nodes per pair + terminals).
	if after > 4*pairs+2 {
		t.Fatalf("sifted size %d far from linear optimum", after)
	}
	if !boolsEqual(truthTable(m, f, 2*pairs), tt) {
		t.Fatal("sifting changed the function")
	}
	if m.Stats().Reorders != 1 || m.Stats().Swaps == 0 {
		t.Fatalf("reorder stats not updated: %+v", m.Stats())
	}
}

// TestSiftPreservesRefsAndCanonicity checks that outstanding Refs stay
// valid and canonical across reordering: rebuilding any held function after
// a sift must return the identical Ref.
func TestSiftPreservesRefsAndCanonicity(t *testing.T) {
	const n = 10
	rng := rand.New(rand.NewSource(42))
	m := New(n)
	type held struct {
		r  Ref
		tt []bool
	}
	var hold []held
	for i := 0; i < 12; i++ {
		f := m.Var(rng.Intn(n))
		for k := 0; k < 6; k++ {
			g := m.Var(rng.Intn(n))
			if rng.Intn(2) == 0 {
				g = m.Not(g)
			}
			switch rng.Intn(3) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			default:
				f = m.Xor(f, g)
			}
		}
		hold = append(hold, held{m.IncRef(f), truthTable(m, f, n)})
	}
	m.Sift()
	for _, h := range hold {
		if !boolsEqual(truthTable(m, h.r, n), h.tt) {
			t.Fatal("sifting corrupted a held function")
		}
	}
	// Canonicity after reorder: ops rebuilding an existing function must
	// land on the same node.
	for _, h := range hold {
		if got := m.Or(h.r, h.r); got != h.r {
			t.Fatal("idempotent Or must return the identical Ref after sifting")
		}
		if got := m.Not(m.Not(h.r)); got != h.r {
			t.Fatal("double negation must return the identical Ref after sifting")
		}
	}
	// The order must be a permutation and the mappings inverse.
	seen := make([]bool, n)
	for l, v := range m.Order() {
		if seen[v] {
			t.Fatalf("variable %d appears twice in order", v)
		}
		seen[v] = true
		if m.Level(v) != l {
			t.Fatalf("var2level/level2var out of sync at level %d", l)
		}
	}
}

// TestSiftThenOps checks the kernel keeps working after a reorder: fresh
// operations, quantification and counting on a reordered manager.
func TestSiftThenOps(t *testing.T) {
	const n = 8
	m := New(n)
	f := m.IncRef(interleavedAdder(m, n/2))
	m.Sift()
	g := m.Exists(f, []int{0, 4})
	want := m.Or(m.Or(m.restrictVar(f, 0, false, 4, false), m.restrictVar(f, 0, false, 4, true)),
		m.Or(m.restrictVar(f, 0, true, 4, false), m.restrictVar(f, 0, true, 4, true)))
	if g != want {
		t.Fatal("Exists after sifting disagrees with explicit cofactor union")
	}
	if got := m.SatCount(m.Xor(f, f)); got != 0 {
		t.Fatalf("Xor(f,f) = %v satisfying assignments after sift", got)
	}
	env, ok := m.AnySat(f)
	if !ok || !m.Eval(f, env) {
		t.Fatal("AnySat broken after sift")
	}
	sup := m.Support(f)
	for i := 1; i < len(sup); i++ {
		if sup[i-1] >= sup[i] {
			t.Fatal("Support not ascending by variable after sift")
		}
	}
}

// restrictVar is a test helper: fix two variables in sequence.
func (m *Manager) restrictVar(f Ref, v1 int, b1 bool, v2 int, b2 bool) Ref {
	return m.Restrict(m.Restrict(f, v1, b1), v2, b2)
}

func TestSiftTrivialManagers(t *testing.T) {
	m := New(0)
	m.Sift() // must not panic
	m1 := New(1)
	f := m1.IncRef(m1.Var(0))
	m1.Sift()
	if !m1.Eval(f, 1) || m1.Eval(f, 0) {
		t.Fatal("single-var manager broken by sift")
	}
}
