package bdd

import "testing"

// TestQuantifyMaskAllocs pins the interned-mask fix: the old kernel built a
// `string(mask)` cache key per recursive quantification step, allocating on
// every node visit. With interned masks and the direct-mapped op cache a
// repeated quantification over the same variable set allocates nothing.
// Mirrors internal/reach/sg_alloc_test.go.
func TestQuantifyMaskAllocs(t *testing.T) {
	const n = 64
	m := New(n)
	f := True
	for i := 0; i < n/2; i++ {
		f = m.And(f, m.Or(m.Var(2*i), m.Var(2*i+1)))
	}
	m.IncRef(f)
	vars := []int{1, 7, 13, 40, 63}
	m.Exists(f, vars) // warm: interns the mask, fills the cache
	m.AndExists(f, f, vars)
	allocs := testing.AllocsPerRun(100, func() {
		m.Exists(f, vars)
	})
	if allocs > 0 {
		t.Fatalf("Exists allocates %.0f times per call with an interned mask, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		m.AndExists(f, f, vars)
	})
	if allocs > 0 {
		t.Fatalf("AndExists allocates %.0f times per call with an interned mask, want 0", allocs)
	}
}

func BenchmarkAndExists(b *testing.B) {
	const n = 64
	m := New(n)
	f := True
	g := False
	for i := 0; i < n/2; i++ {
		f = m.And(f, m.Or(m.Var(2*i), m.Var(2*i+1)))
		g = m.Or(g, m.And(m.Var(2*i), m.NVar((2*i+3)%n)))
	}
	vars := []int{0, 5, 11, 17, 23, 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.AndExists(f, g, vars)
	}
}
