package bdd

import "math"

// The operation cache is a single direct-mapped, lossy table shared by all
// memoized operations. Each entry stores the op tag, the (up to) three
// int32 key operands, and the result. Collisions overwrite: the cache
// bounds memory regardless of how long a traversal runs, trading the
// occasional recomputation for it. The cache doubles (up to maxCacheSize)
// as the arena grows so hit rates stay useful on large traversals.

// Op tags. 0 marks an empty entry.
const (
	opITE uint32 = iota + 1
	opExists
	opForall
	opAndExists
	opRestrict
)

type cacheEntry struct {
	op      uint32
	f, g, h int32
	r       int32
}

// cacheMix mixes an op-cache key into a 32-bit hash; callers mask it to
// their table size (the sequential cache and the concurrent seqlock cache
// share the mix).
func cacheMix(op uint32, f, g, h int32) uint32 {
	x := uint64(uint32(f))*0x9e3779b97f4a7c15 ^
		uint64(uint32(g))*0xc2b2ae3d27d4eb4f ^
		uint64(uint32(h))*0x165667b19e3779f9 ^
		uint64(op)*0x27d4eb2f165667c5
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return uint32(x)
}

// cacheIndex mixes the key into a cache slot index.
func (m *Manager) cacheIndex(op uint32, f, g, h int32) uint32 {
	return cacheMix(op, f, g, h) & m.cacheMask
}

func (m *Manager) cacheGet(op uint32, f, g, h int32) (Ref, bool) {
	m.stats.CacheLookups++
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	if e.op == op && e.f == f && e.g == g && e.h == h {
		m.stats.CacheHits++
		return Ref(e.r), true
	}
	return False, false
}

func (m *Manager) cachePut(op uint32, f, g, h, r int32) {
	e := &m.cache[m.cacheIndex(op, f, g, h)]
	*e = cacheEntry{op: op, f: f, g: g, h: h, r: r}
}

// growCache doubles the cache when the live arena outgrows it, dropping
// all memoized entries (they are recomputable by construction).
func (m *Manager) growCache() {
	size := len(m.cache)
	for size < maxCacheSize && m.live > size {
		size *= 2
	}
	if size == len(m.cache) {
		m.cacheGrowAt = math.MaxInt // at capacity: never grow again
		return
	}
	m.cache = make([]cacheEntry, size)
	m.cacheMask = uint32(size - 1)
	m.cacheGrowAt = size
}

// clearCache drops every memoized entry. Called after GC (entries may
// reference reclaimed nodes) and after reordering (freed slots may have
// been recycled during swaps).
func (m *Manager) clearCache() {
	clear(m.cache)
}
