package bdd

import (
	"testing"
)

// fuzzVars is the variable universe of the fuzz machine: 8 variables, so a
// function's full truth table fits in 256 bits and the dense oracle below
// is exact.
const fuzzVars = 8

// tt is a dense truth table over fuzzVars variables: bit e of word e/64 is
// the function value under environment e (bit i of e = variable i).
type tt [4]uint64

func ttVar(v int) tt {
	var t tt
	for e := 0; e < 256; e++ {
		if e>>v&1 == 1 {
			t[e/64] |= 1 << (e % 64)
		}
	}
	return t
}

func (t tt) bit(e int) bool { return t[e/64]>>(e%64)&1 == 1 }

func (t tt) not() tt {
	return tt{^t[0], ^t[1], ^t[2], ^t[3]}
}

func (t tt) and(u tt) tt {
	return tt{t[0] & u[0], t[1] & u[1], t[2] & u[2], t[3] & u[3]}
}

func (t tt) or(u tt) tt {
	return tt{t[0] | u[0], t[1] | u[1], t[2] | u[2], t[3] | u[3]}
}

func (t tt) xor(u tt) tt {
	return tt{t[0] ^ u[0], t[1] ^ u[1], t[2] ^ u[2], t[3] ^ u[3]}
}

// restrict fixes variable v to val: every environment reads the value the
// function takes with bit v forced.
func (t tt) restrict(v int, val bool) tt {
	var r tt
	for e := 0; e < 256; e++ {
		fixed := e &^ (1 << v)
		if val {
			fixed |= 1 << v
		}
		if t.bit(fixed) {
			r[e/64] |= 1 << (e % 64)
		}
	}
	return r
}

func (t tt) exists(vars []int) tt {
	for _, v := range vars {
		t = t.restrict(v, false).or(t.restrict(v, true))
	}
	return t
}

func (t tt) forall(vars []int) tt {
	for _, v := range vars {
		t = t.restrict(v, false).and(t.restrict(v, true))
	}
	return t
}

// maskVars decodes a quantification mask byte into a variable list.
func maskVars(b byte) []int {
	var vars []int
	for v := 0; v < fuzzVars; v++ {
		if b>>v&1 == 1 {
			vars = append(vars, v)
		}
	}
	return vars
}

// fuzzEntry is one slot of the fuzz machine's stack: a managed Ref (held
// live via IncRef) plus its independently computed truth table.
type fuzzEntry struct {
	ref Ref
	tab tt
}

// FuzzBDDOps drives random operation sequences through the kernel and
// checks every intermediate result against a dense truth-table oracle,
// plus the canonicity invariant (equal functions ⇒ equal Refs), before and
// after garbage collection and sifting.
func FuzzBDDOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})                               // push a few vars
	f.Add([]byte{0, 8, 4, 10, 0x0f})                        // x0, ~x0, and, exists{0..3}
	f.Add([]byte{0, 1, 4, 2, 3, 5, 6, 16})                  // and, or, xor, gc
	f.Add([]byte{0, 1, 2, 12, 0x07, 17, 0, 1, 4, 16, 17})   // andexists, sift, rebuild, gc, sift
	f.Add([]byte{7, 6, 5, 4, 13, 9, 14, 0x55, 15, 0xaa})    // ite, not, restricts, quantifiers
	f.Add([]byte{0, 1, 4, 2, 5, 3, 5, 16, 4, 5, 6, 17, 11}) // grow then reorder then diff
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			return // keep each case cheap; long inputs add no new structure
		}
		m := New(fuzzVars)
		var stack []fuzzEntry

		push := func(r Ref, tab tt) {
			if len(stack) >= 16 {
				old := stack[0]
				m.DecRef(old.ref)
				copy(stack, stack[1:])
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, fuzzEntry{m.IncRef(r), tab})
		}
		// pop returns entries without releasing them: operands stay on the
		// stack so GC pressure comes only from dropped slots.
		peek := func(i int) fuzzEntry { return stack[len(stack)-1-i] }

		check := func(when string) {
			canon := map[tt]Ref{}
			for _, e := range stack {
				for env := 0; env < 256; env++ {
					if m.Eval(e.ref, uint64(env)) != e.tab.bit(env) {
						t.Fatalf("%s: Eval(%d, %08b) disagrees with oracle", when, e.ref, env)
					}
				}
				if prev, ok := canon[e.tab]; ok && prev != e.ref {
					t.Fatalf("%s: canonicity violated: refs %d and %d compute the same function", when, prev, e.ref)
				}
				canon[e.tab] = e.ref
			}
		}

		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			op := next()
			switch op % 18 {
			case 0, 1, 2, 3: // push variable (two opcodes each for weight)
				v := int(op) % fuzzVars
				push(m.Var(v), ttVar(v))
			case 4: // and
				if len(stack) >= 2 {
					a, b := peek(0), peek(1)
					push(m.And(a.ref, b.ref), a.tab.and(b.tab))
				}
			case 5: // or
				if len(stack) >= 2 {
					a, b := peek(0), peek(1)
					push(m.Or(a.ref, b.ref), a.tab.or(b.tab))
				}
			case 6: // xor
				if len(stack) >= 2 {
					a, b := peek(0), peek(1)
					push(m.Xor(a.ref, b.ref), a.tab.xor(b.tab))
				}
			case 7: // not
				if len(stack) >= 1 {
					a := peek(0)
					push(m.Not(a.ref), a.tab.not())
				}
			case 8: // negated variable
				v := int(next()) % fuzzVars
				push(m.NVar(v), ttVar(v).not())
			case 9, 10: // restrict var to op-determined polarity
				if len(stack) >= 1 {
					a := peek(0)
					v := int(next()) % fuzzVars
					val := op%18 == 10
					push(m.Restrict(a.ref, v, val), a.tab.restrict(v, val))
				}
			case 11: // diff
				if len(stack) >= 2 {
					a, b := peek(0), peek(1)
					push(m.Diff(a.ref, b.ref), a.tab.and(b.tab.not()))
				}
			case 12: // andexists
				if len(stack) >= 2 {
					a, b := peek(0), peek(1)
					vars := maskVars(next())
					push(m.AndExists(a.ref, b.ref, vars), a.tab.and(b.tab).exists(vars))
				}
			case 13: // ite
				if len(stack) >= 3 {
					a, b, c := peek(0), peek(1), peek(2)
					ot := a.tab.and(b.tab).or(a.tab.not().and(c.tab))
					push(m.ITE(a.ref, b.ref, c.ref), ot)
				}
			case 14: // exists
				if len(stack) >= 1 {
					a := peek(0)
					vars := maskVars(next())
					push(m.Exists(a.ref, vars), a.tab.exists(vars))
				}
			case 15: // forall
				if len(stack) >= 1 {
					a := peek(0)
					vars := maskVars(next())
					push(m.Forall(a.ref, vars), a.tab.forall(vars))
				}
			case 16: // garbage collect, then re-verify every live Ref
				m.GC()
				check("after GC")
			case 17: // dynamic reorder, then re-verify every live Ref
				m.Sift()
				check("after Sift")
			}
		}
		check("final")

		// Releasing every external reference and collecting must return the
		// manager to just its pinned projection functions.
		for _, e := range stack {
			m.DecRef(e.ref)
		}
		m.GC()
		if m.Size() > 2+2*fuzzVars+2 {
			t.Fatalf("after full release: %d nodes still live", m.Size())
		}
	})
}
