package bdd

import "repro/internal/boolmin"

// ISOP computes an irredundant sum-of-products G with L ⊆ G ⊆ U using the
// Minato–Morreale algorithm: the BDD-native route from symbolic functions to
// two-level covers, used when the care space is too large for
// Quine–McCluskey. L is the on-set lower bound (must be covered), U the
// upper bound (on ∪ don't-care).
func (m *Manager) ISOP(l, u Ref) boolmin.Cover {
	cubes, _ := m.isop(l, u)
	return boolmin.Cover{N: m.numVars, Cubes: cubes}
}

// isop returns the cubes and the BDD of their disjunction.
func (m *Manager) isop(l, u Ref) ([]boolmin.Cube, Ref) {
	if l == False {
		return nil, False
	}
	if u == True {
		return []boolmin.Cube{boolmin.FullCube()}, True
	}
	// Top variable of l or u.
	v := m.level(l)
	if lu := m.level(u); lu < v {
		v = lu
	}
	l0, l1 := m.cofactors(l, v)
	u0, u1 := m.cofactors(u, v)

	// Cubes that must contain the negative literal of v: the part of l0 not
	// coverable by cubes valid at v=1.
	c0, g0 := m.isop(m.Diff(l0, u1), u0)
	// Cubes that must contain the positive literal.
	c1, g1 := m.isop(m.Diff(l1, u0), u1)
	// Remainder: coverable without mentioning v.
	lr := m.Or(m.Diff(l0, g0), m.Diff(l1, g1))
	cr, gr := m.isop(lr, m.And(u0, u1))

	// Cube literals are variable indices, not order levels.
	lit := int(m.level2var[v])
	var cubes []boolmin.Cube
	for _, c := range c0 {
		cubes = append(cubes, c.WithLiteral(lit, false))
	}
	for _, c := range c1 {
		cubes = append(cubes, c.WithLiteral(lit, true))
	}
	cubes = append(cubes, cr...)

	varRef := m.mk(v, False, True)
	g := m.OrN(m.And(m.Not(varRef), g0), m.And(varRef, g1), gr)
	return cubes, g
}

// FromCover builds the BDD of a sum-of-products cover.
func (m *Manager) FromCover(cv boolmin.Cover) Ref {
	r := False
	for _, c := range cv.Cubes {
		cube := True
		for v := 0; v < m.numVars; v++ {
			bit := uint64(1) << uint(v)
			if c.Care&bit == 0 {
				continue
			}
			if c.Val&bit != 0 {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		r = m.Or(r, cube)
	}
	return r
}

// FromMinterms builds the BDD of a set of minterms.
func (m *Manager) FromMinterms(ms []uint64) Ref {
	r := False
	for _, mt := range ms {
		cube := True
		for v := 0; v < m.numVars; v++ {
			if mt&(1<<uint(v)) != 0 {
				cube = m.And(cube, m.Var(v))
			} else {
				cube = m.And(cube, m.NVar(v))
			}
		}
		r = m.Or(r, cube)
	}
	return r
}
