package bdd

import "sort"

// Dynamic variable reordering by Rudell sifting. Each variable in turn is
// moved through every order position via adjacent-level swaps and parked
// where the live node count was smallest. Swaps rewrite nodes in place —
// a node id always denotes the same Boolean function before and after —
// so outstanding Refs remain valid across reordering.
//
// An adjacent swap of levels l (variable x) and l+1 (variable y) follows
// the classic rules:
//
//   - a node at level l+1 keeps testing y, which now sits at level l: only
//     its level field changes;
//   - a node at level l independent of y keeps testing x, which now sits at
//     level l+1: only its level field changes;
//   - a node at level l that depends on y is rewritten in place to test y,
//     its children rebuilt as (possibly fresh) x-nodes at level l+1 from
//     the four grandcofactors.
//
// Children of rewritten nodes whose reference count drops to zero are
// reclaimed eagerly, so the live count steered by the sifting search is
// exact.

// Sift runs one full Rudell sifting pass: a garbage collection, then every
// variable (largest level population first) is sifted to its locally
// optimal position. The operation cache is cleared afterwards because
// freed slots may have been recycled during the swaps.
func (m *Manager) Sift() {
	if m.conc != nil {
		// Swaps rewrite nodes in place; concurrent readers assume nodes
		// are immutable for the whole section.
		panic("bdd: Sift inside a concurrent section")
	}
	if m.numVars < 2 {
		return
	}
	m.GC()
	s := newSifter(m)
	type varCount struct {
		v int32
		n int
	}
	order := make([]varCount, m.numVars)
	for v := 0; v < m.numVars; v++ {
		order[v] = varCount{int32(v), len(s.byLevel[m.var2level[v]])}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].v < order[j].v
	})
	for _, e := range order {
		if e.n == 0 {
			continue
		}
		s.siftVar(e.v)
	}
	m.clearCache()
	m.stats.Reorders++
}

type sifter struct {
	m *Manager
	// cnt[id] counts parents of id plus one pin for externally referenced
	// roots and projection functions. Maintained exactly through swaps so
	// zero means reclaimable.
	cnt []int32
	// byLevel[l] lists the live node ids at order level l; pos[id] is the
	// index of id within its level list.
	byLevel [][]int32
	pos     []int32
	// scratch buffers reused across swaps.
	indep []int32
	rw    []rewrite
}

type rewrite struct {
	id                 int32
	oldLo, oldHi       int32
	f00, f01, f10, f11 int32
}

func newSifter(m *Manager) *sifter {
	s := &sifter{
		m:       m,
		cnt:     make([]int32, len(m.nodes)),
		pos:     make([]int32, len(m.nodes)),
		byLevel: make([][]int32, m.numVars),
	}
	for id := int32(2); id < int32(len(m.nodes)); id++ {
		n := &m.nodes[id]
		if n.level == freeLevel {
			continue
		}
		s.cnt[n.lo]++
		s.cnt[n.hi]++
		s.addToLevel(id, n.level)
		if m.extRef[id] > 0 {
			s.cnt[id]++
		}
	}
	for _, r := range m.varPos {
		if r > 1 {
			s.cnt[r]++
		}
	}
	for _, r := range m.varNeg {
		if r > 1 {
			s.cnt[r]++
		}
	}
	return s
}

func (s *sifter) addToLevel(id, l int32) {
	s.pos[id] = int32(len(s.byLevel[l]))
	s.byLevel[l] = append(s.byLevel[l], id)
}

func (s *sifter) removeFromLevel(id, l int32) {
	lst := s.byLevel[l]
	p := s.pos[id]
	last := lst[len(lst)-1]
	lst[p] = last
	s.pos[last] = p
	s.byLevel[l] = lst[:len(lst)-1]
}

// siftVar moves variable v through the order and parks it at the position
// with the smallest live node count, searching the nearer end first and
// aborting a direction when the arena doubles past the best size seen.
func (s *sifter) siftVar(v int32) {
	m := s.m
	n := int32(m.numVars)
	start := m.var2level[v]
	best := m.live
	bestPos := start
	limit := 2*m.live + 16
	down := func() {
		for l := m.var2level[v]; l+1 < n; l++ {
			s.swap(l)
			if m.live < best {
				best, bestPos = m.live, l+1
			}
			if m.live > limit {
				return
			}
		}
	}
	up := func() {
		for l := m.var2level[v]; l > 0; l-- {
			s.swap(l - 1)
			if m.live < best {
				best, bestPos = m.live, l-1
			}
			if m.live > limit {
				return
			}
		}
	}
	if start >= n/2 {
		down()
		up()
	} else {
		up()
		down()
	}
	for cur := m.var2level[v]; cur > bestPos; cur = m.var2level[v] {
		s.swap(cur - 1)
	}
	for cur := m.var2level[v]; cur < bestPos; cur = m.var2level[v] {
		s.swap(cur)
	}
}

// swap exchanges the variables at levels l and l+1.
func (s *sifter) swap(l int32) {
	m := s.m
	m.stats.Swaps++
	L := s.byLevel[l]
	M := s.byLevel[l+1]
	if len(L) > 0 || len(M) > 0 {
		// Grow the table up front so no rehash can fire while entries are
		// temporarily removed (a rehash rebuilds from the arena and would
		// resurrect them). A swap adds at most two fresh nodes per rewrite
		// and never increases used+tombstones otherwise, so reserving for
		// that worst case keeps every insert below the 3/4 load factor.
		for (m.tableUsed+m.tableTombs+2*len(L)+4)*4 >= len(m.table)*3 {
			m.rehash(true)
		}

		for _, id := range L {
			m.tableDelete(id)
		}
		for _, id := range M {
			m.tableDelete(id)
		}

		// Classify level-l nodes before any level fields move.
		s.indep = s.indep[:0]
		s.rw = s.rw[:0]
		for _, id := range L {
			n := m.nodes[id]
			loDep := m.nodes[n.lo].level == l+1
			hiDep := m.nodes[n.hi].level == l+1
			if !loDep && !hiDep {
				s.indep = append(s.indep, id)
				continue
			}
			f00, f01 := n.lo, n.lo
			if loDep {
				f00, f01 = m.nodes[n.lo].lo, m.nodes[n.lo].hi
			}
			f10, f11 := n.hi, n.hi
			if hiDep {
				f10, f11 = m.nodes[n.hi].lo, m.nodes[n.hi].hi
			}
			s.rw = append(s.rw, rewrite{id, n.lo, n.hi, f00, f01, f10, f11})
		}

		// Level l+1 nodes all move up to level l (positions inside the
		// list are unchanged, so pos stays right).
		s.byLevel[l] = M
		s.byLevel[l+1] = L[:0]
		for _, id := range M {
			m.nodes[id].level = l
			m.tableInsert(id)
		}
		// Independent level-l nodes move down to level l+1.
		for _, id := range s.indep {
			m.nodes[id].level = l + 1
			s.addToLevel(id, l+1)
			m.tableInsert(id)
		}
		// Dependent nodes are rewritten in place at level l.
		for _, r := range s.rw {
			g0 := s.mkAt(l+1, r.f00, r.f10)
			s.cnt[g0]++
			g1 := s.mkAt(l+1, r.f01, r.f11)
			s.cnt[g1]++
			m.nodes[r.id] = node{level: l, lo: g0, hi: g1}
			s.addToLevel(r.id, l)
			m.tableInsert(r.id)
			s.deref(r.oldLo)
			s.deref(r.oldHi)
		}
	}

	x, y := m.level2var[l], m.level2var[l+1]
	m.level2var[l], m.level2var[l+1] = y, x
	m.var2level[x], m.var2level[y] = l+1, l
}

// mkAt is the hash-consing constructor used inside a swap: like mk, but it
// maintains the sifter's reference counts and level lists and never
// triggers a rehash (capacity is reserved by swap).
func (s *sifter) mkAt(level, lo, hi int32) int32 {
	if lo == hi {
		return lo
	}
	m := s.m
	m.stats.UniqueLookups++
	h := hashNode(level, lo, hi) & m.tableMask
	for {
		id := m.table[h]
		if id == 0 {
			break
		}
		if id != tombstone {
			n := &m.nodes[id]
			if n.level == level && n.lo == lo && n.hi == hi {
				m.stats.UniqueHits++
				return id
			}
		}
		h = (h + 1) & m.tableMask
	}
	id := m.alloc(level, Ref(lo), Ref(hi))
	for int(id) >= len(s.cnt) {
		s.cnt = append(s.cnt, 0)
		s.pos = append(s.pos, 0)
	}
	s.cnt[id] = 0
	s.cnt[lo]++
	s.cnt[hi]++
	s.addToLevel(id, level)
	m.tableInsert(id)
	return id
}

// deref drops one parent reference and reclaims the node (recursively)
// when none remain.
func (s *sifter) deref(id int32) {
	if id <= 1 {
		return
	}
	s.cnt[id]--
	if s.cnt[id] > 0 {
		return
	}
	m := s.m
	n := m.nodes[id]
	m.tableDelete(id)
	s.removeFromLevel(id, n.level)
	m.nodes[id].level = freeLevel
	m.free = append(m.free, id)
	m.live--
	s.deref(n.lo)
	s.deref(n.hi)
}
