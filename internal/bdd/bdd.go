// Package bdd implements reduced ordered binary decision diagrams (Bryant,
// reference [3] of the paper): the symbolic representation used in Section
// 2.2 for implicit traversal of reachability graphs. Nodes live in an arena
// indexed by dense ids; hash-consing guarantees canonicity, so equality of
// functions is pointer (id) equality.
package bdd

import (
	"fmt"
	"math"
	"math/big"
)

// Node is a BDD vertex: variable index and two cofactor ids. Terminals use
// Level == terminalLevel.
type node struct {
	level  int32 // variable index; terminals get math.MaxInt32
	lo, hi int32 // else / then children
}

const terminalLevel = math.MaxInt32

// Ref is a BDD function handle.
type Ref int32

// Manager owns the node arena, the unique table and the operation caches.
// It is not safe for concurrent use.
type Manager struct {
	nodes   []node
	unique  map[node]Ref
	iteC    map[[3]Ref]Ref
	qC      map[qKey]Ref
	aePairs map[qKey][2]Ref

	numVars int
}

type qKey struct {
	f    Ref
	vars string // bitmask of quantified variables
	op   byte   // 'e' exists, 'a' forall, 'r' relprod-with (unused marker)
}

// False and True are the terminal functions.
const (
	False Ref = 0
	True  Ref = 1
)

// New creates a manager for the given number of variables.
func New(numVars int) *Manager {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	m := &Manager{
		unique:  make(map[node]Ref),
		iteC:    make(map[[3]Ref]Ref),
		qC:      make(map[qKey]Ref),
		numVars: numVars,
	}
	// ids 0 and 1 are the terminals.
	m.nodes = append(m.nodes,
		node{level: terminalLevel, lo: 0, hi: 0},
		node{level: terminalLevel, lo: 1, hi: 1})
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes (including terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// Var returns the function of variable i.
func (m *Manager) Var(i int) Ref {
	m.checkVar(i)
	return m.mk(int32(i), False, True)
}

// NVar returns the negation of variable i.
func (m *Manager) NVar(i int) Ref {
	m.checkVar(i)
	return m.mk(int32(i), True, False)
}

func (m *Manager) checkVar(i int) {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
}

// mk returns the canonical node (level, lo, hi).
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	n := node{level: level, lo: int32(lo), hi: int32(hi)}
	if r, ok := m.unique[n]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, n)
	m.unique[n] = r
	return r
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }
func (m *Manager) lo(f Ref) Ref      { return Ref(m.nodes[f].lo) }
func (m *Manager) hi(f Ref) Ref      { return Ref(m.nodes[f].hi) }

// ITE computes if-then-else(f, g, h), the universal connective.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteC[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.iteC[key] = r
	return r
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	if m.level(f) != level {
		return f, f
	}
	return m.lo(f), m.hi(f)
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g Ref) Ref { return m.ITE(g, False, f) }

// AndN folds And over the arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over the arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Restrict fixes variable v to value in f (Shannon cofactor).
func (m *Manager) Restrict(f Ref, v int, value bool) Ref {
	m.checkVar(v)
	return m.restrict(f, int32(v), value)
}

func (m *Manager) restrict(f Ref, v int32, value bool) Ref {
	l := m.level(f)
	if l > v {
		return f
	}
	if l == v {
		if value {
			return m.hi(f)
		}
		return m.lo(f)
	}
	// l < v: rebuild.
	return m.mk(l, m.restrict(m.lo(f), v, value), m.restrict(m.hi(f), v, value))
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f Ref, vars []int) Ref {
	return m.quantify(f, m.varMask(vars), true)
}

// Forall universally quantifies the given variables out of f.
func (m *Manager) Forall(f Ref, vars []int) Ref {
	return m.quantify(f, m.varMask(vars), false)
}

func (m *Manager) varMask(vars []int) []byte {
	mask := make([]byte, (m.numVars+7)/8)
	for _, v := range vars {
		m.checkVar(v)
		mask[v/8] |= 1 << uint(v%8)
	}
	return mask
}

func (m *Manager) quantify(f Ref, mask []byte, exists bool) Ref {
	if f == True || f == False {
		return f
	}
	op := byte('a')
	if exists {
		op = 'e'
	}
	key := qKey{f: f, vars: string(mask), op: op}
	if r, ok := m.qC[key]; ok {
		return r
	}
	l := m.level(f)
	lo := m.quantify(m.lo(f), mask, exists)
	hi := m.quantify(m.hi(f), mask, exists)
	var r Ref
	if mask[l/8]&(1<<uint(l%8)) != 0 {
		if exists {
			r = m.Or(lo, hi)
		} else {
			r = m.And(lo, hi)
		}
	} else {
		r = m.mk(l, lo, hi)
	}
	m.qC[key] = r
	return r
}

// AndExists computes ∃vars (f ∧ g) without building the full conjunction
// (the relational-product operation of symbolic traversal).
func (m *Manager) AndExists(f, g Ref, vars []int) Ref {
	return m.andExists(f, g, m.varMask(vars))
}

func (m *Manager) andExists(f, g Ref, mask []byte) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True && g == True:
		return True
	}
	// Cache piggybacks on qC via a distinct op marker by combining refs.
	key := qKey{f: f ^ (g << 16) ^ (g >> 16), vars: string(mask), op: 'r'}
	if r, ok := m.qC[key]; ok && m.aeCheck(key, f, g) {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if top != terminalLevel && mask[top/8]&(1<<uint(top%8)) != 0 {
		a := m.andExists(f0, g0, mask)
		if a == True {
			r = True
		} else {
			r = m.Or(a, m.andExists(f1, g1, mask))
		}
	} else {
		r = m.mk(top, m.andExists(f0, g0, mask), m.andExists(f1, g1, mask))
	}
	m.qC[key] = r
	m.aeStore(key, f, g)
	return r
}

// The xor-combined cache key can collide between (f,g) pairs; aeCheck/aeStore
// disambiguate with a secondary map.
func (m *Manager) aeCheck(key qKey, f, g Ref) bool {
	if m.aePairs == nil {
		return false
	}
	p, ok := m.aePairs[key]
	return ok && p == [2]Ref{f, g}
}

func (m *Manager) aeStore(key qKey, f, g Ref) {
	if m.aePairs == nil {
		m.aePairs = make(map[qKey][2]Ref)
	}
	m.aePairs[key] = [2]Ref{f, g}
}

// Eval evaluates f under the assignment (bit i of env = variable i).
func (m *Manager) Eval(f Ref, env uint64) bool {
	for f != True && f != False {
		l := m.level(f)
		if env&(1<<uint(l)) != 0 {
			f = m.hi(f)
		} else {
			f = m.lo(f)
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments over all NumVars
// variables, computed via the satisfying fraction (exact for counts below
// 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	memo := map[Ref]float64{}
	var frac func(f Ref) float64
	frac = func(f Ref) float64 {
		switch f {
		case False:
			return 0
		case True:
			return 1
		}
		if p, ok := memo[f]; ok {
			return p
		}
		p := 0.5*frac(m.lo(f)) + 0.5*frac(m.hi(f))
		memo[f] = p
		return p
	}
	return frac(f) * math.Exp2(float64(m.numVars))
}

// SatCountBig returns the exact number of satisfying assignments over all
// NumVars variables as a big integer. SatCount's float64 silently loses
// exactness past 2^53 assignments; this never does.
func (m *Manager) SatCountBig(f Ref) *big.Int {
	memo := map[Ref]*big.Int{}
	// varLevel treats terminals as sitting below the last variable.
	varLevel := func(f Ref) int {
		if f == True || f == False {
			return m.numVars
		}
		return int(m.level(f))
	}
	// below(f) counts assignments of the variables in [level(f), NumVars)
	// that satisfy f; skipped levels on each branch contribute a factor of
	// two per variable.
	var below func(f Ref) *big.Int
	below = func(f Ref) *big.Int {
		switch f {
		case False:
			return big.NewInt(0)
		case True:
			return big.NewInt(1)
		}
		if c, ok := memo[f]; ok {
			return c
		}
		l := int(m.level(f))
		c := new(big.Int)
		for _, br := range []Ref{m.lo(f), m.hi(f)} {
			sub := new(big.Int).Set(below(br))
			c.Add(c, sub.Lsh(sub, uint(varLevel(br)-l-1)))
		}
		memo[f] = c
		return c
	}
	res := new(big.Int).Set(below(f))
	return res.Lsh(res, uint(varLevel(f)))
}

// Support returns the variables f depends on, ascending.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int32]bool{}
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		vars[m.level(g)] = true
		walk(m.lo(g))
		walk(m.hi(g))
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// AnySat returns one satisfying assignment (as a bit vector over NumVars),
// or ok=false for the constant-false function.
func (m *Manager) AnySat(f Ref) (uint64, bool) {
	if f == False {
		return 0, false
	}
	var env uint64
	for f != True {
		if m.lo(f) != False {
			f = m.lo(f)
			continue
		}
		env |= 1 << uint(m.level(f))
		f = m.hi(f)
	}
	return env, true
}

// NodeCount returns the number of distinct internal nodes of f.
func (m *Manager) NodeCount(f Ref) int {
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		walk(m.lo(g))
		walk(m.hi(g))
	}
	walk(f)
	return len(seen)
}

// Cube builds the conjunction of literals: vars[i] at polarity pols[i].
func (m *Manager) Cube(vars []int, pols []bool) Ref {
	if len(vars) != len(pols) {
		panic("bdd: vars/pols length mismatch")
	}
	r := True
	for i, v := range vars {
		if pols[i] {
			r = m.And(r, m.Var(v))
		} else {
			r = m.And(r, m.NVar(v))
		}
	}
	return r
}
