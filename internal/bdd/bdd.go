// Package bdd implements reduced ordered binary decision diagrams (Bryant,
// reference [3] of the paper): the symbolic representation used in Section
// 2.2 for implicit traversal of reachability graphs. Nodes live in an arena
// indexed by dense ids; hash-consing guarantees canonicity, so equality of
// functions is pointer (id) equality.
//
// The kernel follows the CUDD lineage of Bryant-style packages:
//
//   - the unique table is a custom open-addressed hash table (FNV-mixed hash
//     over (level, lo, hi), power-of-two capacity, incremental growth) rather
//     than a Go map;
//   - operation results are memoized in a fixed-size lossy direct-mapped
//     cache keyed by an op tag (see cache.go) instead of unbounded maps;
//   - external functions are protected with reference counts and dead nodes
//     are reclaimed by mark-and-sweep garbage collection with a unique-table
//     rehash (see gc.go);
//   - the variable order is dynamic: Rudell sifting reorders levels in place
//     without invalidating outstanding Refs (see sift.go).
//
// Variables are distinct from levels: public APIs speak variables, node
// ordering uses levels, and var2level/level2var translate. With reordering
// disabled the two coincide.
package bdd

import (
	"fmt"
	"math"
	"math/big"
)

// node is a BDD vertex: order level and two cofactor ids. Terminals use
// level == terminalLevel; free arena slots use level == freeLevel.
type node struct {
	level  int32 // position in the variable order; terminals get math.MaxInt32
	lo, hi int32 // else / then children
}

const (
	terminalLevel = math.MaxInt32
	freeLevel     = -1
)

// Ref is a BDD function handle. Refs stay valid across garbage collection
// (while externally referenced) and across dynamic reordering (always).
type Ref int32

// False and True are the terminal functions.
const (
	False Ref = 0
	True  Ref = 1
)

// Manager owns the node arena, the unique table and the operation cache.
// It is not safe for concurrent use.
type Manager struct {
	nodes []node
	// extRef holds external reference counts (IncRef/DecRef); 0xffff is
	// sticky (pinned forever).
	extRef []uint16
	free   []int32 // reusable arena slots
	live   int     // live internal nodes (allocated minus freed)

	// Open-addressed unique table of node ids. 0 means empty and
	// tombstone (-1) marks deleted slots; node 0 is the False terminal,
	// which is never hash-consed, so the sentinels cannot collide with a
	// stored id.
	table      []int32
	tableMask  uint32
	tableUsed  int // occupied slots (live entries)
	tableTombs int // tombstones from deletions

	cache       []cacheEntry // unified direct-mapped op cache
	cacheMask   uint32
	cacheGrowAt int

	// Interned quantification masks: mask id -> per-variable bitmask.
	masks       [][]uint64
	maskIDs     map[string]int32
	maskScratch []byte

	// Variable order. level2var[l] is the variable tested at level l.
	var2level []int32
	level2var []int32

	// Projection functions, pinned as GC roots once created.
	varPos []Ref // Var(i) node, 0 when not yet built
	varNeg []Ref // NVar(i) node

	numVars int

	// conc is non-nil between BeginConcurrent and EndConcurrent: node
	// creation and the memoized operations switch to their lock-free
	// variants (CAS publication into the pre-sized arena epoch, seqlock
	// op cache) so any number of goroutines may run ITE/quantify/
	// AndExistsMask concurrently. See concurrent.go.
	conc *concState

	stats Stats
}

// Stats is a snapshot of kernel counters (see Manager.Stats).
type Stats struct {
	// Live is the current number of live internal nodes.
	Live int
	// PeakLive is the maximum number of simultaneously live internal
	// nodes observed.
	PeakLive int
	// Allocated is the arena length (live + free slots), terminals
	// excluded.
	Allocated int
	// CacheLookups and CacheHits count operation-cache probes.
	CacheLookups, CacheHits uint64
	// CacheEntries is the current capacity of the lossy op cache.
	CacheEntries int
	// UniqueLookups and UniqueHits count unique-table probes (hash
	// consing).
	UniqueLookups, UniqueHits uint64
	// GCRuns and GCFreed count mark-and-sweep collections and the nodes
	// they reclaimed.
	GCRuns  int
	GCFreed uint64
	// Reorders and Swaps count sifting passes and adjacent-level swaps.
	Reorders int
	Swaps    uint64
	// CASRetries counts failed unique-table slot claims in concurrent
	// sections (two goroutines raced for one slot); Leaked counts arena
	// slots abandoned after losing a publication race to an identical
	// node (reclaimed onto the free list at EndConcurrent). EpochRetries
	// counts concurrent sections that exhausted their pre-sized arena
	// epoch and were re-run with a doubled one.
	CASRetries   uint64
	Leaked       uint64
	EpochRetries uint64
}

// CacheHitRate returns the op-cache hit fraction in [0,1].
func (s Stats) CacheHitRate() float64 {
	if s.CacheLookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheLookups)
}

// Stats returns a snapshot of the kernel counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.Live = m.live
	s.Allocated = len(m.nodes) - 2
	s.CacheEntries = len(m.cache)
	return s
}

const (
	initialTableSize = 1 << 10
	initialCacheSize = 1 << 12
	maxCacheSize     = 1 << 21
)

// New creates a manager for the given number of variables. A negative count
// panics: callers size managers from place/signal counts, which cannot be
// negative unless the caller is broken.
func New(numVars int) *Manager {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	m := &Manager{
		table:       make([]int32, initialTableSize),
		tableMask:   initialTableSize - 1,
		cache:       make([]cacheEntry, initialCacheSize),
		cacheMask:   initialCacheSize - 1,
		cacheGrowAt: initialCacheSize,
		maskIDs:     make(map[string]int32),
		numVars:     numVars,
		var2level:   make([]int32, numVars),
		level2var:   make([]int32, numVars),
		varPos:      make([]Ref, numVars),
		varNeg:      make([]Ref, numVars),
	}
	for i := 0; i < numVars; i++ {
		m.var2level[i] = int32(i)
		m.level2var[i] = int32(i)
	}
	// ids 0 and 1 are the terminals.
	m.nodes = append(m.nodes,
		node{level: terminalLevel, lo: 0, hi: 0},
		node{level: terminalLevel, lo: 1, hi: 1})
	m.extRef = append(m.extRef, 0xffff, 0xffff)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the number of live nodes (including terminals). It shrinks
// when GC reclaims dead nodes.
func (m *Manager) Size() int { return m.live + 2 }

// Order returns the current variable order: element l is the variable
// tested at level l.
func (m *Manager) Order() []int {
	out := make([]int, m.numVars)
	for l, v := range m.level2var {
		out[l] = int(v)
	}
	return out
}

// Level returns the current order position of variable v.
func (m *Manager) Level(v int) int {
	m.checkVar(v)
	return int(m.var2level[v])
}

// Var returns the function of variable i. Projection functions are pinned:
// they survive garbage collection without explicit references.
func (m *Manager) Var(i int) Ref {
	m.checkVar(i)
	if r := m.varPos[i]; r != 0 {
		return r
	}
	r := m.mk(m.var2level[i], False, True)
	m.varPos[i] = r
	return r
}

// NVar returns the negation of variable i.
func (m *Manager) NVar(i int) Ref {
	m.checkVar(i)
	if r := m.varNeg[i]; r != 0 {
		return r
	}
	r := m.mk(m.var2level[i], True, False)
	m.varNeg[i] = r
	return r
}

// checkVar guards the public Var/Cube entry points with an invariant panic:
// variable indexes are fixed at New time, so an out-of-range index is a bug
// in the calling encoder.
func (m *Manager) checkVar(i int) {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
}

// hashNode FNV-mixes the node triple into a table index seed.
func hashNode(level, lo, hi int32) uint32 {
	const prime = 16777619
	h := uint32(2166136261)
	h = (h ^ uint32(level)) * prime
	h = (h ^ uint32(lo)) * prime
	h = (h ^ uint32(hi)) * prime
	return h ^ h>>16
}

// mk returns the canonical node (level, lo, hi), consulting and updating
// the open-addressed unique table.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if m.conc != nil {
		return m.mkC(level, lo, hi)
	}
	if lo == hi {
		return lo
	}
	m.stats.UniqueLookups++
	h := hashNode(level, int32(lo), int32(hi)) & m.tableMask
	insert := int32(-2)
	for {
		id := m.table[h]
		if id == 0 {
			break
		}
		if id == tombstone {
			if insert == -2 {
				insert = int32(h)
			}
		} else {
			n := &m.nodes[id]
			if n.level == level && n.lo == int32(lo) && n.hi == int32(hi) {
				m.stats.UniqueHits++
				return Ref(id)
			}
		}
		h = (h + 1) & m.tableMask
	}
	id := m.alloc(level, lo, hi)
	if insert >= 0 {
		m.table[insert] = id
		m.tableTombs--
	} else {
		m.table[h] = id
	}
	m.tableUsed++
	if (m.tableUsed+m.tableTombs)*4 >= len(m.table)*3 {
		m.rehash(m.tableUsed*2 >= len(m.table))
	}
	return Ref(id)
}

// alloc claims an arena slot for a fresh node.
func (m *Manager) alloc(level int32, lo, hi Ref) int32 {
	var id int32
	if n := len(m.free); n > 0 {
		id = m.free[n-1]
		m.free = m.free[:n-1]
		m.nodes[id] = node{level: level, lo: int32(lo), hi: int32(hi)}
		m.extRef[id] = 0
	} else {
		id = int32(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, lo: int32(lo), hi: int32(hi)})
		m.extRef = append(m.extRef, 0)
	}
	m.live++
	if m.live > m.stats.PeakLive {
		m.stats.PeakLive = m.live
	}
	if m.live > m.cacheGrowAt {
		m.growCache()
	}
	return id
}

const tombstone = -1

// rehash rebuilds the unique table from the arena, doubling capacity when
// grow is set (tombstones are dropped either way).
func (m *Manager) rehash(grow bool) {
	size := len(m.table)
	if grow {
		size *= 2
	}
	m.rehashTo(size)
}

// rehashTo rebuilds the unique table from the arena at an explicit
// power-of-two capacity.
func (m *Manager) rehashTo(size int) {
	m.table = make([]int32, size)
	m.tableMask = uint32(size - 1)
	m.tableUsed = 0
	m.tableTombs = 0
	for id := int32(2); id < int32(len(m.nodes)); id++ {
		if m.nodes[id].level != freeLevel {
			m.tableInsert(id)
		}
	}
}

// tableInsert adds a node id (not currently present) to the unique table.
func (m *Manager) tableInsert(id int32) {
	n := &m.nodes[id]
	h := hashNode(n.level, n.lo, n.hi) & m.tableMask
	for m.table[h] != 0 && m.table[h] != tombstone {
		h = (h + 1) & m.tableMask
	}
	if m.table[h] == tombstone {
		m.tableTombs--
	}
	m.table[h] = id
	m.tableUsed++
}

// tableDelete removes a node id from the unique table, leaving a tombstone.
func (m *Manager) tableDelete(id int32) {
	n := &m.nodes[id]
	h := hashNode(n.level, n.lo, n.hi) & m.tableMask
	for {
		cur := m.table[h]
		if cur == id {
			m.table[h] = tombstone
			m.tableUsed--
			m.tableTombs++
			return
		}
		if cur == 0 {
			// Deleting a node the unique table does not hold means the
			// table and the node store disagree — corruption that must
			// surface immediately, not be papered over.
			panic("bdd: tableDelete of absent node")
		}
		h = (h + 1) & m.tableMask
	}
}

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }
func (m *Manager) lo(f Ref) Ref      { return Ref(m.nodes[f].lo) }
func (m *Manager) hi(f Ref) Ref      { return Ref(m.nodes[f].hi) }

// ITE computes if-then-else(f, g, h), the universal connective.
func (m *Manager) ITE(f, g, h Ref) Ref {
	if m.conc != nil {
		return m.iteC(f, g, h)
	}
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case f == g: // ite(f, f, h) = ite(f, 1, h)
		g = True
	case f == h: // ite(f, g, f) = ite(f, g, 0)
		h = False
	}
	if r, ok := m.cacheGet(opITE, int32(f), int32(g), int32(h)); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cachePut(opITE, int32(f), int32(g), int32(h), int32(r))
	return r
}

func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	if m.level(f) != level {
		return f, f
	}
	return m.lo(f), m.hi(f)
}

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Implies returns f → g.
func (m *Manager) Implies(f, g Ref) Ref { return m.ITE(f, g, True) }

// Diff returns f ∧ ¬g — the frontier-set simplification primitive of
// symbolic traversal (new states = image \ reached).
func (m *Manager) Diff(f, g Ref) Ref { return m.ITE(g, False, f) }

// AndN folds And over the arguments (True for none).
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over the arguments (False for none).
func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Restrict fixes variable v to value in f (Shannon cofactor).
func (m *Manager) Restrict(f Ref, v int, value bool) Ref {
	m.checkVar(v)
	val := int32(0)
	if value {
		val = 1
	}
	return m.restrict(f, m.var2level[v], val)
}

func (m *Manager) restrict(f Ref, lv, val int32) Ref {
	if m.conc != nil {
		return m.restrictC(f, lv, val)
	}
	l := m.level(f)
	if l > lv {
		return f
	}
	if l == lv {
		if val != 0 {
			return m.hi(f)
		}
		return m.lo(f)
	}
	if r, ok := m.cacheGet(opRestrict, int32(f), lv, val); ok {
		return r
	}
	r := m.mk(l, m.restrict(m.lo(f), lv, val), m.restrict(m.hi(f), lv, val))
	m.cachePut(opRestrict, int32(f), lv, val, int32(r))
	return r
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f Ref, vars []int) Ref {
	return m.quantify(f, m.internMask(vars), opExists)
}

// Forall universally quantifies the given variables out of f.
func (m *Manager) Forall(f Ref, vars []int) Ref {
	return m.quantify(f, m.internMask(vars), opForall)
}

// internMask returns the id of the interned variable bitmask for vars,
// allocating only on first sight of a mask. Repeated quantifications over
// the same variable set are allocation-free.
func (m *Manager) internMask(vars []int) int32 {
	words := (m.numVars + 63) / 64
	if cap(m.maskScratch) < words*8 {
		m.maskScratch = make([]byte, words*8)
	}
	buf := m.maskScratch[:words*8]
	for i := range buf {
		buf[i] = 0
	}
	for _, v := range vars {
		m.checkVar(v)
		buf[v/8] |= 1 << uint(v%8)
	}
	if id, ok := m.maskIDs[string(buf)]; ok {
		return id
	}
	mask := make([]uint64, words)
	for w := 0; w < words; w++ {
		var x uint64
		for b := 0; b < 8; b++ {
			x |= uint64(buf[w*8+b]) << uint(8*b)
		}
		mask[w] = x
	}
	id := int32(len(m.masks))
	m.masks = append(m.masks, mask)
	m.maskIDs[string(buf)] = id
	return id
}

// maskHasLevel reports whether the variable at order level l is in mask id.
func (m *Manager) maskHasLevel(id, l int32) bool {
	v := m.level2var[l]
	return m.masks[id][v>>6]&(1<<uint(v&63)) != 0
}

func (m *Manager) quantify(f Ref, maskID int32, op uint32) Ref {
	if m.conc != nil {
		return m.quantifyC(f, maskID, op)
	}
	if f == True || f == False {
		return f
	}
	if r, ok := m.cacheGet(op, int32(f), maskID, 0); ok {
		return r
	}
	l := m.level(f)
	lo := m.quantify(m.lo(f), maskID, op)
	hi := m.quantify(m.hi(f), maskID, op)
	var r Ref
	if m.maskHasLevel(maskID, l) {
		if op == opExists {
			r = m.Or(lo, hi)
		} else {
			r = m.And(lo, hi)
		}
	} else {
		r = m.mk(l, lo, hi)
	}
	m.cachePut(op, int32(f), maskID, 0, int32(r))
	return r
}

// AndExists computes ∃vars (f ∧ g) without building the full conjunction
// (the relational-product operation of symbolic traversal).
func (m *Manager) AndExists(f, g Ref, vars []int) Ref {
	return m.andExists(f, g, m.internMask(vars))
}

func (m *Manager) andExists(f, g Ref, maskID int32) Ref {
	if m.conc != nil {
		return m.andExistsC(f, g, maskID)
	}
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return m.quantify(g, maskID, opExists)
	case g == True:
		return m.quantify(f, maskID, opExists)
	case f == g:
		return m.quantify(f, maskID, opExists)
	}
	if g < f { // ∧ is commutative: canonicalize the cache key
		f, g = g, f
	}
	if r, ok := m.cacheGet(opAndExists, int32(f), int32(g), maskID); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if m.maskHasLevel(maskID, top) {
		a := m.andExists(f0, g0, maskID)
		if a == True {
			r = True
		} else {
			r = m.Or(a, m.andExists(f1, g1, maskID))
		}
	} else {
		r = m.mk(top, m.andExists(f0, g0, maskID), m.andExists(f1, g1, maskID))
	}
	m.cachePut(opAndExists, int32(f), int32(g), maskID, int32(r))
	return r
}

// Eval evaluates f under the assignment (bit i of env = variable i).
func (m *Manager) Eval(f Ref, env uint64) bool {
	for f != True && f != False {
		v := m.level2var[m.level(f)]
		if env&(1<<uint(v)) != 0 {
			f = m.hi(f)
		} else {
			f = m.lo(f)
		}
	}
	return f == True
}

// EvalVec evaluates f under the assignment env[i] = value of variable i.
// Unlike Eval it is not limited to 64 variables; variables at or beyond
// len(env) read as false.
func (m *Manager) EvalVec(f Ref, env []bool) bool {
	for f != True && f != False {
		v := int(m.level2var[m.level(f)])
		if v < len(env) && env[v] {
			f = m.hi(f)
		} else {
			f = m.lo(f)
		}
	}
	return f == True
}

// AnySatVec returns one satisfying assignment as a vector over NumVars
// variables, or ok=false for the constant-false function. Unlike AnySat it
// is not limited to 64 variables. Variables skipped on the chosen branch
// stay false, so the assignment is deterministic for a fixed diagram.
func (m *Manager) AnySatVec(f Ref) ([]bool, bool) {
	if f == False {
		return nil, false
	}
	env := make([]bool, m.numVars)
	for f != True {
		if m.lo(f) != False {
			f = m.lo(f)
			continue
		}
		env[m.level2var[m.level(f)]] = true
		f = m.hi(f)
	}
	return env, true
}

// SatCount returns the number of satisfying assignments over all NumVars
// variables, computed via the satisfying fraction (exact for counts below
// 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	memo := map[Ref]float64{}
	var frac func(f Ref) float64
	frac = func(f Ref) float64 {
		switch f {
		case False:
			return 0
		case True:
			return 1
		}
		if p, ok := memo[f]; ok {
			return p
		}
		p := 0.5*frac(m.lo(f)) + 0.5*frac(m.hi(f))
		memo[f] = p
		return p
	}
	return frac(f) * math.Exp2(float64(m.numVars))
}

// SatCountBig returns the exact number of satisfying assignments over all
// NumVars variables as a big integer. SatCount's float64 silently loses
// exactness past 2^53 assignments; this never does.
func (m *Manager) SatCountBig(f Ref) *big.Int {
	memo := map[Ref]*big.Int{}
	// varLevel treats terminals as sitting below the last variable.
	varLevel := func(f Ref) int {
		if f == True || f == False {
			return m.numVars
		}
		return int(m.level(f))
	}
	// below(f) counts assignments of the variables at levels
	// [level(f), NumVars) that satisfy f; skipped levels on each branch
	// contribute a factor of two per variable.
	var below func(f Ref) *big.Int
	below = func(f Ref) *big.Int {
		switch f {
		case False:
			return big.NewInt(0)
		case True:
			return big.NewInt(1)
		}
		if c, ok := memo[f]; ok {
			return c
		}
		l := int(m.level(f))
		c := new(big.Int)
		for _, br := range []Ref{m.lo(f), m.hi(f)} {
			sub := new(big.Int).Set(below(br))
			c.Add(c, sub.Lsh(sub, uint(varLevel(br)-l-1)))
		}
		memo[f] = c
		return c
	}
	res := new(big.Int).Set(below(f))
	return res.Lsh(res, uint(varLevel(f)))
}

// Support returns the variables f depends on, ascending.
func (m *Manager) Support(f Ref) []int {
	seen := map[Ref]bool{}
	vars := map[int32]bool{}
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		vars[m.level2var[m.level(g)]] = true
		walk(m.lo(g))
		walk(m.hi(g))
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, int(v))
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// AnySat returns one satisfying assignment (as a bit vector over NumVars),
// or ok=false for the constant-false function.
func (m *Manager) AnySat(f Ref) (uint64, bool) {
	if f == False {
		return 0, false
	}
	var env uint64
	for f != True {
		if m.lo(f) != False {
			f = m.lo(f)
			continue
		}
		env |= 1 << uint(m.level2var[m.level(f)])
		f = m.hi(f)
	}
	return env, true
}

// NodeCount returns the number of distinct internal nodes of f.
func (m *Manager) NodeCount(f Ref) int {
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(g Ref) {
		if g == True || g == False || seen[g] {
			return
		}
		seen[g] = true
		walk(m.lo(g))
		walk(m.hi(g))
	}
	walk(f)
	return len(seen)
}

// Cube builds the conjunction of literals: vars[i] at polarity pols[i].
// Mismatched slice lengths panic — a malformed call, not a runtime state.
func (m *Manager) Cube(vars []int, pols []bool) Ref {
	if len(vars) != len(pols) {
		panic("bdd: vars/pols length mismatch")
	}
	r := True
	for i, v := range vars {
		if pols[i] {
			r = m.And(r, m.Var(v))
		} else {
			r = m.And(r, m.NVar(v))
		}
	}
	return r
}
