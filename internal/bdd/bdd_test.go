package bdd

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/boolmin"
)

func TestTerminalsAndVars(t *testing.T) {
	m := New(3)
	if m.Eval(True, 0) != true || m.Eval(False, 7) != false {
		t.Fatal("terminal evaluation broken")
	}
	x := m.Var(0)
	if !m.Eval(x, 0b001) || m.Eval(x, 0b110) {
		t.Fatal("Var evaluation broken")
	}
	nx := m.NVar(0)
	if m.Eval(nx, 0b001) || !m.Eval(nx, 0b110) {
		t.Fatal("NVar evaluation broken")
	}
	if m.Var(1) != m.Var(1) {
		t.Fatal("hash consing broken: same var must be same ref")
	}
}

func TestBooleanOps(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c) // ab + c
	for env := uint64(0); env < 8; env++ {
		want := (env&1 != 0 && env&2 != 0) || env&4 != 0
		if m.Eval(f, env) != want {
			t.Fatalf("ab+c wrong at %03b", env)
		}
	}
	if m.Not(m.Not(f)) != f {
		t.Fatal("double negation must be identity (canonicity)")
	}
	if m.Xor(f, f) != False || m.Xor(f, m.Not(f)) != True {
		t.Fatal("xor identities broken")
	}
	if m.Implies(f, f) != True {
		t.Fatal("f->f must be true")
	}
	if m.Diff(f, f) != False {
		t.Fatal("f\\f must be false")
	}
	if m.AndN(a, b, c) != m.And(a, m.And(b, c)) {
		t.Fatal("AndN broken")
	}
	if m.OrN() != False || m.AndN() != True {
		t.Fatal("empty folds broken")
	}
}

func TestRestrictAndQuantify(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, b)
	if m.Restrict(f, 0, true) != b {
		t.Fatal("restrict a=1 of ab must be b")
	}
	if m.Restrict(f, 0, false) != False {
		t.Fatal("restrict a=0 of ab must be false")
	}
	if m.Exists(f, []int{0}) != b {
		t.Fatal("∃a.ab must be b")
	}
	if m.Forall(f, []int{0}) != False {
		t.Fatal("∀a.ab must be false")
	}
	g := m.Or(a, b)
	if m.Forall(g, []int{0}) != b {
		t.Fatal("∀a.(a+b) must be b")
	}
	if m.Exists(g, []int{0, 1}) != True {
		t.Fatal("∃ab.(a+b) must be true")
	}
}

func TestAndExists(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	g := m.Or(a, m.Var(3))
	want := m.Exists(m.And(f, g), []int{0, 1})
	got := m.AndExists(f, g, []int{0, 1})
	if want != got {
		t.Fatal("AndExists must equal Exists∘And")
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(True); got != 16 {
		t.Fatalf("SatCount(true) = %v", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(false) = %v", got)
	}
	if got := m.SatCount(a); got != 8 {
		t.Fatalf("SatCount(a) = %v", got)
	}
	if got := m.SatCount(m.And(a, b)); got != 4 {
		t.Fatalf("SatCount(ab) = %v", got)
	}
	if got := m.SatCount(m.Xor(a, b)); got != 8 {
		t.Fatalf("SatCount(a^b) = %v", got)
	}
}

func TestSupportAndNodeCount(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(0), m.Var(3)), m.Var(4))
	sup := m.Support(f)
	if len(sup) != 3 || sup[0] != 0 || sup[1] != 3 || sup[2] != 4 {
		t.Fatalf("support = %v", sup)
	}
	if m.NodeCount(f) == 0 || m.NodeCount(True) != 0 {
		t.Fatal("node counts broken")
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	if _, ok := m.AnySat(False); ok {
		t.Fatal("false has no satisfying assignment")
	}
	f := m.And(m.NVar(0), m.Var(2))
	env, ok := m.AnySat(f)
	if !ok || !m.Eval(f, env) {
		t.Fatalf("AnySat returned non-satisfying %b", env)
	}
}

func TestEvalVecAnySatVec(t *testing.T) {
	// 80 variables exceeds the uint64 Eval/AnySat limit; the vector forms
	// must agree with the scalar ones on the low variables and handle the
	// high ones.
	m := New(80)
	f := m.AndN(m.NVar(0), m.Var(2), m.Var(70))
	if _, ok := m.AnySatVec(False); ok {
		t.Fatal("false has no satisfying assignment")
	}
	env, ok := m.AnySatVec(f)
	if !ok || !m.EvalVec(f, env) {
		t.Fatalf("AnySatVec returned non-satisfying %v", env)
	}
	if env[0] || !env[2] || !env[70] {
		t.Fatalf("AnySatVec assignment wrong: %v", env)
	}
	// Short env vectors read missing variables as false.
	if m.EvalVec(f, []bool{false, false, true}) {
		t.Fatal("EvalVec must treat out-of-range variables as false")
	}
	if !m.EvalVec(m.NVar(70), nil) {
		t.Fatal("EvalVec(nil) must satisfy a negated high variable")
	}
	// Agreement with scalar Eval on low variables.
	g := m.And(m.Var(1), m.NVar(3))
	for _, e := range []uint64{0, 0b0010, 0b1010, 0b0110} {
		vec := make([]bool, 64)
		for i := range vec {
			vec[i] = e&(1<<uint(i)) != 0
		}
		if m.Eval(g, e) != m.EvalVec(g, vec) {
			t.Fatalf("Eval and EvalVec disagree on %b", e)
		}
	}
}

func TestCube(t *testing.T) {
	m := New(3)
	f := m.Cube([]int{0, 2}, []bool{true, false})
	if !m.Eval(f, 0b001) || m.Eval(f, 0b101) || m.Eval(f, 0b000) {
		t.Fatal("cube evaluation broken")
	}
}

// Property: BDD operations agree with truth-table semantics on random
// 5-variable expressions.
func TestQuickAgainstTruthTable(t *testing.T) {
	const n = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(n)
		// Random expression tree over 6 ops.
		var tt func(depth int) (Ref, func(uint64) bool)
		tt = func(depth int) (Ref, func(uint64) bool) {
			if depth == 0 || rng.Intn(3) == 0 {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					return m.Var(v), func(e uint64) bool { return e&(1<<uint(v)) != 0 }
				}
				return m.NVar(v), func(e uint64) bool { return e&(1<<uint(v)) == 0 }
			}
			l, lf := tt(depth - 1)
			r, rf := tt(depth - 1)
			switch rng.Intn(3) {
			case 0:
				return m.And(l, r), func(e uint64) bool { return lf(e) && rf(e) }
			case 1:
				return m.Or(l, r), func(e uint64) bool { return lf(e) || rf(e) }
			default:
				return m.Xor(l, r), func(e uint64) bool { return lf(e) != rf(e) }
			}
		}
		ref, eval := tt(4)
		count := 0.0
		for e := uint64(0); e < 1<<n; e++ {
			if m.Eval(ref, e) != eval(e) {
				return false
			}
			if eval(e) {
				count++
			}
		}
		return m.SatCount(ref) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ISOP produces a cover G with L ⊆ G ⊆ U, verified pointwise.
func TestQuickISOP(t *testing.T) {
	const n = 5
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(n)
		var onM, dcM []uint64
		for e := uint64(0); e < 1<<n; e++ {
			switch rng.Intn(3) {
			case 0:
				onM = append(onM, e)
			case 1:
				dcM = append(dcM, e)
			}
		}
		l := m.FromMinterms(onM)
		u := m.Or(l, m.FromMinterms(dcM))
		cv := m.ISOP(l, u)
		for e := uint64(0); e < 1<<n; e++ {
			g := cv.Eval(e)
			if m.Eval(l, e) && !g {
				return false // on-set not covered
			}
			if g && !m.Eval(u, e) {
				return false // off-set covered
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestISOPSimple(t *testing.T) {
	m := New(3)
	// f = ab + c exactly (no don't cares).
	f := m.Or(m.And(m.Var(0), m.Var(1)), m.Var(2))
	cv := m.ISOP(f, f)
	if len(cv.Cubes) != 2 {
		t.Fatalf("isop(ab+c) = %s", cv.String())
	}
	if m.FromCover(cv) != f {
		t.Fatal("FromCover(ISOP(f)) must rebuild f")
	}
}

func TestFromCoverRoundTrip(t *testing.T) {
	m := New(4)
	cv := boolmin.Cover{N: 4, Cubes: []boolmin.Cube{
		boolmin.FullCube().WithLiteral(0, true).WithLiteral(2, false),
		boolmin.FullCube().WithLiteral(3, true),
	}}
	f := m.FromCover(cv)
	for e := uint64(0); e < 16; e++ {
		if m.Eval(f, e) != cv.Eval(e) {
			t.Fatalf("mismatch at %04b", e)
		}
	}
}

func TestVarPanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range var must panic")
		}
	}()
	m.Var(5)
}

func TestSatCountBig(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	for _, tc := range []struct {
		f    Ref
		want int64
	}{
		{True, 16}, {False, 0}, {a, 8}, {m.And(a, b), 4}, {m.Xor(a, b), 8},
	} {
		if got := m.SatCountBig(tc.f); got.Cmp(big.NewInt(tc.want)) != 0 {
			t.Fatalf("SatCountBig = %v, want %d", got, tc.want)
		}
	}
}

// TestSatCountBigBeyondFloat64 checks exactness where the float64 SatCount
// cannot represent the answer: 2^60+1 assignments is not a float64 value.
func TestSatCountBigBeyondFloat64(t *testing.T) {
	m := New(60)
	// f = (v0 ∧ v1 ∧ ... ∧ v58) ∨ ¬v0: a cube of 2 assignments over v0..v58
	// unioned with half the space. Exact count = 2^59 + 2.
	cube := True
	for v := 0; v < 59; v++ {
		cube = m.And(cube, m.Var(v))
	}
	f := m.Or(cube, m.NVar(0))
	want := new(big.Int).Lsh(big.NewInt(1), 59)
	want.Add(want, big.NewInt(2))
	if got := m.SatCountBig(f); got.Cmp(want) != 0 {
		t.Fatalf("SatCountBig = %v, want %v", got, want)
	}
	// The float64 count agrees only up to rounding: it cannot see the +2.
	if got := m.SatCount(f); math.Abs(got-math.Exp2(59)) > 1e4 {
		t.Fatalf("SatCount far from 2^59: %v", got)
	}
}
