package bdd

import "sync/atomic"

// Concurrent sections. Between BeginConcurrent and EndConcurrent the
// manager switches node creation and every memoized operation to lock-free
// variants, so any number of goroutines may run ITE (and the derived
// connectives), ExistsMask/ForallMask, AndExistsMask and Restrict
// concurrently on the same manager. The design is epoch-based, in the
// spirit of Sylvan (van Dijk & van de Pol, TACAS 2015), specialized to a
// bounded section:
//
//   - BeginConcurrent pre-sizes an arena epoch (hint fresh slots, marked
//     free) and a shared open-addressed unique table with load factor at
//     most 1/2, so nothing ever grows, moves or rehashes while goroutines
//     are inside the section;
//   - mkC claims fresh slots with an atomic bump allocator and publishes
//     node ids into unique-table slots with a CAS. A goroutine that loses
//     the publication race to an identical node abandons its slot (counted
//     in Stats.Leaked; reclaimed onto the free list at EndConcurrent);
//   - the operation cache is a lossy seqlock table: writers CAS the entry
//     sequence number odd, store, and release it even; readers validate the
//     sequence number around the read and treat any tear as a miss;
//   - a section that exhausts its epoch panics with EpochFull. RunConcurrent
//     wraps the begin/end pair and re-runs the section with a doubled epoch
//     (counted in Stats.EpochRetries).
//
// Memory-model argument. Published nodes are immutable for the whole
// section (no GC, no sifting — both panic if attempted). A creating
// goroutine writes the node's fields into a slot that only it can address
// (the bump allocator hands each index to exactly one goroutine), and only
// then CASes the id into the unique table. Every other goroutine reaches
// the node exclusively through an atomic load of that table slot (or of a
// cache entry validated by its seqlock, whose writer loaded the id from the
// table first). Go's sync/atomic operations are sequentially consistent, so
// the CAS/load pair is a happens-before edge ordering the plain field
// writes before every field read: the section is race-detector clean.
//
// Results are canonical, hence schedule-independent: whatever interleaving
// occurs, (level, lo, hi) resolves to exactly one published id, so two
// goroutines computing the same Boolean function always return the same
// Ref — this is what makes parallel symbolic traversal deterministic.
//
// During a section the manager-mutating entry points (Var/NVar on first
// use, Cube, Exists/Forall/AndExists — which intern masks — IncRef/DecRef,
// GC, Sift) must not be called; callers pre-build variables and intern
// VarMasks beforehand.

// EpochFull is the panic value raised when a concurrent section exhausts
// its pre-sized arena epoch. Size is the epoch that proved too small;
// RunConcurrent retries with twice that.
type EpochFull struct{ Size int }

// VarMask is a pre-interned quantification variable set. Interning mutates
// the manager (a map insert), so masks must be created outside concurrent
// sections; using one inside is lock-free.
type VarMask int32

// InternVarMask interns the variable set and returns its mask handle.
// Not safe inside a concurrent section.
func (m *Manager) InternVarMask(vars []int) VarMask {
	return VarMask(m.internMask(vars))
}

// ExistsMask is Exists with a pre-interned mask (safe in concurrent
// sections).
func (m *Manager) ExistsMask(f Ref, mask VarMask) Ref {
	return m.quantify(f, int32(mask), opExists)
}

// ForallMask is Forall with a pre-interned mask (safe in concurrent
// sections).
func (m *Manager) ForallMask(f Ref, mask VarMask) Ref {
	return m.quantify(f, int32(mask), opForall)
}

// AndExistsMask is AndExists with a pre-interned mask (safe in concurrent
// sections).
func (m *Manager) AndExistsMask(f, g Ref, mask VarMask) Ref {
	return m.andExists(f, g, int32(mask))
}

// ccEntry is one seqlock-protected slot of the concurrent op cache. seq is
// odd while a writer holds the slot; readers validate seq before and after
// reading the fields and treat any change as a miss.
type ccEntry struct {
	seq        atomic.Uint32
	op         atomic.Uint32
	f, g, h, r atomic.Int32
}

// concState carries the per-section structures: the shared unique table,
// the epoch bump allocator and the seqlock cache.
type concState struct {
	table     []atomic.Int32 // node ids; 0 = empty (no tombstones: no deletion)
	tableMask uint32

	base, limit int64        // epoch arena window [base, limit)
	next        atomic.Int64 // bump allocation cursor

	cache     []ccEntry
	cacheMask uint32

	casRetries atomic.Uint64
	leaked     atomic.Uint64
}

// BeginConcurrent enters a concurrent section with room for at least hint
// fresh nodes. It pre-extends the arena, rebuilds the unique table into the
// shared atomic form at load factor ≤ 1/2 (dropping tombstones), and
// allocates the seqlock cache. Nesting panics.
func (m *Manager) BeginConcurrent(hint int) {
	if m.conc != nil {
		panic("bdd: nested BeginConcurrent")
	}
	if hint < 1<<8 {
		hint = 1 << 8
	}
	c := &concState{}

	size := 1
	for size < (m.tableUsed+hint)*2 {
		size *= 2
	}
	c.table = make([]atomic.Int32, size)
	c.tableMask = uint32(size - 1)
	for id := int32(2); id < int32(len(m.nodes)); id++ {
		if m.nodes[id].level != freeLevel {
			n := &m.nodes[id]
			h := hashNode(n.level, n.lo, n.hi) & c.tableMask
			for c.table[h].Load() != 0 {
				h = (h + 1) & c.tableMask
			}
			c.table[h].Store(id)
		}
	}

	c.base = int64(len(m.nodes))
	c.limit = c.base + int64(hint)
	for int64(len(m.nodes)) < c.limit {
		m.nodes = append(m.nodes, node{level: freeLevel})
		m.extRef = append(m.extRef, 0)
	}
	c.next.Store(c.base)

	csize := len(m.cache)
	c.cache = make([]ccEntry, csize)
	c.cacheMask = uint32(csize - 1)

	m.conc = c
}

// EndConcurrent leaves the section: the epoch's unused tail is truncated,
// leaked slots go back on the free list, the live count and contention
// stats are folded in, and the sequential unique table is rebuilt at the
// section's capacity. Always runs to completion, including after an
// EpochFull unwind.
func (m *Manager) EndConcurrent() {
	c := m.conc
	if c == nil {
		panic("bdd: EndConcurrent without BeginConcurrent")
	}
	m.conc = nil

	next := c.next.Load()
	if next > c.limit {
		next = c.limit
	}
	for id := c.base; id < next; id++ {
		if m.nodes[id].level == freeLevel {
			m.free = append(m.free, int32(id))
		} else {
			m.live++
		}
	}
	m.nodes = m.nodes[:next]
	m.extRef = m.extRef[:next]
	if m.live > m.stats.PeakLive {
		m.stats.PeakLive = m.live
	}

	m.stats.CASRetries += c.casRetries.Load()
	m.stats.Leaked += c.leaked.Load()

	// The sequential cache survived untouched and its entries are still
	// valid (nodes are immutable during a section); only the table layout
	// must be rebuilt around the new nodes.
	m.rehashTo(len(c.table))
	if m.live > m.cacheGrowAt {
		m.growCache()
	}
}

// RunConcurrent runs fn inside a concurrent section sized by hint,
// re-running it with a doubled epoch whenever it reports exhaustion. fn
// returns false when any goroutine it spawned recovered an EpochFull panic
// (goroutine panics cannot cross stacks, so workers must catch their own);
// an EpochFull escaping fn itself is caught here and treated the same.
// Results computed in a failed round are discarded and recomputed — safely,
// since canonical nodes from the failed round remain valid.
func (m *Manager) RunConcurrent(hint int, fn func() bool) {
	for {
		full := !m.runEpoch(hint, fn)
		if !full {
			return
		}
		m.stats.EpochRetries++
		hint *= 2
	}
}

func (m *Manager) runEpoch(hint int, fn func() bool) (ok bool) {
	m.BeginConcurrent(hint)
	defer m.EndConcurrent()
	defer func() {
		if r := recover(); r != nil {
			if _, isFull := r.(EpochFull); isFull {
				ok = false
				return
			}
			panic(r)
		}
	}()
	return fn()
}

// allocC bump-allocates one epoch slot and writes the node's fields into
// it. The fields are plain writes: the slot index was handed to exactly one
// goroutine, and publication order is provided by the table CAS in mkC.
func (m *Manager) allocC(c *concState, level int32, lo, hi Ref) int32 {
	id := c.next.Add(1) - 1
	if id >= c.limit {
		panic(EpochFull{Size: int(c.limit - c.base)})
	}
	m.nodes[id] = node{level: level, lo: int32(lo), hi: int32(hi)}
	return int32(id)
}

// mkC is the concurrent hash-cons: probe the shared table, and either adopt
// an identical published node or claim an empty slot with a CAS. Probes
// terminate because the table's load factor never exceeds 1/2 (the epoch
// bounds insertions below the pre-sized headroom).
func (m *Manager) mkC(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	c := m.conc
	h := hashNode(level, int32(lo), int32(hi)) & c.tableMask
	allocated := int32(-1)
	for {
		id := c.table[h].Load()
		if id == 0 {
			if allocated < 0 {
				allocated = m.allocC(c, level, lo, hi)
			}
			if c.table[h].CompareAndSwap(0, allocated) {
				return Ref(allocated)
			}
			// Lost the slot; re-read it — the winner may be our node.
			c.casRetries.Add(1)
			continue
		}
		n := &m.nodes[id]
		if n.level == level && n.lo == int32(lo) && n.hi == int32(hi) {
			if allocated >= 0 {
				// An identical node won publication: abandon our slot.
				// Only this goroutine holds the index, so the plain
				// write cannot race.
				m.nodes[allocated].level = freeLevel
				c.leaked.Add(1)
			}
			return Ref(id)
		}
		h = (h + 1) & c.tableMask
	}
}

func (c *concState) cacheGetC(op uint32, f, g, h int32) (Ref, bool) {
	e := &c.cache[cacheMix(op, f, g, h)&c.cacheMask]
	s := e.seq.Load()
	if s&1 != 0 {
		return False, false
	}
	if e.op.Load() != op || e.f.Load() != f || e.g.Load() != g || e.h.Load() != h {
		return False, false
	}
	r := e.r.Load()
	if e.seq.Load() != s {
		return False, false
	}
	return Ref(r), true
}

func (c *concState) cachePutC(op uint32, f, g, h, r int32) {
	e := &c.cache[cacheMix(op, f, g, h)&c.cacheMask]
	s := e.seq.Load()
	if s&1 != 0 || !e.seq.CompareAndSwap(s, s+1) {
		return // another writer holds the slot: lossy skip
	}
	e.op.Store(op)
	e.f.Store(f)
	e.g.Store(g)
	e.h.Store(h)
	e.r.Store(r)
	e.seq.Store(s + 2)
}

// iteC..restrictC mirror their sequential counterparts with the shared
// structures swapped in: seqlock cache instead of the direct-mapped one,
// mkC instead of mk, and no m.stats mutation (those fields are unguarded).

func (m *Manager) iteC(f, g, h Ref) Ref {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case f == g:
		g = True
	case f == h:
		h = False
	}
	c := m.conc
	if r, ok := c.cacheGetC(opITE, int32(f), int32(g), int32(h)); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mkC(top, m.iteC(f0, g0, h0), m.iteC(f1, g1, h1))
	c.cachePutC(opITE, int32(f), int32(g), int32(h), int32(r))
	return r
}

func (m *Manager) restrictC(f Ref, lv, val int32) Ref {
	l := m.level(f)
	if l > lv {
		return f
	}
	if l == lv {
		if val != 0 {
			return m.hi(f)
		}
		return m.lo(f)
	}
	c := m.conc
	if r, ok := c.cacheGetC(opRestrict, int32(f), lv, val); ok {
		return r
	}
	r := m.mkC(l, m.restrictC(m.lo(f), lv, val), m.restrictC(m.hi(f), lv, val))
	c.cachePutC(opRestrict, int32(f), lv, val, int32(r))
	return r
}

func (m *Manager) quantifyC(f Ref, maskID int32, op uint32) Ref {
	if f == True || f == False {
		return f
	}
	c := m.conc
	if r, ok := c.cacheGetC(op, int32(f), maskID, 0); ok {
		return r
	}
	l := m.level(f)
	lo := m.quantifyC(m.lo(f), maskID, op)
	hi := m.quantifyC(m.hi(f), maskID, op)
	var r Ref
	if m.maskHasLevel(maskID, l) {
		if op == opExists {
			r = m.iteC(lo, True, hi) // Or
		} else {
			r = m.iteC(lo, hi, False) // And
		}
	} else {
		r = m.mkC(l, lo, hi)
	}
	c.cachePutC(op, int32(f), maskID, 0, int32(r))
	return r
}

func (m *Manager) andExistsC(f, g Ref, maskID int32) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return m.quantifyC(g, maskID, opExists)
	case g == True:
		return m.quantifyC(f, maskID, opExists)
	case f == g:
		return m.quantifyC(f, maskID, opExists)
	}
	if g < f {
		f, g = g, f
	}
	c := m.conc
	if r, ok := c.cacheGetC(opAndExists, int32(f), int32(g), maskID); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if m.maskHasLevel(maskID, top) {
		a := m.andExistsC(f0, g0, maskID)
		if a == True {
			r = True
		} else {
			r = m.iteC(a, True, m.andExistsC(f1, g1, maskID)) // Or
		}
	} else {
		r = m.mkC(top, m.andExistsC(f0, g0, maskID), m.andExistsC(f1, g1, maskID))
	}
	c.cachePutC(opAndExists, int32(f), int32(g), maskID, int32(r))
	return r
}
