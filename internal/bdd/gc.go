package bdd

// Garbage collection. External functions are protected with reference
// counts (IncRef/DecRef); GC marks from the referenced roots and the pinned
// projection functions, sweeps everything else onto the free list, and
// rehashes the unique table. Live Refs never move, so outstanding handles
// stay valid across collections.
//
// Collection only happens when GC (or Sift, which collects first) is called
// explicitly — never in the middle of an operation — so callers that do not
// use references at all (logic synthesis, ISOP extraction, ...) are
// unaffected as long as they never ask for a collection.

// IncRef protects f (and everything below it) from garbage collection.
// It returns f for chaining. Terminals are always protected.
func (m *Manager) IncRef(f Ref) Ref {
	if c := m.extRef[f]; c < 0xffff {
		m.extRef[f] = c + 1
	}
	return f
}

// DecRef drops one external reference from f. A node whose count reaches
// zero (and is unreachable from other roots) is reclaimed by the next GC.
// Counts that ever hit the 0xffff ceiling are sticky: the node is pinned.
func (m *Manager) DecRef(f Ref) {
	switch c := m.extRef[f]; c {
	case 0:
		// An unbalanced DecRef would let GC reclaim live nodes later;
		// failing at the unbalanced call is the only debuggable option.
		panic("bdd: DecRef of unreferenced node")
	case 0xffff:
		// pinned
	default:
		m.extRef[f] = c - 1
	}
}

// GC runs a mark-and-sweep collection: every node not reachable from an
// externally referenced root (or a projection function) is returned to the
// free list, the unique table is rehashed, and the operation cache is
// cleared. It returns the number of nodes reclaimed.
func (m *Manager) GC() int {
	if m.conc != nil {
		// Collection moves table entries other goroutines are reading
		// lock-free; inside a concurrent section it would corrupt them.
		panic("bdd: GC inside a concurrent section")
	}
	marked := make([]bool, len(m.nodes))
	marked[0], marked[1] = true, true
	var stack []int32
	push := func(id int32) {
		if !marked[id] {
			marked[id] = true
			stack = append(stack, id)
		}
	}
	for id := int32(2); id < int32(len(m.nodes)); id++ {
		if m.extRef[id] > 0 && m.nodes[id].level != freeLevel {
			push(id)
		}
	}
	for _, r := range m.varPos {
		if r > 1 {
			push(int32(r))
		}
	}
	for _, r := range m.varNeg {
		if r > 1 {
			push(int32(r))
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &m.nodes[id]
		push(n.lo)
		push(n.hi)
	}

	freed := 0
	for id := int32(2); id < int32(len(m.nodes)); id++ {
		if marked[id] || m.nodes[id].level == freeLevel {
			continue
		}
		m.nodes[id].level = freeLevel
		m.free = append(m.free, id)
		freed++
	}
	m.live -= freed
	m.rehash(false)
	m.clearCache()
	m.stats.GCRuns++
	m.stats.GCFreed += uint64(freed)
	return freed
}
