package bdd

import (
	"math/rand"
	"testing"
)

// buildMaj builds the majority-of-three function over vars a,b,c.
func buildMaj(m *Manager, a, b, c int) Ref {
	ab := m.And(m.Var(a), m.Var(b))
	ac := m.And(m.Var(a), m.Var(c))
	bc := m.And(m.Var(b), m.Var(c))
	return m.OrN(ab, ac, bc)
}

// truthTable snapshots f over all 2^n assignments.
func truthTable(m *Manager, f Ref, n int) []bool {
	tt := make([]bool, 1<<uint(n))
	for env := range tt {
		tt[env] = m.Eval(f, uint64(env))
	}
	return tt
}

// TestGCRebuildIdentical pins GC correctness: build functions, drop the
// references, collect, rebuild the same functions, and require identical
// truth tables, identical (canonical) Refs, and a Size() shrink in between.
func TestGCRebuildIdentical(t *testing.T) {
	const n = 8
	m := New(n)
	build := func() []Ref {
		var out []Ref
		out = append(out, buildMaj(m, 0, 3, 6))
		x := m.Xor(m.Var(1), m.Var(4))
		out = append(out, m.And(x, buildMaj(m, 2, 5, 7)))
		out = append(out, m.Exists(m.And(out[0], out[1]), []int{3, 4}))
		return out
	}

	fs := build()
	tables := make([][]bool, len(fs))
	for i, f := range fs {
		m.IncRef(f)
		tables[i] = truthTable(m, f, n)
	}
	sizeLive := m.Size()

	// Keep only fs[0]; everything unique to fs[1], fs[2] must be
	// reclaimed.
	for _, f := range fs[1:] {
		m.DecRef(f)
	}
	freed := m.GC()
	if freed == 0 {
		t.Fatal("GC reclaimed nothing despite dropped references")
	}
	if m.Size() >= sizeLive {
		t.Fatalf("Size() = %d did not shrink from %d after GC", m.Size(), sizeLive)
	}
	if got := truthTable(m, fs[0], n); !boolsEqual(got, tables[0]) {
		t.Fatal("referenced function corrupted by GC")
	}

	// Rebuild: same functions, same truth tables, and the rebuilt roots
	// must be canonical with the surviving one.
	fs2 := build()
	for i, f := range fs2 {
		if got := truthTable(m, f, n); !boolsEqual(got, tables[i]) {
			t.Fatalf("function %d differs after GC+rebuild", i)
		}
	}
	if fs2[0] != fs[0] {
		t.Fatal("rebuilding the referenced function must return the same Ref")
	}
	if s := m.Stats(); s.GCRuns != 1 || s.GCFreed == 0 {
		t.Fatalf("stats not updated: %+v", s)
	}
}

// TestGCKeepsPinnedVars checks projection functions survive a collection
// with no external references at all.
func TestGCKeepsPinnedVars(t *testing.T) {
	m := New(4)
	a, na := m.Var(2), m.NVar(1)
	m.GC()
	if m.Var(2) != a || m.NVar(1) != na {
		t.Fatal("projection functions must be GC roots")
	}
	if !m.Eval(a, 1<<2) || m.Eval(a, 0) {
		t.Fatal("Var(2) corrupted by GC")
	}
}

// TestGCStress interleaves random op phases with collections and checks
// semantics against retained truth tables.
func TestGCStress(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(7))
	m := New(n)
	type held struct {
		r  Ref
		tt []bool
	}
	var hold []held
	for round := 0; round < 30; round++ {
		// Build a random function over a few vars.
		f := m.Var(rng.Intn(n))
		for k := 0; k < 4; k++ {
			g := m.Var(rng.Intn(n))
			if rng.Intn(2) == 0 {
				g = m.Not(g)
			}
			switch rng.Intn(3) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			default:
				f = m.Xor(f, g)
			}
		}
		hold = append(hold, held{m.IncRef(f), truthTable(m, f, n)})
		if rng.Intn(3) == 0 && len(hold) > 2 {
			// Drop a random held function and collect.
			i := rng.Intn(len(hold))
			m.DecRef(hold[i].r)
			hold = append(hold[:i], hold[i+1:]...)
			m.GC()
			for _, h := range hold {
				if !boolsEqual(truthTable(m, h.r, n), h.tt) {
					t.Fatal("held function corrupted by GC")
				}
			}
		}
	}
	if m.Stats().GCRuns == 0 {
		t.Fatal("stress never collected")
	}
}

// TestDecRefUnderflowPanics pins the misuse diagnostic.
func TestDecRefUnderflowPanics(t *testing.T) {
	m := New(2)
	f := m.And(m.Var(0), m.Var(1))
	defer func() {
		if recover() == nil {
			t.Fatal("DecRef below zero must panic")
		}
	}()
	m.DecRef(f)
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
