package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/obs"
)

// Instrumentation owns the observability and profiling flags shared by the
// command-line tools: -metrics and -trace-json export an obs.Registry as the
// JSON metrics snapshot and as Chrome trace_event JSON, -cpuprofile and
// -memprofile write pprof profiles.
//
// Usage: AddFlags before parsing, Start after, and Finish on every exit path
// — including error exits, so budget-aborted runs still dump their metrics
// and traces. Registry is nil unless -metrics or -trace-json was given, so
// passing it straight into engine options keeps disabled runs at zero cost.
type Instrumentation struct {
	metricsPath string
	tracePath   string
	cpuPath     string
	memPath     string

	// Registry collects the run's metrics and spans; nil when neither
	// -metrics nor -trace-json was given.
	Registry *obs.Registry

	cpuFile *os.File
}

// AddFlags registers -metrics, -trace-json, -cpuprofile and -memprofile.
func (ins *Instrumentation) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&ins.metricsPath, "metrics", "", "write the metrics snapshot (JSON) to this file, '-' for stdout")
	fs.StringVar(&ins.tracePath, "trace-json", "", "write a Chrome trace_event trace to this file, '-' for stdout")
	fs.StringVar(&ins.cpuPath, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&ins.memPath, "memprofile", "", "write a pprof heap profile to this file")
}

// Start creates the registry when an export was requested and begins CPU
// profiling when -cpuprofile was given.
func (ins *Instrumentation) Start() error {
	if ins.metricsPath != "" || ins.tracePath != "" {
		ins.Registry = obs.NewRegistry()
	}
	if ins.cpuPath != "" {
		f, err := os.Create(ins.cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		ins.cpuFile = f
	}
	return nil
}

// Finish stops profiling and writes every requested artifact. stdout is the
// destination for '-' paths. The first failure is returned, but every
// artifact is still attempted — a bad metrics path must not lose the CPU
// profile.
func (ins *Instrumentation) Finish(stdout io.Writer) error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if ins.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(ins.cpuFile.Close())
		ins.cpuFile = nil
	}
	if ins.memPath != "" {
		f, err := os.Create(ins.memPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // materialize up-to-date heap statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		ins.memPath = ""
	}
	if ins.Registry != nil {
		if ins.metricsPath != "" {
			keep(ins.export(ins.metricsPath, stdout, ins.Registry.WriteJSON))
			ins.metricsPath = ""
		}
		if ins.tracePath != "" {
			keep(ins.export(ins.tracePath, stdout, ins.Registry.WriteTrace))
			ins.tracePath = ""
		}
	}
	return first
}

// FinishTo writes every artifact like Finish and folds the outcome into
// *errp: the export error becomes the run's error when the run itself
// succeeded, and is reported on stderr when the run already failed — a bad
// -metrics path or a failed flush is never silently dropped. Designed for
// `defer ins.FinishTo(stdout, stderr, &err)` on a named return, paired with
// cli.Recover so panic exits still export.
func (ins *Instrumentation) FinishTo(stdout, stderr io.Writer, errp *error) {
	ferr := ins.Finish(stdout)
	if ferr == nil {
		return
	}
	if *errp == nil {
		*errp = ferr
		return
	}
	fmt.Fprintln(stderr, "instrumentation export:", ferr)
}

func (ins *Instrumentation) export(path string, stdout io.Writer, write func(io.Writer) error) error {
	if path == "-" {
		return write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
