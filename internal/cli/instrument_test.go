package cli

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestInstrumentationDisabledByDefault(t *testing.T) {
	var ins Instrumentation
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ins.AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := ins.Start(); err != nil {
		t.Fatal(err)
	}
	if ins.Registry != nil {
		t.Fatal("registry must stay nil with no export flags")
	}
	var out bytes.Buffer
	if err := ins.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("disabled run wrote output: %q", out.String())
	}
}

func TestInstrumentationExportsArtifacts(t *testing.T) {
	dir := t.TempDir()
	var ins Instrumentation
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ins.AddFlags(fs)
	err := fs.Parse([]string{
		"-metrics", dir + "/m.json", "-trace-json", dir + "/t.json",
		"-cpuprofile", dir + "/cpu.pprof", "-memprofile", dir + "/mem.pprof",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Start(); err != nil {
		t.Fatal(err)
	}
	if ins.Registry == nil {
		t.Fatal("registry must be created for -metrics")
	}
	sp := ins.Registry.Root("flow:test")
	ins.Registry.Counter("test.count").Add(3)
	sp.End()
	var out bytes.Buffer
	if err := ins.Finish(&out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/m.json")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test.count"] != 3 {
		t.Fatalf("counter lost in export: %v", snap.Counters)
	}
	trace, err := os.ReadFile(dir + "/t.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceJSON(trace); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{dir + "/cpu.pprof", dir + "/mem.pprof"} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("profile %s missing or empty: %v", p, err)
		}
	}
	// Finish is idempotent: a second call must not rewrite or fail.
	if err := ins.Finish(&out); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentationStdoutExport(t *testing.T) {
	var ins Instrumentation
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ins.AddFlags(fs)
	if err := fs.Parse([]string{"-metrics", "-"}); err != nil {
		t.Fatal(err)
	}
	if err := ins.Start(); err != nil {
		t.Fatal(err)
	}
	ins.Registry.Counter("x").Inc()
	var out bytes.Buffer
	if err := ins.Finish(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"x": 1`) {
		t.Fatalf("stdout export missing counter: %s", out.String())
	}
}

func TestInstrumentationBadPathStillWritesRest(t *testing.T) {
	dir := t.TempDir()
	var ins Instrumentation
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ins.AddFlags(fs)
	err := fs.Parse([]string{
		"-metrics", dir + "/no/such/dir/m.json", "-trace-json", dir + "/t.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.Start(); err != nil {
		t.Fatal(err)
	}
	ins.Registry.Root("flow:test").End()
	var out bytes.Buffer
	if err := ins.Finish(&out); err == nil {
		t.Fatal("bad metrics path must surface an error")
	}
	if _, err := os.Stat(dir + "/t.json"); err != nil {
		t.Fatalf("trace must still be written after metrics failure: %v", err)
	}
}
