// Package cli holds the exit-status conventions shared by the command-line
// tools: -h exits 0, usage and flag-parse errors exit 2, runtime errors
// (including budget aborts) exit 1.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// Usage marks a flag-parse or usage error so Exit maps it to status 2. The
// flag package has already printed the diagnostic and usage text to the
// FlagSet's output (stderr by convention), so Exit stays silent for it.
type Usage struct{ Err error }

func (u Usage) Error() string { return u.Err.Error() }

func (u Usage) Unwrap() error { return u.Err }

// Parse runs fs.Parse and wraps any failure as a Usage error. Callers must
// have routed fs.SetOutput to stderr so the flag package's own diagnostics
// land there.
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return Usage{Err: err}
	}
	return nil
}

// Exit terminates the process with the conventional status for err: 0 for
// nil or a help request, 2 for usage errors, 1 otherwise. name prefixes
// runtime diagnostics on stderr.
func Exit(name string, err error) {
	var usage Usage
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.As(err, &usage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}
