// Package cli holds the exit-status conventions shared by the command-line
// tools: -h exits 0, usage and flag-parse errors exit 2, runtime errors
// (including budget aborts) exit 1.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"repro/internal/budget"
)

// Usage marks a flag-parse or usage error so Exit maps it to status 2. The
// flag package has already printed the diagnostic and usage text to the
// FlagSet's output (stderr by convention), so Exit stays silent for it.
type Usage struct{ Err error }

func (u Usage) Error() string { return u.Err.Error() }

func (u Usage) Unwrap() error { return u.Err }

// Parse runs fs.Parse and wraps any failure as a Usage error. Callers must
// have routed fs.SetOutput to stderr so the flag package's own diagnostics
// land there.
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return Usage{Err: err}
	}
	return nil
}

// Recover converts a panic on the calling goroutine into a typed
// *budget.ErrInternal stored in *errp, so a panicking run exits through the
// normal runtime-error path (status 1, artifacts exported) instead of
// crashing the process with Go's panic status. Use as `defer cli.Recover(&err)`
// and register it BEFORE the instrumentation-export defer: defers run in
// LIFO order, so the export flushes while the panic unwinds and the recovery
// runs last — catching export panics too.
func Recover(errp *error) {
	if v := recover(); v != nil {
		*errp = budget.Internal(v, debug.Stack())
	}
}

// Exit terminates the process with the conventional status for err: 0 for
// nil or a help request, 2 for usage errors, 1 otherwise. name prefixes
// runtime diagnostics on stderr.
func Exit(name string, err error) {
	var usage Usage
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.As(err, &usage):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}
