package cli

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/stg"
)

func loadVME(t *testing.T) *stg.STG {
	t.Helper()
	f, err := os.Open("../../testdata/vme-read.g")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := stg.ParseG(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestArtifactsOnPanicExit is the faultinject panic-site regression test for
// the CLI artifact-export exit paths (cmd/synth, cmd/reach, and the per-job
// runner of cmd/serve use the same Recover + FinishTo pairing): a panic at a
// coordinator budget-check site must still export -metrics and -trace-json,
// and must surface as a typed *budget.ErrInternal — the runtime-error exit —
// instead of crashing the process with Go's panic status.
func TestArtifactsOnPanicExit(t *testing.T) {
	dir := t.TempDir()
	var ins Instrumentation
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ins.AddFlags(fs)
	if err := fs.Parse([]string{"-metrics", dir + "/m.json", "-trace-json", dir + "/t.json"}); err != nil {
		t.Fatal(err)
	}
	if err := ins.Start(); err != nil {
		t.Fatal(err)
	}

	// "core.encoding" is checked on the coordinator goroutine, so the
	// injected panic propagates to the caller by design (worker sites
	// recover into ErrInternal inside the pools instead).
	inj, bgt := faultinject.New(faultinject.Plan{Mode: faultinject.Panic, N: 1, Site: "core.encoding"})
	defer inj.Release()

	g := loadVME(t)
	var out, errOut bytes.Buffer
	run := func() (err error) {
		defer Recover(&err)
		defer ins.FinishTo(&out, &errOut, &err)
		_, err = core.Synthesize(g, core.Options{Budget: bgt, Obs: ins.Registry})
		return err
	}
	err := run()
	if !inj.Fired() {
		t.Fatal("injection never fired: the panic site was not reached")
	}
	var ie *budget.ErrInternal
	if !errors.As(err, &ie) {
		t.Fatalf("panic exit returned %v (%T), want *budget.ErrInternal", err, err)
	}
	if !strings.Contains(ie.Error(), "faultinject: injected panic") {
		t.Fatalf("recovered panic value lost: %v", ie)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("recovered panic carries no stack")
	}

	// Both artifacts must exist and validate despite the panic exit.
	data, err := os.ReadFile(dir + "/m.json")
	if err != nil {
		t.Fatalf("metrics artifact lost on panic exit: %v", err)
	}
	snap, err := obs.ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["reach.states"] <= 0 {
		t.Fatalf("pre-panic engine counters lost: %v", snap.Counters)
	}
	trace, err := os.ReadFile(dir + "/t.json")
	if err != nil {
		t.Fatalf("trace artifact lost on panic exit: %v", err)
	}
	if err := obs.ValidateTraceJSON(trace); err != nil {
		t.Fatal(err)
	}
}

// TestFinishToNeverDropsExportErrors: when the run already failed, an export
// failure must land on stderr rather than vanish; when the run succeeded, it
// must become the run's error.
func TestFinishToNeverDropsExportErrors(t *testing.T) {
	newIns := func(t *testing.T) *Instrumentation {
		var ins Instrumentation
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		ins.AddFlags(fs)
		if err := fs.Parse([]string{"-metrics", t.TempDir() + "/no/such/dir/m.json"}); err != nil {
			t.Fatal(err)
		}
		if err := ins.Start(); err != nil {
			t.Fatal(err)
		}
		return &ins
	}

	ins := newIns(t)
	var out, errOut bytes.Buffer
	var err error
	ins.FinishTo(&out, &errOut, &err)
	if err == nil {
		t.Fatal("export failure on a successful run must become the run error")
	}

	ins = newIns(t)
	errOut.Reset()
	runErr := errors.New("the run failed first")
	err = runErr
	ins.FinishTo(&out, &errOut, &err)
	if err != runErr {
		t.Fatalf("run error was replaced by export error: %v", err)
	}
	if !strings.Contains(errOut.String(), "instrumentation export:") {
		t.Fatalf("export failure silently dropped, stderr: %q", errOut.String())
	}
}
