package faultinject

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/stubborn"
	"repro/internal/symbolic"
	"repro/internal/unfold"
	"repro/internal/vme"
)

// leakCheck snapshots the goroutine count and returns a function that fails
// the test if the count has not settled back by the deadline — the "no
// goroutine leak" half of the harness's guarantee.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// wantTyped asserts that err matches the taxonomy entry the injected mode
// must produce. An unfired plan (engine finished before the Nth check) is
// allowed to succeed.
func wantTyped(t *testing.T, plan Plan, in *Injector, err error) {
	t.Helper()
	if !in.Fired() {
		if err != nil {
			t.Fatalf("%v never fired (only %d checks) yet errored: %v", plan, in.Calls(), err)
		}
		return
	}
	if err == nil {
		t.Fatalf("%v fired but the engine reported success", plan)
	}
	switch plan.Mode {
	case Cancel:
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("%v: want ErrCanceled, got %v", plan, err)
		}
	case Limit:
		var le budget.ErrLimit
		if !errors.As(err, &le) {
			t.Fatalf("%v: want ErrLimit, got %v", plan, err)
		}
	case Panic:
		var ie *budget.ErrInternal
		if !errors.As(err, &ie) {
			t.Fatalf("%v: want ErrInternal, got %v", plan, err)
		}
		if len(ie.Stack) == 0 {
			t.Fatalf("%v: ErrInternal without a stack", plan)
		}
	}
}

// TestReachParallelInjection drives every fault mode into the parallel
// explorer's worker site and the coordinator modes into its level barrier,
// at several deterministic schedule points and worker counts.
func TestReachParallelInjection(t *testing.T) {
	net := gen.IndependentToggles(8) // 256 states, wide levels
	plans := []Plan{
		{Mode: Cancel, N: 1, Site: "reach.parallel.worker"},
		{Mode: Cancel, N: 17, Site: "reach.parallel.worker"},
		{Mode: Limit, N: 5, Site: "reach.parallel.worker"},
		{Mode: Panic, N: 1, Site: "reach.parallel.worker"},
		{Mode: Panic, N: 33, Site: "reach.parallel.worker"},
		{Mode: Cancel, N: 2, Site: "reach.parallel"},
		{Mode: Limit, N: 3, Site: "reach.parallel"},
	}
	for _, workers := range []int{2, 4} {
		for _, plan := range plans {
			t.Run(fmt.Sprintf("w%d/%v", workers, plan), func(t *testing.T) {
				done := leakCheck(t)
				in, b := New(plan)
				defer in.Release()
				_, err := reach.Explore(net, reach.Options{Workers: workers, Budget: b})
				wantTyped(t, plan, in, err)
				done()
			})
		}
	}
}

// TestSequentialEngines drives cancellation and limit errors into every
// sequential engine's amortized check site and requires the typed error —
// plus the partial result where the engine contracts one.
func TestSequentialEngines(t *testing.T) {
	net := gen.Philosophers(5)
	t.Run("reach", func(t *testing.T) {
		for _, plan := range []Plan{
			{Mode: Cancel, N: 3, Site: "reach.explore"},
			{Mode: Limit, N: 7, Site: "reach.explore"},
		} {
			in, b := New(plan)
			g, err := reach.Explore(net, reach.Options{Budget: b})
			wantTyped(t, plan, in, err)
			if g == nil || g.NumStates() == 0 {
				t.Fatalf("%v: no partial graph", plan)
			}
			in.Release()
		}
	})
	t.Run("stubborn", func(t *testing.T) {
		for _, plan := range []Plan{
			{Mode: Cancel, N: 2, Site: "stubborn.explore"},
			{Mode: Limit, N: 4, Site: "stubborn.explore"},
		} {
			in, b := New(plan)
			res, err := stubborn.Explore(net, stubborn.Options{Budget: b})
			wantTyped(t, plan, in, err)
			if res == nil || res.States == 0 {
				t.Fatalf("%v: no partial result", plan)
			}
			in.Release()
		}
	})
	t.Run("symbolic", func(t *testing.T) {
		for _, plan := range []Plan{
			{Mode: Cancel, N: 2, Site: "symbolic.iter"},
			{Mode: Limit, N: 3, Site: "symbolic.iter"},
		} {
			in, b := New(plan)
			res, err := symbolic.ReachOpts(net, symbolic.Options{Budget: b})
			wantTyped(t, plan, in, err)
			if res == nil || res.Iterations == 0 {
				t.Fatalf("%v: no partial fixpoint", plan)
			}
			in.Release()
		}
	})
	t.Run("unfold", func(t *testing.T) {
		for _, plan := range []Plan{
			{Mode: Cancel, N: 2, Site: "unfold.event"},
			{Mode: Limit, N: 3, Site: "unfold.event"},
		} {
			in, b := New(plan)
			u, err := unfold.Build(net, unfold.Options{Budget: b})
			wantTyped(t, plan, in, err)
			if u == nil {
				t.Fatalf("%v: no partial prefix", plan)
			}
			in.Release()
		}
	})
}

// TestWorkerPoolPanics proves the memoized encoding evaluator and the logic
// synthesis pool recover injected panics into ErrInternal without wedging a
// sibling on the singleflight memo or leaking goroutines.
func TestWorkerPoolPanics(t *testing.T) {
	t.Run("encoding", func(t *testing.T) {
		for _, n := range []int{1, 4, 9} {
			plan := Plan{Mode: Panic, N: n, Site: "encoding.eval"}
			done := leakCheck(t)
			in, b := New(plan)
			_, err := encoding.SolutionsOpts(vme.ReadSTG(), 0, 3,
				encoding.Options{Workers: 4, Budget: b})
			wantTyped(t, plan, in, err)
			if !in.Fired() {
				t.Fatalf("%v: VME read enumerates many candidates; plan must fire", plan)
			}
			in.Release()
			done()
		}
	})
	t.Run("logic", func(t *testing.T) {
		sg, err := reach.BuildSG(gen.MullerPipeline(4), reach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{1, 3} {
			plan := Plan{Mode: Panic, N: n, Site: "logic.worker"}
			done := leakCheck(t)
			in, b := New(plan)
			_, err := logic.SynthesizeOpts(sg, logic.ComplexGate,
				logic.Options{Workers: 4, Budget: b})
			wantTyped(t, plan, in, err)
			in.Release()
			done()
		}
	})
	t.Run("encoding-cancel-and-limit", func(t *testing.T) {
		for _, plan := range []Plan{
			{Mode: Cancel, N: 6, Site: "encoding.eval"},
			{Mode: Limit, N: 2, Site: "encoding.eval"},
		} {
			done := leakCheck(t)
			in, b := New(plan)
			_, err := encoding.SolutionsOpts(vme.ReadSTG(), 0, 3,
				encoding.Options{Workers: 4, Budget: b})
			wantTyped(t, plan, in, err)
			in.Release()
			done()
		}
	})
}

// TestCorePipeline injects faults at the flow's phase boundaries and inside
// its phases: Synthesize must always come back with a typed budget error
// (or, unfired, a verified netlist) — never a hang or a crash.
func TestCorePipeline(t *testing.T) {
	plans := []Plan{
		{Mode: Cancel, N: 1, Site: "core.encoding"},
		{Mode: Cancel, N: 1, Site: "core.logic"},
		{Mode: Cancel, N: 1, Site: "core.verify"},
		{Mode: Cancel, N: 5, Site: "encoding.eval"},
		{Mode: Limit, N: 8, Site: "encoding.eval"},
		{Mode: Panic, N: 2, Site: "encoding.eval"},
		{Mode: Cancel, N: 20, Site: "sim.explore"},
		{Mode: Cancel, N: 9, Site: "reach.toggle"},
		{Mode: Limit, N: 4, Site: "reach.label"},
	}
	for _, workers := range []int{1, 4} {
		for _, plan := range plans {
			if plan.Mode == Panic && workers == 1 {
				// Panic recovery is a worker-pool contract; the sequential
				// reference paths let panics propagate by design.
				continue
			}
			t.Run(fmt.Sprintf("w%d/%v", workers, plan), func(t *testing.T) {
				done := leakCheck(t)
				in, b := New(plan)
				defer in.Release()
				rep, err := core.Synthesize(vme.ReadSTG(), core.Options{
					Workers: workers,
					Budget:  b,
				})
				wantTyped(t, plan, in, err)
				if err == nil && rep.Netlist == nil {
					t.Fatal("success without a netlist")
				}
				done()
			})
		}
	}
}

// TestCoreFallbackLadder trips the explicit engine's state ceiling and
// checks the degradation ladder: the report records the failed explicit
// attempt, a cheaper engine completes, and no netlist is synthesized — all
// with a nil error.
func TestCoreFallbackLadder(t *testing.T) {
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{
		Budget:   &budget.Budget{MaxStates: 8},
		Fallback: true,
	})
	if err != nil {
		t.Fatalf("degraded run must succeed, got %v", err)
	}
	if rep.Netlist != nil {
		t.Fatal("degraded run must not synthesize a netlist")
	}
	if len(rep.Attempts) < 2 {
		t.Fatalf("want >= 2 attempts, got %v", rep.Attempts)
	}
	first := rep.Attempts[0]
	if first.Engine != "explicit" || first.Err == nil {
		t.Fatalf("first attempt must be the failed explicit build, got %+v", first)
	}
	if !errors.Is(first.Err, reach.ErrStateLimit) {
		t.Fatalf("explicit attempt error must match reach.ErrStateLimit, got %v", first.Err)
	}
	last := rep.Attempts[len(rep.Attempts)-1]
	if last.Engine == "explicit" {
		t.Fatalf("ladder never left the explicit engine: %v", rep.Attempts)
	}
	if last.States == 0 {
		t.Fatalf("winning rung reports zero states: %+v", last)
	}
	if rep.Summary() == "" {
		t.Fatal("degraded report must render a summary")
	}
}

// TestCoreFallbackPanicDegrades: a worker panic recovered into a typed
// *budget.ErrInternal during the explicit state-graph build takes the same
// degradation ladder as a resource limit — the crash-retry policy of the
// service layer depends on this rung advance.
func TestCoreFallbackPanicDegrades(t *testing.T) {
	done := leakCheck(t)
	plan := Plan{Mode: Panic, N: 3, Site: "reach.parallel.worker"}
	in, b := New(plan)
	defer in.Release()
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{
		Reach:    reach.Options{Workers: 4},
		Budget:   b,
		Fallback: true,
	})
	if !in.Fired() {
		t.Skip("exploration finished before the injection point")
	}
	if err != nil {
		t.Fatalf("panic-degraded run must succeed, got %v", err)
	}
	if rep.Netlist != nil {
		t.Fatal("degraded run must not synthesize a netlist")
	}
	var ie *budget.ErrInternal
	if first := rep.Attempts[0]; first.Engine != "explicit" || !errors.As(first.Err, &ie) {
		t.Fatalf("first attempt must be the panicked explicit build, got %+v", first)
	}
	if last := rep.Attempts[len(rep.Attempts)-1]; last.Engine == "explicit" || last.Err != nil {
		t.Fatalf("ladder did not complete on a cheaper engine: %v", rep.Attempts)
	}
	done()
}

// TestCoreFallbackCancelAborts: cancellation is never degraded around — it
// aborts the ladder with ErrCanceled.
func TestCoreFallbackCancelAborts(t *testing.T) {
	plan := Plan{Mode: Cancel, N: 2, Site: "symbolic.iter"}
	in, b := New(plan)
	defer in.Release()
	b.MaxStates = 8
	rep, err := core.Synthesize(vme.ReadSTG(), core.Options{Budget: b, Fallback: true})
	if !in.Fired() {
		t.Skip("symbolic rung converged before the injection point")
	}
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("want ErrCanceled out of the ladder, got %v", err)
	}
	if rep == nil || len(rep.Attempts) == 0 {
		t.Fatal("aborted ladder must still report its attempts")
	}
}
