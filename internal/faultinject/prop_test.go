package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/budget"
	"repro/internal/gen"
	"repro/internal/prop"
)

// TestPropInjection drives cancellation and budget limits into the
// property checker's sites — the state-space construction ("reach.*" for
// the explicit engine, "prop.reach" for the symbolic one), the CTL/value
// fixpoints ("prop.fix") and the explicit per-state sweeps
// ("prop.explicit"). A fired plan must surface the typed error together
// with a partial report whose unfinished verdicts are StatusUnknown, and
// must not hang, panic or leak goroutines.
func TestPropInjection(t *testing.T) {
	g := gen.MullerPipeline(4)
	props := prop.Standard()
	cases := []struct {
		engine  prop.Engine
		workers int
		plan    Plan
	}{
		{prop.EngineExplicit, 1, Plan{Mode: Cancel, N: 3, Site: "reach.explore"}},
		{prop.EngineExplicit, 1, Plan{Mode: Limit, N: 5, Site: "reach.explore"}},
		{prop.EngineExplicit, 2, Plan{Mode: Cancel, N: 4, Site: "reach.parallel.worker"}},
		{prop.EngineExplicit, 2, Plan{Mode: Panic, N: 2, Site: "reach.parallel.worker"}},
		{prop.EngineExplicit, 1, Plan{Mode: Cancel, N: 2, Site: "prop.explicit"}},
		{prop.EngineExplicit, 1, Plan{Mode: Limit, N: 40, Site: "prop.explicit"}},
		{prop.EngineExplicit, 1, Plan{Mode: Cancel, N: 1, Site: "prop.fix"}},
		{prop.EngineExplicit, 1, Plan{Mode: Limit, N: 3, Site: "prop.fix"}},
		{prop.EngineSymbolic, 0, Plan{Mode: Cancel, N: 2, Site: "prop.reach"}},
		{prop.EngineSymbolic, 0, Plan{Mode: Limit, N: 4, Site: "prop.reach"}},
		{prop.EngineSymbolic, 0, Plan{Mode: Cancel, N: 3, Site: "prop.fix"}},
		{prop.EngineSymbolic, 0, Plan{Mode: Limit, N: 9, Site: "prop.fix"}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s/w%d/%v", tc.engine, tc.workers, tc.plan), func(t *testing.T) {
			done := leakCheck(t)
			in, b := New(tc.plan)
			defer in.Release()
			rep, err := prop.Check(g, props, prop.Options{
				Engine: tc.engine, Workers: tc.workers, Budget: b,
			})
			wantTyped(t, tc.plan, in, err)
			if in.Fired() {
				if rep == nil {
					t.Fatalf("%v: no partial report alongside the typed error", tc.plan)
				}
				unknown := 0
				for _, v := range rep.Verdicts {
					if v.Status == prop.StatusUnknown {
						unknown++
					}
				}
				if unknown == 0 {
					t.Fatalf("%v: budget tripped but every verdict is decided", tc.plan)
				}
			} else {
				if err != nil || rep == nil {
					t.Fatalf("unfired plan must succeed, got %v", err)
				}
				for _, v := range rep.Verdicts {
					if v.Status == prop.StatusUnknown {
						t.Fatalf("unfired plan left %s unknown", v.Property.Name)
					}
				}
			}
			done()
		})
	}
}

// TestPropNodeCeiling trips the real BDD node ceiling (not an injected
// hook) mid-fixpoint and expects the typed ErrLimit with an all-unknown
// partial report.
func TestPropNodeCeiling(t *testing.T) {
	done := leakCheck(t)
	defer done()
	g := gen.MullerPipeline(6)
	b := &budget.Budget{Ctx: context.Background(), MaxNodes: 128}
	rep, err := prop.Check(g, prop.Standard(), prop.Options{Engine: prop.EngineSymbolic, Budget: b})
	var le budget.ErrLimit
	if !errors.As(err, &le) {
		t.Fatalf("want ErrLimit from the node ceiling, got %v", err)
	}
	if rep == nil {
		t.Fatal("no partial report alongside ErrLimit")
	}
	for _, v := range rep.Verdicts {
		if v.Status != prop.StatusUnknown {
			t.Errorf("%s decided as %v under a ceiling hit during reachability", v.Property.Name, v.Status)
		}
	}
}
