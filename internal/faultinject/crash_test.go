package faultinject_test

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultinject"
)

// TestCrashHelper is the subprocess body of TestCrashKillSite: it hammers
// two kill sites and prints a survival marker that must never appear when
// the armed site's hit count is reached. Skipped unless re-executed with
// CrashEnv set by the parent test.
func TestCrashHelper(t *testing.T) {
	if os.Getenv(faultinject.CrashEnv) == "" {
		t.Skip("helper process only")
	}
	for i := 0; i < 5; i++ {
		faultinject.Crash("other.site")
		faultinject.Crash("test.site")
	}
	fmt.Println("SURVIVED")
}

// TestCrashKillSite re-executes the test binary with an armed kill site and
// asserts the child dies by SIGKILL at exactly the Nth hit — other sites'
// hits must not advance the counter.
func TestCrashKillSite(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), faultinject.CrashEnv+"=test.site:3")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("armed subprocess exited cleanly:\n%s", out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("unexpected error kind: %v", err)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("subprocess did not die by SIGKILL: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "SURVIVED") {
		t.Fatalf("subprocess survived past the armed site:\n%s", out)
	}
}

// TestCrashUnarmed: with nothing armed, Crash is a no-op and CrashArmed is
// false for every site (this test process has no CrashEnv set).
func TestCrashUnarmed(t *testing.T) {
	if os.Getenv(faultinject.CrashEnv) != "" {
		t.Skip("environment arms a site")
	}
	if faultinject.CrashArmed("any.site") {
		t.Fatal("CrashArmed true without env")
	}
	for i := 0; i < 10; i++ {
		faultinject.Crash("any.site") // must return
	}
}
