// Package faultinject is the deterministic fault-injection harness for the
// resilience layer (internal/budget): it drives cancellation, budget
// exhaustion and worker panics into named pipeline sites through the
// budget.Budget.Hook seam and lets tests prove that every engine returns a
// typed error — never a hang, crash or goroutine leak.
//
// An injection is a Plan: fire one Mode at the Nth budget check whose site
// label matches Site. Plans are pure data, so a test sweep over (Mode, N,
// Site) triples is a reproducible schedule — the same triple always injects
// at the same point of the same engine, regardless of worker count (engines
// check every iteration when a hook is installed; see budget.Hooked).
package faultinject

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/budget"
)

// Mode selects what the injection does at the chosen check.
type Mode int

const (
	// Cancel cancels the budget's context; the engine's next context poll
	// reports budget.ErrCanceled. This exercises the real cancellation path
	// rather than short-circuiting through the hook's return value.
	Cancel Mode = iota
	// Limit returns a typed budget.ErrLimit from the check, as if a
	// resource ceiling tripped at that exact point.
	Limit
	// Panic panics in the goroutine running the check. Inject it only at
	// worker-pool sites ("reach.parallel.worker", "encoding.eval",
	// "logic.worker"): those recover into budget.ErrInternal; coordinator
	// sites propagate the panic to the caller by design.
	Panic
)

func (m Mode) String() string {
	switch m {
	case Cancel:
		return "cancel"
	case Limit:
		return "limit"
	default:
		return "panic"
	}
}

// Plan is one deterministic injection: fire Mode at the Nth (1-based)
// budget check whose site matches Site ("" matches every site).
type Plan struct {
	Mode Mode
	N    int
	Site string
}

func (p Plan) String() string {
	site := p.Site
	if site == "" {
		site = "*"
	}
	return fmt.Sprintf("%v@%s#%d", p.Mode, site, p.N)
}

// Injector counts matching budget checks and fires its Plan once. It is
// safe for concurrent use by worker pools; exactly one check observes the
// injection (panic or limit error), and Cancel mode is visible to every
// goroutine through the shared context.
type Injector struct {
	plan   Plan
	cancel context.CancelFunc
	calls  atomic.Int64
	fired  atomic.Bool
}

// New builds an injector and a budget wired to it. The budget carries a
// cancelable context (so Cancel mode works) and the injector as its Hook.
func New(plan Plan) (*Injector, *budget.Budget) {
	ctx, cancel := context.WithCancel(context.Background())
	in := &Injector{plan: plan, cancel: cancel}
	return in, &budget.Budget{Ctx: ctx, Hook: in.hook}
}

// Fired reports whether the injection point was reached. A plan whose Nth
// matching check never happens (the engine finished first) leaves the run
// unperturbed; tests accept success in that case.
func (in *Injector) Fired() bool { return in.fired.Load() }

// Calls returns how many matching checks were observed — useful for sizing
// N sweeps against a given workload.
func (in *Injector) Calls() int { return int(in.calls.Load()) }

// Release cancels the injector's context unconditionally, releasing any
// resources regardless of whether the plan fired. Call it when the test is
// done with the budget.
func (in *Injector) Release() { in.cancel() }

func (in *Injector) hook(site string) error {
	if in.plan.Site != "" && site != in.plan.Site {
		return nil
	}
	if in.calls.Add(1) != int64(in.plan.N) {
		return nil
	}
	in.fired.Store(true)
	switch in.plan.Mode {
	case Cancel:
		in.cancel()
		return nil // the budget's own context poll reports ErrCanceled
	case Limit:
		return budget.ErrLimit{Resource: budget.States, Limit: in.plan.N, Used: in.plan.N}
	default:
		panic(fmt.Sprintf("faultinject: injected panic at %s (check %d)", site, in.plan.N))
	}
}
