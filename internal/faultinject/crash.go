package faultinject

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Kill sites extend the harness from in-process faults (cancel / limit /
// panic through the budget hook) to whole-process death: a component calls
// Crash(site) at the points where a real crash would be most damaging —
// mid-journal-append, between journal write and job execution, mid-cache-
// file-write — and a chaos test arms exactly one site through the
// environment before starting the process under test. On the Nth hit of the
// armed site the process SIGKILLs itself: no deferred functions, no flushes,
// no signal handlers — the closest a test can get to a power cut.
//
// Unarmed (the production default), Crash is one atomic load and a string
// compare against ""; it never fires.

// CrashEnv is the environment variable that arms a kill site:
// "site:N" fires at the Nth (1-based) hit of site; a bare "site" means
// N = 1. Only one site can be armed per process.
const CrashEnv = "FAULTINJECT_CRASH"

var crash struct {
	once sync.Once
	site string
	n    int64
	hits atomic.Int64
}

func crashInit() {
	spec := os.Getenv(CrashEnv)
	if spec == "" {
		return
	}
	site, ns, ok := strings.Cut(spec, ":")
	n := int64(1)
	if ok {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 {
			return // malformed spec: stay unarmed rather than misfire
		}
		n = int64(v)
	}
	crash.site, crash.n = site, n
}

// CrashArmed reports whether the named kill site is armed in this process.
// Components that need to model a torn write — half the bytes on disk, then
// death — check it to switch to a split-write path; the check is free when
// nothing is armed.
func CrashArmed(site string) bool {
	crash.once.Do(crashInit)
	return crash.site == site
}

// Crash counts one hit of the named kill site and, on the Nth hit of the
// armed site, terminates the process with SIGKILL. It returns normally on
// every other call (and always when unarmed).
func Crash(site string) {
	if !CrashArmed(site) {
		return
	}
	if crash.hits.Add(1) != crash.n {
		return
	}
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL delivery is asynchronous; park so no code past the kill site
	// ever runs in the vanishingly small window before death.
	select {}
}
