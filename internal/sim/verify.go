// Package sim verifies gate-level implementations against STG
// specifications. It composes a netlist with a token-game model of the
// environment (the mirror of the spec) and exhaustively explores the closed
// system under arbitrary gate delays, checking:
//
//   - semimodularity: an excited gate must stay excited until it fires —
//     a gate disabled while excited is a hazard (Section 3.3);
//   - conformance: the circuit never produces an output edge the
//     specification does not expect (implementation verification,
//     Section 2.1);
//   - drive fights in generalized C-elements (set and reset both active);
//   - absence of deadlock while the specification expects progress.
//
// Speed-independence of an implementation = the exploration finds no
// violation. Relative timing constraints (Section 5) can be supplied to
// prune interleavings the physical design guarantees cannot happen, turning
// the check into "SI under timing assumptions".
package sim

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/logic"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/stg"
)

// EventRef names a signal edge, e.g. {Signal:"D", Dir:stg.Fall}.
type EventRef struct {
	Signal string
	Dir    stg.Dir
}

func (e EventRef) String() string { return e.Signal + e.Dir.String() }

// RelativeOrder is a relative timing constraint — the paper's
// sep(Earlier, Later) < 0 (Section 5). Semantics in the verifier are
// trace-based: an occurrence of Later may only fire after an occurrence of
// Earlier has fired (firing Later consumes the permission; firings of
// Earlier saturate it). InitialPermit allows the first Later before any
// Earlier, for behaviours where Later legitimately starts the first cycle.
type RelativeOrder struct {
	Earlier, Later EventRef
	InitialPermit  bool
}

func (r RelativeOrder) String() string {
	return fmt.Sprintf("sep(%s,%s)<0", r.Earlier, r.Later)
}

// ViolationKind classifies verification failures.
type ViolationKind int

const (
	// Hazard: a gate was excited and got disabled without firing.
	Hazard ViolationKind = iota
	// Conformance: the circuit produced an output edge the spec does not
	// accept in the current state.
	Conformance
	// DriveFight: a C-element's set and reset networks were simultaneously
	// active.
	DriveFight
	// Deadlock: the closed system stopped while the spec expects progress.
	Deadlock
)

func (k ViolationKind) String() string {
	switch k {
	case Hazard:
		return "hazard"
	case Conformance:
		return "conformance"
	case DriveFight:
		return "drive-fight"
	case Deadlock:
		return "deadlock"
	}
	return "?"
}

// Violation is one verification failure with a human-readable witness.
type Violation struct {
	Kind   ViolationKind
	Signal string
	Msg    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s(%s): %s", v.Kind, v.Signal, v.Msg)
}

// Result summarizes a verification run.
type Result struct {
	// States is the number of composed (circuit × environment) states.
	States int
	// Violations lists failures, up to Options.MaxViolations.
	Violations []Violation
}

// OK reports whether the implementation is speed-independent and conformant.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Options configure a verification run.
type Options struct {
	// MaxStates bounds the composed exploration (default 1<<20). Exceeding
	// it aborts with a typed budget.ErrLimit (errors.Is-compatible with
	// reach.ErrStateLimit) alongside the partial Result.
	MaxStates int
	// MaxViolations stops the search after this many failures (default 1).
	MaxViolations int
	// Constraints are relative timing assumptions pruning interleavings.
	Constraints []RelativeOrder
	// Budget adds cancellation and tightens MaxStates; nil is unlimited.
	Budget *budget.Budget
}

func (o Options) maxStates() int {
	cap := o.MaxStates
	if cap <= 0 {
		cap = 1 << 20
	}
	return o.Budget.StateLimit(cap)
}

func (o Options) maxViol() int {
	if o.MaxViolations > 0 {
		return o.MaxViolations
	}
	return 1
}

type verifier struct {
	nl   *logic.Netlist
	spec *stg.STG
	opts Options

	specToNet []int // spec signal -> netlist signal
	netToSpec []int // netlist signal -> spec signal or -1

	res  *Result
	seen map[compKey]bool
}

type compKey struct {
	v       uint64
	m       string
	permits uint32
}

// Verify explores the closed circuit×environment system. The netlist must
// contain every spec signal (matched by name); it may contain additional
// implementation-only wires (decomposition signals).
func Verify(nl *logic.Netlist, spec *stg.STG, opts Options) (*Result, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if len(nl.Signals) > 64 {
		return nil, fmt.Errorf("sim: more than 64 netlist signals")
	}
	ver := &verifier{nl: nl, spec: spec, opts: opts, res: &Result{}, seen: map[compKey]bool{}}
	ver.specToNet = make([]int, len(spec.Signals))
	ver.netToSpec = make([]int, len(nl.Signals))
	for i := range ver.netToSpec {
		ver.netToSpec[i] = -1
	}
	for i, s := range spec.Signals {
		idx := nl.SignalIndex(s.Name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: spec signal %s missing from netlist", s.Name)
		}
		ver.specToNet[i] = idx
		ver.netToSpec[idx] = i
	}

	// Initial state: the spec SG's initial code mapped into netlist space,
	// with implementation-only wires settled to a stable assignment.
	specSG, err := reach.BuildSG(spec, reach.Options{Budget: opts.Budget})
	if err != nil {
		return nil, fmt.Errorf("sim: spec rejected: %w", err)
	}
	var v0 uint64
	for i := range spec.Signals {
		if specSG.States[specSG.Initial].Code.Bit(i) {
			v0 |= 1 << uint(ver.specToNet[i])
		}
	}
	v0, err = ver.settleExtras(v0)
	if err != nil {
		return nil, err
	}

	if len(opts.Constraints) > 32 {
		return nil, fmt.Errorf("sim: more than 32 timing constraints")
	}
	var permits0 uint32
	for i, c := range opts.Constraints {
		if c.InitialPermit {
			permits0 |= 1 << uint(i)
		}
	}
	m0 := spec.Net.InitialMarking()
	if err := ver.explore(v0, m0, permits0); err != nil {
		return ver.res, err
	}
	return ver.res, nil
}

// settleExtras finds stable values for implementation-only wires given the
// fixed spec-signal values in v.
func (ver *verifier) settleExtras(v uint64) (uint64, error) {
	var extras []int
	for i := range ver.nl.Signals {
		if ver.netToSpec[i] < 0 {
			extras = append(extras, i)
		}
	}
	if len(extras) == 0 {
		return v, nil
	}
	if len(extras) > 16 {
		return 0, fmt.Errorf("sim: too many implementation-only wires (%d)", len(extras))
	}
	for combo := 0; combo < 1<<uint(len(extras)); combo++ {
		cand := v
		for bi, idx := range extras {
			if combo&(1<<uint(bi)) != 0 {
				cand |= 1 << uint(idx)
			}
		}
		ok := true
		for _, idx := range extras {
			if ver.nl.GateFor(idx) != nil && ver.nl.Excited(cand, idx) {
				ok = false
				break
			}
		}
		if ok {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("sim: no stable assignment for implementation-only wires")
}

type move struct {
	// fired netlist signal (or -1 for a pure environment move on an input).
	netSig int
	dir    stg.Dir
	name   string
	// specPath lists the spec transitions fired by this move: possibly a
	// prefix of dummy transitions (ε-closure) followed by the labeled one.
	specPath []int
	isInput  bool
}

// explore runs the composed search. A state-limit trip or cancellation
// returns the typed budget error with the partial Result still populated;
// violations found before the abort are preserved.
func (ver *verifier) explore(v0 uint64, m0 petri.Marking, permits0 uint32) error {
	type node struct {
		v       uint64
		m       petri.Marking
		permits uint32
	}
	start := node{v0, m0, permits0}
	ver.seen[compKey{v0, m0.Key(), permits0}] = true
	stack := []node{start}
	maxStates := ver.opts.maxStates()
	hooked := ver.opts.Budget.Hooked()
	for len(stack) > 0 && len(ver.res.Violations) < ver.opts.maxViol() {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ver.res.States++
		if ver.res.States > maxStates {
			ver.res.States--
			return budget.LimitStates(maxStates, ver.res.States)
		}
		if hooked || ver.res.States%budget.CheckEvery == 0 {
			if err := ver.opts.Budget.Check("sim.explore"); err != nil {
				return err
			}
		}

		// Drive fights.
		for i := range ver.nl.Gates {
			g := &ver.nl.Gates[i]
			if g.Kind == logic.CElem && g.Set.Eval(nd.v) && g.Reset.Eval(nd.v) {
				ver.res.Violations = append(ver.res.Violations, Violation{
					Kind: DriveFight, Signal: ver.nl.Signals[g.Output],
					Msg: fmt.Sprintf("set and reset both active at %b", nd.v),
				})
			}
		}
		moves := ver.movesAt(nd.v, nd.m, nd.permits)
		if len(moves) == 0 {
			if !ver.specDead(nd.m) {
				ver.res.Violations = append(ver.res.Violations, Violation{
					Kind: Deadlock, Signal: "-",
					Msg: fmt.Sprintf("no moves at vector %b, spec marking %s", nd.v, nd.m.Format(ver.spec.Net)),
				})
			}
			continue
		}

		for _, mv := range moves {
			nv := nd.v
			if mv.netSig >= 0 {
				nv ^= 1 << uint(mv.netSig)
			}
			nm := nd.m
			for _, t := range mv.specPath {
				nm = ver.spec.Net.Fire(nm, t)
			}
			// Semimodularity: every excited gate not equal to the fired one
			// must stay excited. Mutex grant outputs are exempt: losing an
			// arbitration race is the element's job, not a hazard.
			for idx := range ver.nl.Signals {
				gate := ver.nl.GateFor(idx)
				if idx == mv.netSig || gate == nil || gate.Kind == logic.MutexHalf {
					continue
				}
				if ver.nl.Excited(nd.v, idx) && !ver.nl.Excited(nv, idx) {
					ver.res.Violations = append(ver.res.Violations, Violation{
						Kind: Hazard, Signal: ver.nl.Signals[idx],
						Msg: fmt.Sprintf("excited %s disabled by %s at vector %b",
							ver.nl.Signals[idx], mv.name, nd.v),
					})
					if len(ver.res.Violations) >= ver.opts.maxViol() {
						return nil
					}
				}
			}
			np := ver.updatePermits(nd.permits, mv)
			key := compKey{nv, nm.Key(), np}
			if !ver.seen[key] {
				ver.seen[key] = true
				stack = append(stack, node{nv, nm, np})
			}
		}
	}
	return nil
}

// movesAt enumerates all moves: environment input firings and excited gate
// firings. Conformance violations are recorded here (an excited spec-visible
// gate with no matching enabled spec transition). Events blocked by a timing
// constraint without a permit are skipped entirely: physical design
// guarantees they cannot fire yet, so they are neither moves nor violations.
func (ver *verifier) movesAt(v uint64, m petri.Marking, permits uint32) []move {
	blocked := func(signal string, dir stg.Dir) bool {
		for ci, c := range ver.opts.Constraints {
			if c.Later.Signal == signal && c.Later.Dir == dir && permits&(1<<uint(ci)) == 0 {
				return true
			}
		}
		return false
	}
	var out []move
	// Environment moves: enabled input transitions of the spec.
	for t := range ver.spec.Net.Transitions {
		if !ver.spec.Net.Enabled(m, t) {
			continue
		}
		l := ver.spec.Labels[t]
		if l.Sig < 0 {
			// Dummy transition: advances the marking silently.
			out = append(out, move{netSig: -1, specPath: []int{t},
				name: ver.spec.Net.Transitions[t].Name})
			continue
		}
		if ver.spec.Signals[l.Sig].Kind != stg.Input {
			continue // outputs fire only when the circuit drives them
		}
		idx := ver.specToNet[l.Sig]
		cur := v&(1<<uint(idx)) != 0
		if (l.Dir == stg.Rise) == cur {
			// Spec/circuit value mismatch: the composed invariant is broken;
			// report as conformance once.
			ver.res.Violations = append(ver.res.Violations, Violation{
				Kind: Conformance, Signal: ver.spec.Signals[l.Sig].Name,
				Msg: fmt.Sprintf("input %s enabled in spec but wire already %v",
					ver.spec.Net.Transitions[t].Name, cur),
			})
			continue
		}
		if blocked(ver.spec.Signals[l.Sig].Name, l.Dir) {
			continue
		}
		out = append(out, move{netSig: idx, dir: l.Dir, specPath: []int{t},
			name: ver.spec.Net.Transitions[t].Name, isInput: true})
	}
	// Gate moves.
	for idx := range ver.nl.Signals {
		if ver.nl.GateFor(idx) == nil || !ver.nl.Excited(v, idx) {
			continue
		}
		cur := v&(1<<uint(idx)) != 0
		dir := stg.Rise
		if cur {
			dir = stg.Fall
		}
		if blocked(ver.nl.Signals[idx], dir) {
			continue
		}
		specSig := ver.netToSpec[idx]
		if specSig < 0 {
			out = append(out, move{netSig: idx, dir: dir,
				name: ver.nl.Signals[idx] + dir.String()})
			continue
		}
		// Spec-visible output: must match a spec transition enabled in the
		// ε-closure of the marking (dummy transitions fire silently first).
		matched := false
		for _, hit := range ver.closureMatches(m, specSig, dir) {
			matched = true
			out = append(out, move{netSig: idx, dir: dir, specPath: hit,
				name: ver.spec.Net.Transitions[hit[len(hit)-1]].Name})
		}
		if !matched {
			ver.res.Violations = append(ver.res.Violations, Violation{
				Kind: Conformance, Signal: ver.nl.Signals[idx],
				Msg: fmt.Sprintf("circuit produces %s%s not expected at %s",
					ver.nl.Signals[idx], dir.String(), m.Format(ver.spec.Net)),
			})
		}
	}
	return out
}

// closureMatches finds transitions labeled (sig,dir) enabled at m or at any
// marking reachable from m by dummy transitions; each hit is returned as the
// dummy path plus the labeled transition.
func (ver *verifier) closureMatches(m petri.Marking, sig int, dir stg.Dir) [][]int {
	type node struct {
		m    petri.Marking
		path []int
	}
	var out [][]int
	seen := map[string]bool{m.Key(): true}
	queue := []node{{m: m}}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		for t := range ver.spec.Net.Transitions {
			if !ver.spec.Net.Enabled(nd.m, t) {
				continue
			}
			l := ver.spec.Labels[t]
			if l.Sig == sig && l.Dir == dir {
				out = append(out, append(append([]int(nil), nd.path...), t))
				continue
			}
			if l.Sig >= 0 {
				continue
			}
			next := ver.spec.Net.Fire(nd.m, t)
			if !seen[next.Key()] {
				seen[next.Key()] = true
				queue = append(queue, node{m: next, path: append(append([]int(nil), nd.path...), t)})
			}
		}
	}
	return out
}

// updatePermits advances the per-constraint permit bits after a move:
// Earlier firings grant, Later firings consume.
func (ver *verifier) updatePermits(permits uint32, mv move) uint32 {
	for ci, c := range ver.opts.Constraints {
		bit := uint32(1) << uint(ci)
		if ver.matches(mv, c.Earlier) {
			permits |= bit
		}
		if ver.matches(mv, c.Later) {
			permits &^= bit
		}
	}
	return permits
}

func (ver *verifier) matches(mv move, e EventRef) bool {
	return mv.netSig >= 0 && ver.nl.Signals[mv.netSig] == e.Signal && mv.dir == e.Dir
}

func (ver *verifier) specDead(m petri.Marking) bool {
	for t := range ver.spec.Net.Transitions {
		if ver.spec.Net.Enabled(m, t) {
			return false
		}
	}
	return true
}
