package sim_test

import (
	"math/rand"
	"testing"

	"repro/internal/boolmin"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
)

// Mutation robustness: random single-literal mutations of a verified circuit
// must never crash the verifier, and flipping a literal's polarity must
// always be detected (the mutated function differs on some reachable code,
// so the circuit misbehaves).
func TestMutationPolarityAlwaysCaught(t *testing.T) {
	spec := timedSpec(t)
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	mutations := 0
	for trial := 0; trial < 40; trial++ {
		nl := cloneForMutation(golden)
		gi := rng.Intn(len(nl.Gates))
		g := &nl.Gates[gi]
		if len(g.F.Cubes) == 0 {
			continue
		}
		ci := rng.Intn(len(g.F.Cubes))
		cube := g.F.Cubes[ci]
		lits := supportOf(cube)
		if len(lits) == 0 {
			continue
		}
		v := lits[rng.Intn(len(lits))]
		// Flip the polarity of literal v.
		g.F.Cubes[ci] = boolmin.Cube{Val: cube.Val ^ (1 << uint(v)), Care: cube.Care}
		mutations++

		res, err := sim.Verify(nl, spec, sim.Options{MaxViolations: 3})
		if err != nil {
			// Structural rejection (e.g. no stable initial vector) is a
			// legitimate detection too.
			continue
		}
		if res.OK() {
			// A mutation can only go unnoticed if the mutated cover equals
			// the original on every reachable code — check that is the case.
			for s := range sg.States {
				code := uint64(sg.States[s].Code)
				if nl.Next(code, nl.Gates[gi].Output) != golden.Next(code, golden.Gates[gi].Output) {
					t.Fatalf("trial %d: functional mutation escaped verification", trial)
				}
			}
		}
	}
	if mutations < 20 {
		t.Fatalf("only %d mutations exercised", mutations)
	}
}

func cloneForMutation(nl *logic.Netlist) *logic.Netlist {
	c := &logic.Netlist{Name: nl.Name}
	for i, s := range nl.Signals {
		c.AddSignal(s, nl.Kinds[i])
	}
	for _, g := range nl.Gates {
		c.Gates = append(c.Gates, logic.Gate{
			Kind: g.Kind, Output: g.Output,
			F: g.F.Clone(), Set: g.Set.Clone(), Reset: g.Reset.Clone(),
		})
	}
	return c
}

func supportOf(c boolmin.Cube) []int {
	var out []int
	for v := 0; v < 64; v++ {
		if c.Care&(1<<uint(v)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// Dropping a whole gate cube (stuck-at fault on part of the network) is
// caught as deadlock or conformance failure.
func TestMutationDroppedCube(t *testing.T) {
	spec := timedSpec(t)
	nl := timedNetlist(t, spec)
	for gi := range nl.Gates {
		if len(nl.Gates[gi].F.Cubes) < 2 {
			continue
		}
		mut := cloneForMutation(nl)
		mut.Gates[gi].F.Cubes = mut.Gates[gi].F.Cubes[1:]
		res, err := sim.Verify(mut, spec, sim.Options{MaxViolations: 3})
		if err != nil {
			continue // structural detection
		}
		if res.OK() {
			t.Fatalf("dropping a cube of %s escaped verification",
				mut.Signals[mut.Gates[gi].Output])
		}
	}
}
