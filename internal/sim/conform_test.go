package sim_test

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/regions"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/vme"
)

// An STG trivially conforms to itself.
func TestConformsReflexive(t *testing.T) {
	g := vme.ReadSTG()
	viol, err := sim.ConformsSTG(g, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Fatalf("self-conformance: %v", viol)
	}
}

// The csc0-inserted STG conforms to the original: csc0 is internal/hidden.
func TestConformsWithInternalSignal(t *testing.T) {
	g := vme.ReadSTG()
	impl, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	viol, err := sim.ConformsSTG(impl, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Fatalf("csc0 insertion must conform: %v", viol)
	}
}

// The back-annotated STG of the implementation conforms to the paper spec —
// the Figure 10 loop closes formally.
func TestBackAnnotationConforms(t *testing.T) {
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	implSG, err := sim.StateGraph(nl, spec, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := regions.Synthesize(implSG)
	if err != nil {
		t.Fatal(err)
	}
	viol, err := sim.ConformsSTG(back, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Fatalf("back-annotated STG must conform to the original interface: %v", viol)
	}
}

// Early enabling without its timing assumption breaks safety: LDS- may fire
// before D-, which the original spec forbids.
func TestRetriggerDoesNotConform(t *testing.T) {
	g := vme.ReadSTG()
	early, _, err := timing.Retrigger(g, "LDS-", "D-", "DSr-")
	if err != nil {
		t.Fatal(err)
	}
	viol, err := sim.ConformsSTG(early, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Fatal("retriggered spec must violate safety against the original")
	}
	if viol[0].Kind != "safety" || viol[0].String() == "" {
		t.Fatalf("expected safety violation, got %v", viol)
	}
}

// Concurrency reduction conforms (it only removes behaviour the environment
// never relied on) — receptiveness still holds because inputs are untouched.
func TestReductionConforms(t *testing.T) {
	g := vme.ReadSTG()
	reduced, err := encoding.DelayTransition(g,
		g.Net.TransitionIndex("DTACK-"), g.Net.TransitionIndex("LDS-"))
	if err != nil {
		t.Fatal(err)
	}
	viol, err := sim.ConformsSTG(reduced, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) != 0 {
		t.Fatalf("concurrency reduction must conform: %v", viol)
	}
}

// Dropping an input transition breaks receptiveness.
func TestReceptivenessViolation(t *testing.T) {
	g := vme.ReadSTG()
	impl := g.Clone()
	// Starve DSr+: require an extra never-marked place.
	blocked := impl.Net.AddPlace("never", 0)
	impl.Net.ArcPT(blocked, impl.Net.TransitionIndex("DSr+"))
	viol, err := sim.ConformsSTG(impl, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range viol {
		if v.Kind == "receptiveness" && v.Event == "DSr+" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected DSr+ receptiveness violation, got %v", viol)
	}
}

func TestConformsErrors(t *testing.T) {
	g := vme.ReadSTG()
	rw := vme.ReadWriteSTG()
	if _, err := sim.ConformsSTG(g, rw, 0); err == nil {
		t.Fatal("missing DSw in impl must error")
	}
}
