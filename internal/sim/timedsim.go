package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/stg"
)

// Timed simulation: performance analysis of a closed circuit×environment
// system (Section 2.1: "performance analysis and separation between events
// is required for determining latency and throughput of the device").
// Gates and environment transitions fire a sampled delay after they become
// enabled; the trace records every firing with its timestamp.

// DelayFn returns the [min,max] delay interval of a signal edge. Gate
// outputs and environment inputs are both asked here; returning min==max
// gives deterministic timing.
type DelayFn func(signal string, rise bool) (min, max int64)

// FixedDelays builds a DelayFn from a map with a default for absent signals.
func FixedDelays(m map[string]int64, def int64) DelayFn {
	return func(signal string, rise bool) (int64, int64) {
		if d, ok := m[signal]; ok {
			return d, d
		}
		return def, def
	}
}

// TimedEvent is one firing in a timed trace.
type TimedEvent struct {
	Signal string
	Rise   bool
	At     int64
}

// TimedTrace is the result of a timed simulation.
type TimedTrace struct {
	Events []TimedEvent
	// End is the time of the last firing.
	End int64
}

// MeanPeriod estimates the steady-state period of the given edge: the mean
// gap between consecutive occurrences, skipping the first warmup occurrences.
func (tr *TimedTrace) MeanPeriod(signal string, rise bool, warmup int) (float64, error) {
	var times []int64
	for _, e := range tr.Events {
		if e.Signal == signal && e.Rise == rise {
			times = append(times, e.At)
		}
	}
	if len(times) < warmup+2 {
		return 0, fmt.Errorf("sim: only %d occurrences of %s (need > %d)", len(times), signal, warmup+1)
	}
	times = times[warmup:]
	return float64(times[len(times)-1]-times[0]) / float64(len(times)-1), nil
}

// TimedSimulate runs the closed system for the given number of firings.
// The circuit must be speed-independent w.r.t. the spec (verify first):
// the simulator reports an error on conformance problems or deadlock.
func TimedSimulate(nl *logic.Netlist, spec *stg.STG, delay DelayFn, rng *rand.Rand, maxEvents int) (*TimedTrace, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	specToNet := make([]int, len(spec.Signals))
	netToSpec := make([]int, len(nl.Signals))
	for i := range netToSpec {
		netToSpec[i] = -1
	}
	for i, s := range spec.Signals {
		idx := nl.SignalIndex(s.Name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: spec signal %s missing from netlist", s.Name)
		}
		specToNet[i] = idx
		netToSpec[idx] = i
	}
	specSG, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		return nil, err
	}
	var v uint64
	for i := range spec.Signals {
		if specSG.States[specSG.Initial].Code.Bit(i) {
			v |= 1 << uint(specToNet[i])
		}
	}
	ver := &verifier{nl: nl, spec: spec, netToSpec: netToSpec, specToNet: specToNet, res: &Result{}}
	v, err = ver.settleExtras(v)
	if err != nil {
		return nil, err
	}
	m := spec.Net.InitialMarking()

	sample := func(signal string, rise bool, now int64) int64 {
		lo, hi := delay(signal, rise)
		if hi < lo {
			hi = lo
		}
		d := lo
		if hi > lo {
			d += rng.Int63n(hi - lo + 1)
		}
		return now + d
	}

	// Pending moves: env transitions keyed "t<idx>", gates keyed "g<idx>".
	type pending struct {
		fireAt int64
		// env transition index or -1.
		trans int
		// netlist signal index or -1 (pure dummy move).
		sig int
	}
	pend := map[string]pending{}
	now := int64(0)

	refresh := func() {
		// Environment inputs (and dummies).
		alive := map[string]bool{}
		for t := range spec.Net.Transitions {
			if !spec.Net.Enabled(m, t) {
				continue
			}
			l := spec.Labels[t]
			if l.Sig >= 0 && spec.Signals[l.Sig].Kind != stg.Input {
				continue
			}
			key := fmt.Sprintf("t%d", t)
			alive[key] = true
			if _, ok := pend[key]; !ok {
				sig := -1
				name := spec.Net.Transitions[t].Name
				rise := false
				if l.Sig >= 0 {
					sig = specToNet[l.Sig]
					cur := v&(1<<uint(sig)) != 0
					if (l.Dir == stg.Rise) == cur {
						continue // value mismatch; input not ready
					}
					name = spec.Signals[l.Sig].Name
					rise = l.Dir == stg.Rise
				}
				pend[key] = pending{fireAt: sample(name, rise, now), trans: t, sig: sig}
			}
		}
		for idx := range nl.Signals {
			if nl.GateFor(idx) == nil || !nl.Excited(v, idx) {
				continue
			}
			key := fmt.Sprintf("g%d", idx)
			alive[key] = true
			if _, ok := pend[key]; !ok {
				rise := v&(1<<uint(idx)) == 0
				pend[key] = pending{fireAt: sample(nl.Signals[idx], rise, now), trans: -1, sig: idx}
			}
		}
		for key := range pend {
			if !alive[key] {
				delete(pend, key) // disabled before firing
			}
		}
	}

	trace := &TimedTrace{}
	refresh()
	for len(trace.Events) < maxEvents {
		if len(pend) == 0 {
			return nil, fmt.Errorf("sim: timed deadlock at t=%d", now)
		}
		// Earliest pending move.
		bestKey := ""
		for key, p := range pend {
			if bestKey == "" || p.fireAt < pend[bestKey].fireAt ||
				(p.fireAt == pend[bestKey].fireAt && key < bestKey) {
				bestKey = key
			}
		}
		p := pend[bestKey]
		delete(pend, bestKey)
		now = p.fireAt

		if p.trans >= 0 {
			// Environment move.
			m = spec.Net.Fire(m, p.trans)
			if p.sig >= 0 {
				v ^= 1 << uint(p.sig)
				l := spec.Labels[p.trans]
				trace.Events = append(trace.Events, TimedEvent{
					Signal: spec.Signals[l.Sig].Name, Rise: l.Dir == stg.Rise, At: now})
			}
		} else {
			// Gate move.
			idx := p.sig
			rise := v&(1<<uint(idx)) == 0
			v ^= 1 << uint(idx)
			trace.Events = append(trace.Events, TimedEvent{Signal: nl.Signals[idx], Rise: rise, At: now})
			if specSig := netToSpec[idx]; specSig >= 0 {
				fired := false
				dir := stg.Fall
				if rise {
					dir = stg.Rise
				}
				for t := range spec.Net.Transitions {
					l := spec.Labels[t]
					if l.Sig == specSig && l.Dir == dir && spec.Net.Enabled(m, t) {
						m = spec.Net.Fire(m, t)
						fired = true
						break
					}
				}
				if !fired {
					return nil, fmt.Errorf("sim: timed conformance failure: %s%s at t=%d",
						nl.Signals[idx], dir, now)
				}
			}
		}
		trace.End = now
		refresh()
	}
	return trace, nil
}
