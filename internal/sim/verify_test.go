package sim

import (
	"strings"
	"testing"

	"repro/internal/boolmin"
	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/vme"
)

// cscSTG returns the READ-cycle STG with csc0 inserted (the Figure 7 spec).
func cscSTG(t testing.TB) *stg.STG {
	t.Helper()
	g := vme.ReadSTG()
	g2, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

func synth(t testing.TB, spec *stg.STG, style logic.Style) *logic.Netlist {
	t.Helper()
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, style)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestFig8Implementations: all three synthesis styles of the csc0 spec must
// verify speed-independent and conformant.
func TestFig8Implementations(t *testing.T) {
	spec := cscSTG(t)
	for _, style := range []logic.Style{logic.ComplexGate, logic.GeneralizedC, logic.StandardC} {
		nl := synth(t, spec, style)
		res, err := Verify(nl, spec, Options{})
		if err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		if !res.OK() {
			t.Fatalf("%v implementation must be SI; violations: %v", style, res.Violations)
		}
		if res.States == 0 {
			t.Fatalf("%v: empty exploration", style)
		}
	}
}

// cube builds a single-cube cover over n variables from literal assignments.
func cube(n int, lits map[int]bool) boolmin.Cover {
	c := boolmin.FullCube()
	for v, pos := range lits {
		c = c.WithLiteral(v, pos)
	}
	return boolmin.Cover{N: n, Cubes: []boolmin.Cube{c}}
}

func orCovers(a, b boolmin.Cover) boolmin.Cover {
	return boolmin.Cover{N: a.N, Cubes: append(append([]boolmin.Cube(nil), a.Cubes...), b.Cubes...)}
}

// fig9Netlist builds the two-input-gate decompositions of Figure 9.
// Signals 0..5 = DSr,DTACK,LDTACK,LDS,D,csc0 (spec order), 6 = map0.
//
//	map0  = csc0 + LDTACK'
//	csc0  = DSr · map0
//	LDS   = D + csc0
//	DTACK = D
//	D     = LDTACK · map0   (variant a: multiple acknowledgment, hazard-free)
//	D     = LDTACK · csc0   (variant b: single acknowledgment, hazardous)
func fig9Netlist(t testing.TB, variantA bool) *logic.Netlist {
	t.Helper()
	nl := &logic.Netlist{Name: "fig9"}
	for _, s := range []struct {
		name string
		kind stg.Kind
	}{
		{"DSr", stg.Input}, {"DTACK", stg.Output}, {"LDTACK", stg.Input},
		{"LDS", stg.Output}, {"D", stg.Output}, {"csc0", stg.Internal},
		{"map0", stg.Internal},
	} {
		nl.AddSignal(s.name, s.kind)
	}
	const (
		dsr, dtack, ldtack, lds, d, csc0, map0 = 0, 1, 2, 3, 4, 5, 6
	)
	n := 7
	nl.Gates = []logic.Gate{
		{Kind: logic.Comb, Output: map0,
			F: orCovers(cube(n, map[int]bool{csc0: true}), cube(n, map[int]bool{ldtack: false}))},
		{Kind: logic.Comb, Output: csc0,
			F: cube(n, map[int]bool{dsr: true, map0: true})},
		{Kind: logic.Comb, Output: lds,
			F: orCovers(cube(n, map[int]bool{d: true}), cube(n, map[int]bool{csc0: true}))},
		{Kind: logic.Comb, Output: dtack,
			F: cube(n, map[int]bool{d: true})},
	}
	if variantA {
		nl.Gates = append(nl.Gates, logic.Gate{Kind: logic.Comb, Output: d,
			F: cube(n, map[int]bool{ldtack: true, map0: true})})
	} else {
		nl.Gates = append(nl.Gates, logic.Gate{Kind: logic.Comb, Output: d,
			F: cube(n, map[int]bool{ldtack: true, csc0: true})})
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestFig9Decomposition is the E-F9 acceptance test: variant (a) is
// speed-independent thanks to the multiple acknowledgment of map0, while
// variant (b) — the "standard synchronous decomposition" — is hazardous.
func TestFig9Decomposition(t *testing.T) {
	spec := cscSTG(t)

	resA, err := Verify(fig9Netlist(t, true), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resA.OK() {
		t.Fatalf("Figure 9a must be hazard-free; got %v", resA.Violations)
	}
	if got := fig9Netlist(t, true).MaxFanIn(); got > 2 {
		t.Fatalf("Figure 9a must use two-input gates, max fan-in %d", got)
	}

	resB, err := Verify(fig9Netlist(t, false), spec, Options{MaxViolations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resB.OK() {
		t.Fatal("Figure 9b must be detected as hazardous")
	}
	foundMap0Hazard := false
	for _, v := range resB.Violations {
		if v.Kind == Hazard && v.Signal == "map0" {
			foundMap0Hazard = true
		}
	}
	if !foundMap0Hazard {
		t.Fatalf("the hazard must be on map0; got %v", resB.Violations)
	}
}

// A wrong circuit (inverted acknowledge) must fail conformance.
func TestConformanceViolation(t *testing.T) {
	spec := cscSTG(t)
	nl := synth(t, spec, logic.ComplexGate)
	// Sabotage DTACK: drive it from LDS instead of D. DTACK+ will fire too
	// early (after LDS+ instead of after D+).
	for i := range nl.Gates {
		if nl.Signals[nl.Gates[i].Output] == "DTACK" {
			nl.Gates[i].F = cube(len(nl.Signals), map[int]bool{nl.SignalIndex("LDS"): true})
		}
	}
	res, err := Verify(nl, spec, Options{MaxViolations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("sabotaged circuit must fail verification")
	}
	hasConf := false
	for _, v := range res.Violations {
		if v.Kind == Conformance && v.Signal == "DTACK" {
			hasConf = true
		}
	}
	if !hasConf {
		t.Fatalf("want DTACK conformance violation, got %v", res.Violations)
	}
}

// A dead circuit (output never fires) must be reported as deadlock.
func TestDeadlockDetection(t *testing.T) {
	g := stg.New("hs")
	g.AddSignal("r", stg.Input)
	g.AddSignal("a", stg.Output)
	rp := g.Rise("r")
	ap := g.Rise("a")
	rm := g.Fall("r")
	am := g.Fall("a")
	g.Net.Chain(rp, ap, rm, am)
	g.Net.Implicit(am, rp, 1)
	// a is stuck at 0: never rises.
	nl := &logic.Netlist{Name: "dead"}
	nl.AddSignal("r", stg.Input)
	nl.AddSignal("a", stg.Output)
	nl.Gates = []logic.Gate{{Kind: logic.Comb, Output: 1, F: boolmin.Cover{N: 2}}}
	res, err := Verify(nl, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("stuck circuit must deadlock")
	}
	if res.Violations[0].Kind != Deadlock {
		t.Fatalf("want deadlock, got %v", res.Violations)
	}
}

// C-element drive fight detection.
func TestDriveFight(t *testing.T) {
	g := stg.New("hs2")
	g.AddSignal("r", stg.Input)
	g.AddSignal("a", stg.Output)
	rp := g.Rise("r")
	ap := g.Rise("a")
	rm := g.Fall("r")
	am := g.Fall("a")
	g.Net.Chain(rp, ap, rm, am)
	g.Net.Implicit(am, rp, 1)
	nl := &logic.Netlist{Name: "fight"}
	nl.AddSignal("r", stg.Input)
	nl.AddSignal("a", stg.Output)
	full := boolmin.Cover{N: 2, Cubes: []boolmin.Cube{boolmin.FullCube()}}
	set := cube(2, map[int]bool{0: true})
	nl.Gates = []logic.Gate{{Kind: logic.CElem, Output: 1, Set: set, Reset: full}}
	res, err := Verify(nl, g, Options{MaxViolations: 5})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == DriveFight {
			found = true
		}
	}
	if !found {
		t.Fatalf("want drive fight, got %v", res.Violations)
	}
}

func TestVerifyErrors(t *testing.T) {
	spec := cscSTG(t)
	nl := &logic.Netlist{Name: "partial"}
	nl.AddSignal("DSr", stg.Input)
	if _, err := Verify(nl, spec, Options{}); err == nil {
		t.Fatal("missing spec signals must be an error")
	}
}

func TestViolationStrings(t *testing.T) {
	v := Violation{Kind: Hazard, Signal: "x", Msg: "m"}
	if !strings.Contains(v.String(), "hazard(x)") {
		t.Fatalf("violation rendering: %s", v)
	}
	for k, want := range map[ViolationKind]string{
		Hazard: "hazard", Conformance: "conformance", DriveFight: "drive-fight", Deadlock: "deadlock",
	} {
		if k.String() != want {
			t.Fatal("kind strings")
		}
	}
	r := RelativeOrder{Earlier: EventRef{"a", stg.Fall}, Later: EventRef{"b", stg.Rise}}
	if r.String() != "sep(a-,b+)<0" {
		t.Fatalf("constraint rendering: %s", r)
	}
}

// Read/write spec: complex-gate synthesis of the solved STG must verify.
func TestReadWriteEndToEnd(t *testing.T) {
	sol, err := encoding.SolveCSC(vme.ReadWriteSTG(), 0)
	if err != nil {
		t.Skipf("read/write CSC not solvable by single insertions: %v", err)
	}
	nl, err := logic.Synthesize(sol.SG, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Verify(nl, sol.STG, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("read/write implementation must be SI: %v", res.Violations)
	}
}
