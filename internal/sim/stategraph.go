package sim

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/stg"
	"repro/internal/ts"
)

// StateGraph explores the closed circuit×environment system like Verify and
// returns it as a state graph over the netlist's signals. This is the input
// to back-annotation (Section 4): a Petri net extracted from this SG is the
// STG of the implementation, including decomposition wires such as map0
// (Figure 10a). The exploration fails on the first violation — extract state
// graphs only from verified circuits.
func StateGraph(nl *logic.Netlist, spec *stg.STG, opts Options) (*ts.SG, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Constraints) > 0 {
		return nil, fmt.Errorf("sim: StateGraph does not support timing constraints; prune afterwards")
	}
	ver := &verifier{nl: nl, spec: spec, opts: opts, res: &Result{}, seen: map[compKey]bool{}}
	ver.specToNet = make([]int, len(spec.Signals))
	ver.netToSpec = make([]int, len(nl.Signals))
	for i := range ver.netToSpec {
		ver.netToSpec[i] = -1
	}
	for i, s := range spec.Signals {
		idx := nl.SignalIndex(s.Name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: spec signal %s missing from netlist", s.Name)
		}
		ver.specToNet[i] = idx
		ver.netToSpec[idx] = i
	}
	specSG, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		return nil, err
	}
	var v0 uint64
	for i := range spec.Signals {
		if specSG.States[specSG.Initial].Code.Bit(i) {
			v0 |= 1 << uint(ver.specToNet[i])
		}
	}
	v0, err = ver.settleExtras(v0)
	if err != nil {
		return nil, err
	}

	out := &ts.SG{Name: nl.Name + "-impl"}
	for i, name := range nl.Signals {
		kind := stg.Internal
		if s := ver.netToSpec[i]; s >= 0 {
			kind = spec.Signals[s].Kind
		}
		out.Signals = append(out.Signals, stg.Signal{Name: name, Kind: kind})
	}

	type node struct {
		v uint64
		m petri.Marking
	}
	index := map[compKey]int{}
	addState := func(v uint64, m petri.Marking) int {
		key := compKey{v, m.Key(), 0}
		if i, ok := index[key]; ok {
			return i
		}
		i := len(out.States)
		index[key] = i
		out.States = append(out.States, ts.State{
			Code:  ts.Code(v),
			Key:   fmt.Sprintf("%b|%s", v, m.Key()),
			Label: m.Format(spec.Net),
		})
		out.Out = append(out.Out, nil)
		return i
	}
	m0 := spec.Net.InitialMarking()
	start := addState(v0, m0)
	out.Initial = start
	stack := []node{{v0, m0}}
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		si := index[compKey{nd.v, nd.m.Key(), 0}]
		moves := ver.movesAt(nd.v, nd.m, 0)
		if len(ver.res.Violations) > 0 {
			return nil, fmt.Errorf("sim: cannot extract SG from violating circuit: %v",
				ver.res.Violations[0])
		}
		for _, mv := range moves {
			nv := nd.v
			if mv.netSig >= 0 {
				nv ^= 1 << uint(mv.netSig)
			}
			nm := nd.m
			for _, t := range mv.specPath {
				nm = ver.spec.Net.Fire(nm, t)
			}
			key := compKey{nv, nm.Key(), 0}
			_, existed := index[key]
			di := addState(nv, nm)
			ev := ts.Event{Sig: mv.netSig, Dir: mv.dir, Name: mv.name}
			if mv.netSig >= 0 {
				ev.Name = nl.Signals[mv.netSig] + mv.dir.String()
			}
			out.Out[si] = append(out.Out[si], ts.Arc{Event: ev, To: di})
			if !existed {
				stack = append(stack, node{nv, nm})
			}
			if len(out.States) > ver.opts.maxStates() {
				return nil, fmt.Errorf("sim: state limit exceeded")
			}
		}
	}
	return out, nil
}
