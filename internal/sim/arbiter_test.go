package sim

import (
	"strings"
	"testing"

	"repro/internal/boolmin"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/stg"
)

// arbiterSpec is the Section 1.5 situation: two clients compete for one
// resource; the grants g1/g2 are outputs in direct conflict, which cannot be
// implemented without a mutual exclusion element.
func arbiterSpec(t testing.TB) *stg.STG {
	t.Helper()
	g := stg.New("arbiter")
	g.AddSignal("r1", stg.Input)
	g.AddSignal("r2", stg.Input)
	g.AddSignal("g1", stg.Output)
	g.AddSignal("g2", stg.Output)
	n := g.Net
	res := n.AddPlace("res", 1)
	for _, client := range []string{"1", "2"} {
		rp := g.Rise("r" + client)
		gp := g.Rise("g" + client)
		rm := g.Fall("r" + client)
		gm := g.Fall("g" + client)
		n.Chain(rp, gp, rm, gm)
		n.Implicit(gm, rp, 1)
		n.ArcPT(res, gp)
		n.ArcTP(gm, res)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// arbiterNetlist builds the mutex implementation: g1 = MUTEX(r1·g2'),
// g2 = MUTEX(r2·g1'). With kind Comb instead the same functions are a
// hazardous plain cross-coupled circuit.
func arbiterNetlist(t testing.TB, kind logic.GateKind) *logic.Netlist {
	t.Helper()
	nl := &logic.Netlist{Name: "mutex-arbiter"}
	r1 := nl.AddSignal("r1", stg.Input)
	r2 := nl.AddSignal("r2", stg.Input)
	g1 := nl.AddSignal("g1", stg.Output)
	g2 := nl.AddSignal("g2", stg.Output)
	cube := func(lits map[int]bool) boolmin.Cover {
		c := boolmin.FullCube()
		for v, pos := range lits {
			c = c.WithLiteral(v, pos)
		}
		return boolmin.Cover{N: 4, Cubes: []boolmin.Cube{c}}
	}
	nl.Gates = []logic.Gate{
		{Kind: kind, Output: g1, F: cube(map[int]bool{r1: true, g2: false})},
		{Kind: kind, Output: g2, F: cube(map[int]bool{r2: true, g1: false})},
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestArbiterSpecNeedsMutex: the specification itself violates persistency
// (output/output conflict), which is why plain logic synthesis must refuse
// it.
func TestArbiterSpecNeedsMutex(t *testing.T) {
	spec := arbiterSpec(t)
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sg.IsPersistent() {
		t.Fatal("arbiter spec must violate persistency")
	}
	viol := sg.PersistencyViolations()
	found := false
	for _, v := range viol {
		if strings.HasPrefix(v.Disabled.Name, "g") && strings.HasPrefix(v.Disabler.Name, "g") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected grant/grant conflict, got %v", viol)
	}
}

// TestMutexImplementationVerifies: with mutex-half gates the implementation
// is accepted — losing the race is not a hazard.
func TestMutexImplementationVerifies(t *testing.T) {
	spec := arbiterSpec(t)
	nl := arbiterNetlist(t, logic.MutexHalf)
	res, err := Verify(nl, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("mutex arbiter must verify: %v", res.Violations)
	}
	if !strings.Contains(nl.Equations(), "MUTEX(") {
		t.Fatalf("equation rendering: %s", nl.Equations())
	}
}

// TestPlainGatesAreHazardous: the identical functions as plain combinational
// gates glitch when both requests race.
func TestPlainGatesAreHazardous(t *testing.T) {
	spec := arbiterSpec(t)
	nl := arbiterNetlist(t, logic.Comb)
	res, err := Verify(nl, spec, Options{MaxViolations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("cross-coupled gates without a mutex must be hazardous")
	}
	hazardOnGrant := false
	for _, v := range res.Violations {
		if v.Kind == Hazard && strings.HasPrefix(v.Signal, "g") {
			hazardOnGrant = true
		}
	}
	if !hazardOnGrant {
		t.Fatalf("expected grant hazard, got %v", res.Violations)
	}
}

// The mutex guarantees mutual exclusion in every reachable composed state.
func TestMutexExclusionInvariant(t *testing.T) {
	spec := arbiterSpec(t)
	nl := arbiterNetlist(t, logic.MutexHalf)
	sg, err := StateGraph(nl, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g1 := sg.SignalIndex("g1")
	g2 := sg.SignalIndex("g2")
	for _, s := range sg.States {
		if s.Code.Bit(g1) && s.Code.Bit(g2) {
			t.Fatal("both grants high: mutual exclusion violated")
		}
	}
}
