package sim_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/encoding"
	"repro/internal/logic"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/timing"
	"repro/internal/vme"
)

func timedSpec(t testing.TB) *stg.STG {
	t.Helper()
	g := vme.ReadSTG()
	spec, err := encoding.InsertSignal(g, "csc0",
		g.Net.TransitionIndex("LDS+"), g.Net.TransitionIndex("D-"))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func timedNetlist(t testing.TB, spec *stg.STG) *logic.Netlist {
	t.Helper()
	sg, err := reach.BuildSG(spec, reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nl, err := logic.Synthesize(sg, logic.ComplexGate)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestTimedSimulateDeterministic cross-validates the event-driven timed
// simulator against the analytic marked-graph cycle time: with fixed delays
// the measured steady-state period must equal timing.CycleTime exactly.
func TestTimedSimulateDeterministic(t *testing.T) {
	spec := timedSpec(t)
	nl := timedNetlist(t, spec)
	delays := map[string]int64{"DSr": 10, "LDTACK": 3}
	delay := func(signal string, rise bool) (int64, int64) {
		if d, ok := delays[signal]; ok {
			return d, d
		}
		return 1, 1 // gate delay
	}
	rng := rand.New(rand.NewSource(1))
	tr, err := sim.TimedSimulate(nl, spec, delay, rng, 400)
	if err != nil {
		t.Fatal(err)
	}
	period, err := tr.MeanPeriod("DSr", true, 3)
	if err != nil {
		t.Fatal(err)
	}
	tspec := timing.Spec{G: spec, Delays: make([]timing.Delay, len(spec.Net.Transitions))}
	for i := range tspec.Delays {
		l := spec.Labels[i]
		name := spec.Signals[l.Sig].Name
		if d, ok := delays[name]; ok {
			tspec.Delays[i] = timing.Fixed(d)
		} else {
			tspec.Delays[i] = timing.Fixed(1)
		}
	}
	ct, err := timing.CycleTime(tspec, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(period-ct) > 1e-6 {
		t.Fatalf("measured period %v differs from analytic cycle time %v", period, ct)
	}
}

// With interval delays the measured mean period stays within the analytic
// [min,max] cycle-time bounds for every seed.
func TestTimedSimulateIntervalWithinBounds(t *testing.T) {
	spec := timedSpec(t)
	nl := timedNetlist(t, spec)
	delay := func(signal string, rise bool) (int64, int64) {
		if signal == "DSr" {
			return 5, 15
		}
		return 1, 2
	}
	tspec := timing.Spec{G: spec, Delays: make([]timing.Delay, len(spec.Net.Transitions))}
	for i := range tspec.Delays {
		l := spec.Labels[i]
		if spec.Signals[l.Sig].Name == "DSr" {
			tspec.Delays[i] = timing.Delay{Min: 5, Max: 15}
		} else {
			tspec.Delays[i] = timing.Delay{Min: 1, Max: 2}
		}
	}
	ctMin, err := timing.CycleTime(tspec, false)
	if err != nil {
		t.Fatal(err)
	}
	ctMax, err := timing.CycleTime(tspec, true)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr, err := sim.TimedSimulate(nl, spec, delay, rng, 600)
		if err != nil {
			t.Fatal(err)
		}
		period, err := tr.MeanPeriod("DSr", true, 5)
		if err != nil {
			t.Fatal(err)
		}
		if period < ctMin-1e-6 || period > ctMax+1e-6 {
			t.Fatalf("seed %d: period %v outside [%v, %v]", seed, period, ctMin, ctMax)
		}
	}
}

func TestTimedSimulateErrors(t *testing.T) {
	spec := timedSpec(t)
	nl := timedNetlist(t, spec)
	tr, err := sim.TimedSimulate(nl, spec, sim.FixedDelays(nil, 1), rand.New(rand.NewSource(1)), 10)
	if err != nil {
		t.Fatalf("fixed delays must simulate: %v", err)
	}
	if _, err := tr.MeanPeriod("DSr", true, 50); err == nil {
		t.Fatal("too few occurrences must error")
	}
	if _, err := tr.MeanPeriod("nope", true, 0); err == nil {
		t.Fatal("unknown signal must error")
	}
}
