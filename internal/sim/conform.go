package sim

import (
	"fmt"

	"repro/internal/petri"
	"repro/internal/stg"
)

// STG-level implementation verification (Section 2.1, Dill's trace theory
// [10]): an implementation STG conforms to a specification STG when, on the
// specification's signal alphabet,
//
//   - safety: every output edge the implementation can produce is allowed by
//     the specification in the corresponding state, and
//   - receptiveness: every input edge the specification's environment can
//     produce is accepted (enabled, possibly after internal moves) by the
//     implementation.
//
// The implementation may have extra internal signals and dummy events; they
// are hidden. Used e.g. to check that a back-annotated or hand-edited STG
// still implements the original interface.

// ConformanceViolation describes a failure of ConformsSTG.
type ConformanceViolation struct {
	// Kind is "safety" or "receptiveness".
	Kind string
	// Event is the offending signal edge.
	Event string
	// ImplMarking / SpecMarking identify the composed state.
	ImplMarking, SpecMarking string
}

func (v ConformanceViolation) String() string {
	return fmt.Sprintf("%s: %s at impl %s / spec %s", v.Kind, v.Event, v.ImplMarking, v.SpecMarking)
}

// ConformsSTG explores the parallel composition of implementation and
// specification token games, synchronizing on the specification's signals.
// It returns the violations found (empty = conforms). maxStates bounds the
// product exploration (0 = 1<<20).
func ConformsSTG(impl, spec *stg.STG, maxStates int) ([]ConformanceViolation, error) {
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	// Map spec signals into impl signal indexes.
	specToImpl := make([]int, len(spec.Signals))
	for i, s := range spec.Signals {
		idx := impl.SignalIndex(s.Name)
		if idx < 0 {
			return nil, fmt.Errorf("sim: impl lacks spec signal %s", s.Name)
		}
		if impl.Signals[idx].Kind != s.Kind {
			return nil, fmt.Errorf("sim: signal %s changes kind between impl and spec", s.Name)
		}
		specToImpl[i] = idx
	}
	implToSpec := make([]int, len(impl.Signals))
	for i := range implToSpec {
		implToSpec[i] = -1
	}
	for i, idx := range specToImpl {
		implToSpec[idx] = i
	}

	type node struct {
		im, sm petri.Marking
	}
	var out []ConformanceViolation
	seen := map[string]bool{}
	key := func(n node) string { return n.im.Key() + "|" + n.sm.Key() }
	start := node{im: impl.Net.InitialMarking(), sm: spec.Net.InitialMarking()}
	seen[key(start)] = true
	stack := []node{start}
	states := 0
	for len(stack) > 0 && len(out) == 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		states++
		if states > maxStates {
			return nil, fmt.Errorf("sim: conformance product exceeded %d states", maxStates)
		}

		push := func(n node) {
			if !seen[key(n)] {
				seen[key(n)] = true
				stack = append(stack, n)
			}
		}

		// Implementation moves.
		for t := range impl.Net.Transitions {
			if !impl.Net.Enabled(nd.im, t) {
				continue
			}
			l := impl.Labels[t]
			hidden := l.Sig < 0 || implToSpec[l.Sig] < 0
			nim := impl.Net.Fire(nd.im, t)
			if hidden {
				push(node{im: nim, sm: nd.sm})
				continue
			}
			specSig := implToSpec[l.Sig]
			if spec.Signals[specSig].Kind == stg.Input {
				// The environment owns inputs; the implementation can only
				// consume them when the spec offers them — handled below by
				// synchronizing on spec input moves.
				continue
			}
			// Output/internal-of-spec edge produced by the implementation:
			// the spec must accept it (safety).
			matched := false
			for st := range spec.Net.Transitions {
				sl := spec.Labels[st]
				if sl.Sig == specSig && sl.Dir == l.Dir && spec.Net.Enabled(nd.sm, st) {
					matched = true
					push(node{im: nim, sm: spec.Net.Fire(nd.sm, st)})
				}
			}
			if !matched {
				out = append(out, ConformanceViolation{
					Kind: "safety", Event: impl.Net.Transitions[t].Name,
					ImplMarking: nd.im.Format(impl.Net), SpecMarking: nd.sm.Format(spec.Net),
				})
			}
		}
		// Environment moves: spec input edges (and spec dummies).
		for st := range spec.Net.Transitions {
			if !spec.Net.Enabled(nd.sm, st) {
				continue
			}
			sl := spec.Labels[st]
			if sl.Sig < 0 {
				push(node{im: nd.im, sm: spec.Net.Fire(nd.sm, st)})
				continue
			}
			if spec.Signals[sl.Sig].Kind != stg.Input {
				continue
			}
			// The implementation must accept the input, possibly after
			// hidden moves (receptiveness).
			hits := inputClosure(impl, nd.im, specToImpl[sl.Sig], sl.Dir, implToSpec)
			if len(hits) == 0 {
				out = append(out, ConformanceViolation{
					Kind: "receptiveness", Event: spec.Net.Transitions[st].Name,
					ImplMarking: nd.im.Format(impl.Net), SpecMarking: nd.sm.Format(spec.Net),
				})
				continue
			}
			nsm := spec.Net.Fire(nd.sm, st)
			for _, im := range hits {
				push(node{im: im, sm: nsm})
			}
		}
	}
	return out, nil
}

// inputClosure finds implementation markings reachable from m by hidden
// moves where an input edge (sig,dir) is enabled, and returns the markings
// after firing it.
func inputClosure(impl *stg.STG, m petri.Marking, sig int, dir stg.Dir, implToSpec []int) []petri.Marking {
	var out []petri.Marking
	seen := map[string]bool{m.Key(): true}
	queue := []petri.Marking{m}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for t := range impl.Net.Transitions {
			if !impl.Net.Enabled(cur, t) {
				continue
			}
			l := impl.Labels[t]
			if l.Sig == sig && l.Dir == dir {
				out = append(out, impl.Net.Fire(cur, t))
				continue
			}
			hidden := l.Sig < 0 || implToSpec[l.Sig] < 0
			if !hidden {
				continue
			}
			next := impl.Net.Fire(cur, t)
			if !seen[next.Key()] {
				seen[next.Key()] = true
				queue = append(queue, next)
			}
		}
	}
	return out
}
