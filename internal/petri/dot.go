package petri

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the net in Graphviz DOT format: places as circles (filled
// when initially marked), transitions as boxes. Implicit places (single input
// and output, unnamed "<a,b>" convention) are drawn as plain edges, matching
// the paper's figures.
func (n *Net) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", n.Name)
	implicit := make([]bool, len(n.Places))
	for i, p := range n.Places {
		if len(p.Pre) == 1 && len(p.Post) == 1 && strings.HasPrefix(p.Name, "<") {
			implicit[i] = true
			continue
		}
		shape := "circle"
		label := p.Name
		style := ""
		if p.Initial > 0 {
			style = ", style=filled, fillcolor=gray80"
			if p.Initial > 1 {
				label = fmt.Sprintf("%s (%d)", p.Name, p.Initial)
			}
		}
		fmt.Fprintf(&b, "  p%d [shape=%s, label=%q%s];\n", i, shape, label, style)
	}
	for i, t := range n.Transitions {
		fmt.Fprintf(&b, "  t%d [shape=box, label=%q];\n", i, t.Name)
	}
	for i, p := range n.Places {
		if implicit[i] {
			mark := ""
			if p.Initial > 0 {
				mark = " [label=\"●\"]"
			}
			fmt.Fprintf(&b, "  t%d -> t%d%s;\n", p.Pre[0], p.Post[0], mark)
			continue
		}
		for _, t := range p.Post {
			fmt.Fprintf(&b, "  p%d -> t%d;\n", i, t)
		}
		for _, t := range p.Pre {
			fmt.Fprintf(&b, "  t%d -> p%d;\n", t, i)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
