package petri

import (
	"sort"
	"strconv"
	"strings"
)

// Marking holds the token count of every place, indexed by place index.
// For the safe nets this flow targets every entry is 0 or 1, but counts up to
// 255 are representable so that safety violations can be detected rather than
// silently wrapped.
type Marking []byte

// Key returns a map key uniquely identifying the marking.
func (m Marking) Key() string { return string(m) }

// Clone returns a copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Equal reports whether two markings are identical.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Safe reports whether no place holds more than one token.
func (m Marking) Safe() bool {
	for _, v := range m {
		if v > 1 {
			return false
		}
	}
	return true
}

// Tokens returns the total token count.
func (m Marking) Tokens() int {
	n := 0
	for _, v := range m {
		n += int(v)
	}
	return n
}

// MarkedPlaces returns the indexes of all marked places in ascending order.
func (m Marking) MarkedPlaces() []int {
	var out []int
	for i, v := range m {
		if v > 0 {
			out = append(out, i)
		}
	}
	return out
}

// Format renders the marking as "{p1,p2}" using the net's place names.
func (m Marking) Format(n *Net) string {
	names := []string{}
	for i, v := range m {
		if v == 1 {
			names = append(names, n.Places[i].Name)
		} else if v > 1 {
			names = append(names, n.Places[i].Name+"*"+strconv.Itoa(int(v)))
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ",") + "}"
}
