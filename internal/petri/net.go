// Package petri implements safe (1-bounded) Petri nets: the token game,
// structural queries, and interchange formats. It is the foundation of the
// whole flow: Signal Transition Graphs (package stg) are Petri nets whose
// transitions are interpreted as signal edges.
//
// The package follows the paper's conventions: places hold at most one token
// in all intended uses (safety is checked, not assumed), transitions fire
// atomically, and a marking is the set of currently marked places.
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Place is a local state/resource holder of the net.
type Place struct {
	Name    string
	Initial int // tokens in the initial marking

	// Pre and Post list transition indexes: Pre produce into this place,
	// Post consume from it. Maintained by the arc-adding methods.
	Pre, Post []int
}

// Transition is an atomic event of the net.
type Transition struct {
	Name string

	// Pre and Post list place indexes: Pre are consumed from, Post are
	// produced into. Maintained by the arc-adding methods.
	Pre, Post []int
}

// Net is a Petri net. The zero value is an empty net ready to use; places and
// transitions are addressed by dense integer indexes returned from AddPlace
// and AddTransition.
type Net struct {
	Name        string
	Places      []Place
	Transitions []Transition

	placeByName map[string]int
	transByName map[string]int
}

// New returns an empty net with the given name.
func New(name string) *Net {
	return &Net{
		Name:        name,
		placeByName: make(map[string]int),
		transByName: make(map[string]int),
	}
}

// AddPlace adds a place with the given name and initial token count and
// returns its index. Duplicate names are rejected with a panic: net
// construction errors are programming errors, not runtime conditions.
func (n *Net) AddPlace(name string, tokens int) int {
	if _, dup := n.placeByName[name]; dup {
		panic(fmt.Sprintf("petri: duplicate place %q", name))
	}
	if tokens < 0 {
		panic(fmt.Sprintf("petri: negative initial marking for %q", name))
	}
	idx := len(n.Places)
	n.Places = append(n.Places, Place{Name: name, Initial: tokens})
	n.placeByName[name] = idx
	return idx
}

// AddTransition adds a transition with the given name and returns its index.
// Duplicate names panic, like AddPlace: an invariant violation by the
// constructing code, not a runtime condition.
func (n *Net) AddTransition(name string) int {
	if _, dup := n.transByName[name]; dup {
		panic(fmt.Sprintf("petri: duplicate transition %q", name))
	}
	idx := len(n.Transitions)
	n.Transitions = append(n.Transitions, Transition{Name: name})
	n.transByName[name] = idx
	return idx
}

// PlaceIndex returns the index of the named place, or -1.
func (n *Net) PlaceIndex(name string) int {
	if i, ok := n.placeByName[name]; ok {
		return i
	}
	return -1
}

// TransitionIndex returns the index of the named transition, or -1.
func (n *Net) TransitionIndex(name string) int {
	if i, ok := n.transByName[name]; ok {
		return i
	}
	return -1
}

// ArcPT adds an arc from place p to transition t.
func (n *Net) ArcPT(p, t int) {
	n.checkPlace(p)
	n.checkTrans(t)
	n.Transitions[t].Pre = append(n.Transitions[t].Pre, p)
	n.Places[p].Post = append(n.Places[p].Post, t)
}

// ArcTP adds an arc from transition t to place p.
func (n *Net) ArcTP(t, p int) {
	n.checkPlace(p)
	n.checkTrans(t)
	n.Transitions[t].Post = append(n.Transitions[t].Post, p)
	n.Places[p].Pre = append(n.Places[p].Pre, t)
}

// Implicit adds an implicit (unnamed) place between transitions t1 and t2
// with the given initial token count, returning the place index. The place is
// named "<t1,t2>" following the astg convention.
func (n *Net) Implicit(t1, t2 int, tokens int) int {
	n.checkTrans(t1)
	n.checkTrans(t2)
	base := fmt.Sprintf("<%s,%s>", n.Transitions[t1].Name, n.Transitions[t2].Name)
	name := base
	for k := 1; n.PlaceIndex(name) >= 0; k++ {
		name = fmt.Sprintf("%s#%d", base, k)
	}
	p := n.AddPlace(name, tokens)
	n.ArcTP(t1, p)
	n.ArcPT(p, t2)
	return p
}

// Chain connects consecutive transitions with fresh implicit unmarked places:
// t0 -> t1 -> ... -> tk.
func (n *Net) Chain(ts ...int) {
	for i := 0; i+1 < len(ts); i++ {
		n.Implicit(ts[i], ts[i+1], 0)
	}
}

// checkPlace and checkTrans guard arc construction with invariant panics:
// indexes come from the Add* return values, so an out-of-range index is a
// bug in the constructing code and fails loudly rather than corrupting the
// net.
func (n *Net) checkPlace(p int) {
	if p < 0 || p >= len(n.Places) {
		panic(fmt.Sprintf("petri: place index %d out of range", p))
	}
}

func (n *Net) checkTrans(t int) {
	if t < 0 || t >= len(n.Transitions) {
		panic(fmt.Sprintf("petri: transition index %d out of range", t))
	}
}

// Validate reports structural problems that make the net unusable for
// analysis: transitions with empty presets (they would be always enabled,
// which is never meaningful in an interface spec) and disconnected places.
func (n *Net) Validate() error {
	for i, t := range n.Transitions {
		if len(t.Pre) == 0 {
			return fmt.Errorf("petri: transition %q (%d) has empty preset", t.Name, i)
		}
	}
	for i, p := range n.Places {
		if len(p.Pre) == 0 && len(p.Post) == 0 && p.Initial == 0 {
			return fmt.Errorf("petri: place %q (%d) is isolated and unmarked", p.Name, i)
		}
	}
	return nil
}

// InitialMarking returns a fresh copy of the initial marking.
func (n *Net) InitialMarking() Marking {
	m := make(Marking, len(n.Places))
	for i, p := range n.Places {
		m[i] = byte(p.Initial)
	}
	return m
}

// Enabled reports whether transition t is enabled in marking m.
func (n *Net) Enabled(m Marking, t int) bool {
	for _, p := range n.Transitions[t].Pre {
		if m[p] == 0 {
			return false
		}
	}
	return true
}

// EnabledList returns the indexes of all transitions enabled in m, in
// ascending order.
func (n *Net) EnabledList(m Marking) []int {
	var out []int
	for t := range n.Transitions {
		if n.Enabled(m, t) {
			out = append(out, t)
		}
	}
	return out
}

// Fire returns the marking reached by firing t from m. It panics if t is not
// enabled; callers are expected to check with Enabled first. The input
// marking is not modified.
func (n *Net) Fire(m Marking, t int) Marking {
	if !n.Enabled(m, t) {
		panic(fmt.Sprintf("petri: firing disabled transition %q", n.Transitions[t].Name))
	}
	next := make(Marking, len(m))
	copy(next, m)
	for _, p := range n.Transitions[t].Pre {
		next[p]--
	}
	for _, p := range n.Transitions[t].Post {
		next[p]++
	}
	return next
}

// FireInPlace fires t from m, modifying m. It does not check enabledness.
func (n *Net) FireInPlace(m Marking, t int) {
	for _, p := range n.Transitions[t].Pre {
		m[p]--
	}
	for _, p := range n.Transitions[t].Post {
		m[p]++
	}
}

// UnfireInPlace reverses FireInPlace.
func (n *Net) UnfireInPlace(m Marking, t int) {
	for _, p := range n.Transitions[t].Post {
		m[p]--
	}
	for _, p := range n.Transitions[t].Pre {
		m[p]++
	}
}

// Clone returns a deep copy of the net.
func (n *Net) Clone() *Net {
	c := New(n.Name)
	c.Places = make([]Place, len(n.Places))
	for i, p := range n.Places {
		c.Places[i] = Place{
			Name:    p.Name,
			Initial: p.Initial,
			Pre:     append([]int(nil), p.Pre...),
			Post:    append([]int(nil), p.Post...),
		}
		c.placeByName[p.Name] = i
	}
	c.Transitions = make([]Transition, len(n.Transitions))
	for i, t := range n.Transitions {
		c.Transitions[i] = Transition{
			Name: t.Name,
			Pre:  append([]int(nil), t.Pre...),
			Post: append([]int(nil), t.Post...),
		}
		c.transByName[t.Name] = i
	}
	return c
}

// String returns a compact textual description, stable across runs.
func (n *Net) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net %s: %d places, %d transitions\n", n.Name, len(n.Places), len(n.Transitions))
	for _, t := range n.Transitions {
		pre := make([]string, len(t.Pre))
		for i, p := range t.Pre {
			pre[i] = n.Places[p].Name
		}
		post := make([]string, len(t.Post))
		for i, p := range t.Post {
			post[i] = n.Places[p].Name
		}
		sort.Strings(pre)
		sort.Strings(post)
		fmt.Fprintf(&b, "  %s: {%s} -> {%s}\n", t.Name, strings.Join(pre, ","), strings.Join(post, ","))
	}
	marked := []string{}
	for _, p := range n.Places {
		if p.Initial > 0 {
			marked = append(marked, fmt.Sprintf("%s=%d", p.Name, p.Initial))
		}
	}
	sort.Strings(marked)
	fmt.Fprintf(&b, "  marking: {%s}\n", strings.Join(marked, ","))
	return b.String()
}
